// Package cartcc is a Go implementation of Cartesian Collective
// Communication (Träff & Hunold, ICPP 2019): sparse collective alltoall
// and allgather operations over processes organized in d-dimensional tori
// or meshes, with neighborhoods given as lists of relative coordinate
// offsets that are identical (isomorphic) on every process.
//
// Because the paper's system is an MPI library and Go has no maintained
// MPI bindings, cartcc ships its own message-passing runtime: ranks are
// goroutines with private state, communicating through tagged two-sided
// point-to-point operations with MPI matching semantics. An optional
// virtual-time α-β cost model reproduces the latency/bandwidth trade-offs
// of the paper's clusters, so the evaluation's figures can be regenerated
// on a laptop (see cmd/cartbench and EXPERIMENTS.md).
//
// # Quick start
//
//	cartcc.Launch(9, func(w *cartcc.ProcComm) error {
//		nbh, _ := cartcc.Stencil(2, 3, -1) // 9-point stencil offsets
//		c, err := cartcc.NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
//		if err != nil {
//			return err
//		}
//		send := make([]float64, c.NeighborCount())
//		recv := make([]float64, c.NeighborCount())
//		return cartcc.Alltoall(c, send, recv)
//	})
//
// The package is a facade: the implementation lives in internal/mpi (the
// runtime), internal/cart (the paper's algorithms), internal/datatype
// (derived-datatype layouts), internal/netmodel (cost models),
// internal/stencil (grid/halo substrate) and internal/bench (the
// experiment harness).
package cartcc

import (
	"time"

	"cartcc/internal/cart"
	"cartcc/internal/datatype"
	"cartcc/internal/mpi"
	"cartcc/internal/netmodel"
	"cartcc/internal/stencil"
	"cartcc/internal/tune"
	"cartcc/internal/vec"
)

// ---------------------------------------------------------------------
// Runtime: ranks, communicators, point-to-point and global collectives.
// ---------------------------------------------------------------------

// ProcComm is a communicator of the message-passing runtime: an ordered
// group of ranks with an isolated message context (the analog of an
// MPI_Comm).
type ProcComm = mpi.Comm

// RunConfig configures a parallel run: number of ranks, optional
// virtual-time cost model, noise seed and deadlock-watchdog timeout.
type RunConfig = mpi.Config

// Status describes a completed receive.
type Status = mpi.Status

// Request is a nonblocking-operation handle.
type Request = mpi.Request

// Wildcards for receive matching.
const (
	AnySource = mpi.AnySource
	AnyTag    = mpi.AnyTag
)

// Run spawns cfg.Procs ranks, calls f on each with its world communicator
// and waits for completion; the first error or panic aborts the run.
func Run(cfg RunConfig, f func(c *ProcComm) error) error {
	return mpi.Run(cfg, f)
}

// Launch is Run with defaults: p ranks, wall-clock time, a 60 s deadlock
// watchdog.
func Launch(p int, f func(c *ProcComm) error) error {
	return mpi.Run(mpi.Config{Procs: p, Timeout: 60 * time.Second}, f)
}

// TransportConfig selects a network transport backend ("tcp" or "unix")
// and maps world ranks onto OS processes; see RunTransport.
type TransportConfig = mpi.TransportConfig

// ProcSpec names one process of a multi-process world: its listen address
// and the world ranks it hosts.
type ProcSpec = mpi.ProcSpec

// RunTransport is Run over a network transport: one world whose ranks
// span OS processes. Every process calls it with the same cfg and
// rank/address map, differing only in tc.Self; messages between processes
// travel the varint-framed wire format of internal/wire, and collectives,
// epochs and fault propagation behave as in-process. Plain Run also
// honors the CARTCC_TRANSPORT environment variable ("tcp", "unix",
// "loopback") by detouring all traffic of a single-process world through
// a real socket — the conformance battery's mode.
func RunTransport(cfg RunConfig, tc TransportConfig, f func(c *ProcComm) error) error {
	return mpi.RunTransport(cfg, tc, f)
}

// TransportEnvActive reports whether CARTCC_TRANSPORT currently selects a
// network backend.
func TransportEnvActive() bool { return mpi.TransportEnvActive() }

// Barrier blocks until every process in the communicator has entered it.
func Barrier(c *ProcComm) error { return mpi.Barrier(c) }

// Bcast broadcasts buf from root to every process.
func Bcast[T any](c *ProcComm, buf []T, root int) error { return mpi.Bcast(c, buf, root) }

// Allreduce combines the send buffers of all processes element-wise with
// op; the result lands in recv everywhere.
func Allreduce[T any](c *ProcComm, send, recv []T, op func(a, b T) T) error {
	return mpi.Allreduce(c, send, recv, op)
}

// GlobalAllgather collects the equally-sized send blocks of every process
// into recv on all processes, in rank order (the dense MPI_Allgather, as
// opposed to the sparse Cartesian Allgather).
func GlobalAllgather[T any](c *ProcComm, send, recv []T) error { return mpi.Allgather(c, send, recv) }

// GlobalGather collects the send blocks at root (the dense MPI_Gather).
func GlobalGather[T any](c *ProcComm, send, recv []T, root int) error {
	return mpi.Gather(c, send, recv, root)
}

// GlobalAlltoall performs the dense personalized exchange (MPI_Alltoall).
func GlobalAlltoall[T any](c *ProcComm, send, recv []T) error { return mpi.Alltoall(c, send, recv) }

// Reduction helpers.
func SumOp[T mpi.Number](a, b T) T { return mpi.SumOp(a, b) }

// MaxOf returns the larger of a and b (MPI_MAX).
func MaxOf[T ~int | ~int32 | ~int64 | ~float32 | ~float64](a, b T) T { return mpi.MaxOp(a, b) }

// ---------------------------------------------------------------------
// MPI neighborhood-collective baselines on distributed-graph
// communicators (the comparators of the paper's evaluation). Build the
// graph communicator with (*Comm).DistGraph().
// ---------------------------------------------------------------------

// NeighborAlltoall is the blocking sparse alltoall by direct delivery
// (MPI_Neighbor_alltoall), the baseline every figure normalizes to.
func NeighborAlltoall[T any](g *ProcComm, send, recv []T) error {
	return mpi.NeighborAlltoall(g, send, recv)
}

// IneighborAlltoall is the nonblocking form (MPI_Ineighbor_alltoall).
func IneighborAlltoall[T any](g *ProcComm, send, recv []T) (*Request, error) {
	return mpi.IneighborAlltoall(g, send, recv)
}

// NeighborAlltoallv is the blocking irregular sparse alltoall.
func NeighborAlltoallv[T any](g *ProcComm, send []T, sendCounts, sendDispls []int, recv []T, recvCounts, recvDispls []int) error {
	return mpi.NeighborAlltoallv(g, send, sendCounts, sendDispls, recv, recvCounts, recvDispls)
}

// NeighborAlltoallw is the blocking typed sparse alltoall.
func NeighborAlltoallw[T any](g *ProcComm, send []T, sendLayouts []Layout, recv []T, recvLayouts []Layout) error {
	return mpi.NeighborAlltoallw(g, send, sendLayouts, recv, recvLayouts)
}

// NeighborAllgather is the blocking sparse allgather by direct delivery.
func NeighborAllgather[T any](g *ProcComm, send, recv []T) error {
	return mpi.NeighborAllgather(g, send, recv)
}

// IneighborAllgather is the nonblocking form.
func IneighborAllgather[T any](g *ProcComm, send, recv []T) (*Request, error) {
	return mpi.IneighborAllgather(g, send, recv)
}

// ---------------------------------------------------------------------
// Derived-datatype layouts.
// ---------------------------------------------------------------------

// Layout describes a non-contiguous selection of buffer elements, the
// analog of an MPI derived datatype; see Contiguous, VectorLayout,
// IndexedLayout and SubarrayLayout.
type Layout = datatype.Layout

// Contiguous returns a layout of count elements at offset off.
func Contiguous(off, count int) Layout { return datatype.Contiguous(off, count) }

// VectorLayout mirrors MPI_Type_vector: count blocks of blocklen elements,
// stride apart, starting at off.
func VectorLayout(count, blocklen, stride, off int) Layout {
	return datatype.Vector(count, blocklen, stride, off)
}

// IndexedLayout mirrors MPI_Type_indexed.
func IndexedLayout(displs, lengths []int) (Layout, error) { return datatype.Indexed(displs, lengths) }

// SubarrayLayout describes a rows×cols sub-block at (row0, col0) of a
// row-major 2-D array with rowLen elements per row.
func SubarrayLayout(rowLen, row0, col0, rows, cols int) Layout {
	return datatype.Subarray(rowLen, row0, col0, rows, cols)
}

// ---------------------------------------------------------------------
// Neighborhoods and grid geometry.
// ---------------------------------------------------------------------

// Vec is a d-dimensional integer coordinate vector (absolute or relative).
type Vec = vec.Vec

// Neighborhood is an ordered list of relative coordinate offsets, the
// t-neighborhood of the paper.
type Neighborhood = vec.Neighborhood

// Grid is the geometry of a process torus or mesh.
type Grid = vec.Grid

// Stencil generates the (d, n, f) neighborhood family of the paper's
// evaluation: all n^d offsets with every coordinate in {f, ..., f+n-1}.
func Stencil(d, n, f int) (Neighborhood, error) { return vec.Stencil(d, n, f) }

// Moore generates the Moore neighborhood of radius r in d dimensions.
func Moore(d, r int) (Neighborhood, error) { return vec.Moore(d, r) }

// VonNeumann generates the von Neumann neighborhood of radius r in d
// dimensions (the default MPI Cartesian neighborhood at r = 1, plus the
// zero offset).
func VonNeumann(d, r int) (Neighborhood, error) { return vec.VonNeumann(d, r) }

// Star generates the (2dr+1)-point star neighborhood of radius r: axis
// offsets only, the shape of higher-order finite-difference stencils.
func Star(d, r int) (Neighborhood, error) { return vec.Star(d, r) }

// DimsCreate factors p into d balanced extents, like MPI_Dims_create.
func DimsCreate(p, d int) ([]int, error) { return vec.DimsCreate(p, d) }

// NewGrid validates and returns a torus/mesh geometry (nil periods means
// fully periodic).
func NewGrid(dims []int, periods []bool) (*Grid, error) { return vec.NewGrid(dims, periods) }

// ---------------------------------------------------------------------
// Cartesian Collective Communication (the paper's interface, Section 2).
// ---------------------------------------------------------------------

// Comm is a Cartesian-neighborhood communicator created collectively by
// NeighborhoodCreate — the paper's Cart_neighborhood_create (Listing 1).
// Its methods provide the helper interface of Listing 2 (RelativeRank,
// RelativeShift, RelativeCoord, NeighborCount, NeighborGet).
type Comm = cart.Comm

// Algorithm selects the schedule family: Combining (Algorithms 1 and 2),
// Trivial (Listing 4) or Auto (analytic cut-off per operation).
type Algorithm = cart.Algorithm

// Schedule families. AlgorithmAuto is the self-tuning selector — the
// default of NeighborhoodCreate — which picks Trivial or Combining per
// (operation, neighborhood, block size) from a calibrated machine
// profile; Auto is its short alias.
const (
	Combining     = cart.Combining
	Trivial       = cart.Trivial
	Auto          = cart.Auto
	AlgorithmAuto = cart.Auto
)

// ProcNull marks a missing neighbor on a non-periodic mesh.
const ProcNull = cart.ProcNull

// Plan is a precomputed, reusable communication plan — the result of the
// paper's Cart_*_init persistent-collective initializers.
type Plan = cart.Plan

// Option configures NeighborhoodCreate.
type Option = cart.Option

// WithAlgorithm sets the communicator's default schedule family.
func WithAlgorithm(a Algorithm) Option { return cart.WithAlgorithm(a) }

// WithReorder requests topology-aware rank renumbering: when the run's
// cost model declares a node hierarchy, the torus is tiled into node-sized
// blocks so stencil neighbors co-locate (the paper's reorder flag, which
// it notes mainstream MPI libraries accept but ignore).
func WithReorder() Option { return cart.WithReorder() }

// NeighborhoodCreate creates a Cartesian-neighborhood communicator over
// base: a torus/mesh of the given dimensions and one identical list of
// relative target offsets on every process. Collective; the isomorphism
// requirement is verified with the O(t) check of the paper's Section 2.2.
func NeighborhoodCreate(base *ProcComm, dims []int, periods []bool, neighborhood Neighborhood, weights []int, opts ...Option) (*Comm, error) {
	return cart.NeighborhoodCreate(base, dims, periods, neighborhood, weights, opts...)
}

// NeighborhoodCreateFlat is NeighborhoodCreate with the neighborhood as a
// flattened t×d offset array, the exact convention of Listing 1.
func NeighborhoodCreateFlat(base *ProcComm, d int, dims []int, periods []bool, targetRelative []int, weights []int, opts ...Option) (*Comm, error) {
	return cart.NeighborhoodCreateFlat(base, d, dims, periods, targetRelative, weights, opts...)
}

// DetectCartesian implements Section 2.2's auto-detection: from
// per-process target rank lists, collectively detect an isomorphic
// neighborhood and preselect the Cartesian algorithms.
func DetectCartesian(base *ProcComm, dims []int, periods []bool, targets []int, opts ...Option) (*Comm, bool, error) {
	return cart.DetectCartesian(base, dims, periods, targets, opts...)
}

// Alltoall sends a personalized block of m = len(send)/t elements to each
// target neighbor and receives block i from source neighbor i.
func Alltoall[T any](c *Comm, send, recv []T) error { return cart.Alltoall(c, send, recv) }

// Allgather sends all of send to every target neighbor and receives block
// i from source neighbor i.
func Allgather[T any](c *Comm, send, recv []T) error { return cart.Allgather(c, send, recv) }

// Alltoallv is the irregular alltoall with per-neighbor counts and
// displacements.
func Alltoallv[T any](c *Comm, send []T, sendCounts, sendDispls []int, recv []T, recvCounts, recvDispls []int) error {
	return cart.Alltoallv(c, send, sendCounts, sendDispls, recv, recvCounts, recvDispls)
}

// Allgatherv is the irregular allgather with per-source receive counts and
// displacements.
func Allgatherv[T any](c *Comm, send []T, recv []T, recvCounts, recvDispls []int) error {
	return cart.Allgatherv(c, send, recv, recvCounts, recvDispls)
}

// Alltoallw is the fully typed alltoall: an arbitrary element layout per
// neighbor block on both sides (Listing 3's halo exchange).
func Alltoallw[T any](c *Comm, send []T, sendLayouts []Layout, recv []T, recvLayouts []Layout) error {
	return cart.Alltoallw(c, send, sendLayouts, recv, recvLayouts)
}

// Allgatherw is the typed allgather the paper proposes as an MPI
// addition: one send layout, a distinct receive layout per source block.
func Allgatherw[T any](c *Comm, send []T, sendLayout Layout, recv []T, recvLayouts []Layout) error {
	return cart.Allgatherw(c, send, sendLayout, recv, recvLayouts)
}

// Persistent-plan initializers (Cart_*_init).
func AlltoallInit(c *Comm, m int, algo Algorithm) (*Plan, error) {
	return cart.AlltoallInit(c, m, algo)
}

// AllgatherInit precomputes a reusable allgather plan.
func AllgatherInit(c *Comm, m int, algo Algorithm) (*Plan, error) {
	return cart.AllgatherInit(c, m, algo)
}

// AlltoallvInit precomputes a reusable irregular alltoall plan.
func AlltoallvInit(c *Comm, sendCounts, sendDispls, recvCounts, recvDispls []int, algo Algorithm) (*Plan, error) {
	return cart.AlltoallvInit(c, sendCounts, sendDispls, recvCounts, recvDispls, algo)
}

// AlltoallwInit precomputes a reusable typed alltoall plan.
func AlltoallwInit(c *Comm, sendLayouts, recvLayouts []Layout, algo Algorithm) (*Plan, error) {
	return cart.AlltoallwInit(c, sendLayouts, recvLayouts, algo)
}

// AllgathervInit precomputes a reusable irregular allgather plan.
func AllgathervInit(c *Comm, sendCount int, recvCounts, recvDispls []int, algo Algorithm) (*Plan, error) {
	return cart.AllgathervInit(c, sendCount, recvCounts, recvDispls, algo)
}

// AllgatherwInit precomputes a reusable typed allgather plan.
func AllgatherwInit(c *Comm, sendLayout Layout, recvLayouts []Layout, algo Algorithm) (*Plan, error) {
	return cart.AllgatherwInit(c, sendLayout, recvLayouts, algo)
}

// RunPlan executes a precomputed plan (persistent-collective style); the
// element type binds at execution time.
func RunPlan[T any](p *Plan, send, recv []T) error { return cart.Run(p, send, recv) }

// MeshAlltoallInit precomputes the mesh-aware message-combining alltoall
// plan — the non-periodic case the paper leaves open (Section 2): every
// process derives its own relay set locally and pairing stays
// deadlock-free. On a torus it matches AlltoallInit with Combining.
func MeshAlltoallInit(c *Comm, m int) (*Plan, error) { return cart.MeshAlltoallInit(c, m) }

// Future is an in-flight nonblocking collective committed to the
// communicator's progress engine: Wait blocks for completion, Test polls,
// Err reports without blocking, Cancel requests local abandonment.
// Multiple futures may be in flight per communicator; all ranks must
// start them in the same order.
type Future = cart.Future

// Handle is the historical name of Future.
type Handle = cart.Handle

// ErrFutureCancelled is the typed completion error of a cancelled future
// (it also matches mpi.ErrCancelled under errors.Is).
var ErrFutureCancelled = cart.ErrFutureCancelled

// StartPlan begins a nonblocking execution of a plan on the progress
// engine (wall-clock runs only); complete it with the future's Wait.
func StartPlan[T any](p *Plan, send, recv []T) (*Future, error) {
	return cart.Start(p, send, recv)
}

// IcartAlltoall starts the nonblocking regular Cartesian alltoall
// (the paper's Cart_alltoall as a nonblocking collective): the plan comes
// from the communicator's cache, the rounds run on the per-world progress
// engine, and the returned future completes the operation.
func IcartAlltoall[T any](c *Comm, send, recv []T) (*Future, error) {
	return cart.IcartAlltoall(c, send, recv)
}

// IcartAllgather starts the nonblocking regular Cartesian allgather.
func IcartAllgather[T any](c *Comm, send, recv []T) (*Future, error) {
	return cart.IcartAllgather(c, send, recv)
}

// ReducePlan is a precomputed Cartesian neighborhood reduction plan (the
// Section 2.2 extension; the combining algorithm is the reversed allgather
// tree).
type ReducePlan = cart.ReducePlan

// NeighborReduceInit precomputes a neighborhood reduction plan for blocks
// of m elements.
func NeighborReduceInit(c *Comm, m int, algo Algorithm) (*ReducePlan, error) {
	return cart.NeighborReduceInit(c, m, algo)
}

// RunReduce executes a reduction plan: recv receives the op-combination of
// the contributions of all source neighbors R − N[i].
func RunReduce[T any](p *ReducePlan, send, recv []T, op func(a, b T) T) error {
	return cart.RunReduce(p, send, recv, op)
}

// NeighborReduce performs the blocking Cartesian neighborhood reduction.
func NeighborReduce[T any](c *Comm, send, recv []T, op func(a, b T) T) error {
	return cart.NeighborReduce(c, send, recv, op)
}

// ScheduleStats summarizes a neighborhood's schedule structure: t, C_k,
// C, the alltoall and allgather volumes and the cut-off ratio of Table 1.
type ScheduleStats = cart.Stats

// ComputeStats derives the Table 1 quantities from a neighborhood.
func ComputeStats(nbh Neighborhood) ScheduleStats { return cart.ComputeStats(nbh) }

// ---------------------------------------------------------------------
// Self-tuning algorithm selection and the compiled-plan cache.
// ---------------------------------------------------------------------

// Decision records one Auto algorithm selection: the inputs, both
// predicted costs, the crossover block size and the pick. Retrieve it
// from a plan with (*Plan).Decision after its first execution.
type Decision = cart.Decision

// OpKind names a collective operation family in selection records.
type OpKind = cart.OpKind

// Collective operation kinds.
const (
	OpAlltoall  = cart.OpAlltoall
	OpAllgather = cart.OpAllgather
)

// MachineProfile holds the calibrated machine constants the Auto
// selector uses: α (per-message latency), β (per-byte transfer time) and
// the send/receive CPU overheads, all in seconds.
type MachineProfile = tune.Profile

// CalibrateConfig bounds a calibration: probe count and the large-probe
// payload size.
type CalibrateConfig = tune.CalibrateConfig

// DefaultMachineProfile returns the built-in fallback constants (the
// paper's Hydra system), used when no cost model and no measured
// profile is available.
func DefaultMachineProfile() MachineProfile { return tune.Default() }

// Calibrate estimates the machine constants from seeded micro-probes
// over the live world (collective over c): ping-pongs for α and β, a
// nonblocking burst for the send/receive overheads. Under a virtual-time
// cost model it returns the model's constants deterministically. Install
// the result with SetMachineProfile to steer Auto selections.
func Calibrate(c *ProcComm, cfgs ...CalibrateConfig) (MachineProfile, error) {
	return tune.Calibrate(c, cfgs...)
}

// SetMachineProfile installs p as the process-wide measured profile;
// Auto selections on worlds without a cost model use it.
func SetMachineProfile(p MachineProfile) error { return tune.SetMachine(p) }

// MachineProfileInstalled returns the installed measured profile, if any.
func MachineProfileInstalled() (MachineProfile, bool) { return tune.Machine() }

// ClearMachineProfile removes the installed profile; Auto falls back to
// the built-in default constants.
func ClearMachineProfile() { tune.ClearMachine() }

// SaveMachineProfile persists a profile as JSON.
func SaveMachineProfile(path string, p MachineProfile) error { return tune.Save(path, p) }

// LoadMachineProfile reads a profile saved by SaveMachineProfile.
func LoadMachineProfile(path string) (MachineProfile, error) { return tune.Load(path) }

// DecideAlgorithm evaluates the selection model directly: given the
// operation, the neighborhood statistics (t trivial rounds, c combining
// rounds, v combining volume in blocks, d grid dimensions), the mean
// block size in bytes and a machine profile, it returns the full
// decision record. Pure — cartinfo uses it to print selection tables
// without building a world.
func DecideAlgorithm(op OpKind, t, c, v, d int, blockBytes float64, prof MachineProfile) Decision {
	return cart.Decide(op, t, c, v, d, blockBytes, prof)
}

// PlanCacheStats is a snapshot of the shared compiled-plan cache:
// occupancy, capacity, retained bytes and hit/miss/eviction counters.
type PlanCacheStats = cart.PlanCacheStats

// SnapshotPlanCache returns the current plan-cache statistics.
func SnapshotPlanCache() PlanCacheStats { return cart.SnapshotPlanCache() }

// SetPlanCacheCapacity bounds the shared plan cache to n entries
// (0 disables caching), evicting least-recently-used entries as needed;
// it returns the previous capacity.
func SetPlanCacheCapacity(n int) int { return cart.SetPlanCacheCapacity(n) }

// ResetPlanCache discards every cached plan and zeroes the statistics.
func ResetPlanCache() { cart.ResetPlanCache() }

// ---------------------------------------------------------------------
// Cost models (the evaluation substrate).
// ---------------------------------------------------------------------

// Model is the linear α-β per-message cost model driving virtual time.
type Model = netmodel.Model

// ModelPreset returns a named cost model: "hydra", "titan" or
// "titan-noisy" (Table 2's systems).
func ModelPreset(name string) (*Model, error) { return netmodel.Preset(name) }

// ---------------------------------------------------------------------
// Stencil application substrate (Listing 3 made reusable).
// ---------------------------------------------------------------------

// Grid2D is one process's block of a distributed 2-D grid with halo.
type Grid2D[T any] = stencil.Grid2D[T]

// Grid3D is one process's block of a distributed 3-D grid with halo.
type Grid3D[T any] = stencil.Grid3D[T]

// Exchanger2D performs the in-place 2-D halo exchange with one
// Cart_alltoallw plan.
type Exchanger2D = stencil.Exchanger2D

// Exchanger3D performs the in-place 3-D halo exchange.
type Exchanger3D = stencil.Exchanger3D

// NewGrid2D allocates a zeroed nx×ny block with the given halo depth.
func NewGrid2D[T any](nx, ny, halo int) (*Grid2D[T], error) {
	return stencil.NewGrid2D[T](nx, ny, halo)
}

// NewGrid3D allocates a zeroed nx×ny×nz block with the given halo depth.
func NewGrid3D[T any](nx, ny, nz, halo int) (*Grid3D[T], error) {
	return stencil.NewGrid3D[T](nx, ny, nz, halo)
}

// NewExchanger2D builds the 2-D halo exchanger over the process torus
// procDims; corners selects the 8-neighbor Moore exchange.
func NewExchanger2D[T any](base *ProcComm, procDims []int, g *Grid2D[T], corners bool, algo Algorithm) (*Exchanger2D, error) {
	return stencil.NewExchanger2D(base, procDims, g, corners, algo)
}

// NewExchanger2DOn is NewExchanger2D with explicit periodicity: mesh
// dimensions leave their physical-boundary halos untouched for the
// application's boundary conditions.
func NewExchanger2DOn[T any](base *ProcComm, procDims []int, periods []bool, g *Grid2D[T], corners bool, algo Algorithm) (*Exchanger2D, error) {
	return stencil.NewExchanger2DOn(base, procDims, periods, g, corners, algo)
}

// NewExchanger3D builds the 3-D halo exchanger; corners selects the
// 26-neighbor Moore exchange.
func NewExchanger3D[T any](base *ProcComm, procDims []int, g *Grid3D[T], corners bool, algo Algorithm) (*Exchanger3D, error) {
	return stencil.NewExchanger3D(base, procDims, g, corners, algo)
}

// NewExchanger3DOn is NewExchanger3D with explicit periodicity.
func NewExchanger3DOn[T any](base *ProcComm, procDims []int, periods []bool, g *Grid3D[T], corners bool, algo Algorithm) (*Exchanger3D, error) {
	return stencil.NewExchanger3DOn(base, procDims, periods, g, corners, algo)
}

// Exchange2D fills g's halo from the neighboring processes, in place.
func Exchange2D[T any](e *Exchanger2D, g *Grid2D[T]) error { return stencil.ExchangeGrid2D(e, g) }

// Exchange3D fills g's halo from the neighboring processes, in place.
func Exchange3D[T any](e *Exchanger3D, g *Grid3D[T]) error { return stencil.ExchangeGrid3D(e, g) }

// TwoPhaseExchanger2D is the combined-schedule halo exchanger of the
// paper's Section 3.4: dimension-wise widened strips forward the corners
// inside data that travels anyway, eliminating the duplicated corner
// bytes of the plain Moore exchange.
type TwoPhaseExchanger2D = stencil.TwoPhaseExchanger2D

// TwoPhaseExchanger3D is the 3-D combined-schedule halo exchanger.
type TwoPhaseExchanger3D = stencil.TwoPhaseExchanger3D

// NewTwoPhaseExchanger2D builds the combined-schedule 2-D exchanger.
func NewTwoPhaseExchanger2D[T any](base *ProcComm, procDims []int, g *Grid2D[T], algo Algorithm) (*TwoPhaseExchanger2D, error) {
	return stencil.NewTwoPhaseExchanger2D(base, procDims, g, algo)
}

// NewTwoPhaseExchanger3D builds the combined-schedule 3-D exchanger.
func NewTwoPhaseExchanger3D[T any](base *ProcComm, procDims []int, g *Grid3D[T], algo Algorithm) (*TwoPhaseExchanger3D, error) {
	return stencil.NewTwoPhaseExchanger3D(base, procDims, g, algo)
}

// ExchangeTwoPhase2D runs both phases of the combined 2-D exchange.
func ExchangeTwoPhase2D[T any](e *TwoPhaseExchanger2D, g *Grid2D[T]) error {
	return stencil.ExchangeTwoPhase2D(e, g)
}

// ExchangeTwoPhase3D runs all three phases of the combined 3-D exchange.
func ExchangeTwoPhase3D[T any](e *TwoPhaseExchanger3D, g *Grid3D[T]) error {
	return stencil.ExchangeTwoPhase3D(e, g)
}

// Decompose splits a global grid extent evenly over parts processes.
func Decompose(global, parts int) (int, error) { return stencil.Decompose(global, parts) }

// Stencil kernels for the examples.
func Jacobi5(dst, src *Grid2D[float64])           { stencil.Jacobi5(dst, src) }
func Jacobi9(dst, src *Grid2D[float64])           { stencil.Jacobi9(dst, src) }
func Heat7(dst, src *Grid3D[float64], r float64)  { stencil.Heat7(dst, src, r) }
func Heat27(dst, src *Grid3D[float64], r float64) { stencil.Heat27(dst, src, r) }
func LifeStep(dst, src *Grid2D[uint8])            { stencil.Life(dst, src) }
