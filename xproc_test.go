package cartcc_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"cartcc"
	"cartcc/internal/sim"
)

// This file is the cross-process differential test: TestMain re-execs the
// test binary as the worker processes of a real multi-process TCP world
// (2 and 4 processes), each hosting a subset of the ranks, running the
// trivial Cartesian collective end to end over the wire. The parent
// merges every process's receive buffers and compares them byte for byte
// against the in-process oracle from internal/sim — the strongest
// statement the repository can make that the transport is semantically
// invisible.

// Child-process environment contract.
const (
	envChild = "CARTCC_XPROC_CHILD" // "1" switches TestMain into worker mode
	envSelf  = "CARTCC_XPROC_SELF"  // this process's index into the map
	envAddrs = "CARTCC_XPROC_ADDRS" // comma-separated listen addresses
	envRanks = "CARTCC_XPROC_RANKS" // per-process rank lists, "0,1;2,3"
	envOp    = "CARTCC_XPROC_OP"    // "alltoall" or "allgather"
	envOut   = "CARTCC_XPROC_OUT"   // path for this process's result JSON
)

// exitBindRace is the child's exit code when its reserved port was taken
// between the parent's probe and the child's bind; the parent reserves
// fresh ports and retries the whole world.
const exitBindRace = 21

// xprocScenario is the one scenario both sides run: a 2×2 periodic torus
// with a three-vector neighborhood, small enough to be fast and irregular
// enough that any misrouted block changes the payload.
func xprocScenario(op string) sim.Scenario {
	return sim.Scenario{
		Dims:         []int{2, 2},
		Periods:      []bool{true, true},
		Neighborhood: [][]int{{0, 0}, {0, 1}, {1, 0}},
		Op:           op,
		BlockSize:    3,
	}
}

func TestMain(m *testing.M) {
	if os.Getenv(envChild) != "" {
		os.Exit(xprocChild())
	}
	os.Exit(m.Run())
}

// xprocChild is one worker process of the multi-process world.
func xprocChild() int {
	self, err := strconv.Atoi(os.Getenv(envSelf))
	if err != nil {
		fmt.Fprintf(os.Stderr, "xproc child: bad %s: %v\n", envSelf, err)
		return 2
	}
	addrs := strings.Split(os.Getenv(envAddrs), ",")
	var procs []cartcc.ProcSpec
	for i, rl := range strings.Split(os.Getenv(envRanks), ";") {
		spec := cartcc.ProcSpec{Addr: addrs[i]}
		for _, rs := range strings.Split(rl, ",") {
			r, err := strconv.Atoi(rs)
			if err != nil {
				fmt.Fprintf(os.Stderr, "xproc child: bad rank %q: %v\n", rs, err)
				return 2
			}
			spec.Ranks = append(spec.Ranks, r)
		}
		procs = append(procs, spec)
	}
	sc := xprocScenario(os.Getenv(envOp))
	p := sc.Procs()
	nbh := make(cartcc.Neighborhood, len(sc.Neighborhood))
	for i, off := range sc.Neighborhood {
		nbh[i] = append([]int(nil), off...)
	}
	t, m0 := len(nbh), sc.BlockSize

	var recvsMu sync.Mutex
	recvs := make(map[string][]int)
	err = cartcc.RunTransport(
		cartcc.RunConfig{Procs: p, Timeout: 60 * time.Second},
		cartcc.TransportConfig{Network: "tcp", Procs: procs, Self: self},
		func(w *cartcc.ProcComm) error {
			cc, err := cartcc.NeighborhoodCreate(w, sc.Dims, sc.Periods, nbh, nil)
			if err != nil {
				return err
			}
			var plan *cartcc.Plan
			if sc.Op == "alltoall" {
				plan, err = cartcc.AlltoallInit(cc, m0, cartcc.Trivial)
			} else {
				plan, err = cartcc.AllgatherInit(cc, m0, cartcc.Trivial)
			}
			if err != nil {
				return err
			}
			sendLen := t * m0
			if sc.Op == "allgather" {
				sendLen = m0
			}
			send := make([]int, sendLen)
			for i := range send {
				send[i] = w.Rank()*1_000_000 + i
			}
			recv := make([]int, t*m0)
			for i := range recv {
				recv[i] = -1
			}
			if err := cartcc.RunPlan(plan, send, recv); err != nil {
				return err
			}
			recvsMu.Lock()
			recvs[strconv.Itoa(w.Rank())] = recv
			recvsMu.Unlock()
			return nil
		})
	if err != nil {
		if errors.Is(err, syscall.EADDRINUSE) {
			return exitBindRace
		}
		fmt.Fprintf(os.Stderr, "xproc child %d: %v\n", self, err)
		return 1
	}
	data, err := json.Marshal(recvs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xproc child %d: marshal: %v\n", self, err)
		return 1
	}
	if err := os.WriteFile(os.Getenv(envOut), data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "xproc child %d: write: %v\n", self, err)
		return 1
	}
	return 0
}

// reserveAddrs picks n free TCP ports by binding and releasing them. The
// race window until the children re-bind is real; bind collisions exit
// with exitBindRace and the caller retries.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// runXprocWorld launches one multi-process world (rank lists per process)
// and returns the merged per-rank receive buffers. Retries with fresh
// ports when a child loses the bind race.
func runXprocWorld(t *testing.T, op string, rankLists [][]int) [][]int {
	t.Helper()
	sc := xprocScenario(op)
	for attempt := 0; attempt < 3; attempt++ {
		addrs := reserveAddrs(t, len(rankLists))
		ranksEnv := make([]string, len(rankLists))
		for i, rl := range rankLists {
			parts := make([]string, len(rl))
			for j, r := range rl {
				parts[j] = strconv.Itoa(r)
			}
			ranksEnv[i] = strings.Join(parts, ",")
		}
		dir := t.TempDir()
		type childRes struct {
			proc int
			err  error
			code int
			out  string
		}
		results := make(chan childRes, len(rankLists))
		outFiles := make([]string, len(rankLists))
		for i := range rankLists {
			outFiles[i] = filepath.Join(dir, fmt.Sprintf("proc%d.json", i))
			cmd := exec.Command(os.Args[0])
			cmd.Env = append(os.Environ(),
				envChild+"=1",
				envSelf+"="+strconv.Itoa(i),
				envAddrs+"="+strings.Join(addrs, ","),
				envRanks+"="+strings.Join(ranksEnv, ";"),
				envOp+"="+op,
				envOut+"="+outFiles[i],
			)
			go func(i int, cmd *exec.Cmd) {
				out, err := cmd.CombinedOutput()
				code := 0
				var xerr *exec.ExitError
				if errors.As(err, &xerr) {
					code = xerr.ExitCode()
				}
				results <- childRes{proc: i, err: err, code: code, out: string(out)}
			}(i, cmd)
		}
		retry := false
		failed := false
		for range rankLists {
			select {
			case r := <-results:
				if r.out != "" {
					t.Logf("proc %d output:\n%s", r.proc, r.out)
				}
				switch {
				case r.code == exitBindRace:
					retry = true
				case r.err != nil:
					failed = true
					t.Errorf("attempt %d: proc %d: %v", attempt, r.proc, r.err)
				}
			case <-time.After(120 * time.Second):
				t.Fatal("cross-process world timed out")
			}
		}
		if retry && !failed {
			t.Logf("attempt %d: bind race, retrying with fresh ports", attempt)
			continue
		}
		if failed {
			t.FailNow()
		}
		merged := make([][]int, sc.Procs())
		for _, f := range outFiles {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatalf("read %s: %v", f, err)
			}
			var recvs map[string][]int
			if err := json.Unmarshal(data, &recvs); err != nil {
				t.Fatalf("parse %s: %v", f, err)
			}
			for rs, recv := range recvs {
				r, _ := strconv.Atoi(rs)
				merged[r] = recv
			}
		}
		return merged
	}
	t.Fatal("lost the bind race three times")
	return nil
}

// TestCrossProcessDifferential runs real 2- and 4-process TCP worlds and
// compares every rank's payloads against the in-process trivial oracle.
func TestCrossProcessDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary; skipped in -short")
	}
	cases := []struct {
		name      string
		op        string
		rankLists [][]int
	}{
		{"alltoall-2proc", "alltoall", [][]int{{0, 1}, {2, 3}}},
		{"alltoall-4proc", "alltoall", [][]int{{0}, {1}, {2}, {3}}},
		{"allgather-2proc-split", "allgather", [][]int{{0, 3}, {1, 2}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := sim.ReferencePayloads(func() *sim.Scenario { s := xprocScenario(tc.op); return &s }())
			if err != nil {
				t.Fatalf("in-process oracle: %v", err)
			}
			got := runXprocWorld(t, tc.op, tc.rankLists)
			for r := range want {
				if got[r] == nil {
					t.Fatalf("rank %d missing from cross-process results", r)
				}
				if fmt.Sprint(got[r]) != fmt.Sprint(want[r]) {
					t.Errorf("rank %d payload diverges\n  tcp world: %v\n  oracle:    %v", r, got[r], want[r])
				}
			}
		})
	}
}
