package bench

import (
	"fmt"

	"cartcc/internal/cart"
	"cartcc/internal/mpi"
	"cartcc/internal/netmodel"
	"cartcc/internal/stats"
	"cartcc/internal/vec"
	"time"
)

// Panel pairs a figure panel label with its experiment configuration.
type Panel struct {
	Label string
	Cfg   Config
}

// Scale tunes how heavy the experiment runs are: process counts and
// repetitions. The paper ran 1152–16384 MPI processes; the simulated
// defaults keep wall-clock time reasonable while preserving the shapes
// (per-process message counts are independent of p under the α-β model).
type Scale struct {
	ProcsD3 int
	ProcsD5 int
	Reps    int
}

// DefaultScale is used by cmd/cartbench.
var DefaultScale = Scale{ProcsD3: 64, ProcsD5: 32, Reps: 5}

// QuickScale keeps CI and the Go benchmarks fast.
var QuickScale = Scale{ProcsD3: 27, ProcsD5: 32, Reps: 3}

func (s Scale) procs(d int) int {
	if d >= 5 {
		return s.ProcsD5
	}
	return s.ProcsD3
}

// Figure3 reproduces Figure 3: Cart_alltoall vs MPI_Neighbor_alltoall with
// all four series on the Hydra (Open MPI) profile, panels
// (d,n) ∈ {(3,3),(3,5),(5,3),(5,5)}, m ∈ {1,10,100}.
func Figure3(sc Scale) []Panel {
	return alltoallPanels(sc, "hydra", 1, AllSeries)
}

// Figure4 reproduces Figure 4: the same sweep as Figure 3 on the second
// MPI library of the paper (Intel MPI on Hydra; in this reproduction the
// same direct-delivery baseline under the Hydra model with an independent
// seed — our runtime has no library-specific pathologies to model, see
// EXPERIMENTS.md).
func Figure4(sc Scale) []Panel {
	return alltoallPanels(sc, "hydra", 2, AllSeries)
}

// Figure5 reproduces Figure 5: the Cray Titan profile with the two series
// the paper plots there (baseline and message-combining Cart_alltoall).
func Figure5(sc Scale) []Panel {
	return alltoallPanels(sc, "titan", 3, []Series{SeriesNeighbor, SeriesCombining})
}

func alltoallPanels(sc Scale, profile string, seed int64, series []Series) []Panel {
	var panels []Panel
	for _, dn := range [][2]int{{3, 3}, {3, 5}, {5, 3}, {5, 5}} {
		d, n := dn[0], dn[1]
		panels = append(panels, Panel{
			Label: fmt.Sprintf("d: %d  n: %d", d, n),
			Cfg: Config{
				Op: cart.OpAlltoall, D: d, N: n, F: -1,
				Procs: sc.procs(d), Reps: sc.Reps,
				BlockSizes: []int{1, 10, 100},
				Profile:    profile, Seed: seed, Series: series,
			},
		})
	}
	return panels
}

// Figure6Top reproduces Figure 6 (top): Cart_allgather with all four
// series for the large d=5, n=5 neighborhood on the Hydra profile.
func Figure6Top(sc Scale) []Panel {
	return []Panel{{
		Label: "allgather d: 5  n: 5",
		Cfg: Config{
			Op: cart.OpAllgather, D: 5, N: 5, F: -1,
			Procs: sc.ProcsD5, Reps: sc.Reps,
			BlockSizes: []int{1, 10, 100},
			Profile:    "hydra", Seed: 4,
		},
	}}
}

// Figure6Bottom reproduces Figure 6 (bottom): the irregular Cart_alltoallv
// with the paper's m·(d−z) block sizing on the Titan profile, m ∈ {1, 10}.
func Figure6Bottom(sc Scale) []Panel {
	return []Panel{{
		Label: "alltoallv d: 5  n: 5 (irregular)",
		Cfg: Config{
			Op: cart.OpAlltoall, D: 5, N: 5, F: -1,
			Procs: sc.ProcsD5, Reps: sc.Reps,
			BlockSizes: []int{1, 10},
			Irregular:  true,
			Profile:    "titan", Seed: 5,
			Series: []Series{SeriesNeighbor, SeriesCombining},
		},
	}}
}

// HistogramConfig parameterizes the Figure 7 reproduction: run-time
// distributions of the combining Cart_alltoall under system noise at two
// scales.
type HistogramConfig struct {
	D, N, M int
	Procs   int
	Reps    int
	Bins    int
	Seed    int64
}

// Figure7Configs returns the two panels of Figure 7: the same N:3, d:3,
// m:1 measurement at a small and a large process count (128×16 and
// 1024×16 in the paper, scaled here).
func Figure7Configs(sc Scale) []HistogramConfig {
	return []HistogramConfig{
		{D: 3, N: 3, M: 1, Procs: sc.ProcsD3, Reps: 120, Bins: 25, Seed: 7},
		{D: 3, N: 3, M: 1, Procs: 4 * sc.ProcsD3, Reps: 120, Bins: 25, Seed: 7},
	}
}

// RunHistogram measures the combining Cart_alltoall under the noisy Titan
// model and bins the per-repetition times (microseconds).
func RunHistogram(hc HistogramConfig) (*stats.Histogram, []float64, error) {
	model := netmodel.TitanNoisy()
	nbh, err := vec.Stencil(hc.D, hc.N, -1)
	if err != nil {
		return nil, nil, err
	}
	dims, err := vec.DimsCreate(hc.Procs, hc.D)
	if err != nil {
		return nil, nil, err
	}
	var samples []float64
	err = mpi.Run(mpi.Config{Procs: hc.Procs, Model: model, Seed: hc.Seed, Timeout: 5 * time.Minute}, func(w *mpi.Comm) error {
		c, err := cart.NeighborhoodCreate(w, dims, nil, nbh, nil)
		if err != nil {
			return err
		}
		plan, err := cart.AlltoallInit(c, hc.M, cart.Combining)
		if err != nil {
			return err
		}
		t := len(nbh)
		send := make([]int32, t*hc.M)
		recv := make([]int32, t*hc.M)
		for rep := 0; rep < hc.Reps; rep++ {
			dt, err := timeOnce(w, func() error { return cart.Run(plan, send, recv) })
			if err != nil {
				return err
			}
			if w.Rank() == 0 {
				samples = append(samples, dt*1e6) // µs, as in Figure 7
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	h, err := stats.NewHistogram(samples, hc.Bins)
	if err != nil {
		return nil, nil, err
	}
	return h, samples, nil
}
