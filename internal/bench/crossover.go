package bench

import (
	"fmt"
	"strings"

	"cartcc/internal/cart"
	"cartcc/internal/netmodel"
	"cartcc/internal/vec"
)

// CrossoverResult records the empirical validation of the paper's
// Section 3.1 cut-off analysis for one (d, n) neighborhood: the measured
// relative run time of message combining across a logarithmic sweep of
// block sizes, and where it crosses 1.0, against the analytic prediction
// m* = (α/β)·(t−C)/(V−t).
type CrossoverResult struct {
	D, N int
	// Ms are the swept block sizes in elements (int32, 4 bytes each).
	Ms []int
	// Rel[i] is the measured combining/direct ratio at Ms[i].
	Rel []float64
	// AnalyticBytes is the cut-off the paper's idealized formula predicts,
	// (α/β)·(t−C)/(V−t).
	AnalyticBytes float64
	// ModelBytes is the cut-off predicted by the runtime's detailed LogGP
	// accounting (netmodel.CutoffBytesLogGP).
	ModelBytes float64
	// EmpiricalBytes is the measured crossing point in bytes, linearly
	// interpolated between the bracketing sweep points (0 when combining
	// never loses inside the sweep).
	EmpiricalBytes float64
}

// RunCrossover sweeps block sizes for the (d, n, f=-1) neighborhood under
// the profile's model and locates the empirical cut-off.
func RunCrossover(d, n, procs int, profile string, ms []int) (*CrossoverResult, error) {
	if len(ms) == 0 {
		// Capped at 16000 ints (64 kB blocks): large sweeps multiply into
		// gigabytes of in-flight wire data for the bigger neighborhoods.
		ms = []int{1, 10, 100, 1000, 4000, 16000}
	}
	if procs > 32 {
		procs = 32
	}
	cells, err := Run(Config{
		Op: cart.OpAlltoall, D: d, N: n, F: -1,
		Procs: procs, Reps: 3, BlockSizes: ms,
		InnerIters: 2,
		Profile:    profile, Seed: 21,
		Series: []Series{SeriesNeighbor, SeriesCombining},
	})
	if err != nil {
		return nil, err
	}
	model, err := netmodel.Preset(profile)
	if err != nil {
		return nil, err
	}
	nbh, err := vec.Stencil(d, n, -1)
	if err != nil {
		return nil, err
	}
	s := cart.ComputeStats(nbh)
	res := &CrossoverResult{
		D: d, N: n,
		AnalyticBytes: model.CutoffBytes(s.T, s.C, s.VolAlltoall),
		ModelBytes:    model.CutoffBytesLogGP(s.TComm, s.C, s.VolAlltoall, d),
	}
	for _, cell := range cells {
		res.Ms = append(res.Ms, cell.M)
		res.Rel = append(res.Rel, cell.Rel[SeriesCombining])
	}
	// Locate the first crossing of 1.0.
	const elemBytes = 4
	for i := 1; i < len(res.Rel); i++ {
		if res.Rel[i-1] < 1 && res.Rel[i] >= 1 {
			x0, x1 := float64(res.Ms[i-1]*elemBytes), float64(res.Ms[i]*elemBytes)
			y0, y1 := res.Rel[i-1], res.Rel[i]
			res.EmpiricalBytes = x0 + (1-y0)/(y1-y0)*(x1-x0)
			break
		}
	}
	return res, nil
}

// FormatCrossover renders the sweep and both cut-off estimates.
func FormatCrossover(res *CrossoverResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cut-off validation — d=%d n=%d (combining/direct vs block size)\n", res.D, res.N)
	for i, m := range res.Ms {
		marker := ""
		if res.Rel[i] >= 1 {
			marker = "   <- combining loses"
		}
		fmt.Fprintf(&b, "  m=%7d ints (%8d B): %7.3f%s\n", m, m*4, res.Rel[i], marker)
	}
	fmt.Fprintf(&b, "  paper's cut-off (α/β)·(t−C)/(V−t):  %8.0f B\n", res.AnalyticBytes)
	fmt.Fprintf(&b, "  model-consistent cut-off (LogGP):   %8.0f B\n", res.ModelBytes)
	if res.EmpiricalBytes > 0 {
		fmt.Fprintf(&b, "  empirical cut-off (interpolated):   %8.0f B\n", res.EmpiricalBytes)
	} else {
		fmt.Fprintf(&b, "  empirical cut-off: not reached inside the sweep\n")
	}
	return b.String()
}
