package bench

import (
	"fmt"
	"strings"

	"cartcc/internal/cart"
	"cartcc/internal/vec"
)

// FormatPanels renders a figure's panels as a text table: absolute
// baseline times plus relative run times (±95% CI) per series, the same
// content as the bars and annotations of the paper's figures.
func FormatPanels(title string, panels []Panel, results [][]Cell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	for pi, panel := range panels {
		cfg := panel.Cfg.withDefaults()
		fmt.Fprintf(&b, "\n[%s]  p=%d, profile=%s, reps=%d\n", panel.Label, cfg.Procs, cfg.Profile, cfg.Reps)
		series := SortSeries(cfg.Series)
		fmt.Fprintf(&b, "%6s %14s", "m", "baseline(ms)")
		for _, s := range series {
			if s == SeriesNeighbor {
				continue
			}
			fmt.Fprintf(&b, " %24s", s)
		}
		fmt.Fprintln(&b)
		for _, cell := range results[pi] {
			fmt.Fprintf(&b, "%6d %14.4f", cell.M, cell.Baseline*1e3)
			for _, s := range series {
				if s == SeriesNeighbor {
					continue
				}
				fmt.Fprintf(&b, " %17.3f±%.3f", cell.Rel[s], cell.CI[s])
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String()
}

// BarPanels renders a figure's panels as horizontal bar charts, one group
// of bars per block size — the visual analog of the paper's figures. Bars
// are scaled per panel so the baseline (1.0) sits at a fixed width.
func BarPanels(title string, panels []Panel, results [][]Cell) string {
	const unit = 30 // characters per 1.0 relative run time
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	for pi, panel := range panels {
		cfg := panel.Cfg.withDefaults()
		fmt.Fprintf(&b, "\n[%s]  baseline = MPI_Neighbor (1.0)\n", panel.Label)
		for _, cell := range results[pi] {
			fmt.Fprintf(&b, " m=%d (baseline %.4f ms)\n", cell.M, cell.Baseline*1e3)
			for _, s := range SortSeries(cfg.Series) {
				rel := cell.Rel[s]
				if s == SeriesNeighbor {
					rel = 1.0
				}
				w := int(rel*unit + 0.5)
				capped := ""
				if w > 3*unit {
					w = 3 * unit
					capped = "+"
				}
				if w < 1 {
					w = 1
				}
				fmt.Fprintf(&b, "   %-18s %s%s %.3f\n", s, strings.Repeat("█", w), capped, rel)
			}
		}
	}
	return b.String()
}

// CSVPanels renders the same results as CSV rows:
// figure,panel,d,n,m,series,abs_seconds,relative,ci.
func CSVPanels(figure string, panels []Panel, results [][]Cell) string {
	var b strings.Builder
	b.WriteString("figure,panel,d,n,m,series,abs_seconds,relative,ci\n")
	for pi, panel := range panels {
		cfg := panel.Cfg.withDefaults()
		for _, cell := range results[pi] {
			for _, s := range SortSeries(cfg.Series) {
				fmt.Fprintf(&b, "%s,%q,%d,%d,%d,%q,%.9g,%.6g,%.6g\n",
					figure, panel.Label, cell.D, cell.N, cell.M, s, cell.Abs[s], cell.Rel[s], cell.CI[s])
			}
		}
	}
	return b.String()
}

// Table1Row is one column block of the paper's Table 1 for a (d, n)
// stencil.
type Table1Row struct {
	D, N int
	cart.Stats
}

// Table1 computes every (d, n) cell of the paper's Table 1.
func Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, d := range []int{2, 3, 4, 5} {
		for _, n := range []int{3, 4, 5} {
			nbh, err := vec.Stencil(d, n, -1)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table1Row{D: d, N: n, Stats: cart.ComputeStats(nbh)})
		}
	}
	return rows, nil
}

// FormatTable1 renders Table 1 in the paper's layout: one column per
// (d, n), rows for t−1 (communication rounds of the trivial algorithm),
// C, the allgather and alltoall volumes, and the cut-off ratio.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1 — rounds, volumes and cut-off ratio for the (d,n,f=-1) stencil family\n")
	fmt.Fprintf(&b, "%-22s", "")
	for _, r := range rows {
		fmt.Fprintf(&b, " %9s", fmt.Sprintf("d%d,n%d", r.D, r.N))
	}
	fmt.Fprintln(&b)
	line := func(label string, f func(Table1Row) string) {
		fmt.Fprintf(&b, "%-22s", label)
		for _, r := range rows {
			fmt.Fprintf(&b, " %9s", f(r))
		}
		fmt.Fprintln(&b)
	}
	line("t = n^d - 1", func(r Table1Row) string { return fmt.Sprint(r.TComm) })
	line("C = d(n-1)", func(r Table1Row) string { return fmt.Sprint(r.C) })
	line("Allgather V", func(r Table1Row) string { return fmt.Sprint(r.VolAllgather) })
	line("Alltoall V", func(r Table1Row) string { return fmt.Sprint(r.VolAlltoall) })
	line("(t-C)/(V-t), t=n^d", func(r Table1Row) string { return fmt.Sprintf("%.3f", r.CutoffRatio) })
	return b.String()
}
