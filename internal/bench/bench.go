// Package bench is the experiment harness that regenerates the tables and
// figures of the paper's evaluation (Section 4): workload generation for
// the (d, n, f) stencil family, measurement of the Cartesian collectives
// against the MPI neighborhood-collective baselines under the virtual-time
// cost models, Appendix A's robust statistics, and text/CSV rendering.
package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"cartcc/internal/cart"
	"cartcc/internal/mpi"
	"cartcc/internal/netmodel"
	"cartcc/internal/stats"
	"cartcc/internal/vec"
)

// Series identifies one measured implementation variant, named as in the
// figures of the paper.
type Series string

const (
	// SeriesNeighbor is the blocking MPI_Neighbor_* baseline all figures
	// normalize to (direct delivery over a distributed graph).
	SeriesNeighbor Series = "MPI_Neighbor"
	// SeriesIneighbor is the nonblocking MPI_Ineighbor_* baseline.
	SeriesIneighbor Series = "MPI_Ineighbor"
	// SeriesTrivial is the t-round blocking Cartesian algorithm
	// (Listing 4).
	SeriesTrivial Series = "Cart (trivial)"
	// SeriesCombining is the message-combining Cartesian algorithm
	// (Algorithms 1 and 2).
	SeriesCombining Series = "Cart (combining)"
)

// AllSeries is the four-variant lineup of Figures 3 and 4.
var AllSeries = []Series{SeriesNeighbor, SeriesIneighbor, SeriesTrivial, SeriesCombining}

// Config describes one experiment sweep.
type Config struct {
	// Op selects alltoall or allgather.
	Op cart.OpKind
	// D, N, F parameterize the stencil neighborhood family of §4.1.1.
	D, N, F int
	// Procs is the number of simulated processes; dimensions are derived
	// with DimsCreate. Zero picks a default suited to D.
	Procs int
	// BlockSizes are the m values (elements per block; the paper uses
	// MPI_INT, our element type is int32).
	BlockSizes []int
	// Irregular applies the paper's Figure 6 block sizing m·(d−z) with 0
	// for the self block (alltoallv) instead of uniform blocks.
	Irregular bool
	// Reps is the number of timed repetitions per variant.
	Reps int
	// InnerIters is the number of back-to-back operations per timed
	// repetition; the recorded sample is the mean. Batching amortizes the
	// barrier exit skew that would otherwise bias relative run times
	// toward 1 as p grows (the paper likewise measures repetition loops).
	// Zero means 4.
	InnerIters int
	// Profile names the netmodel preset and the Appendix A filter:
	// "hydra", "titan" or "titan-noisy".
	Profile string
	// Seed drives the deterministic noise generators.
	Seed int64
	// Series are the variants to measure; nil means AllSeries.
	Series []Series
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Procs == 0 {
		switch {
		case c.D >= 5:
			c.Procs = 32
		case c.D >= 4:
			c.Procs = 81
		default:
			c.Procs = 64
		}
	}
	if c.Reps == 0 {
		c.Reps = 5
	}
	if c.InnerIters == 0 {
		c.InnerIters = 4
	}
	if c.Profile == "" {
		c.Profile = "hydra"
	}
	if len(c.BlockSizes) == 0 {
		c.BlockSizes = []int{1, 10, 100}
	}
	if c.Series == nil {
		c.Series = AllSeries
	}
	hasBase := false
	for _, s := range c.Series {
		if s == SeriesNeighbor {
			hasBase = true
		}
	}
	if !hasBase {
		c.Series = append([]Series{SeriesNeighbor}, c.Series...)
	}
	if c.F == 0 {
		c.F = -1
	}
	return c
}

// Cell is one measured (d, n, m) cell of a figure: the absolute baseline
// time and, per series, the mean relative run time with its 95% CI
// half-width, after Appendix A filtering.
type Cell struct {
	D, N, M  int
	Baseline float64 // absolute seconds, SeriesNeighbor mean
	Rel      map[Series]float64
	CI       map[Series]float64
	Abs      map[Series]float64
}

// Run executes the sweep and returns one Cell per block size.
func Run(cfg Config) ([]Cell, error) {
	cfg = cfg.withDefaults()
	samples, err := RunSamples(cfg)
	if err != nil {
		return nil, err
	}
	cells := make([]Cell, 0, len(cfg.BlockSizes))
	for _, m := range cfg.BlockSizes {
		cell := Cell{D: cfg.D, N: cfg.N, M: m,
			Rel: map[Series]float64{}, CI: map[Series]float64{}, Abs: map[Series]float64{}}
		base := stats.Mean(stats.Filter(cfg.Profile, samples[m][SeriesNeighbor]))
		cell.Baseline = base
		for _, s := range cfg.Series {
			filtered := stats.Filter(cfg.Profile, samples[m][s])
			mean, hw := stats.MeanCI(filtered)
			cell.Abs[s] = mean
			if base > 0 {
				cell.Rel[s] = mean / base
				cell.CI[s] = hw / base
			}
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// RunSamples executes the sweep and returns the raw per-repetition timings
// (seconds of virtual time, max over ranks) for every block size and
// series — the input to both the figure cells and the Figure 7 histograms.
func RunSamples(cfg Config) (map[int]map[Series][]float64, error) {
	cfg = cfg.withDefaults()
	model, err := netmodel.Preset(cfg.Profile)
	if err != nil {
		return nil, err
	}
	nbh, err := vec.Stencil(cfg.D, cfg.N, cfg.F)
	if err != nil {
		return nil, err
	}
	dims, err := vec.DimsCreate(cfg.Procs, cfg.D)
	if err != nil {
		return nil, err
	}

	var mu sync.Mutex
	samples := map[int]map[Series][]float64{} // m -> series -> samples
	for _, m := range cfg.BlockSizes {
		samples[m] = map[Series][]float64{}
	}

	err = mpi.Run(mpi.Config{Procs: cfg.Procs, Model: model, Seed: cfg.Seed, Timeout: 5 * time.Minute}, func(w *mpi.Comm) error {
		c, err := cart.NeighborhoodCreate(w, dims, nil, nbh, nil)
		if err != nil {
			return err
		}
		graph, err := c.DistGraph()
		if err != nil {
			return err
		}
		for _, m := range cfg.BlockSizes {
			ops, err := buildVariants(cfg, c, graph, nbh, m)
			if err != nil {
				return err
			}
			for _, s := range cfg.Series {
				op, ok := ops[s]
				if !ok {
					return fmt.Errorf("bench: unknown series %q", s)
				}
				for rep := 0; rep < cfg.Reps; rep++ {
					dt, err := timeBatch(w, op, cfg.InnerIters)
					if err != nil {
						return err
					}
					if w.Rank() == 0 {
						mu.Lock()
						samples[m][s] = append(samples[m][s], dt)
						mu.Unlock()
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return samples, nil
}

// timeOnce measures one synchronized execution of op in virtual time and
// returns the maximum elapsed time over all ranks (every rank returns the
// same value).
func timeOnce(w *mpi.Comm, op func() error) (float64, error) {
	return timeBatch(w, op, 1)
}

// timeBatch measures n back-to-back executions after one barrier and
// returns the per-operation mean of the rank-wise maximum.
func timeBatch(w *mpi.Comm, op func() error, n int) (float64, error) {
	if n < 1 {
		n = 1
	}
	if err := mpi.Barrier(w); err != nil {
		return 0, err
	}
	t0 := w.VTime()
	for i := 0; i < n; i++ {
		if err := op(); err != nil {
			return 0, err
		}
	}
	elapsed := []float64{(w.VTime() - t0) / float64(n)}
	if err := mpi.Allreduce(w, elapsed, elapsed, mpi.MaxOp[float64]); err != nil {
		return 0, err
	}
	return elapsed[0], nil
}

// buildVariants constructs the four measured operations for one (op, m)
// configuration. Element type is int32, matching the paper's MPI_INT.
func buildVariants(cfg Config, c *cart.Comm, graph *mpi.Comm, nbh vec.Neighborhood, m int) (map[Series]func() error, error) {
	t := len(nbh)
	if cfg.Irregular {
		return buildIrregularVariants(cfg, c, graph, nbh, m)
	}
	switch cfg.Op {
	case cart.OpAlltoall:
		send := make([]int32, t*m)
		recv := make([]int32, t*m)
		for i := range send {
			send[i] = int32(i)
		}
		trivPlan, err := cart.AlltoallInit(c, m, cart.Trivial)
		if err != nil {
			return nil, err
		}
		combPlan, err := cart.AlltoallInit(c, m, cart.Combining)
		if err != nil {
			return nil, err
		}
		return map[Series]func() error{
			SeriesNeighbor: func() error { return mpi.NeighborAlltoall(graph, send, recv) },
			SeriesIneighbor: func() error {
				req, err := mpi.IneighborAlltoall(graph, send, recv)
				if err != nil {
					return err
				}
				_, err = req.Wait()
				return err
			},
			SeriesTrivial:   func() error { return cart.Run(trivPlan, send, recv) },
			SeriesCombining: func() error { return cart.Run(combPlan, send, recv) },
		}, nil
	case cart.OpAllgather:
		send := make([]int32, m)
		recv := make([]int32, t*m)
		for i := range send {
			send[i] = int32(i)
		}
		trivPlan, err := cart.AllgatherInit(c, m, cart.Trivial)
		if err != nil {
			return nil, err
		}
		combPlan, err := cart.AllgatherInit(c, m, cart.Combining)
		if err != nil {
			return nil, err
		}
		return map[Series]func() error{
			SeriesNeighbor: func() error { return mpi.NeighborAllgather(graph, send, recv) },
			SeriesIneighbor: func() error {
				req, err := mpi.IneighborAllgather(graph, send, recv)
				if err != nil {
					return err
				}
				_, err = req.Wait()
				return err
			},
			SeriesTrivial:   func() error { return cart.Run(trivPlan, send, recv) },
			SeriesCombining: func() error { return cart.Run(combPlan, send, recv) },
		}, nil
	default:
		return nil, fmt.Errorf("bench: unsupported op %v", cfg.Op)
	}
}

// buildIrregularVariants builds the Figure 6 (bottom) Cart_alltoallv
// experiment: block i has m·(d−z) elements for z non-zero coordinates
// (0 for the self block), resembling rows/columns vs. corners of Figure 1.
func buildIrregularVariants(cfg Config, c *cart.Comm, graph *mpi.Comm, nbh vec.Neighborhood, m int) (map[Series]func() error, error) {
	if cfg.Op != cart.OpAlltoall {
		return nil, fmt.Errorf("bench: irregular sizing is defined for the alltoall experiment")
	}
	d := nbh.Dims()
	counts := make([]int, len(nbh))
	total := 0
	for i, rel := range nbh {
		z := rel.NonZeros()
		if z > 0 {
			counts[i] = m * (d - z + 1)
		}
		total += counts[i]
	}
	displs := make([]int, len(nbh))
	run := 0
	for i, ct := range counts {
		displs[i] = run
		run += ct
	}
	send := make([]int32, total)
	recv := make([]int32, total)
	for i := range send {
		send[i] = int32(i)
	}
	trivPlan, err := cart.AlltoallvInit(c, counts, displs, counts, displs, cart.Trivial)
	if err != nil {
		return nil, err
	}
	combPlan, err := cart.AlltoallvInit(c, counts, displs, counts, displs, cart.Combining)
	if err != nil {
		return nil, err
	}
	return map[Series]func() error{
		SeriesNeighbor: func() error {
			return mpi.NeighborAlltoallv(graph, send, counts, displs, recv, counts, displs)
		},
		SeriesIneighbor: func() error {
			req, err := mpi.IneighborAlltoallv(graph, send, counts, displs, recv, counts, displs)
			if err != nil {
				return err
			}
			_, err = req.Wait()
			return err
		},
		SeriesTrivial:   func() error { return cart.Run(trivPlan, send, recv) },
		SeriesCombining: func() error { return cart.Run(combPlan, send, recv) },
	}, nil
}

// Predict returns the analytic relative run time of each non-baseline
// series under the α-β model, the expectation the measured shapes are
// compared against in EXPERIMENTS.md. mBytes is the block size in bytes.
func Predict(cfg Config, mBytes int) (map[Series]float64, error) {
	cfg = cfg.withDefaults()
	model, err := netmodel.Preset(cfg.Profile)
	if err != nil {
		return nil, err
	}
	nbh, err := vec.Stencil(cfg.D, cfg.N, cfg.F)
	if err != nil {
		return nil, err
	}
	s := cart.ComputeStats(nbh)
	// The runtime's LogGP-style accounting: per-message costs serialize on
	// the overheads and β·bytes (injection); direct delivery pays the wire
	// latency α once, the combining schedule once per dimension phase.
	o := model.SendOverhead + model.RecvOverhead
	direct := float64(s.TComm)*(o+model.Beta*float64(mBytes)) + model.Alpha
	vol := s.VolAlltoall
	if cfg.Op == cart.OpAllgather {
		vol = s.VolAllgather
	}
	combining := float64(s.C)*o + model.Beta*float64(vol*mBytes) + float64(cfg.D)*model.Alpha
	out := map[Series]float64{
		SeriesIneighbor: 1,
		SeriesCombining: combining / direct,
	}
	return out, nil
}

// SortSeries orders series for stable rendering: baseline first, then the
// order of AllSeries.
func SortSeries(ss []Series) []Series {
	rank := map[Series]int{}
	for i, s := range AllSeries {
		rank[s] = i
	}
	out := append([]Series(nil), ss...)
	sort.SliceStable(out, func(a, b int) bool { return rank[out[a]] < rank[out[b]] })
	return out
}
