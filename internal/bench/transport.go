package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"time"

	"cartcc/internal/cart"
	"cartcc/internal/mpi"
	"cartcc/internal/vec"
)

// This file implements the transport sweep behind `cartbench transport`
// and BENCH_P10.json: wall-clock ping-pong latency and Cart_alltoall
// cost of the same world over the three transport backends — the
// zero-copy in-process loopback and the framed tcp/unix socket backends
// (self-worlds with ForceRemote, so every message crosses a real socket
// and the full encode/flush/decode path). The loopback rows double as
// the fast-path regression gate: adding the transport seam must not have
// put allocations or framing work on the nil-transport delivery path.

// transportBackends are the swept backends, loopback first so the gate
// always has its baseline row.
var transportBackends = []string{"loopback", "tcp", "unix"}

// TransportBenchConfig parameterizes one transport sweep.
type TransportBenchConfig struct {
	// BlockSizes are the per-neighbor element counts (int64) swept by the
	// alltoall measurement; zero means {16, 1024}.
	BlockSizes []int
	// Iters is the number of alltoall operations per measurement; zero
	// means 200.
	Iters int
	// PingIters is the number of ping-pong round trips; zero means 2000.
	PingIters int
}

// TransportSample is one measured (backend, op, block size) cell.
// Counters are totals across the whole world per operation, as in the
// allocation sweep.
type TransportSample struct {
	Backend     string  `json:"backend"`
	Op          string  `json:"op"`
	BlockSize   int     `json:"block_elems"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// TransportReport is the serialized form of one full sweep (the content
// of BENCH_P10.json's "before"/"after" sections).
type TransportReport struct {
	Procs     int               `json:"procs"`
	Iters     int               `json:"iters"`
	PingIters int               `json:"ping_iters"`
	Samples   []TransportSample `json:"samples"`
}

// benchSockSeq disambiguates unix socket paths across measurements.
var benchSockSeq atomic.Int64

// runTransportWorld runs f under the named backend: loopback is the
// plain in-process world (nil transport — the fast path under test);
// tcp and unix are single-process self-worlds with ForceRemote, routing
// every message through a real socket.
func runTransportWorld(backend string, procs int, f func(w *mpi.Comm) error) error {
	cfg := mpi.Config{Procs: procs, DeadlockPoll: -1, Timeout: 5 * time.Minute}
	if backend == "loopback" {
		return mpi.Run(cfg, f)
	}
	addr := "127.0.0.1:0"
	if backend == "unix" {
		addr = filepath.Join(os.TempDir(),
			fmt.Sprintf("cartcc-bench-%d-%d.sock", os.Getpid(), benchSockSeq.Add(1)))
	}
	ranks := make([]int, procs)
	for i := range ranks {
		ranks[i] = i
	}
	return mpi.RunTransport(cfg, mpi.TransportConfig{
		Network:     backend,
		Procs:       []mpi.ProcSpec{{Addr: addr, Ranks: ranks}},
		Self:        0,
		ForceRemote: true,
	}, f)
}

// measureTransportPingPong times round trips of an m-element int64
// payload between ranks 0 and 1 and reads the world-wide allocation
// deltas on rank 0, fenced by barriers.
func measureTransportPingPong(backend string, m, iters int) (TransportSample, error) {
	sample := TransportSample{Backend: backend, Op: "pingpong", BlockSize: m}
	err := runTransportWorld(backend, 2, func(w *mpi.Comm) error {
		buf := make([]int64, m)
		for i := range buf {
			buf[i] = int64(w.Rank()*1000 + i)
		}
		// Warm up connections and pools before the counters start.
		if err := warmPing(w, buf, 3); err != nil {
			return err
		}
		if err := mpi.Barrier(w); err != nil {
			return err
		}
		var before, after runtime.MemStats
		var t0 time.Time
		if w.Rank() == 0 {
			runtime.GC()
			runtime.ReadMemStats(&before)
			t0 = time.Now()
		}
		if err := mpi.Barrier(w); err != nil {
			return err
		}
		if err := warmPing(w, buf, iters); err != nil {
			return err
		}
		if err := mpi.Barrier(w); err != nil {
			return err
		}
		if w.Rank() == 0 {
			elapsed := time.Since(t0)
			runtime.ReadMemStats(&after)
			sample.NsPerOp = float64(elapsed.Nanoseconds()) / float64(iters)
			sample.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(iters)
			sample.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(iters)
		}
		return nil
	})
	if err != nil {
		return TransportSample{}, err
	}
	return sample, nil
}

// warmPing runs n ping-pong round trips between ranks 0 and 1.
func warmPing(w *mpi.Comm, buf []int64, n int) error {
	peer := 1 - w.Rank()
	for i := 0; i < n; i++ {
		if w.Rank() == 0 {
			if err := mpi.SendSlice(w, buf, peer, i); err != nil {
				return err
			}
			if _, err := mpi.RecvSlice(w, buf, peer, i); err != nil {
				return err
			}
		} else {
			if _, err := mpi.RecvSlice(w, buf, peer, i); err != nil {
				return err
			}
			if err := mpi.SendSlice(w, buf, peer, i); err != nil {
				return err
			}
		}
	}
	return nil
}

// measureTransportAlltoall times the trivial Cart_alltoall on a 3×3
// torus with the Moore neighborhood (the wire-heaviest schedule — one
// message per neighbor per op) and reads the world-wide allocation
// deltas on rank 0.
func measureTransportAlltoall(backend string, m, iters int) (TransportSample, error) {
	sample := TransportSample{Backend: backend, Op: "alltoall", BlockSize: m}
	nbh, err := vec.Stencil(2, 3, -1)
	if err != nil {
		return TransportSample{}, err
	}
	err = runTransportWorld(backend, 9, func(w *mpi.Comm) error {
		c, err := cart.NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
		if err != nil {
			return err
		}
		plan, err := cart.AlltoallInit(c, m, cart.Trivial)
		if err != nil {
			return err
		}
		send := make([]int64, len(nbh)*m)
		recv := make([]int64, len(nbh)*m)
		for i := range send {
			send[i] = int64(w.Rank()*len(send) + i)
		}
		op := func() error { return cart.Run(plan, send, recv) }
		for i := 0; i < 3; i++ {
			if err := op(); err != nil {
				return err
			}
		}
		if err := mpi.Barrier(w); err != nil {
			return err
		}
		var before, after runtime.MemStats
		var t0 time.Time
		if w.Rank() == 0 {
			runtime.GC()
			runtime.ReadMemStats(&before)
			t0 = time.Now()
		}
		if err := mpi.Barrier(w); err != nil {
			return err
		}
		for i := 0; i < iters; i++ {
			if err := op(); err != nil {
				return err
			}
		}
		if err := mpi.Barrier(w); err != nil {
			return err
		}
		if w.Rank() == 0 {
			elapsed := time.Since(t0)
			runtime.ReadMemStats(&after)
			sample.NsPerOp = float64(elapsed.Nanoseconds()) / float64(iters)
			sample.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(iters)
			sample.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(iters)
		}
		return nil
	})
	if err != nil {
		return TransportSample{}, err
	}
	return sample, nil
}

// RunTransportBench sweeps ping-pong latency and alltoall cost over
// every backend and block size.
func RunTransportBench(cfg TransportBenchConfig) (*TransportReport, error) {
	if len(cfg.BlockSizes) == 0 {
		cfg.BlockSizes = []int{16, 1024}
	}
	if cfg.Iters == 0 {
		cfg.Iters = 200
	}
	if cfg.PingIters == 0 {
		cfg.PingIters = 2000
	}
	rep := &TransportReport{Procs: 9, Iters: cfg.Iters, PingIters: cfg.PingIters}
	for _, backend := range transportBackends {
		s, err := measureTransportPingPong(backend, 64, cfg.PingIters)
		if err != nil {
			return nil, fmt.Errorf("%s pingpong: %w", backend, err)
		}
		rep.Samples = append(rep.Samples, s)
		for _, m := range cfg.BlockSizes {
			s, err := measureTransportAlltoall(backend, m, cfg.Iters)
			if err != nil {
				return nil, fmt.Errorf("%s alltoall m=%d: %w", backend, m, err)
			}
			rep.Samples = append(rep.Samples, s)
		}
	}
	return rep, nil
}

// GateTransportLoopback is the loopback fast-path gate on a sweep: at
// every swept alltoall point the loopback backend must allocate no more
// than the framed tcp backend (the transport seam added no encode work
// to in-process delivery — tcp visibly pays for framing on top of the
// shared collective machinery, loopback must not), and loopback
// allocs/op must stay flat in the block size (the zero-copy detach and
// pooled wires still carry large payloads without fresh buffers).
func GateTransportLoopback(rep *TransportReport) error {
	cell := func(backend, op string, m int) *TransportSample {
		for i := range rep.Samples {
			s := &rep.Samples[i]
			if s.Backend == backend && s.Op == op && s.BlockSize == m {
				return s
			}
		}
		return nil
	}
	var loop []*TransportSample
	for i := range rep.Samples {
		s := &rep.Samples[i]
		if s.Backend == "loopback" && s.Op == "alltoall" {
			loop = append(loop, s)
		}
	}
	if len(loop) == 0 {
		return fmt.Errorf("transport gate: no loopback alltoall samples")
	}
	for _, s := range loop {
		tcp := cell("tcp", "alltoall", s.BlockSize)
		if tcp == nil {
			return fmt.Errorf("transport gate: no tcp alltoall sample at m=%d", s.BlockSize)
		}
		// 5% slack over tcp absorbs counter jitter; real framing work on
		// the fast path costs far more (tcp itself runs ~15% above).
		if s.AllocsPerOp > tcp.AllocsPerOp*1.05 {
			return fmt.Errorf("transport gate: loopback alltoall m=%d allocates %.1f allocs/op vs tcp %.1f — fast path is doing framing work",
				s.BlockSize, s.AllocsPerOp, tcp.AllocsPerOp)
		}
	}
	small, large := loop[0], loop[len(loop)-1]
	if large.BlockSize > small.BlockSize && small.AllocsPerOp > 0 &&
		large.AllocsPerOp > small.AllocsPerOp*2 {
		return fmt.Errorf("transport gate: loopback allocs/op scaled with block size: m=%d -> %.1f, m=%d -> %.1f",
			small.BlockSize, small.AllocsPerOp, large.BlockSize, large.AllocsPerOp)
	}
	return nil
}

// BenchP10 is the persisted perf-trajectory record (BENCH_P10.json): the
// transport sweep introduced with the pluggable transport layer of
// PR 10.
type BenchP10 struct {
	Description string           `json:"description"`
	Before      *TransportReport `json:"before,omitempty"`
	After       *TransportReport `json:"after"`
}

// ReadBenchP10 loads a persisted record; a missing file is (nil, error).
func ReadBenchP10(path string) (*BenchP10, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec BenchP10
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

// WriteBenchP10 serializes the record to path with stable formatting.
func WriteBenchP10(path string, rec *BenchP10) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatTransportReport renders the sweep as a text table.
func FormatTransportReport(rep *TransportReport) string {
	out := fmt.Sprintf("Transport sweep — loopback vs framed sockets (self-worlds), p=%d, %d alltoall iters, %d ping-pong round trips (totals across all ranks per op)\n",
		rep.Procs, rep.Iters, rep.PingIters)
	out += fmt.Sprintf("%-10s %-10s %10s %14s %14s %14s\n", "backend", "op", "m (elems)", "ns/op", "B/op", "allocs/op")
	for _, s := range rep.Samples {
		out += fmt.Sprintf("%-10s %-10s %10d %14.0f %14.0f %14.1f\n",
			s.Backend, s.Op, s.BlockSize, s.NsPerOp, s.BytesPerOp, s.AllocsPerOp)
	}
	return out
}
