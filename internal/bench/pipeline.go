package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"cartcc/internal/cart"
	"cartcc/internal/mpi"
	"cartcc/internal/netmodel"
	"cartcc/internal/vec"
)

// This file implements the phase-pipelining benchmark behind the
// `cartbench pipeline` experiment and BENCH_P3.json: virtual-time ns/op of
// the combining Cart_alltoall and Cart_allgather under the dependency-DAG
// pipelined executor against the classic per-phase Waitall executor
// (cart.WithBarrieredPhases), plus a straggler sweep that delays every
// message of one rank (FaultPlan MsgDelay.DelayV) and measures how much of
// the injected latency each executor hides.
//
// The measurement runs under the LogGP virtual clock (netmodel, hydra
// preset) — the same substitution the repro gate records in DESIGN.md for
// all performance-shape claims: per-rank clocks serialize on send/receive
// overheads and message arrivals, so an executor that posts a round only
// after a phase barrier pays the wire latency α once per phase, while the
// DAG executor pays it once per *dependency chain*. The sweep varies the
// neighborhood's dependency structure deliberately:
//
//   - full Moore stencils: every phase-k+1 round forwards blocks from every
//     phase-k receive, so the DAG equals the phase barrier and the two
//     executors must tie — the structural boundary of pipelining;
//   - Star stencils (single-dimension offsets only): no block is forwarded,
//     every round is barrier-free, and the d stacked α terms collapse to
//     one — the pure latency-hiding win the paper's C·α term prices.
type PipelineConfig struct {
	// BlockSizes are the per-block element counts to sweep (the pipelining
	// win concentrates at small blocks, where per-round latency dominates;
	// at large blocks the β·bytes volume term — identical for both
	// executors — takes over and the ratio returns to 1).
	BlockSizes []int
	// Iters is the number of timed operations per measurement; zero
	// means 20 (the virtual clock is deterministic, so repetitions only
	// amortize the barrier fences, they do not reduce noise).
	Iters int
	// StragglerIters is the number of timed operations per straggler
	// measurement; zero means 10.
	StragglerIters int
	// StragglerDelay is the virtual hold-back added to every message the
	// delayed rank sends (MsgDelay.DelayV); zero means 5µs, a bit over
	// 3× the hydra model's α.
	StragglerDelay time.Duration
}

// PipelineSample is one measured (op, topology, block size) cell:
// virtual ns/op of the barriered and pipelined executors and their ratio.
type PipelineSample struct {
	Op          string  `json:"op"`
	D           int     `json:"d"`
	Procs       int     `json:"procs"`
	Stencil     string  `json:"stencil"`
	BlockSize   int     `json:"block_elems"`
	BarrieredNs float64 `json:"barriered_ns_per_op"`
	PipelinedNs float64 `json:"pipelined_ns_per_op"`
	// Speedup is BarrieredNs / PipelinedNs (> 1: pipelining wins).
	Speedup float64 `json:"speedup"`
}

// StragglerSample is one straggler cell: every message of one rank is held
// back by DelayUs of virtual time, and each executor's ns/op shows how much
// of the injected latency it absorbs into useful overlap.
type StragglerSample struct {
	Op          string  `json:"op"`
	D           int     `json:"d"`
	Procs       int     `json:"procs"`
	Stencil     string  `json:"stencil"`
	BlockSize   int     `json:"block_elems"`
	DelayedRank int     `json:"delayed_rank"`
	DelayUs     float64 `json:"delay_us_per_msg"`
	BarrieredNs float64 `json:"barriered_ns_per_op"`
	PipelinedNs float64 `json:"pipelined_ns_per_op"`
	// HiddenFrac is (BarrieredNs-PipelinedNs)/BarrieredNs: the share of
	// the barriered executor's straggler-inflated run time the pipelined
	// executor hides by overlapping unaffected rounds with the delay.
	HiddenFrac float64 `json:"hidden_frac"`
}

// PipelineReport is the serialized form of one full sweep (the content of
// BENCH_P3.json's "before"/"after" sections).
type PipelineReport struct {
	Model      string            `json:"model"`
	Iters      int               `json:"iters"`
	Samples    []PipelineSample  `json:"samples"`
	Stragglers []StragglerSample `json:"stragglers"`
}

// pipelineCase is one swept topology; stencil builds its neighborhood.
type pipelineCase struct {
	op      cart.OpKind
	d       int
	procs   int
	dims    []int
	label   string
	stencil func() (vec.Neighborhood, error)
}

// pipelineCases are the swept topologies: d >= 2 tori where the combining
// schedule has multiple phases. Moore rows bound the win from below (dense
// forwarding: the DAG equals the barrier), Star rows from above (all rounds
// barrier-free: d α terms collapse to one).
var pipelineCases = []pipelineCase{
	{cart.OpAlltoall, 2, 16, []int{4, 4}, "moore r=1", func() (vec.Neighborhood, error) { return vec.Stencil(2, 3, -1) }},
	{cart.OpAllgather, 2, 16, []int{4, 4}, "moore r=1", func() (vec.Neighborhood, error) { return vec.Stencil(2, 3, -1) }},
	{cart.OpAlltoall, 2, 25, []int{5, 5}, "star r=2", func() (vec.Neighborhood, error) { return vec.Star(2, 2) }},
	{cart.OpAllgather, 2, 25, []int{5, 5}, "star r=2", func() (vec.Neighborhood, error) { return vec.Star(2, 2) }},
	{cart.OpAlltoall, 3, 27, []int{3, 3, 3}, "star r=1", func() (vec.Neighborhood, error) { return vec.Star(3, 1) }},
	{cart.OpAllgather, 3, 27, []int{3, 3, 3}, "star r=1", func() (vec.Neighborhood, error) { return vec.Star(3, 1) }},
}

// RunPipelineBench measures every (case, block size) cell of cfg under
// both executors, then runs the straggler sweep on the 2-d cases.
func RunPipelineBench(cfg PipelineConfig) (*PipelineReport, error) {
	if cfg.Iters == 0 {
		cfg.Iters = 20
	}
	if cfg.StragglerIters == 0 {
		cfg.StragglerIters = 10
	}
	if cfg.StragglerDelay == 0 {
		cfg.StragglerDelay = 5 * time.Microsecond
	}
	if len(cfg.BlockSizes) == 0 {
		cfg.BlockSizes = []int{1, 16, 256, 4096}
	}
	rep := &PipelineReport{Model: "hydra", Iters: cfg.Iters}
	for _, tc := range pipelineCases {
		nbh, err := tc.stencil()
		if err != nil {
			return nil, err
		}
		for _, m := range cfg.BlockSizes {
			barr, err := measurePipeline(tc.op, tc.dims, nbh, m, cfg.Iters, true, nil)
			if err != nil {
				return nil, err
			}
			pipe, err := measurePipeline(tc.op, tc.dims, nbh, m, cfg.Iters, false, nil)
			if err != nil {
				return nil, err
			}
			rep.Samples = append(rep.Samples, PipelineSample{
				Op: tc.op.String(), D: tc.d, Procs: tc.procs,
				Stencil:     tc.label,
				BlockSize:   m,
				BarrieredNs: barr, PipelinedNs: pipe,
				Speedup: barr / pipe,
			})
		}
	}
	// Straggler sweep: delay every message rank 1 sends, on the 2-d
	// topologies, at the smallest block size. The Moore rows show the
	// dense-forwarding floor (the late blocks gate every later round, so
	// little can be hidden); the Star rows show the barrier-free ceiling.
	const stragglerRank = 1
	for _, tc := range pipelineCases {
		if tc.d != 2 {
			continue
		}
		nbh, err := tc.stencil()
		if err != nil {
			return nil, err
		}
		m := cfg.BlockSizes[0]
		faults := &mpi.FaultPlan{Delays: []mpi.MsgDelay{{
			From: stragglerRank, To: -1, DelayV: cfg.StragglerDelay.Seconds(),
		}}}
		barr, err := measurePipeline(tc.op, tc.dims, nbh, m, cfg.StragglerIters, true, faults)
		if err != nil {
			return nil, err
		}
		pipe, err := measurePipeline(tc.op, tc.dims, nbh, m, cfg.StragglerIters, false, faults)
		if err != nil {
			return nil, err
		}
		rep.Stragglers = append(rep.Stragglers, StragglerSample{
			Op: tc.op.String(), D: tc.d, Procs: tc.procs, Stencil: tc.label, BlockSize: m,
			DelayedRank: stragglerRank,
			DelayUs:     float64(cfg.StragglerDelay.Nanoseconds()) / 1e3,
			BarrieredNs: barr, PipelinedNs: pipe,
			HiddenFrac: (barr - pipe) / barr,
		})
	}
	return rep, nil
}

// measurePipeline times iters back-to-back collectives of one executor
// variant under the hydra virtual clock and returns the per-operation mean
// of the rank-wise maximum elapsed virtual time, in nanoseconds. The timed
// window is fenced by a barrier (which synchronizes the virtual clocks) and
// closed by a max-allreduce, so every rank returns the same value.
func measurePipeline(op cart.OpKind, dims []int, nbh vec.Neighborhood, m, iters int, barriered bool, faults *mpi.FaultPlan) (float64, error) {
	var nsPerOp float64
	procs := 1
	for _, d := range dims {
		procs *= d
	}
	model := netmodel.Hydra()
	err := mpi.Run(mpi.Config{Procs: procs, Model: model, DeadlockPoll: -1, Seed: 1, Faults: faults, Timeout: 5 * time.Minute}, func(w *mpi.Comm) error {
		c, err := cart.NeighborhoodCreate(w, dims, nil, nbh, nil, cart.WithAlgorithm(cart.Combining))
		if err != nil {
			return err
		}
		var opts []cart.PlanOption
		if barriered {
			opts = append(opts, cart.WithBarrieredPhases())
		}
		t := len(nbh)
		sendN := t * m
		if op == cart.OpAllgather {
			sendN = m
		}
		send := make([]int32, sendN)
		recv := make([]int32, t*m)
		for i := range send {
			send[i] = int32(w.Rank()*len(send) + i)
		}
		var plan *cart.Plan
		if op == cart.OpAlltoall {
			plan, err = cart.AlltoallInit(c, m, cart.Combining, opts...)
		} else {
			plan, err = cart.AllgatherInit(c, m, cart.Combining, opts...)
		}
		if err != nil {
			return err
		}
		// One warm-up pass settles plan-owned scratch; the barrier then
		// re-synchronizes the virtual clocks before the timed window.
		if err := cart.Run(plan, send, recv); err != nil {
			return err
		}
		if err := mpi.Barrier(w); err != nil {
			return err
		}
		t0 := w.VTime()
		for i := 0; i < iters; i++ {
			if err := cart.Run(plan, send, recv); err != nil {
				return err
			}
		}
		elapsed := []float64{(w.VTime() - t0) / float64(iters)}
		if err := mpi.Allreduce(w, elapsed, elapsed, mpi.MaxOp[float64]); err != nil {
			return err
		}
		nsPerOp = elapsed[0] * 1e9
		return nil
	})
	if err != nil {
		return 0, err
	}
	return nsPerOp, nil
}

// BaselineReport derives the pre-DAG "before" state from a measured sweep:
// before the pipelined executor existed, every plan ran the per-phase
// Waitall order, so the baseline's pipelined column equals the barriered
// measurement and nothing is hidden from a straggler.
func BaselineReport(rep *PipelineReport) *PipelineReport {
	out := &PipelineReport{Model: rep.Model, Iters: rep.Iters}
	for _, s := range rep.Samples {
		s.PipelinedNs = s.BarrieredNs
		s.Speedup = 1
		out.Samples = append(out.Samples, s)
	}
	for _, s := range rep.Stragglers {
		s.PipelinedNs = s.BarrieredNs
		s.HiddenFrac = 0
		out.Stragglers = append(out.Stragglers, s)
	}
	return out
}

// BenchP3 is the persisted perf-trajectory record (BENCH_P3.json): the
// pipelined-vs-barriered profile of the runtime as of the dependency-DAG
// executor work of PR 3.
type BenchP3 struct {
	Description string          `json:"description"`
	Before      *PipelineReport `json:"before,omitempty"`
	After       *PipelineReport `json:"after"`
}

// ReadBenchP3 loads a persisted record; a missing file is (nil, error).
func ReadBenchP3(path string) (*BenchP3, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec BenchP3
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

// WriteBenchP3 serializes the record to path with stable formatting.
func WriteBenchP3(path string, rec *BenchP3) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatPipelineReport renders the sweep as text tables.
func FormatPipelineReport(rep *PipelineReport) string {
	out := fmt.Sprintf("Phase pipelining — barriered vs dependency-DAG executor, %d iters (virtual time, %s model)\n", rep.Iters, rep.Model)
	out += fmt.Sprintf("%-10s %-10s %4s %6s %10s %16s %16s %9s\n", "op", "stencil", "d", "procs", "m (elems)", "barriered ns/op", "pipelined ns/op", "speedup")
	for _, s := range rep.Samples {
		out += fmt.Sprintf("%-10s %-10s %4d %6d %10d %16.0f %16.0f %9.2f\n",
			s.Op, s.Stencil, s.D, s.Procs, s.BlockSize, s.BarrieredNs, s.PipelinedNs, s.Speedup)
	}
	if len(rep.Stragglers) > 0 {
		out += "\nStraggler latency hiding — every message of one rank held back (virtual delay)\n"
		out += fmt.Sprintf("%-10s %-10s %4s %10s %12s %16s %16s %8s\n", "op", "stencil", "d", "m (elems)", "delay µs/msg", "barriered ns/op", "pipelined ns/op", "hidden")
		for _, s := range rep.Stragglers {
			out += fmt.Sprintf("%-10s %-10s %4d %10d %12.1f %16.0f %16.0f %7.0f%%\n",
				s.Op, s.Stencil, s.D, s.BlockSize, s.DelayUs, s.BarrieredNs, s.PipelinedNs, 100*s.HiddenFrac)
		}
	}
	return out
}
