package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"cartcc/internal/cart"
	"cartcc/internal/mpi"
	"cartcc/internal/vec"
)

// This file implements the allocation-profile benchmark behind the
// `cartbench allocs` experiment and BENCH_P2.json: wall-clock ns/op,
// B/op and allocs/op of one collective operation across the whole world,
// for the trivial and message-combining Cartesian algorithms and the
// direct MPI_Neighbor baseline. Unlike the virtual-time figures, this
// measures the runtime's own software overhead — the per-message α the
// zero-copy fast path and the pooled wire buffers exist to minimize.

// AllocConfig parameterizes one allocation sweep.
type AllocConfig struct {
	// D, N pick the stencil family (full F = -1 neighborhood).
	D, N int
	// Procs is the number of ranks; zero derives a default from D.
	Procs int
	// BlockSizes are the per-block element counts to sweep.
	BlockSizes []int
	// Iters is the number of timed operations per measurement; zero
	// means 200.
	Iters int
}

// AllocSample is one measured (series, block size) cell. The counters are
// totals across every rank of the world per collective operation — the
// per-operation cost of the whole exchange, not of one process.
type AllocSample struct {
	Series      string  `json:"series"`
	BlockSize   int     `json:"block_elems"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// AllocReport is the serialized form of one full sweep (the content of
// BENCH_P2.json's "before"/"after" sections).
type AllocReport struct {
	D, N    int           `json:"-"`
	Procs   int           `json:"procs"`
	Stencil string        `json:"stencil"`
	Iters   int           `json:"iters"`
	Samples []AllocSample `json:"samples"`
}

// allocSeries are the measured variants of the allocation sweep.
var allocSeries = []struct {
	name string
	algo cart.Algorithm
}{
	{"neighbor", -1},
	{"trivial", cart.Trivial},
	{"combining", cart.Combining},
}

// RunAllocBench measures ns/op, B/op and allocs/op of a Cart_alltoall
// round for every series and block size of cfg. The run is wall-clock
// (no cost model) with the deadlock monitor disabled, so the memory
// counters see only the collective's own allocations.
func RunAllocBench(cfg AllocConfig) (*AllocReport, error) {
	if cfg.Procs == 0 {
		cfg.Procs = 16
	}
	if cfg.Iters == 0 {
		cfg.Iters = 200
	}
	if len(cfg.BlockSizes) == 0 {
		cfg.BlockSizes = []int{1, 16, 256}
	}
	nbh, err := vec.Stencil(cfg.D, cfg.N, -1)
	if err != nil {
		return nil, err
	}
	dims, err := vec.DimsCreate(cfg.Procs, cfg.D)
	if err != nil {
		return nil, err
	}
	rep := &AllocReport{
		D: cfg.D, N: cfg.N, Procs: cfg.Procs, Iters: cfg.Iters,
		Stencil: fmt.Sprintf("d=%d n=%d", cfg.D, cfg.N),
	}
	for _, m := range cfg.BlockSizes {
		for _, series := range allocSeries {
			sample, err := measureAlloc(cfg, dims, nbh, m, series.name, series.algo)
			if err != nil {
				return nil, err
			}
			rep.Samples = append(rep.Samples, sample)
		}
	}
	return rep, nil
}

// measureAlloc times cfg.Iters back-to-back operations of one variant and
// reads the world-wide allocation deltas on rank 0, fenced by barriers so
// every rank's operations — and nothing else — fall inside the window.
func measureAlloc(cfg AllocConfig, dims []int, nbh vec.Neighborhood, m int, name string, algo cart.Algorithm) (AllocSample, error) {
	sample := AllocSample{Series: name, BlockSize: m}
	iters := cfg.Iters
	err := mpi.Run(mpi.Config{Procs: cfg.Procs, DeadlockPoll: -1, Timeout: 5 * time.Minute}, func(w *mpi.Comm) error {
		c, err := cart.NeighborhoodCreate(w, dims, nil, nbh, nil)
		if err != nil {
			return err
		}
		t := len(nbh)
		send := make([]int32, t*m)
		recv := make([]int32, t*m)
		for i := range send {
			send[i] = int32(w.Rank()*len(send) + i)
		}
		var op func() error
		if algo < 0 {
			graph, err := c.DistGraph()
			if err != nil {
				return err
			}
			op = func() error { return mpi.NeighborAlltoall(graph, send, recv) }
		} else {
			plan, err := cart.AlltoallInit(c, m, algo)
			if err != nil {
				return err
			}
			op = func() error { return cart.Run(plan, send, recv) }
		}
		// Warm up plan-owned scratch and pools before the counters start.
		for i := 0; i < 3; i++ {
			if err := op(); err != nil {
				return err
			}
		}
		if err := mpi.Barrier(w); err != nil {
			return err
		}
		var before, after runtime.MemStats
		var t0 time.Time
		if w.Rank() == 0 {
			runtime.GC()
			runtime.ReadMemStats(&before)
			t0 = time.Now()
		}
		if err := mpi.Barrier(w); err != nil {
			return err
		}
		for i := 0; i < iters; i++ {
			if err := op(); err != nil {
				return err
			}
		}
		if err := mpi.Barrier(w); err != nil {
			return err
		}
		if w.Rank() == 0 {
			elapsed := time.Since(t0)
			runtime.ReadMemStats(&after)
			sample.NsPerOp = float64(elapsed.Nanoseconds()) / float64(iters)
			sample.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(iters)
			sample.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(iters)
		}
		return nil
	})
	if err != nil {
		return AllocSample{}, err
	}
	return sample, nil
}

// BenchP2 is the persisted perf-trajectory record (BENCH_P2.json): the
// allocation profile of the runtime before and after the zero-copy /
// pooled-buffer work of PR 2.
type BenchP2 struct {
	Description string       `json:"description"`
	Before      *AllocReport `json:"before,omitempty"`
	After       *AllocReport `json:"after"`
}

// ReadBenchP2 loads a persisted record; a missing file is (nil, error).
func ReadBenchP2(path string) (*BenchP2, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec BenchP2
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

// WriteBenchP2 serializes the record to path with stable formatting.
func WriteBenchP2(path string, rec *BenchP2) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatAllocReport renders the sweep as a text table.
func FormatAllocReport(rep *AllocReport) string {
	out := fmt.Sprintf("Allocation profile — Cart_alltoall, %s, p=%d, %d iters (totals across all ranks per op)\n",
		rep.Stencil, rep.Procs, rep.Iters)
	out += fmt.Sprintf("%-12s %10s %14s %14s %14s\n", "series", "m (elems)", "ns/op", "B/op", "allocs/op")
	for _, s := range rep.Samples {
		out += fmt.Sprintf("%-12s %10d %14.0f %14.0f %14.1f\n", s.Series, s.BlockSize, s.NsPerOp, s.BytesPerOp, s.AllocsPerOp)
	}
	return out
}
