package bench

import (
	"math"
	"strings"
	"testing"

	"cartcc/internal/cart"
)

func TestRunSmallAlltoallShapes(t *testing.T) {
	// The core claim of the paper, measured end to end on a small sweep:
	// message combining beats the direct baseline at m=1 (latency-bound)
	// and loses at a large m (volume-bound), for a d=3, n=3 stencil whose
	// cut-off is well inside that range.
	cells, err := Run(Config{
		Op: cart.OpAlltoall, D: 3, N: 3, F: -1,
		Procs: 27, Reps: 3, BlockSizes: []int{1, 2000},
		Profile: "hydra", Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("%d cells", len(cells))
	}
	small, large := cells[0], cells[1]
	if small.Baseline <= 0 {
		t.Fatal("baseline time not positive")
	}
	// The paper itself notes the d=3, n=3, m=1 cell is close; a modest win
	// is the right expectation here (combining pays α once per phase).
	if rel := small.Rel[SeriesCombining]; rel >= 0.9 {
		t.Errorf("m=1: combining relative %v, expected a win", rel)
	}
	// Past the cut-off the volume term makes combining lose; back-to-back
	// batching pipelines phases across iterations, so the loss at m=2000
	// is mild (it grows toward V/t ≈ 2 for larger m).
	if rel := large.Rel[SeriesCombining]; rel <= 1.05 {
		t.Errorf("m=2000: combining relative %v, expected a loss", rel)
	}
	// The trivial blocking algorithm is slower than the nonblocking direct
	// baseline (the paper's factor 2–3 observation).
	if rel := small.Rel[SeriesTrivial]; rel <= 1.0 {
		t.Errorf("trivial blocking relative %v, expected > 1", rel)
	}
	// Nonblocking baseline ≈ blocking baseline in this runtime.
	if rel := small.Rel[SeriesIneighbor]; math.Abs(rel-1) > 0.3 {
		t.Errorf("Ineighbor relative %v, expected ~1", rel)
	}
}

func TestRunLargeNeighborhoodCombiningWinsBig(t *testing.T) {
	// d=3, n=5: t−1 = 124 messages direct vs C = 12 rounds combining —
	// the substantial small-block improvement of Figures 3–5.
	cells, err := Run(Config{
		Op: cart.OpAlltoall, D: 3, N: 5, F: -1,
		Procs: 27, Reps: 3, BlockSizes: []int{1},
		Profile: "hydra", Seed: 4,
		Series: []Series{SeriesNeighbor, SeriesCombining},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel := cells[0].Rel[SeriesCombining]; rel >= 0.4 {
		t.Errorf("d=3 n=5 m=1: combining relative %v, expected a substantial win", rel)
	}
}

func TestRunAllgatherCombiningWinsAtAllSizes(t *testing.T) {
	// Section 3.2: the allgather combining volume equals the trivial
	// volume, so combining wins regardless of block size.
	cells, err := Run(Config{
		Op: cart.OpAllgather, D: 3, N: 3, F: -1,
		Procs: 27, Reps: 3, BlockSizes: []int{1, 500},
		Profile: "hydra", Seed: 2,
		Series: []Series{SeriesNeighbor, SeriesTrivial, SeriesCombining},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range cells {
		comb := cell.Rel[SeriesCombining]
		triv := cell.Rel[SeriesTrivial]
		if comb >= triv {
			t.Errorf("m=%d: combining %v not faster than trivial %v", cell.M, comb, triv)
		}
	}
	if cells[0].Rel[SeriesCombining] >= 1 {
		t.Errorf("m=1 allgather combining %v, expected < 1", cells[0].Rel[SeriesCombining])
	}
}

func TestRunIrregularAlltoallv(t *testing.T) {
	cells, err := Run(Config{
		Op: cart.OpAlltoall, D: 3, N: 3, F: -1,
		Procs: 27, Reps: 3, BlockSizes: []int{1},
		Irregular: true, Profile: "titan", Seed: 3,
		Series: []Series{SeriesNeighbor, SeriesCombining},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].Rel[SeriesCombining] >= 1 {
		t.Errorf("irregular m=1 combining relative %v, expected < 1", cells[0].Rel[SeriesCombining])
	}
}

func TestRunDeterministicAcrossInvocations(t *testing.T) {
	cfg := Config{
		Op: cart.OpAlltoall, D: 2, N: 3, F: -1,
		Procs: 9, Reps: 2, BlockSizes: []int{1},
		Profile: "titan-noisy", Seed: 11,
		Series: []Series{SeriesNeighbor, SeriesCombining},
	}
	a, err := RunSamples(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSamples(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for m := range a {
		for s := range a[m] {
			for i := range a[m][s] {
				if a[m][s][i] != b[m][s][i] {
					t.Fatalf("samples differ at m=%d s=%v i=%d", m, s, i)
				}
			}
		}
	}
}

func TestPredictMatchesMeasuredDirection(t *testing.T) {
	cfg := Config{Op: cart.OpAlltoall, D: 3, N: 3, F: -1, Profile: "hydra"}
	pred, err := Predict(cfg, 4) // m=1 int32
	if err != nil {
		t.Fatal(err)
	}
	if pred[SeriesCombining] >= 1 {
		t.Errorf("predicted relative %v at 4 bytes, expected < 1", pred[SeriesCombining])
	}
	predBig, err := Predict(cfg, 400000)
	if err != nil {
		t.Fatal(err)
	}
	if predBig[SeriesCombining] <= 1 {
		t.Errorf("predicted relative %v at 400 kB, expected > 1", predBig[SeriesCombining])
	}
}

func TestRunHistogramFigure7(t *testing.T) {
	h, samples, err := RunHistogram(HistogramConfig{
		D: 3, N: 3, M: 1, Procs: 8, Reps: 40, Bins: 10, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 40 {
		t.Fatalf("%d samples", len(samples))
	}
	total := h.Overflow
	for _, c := range h.Counts {
		total += c
	}
	if total != 40 {
		t.Fatalf("histogram holds %d of 40", total)
	}
	// Noise must actually produce spread.
	lo, hi := samples[0], samples[0]
	for _, s := range samples {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if hi <= lo {
		t.Error("noisy run produced constant times")
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("%d rows", len(rows))
	}
	out := FormatTable1(rows)
	for _, want := range []string{"d5,n5", "12500", "3124", "0.331", "Alltoall V"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigureDefinitions(t *testing.T) {
	sc := QuickScale
	if got := len(Figure3(sc)); got != 4 {
		t.Errorf("Figure3 panels = %d", got)
	}
	if got := len(Figure4(sc)); got != 4 {
		t.Errorf("Figure4 panels = %d", got)
	}
	f5 := Figure5(sc)
	if got := len(f5); got != 4 {
		t.Errorf("Figure5 panels = %d", got)
	}
	if len(f5[0].Cfg.Series) != 2 {
		t.Errorf("Figure5 series = %v", f5[0].Cfg.Series)
	}
	if got := len(Figure6Top(sc)); got != 1 {
		t.Errorf("Figure6Top panels = %d", got)
	}
	f6b := Figure6Bottom(sc)
	if !f6b[0].Cfg.Irregular {
		t.Error("Figure6Bottom not irregular")
	}
	if got := len(Figure7Configs(sc)); got != 2 {
		t.Errorf("Figure7 configs = %d", got)
	}
}

func TestFormatAndCSV(t *testing.T) {
	panels := []Panel{{
		Label: "d: 2  n: 3",
		Cfg: Config{Op: cart.OpAlltoall, D: 2, N: 3, F: -1, Procs: 9, Reps: 2,
			BlockSizes: []int{1}, Profile: "hydra", Seed: 9},
	}}
	cells, err := Run(panels[0].Cfg)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatPanels("Figure X", panels, [][]Cell{cells})
	if !strings.Contains(text, "Cart (combining)") || !strings.Contains(text, "baseline(ms)") {
		t.Errorf("text output:\n%s", text)
	}
	csv := CSVPanels("figX", panels, [][]Cell{cells})
	if !strings.Contains(csv, "figX") || !strings.Contains(csv, "\"Cart (combining)\"") {
		t.Errorf("csv output:\n%s", csv)
	}
	if strings.Count(csv, "\n") != 1+4 { // header + 4 series × 1 m
		t.Errorf("csv rows:\n%s", csv)
	}
	bars := BarPanels("Figure X", panels, [][]Cell{cells})
	if !strings.Contains(bars, "█") || !strings.Contains(bars, "baseline") {
		t.Errorf("bar output:\n%s", bars)
	}
}

func TestConfigDefaultsAddBaseline(t *testing.T) {
	cfg := Config{Op: cart.OpAlltoall, D: 2, N: 3, Series: []Series{SeriesCombining}}
	got := cfg.withDefaults()
	if got.Series[0] != SeriesNeighbor {
		t.Errorf("baseline not prepended: %v", got.Series)
	}
	if got.F != -1 || got.Procs == 0 || got.Reps == 0 {
		t.Errorf("defaults not applied: %+v", got)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Op: cart.OpAlltoall, D: 2, N: 3, Profile: "nosuch"}); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, err := Run(Config{Op: cart.OpAlltoall, D: 0, N: 3}); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := Run(Config{Op: cart.OpAllgather, D: 2, N: 3, Irregular: true}); err == nil {
		t.Error("irregular allgather accepted")
	}
}
