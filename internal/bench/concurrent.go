package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"cartcc/internal/cart"
	"cartcc/internal/mpi"
	"cartcc/internal/vec"
)

// This file implements the `cartbench concurrent` experiment and
// BENCH_P8.json: wall-clock throughput and latency of the asynchronous
// progress engine (cart.Start / Future) against blocking cart.Run. Two
// measurements, two gates:
//
//   - Throughput: W independent worlds each drive the same collective,
//     either as a serialized blocking loop (sync) or K futures deep
//     through the per-world progress engine (async). The async engine
//     amortizes scheduler wakeups — one Waitsome drains completions of
//     many in-flight collectives — so aggregate ops/s must reach
//     ConcurrentThroughputGate times the blocking loop at the largest W.
//   - Latency: a single collective at a block size large enough that the
//     engine's fixed commit/retire overhead is in the noise; Start+Wait
//     must stay within ConcurrentLatencyGate of blocking Run.
//
// Unlike the virtual-time records (BENCH_P3/P7), these runs are real
// wall clock — the progress engine requires it — so measurement is
// noise-hardened: each round times the two modes back-to-back, the
// reported ratio is the best round's paired ratio (adjacent windows see
// the same machine phase, so drift cancels), and the per-mode samples
// keep the minimum over rounds.

const (
	// ConcurrentLatencyGate bounds single-collective Start+Wait time
	// relative to blocking Run at the latency block size.
	ConcurrentLatencyGate = 1.05
	// ConcurrentThroughputGate is the aggregate ops/s multiple the async
	// engine must reach over the serialized blocking loop at the largest
	// swept world count. Applied when overlap is measurable: default
	// scale on a multi-core rig. Quick scale and single-core rigs gate
	// parity instead — see RunConcurrentBench.
	ConcurrentThroughputGate = 2.0
)

// ConcurrentConfig parameterizes the concurrency benchmark.
type ConcurrentConfig struct {
	// Iters is the number of timed operations per world in the throughput
	// sweep; zero means 64.
	Iters int
	// LatencyIters is the number of timed operations in the latency
	// comparison; zero means 100.
	LatencyIters int
	// Inflight is K, the number of futures each world keeps committed at
	// once in the async series; zero means 4.
	Inflight int
	// Rounds is how many times each sync/async pair is measured (the
	// best paired ratio and per-mode minimum are kept); zero means 3.
	Rounds int
	// ThroughputGate overrides ConcurrentThroughputGate; the quick scale
	// sets 1.0 — on a loaded CI runner only parity is stable enough to
	// enforce, the 2x claim is gated at default scale.
	ThroughputGate float64
}

// ConcurrentSample is one measured cell: a (worlds, mode) pair of the
// throughput sweep, or one side of the latency comparison (Worlds == 1,
// the large block size).
type ConcurrentSample struct {
	Worlds     int     `json:"worlds"`
	Procs      int     `json:"procs"`
	Inflight   int     `json:"inflight"`
	BlockElems int     `json:"block_elems"`
	Mode       string  `json:"mode"` // "sync" or "async"
	NsPerOp    float64 `json:"ns_per_op"`
	OpsPerSec  float64 `json:"ops_per_sec"`
}

// ConcurrentReport is one full run plus its gate verdicts.
type ConcurrentReport struct {
	Iters    int `json:"iters"`
	Inflight int `json:"inflight"`
	Maxprocs int `json:"maxprocs"` // GOMAXPROCS of the measuring process

	LatencyGate     float64            `json:"latency_gate"`
	ThroughputGate  float64            `json:"throughput_gate"`
	ThroughputRatio float64            `json:"throughput_ratio"` // best paired-round async/sync ops/s at the largest W
	LatencyRatio    float64            `json:"latency_ratio"`    // best paired-round async/sync ns/op, single collective
	Samples         []ConcurrentSample `json:"samples"`
	Latency         []ConcurrentSample `json:"latency"`
}

// concurrentWorlds is the swept world count: aggregate throughput with 1,
// 4 and 8 independent tenants; the gate applies at the largest.
var concurrentWorlds = []int{1, 4, 8}

// Throughput cells use a small block on a 4-rank ring — per-operation
// cost dominated by scheduling, which is exactly what the engine
// amortizes. The latency cell uses the 2-d Moore stencil with 8 KiB
// blocks, large enough that commit/retire overhead must vanish in the
// copy and transfer time.
const (
	concurrentProcs      = 4
	concurrentBlockElems = 64
	latencyProcs         = 9
	latencyBlockElems    = 2048
)

// RunConcurrentBench measures the progress engine against blocking
// execution: the throughput sweep over concurrentWorlds, then the
// single-collective latency comparison.
func RunConcurrentBench(cfg ConcurrentConfig) (*ConcurrentReport, error) {
	if cfg.Iters == 0 {
		cfg.Iters = 64
	}
	if cfg.LatencyIters == 0 {
		cfg.LatencyIters = 100
	}
	if cfg.Inflight == 0 {
		cfg.Inflight = 4
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 4
	}
	if cfg.ThroughputGate == 0 {
		cfg.ThroughputGate = ConcurrentThroughputGate
		if runtime.GOMAXPROCS(0) == 1 {
			// Overlap needs idle silicon. On a serial rig every world is
			// time-sliced onto the one core, so blocking parks are already
			// backfilled by the other worlds and the aggregate is bound by
			// per-op CPU work — which async cannot halve, only match. The
			// 2x claim is gated where it is measurable (>=2 cores); here
			// the sweep still runs and async must not cost throughput.
			cfg.ThroughputGate = 1.0
		}
	}
	rep := &ConcurrentReport{
		Iters:          cfg.Iters,
		Inflight:       cfg.Inflight,
		Maxprocs:       runtime.GOMAXPROCS(0),
		LatencyGate:    ConcurrentLatencyGate,
		ThroughputGate: cfg.ThroughputGate,
	}
	ringNbh, err := vec.Stencil(1, concurrentProcs, -1)
	if err != nil {
		return nil, err
	}
	ringDims := []int{concurrentProcs}
	for _, worlds := range concurrentWorlds {
		// Paired rounds: each round measures the two modes back-to-back, so
		// slow machine phases (thermal throttling, co-tenant bursts) hit
		// adjacent windows and cancel in the ratio; the gate takes the best
		// round's ratio, the samples keep the best absolute time per mode.
		syncNs, asyncNs, ratio := 0.0, 0.0, 0.0
		for r := 0; r < cfg.Rounds; r++ {
			sns, err := measureConcurrent(worlds, concurrentProcs, ringDims, ringNbh,
				concurrentBlockElems, 1, cfg.Iters, false)
			if err != nil {
				return nil, fmt.Errorf("throughput W=%d sync: %w", worlds, err)
			}
			ans, err := measureConcurrent(worlds, concurrentProcs, ringDims, ringNbh,
				concurrentBlockElems, cfg.Inflight, cfg.Iters, true)
			if err != nil {
				return nil, fmt.Errorf("throughput W=%d async: %w", worlds, err)
			}
			if syncNs == 0 || sns < syncNs {
				syncNs = sns
			}
			if asyncNs == 0 || ans < asyncNs {
				asyncNs = ans
			}
			if r := sns / ans; r > ratio {
				ratio = r
			}
		}
		rep.Samples = append(rep.Samples,
			ConcurrentSample{
				Worlds: worlds, Procs: concurrentProcs, Inflight: 1,
				BlockElems: concurrentBlockElems, Mode: "sync",
				NsPerOp: syncNs, OpsPerSec: 1e9 / syncNs * float64(worlds),
			},
			ConcurrentSample{
				Worlds: worlds, Procs: concurrentProcs, Inflight: cfg.Inflight,
				BlockElems: concurrentBlockElems, Mode: "async",
				NsPerOp: asyncNs, OpsPerSec: 1e9 / asyncNs * float64(worlds),
			})
		if worlds == concurrentWorlds[len(concurrentWorlds)-1] {
			rep.ThroughputRatio = ratio
		}
	}
	mooreNbh, err := vec.Stencil(2, 3, -1)
	if err != nil {
		return nil, err
	}
	syncNs, asyncNs, ratio := 0.0, 0.0, 0.0
	for r := 0; r < cfg.Rounds; r++ {
		sns, err := measureConcurrent(1, latencyProcs, []int{3, 3}, mooreNbh,
			latencyBlockElems, 1, cfg.LatencyIters, false)
		if err != nil {
			return nil, fmt.Errorf("latency sync: %w", err)
		}
		ans, err := measureConcurrent(1, latencyProcs, []int{3, 3}, mooreNbh,
			latencyBlockElems, 1, cfg.LatencyIters, true)
		if err != nil {
			return nil, fmt.Errorf("latency async: %w", err)
		}
		if syncNs == 0 || sns < syncNs {
			syncNs = sns
		}
		if asyncNs == 0 || ans < asyncNs {
			asyncNs = ans
		}
		if r := ans / sns; ratio == 0 || r < ratio {
			ratio = r
		}
	}
	rep.Latency = append(rep.Latency,
		ConcurrentSample{
			Worlds: 1, Procs: latencyProcs, Inflight: 1,
			BlockElems: latencyBlockElems, Mode: "sync",
			NsPerOp: syncNs, OpsPerSec: 1e9 / syncNs,
		},
		ConcurrentSample{
			Worlds: 1, Procs: latencyProcs, Inflight: 1,
			BlockElems: latencyBlockElems, Mode: "async",
			NsPerOp: asyncNs, OpsPerSec: 1e9 / asyncNs,
		})
	rep.LatencyRatio = ratio
	return rep, nil
}

// measureConcurrent runs `worlds` independent mpi.Run universes
// concurrently, each executing iters timed alltoall operations on the
// given neighborhood — as a blocking loop (async=false) or in committed
// batches of k futures (async=true) — and returns wall-clock ns per
// operation per world. All worlds warm up, report ready, and only then
// does a shared gate open the timed region, so the measurement window is
// genuinely contended; the slowest world's elapsed time is the honest
// aggregate wall clock.
func measureConcurrent(worlds, procs int, dims []int, nbh vec.Neighborhood,
	m, k, iters int, async bool) (float64, error) {

	if iters < k {
		iters = k
	}
	var ready, done sync.WaitGroup
	start := make(chan struct{})
	elapsed := make([]time.Duration, worlds)
	errs := make(chan error, worlds)
	ready.Add(worlds)
	done.Add(worlds)
	for g := 0; g < worlds; g++ {
		go func(g int) {
			defer done.Done()
			err := mpi.Run(mpi.Config{Procs: procs, Timeout: 2 * time.Minute}, func(w *mpi.Comm) error {
				c, err := cart.NeighborhoodCreate(w, dims, nil, nbh, nil)
				if err != nil {
					return err
				}
				plan, err := cart.AlltoallInit(c, m, cart.Combining)
				if err != nil {
					return err
				}
				t := len(nbh)
				sends := make([][]int32, k)
				recvs := make([][]int32, k)
				for j := 0; j < k; j++ {
					sends[j] = make([]int32, t*m)
					recvs[j] = make([]int32, t*m)
				}
				futs := make([]*cart.Future, k)
				// Warm-up fills plan scratch (and the async pool) before
				// the timed window opens.
				if err := cart.Run(plan, sends[0], recvs[0]); err != nil {
					return err
				}
				if err := mpi.Barrier(w); err != nil {
					return err
				}
				if w.Rank() == 0 {
					ready.Done()
					<-start
				}
				if err := mpi.Barrier(w); err != nil {
					return err
				}
				t0 := time.Now()
				if async {
					for it := 0; it < iters; it += k {
						for j := 0; j < k; j++ {
							if futs[j], err = cart.Start(plan, sends[j], recvs[j]); err != nil {
								return err
							}
						}
						for j := 0; j < k; j++ {
							if err := futs[j].Wait(); err != nil {
								return err
							}
						}
					}
				} else {
					for it := 0; it < iters; it++ {
						if err := cart.Run(plan, sends[0], recvs[0]); err != nil {
							return err
						}
					}
				}
				if err := mpi.Barrier(w); err != nil {
					return err
				}
				if w.Rank() == 0 {
					elapsed[g] = time.Since(t0)
				}
				return nil
			})
			if err != nil {
				errs <- fmt.Errorf("world %d: %w", g, err)
			}
		}(g)
	}
	ready.Wait()
	close(start)
	done.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return 0, err
	}
	worst := time.Duration(0)
	for _, d := range elapsed {
		if d > worst {
			worst = d
		}
	}
	ops := iters - iters%k
	if !async {
		ops = iters
	}
	return float64(worst.Nanoseconds()) / float64(ops), nil
}

// GateConcurrent enforces both perf gates: the async engine must reach
// the throughput multiple at the largest world count and must not cost
// more than the latency gate on a single collective.
func GateConcurrent(rep *ConcurrentReport) error {
	if rep.ThroughputRatio < rep.ThroughputGate {
		return fmt.Errorf("concurrent gate: async aggregate throughput is %.2fx the blocking loop at W=%d, gate demands >=%.2fx",
			rep.ThroughputRatio, concurrentWorlds[len(concurrentWorlds)-1], rep.ThroughputGate)
	}
	if rep.LatencyRatio > rep.LatencyGate {
		return fmt.Errorf("concurrent gate: single-collective Start+Wait is %.3fx blocking Run (m=%d elems), gate demands <=%.2fx",
			rep.LatencyRatio, latencyBlockElems, rep.LatencyGate)
	}
	return nil
}

// BenchP8 is the persisted perf-trajectory record (BENCH_P8.json): the
// async-engine-vs-blocking concurrency benchmark.
type BenchP8 struct {
	Description string            `json:"description"`
	Before      *ConcurrentReport `json:"before,omitempty"`
	After       *ConcurrentReport `json:"after"`
}

// ReadBenchP8 loads a persisted record; a missing file is (nil, error).
func ReadBenchP8(path string) (*BenchP8, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec BenchP8
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

// WriteBenchP8 serializes the record to path with stable formatting.
func WriteBenchP8(path string, rec *BenchP8) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatConcurrentReport renders the benchmark as text tables.
func FormatConcurrentReport(rep *ConcurrentReport) string {
	out := fmt.Sprintf("Concurrent tenants — blocking Run vs progress-engine futures (wall clock, %d-rank ring, m=%d int32)\n",
		concurrentProcs, concurrentBlockElems)
	out += fmt.Sprintf("%-8s %-7s %9s %14s %14s\n", "worlds", "mode", "inflight", "ns/op/world", "agg ops/s")
	for _, s := range rep.Samples {
		out += fmt.Sprintf("%-8d %-7s %9d %14.0f %14.0f\n", s.Worlds, s.Mode, s.Inflight, s.NsPerOp, s.OpsPerSec)
	}
	out += fmt.Sprintf("aggregate throughput ratio at W=%d: %.2fx (gate >=%.2fx)\n",
		concurrentWorlds[len(concurrentWorlds)-1], rep.ThroughputRatio, rep.ThroughputGate)
	out += fmt.Sprintf("\nSingle-collective latency — %d-rank Moore stencil, m=%d int32 (%d B blocks)\n",
		latencyProcs, latencyBlockElems, latencyBlockElems*4)
	for _, s := range rep.Latency {
		out += fmt.Sprintf("%-8s %14.0f ns/op\n", s.Mode, s.NsPerOp)
	}
	out += fmt.Sprintf("latency ratio async/sync: %.3f (gate <=%.2f)\n", rep.LatencyRatio, rep.LatencyGate)
	return out
}
