package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"cartcc/internal/cart"
	"cartcc/internal/mpi"
	"cartcc/internal/netmodel"
	"cartcc/internal/stats"
	"cartcc/internal/vec"
)

// ReduceCell is one measured block size of the neighborhood-reduction
// experiment (the Section 2.2 extension): trivial vs combining, absolute
// and relative virtual times.
type ReduceCell struct {
	M                  int
	Trivial, Combining float64 // seconds
}

// RunReduceExperiment measures NeighborReduce for the (d, n) stencil
// family under the profile's cost model.
func RunReduceExperiment(d, n, procs int, profile string, ms []int, reps int) ([]ReduceCell, error) {
	model, err := netmodel.Preset(profile)
	if err != nil {
		return nil, err
	}
	nbh, err := vec.Stencil(d, n, -1)
	if err != nil {
		return nil, err
	}
	dims, err := vec.DimsCreate(procs, d)
	if err != nil {
		return nil, err
	}
	if len(ms) == 0 {
		ms = []int{1, 10, 100}
	}
	if reps == 0 {
		reps = 5
	}
	cells := make([]ReduceCell, len(ms))
	for i, m := range ms {
		cells[i].M = m
	}
	err = mpi.Run(mpi.Config{Procs: procs, Model: model, Seed: 31, Timeout: 5 * time.Minute}, func(w *mpi.Comm) error {
		c, err := cart.NeighborhoodCreate(w, dims, nil, nbh, nil)
		if err != nil {
			return err
		}
		for i, m := range ms {
			for _, algo := range []cart.Algorithm{cart.Trivial, cart.Combining} {
				plan, err := cart.NeighborReduceInit(c, m, algo)
				if err != nil {
					return err
				}
				send := make([]float64, m)
				recv := make([]float64, m)
				var samples []float64
				for rep := 0; rep < reps; rep++ {
					dt, err := timeOnce(w, func() error {
						return cart.RunReduce(plan, send, recv, mpi.SumOp[float64])
					})
					if err != nil {
						return err
					}
					samples = append(samples, dt)
				}
				if w.Rank() == 0 {
					mean := stats.Mean(stats.Filter(profile, samples))
					if algo == cart.Trivial {
						cells[i].Trivial = mean
					} else {
						cells[i].Combining = mean
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// FormatReduce renders the reduction experiment.
func FormatReduce(d, n int, cells []ReduceCell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Neighborhood reduction — d=%d n=%d (trivial vs reversed-tree combining)\n", d, n)
	fmt.Fprintf(&b, "%6s %14s %14s %10s\n", "m", "trivial(µs)", "combining(µs)", "speedup")
	for _, c := range cells {
		fmt.Fprintf(&b, "%6d %14.2f %14.2f %9.1f×\n", c.M, c.Trivial*1e6, c.Combining*1e6, c.Trivial/c.Combining)
	}
	return b.String()
}

// MeshResult summarizes the mesh-extension experiment: combining vs
// trivial timing on a non-periodic mesh, plus the per-process volume
// spread the boundary pruning produces.
type MeshResult struct {
	Op                 cart.OpKind
	TrivialTime        float64
	CombiningTime      float64
	MinVolume          int
	MaxVolume          int
	TorusVolume        int
	BoundaryMeanVolume float64
}

// RunMeshExperiment measures the mesh-aware combining schedules against
// the trivial algorithm on a fully non-periodic 2-D mesh (9-point
// stencil).
func RunMeshExperiment(op cart.OpKind, procs, m, reps int) (*MeshResult, error) {
	model := netmodel.Hydra()
	nbh, err := vec.Stencil(2, 3, -1)
	if err != nil {
		return nil, err
	}
	dims, err := vec.DimsCreate(procs, 2)
	if err != nil {
		return nil, err
	}
	res := &MeshResult{Op: op, MinVolume: 1 << 30}
	var mu sync.Mutex
	var volSum int
	err = mpi.Run(mpi.Config{Procs: procs, Model: model, Seed: 61, Timeout: 5 * time.Minute}, func(w *mpi.Comm) error {
		c, err := cart.NeighborhoodCreate(w, dims, []bool{false, false}, nbh, nil)
		if err != nil {
			return err
		}
		mkPlan := func(algo cart.Algorithm) (*cart.Plan, error) {
			if op == cart.OpAllgather {
				return cart.AllgatherInit(c, m, algo)
			}
			return cart.AlltoallInit(c, m, algo)
		}
		comb, err := mkPlan(cart.Combining)
		if err != nil {
			return err
		}
		triv, err := mkPlan(cart.Trivial)
		if err != nil {
			return err
		}
		mu.Lock()
		v := comb.SendElements() / max(m, 1)
		if v < res.MinVolume {
			res.MinVolume = v
		}
		if v > res.MaxVolume {
			res.MaxVolume = v
		}
		volSum += v
		mu.Unlock()

		sendLen := len(nbh) * m
		if op == cart.OpAllgather {
			sendLen = m
		}
		send := make([]int32, sendLen)
		recv := make([]int32, len(nbh)*m)
		for _, pair := range []struct {
			plan *cart.Plan
			out  *float64
		}{{triv, &res.TrivialTime}, {comb, &res.CombiningTime}} {
			var samples []float64
			for rep := 0; rep < reps; rep++ {
				dt, err := timeBatch(w, func() error { return cart.Run(pair.plan, send, recv) }, 4)
				if err != nil {
					return err
				}
				samples = append(samples, dt)
			}
			if w.Rank() == 0 {
				*pair.out = stats.Mean(samples)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.BoundaryMeanVolume = float64(volSum) / float64(procs)
	torus := cart.ComputeStats(nbh)
	res.TorusVolume = torus.VolAlltoall
	if op == cart.OpAllgather {
		res.TorusVolume = torus.VolAllgather
	}
	return res, nil
}

// FormatMesh renders the mesh experiment.
func FormatMesh(res *MeshResult, procs, m int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Mesh %s — 9-point stencil on a non-periodic %d-process mesh, m=%d\n", res.Op, procs, m)
	fmt.Fprintf(&b, "  per-process combining volume: %d–%d blocks (mean %.1f; torus interior would be %d)\n",
		res.MinVolume, res.MaxVolume, res.BoundaryMeanVolume, res.TorusVolume)
	fmt.Fprintf(&b, "  trivial %.2f µs vs combining %.2f µs (%.1f× faster)\n",
		res.TrivialTime*1e6, res.CombiningTime*1e6, res.TrivialTime/res.CombiningTime)
	return b.String()
}

// ScalingCell is one process count of the weak-scaling check.
type ScalingCell struct {
	Procs    int
	Relative float64 // combining / baseline
}

// RunScalingExperiment validates the claim that the relative advantage of
// message combining is independent of the process count (per-process
// message counts do not depend on p): the same (d, n, m) cell measured at
// several torus sizes.
func RunScalingExperiment(d, n, m int, procCounts []int, profile string, reps int) ([]ScalingCell, error) {
	var out []ScalingCell
	for _, p := range procCounts {
		cells, err := Run(Config{
			Op: cart.OpAlltoall, D: d, N: n, F: -1,
			Procs: p, Reps: reps, BlockSizes: []int{m},
			Profile: profile, Seed: 51,
			Series: []Series{SeriesNeighbor, SeriesCombining},
		})
		if err != nil {
			return nil, err
		}
		out = append(out, ScalingCell{Procs: p, Relative: cells[0].Rel[SeriesCombining]})
	}
	return out, nil
}

// FormatScaling renders the weak-scaling check.
func FormatScaling(d, n, m int, cells []ScalingCell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Weak scaling — combining/direct ratio vs process count (d=%d n=%d m=%d)\n", d, n, m)
	for _, c := range cells {
		fmt.Fprintf(&b, "  p=%4d: %.3f\n", c.Procs, c.Relative)
	}
	return b.String()
}

// ReorderResult summarizes the rank-reordering experiment on a two-level
// machine.
type ReorderResult struct {
	CoresPerNode     int
	IdentityFraction float64
	BlockedFraction  float64
	IdentityTime     float64
	ReorderedTime    float64
}

// RunReorderExperiment measures the direct sparse exchange with and
// without node-blocked rank reordering under a hierarchical model.
func RunReorderExperiment(procs, coresPerNode, m, reps int) (*ReorderResult, error) {
	nbh, err := vec.Stencil(2, 3, -1)
	if err != nil {
		return nil, err
	}
	dims, err := vec.DimsCreate(procs, 2)
	if err != nil {
		return nil, err
	}
	grid, err := vec.NewGrid(dims, nil)
	if err != nil {
		return nil, err
	}
	if reps == 0 {
		reps = 5
	}
	res := &ReorderResult{CoresPerNode: coresPerNode}
	res.IdentityFraction = cart.IntraNodeFraction(grid, nbh, coresPerNode, nil)
	if perm, ok := cart.BlockedPermutation(grid, coresPerNode); ok {
		res.BlockedFraction = cart.IntraNodeFraction(grid, nbh, coresPerNode, perm)
	}

	measure := func(reorder bool) (float64, error) {
		model := netmodel.Hydra()
		model.Hierarchy = &netmodel.Hierarchy{CoresPerNode: coresPerNode, IntraAlpha: 0.05e-6, IntraBeta: 8e-13}
		var out float64
		err := mpi.Run(mpi.Config{Procs: procs, Model: model, Seed: 41, Timeout: 5 * time.Minute}, func(w *mpi.Comm) error {
			var opts []cart.Option
			if reorder {
				opts = append(opts, cart.WithReorder())
			}
			c, err := cart.NeighborhoodCreate(w, dims, nil, nbh, nil, opts...)
			if err != nil {
				return err
			}
			g, err := c.DistGraph()
			if err != nil {
				return err
			}
			send := make([]int32, len(nbh)*m)
			recv := make([]int32, len(nbh)*m)
			var samples []float64
			for rep := 0; rep < reps; rep++ {
				dt, err := timeOnce(w, func() error { return mpi.NeighborAlltoall(g, send, recv) })
				if err != nil {
					return err
				}
				samples = append(samples, dt)
			}
			if w.Rank() == 0 {
				out = stats.Mean(samples)
			}
			return nil
		})
		return out, err
	}
	if res.IdentityTime, err = measure(false); err != nil {
		return nil, err
	}
	if res.ReorderedTime, err = measure(true); err != nil {
		return nil, err
	}
	return res, nil
}

// FormatReorder renders the reordering experiment.
func FormatReorder(r *ReorderResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Rank reordering on a two-level machine (%d cores/node, 9-point stencil, 16 kB blocks)\n", r.CoresPerNode)
	fmt.Fprintf(&b, "  intra-node message fraction: identity %.3f, node-blocked %.3f\n", r.IdentityFraction, r.BlockedFraction)
	fmt.Fprintf(&b, "  direct exchange time: identity %.2f µs, reordered %.2f µs (%.1f%% faster)\n",
		r.IdentityTime*1e6, r.ReorderedTime*1e6, 100*(1-r.ReorderedTime/r.IdentityTime))
	return b.String()
}
