package bench

import (
	"strings"
	"testing"

	"cartcc/internal/cart"
)

func TestRunReduceExperiment(t *testing.T) {
	cells, err := RunReduceExperiment(2, 3, 16, "hydra", []int{1, 10}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("%d cells", len(cells))
	}
	for _, c := range cells {
		if c.Trivial <= 0 || c.Combining <= 0 {
			t.Fatalf("non-positive times: %+v", c)
		}
		if c.Combining >= c.Trivial {
			t.Errorf("m=%d: combining reduction %v not faster than trivial %v", c.M, c.Combining, c.Trivial)
		}
	}
	out := FormatReduce(2, 3, cells)
	if !strings.Contains(out, "speedup") {
		t.Errorf("format output:\n%s", out)
	}
}

func TestRunReduceExperimentBadProfile(t *testing.T) {
	if _, err := RunReduceExperiment(2, 3, 16, "nope", nil, 1); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestRunReorderExperiment(t *testing.T) {
	res, err := RunReorderExperiment(64, 4, 2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlockedFraction <= res.IdentityFraction {
		t.Errorf("blocked fraction %v not above identity %v", res.BlockedFraction, res.IdentityFraction)
	}
	if res.ReorderedTime >= res.IdentityTime {
		t.Errorf("reordered %v not faster than identity %v", res.ReorderedTime, res.IdentityTime)
	}
	out := FormatReorder(res)
	if !strings.Contains(out, "faster") {
		t.Errorf("format output:\n%s", out)
	}
}

func TestRunCrossoverSmall(t *testing.T) {
	res, err := RunCrossover(2, 3, 9, "hydra", []int{1, 1000, 8000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ms) != 3 || len(res.Rel) != 3 {
		t.Fatalf("sweep shape %v %v", res.Ms, res.Rel)
	}
	if res.Rel[0] >= 1 {
		t.Errorf("m=1 relative %v, expected < 1", res.Rel[0])
	}
	if res.Rel[2] <= 1 {
		t.Errorf("m=8000 relative %v, expected > 1", res.Rel[2])
	}
	if res.EmpiricalBytes <= 0 {
		t.Error("no empirical crossover located")
	}
	if res.AnalyticBytes <= 0 || res.ModelBytes <= 0 {
		t.Errorf("predictions: %v %v", res.AnalyticBytes, res.ModelBytes)
	}
	out := FormatCrossover(res)
	if !strings.Contains(out, "combining loses") || !strings.Contains(out, "empirical cut-off") {
		t.Errorf("format output:\n%s", out)
	}
}

func TestRunScalingExperiment(t *testing.T) {
	cells, err := RunScalingExperiment(2, 3, 5, []int{9, 16, 25}, "hydra", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("%d cells", len(cells))
	}
	// The relative advantage must be stable across process counts (the
	// p-independence claim): spread under 15%.
	lo, hi := cells[0].Relative, cells[0].Relative
	for _, c := range cells {
		if c.Relative <= 0 || c.Relative >= 1 {
			t.Fatalf("ratio out of range: %+v", c)
		}
		if c.Relative < lo {
			lo = c.Relative
		}
		if c.Relative > hi {
			hi = c.Relative
		}
	}
	if (hi-lo)/lo > 0.15 {
		t.Errorf("ratio not p-independent: %v", cells)
	}
	out := FormatScaling(2, 3, 5, cells)
	if !strings.Contains(out, "p=") {
		t.Errorf("format: %s", out)
	}
}

func TestRunMeshExperiment(t *testing.T) {
	for _, op := range []cart.OpKind{cart.OpAlltoall, cart.OpAllgather} {
		res, err := RunMeshExperiment(op, 16, 5, 2)
		if err != nil {
			t.Fatal(err)
		}
		if res.CombiningTime >= res.TrivialTime {
			t.Errorf("%v: combining %v not faster than trivial %v", op, res.CombiningTime, res.TrivialTime)
		}
		if res.MinVolume >= res.MaxVolume || res.MaxVolume > res.TorusVolume {
			t.Errorf("%v: volume spread %d..%d (torus %d)", op, res.MinVolume, res.MaxVolume, res.TorusVolume)
		}
		out := FormatMesh(res, 16, 5)
		if !strings.Contains(out, "faster") {
			t.Errorf("format: %s", out)
		}
	}
}
