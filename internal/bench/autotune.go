package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"cartcc/internal/cart"
	"cartcc/internal/mpi"
	"cartcc/internal/netmodel"
	"cartcc/internal/vec"
)

// This file implements the `cartbench autotune` experiment and
// BENCH_P7.json: virtual-time ns/op of the Auto-selected schedule
// against both fixed algorithms, swept over (operation, stencil, block
// size) under the hydra cost model. The record doubles as the perf gate
// of the self-tuning work: at every swept point the autotuned time must
// stay within AutotuneGateRatio of the best fixed algorithm — the
// selector is allowed to tie the winner, never to lose the trade.

// AutotuneGateRatio bounds autotuned time relative to the best fixed
// algorithm at each swept point.
const AutotuneGateRatio = 1.05

// AutotuneConfig parameterizes the sweep.
type AutotuneConfig struct {
	// Iters is the number of timed operations per cell; zero means 4
	// (virtual time is deterministic, repetitions only amortize the
	// barrier fences).
	Iters int
	// Profile is the cost-model preset; empty means "hydra".
	Profile string
}

// AutotuneSample is one measured (op, stencil, block size, series) cell:
// the worst per-rank virtual time per operation, and — for the auto
// series — the selector's pick and predicted crossover.
type AutotuneSample struct {
	Op         string  `json:"op"`
	Stencil    string  `json:"stencil"`
	Procs      int     `json:"procs"`
	BlockElems int     `json:"block_elems"`
	BlockBytes int     `json:"block_bytes"`
	Series     string  `json:"series"`
	NsPerOp    float64 `json:"vtime_ns_per_op"`
	// Chosen and CrossoverBytes are recorded for the auto series only.
	Chosen         string  `json:"chosen,omitempty"`
	CrossoverBytes float64 `json:"crossover_bytes,omitempty"` // -1 encodes +Inf
}

// AutotuneReport is one full sweep plus its gate verdict.
type AutotuneReport struct {
	Profile string           `json:"profile"`
	Iters   int              `json:"iters"`
	Gate    float64          `json:"gate_ratio"`
	Worst   float64          `json:"worst_auto_over_best"`
	Samples []AutotuneSample `json:"samples"`
}

// autotuneCases are the swept topologies: the 2-d Moore stencil (whose
// alltoall genuinely crosses over under hydra) and the 3-d 27-point
// stencil (denser combining, different crossover).
var autotuneCases = []struct {
	d, n, procs int
}{
	{2, 3, 16},
	{3, 3, 27},
}

// autotuneBlockElems sweeps int32 block sizes from 4 B to 256 KiB,
// straddling the hydra crossovers of both stencils.
var autotuneBlockElems = []int{1, 256, 4096, 16384, 65536}

// RunAutotuneBench sweeps Auto against both fixed algorithms and
// records the virtual-time cost of every cell.
func RunAutotuneBench(cfg AutotuneConfig) (*AutotuneReport, error) {
	if cfg.Iters == 0 {
		cfg.Iters = 4
	}
	if cfg.Profile == "" {
		cfg.Profile = "hydra"
	}
	model, err := netmodel.Preset(cfg.Profile)
	if err != nil {
		return nil, err
	}
	rep := &AutotuneReport{Profile: cfg.Profile, Iters: cfg.Iters, Gate: AutotuneGateRatio}
	for _, tc := range autotuneCases {
		nbh, err := vec.Stencil(tc.d, tc.n, -1)
		if err != nil {
			return nil, err
		}
		dims, err := vec.DimsCreate(tc.procs, tc.d)
		if err != nil {
			return nil, err
		}
		stencilName := fmt.Sprintf("d=%d n=%d", tc.d, tc.n)
		for _, op := range []cart.OpKind{cart.OpAlltoall, cart.OpAllgather} {
			for _, m := range autotuneBlockElems {
				for _, series := range []struct {
					name string
					algo cart.Algorithm
				}{
					{"trivial", cart.Trivial},
					{"combining", cart.Combining},
					{"auto", cart.Auto},
				} {
					s, err := measureAutotune(model, cfg.Iters, op, dims, nbh, tc.procs, m, series.algo)
					if err != nil {
						return nil, fmt.Errorf("%s %s m=%d %s: %w", opName(op), stencilName, m, series.name, err)
					}
					s.Op = opName(op)
					s.Stencil = stencilName
					s.Procs = tc.procs
					s.Series = series.name
					rep.Samples = append(rep.Samples, s)
				}
			}
		}
	}
	rep.Worst = worstAutoRatio(rep)
	return rep, nil
}

func opName(op cart.OpKind) string {
	if op == cart.OpAllgather {
		return "allgather"
	}
	return "alltoall"
}

// measureAutotune runs iters back-to-back plan executions under the cost
// model and returns the worst per-rank virtual time per operation. The
// warm-up execution resolves the Auto decision (and fills plan scratch)
// before the timed window opens.
func measureAutotune(model *netmodel.Model, iters int, op cart.OpKind,
	dims []int, nbh vec.Neighborhood, procs, m int, algo cart.Algorithm) (AutotuneSample, error) {

	sample := AutotuneSample{BlockElems: m, BlockBytes: m * 4}
	deltas := make([]float64, procs)
	err := mpi.Run(mpi.Config{Procs: procs, Model: model, Seed: 1, Timeout: 5 * time.Minute}, func(w *mpi.Comm) error {
		c, err := cart.NeighborhoodCreate(w, dims, nil, nbh, nil)
		if err != nil {
			return err
		}
		t := len(nbh)
		var plan *cart.Plan
		sendLen := t * m
		if op == cart.OpAllgather {
			sendLen = m
			plan, err = cart.AllgatherInit(c, m, algo)
		} else {
			plan, err = cart.AlltoallInit(c, m, algo)
		}
		if err != nil {
			return err
		}
		send := make([]int32, sendLen)
		recv := make([]int32, t*m)
		if err := cart.Run(plan, send, recv); err != nil {
			return err
		}
		if w.Rank() == 0 && algo == cart.Auto {
			if dec, ok := plan.Decision(); ok {
				sample.Chosen = dec.Chosen.String()
				sample.CrossoverBytes = dec.CrossoverBytes
				if math.IsInf(dec.CrossoverBytes, 1) {
					sample.CrossoverBytes = -1 // JSON has no +Inf
				}
			}
		}
		if err := mpi.Barrier(w); err != nil {
			return err
		}
		v0 := w.VTime()
		for i := 0; i < iters; i++ {
			if err := cart.Run(plan, send, recv); err != nil {
				return err
			}
		}
		deltas[w.Rank()] = w.VTime() - v0
		return nil
	})
	if err != nil {
		return AutotuneSample{}, err
	}
	worst := 0.0
	for _, d := range deltas {
		if d > worst {
			worst = d
		}
	}
	sample.NsPerOp = worst * 1e9 / float64(iters)
	return sample, nil
}

// worstAutoRatio scans the report for the largest auto/best-fixed ratio.
func worstAutoRatio(rep *AutotuneReport) float64 {
	worst := 0.0
	forEachAutotunePoint(rep, func(_ AutotuneSample, ratio float64) {
		if ratio > worst {
			worst = ratio
		}
	})
	return worst
}

// forEachAutotunePoint groups the samples by (op, stencil, block size)
// and reports each point's auto series with its ratio to the best fixed
// algorithm.
func forEachAutotunePoint(rep *AutotuneReport, f func(auto AutotuneSample, ratio float64)) {
	type key struct {
		op, stencil string
		m           int
	}
	best := make(map[key]float64)
	autos := make(map[key]AutotuneSample)
	for _, s := range rep.Samples {
		k := key{s.Op, s.Stencil, s.BlockElems}
		switch s.Series {
		case "auto":
			autos[k] = s
		default:
			if b, ok := best[k]; !ok || s.NsPerOp < b {
				best[k] = s.NsPerOp
			}
		}
	}
	for k, a := range autos {
		if b, ok := best[k]; ok && b > 0 {
			f(a, a.NsPerOp/b)
		}
	}
}

// GateAutotune enforces the perf gate: at every swept point the
// autotuned time must be within rep.Gate of the best fixed algorithm.
func GateAutotune(rep *AutotuneReport) error {
	var firstErr error
	forEachAutotunePoint(rep, func(a AutotuneSample, ratio float64) {
		if ratio > rep.Gate && firstErr == nil {
			firstErr = fmt.Errorf("autotune gate: %s %s m=%d elems: auto %.0f ns/op is %.3fx the best fixed algorithm (gate %.2fx)",
				a.Op, a.Stencil, a.BlockElems, a.NsPerOp, ratio, rep.Gate)
		}
	})
	return firstErr
}

// BenchP7 is the persisted perf-trajectory record (BENCH_P7.json): the
// autotuned-vs-fixed sweep of the self-tuning selection work.
type BenchP7 struct {
	Description string          `json:"description"`
	Before      *AutotuneReport `json:"before,omitempty"`
	After       *AutotuneReport `json:"after"`
}

// ReadBenchP7 loads a persisted record; a missing file is (nil, error).
func ReadBenchP7(path string) (*BenchP7, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec BenchP7
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

// WriteBenchP7 serializes the record to path with stable formatting.
func WriteBenchP7(path string, rec *BenchP7) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatAutotuneReport renders the sweep as a text table, one row per
// swept point with all three series and the gate ratio.
func FormatAutotuneReport(rep *AutotuneReport) string {
	type key struct {
		op, stencil string
		m           int
	}
	cells := make(map[key]map[string]AutotuneSample)
	var order []key
	for _, s := range rep.Samples {
		k := key{s.Op, s.Stencil, s.BlockElems}
		if cells[k] == nil {
			cells[k] = make(map[string]AutotuneSample)
			order = append(order, k)
		}
		cells[k][s.Series] = s
	}
	out := fmt.Sprintf("Auto vs fixed algorithms — virtual-time ns/op (%s model, %d iters, int32 blocks)\n", rep.Profile, rep.Iters)
	out += fmt.Sprintf("%-10s %-9s %9s %12s %12s %12s  %-10s %8s\n",
		"op", "stencil", "m(elems)", "trivial", "combining", "auto", "picked", "auto/best")
	for _, k := range order {
		row := cells[k]
		a := row["auto"]
		best := math.Min(row["trivial"].NsPerOp, row["combining"].NsPerOp)
		ratio := 0.0
		if best > 0 {
			ratio = a.NsPerOp / best
		}
		out += fmt.Sprintf("%-10s %-9s %9d %12.0f %12.0f %12.0f  %-10s %8.3f\n",
			k.op, k.stencil, k.m, row["trivial"].NsPerOp, row["combining"].NsPerOp, a.NsPerOp, a.Chosen, ratio)
	}
	out += fmt.Sprintf("worst auto/best ratio: %.3f (gate %.2f)\n", rep.Worst, rep.Gate)
	return out
}
