package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"cartcc/internal/cart"
	"cartcc/internal/metrics"
	"cartcc/internal/mpi"
	"cartcc/internal/netmodel"
	"cartcc/internal/trace"
	"cartcc/internal/vec"
)

// The observability capture: one run of the combining Cart_alltoall on a
// 4×4 torus with the Moore neighborhood, recorded three ways at once —
// virtual-time message events under the Hydra model (Recorder), wall-clock
// executor round events (RoundLog per rank), and the runtime metrics
// registry — and folded into a single Perfetto-loadable trace plus a
// metrics/accounting summary (`cartbench trace`).

// ObserveConfig parameterizes the capture.
type ObserveConfig struct {
	// Procs is the world size; Dims are derived with DimsCreate when nil.
	Procs int
	Dims  []int
	// M is the block size in elements.
	M int
	// Chaos adds a third pass: the same collective with one rank crashed
	// mid-exchange under the self-healing wrapper, so the trace shows the
	// outage window (the per-rank recovery spans) as its own process group.
	Chaos bool
}

// ObserveResult is the capture output.
type ObserveResult struct {
	Timeline *trace.Timeline
	// Metrics is the merged cross-rank snapshot of the wall-clock run.
	Metrics metrics.Snapshot
	// Stats is rank 0's predicted-vs-observed accounting of the wall-clock
	// run (identical on every rank of a torus).
	Stats cart.ExecStats
	// RecoveryMetrics is the merged snapshot of the chaos pass (recovery
	// counters, epoch gauge, drained-message counts); zero unless Chaos.
	RecoveryMetrics metrics.Snapshot
	// RecoverySpans counts the recovery windows recorded in the chaos pass.
	RecoverySpans int
}

// RunObserve performs the capture. The virtual-time pass and the
// wall-clock pass execute the same plan shape; the timeline carries the
// first as process 0 ("virtual time") and the second as process 1
// ("wall clock"), one thread per rank in both.
func RunObserve(cfg ObserveConfig) (*ObserveResult, error) {
	if cfg.Procs == 0 {
		cfg.Procs = 16
	}
	if cfg.M == 0 {
		cfg.M = 8
	}
	dims := cfg.Dims
	if dims == nil {
		var err error
		dims, err = vec.DimsCreate(cfg.Procs, 2)
		if err != nil {
			return nil, err
		}
	}
	nbh, err := vec.Moore(2, 1)
	if err != nil {
		return nil, err
	}
	tl := &trace.Timeline{}
	tl.SetProcess(0, "virtual time (hydra model)")
	tl.SetProcess(1, "wall clock (executor rounds)")

	// Pass 1: virtual time. The recorder prices every message under the
	// Hydra LogGP profile; ranks trim communicator-setup traffic at the
	// barrier so the capture is one clean collective.
	rec := trace.NewRecorder(cfg.Procs)
	err = mpi.Run(mpi.Config{Procs: cfg.Procs, Model: netmodel.Hydra(), Seed: 1, Recorder: rec, Timeout: time.Minute}, func(w *mpi.Comm) error {
		c, err := cart.NeighborhoodCreate(w, dims, []bool{true, true}, nbh, nil)
		if err != nil {
			return err
		}
		plan, err := cart.AlltoallInit(c, cfg.M, cart.Combining)
		if err != nil {
			return err
		}
		send := make([]int32, len(nbh)*cfg.M)
		recv := make([]int32, len(nbh)*cfg.M)
		if err := mpi.Barrier(c.Base()); err != nil {
			return err
		}
		rec.ResetRank(w.Rank())
		return cart.Run(plan, send, recv)
	})
	if err != nil {
		return nil, err
	}
	rec.Export(tl, 0)

	// Pass 2: wall clock, with the metrics registry attached to the
	// runtime and a round log per rank attached to the plan. A warmup
	// execution populates the wire pool and the plan scratch; the logged
	// execution is the one exported (Run resets the log each epoch).
	reg := metrics.NewRegistry(cfg.Procs)
	logs := make(trace.RoundLogSet, cfg.Procs)
	for i := range logs {
		logs[i] = trace.NewRoundLog()
	}
	statsCh := make(chan cart.ExecStats, 1)
	err = mpi.Run(mpi.Config{Procs: cfg.Procs, Metrics: reg, Timeout: time.Minute}, func(w *mpi.Comm) error {
		c, err := cart.NeighborhoodCreate(w, dims, []bool{true, true}, nbh, nil)
		if err != nil {
			return err
		}
		plan, err := cart.AlltoallInit(c, cfg.M, cart.Combining)
		if err != nil {
			return err
		}
		send := make([]int32, len(nbh)*cfg.M)
		recv := make([]int32, len(nbh)*cfg.M)
		plan.SetRoundLog(logs[w.Rank()])
		for i := 0; i < 3; i++ {
			if err := cart.Run(plan, send, recv); err != nil {
				return err
			}
		}
		s := plan.Stats()
		if err := s.Check(); err != nil {
			return err
		}
		if !s.Interior() {
			return fmt.Errorf("bench: torus rank %d not interior: rounds %d/%d blocks %d/%d",
				w.Rank(), s.PlannedRounds, s.PredictedRounds, s.PlannedBlocks, s.PredictedVolume)
		}
		if w.Rank() == 0 {
			statsCh <- s
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	logs.Export(tl, 1)

	res := &ObserveResult{Timeline: tl, Metrics: reg.Merged(), Stats: <-statsCh}
	if cfg.Chaos {
		if err := observeChaos(cfg, dims, nbh, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// observeChaos is the capture's third pass: crash one rank halfway through
// the collective and record the survivors' shrink-and-re-embed windows in
// a RecoveryLog, exported as process 2 so the outage band is visible next
// to the clean passes in Perfetto.
func observeChaos(cfg ObserveConfig, dims []int, nbh vec.Neighborhood, res *ObserveResult) error {
	victim := cfg.Procs / 2
	body := func(rlog *trace.RecoveryLog, calibrate func(w *mpi.Comm, startOp int)) func(w *mpi.Comm) error {
		return func(w *mpi.Comm) error {
			c, err := cart.NeighborhoodCreate(w, dims, []bool{true, true}, nbh, nil)
			if err != nil {
				// Collective failures are not observed uniformly: revoke
				// before bailing so blocked peers fail out too.
				w.Revoke()
				return err
			}
			if calibrate != nil {
				calibrate(w, w.OpCount())
			}
			_, _, rerr := cart.RunRecoverable(c, cart.RecoverConfig{Log: rlog}, cart.OpAlltoall, cfg.M, cart.Combining)
			return rerr
		}
	}
	// Calibration: a clean pass recording the victim's op count entering and
	// leaving the collective, so the crash lands mid-exchange.
	var startOp, endOp int
	err := mpi.Run(mpi.Config{Procs: cfg.Procs, Seed: 2, Timeout: time.Minute}, func(w *mpi.Comm) error {
		if w.Rank() == victim {
			defer func() { endOp = w.OpCount() }()
		}
		return body(nil, func(w *mpi.Comm, op int) {
			if w.Rank() == victim {
				startOp = op
			}
		})(w)
	})
	if err != nil {
		return err
	}
	atOp := (startOp + endOp) / 2
	if atOp <= startOp {
		atOp = startOp + 1
	}

	res.Timeline.SetProcess(2, "chaos (crash + recovery)")
	rlog := trace.NewRecoveryLog()
	creg := metrics.NewRegistry(cfg.Procs)
	err = mpi.Run(mpi.Config{
		Procs:   cfg.Procs,
		Seed:    2,
		Metrics: creg,
		Timeout: time.Minute,
		Faults:  &mpi.FaultPlan{Crashes: []mpi.Crash{{Rank: victim, AtOp: atOp}}},
	}, body(rlog, nil))
	// The injected crash is the run's expected primary error; anything else
	// means the self-healing pass itself broke.
	if err != nil && !mpi.IsRankFailed(err) {
		return fmt.Errorf("bench: chaos pass: %w", err)
	}
	rlog.Export(res.Timeline, 2)
	res.RecoveryMetrics = creg.Merged()
	res.RecoverySpans = len(rlog.Spans())
	if res.RecoverySpans == 0 {
		return fmt.Errorf("bench: chaos pass recorded no recovery spans (crash at op %d missed the collective?)", atOp)
	}
	return nil
}

// WriteTrace renders the capture's timeline as Chrome trace_event JSON.
func (r *ObserveResult) WriteTrace(w io.Writer) error {
	return trace.WriteChrome(w, r.Timeline)
}

// FormatObserve renders the metrics and accounting summary printed next
// to the trace file.
func FormatObserve(r *ObserveResult) string {
	var b strings.Builder
	s := r.Stats
	fmt.Fprintf(&b, "Cart_%s (%s): predicted C=%d rounds, V=%d blocks per process\n", s.Op, s.Algo, s.PredictedRounds, s.PredictedVolume)
	fmt.Fprintf(&b, "observed over %d execution(s), rank 0: %d rounds, %d messages, %d blocks, %d elements\n",
		s.Executions, s.RoundsActive, s.MessagesSent, s.BlocksForwarded, s.ElementsSent)
	if err := s.Check(); err != nil {
		fmt.Fprintf(&b, "ACCOUNTING VIOLATION: %v\n", err)
	} else {
		fmt.Fprintf(&b, "predicted-vs-observed invariant: OK\n")
	}
	b.WriteString("\nmerged runtime metrics (all ranks):\n")
	b.WriteString(r.Metrics.Format())
	if r.RecoverySpans > 0 {
		fmt.Fprintf(&b, "\nchaos pass: %d recovery span(s) recorded — process \"chaos (crash + recovery)\" in the trace\n", r.RecoverySpans)
		b.WriteString("chaos-pass metrics (all ranks):\n")
		b.WriteString(r.RecoveryMetrics.Format())
	}
	return b.String()
}
