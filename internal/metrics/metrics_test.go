package metrics

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	s := NewSet()
	c := s.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := s.Gauge("g")
	g.SetMax(7)
	g.SetMax(3)
	if got := g.Load(); got != 7 {
		t.Errorf("gauge high-water = %d, want 7", got)
	}
	g.Set(2)
	if got := g.Load(); got != 2 {
		t.Errorf("gauge after Set = %d, want 2", got)
	}
	h := s.Histogram("h")
	for _, v := range []int64{1, 2, 3, 1000, -5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("histogram count = %d, want 5", h.Count())
	}
	if h.Sum() != 1006 {
		t.Errorf("histogram sum = %d, want 1006", h.Sum())
	}
}

func TestRegistrationIdempotentAndKindChecked(t *testing.T) {
	s := NewSet()
	a, b := s.Counter("x"), s.Counter("x")
	if a != b {
		t.Error("re-registering a counter returned a different instance")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	s.Gauge("x")
}

func TestHistBucketBounds(t *testing.T) {
	cases := map[int64]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 1 << 20: 20}
	for v, want := range cases {
		if got := histBucket(v); got != want {
			t.Errorf("histBucket(%d) = %d, want %d", v, got, want)
		}
	}
	if got := histBucket(1 << 62); got != HistBuckets-1 {
		t.Errorf("histBucket(2^62) = %d, want clamp to %d", got, HistBuckets-1)
	}
}

// TestSnapshotMergeUnderConcurrentWrites is the cross-rank merge test the
// runtime relies on: per-rank writer goroutines hammer their own sets
// (the single-writer pattern of the mpi layer) while the main goroutine
// repeatedly snapshots and merges mid-flight. Run under -race this proves
// snapshotting needs no cooperation from writers; the final merged totals
// must be exact.
func TestSnapshotMergeUnderConcurrentWrites(t *testing.T) {
	const ranks, perRank = 8, 10000
	reg := NewRegistry(ranks)
	// Register everything up front, as the runtime does, so writers never
	// race on registration either.
	for r := 0; r < ranks; r++ {
		reg.Rank(r).Counter("sends")
		reg.Rank(r).Gauge("queue.hwm")
		reg.Rank(r).Histogram("latency")
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			set := reg.Rank(r)
			c := set.Counter("sends")
			g := set.Gauge("queue.hwm")
			h := set.Histogram("latency")
			<-start
			for i := 0; i < perRank; i++ {
				c.Inc()
				g.SetMax(int64(r*perRank + i))
				h.Observe(int64(i))
			}
		}(r)
	}
	close(start)
	// Reader: merge snapshots while the writers are mid-flight. Values
	// must be monotone and never exceed the final totals.
	var last int64
	for i := 0; i < 100; i++ {
		m := reg.Merged()
		v := m.Value("sends")
		if v < last || v > ranks*perRank {
			t.Fatalf("mid-flight merged counter %d out of range [%d, %d]", v, last, ranks*perRank)
		}
		last = v
	}
	wg.Wait()

	m := reg.Merged()
	if got := m.Value("sends"); got != ranks*perRank {
		t.Errorf("merged counter = %d, want %d", got, ranks*perRank)
	}
	if got := m.Value("queue.hwm"); got != ranks*perRank-1 {
		t.Errorf("merged gauge = %d, want max across ranks %d", got, ranks*perRank-1)
	}
	hist, ok := m.Get("latency")
	if !ok {
		t.Fatal("merged snapshot lost the histogram")
	}
	if hist.Count != ranks*perRank {
		t.Errorf("merged histogram count = %d, want %d", hist.Count, ranks*perRank)
	}
	wantSum := int64(ranks) * int64(perRank) * int64(perRank-1) / 2
	if hist.Value != wantSum {
		t.Errorf("merged histogram sum = %d, want %d", hist.Value, wantSum)
	}
	var bucketTotal int64
	for _, b := range hist.Buckets {
		bucketTotal += b
	}
	if bucketTotal != hist.Count {
		t.Errorf("histogram buckets sum to %d, count is %d", bucketTotal, hist.Count)
	}
}

func TestMergeKinds(t *testing.T) {
	a, b := NewSet(), NewSet()
	a.Counter("c").Add(3)
	b.Counter("c").Add(4)
	a.Gauge("g").Set(10)
	b.Gauge("g").Set(6)
	a.Histogram("h").Observe(2)
	b.Histogram("h").Observe(8)
	m := Merge(a.Snapshot(), b.Snapshot())
	if m.Value("c") != 7 {
		t.Errorf("merged counter = %d, want 7", m.Value("c"))
	}
	if m.Value("g") != 10 {
		t.Errorf("merged gauge = %d, want 10", m.Value("g"))
	}
	h, _ := m.Get("h")
	if h.Count != 2 || h.Value != 10 {
		t.Errorf("merged histogram count=%d sum=%d, want 2/10", h.Count, h.Value)
	}
	if _, ok := m.Get("absent"); ok {
		t.Error("Get on absent name reported ok")
	}
}

// Snapshots are part of the observability surface (carttrace, test
// assertions); they must marshal deterministically, sorted by name.
func TestSnapshotJSONStable(t *testing.T) {
	s := NewSet()
	s.Counter("z.last").Add(1)
	s.Counter("a.first").Add(2)
	j1, err := json.Marshal(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := json.Marshal(s.Snapshot())
	if string(j1) != string(j2) {
		t.Error("snapshot JSON not stable across calls")
	}
	var decoded Snapshot
	if err := json.Unmarshal(j1, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Metrics) != 2 || decoded.Metrics[0].Name != "a.first" {
		t.Errorf("snapshot not name-sorted: %+v", decoded.Metrics)
	}
}

// The bucket boundaries exposed on Metric must round-trip with the bucket
// selection in Observe: every observation must land in the unique bucket i
// with BucketUpper(i-1) < v <= BucketUpper(i). Exposition formats build
// their le= labels from these bounds, so a drift between the two would
// silently mislabel whole latency ranges.
func TestBucketBoundsRoundTrip(t *testing.T) {
	values := []int64{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 100, 1023, 1024, 1025, 1 << 20, 1<<40 + 3}
	for _, v := range values {
		s := NewSet()
		s.Histogram("h").Observe(v)
		m, _ := s.Snapshot().Get("h")
		idx := -1
		for i, c := range m.Buckets {
			if c != 0 {
				if idx != -1 {
					t.Fatalf("value %d counted in buckets %d and %d", v, idx, i)
				}
				idx = i
			}
		}
		if idx == -1 {
			t.Fatalf("value %d not counted in any bucket", v)
		}
		upper := m.BucketBound(idx)
		var lower int64
		if idx > 0 {
			lower = m.BucketBound(idx - 1)
		} else {
			lower = -1 // bucket 0 admits v <= 1, including the 0-clamp
		}
		if v > upper || v <= lower {
			t.Errorf("value %d landed in bucket %d with bounds (%d, %d]", v, idx, lower, upper)
		}
	}
}

// The last bucket is the clamp catch-all: its bound must be MaxInt64 and
// huge observations must land there.
func TestBucketBoundsCatchAll(t *testing.T) {
	if got := BucketUpper(HistBuckets - 1); got != math.MaxInt64 {
		t.Errorf("final bucket bound = %d, want MaxInt64", got)
	}
	if got := BucketUpper(-3); got != 0 {
		t.Errorf("negative index bound = %d, want 0", got)
	}
	s := NewSet()
	s.Histogram("h").Observe(math.MaxInt64)
	m, _ := s.Snapshot().Get("h")
	if m.Buckets[HistBuckets-1] != 1 {
		t.Errorf("MaxInt64 observation not in final bucket: %v", m.Buckets)
	}
}

func TestQuantile(t *testing.T) {
	s := NewSet()
	h := s.Histogram("h")
	for i := 0; i < 90; i++ {
		h.Observe(10) // bucket 4, upper 16
	}
	for i := 0; i < 10; i++ {
		h.Observe(5000) // bucket 13, upper 8192
	}
	m, _ := s.Snapshot().Get("h")
	if got := m.Quantile(0.5); got != 16 {
		t.Errorf("p50 = %d, want 16", got)
	}
	if got := m.Quantile(0.99); got != 8192 {
		t.Errorf("p99 = %d, want 8192", got)
	}
	if got := m.Quantile(0); got != 16 {
		t.Errorf("p0 = %d, want 16 (first non-empty bucket)", got)
	}
	var empty Metric
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
}
