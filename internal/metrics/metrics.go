// Package metrics is the runtime's lock-cheap per-rank metrics registry.
//
// The paper's whole argument is quantitative — rounds C = Σ_k C_k and
// volume V = Σ_i z_i against the trivial algorithm's t and t·m — so the
// runtime should be able to *observe* those quantities on a live
// execution rather than trust the schedule compiler. A Registry holds one
// Set per rank; hot paths hold direct pointers to Counters/Gauges/
// Histograms (registration is a one-time, mutex-guarded name lookup) and
// update them with single atomic operations, so instrumentation costs one
// nil check when disabled and one uncontended atomic when enabled.
//
// Readers snapshot concurrently with writers: every read is an atomic
// load, so a snapshot taken mid-run is a consistent-enough view for
// monitoring (each metric is internally exact; cross-metric skew is
// bounded by one in-flight operation). Snapshots from different ranks
// merge by kind — counters sum, gauges take the maximum (they record
// high-water marks), histograms add bucket-wise.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind distinguishes how metric values aggregate across ranks.
type Kind uint8

const (
	// KindCounter is a monotonically increasing sum (merge: add).
	KindCounter Kind = iota
	// KindGauge is a level or high-water mark (merge: max).
	KindGauge
	// KindHistogram is a log2-bucketed distribution (merge: bucket-wise add).
	KindHistogram
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is an atomic monotone counter.
type Counter struct{ v atomic.Int64 }

// Add adds n to the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic level with high-water-mark support.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// SetMax raises the gauge to v if v exceeds the current value — the
// high-water-mark update (unexpected-queue depth, pre-post window
// occupancy). Lock-free CAS loop; uncontended in the single-writer use.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// HistBuckets is the number of log2 buckets: bucket i counts observations
// v with 2^(i-1) < v <= 2^i (bucket 0 counts v <= 1). 48 buckets cover
// nanosecond latencies past three days.
const HistBuckets = 48

// Histogram is a log2-bucketed distribution of non-negative observations.
type Histogram struct {
	buckets [HistBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// histBucket returns the bucket index of observation v.
func histBucket(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v - 1))
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// Observe records one observation (negative values clamp to zero).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[histBucket(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Set is one rank's named metrics. Registration (Counter/Gauge/Histogram)
// is idempotent and mutex-guarded; instrumented code registers once and
// keeps the returned pointer, so the hot path never touches the map.
type Set struct {
	mu    sync.Mutex
	order []string
	items map[string]any
}

// NewSet returns an empty metric set.
func NewSet() *Set {
	return &Set{items: make(map[string]any)}
}

// register returns the metric under name, creating it with mk on first
// use. Re-registering a name as a different kind panics: that is a wiring
// bug, not a runtime condition.
func (s *Set) register(name string, mk func() any) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.items[name]; ok {
		return m
	}
	m := mk()
	s.items[name] = m
	s.order = append(s.order, name)
	return m
}

// Counter returns the counter registered under name, creating it on
// first use.
func (s *Set) Counter(name string) *Counter {
	m := s.register(name, func() any { return new(Counter) })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("metrics: %q already registered as %T", name, m))
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (s *Set) Gauge(name string) *Gauge {
	m := s.register(name, func() any { return new(Gauge) })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("metrics: %q already registered as %T", name, m))
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (s *Set) Histogram(name string) *Histogram {
	m := s.register(name, func() any { return new(Histogram) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("metrics: %q already registered as %T", name, m))
	}
	return h
}

// Snapshot atomically reads every registered metric. Safe to call while
// writers are updating: each field is an atomic load.
func (s *Set) Snapshot() Snapshot {
	s.mu.Lock()
	names := append([]string(nil), s.order...)
	items := make([]any, len(names))
	for i, n := range names {
		items[i] = s.items[n]
	}
	s.mu.Unlock()
	snap := Snapshot{Metrics: make([]Metric, 0, len(names))}
	for i, n := range names {
		snap.Metrics = append(snap.Metrics, readMetric(n, items[i]))
	}
	snap.sort()
	return snap
}

// readMetric converts one live metric to its snapshot form.
func readMetric(name string, m any) Metric {
	switch v := m.(type) {
	case *Counter:
		return Metric{Name: name, Kind: KindCounter, Value: v.Load()}
	case *Gauge:
		return Metric{Name: name, Kind: KindGauge, Value: v.Load()}
	case *Histogram:
		out := Metric{Name: name, Kind: KindHistogram, Value: v.Sum(), Count: v.Count(), Buckets: make([]int64, HistBuckets)}
		for i := range v.buckets {
			out.Buckets[i] = v.buckets[i].Load()
		}
		return out
	default:
		panic(fmt.Sprintf("metrics: unknown metric type %T", m))
	}
}

// Metric is the read-only snapshot of one metric. For histograms Value is
// the sum of observations and Count the observation count.
type Metric struct {
	Name    string  `json:"name"`
	Kind    Kind    `json:"kind"`
	Value   int64   `json:"value"`
	Count   int64   `json:"count,omitempty"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// Mean returns the histogram's mean observation (0 when empty).
func (m Metric) Mean() float64 {
	if m.Count == 0 {
		return 0
	}
	return float64(m.Value) / float64(m.Count)
}

// BucketUpper returns the inclusive upper bound of log2 bucket i: bucket i
// counts observations v with BucketUpper(i-1) < v <= BucketUpper(i), and
// bucket 0 counts v <= 1. The final bucket is a catch-all for the clamp in
// histBucket, so its bound is MaxInt64. Exposition formats and quantile
// summaries read boundaries through this accessor instead of re-deriving
// the log2 layout.
func BucketUpper(i int) int64 {
	if i < 0 {
		return 0
	}
	if i >= HistBuckets-1 {
		return math.MaxInt64
	}
	return int64(1) << uint(i)
}

// BucketBound is BucketUpper as a Metric method, for callers holding a
// histogram snapshot. Non-histogram metrics have no buckets; the bound is
// still well defined (the layout is global), so no kind check is made.
func (m Metric) BucketBound(i int) int64 { return BucketUpper(i) }

// Quantile returns an upper estimate of the q-quantile (0 <= q <= 1) of a
// histogram snapshot: the upper bound of the first bucket at which the
// cumulative count reaches q·Count. Log2 buckets make this exact to within
// a factor of 2 — good enough for straggler triage, not for billing.
// Returns 0 for empty histograms and non-histogram metrics.
func (m Metric) Quantile(q float64) int64 {
	if m.Count == 0 || len(m.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	need := int64(math.Ceil(q * float64(m.Count)))
	if need <= 0 {
		need = 1
	}
	var cum int64
	for i, c := range m.Buckets {
		cum += c
		if cum >= need {
			return BucketUpper(i)
		}
	}
	return BucketUpper(len(m.Buckets) - 1)
}

// Snapshot is a point-in-time view of a metric set, sorted by name.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

func (s *Snapshot) sort() {
	sort.Slice(s.Metrics, func(a, b int) bool { return s.Metrics[a].Name < s.Metrics[b].Name })
}

// Get returns the named metric of the snapshot.
func (s Snapshot) Get(name string) (Metric, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// Value returns the named metric's value, 0 when absent.
func (s Snapshot) Value(name string) int64 {
	m, _ := s.Get(name)
	return m.Value
}

// Require returns an error naming every listed metric absent from the
// snapshot. Invariant checks built on Value would pass vacuously when a
// metric was never registered (absent reads as 0); calling Require first
// turns that silent hole into a failure.
func (s Snapshot) Require(names ...string) error {
	var missing []string
	for _, n := range names {
		if _, ok := s.Get(n); !ok {
			missing = append(missing, n)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("metrics: snapshot missing %s", strings.Join(missing, ", "))
	}
	return nil
}

// Merge combines snapshots by metric kind: counters and histograms add,
// gauges take the maximum. This is the cross-rank aggregation: per-rank
// sends sum to world sends, per-rank queue high-water marks max to the
// world's worst queue.
func Merge(snaps ...Snapshot) Snapshot {
	byName := make(map[string]*Metric)
	var order []string
	for _, s := range snaps {
		for _, m := range s.Metrics {
			acc, ok := byName[m.Name]
			if !ok {
				cp := m
				cp.Buckets = append([]int64(nil), m.Buckets...)
				byName[m.Name] = &cp
				order = append(order, m.Name)
				continue
			}
			switch m.Kind {
			case KindGauge:
				if m.Value > acc.Value {
					acc.Value = m.Value
				}
			case KindHistogram:
				acc.Value += m.Value
				acc.Count += m.Count
				for i := range m.Buckets {
					if i < len(acc.Buckets) {
						acc.Buckets[i] += m.Buckets[i]
					}
				}
			default:
				acc.Value += m.Value
			}
		}
	}
	out := Snapshot{Metrics: make([]Metric, 0, len(order))}
	for _, n := range order {
		out.Metrics = append(out.Metrics, *byName[n])
	}
	out.sort()
	return out
}

// Registry holds one metric set per rank plus accessors for whole-run
// aggregation. Create it sized for the run and pass it to the runtime
// (mpi.Config.Metrics); each rank's hot paths write only its own set.
type Registry struct {
	sets []*Set
}

// NewRegistry creates a registry for ranks metric sets.
func NewRegistry(ranks int) *Registry {
	r := &Registry{sets: make([]*Set, ranks)}
	for i := range r.sets {
		r.sets[i] = NewSet()
	}
	return r
}

// Ranks returns the number of per-rank sets.
func (r *Registry) Ranks() int { return len(r.sets) }

// Rank returns rank i's metric set.
func (r *Registry) Rank(i int) *Set { return r.sets[i] }

// Merged snapshots every rank's set and merges them (counters sum,
// gauges max, histograms add).
func (r *Registry) Merged() Snapshot {
	snaps := make([]Snapshot, len(r.sets))
	for i, s := range r.sets {
		snaps[i] = s.Snapshot()
	}
	return Merge(snaps...)
}

// Format renders the snapshot as an aligned two-column table; histograms
// show count and mean.
func (s Snapshot) Format() string {
	var b strings.Builder
	w := 0
	for _, m := range s.Metrics {
		if len(m.Name) > w {
			w = len(m.Name)
		}
	}
	for _, m := range s.Metrics {
		switch m.Kind {
		case KindHistogram:
			fmt.Fprintf(&b, "%-*s  count=%d sum=%d mean=%.1f\n", w, m.Name, m.Count, m.Value, m.Mean())
		case KindGauge:
			fmt.Fprintf(&b, "%-*s  %d (max)\n", w, m.Name, m.Value)
		default:
			fmt.Fprintf(&b, "%-*s  %d\n", w, m.Name, m.Value)
		}
	}
	return b.String()
}
