package mpi

import (
	"cartcc/internal/metrics"
)

// Per-rank runtime instrumentation. When a run is configured with a
// metrics.Registry (Config.Metrics), every rank resolves its metric
// pointers once at world construction and keeps them on its rankState, so
// the hot paths pay one nil check when metrics are off and one uncontended
// atomic when on — never a name lookup, never a lock.
//
// Metric names, by layer:
//
//	mpi.sends.posted        sends posted (counter)
//	mpi.sends.zerocopy      sends that took the contiguous zero-copy path
//	mpi.sends.gathered      sends gathered into a pooled wire
//	mpi.send.bytes          payload bytes sent
//	mpi.recvs.posted        receives posted
//	mpi.recvs.completed     receives completed (Wait returned a message)
//	mpi.recv.bytes          payload bytes received
//	mpi.recv.detached       zero-copy payloads detached to a pooled wire at
//	                        this receiver (no receive was posted in time, or
//	                        the scatter was deferred) — fast-path misses
//	mpi.wirepool.hit        wire allocations served from the pool
//	mpi.wirepool.miss       wire allocations that fell through to make()
//	mpi.unexpected.hwm      unexpected-queue depth high-water mark (gauge)
//	mpi.wait.blocks         blocking waits that actually blocked
//	mpi.wait.blocked_ns     nanoseconds spent blocked in Wait*/Waitsome
//
// Fault-injection and recovery (all zero on a clean run, so the metric
// conservation laws of invariants.go are unaffected):
//
//	mpi.msg.dropped         messages lost by injected MsgDrop faults
//	mpi.msg.duplicated      messages duplicated by injected MsgDup faults
//	mpi.msg.dup_dropped     duplicate deliveries suppressed by the
//	                        per-sender sequence dedup at this receiver
//	mpi.recovery.shrinks    successful Shrink consensus rounds this rank
//	                        participated in
//	mpi.recovery.stale_drained  stale-epoch messages discarded at this
//	                        rank's mailbox (drain sweep + floor check)
//	mpi.epoch               the rank's current recovery epoch (gauge)
//
// The cart layer registers its schedule-level metrics in the same per-rank
// set (see cart's accounting) so one snapshot covers the whole stack.
type mpiMetrics struct {
	set *metrics.Set

	sendsPosted   *metrics.Counter
	sendsZeroCopy *metrics.Counter
	sendsGathered *metrics.Counter
	sendBytes     *metrics.Counter
	recvsPosted   *metrics.Counter
	recvsDone     *metrics.Counter
	recvBytes     *metrics.Counter
	recvDetached  *metrics.Counter
	poolHit       *metrics.Counter
	poolMiss      *metrics.Counter
	unexpectedHWM *metrics.Gauge
	waitBlocks    *metrics.Counter
	waitBlockedNs *metrics.Counter

	msgDropped    *metrics.Counter
	msgDuplicated *metrics.Counter
	dupDropped    *metrics.Counter
	shrinks       *metrics.Counter
	staleDrained  *metrics.Counter
	epochGauge    *metrics.Gauge
}

// newMPIMetrics resolves the runtime's metric pointers in set.
func newMPIMetrics(set *metrics.Set) *mpiMetrics {
	return &mpiMetrics{
		set:           set,
		sendsPosted:   set.Counter("mpi.sends.posted"),
		sendsZeroCopy: set.Counter("mpi.sends.zerocopy"),
		sendsGathered: set.Counter("mpi.sends.gathered"),
		sendBytes:     set.Counter("mpi.send.bytes"),
		recvsPosted:   set.Counter("mpi.recvs.posted"),
		recvsDone:     set.Counter("mpi.recvs.completed"),
		recvBytes:     set.Counter("mpi.recv.bytes"),
		recvDetached:  set.Counter("mpi.recv.detached"),
		poolHit:       set.Counter("mpi.wirepool.hit"),
		poolMiss:      set.Counter("mpi.wirepool.miss"),
		unexpectedHWM: set.Gauge("mpi.unexpected.hwm"),
		waitBlocks:    set.Counter("mpi.wait.blocks"),
		waitBlockedNs: set.Counter("mpi.wait.blocked_ns"),

		msgDropped:    set.Counter("mpi.msg.dropped"),
		msgDuplicated: set.Counter("mpi.msg.duplicated"),
		dupDropped:    set.Counter("mpi.msg.dup_dropped"),
		shrinks:       set.Counter("mpi.recovery.shrinks"),
		staleDrained:  set.Counter("mpi.recovery.stale_drained"),
		epochGauge:    set.Gauge("mpi.epoch"),
	}
}

// countSendPath records which send path one message took: the contiguous
// zero-copy path, or the gather path with its wire drawn from the pool
// (pooled) or freshly allocated. Nil-safe: the instrumentation-off cost is
// this one nil check.
func (m *mpiMetrics) countSendPath(zerocopy, pooled bool) {
	if m == nil {
		return
	}
	if zerocopy {
		m.sendsZeroCopy.Inc()
		return
	}
	m.sendsGathered.Inc()
	if pooled {
		m.poolHit.Inc()
	} else {
		m.poolMiss.Inc()
	}
}

// MetricsSet returns the calling rank's metric set, or nil when the run
// was configured without metrics. Layers above the runtime (the cart
// schedule executors) register their own metrics in this set so one
// per-rank snapshot spans the whole stack.
func (c *Comm) MetricsSet() *metrics.Set {
	if c.rs.met == nil {
		return nil
	}
	return c.rs.met.set
}
