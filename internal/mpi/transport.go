package mpi

import (
	"errors"
	"fmt"
)

// This file defines the Transport seam: the single point where a posted
// message crosses from the sender's world into the destination rank's
// mailbox. The in-process default (no transport) is the zero-copy loopback
// path the runtime has always had — a direct mailbox call, payloads
// aliasing the sender's buffer until match or detach. A network transport
// (transport_net.go) carries the same messages across OS processes as
// varint-framed byte frames, and must preserve exactly the properties the
// mailbox relies on:
//
//   - per-sender delivery order (the receiver's duplicate suppression and
//     the non-overtaking guarantee both key on it): Send is called under
//     the sender's sendMu and the backend must not reorder frames;
//   - the full match envelope (ctx, epoch, src, tag) plus (srcWorld, sseq)
//     travel with every message, so epoch-floor draining and dedup behave
//     identically however the message arrived;
//   - completion signaling is untouched: a remotely received message
//     enters through mailbox.deliver on the destination process, so
//     WaitSet/CompletionSink notification, deferred consume and poison
//     semantics need no transport awareness at all.

// ErrRemoteFailed marks a failure propagated from another process of a
// multi-process world (a KindFail frame). Match with errors.Is.
var ErrRemoteFailed = errors.New("remote process failed")

// TransportError reports a transport-level send failure: the destination
// process is unreachable or the payload cannot be wire-encoded. The send
// request completes with this error instead of silently dropping data.
type TransportError struct {
	// Proc is the destination process index (-1 when not attributable).
	Proc int
	// Err is the underlying cause.
	Err error
}

// Error implements the error interface.
func (e *TransportError) Error() string {
	return fmt.Sprintf("transport: process %d: %v", e.Proc, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *TransportError) Unwrap() error { return e.Err }

// Transport moves messages between the processes hosting one world's
// ranks. Implementations other than the in-process loopback live behind
// this interface; the runtime routes every posted message through
// World.route, which short-circuits to the mailbox for local
// destinations.
type Transport interface {
	// Attach binds the transport to its world. Called once, before any
	// rank goroutine spawns.
	Attach(w *World)
	// Local reports whether messages to world rank dst are delivered by a
	// direct mailbox call in this process. A backend may answer false for
	// ranks it hosts (force-remote mode) to route even process-local
	// traffic through the wire — the conformance battery runs the full
	// runtime semantics over real sockets this way.
	Local(dst int) bool
	// Send delivers message m to world rank dst. Called under the
	// sender's per-rank send lock; implementations must preserve the
	// per-sender frame order end to end. The payload must be read (or
	// encoded) before Send returns — it may alias the sender's user
	// buffer, and the alias dies with the posting call. On error the
	// message has not been delivered and the caller reclaims its buffers.
	Send(dst int, m *message) error
	// InFlight reports messages accepted by Send, destined to a rank
	// hosted in this process, and not yet handed to its mailbox — frames
	// in the self-loop pipe. The deadlock monitor treats a non-zero value
	// as progress-in-motion.
	InFlight() int
	// Drain blocks (bounded) until the self-loop pipe is momentarily
	// empty. The fault layer calls it before poisoning receives when a
	// rank is marked dead: on the loopback path every message posted
	// before a crash is already delivered when the poison runs, and the
	// recovery protocol's convergence leans on that ordering, so a
	// transport must let the pipe settle before the poison overtakes
	// messages the dead rank really sent.
	Drain()
	// NoteFailure propagates a fatal local failure to peer processes so
	// their worlds abort with the cause instead of a timeout.
	NoteFailure(err error)
	// Close flushes outbound frames, announces departure to peers and
	// releases sockets. Called after the local ranks have finished.
	Close() error
}

// route hands a posted message to world rank dst: a direct mailbox call
// for local destinations (the zero-copy loopback fast path), the world's
// transport otherwise. Callers pass errors to the posted request — a send
// that cannot reach its destination completes with a typed error, never
// by silently dropping data.
func (w *World) route(dst int, m *message) error {
	if t := w.transport; t != nil && !t.Local(dst) {
		return t.Send(dst, m)
	}
	w.ranks[dst].box.deliver(m)
	return nil
}

// hosted reports whether world rank r runs in this process. Without a
// rank map every rank is local.
func (w *World) hosted(r int) bool {
	return w.localRank == nil || w.localRank[r]
}
