package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// notifySink is the completion queue behind a WaitSet: an unbounded
// mutex-guarded token list plus a one-slot wake channel. Matchers (and
// cancel callers) post completion tokens with post, which never blocks —
// the queue grows as needed — so a single sink can multiplex any number of
// in-flight receives: the progress-engine requirement that outgrew the
// fixed-capacity completion channel. The wake channel is a level trigger
// (capacity 1, non-blocking send): a waiter that drains the queue may see
// one spurious wake afterwards and must re-check.
type notifySink struct {
	mu    sync.Mutex
	queue []int
	wake  chan struct{}
	// pend mirrors len(queue) (written under mu): pollers peek it with
	// one atomic load instead of taking the lock to discover emptiness.
	pend atomic.Int32
}

func newNotifySink(capacity int) *notifySink {
	return &notifySink{queue: make([]int, 0, capacity), wake: make(chan struct{}, 1)}
}

// post enqueues one completion token and wakes the waiter. Safe from any
// goroutine; never blocks.
func (s *notifySink) post(tok int) {
	s.mu.Lock()
	s.queue = append(s.queue, tok)
	s.pend.Store(int32(len(s.queue)))
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// WaitSet is a completion multiplexer over requests: the engine behind
// Waitsome-style progress without polling. Receives added to the set attach
// a notification slot to their pending receive (mailbox.attachNotify); the
// moment a message or poison is matched, the matcher posts the slot to the
// set's sink — before the ready handoff — so Waitsome blocks on a single
// wake channel and wakes exactly when something completed. Requests that
// cannot notify (sends, which complete at post; finished requests; receives
// whose match already happened) are reported ready on the next Waitsome
// call. Cancellation counts as completion: a receive cancelled after being
// added (Request.Cancel) posts to the sink like a match would, and its
// owner comes back from Waitsome with the request completed as ErrCancelled
// — a set whose receives were all cancelled drains instead of blocking.
//
// Each added request carries a caller-chosen owner token, and Waitsome
// returns owner tokens: schedule executors pass round indices, Waitany
// passes argument positions, progress engines encode (schedule, round)
// pairs. Owner tokens must be non-negative. A WaitSet is single-goroutine
// (whoever calls Add/Waitsome/Reset); only the sink is written by other
// goroutines.
//
// The sink is unbounded: the construction capacity is a pre-allocation
// hint, not a limit, and positions freed by consumed completions are
// recycled, so a long-lived set (a progress engine's) does not grow with
// the number of collectives driven through it. Reset reclaims the set for
// the next execution without allocating, which keeps repeated plan
// executions allocation-free.
type WaitSet struct {
	c    *Comm
	sink *notifySink

	// pends[i] is the i-th attached pending receive, nil once its
	// notification has been consumed; pendOwner and pendSrc align with it.
	// Notifications carry positions into this slice; freePos recycles
	// consumed positions so the slice stays bounded by the in-flight count.
	pends     []*pendingRecv
	pendOwner []int
	pendSrc   []int
	freePos   []int

	// readyNow holds owners of requests that were already complete when
	// added; scratch is the result buffer returned by Waitsome.
	readyNow []int
	scratch  []int

	// outstanding counts attached notifications not yet consumed.
	outstanding int

	// external marks a set that also receives caller-injected tokens
	// (Notify): Waitsome then blocks even with no receives outstanding —
	// an idle progress engine parking for its next commit — and does not
	// arm the deadlock timer for such pure-external waits (idle is not
	// deadlock).
	external bool

	// monitored selects wait-for-graph deadlock-monitor registration for
	// blocking waits (default true). A progress engine disables it: the
	// monitor has one blocked-op slot per rank, owned by the rank's own
	// goroutine, and an engine blocking concurrently with the rank would
	// clobber it. Engine waits keep the fallback timer as their deadlock
	// defense.
	monitored bool

	// timer is the set's own fallback-watchdog timer. The per-rank
	// blockTimer cannot be shared here: an engine's Waitsome may block
	// concurrently with the rank goroutine's own blocking wait.
	timer *time.Timer
}

// NewWaitSet creates a set; capacity pre-sizes the completion queue for the
// expected number of in-flight receives (a hint — the set grows as needed).
func NewWaitSet(c *Comm, capacity int) *WaitSet {
	if capacity < 1 {
		capacity = 1
	}
	return &WaitSet{c: c, sink: newNotifySink(capacity), monitored: true}
}

// SetMonitored selects whether blocking waits register with the
// wait-for-graph deadlock monitor. Progress engines pass false — see the
// monitored field. Must be called by the set's owner before any Waitsome.
func (s *WaitSet) SetMonitored(on bool) { s.monitored = on }

// AllowExternal marks the set as receiving caller-injected tokens (Notify),
// which makes an empty Waitsome block instead of returning (nil, nil).
// Must be called by the set's owner before any Waitsome.
func (s *WaitSet) AllowExternal() { s.external = true }

// Notify injects a caller-defined completion token from any goroutine: the
// next Waitsome returns it among the ready owners. Progress engines use it
// to wake a parked engine when a new schedule is committed. The token must
// be non-negative (owner tokens and sink positions share the queue;
// external tokens travel bit-complemented).
func (s *WaitSet) Notify(token int) {
	if token < 0 {
		panic(fmt.Sprintf("mpi: WaitSet.Notify token %d is negative", token))
	}
	s.sink.post(^token)
}

// Reset prepares the set for reuse. Notifications still queued from an
// abandoned execution are drained; the caller must have completed (Wait) or
// cancelled every previously added receive first, so no late post can
// arrive afterwards — a Wait that returned implies its notification was
// already queued, and a successful Cancel means the canceller posted before
// Cancel returned.
func (s *WaitSet) Reset() {
	s.sink.mu.Lock()
	s.sink.queue = s.sink.queue[:0]
	s.sink.pend.Store(0)
	s.sink.mu.Unlock()
	select {
	case <-s.sink.wake:
	default:
	}
	s.pends = s.pends[:0]
	s.pendOwner = s.pendOwner[:0]
	s.pendSrc = s.pendSrc[:0]
	s.freePos = s.freePos[:0]
	s.readyNow = s.readyNow[:0]
	s.outstanding = 0
}

// Add registers a request under the given owner token. Already-complete
// requests (nil, finished, sends) become immediately ready; receives attach
// a notification, or become immediately ready if their match already
// happened; aggregates attach every unfinished child receive under the same
// owner, so the owner is reported on each child completion and the caller
// re-tests the aggregate.
func (s *WaitSet) Add(r *Request, owner int) {
	if owner < 0 {
		panic(fmt.Sprintf("mpi: WaitSet owner token %d is negative", owner))
	}
	if r == nil || r.finished {
		s.readyNow = append(s.readyNow, owner)
		return
	}
	switch r.kind {
	case reqRecv:
		s.attach(r, owner)
	case reqAggregate:
		attached := false
		var walk func(req *Request)
		walk = func(req *Request) {
			if req == nil || req.finished {
				return
			}
			switch req.kind {
			case reqRecv:
				if s.attach(req, owner) {
					attached = true
				}
			case reqAggregate:
				for _, ch := range req.children {
					walk(ch)
				}
			}
		}
		walk(r)
		if !attached {
			s.readyNow = append(s.readyNow, owner)
		}
	default:
		// Sends complete at post time.
		s.readyNow = append(s.readyNow, owner)
	}
}

// attach wires one receive's completion to the set and reports whether a
// notification is pending (false: the receive is already matched and the
// owner was queued as immediately ready). Freed positions are reused, so
// the position tables stay sized to the in-flight high-water mark.
func (s *WaitSet) attach(r *Request, owner int) bool {
	var pos int
	if n := len(s.freePos); n > 0 {
		pos = s.freePos[n-1]
	} else {
		pos = len(s.pends)
	}
	if !r.c.rs.box.attachNotify(r.pending, s.sink, pos) {
		s.readyNow = append(s.readyNow, owner)
		return false
	}
	if pos < len(s.pends) {
		s.freePos = s.freePos[:len(s.freePos)-1]
		s.pends[pos] = r.pending
		s.pendOwner[pos] = owner
		s.pendSrc[pos] = r.pending.srcWorld
	} else {
		s.pends = append(s.pends, r.pending)
		s.pendOwner = append(s.pendOwner, owner)
		s.pendSrc = append(s.pendSrc, r.pending.srcWorld)
	}
	s.outstanding++
	return true
}

// take consumes one notification, freeing its position for reuse.
func (s *WaitSet) take(pos int) {
	s.pends[pos] = nil
	s.freePos = append(s.freePos, pos)
	s.outstanding--
	s.scratch = append(s.scratch, s.pendOwner[pos])
}

// drain collects every queued token without blocking. Non-negative tokens
// are positions (receive completions); negative tokens are bit-complemented
// external owners injected via Notify.
func (s *WaitSet) drain() {
	s.sink.mu.Lock()
	for _, tok := range s.sink.queue {
		if tok < 0 {
			s.scratch = append(s.scratch, ^tok)
			continue
		}
		s.take(tok)
	}
	s.sink.queue = s.sink.queue[:0]
	s.sink.pend.Store(0)
	s.sink.mu.Unlock()
}

// armTimeout returns the set's fallback-watchdog timer channel (nil when
// the timeout is disabled). Go 1.23 timer semantics make Reset-after-fire
// safe without draining.
func (s *WaitSet) armTimeout() <-chan time.Time {
	d := s.c.w.timeout
	if d <= 0 {
		return nil
	}
	if s.timer == nil {
		s.timer = time.NewTimer(d)
	} else {
		s.timer.Reset(d)
	}
	return s.timer.C
}

func (s *WaitSet) disarmTimeout() {
	if s.timer != nil {
		s.timer.Stop()
	}
}

// Waitsome blocks until at least one added request has completed (or an
// external token was injected) and returns the owner tokens of everything
// complete so far, like a completion-channel MPI_Waitsome — no polling, no
// backoff. A (nil, nil) return means nothing is outstanding (unless the
// set AllowExternal-ed, in which case an empty set parks awaiting Notify).
// Blocking waits with receives outstanding register with the
// wait-for-graph deadlock monitor under kind "waitsome" (when monitored)
// and honor the run's abort channel and fallback timer exactly like a
// blocking receive. The returned slice is reused by the next call.
func (s *WaitSet) Waitsome() ([]int, error) {
	s.scratch = s.scratch[:0]
	if len(s.readyNow) > 0 {
		s.scratch = append(s.scratch, s.readyNow...)
		s.readyNow = s.readyNow[:0]
	}
	s.drain()
	if len(s.scratch) > 0 {
		return s.scratch, nil
	}
	if s.outstanding == 0 && !s.external {
		return nil, nil
	}
	w := s.c.w
	rs := s.c.rs
	if met := rs.met; met != nil && s.outstanding > 0 {
		// As in awaitMessage: count and time only waits that actually block
		// on receives. Idle external parks (an engine awaiting its next
		// commit) are not communication waits and stay out of the metric.
		met.waitBlocks.Inc()
		t0 := time.Now()
		defer func() { met.waitBlockedNs.Add(time.Since(t0).Nanoseconds()) }()
	}
	if w.monitoring && s.monitored && s.outstanding > 0 {
		// Fresh slices per registration: the deadlock monitor reads the
		// blockedOp snapshot concurrently, possibly after this rank has
		// moved on to the next Waitsome, so the backing arrays must not be
		// reused.
		watchPends := make([]*pendingRecv, 0, s.outstanding)
		watchSrcs := make([]int, 0, s.outstanding)
		for i, p := range s.pends {
			if p != nil {
				watchPends = append(watchPends, p)
				watchSrcs = append(watchSrcs, s.pendSrc[i])
			}
		}
		w.setBlocked(rs.rank, &blockedOp{
			kind:      "waitsome",
			since:     time.Now(),
			pendings:  watchPends,
			srcWorlds: watchSrcs,
		})
		defer w.clearBlocked(rs.rank)
	}
	// Arm the fallback deadlock timer only when receives are outstanding: a
	// pure-external park (idle engine) can legitimately wait forever.
	var timeoutCh <-chan time.Time
	if s.outstanding > 0 {
		timeoutCh = s.armTimeout()
		defer s.disarmTimeout()
	}
	for {
		select {
		case <-s.sink.wake:
			s.drain()
			if len(s.scratch) > 0 {
				return s.scratch, nil
			}
			// Spurious wake: the level-triggered wake slot outlived a drain.
			continue
		case <-w.abort:
			// Prefer completions that raced with the abort (typed poisons carry
			// the informative error) over the generic cascade error.
			s.drain()
			if len(s.scratch) > 0 {
				return s.scratch, nil
			}
			if cause := w.abortCause(); cause != nil {
				// As in awaitMessage: carry the recorded primary failure so the
				// cascade error names why the run died.
				return nil, fmt.Errorf("mpi: rank %d: %w in waitsome (%d receive(s) pending): %w", s.c.rank, ErrAborted, s.outstanding, cause)
			}
			return nil, fmt.Errorf("mpi: rank %d: %w in waitsome (%d receive(s) pending)", s.c.rank, ErrAborted, s.outstanding)
		case <-timeoutCh:
			s.drain()
			if len(s.scratch) > 0 {
				return s.scratch, nil
			}
			err := fmt.Errorf("mpi: rank %d: deadlock suspected: waitsome over %d receive(s) blocked for %v",
				s.c.rank, s.outstanding, w.timeout)
			w.fail(err)
			return nil, err
		}
	}
}

// Outstanding returns the number of attached receives whose completion has
// not yet been returned by Waitsome.
func (s *WaitSet) Outstanding() int { return s.outstanding }
