package mpi

import (
	"fmt"
	"time"
)

// WaitSet is a completion-channel multiplexer over requests: the engine
// behind Waitsome-style progress without polling. Receives added to the set
// attach a notification slot to their pending receive (mailbox.attachNotify);
// the moment a message or poison is matched, the matcher signals the set's
// channel — before the ready handoff — so Waitsome blocks on a single
// channel and wakes exactly when something completed. Requests that cannot
// notify (sends, which complete at post; finished requests; receives whose
// match already happened) are reported ready on the next Waitsome call.
// Cancellation counts as completion: a receive cancelled after being added
// (Request.Cancel) signals the set like a match would, and its owner comes
// back from Waitsome with the request completed as ErrCancelled — a set
// whose receives were all cancelled drains instead of blocking.
//
// Each added request carries a caller-chosen owner token, and Waitsome
// returns owner tokens: schedule executors pass round indices, Waitany
// passes argument positions. A WaitSet is single-goroutine (the owning
// rank's); only the completion channel is written by other goroutines.
//
// The completion channel is sized at construction and never grows: the
// capacity must cover every receive attached between Resets, or Add panics.
// Reset reclaims the set for the next execution without allocating, which
// keeps repeated plan executions allocation-free.
type WaitSet struct {
	c    *Comm
	done chan int

	// pends[i] is the i-th attached pending receive, nil once its
	// notification has been consumed; pendOwner and pendSrc align with it.
	// Notifications carry positions into this slice.
	pends     []*pendingRecv
	pendOwner []int
	pendSrc   []int

	// readyNow holds owners of requests that were already complete when
	// added; scratch is the result buffer returned by Waitsome.
	readyNow []int
	scratch  []int

	// outstanding counts attached notifications not yet consumed.
	outstanding int
}

// NewWaitSet creates a set whose completion channel can hold capacity
// notifications — at least the number of receives that will be added
// between Resets.
func NewWaitSet(c *Comm, capacity int) *WaitSet {
	if capacity < 1 {
		capacity = 1
	}
	return &WaitSet{c: c, done: make(chan int, capacity)}
}

// Reset prepares the set for reuse. Notifications still queued from an
// abandoned execution are drained; the caller must have completed (Wait) or
// cancelled every previously added receive first, so no late signal can
// arrive afterwards — a Wait that returned implies its notification was
// already queued, and a successful Cancel means none will ever come.
func (s *WaitSet) Reset() {
	for {
		select {
		case <-s.done:
			continue
		default:
		}
		break
	}
	s.pends = s.pends[:0]
	s.pendOwner = s.pendOwner[:0]
	s.pendSrc = s.pendSrc[:0]
	s.readyNow = s.readyNow[:0]
	s.outstanding = 0
}

// Add registers a request under the given owner token. Already-complete
// requests (nil, finished, sends) become immediately ready; receives attach
// a notification, or become immediately ready if their match already
// happened; aggregates attach every unfinished child receive under the same
// owner, so the owner is reported on each child completion and the caller
// re-tests the aggregate.
func (s *WaitSet) Add(r *Request, owner int) {
	if r == nil || r.finished {
		s.readyNow = append(s.readyNow, owner)
		return
	}
	switch r.kind {
	case reqRecv:
		s.attach(r, owner)
	case reqAggregate:
		attached := false
		var walk func(req *Request)
		walk = func(req *Request) {
			if req == nil || req.finished {
				return
			}
			switch req.kind {
			case reqRecv:
				if s.attach(req, owner) {
					attached = true
				}
			case reqAggregate:
				for _, ch := range req.children {
					walk(ch)
				}
			}
		}
		walk(r)
		if !attached {
			s.readyNow = append(s.readyNow, owner)
		}
	default:
		// Sends complete at post time.
		s.readyNow = append(s.readyNow, owner)
	}
}

// attach wires one receive's completion to the set and reports whether a
// notification is pending (false: the receive is already matched and the
// owner was queued as immediately ready).
func (s *WaitSet) attach(r *Request, owner int) bool {
	if s.outstanding >= cap(s.done) {
		panic(fmt.Sprintf("mpi: WaitSet capacity %d exceeded", cap(s.done)))
	}
	pos := len(s.pends)
	if !r.c.rs.box.attachNotify(r.pending, s.done, pos) {
		s.readyNow = append(s.readyNow, owner)
		return false
	}
	s.pends = append(s.pends, r.pending)
	s.pendOwner = append(s.pendOwner, owner)
	s.pendSrc = append(s.pendSrc, r.pending.srcWorld)
	s.outstanding++
	return true
}

// take consumes one notification.
func (s *WaitSet) take(pos int) {
	s.pends[pos] = nil
	s.outstanding--
	s.scratch = append(s.scratch, s.pendOwner[pos])
}

// drain collects every queued notification without blocking.
func (s *WaitSet) drain() {
	for {
		select {
		case pos := <-s.done:
			s.take(pos)
		default:
			return
		}
	}
}

// Waitsome blocks until at least one added request has completed and
// returns the owner tokens of everything complete so far, like a
// completion-channel MPI_Waitsome — no polling, no backoff. A (nil, nil)
// return means nothing is outstanding. The block registers with the
// wait-for-graph deadlock monitor under kind "waitsome" and honors the
// run's abort channel and fallback timer exactly like a blocking receive.
// The returned slice is reused by the next call.
func (s *WaitSet) Waitsome() ([]int, error) {
	s.scratch = s.scratch[:0]
	if len(s.readyNow) > 0 {
		s.scratch = append(s.scratch, s.readyNow...)
		s.readyNow = s.readyNow[:0]
	}
	s.drain()
	if len(s.scratch) > 0 {
		return s.scratch, nil
	}
	if s.outstanding == 0 {
		return nil, nil
	}
	w := s.c.w
	rs := s.c.rs
	if met := rs.met; met != nil {
		// As in awaitMessage: count and time only waits that actually block.
		met.waitBlocks.Inc()
		t0 := time.Now()
		defer func() { met.waitBlockedNs.Add(time.Since(t0).Nanoseconds()) }()
	}
	if w.monitoring {
		// Fresh slices per registration: the deadlock monitor reads the
		// blockedOp snapshot concurrently, possibly after this rank has
		// moved on to the next Waitsome, so the backing arrays must not be
		// reused.
		watchPends := make([]*pendingRecv, 0, s.outstanding)
		watchSrcs := make([]int, 0, s.outstanding)
		for i, p := range s.pends {
			if p != nil {
				watchPends = append(watchPends, p)
				watchSrcs = append(watchSrcs, s.pendSrc[i])
			}
		}
		w.setBlocked(rs.rank, &blockedOp{
			kind:      "waitsome",
			since:     time.Now(),
			pendings:  watchPends,
			srcWorlds: watchSrcs,
		})
		defer w.clearBlocked(rs.rank)
	}
	timeoutCh := rs.armTimeout()
	defer rs.disarmTimeout()
	select {
	case pos := <-s.done:
		s.take(pos)
		s.drain()
		return s.scratch, nil
	case <-w.abort:
		// Prefer completions that raced with the abort (typed poisons carry
		// the informative error) over the generic cascade error.
		s.drain()
		if len(s.scratch) > 0 {
			return s.scratch, nil
		}
		if cause := w.abortCause(); cause != nil {
			// As in awaitMessage: carry the recorded primary failure so the
			// cascade error names why the run died.
			return nil, fmt.Errorf("mpi: rank %d: %w in waitsome (%d receive(s) pending): %w", s.c.rank, ErrAborted, s.outstanding, cause)
		}
		return nil, fmt.Errorf("mpi: rank %d: %w in waitsome (%d receive(s) pending)", s.c.rank, ErrAborted, s.outstanding)
	case <-timeoutCh:
		s.drain()
		if len(s.scratch) > 0 {
			return s.scratch, nil
		}
		err := fmt.Errorf("mpi: rank %d: deadlock suspected: waitsome over %d receive(s) blocked for %v",
			s.c.rank, s.outstanding, w.timeout)
		w.fail(err)
		return nil, err
	}
}

// Outstanding returns the number of attached receives whose completion has
// not yet been returned by Waitsome.
func (s *WaitSet) Outstanding() int { return s.outstanding }
