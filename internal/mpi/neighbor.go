package mpi

import (
	"fmt"

	"cartcc/internal/datatype"
)

// Neighborhood collectives on distributed-graph communicators, the MPI
// baselines of the paper's evaluation (MPI_Neighbor_alltoall(v/w),
// MPI_Neighbor_allgather(v), and their nonblocking Ineighbor_ forms).
// All of them deliver directly: one message per graph edge, posted
// nonblockingly — which is what mainstream MPI implementations do and
// exactly the behaviour the message-combining algorithms compete against.

const (
	tagNeighborAlltoall  = 8
	tagNeighborAllgather = 9
)

// IneighborAlltoall starts a nonblocking sparse alltoall: block i of send
// goes to target i, block i of recv comes from source i. len(send) must be
// outdegree·blk and len(recv) indegree·blk for a common block size blk.
func IneighborAlltoall[T any](c *Comm, send, recv []T) (*Request, error) {
	g, err := c.graphTopology()
	if err != nil {
		return nil, err
	}
	blk, err := neighborBlock(len(send), len(recv), len(g.Targets), len(g.Sources), "IneighborAlltoall")
	if err != nil {
		return nil, err
	}
	cc := c.coll()
	reqs := make([]*Request, 0, len(g.Sources)+len(g.Targets))
	for i, src := range g.Sources {
		req, err := Irecv(cc, recv, datatype.Contiguous(i*blk, blk), src, tagNeighborAlltoall)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, req)
	}
	for i, dst := range g.Targets {
		req, err := Isend(cc, send, datatype.Contiguous(i*blk, blk), dst, tagNeighborAlltoall)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, req)
	}
	return aggregate(c, reqs), nil
}

// NeighborAlltoall is the blocking form of IneighborAlltoall.
func NeighborAlltoall[T any](c *Comm, send, recv []T) error {
	req, err := IneighborAlltoall(c, send, recv)
	if err != nil {
		return err
	}
	_, err = req.Wait()
	return err
}

// IneighborAlltoallv starts a nonblocking irregular sparse alltoall with
// per-neighbor counts and displacements (in elements), like
// MPI_Ineighbor_alltoallv.
func IneighborAlltoallv[T any](c *Comm, send []T, sendCounts, sendDispls []int,
	recv []T, recvCounts, recvDispls []int) (*Request, error) {
	g, err := c.graphTopology()
	if err != nil {
		return nil, err
	}
	if len(sendCounts) != len(g.Targets) || len(sendDispls) != len(g.Targets) {
		return nil, fmt.Errorf("mpi: IneighborAlltoallv: %d send counts / %d displs for %d targets",
			len(sendCounts), len(sendDispls), len(g.Targets))
	}
	if len(recvCounts) != len(g.Sources) || len(recvDispls) != len(g.Sources) {
		return nil, fmt.Errorf("mpi: IneighborAlltoallv: %d recv counts / %d displs for %d sources",
			len(recvCounts), len(recvDispls), len(g.Sources))
	}
	cc := c.coll()
	reqs := make([]*Request, 0, len(g.Sources)+len(g.Targets))
	for i, src := range g.Sources {
		req, err := Irecv(cc, recv, datatype.Contiguous(recvDispls[i], recvCounts[i]), src, tagNeighborAlltoall)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, req)
	}
	for i, dst := range g.Targets {
		req, err := Isend(cc, send, datatype.Contiguous(sendDispls[i], sendCounts[i]), dst, tagNeighborAlltoall)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, req)
	}
	return aggregate(c, reqs), nil
}

// NeighborAlltoallv is the blocking form of IneighborAlltoallv.
func NeighborAlltoallv[T any](c *Comm, send []T, sendCounts, sendDispls []int,
	recv []T, recvCounts, recvDispls []int) error {
	req, err := IneighborAlltoallv(c, send, sendCounts, sendDispls, recv, recvCounts, recvDispls)
	if err != nil {
		return err
	}
	_, err = req.Wait()
	return err
}

// IneighborAlltoallw starts a nonblocking sparse alltoall with a fully
// general layout per neighbor block, like MPI_Ineighbor_alltoallw: the i-th
// send layout selects the data for target i directly in send, the i-th
// receive layout places the block from source i directly in recv — no
// intermediate buffers (zero-copy in the paper's sense).
func IneighborAlltoallw[T any](c *Comm, send []T, sendLayouts []datatype.Layout,
	recv []T, recvLayouts []datatype.Layout) (*Request, error) {
	g, err := c.graphTopology()
	if err != nil {
		return nil, err
	}
	if len(sendLayouts) != len(g.Targets) {
		return nil, fmt.Errorf("mpi: IneighborAlltoallw: %d send layouts for %d targets", len(sendLayouts), len(g.Targets))
	}
	if len(recvLayouts) != len(g.Sources) {
		return nil, fmt.Errorf("mpi: IneighborAlltoallw: %d recv layouts for %d sources", len(recvLayouts), len(g.Sources))
	}
	cc := c.coll()
	reqs := make([]*Request, 0, len(g.Sources)+len(g.Targets))
	for i, src := range g.Sources {
		req, err := Irecv(cc, recv, recvLayouts[i], src, tagNeighborAlltoall)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, req)
	}
	for i, dst := range g.Targets {
		req, err := Isend(cc, send, sendLayouts[i], dst, tagNeighborAlltoall)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, req)
	}
	return aggregate(c, reqs), nil
}

// NeighborAlltoallw is the blocking form of IneighborAlltoallw.
func NeighborAlltoallw[T any](c *Comm, send []T, sendLayouts []datatype.Layout,
	recv []T, recvLayouts []datatype.Layout) error {
	req, err := IneighborAlltoallw(c, send, sendLayouts, recv, recvLayouts)
	if err != nil {
		return err
	}
	_, err = req.Wait()
	return err
}

// IneighborAllgather starts a nonblocking sparse allgather: the whole send
// buffer goes to every target; block i of recv comes from source i.
func IneighborAllgather[T any](c *Comm, send, recv []T) (*Request, error) {
	g, err := c.graphTopology()
	if err != nil {
		return nil, err
	}
	blk := len(send)
	if len(recv) != blk*len(g.Sources) {
		return nil, fmt.Errorf("mpi: IneighborAllgather: recv length %d, want %d (indegree %d × block %d)",
			len(recv), blk*len(g.Sources), len(g.Sources), blk)
	}
	cc := c.coll()
	reqs := make([]*Request, 0, len(g.Sources)+len(g.Targets))
	for i, src := range g.Sources {
		req, err := Irecv(cc, recv, datatype.Contiguous(i*blk, blk), src, tagNeighborAllgather)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, req)
	}
	whole := datatype.Contiguous(0, blk)
	for _, dst := range g.Targets {
		req, err := Isend(cc, send, whole, dst, tagNeighborAllgather)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, req)
	}
	return aggregate(c, reqs), nil
}

// NeighborAllgather is the blocking form of IneighborAllgather.
func NeighborAllgather[T any](c *Comm, send, recv []T) error {
	req, err := IneighborAllgather(c, send, recv)
	if err != nil {
		return err
	}
	_, err = req.Wait()
	return err
}

// IneighborAllgatherv starts a nonblocking irregular sparse allgather with
// per-source receive counts and displacements.
func IneighborAllgatherv[T any](c *Comm, send []T, recv []T, recvCounts, recvDispls []int) (*Request, error) {
	g, err := c.graphTopology()
	if err != nil {
		return nil, err
	}
	if len(recvCounts) != len(g.Sources) || len(recvDispls) != len(g.Sources) {
		return nil, fmt.Errorf("mpi: IneighborAllgatherv: %d counts / %d displs for %d sources",
			len(recvCounts), len(recvDispls), len(g.Sources))
	}
	cc := c.coll()
	reqs := make([]*Request, 0, len(g.Sources)+len(g.Targets))
	for i, src := range g.Sources {
		req, err := Irecv(cc, recv, datatype.Contiguous(recvDispls[i], recvCounts[i]), src, tagNeighborAllgather)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, req)
	}
	whole := datatype.Contiguous(0, len(send))
	for _, dst := range g.Targets {
		req, err := Isend(cc, send, whole, dst, tagNeighborAllgather)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, req)
	}
	return aggregate(c, reqs), nil
}

// NeighborAllgatherv is the blocking form of IneighborAllgatherv.
func NeighborAllgatherv[T any](c *Comm, send []T, recv []T, recvCounts, recvDispls []int) error {
	req, err := IneighborAllgatherv(c, send, recv, recvCounts, recvDispls)
	if err != nil {
		return err
	}
	_, err = req.Wait()
	return err
}

// neighborBlock derives and validates the common block size of the regular
// neighborhood operations.
func neighborBlock(sendLen, recvLen, outdeg, indeg int, op string) (int, error) {
	switch {
	case outdeg == 0 && indeg == 0:
		if sendLen != 0 || recvLen != 0 {
			return 0, fmt.Errorf("mpi: %s: non-empty buffers with empty neighborhood", op)
		}
		return 0, nil
	case outdeg == 0:
		if recvLen%indeg != 0 {
			return 0, fmt.Errorf("mpi: %s: recv length %d not divisible by indegree %d", op, recvLen, indeg)
		}
		return recvLen / indeg, nil
	case indeg == 0:
		if sendLen%outdeg != 0 {
			return 0, fmt.Errorf("mpi: %s: send length %d not divisible by outdegree %d", op, sendLen, outdeg)
		}
		return sendLen / outdeg, nil
	default:
		if sendLen%outdeg != 0 {
			return 0, fmt.Errorf("mpi: %s: send length %d not divisible by outdegree %d", op, sendLen, outdeg)
		}
		blk := sendLen / outdeg
		if recvLen != blk*indeg {
			return 0, fmt.Errorf("mpi: %s: recv length %d, want %d (indegree %d × block %d)", op, recvLen, blk*indeg, indeg, blk)
		}
		return blk, nil
	}
}
