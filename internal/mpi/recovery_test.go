package mpi

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"cartcc/internal/metrics"
)

// countingMsg builds a hand-delivered message whose release hook counts its
// invocations — the probe for the pooled-wire ownership protocol on the
// recovery paths: however a message leaves the mailbox (consumed, drained,
// discarded as stale or duplicate), the wire must go back exactly once.
func countingMsg(ctx, epoch int64, src, tag int, released *int) *message {
	return &message{
		ctx: ctx, epoch: epoch, src: src, tag: tag,
		payload: []int{1}, elems: 1, bytes: 8,
		release: func(*World, *message) { *released++ },
	}
}

// TestDrainBelowEpochReleasesOnce: drainBelowEpoch must return every stale
// unexpected message's pooled wire exactly once, leave newer-epoch messages
// queued, and leave fault-tolerance shadow-plane messages untouched —
// consensus traffic is epochless (an abandoned recovery generation retries
// Agree/Shrink on the original communicator after the floor has risen).
func TestDrainBelowEpochReleasesOnce(t *testing.T) {
	box := &mailbox{}
	var oldA, oldB, fresh, ft int
	box.deliver(countingMsg(1, 0, 0, 7, &oldA))
	box.deliver(countingMsg(1, 0, 2, 9, &oldB))
	box.deliver(countingMsg(1, 1, 0, 7, &fresh))
	box.deliver(countingMsg(ftCtxBit|1, 0, 0, agreeTag, &ft))

	if n := box.drainBelowEpoch(1); n != 2 {
		t.Fatalf("drained %d messages, want 2", n)
	}
	if oldA != 1 || oldB != 1 {
		t.Fatalf("stale releases ran %d and %d times; want exactly 1 each", oldA, oldB)
	}
	if fresh != 0 || ft != 0 {
		t.Fatalf("surviving messages released (fresh=%d ft=%d); want 0", fresh, ft)
	}
	if found, _, _, _ := box.probe(1, 1, 0, 7); !found {
		t.Fatal("new-epoch message did not survive the drain")
	}
	if found, _, _, _ := box.probe(ftCtxBit|1, 0, 0, agreeTag); !found {
		t.Fatal("ft-plane message did not survive the drain")
	}
	if found, _, _, _ := box.probe(1, 0, 0, 7); found {
		t.Fatal("stale message still visible after the drain")
	}
	// A second drain to the same epoch is a no-op: nothing double-released.
	if n := box.drainBelowEpoch(1); n != 0 {
		t.Fatalf("re-drain removed %d messages, want 0", n)
	}
	if oldA != 1 || oldB != 1 {
		t.Fatalf("re-drain re-released (oldA=%d oldB=%d); want exactly 1 each", oldA, oldB)
	}
}

// TestEpochFloorArrivalDiscardReleasesOnce: a message that arrives already
// below the floor (a straggler racing the drain) is discarded on arrival
// with its wire released exactly once — unless it rides the ft shadow
// plane, which is exempt from the floor.
func TestEpochFloorArrivalDiscardReleasesOnce(t *testing.T) {
	box := &mailbox{}
	box.drainBelowEpoch(2)

	var stale, ft int
	box.deliver(countingMsg(1, 1, 0, 7, &stale))
	if stale != 1 {
		t.Fatalf("stale arrival released %d times; want exactly 1", stale)
	}
	if found, _, _, _ := box.probe(1, 1, 0, 7); found {
		t.Fatal("stale arrival queued despite the epoch floor")
	}

	box.deliver(countingMsg(ftCtxBit|1, 0, 0, shrinkTag, &ft))
	if ft != 0 {
		t.Fatalf("ft-plane arrival released %d times before consumption; want 0", ft)
	}
	if found, _, _, _ := box.probe(ftCtxBit|1, 0, 0, shrinkTag); !found {
		t.Fatal("ft-plane arrival below the floor was not queued")
	}
}

// TestDuplicateDropReleasesOnce: the per-sender sequence dedup discards a
// re-delivered message, releasing the duplicate's wire exactly once and
// never touching the original's; unsequenced messages (sseq 0: poisons,
// hand-built traffic) are exempt.
func TestDuplicateDropReleasesOnce(t *testing.T) {
	box := &mailbox{}
	var orig, dup int
	m1 := countingMsg(1, 0, 0, 7, &orig)
	m1.srcWorld, m1.sseq = 0, 1
	box.deliver(m1)

	got := make(chan *message, 1)
	box.post(&pendingRecv{ctx: 1, src: 0, tag: 7, srcWorld: 0, ready: got})
	if m := <-got; m.fail != nil {
		t.Fatalf("original message failed: %v", m.fail)
	}
	if orig != 1 {
		t.Fatalf("original released %d times; want exactly 1", orig)
	}

	m2 := countingMsg(1, 0, 0, 7, &dup)
	m2.srcWorld, m2.sseq = 0, 1 // same sequence number: a duplicate
	box.deliver(m2)
	if dup != 1 {
		t.Fatalf("duplicate released %d times; want exactly 1", dup)
	}
	if found, _, _, _ := box.probe(1, 0, 0, 7); found {
		t.Fatal("suppressed duplicate is visible in the mailbox")
	}
	if orig != 1 {
		t.Fatalf("original re-released by the duplicate path (%d times)", orig)
	}

	// sseq 0 bypasses dedup: two identical unsequenced messages both queue.
	var a, b int
	box.deliver(countingMsg(1, 0, 1, 8, &a))
	box.deliver(countingMsg(1, 0, 1, 8, &b))
	if found, _, _, elems := box.probe(1, 0, 1, 8); !found || elems != 1 {
		t.Fatal("unsequenced message missing")
	}
	if a != 0 || b != 0 {
		t.Fatalf("unsequenced messages released early (a=%d b=%d)", a, b)
	}
}

// TestDrainPoisonsStaleReceives: a receive posted under a pre-recovery
// epoch can never match again once the floor rises; the drain fails it with
// ErrCancelled instead of leaving it for the watchdog. Receives on the ft
// shadow plane stay posted — recovery retries depend on them.
func TestDrainPoisonsStaleReceives(t *testing.T) {
	box := &mailbox{}
	stale := &pendingRecv{ctx: 1, epoch: 0, src: 0, tag: 7, srcWorld: 0, ready: make(chan *message, 1)}
	ft := &pendingRecv{ctx: ftCtxBit | 1, epoch: 0, src: 0, tag: agreeTag, srcWorld: 0, ready: make(chan *message, 1)}
	box.post(stale)
	box.post(ft)

	box.drainBelowEpoch(1)
	select {
	case m := <-stale.ready:
		if m.fail == nil || !errors.Is(m.fail, ErrCancelled) {
			t.Fatalf("stale receive failed with %v, want ErrCancelled", m.fail)
		}
		if m.payload != nil || m.release != nil {
			t.Fatal("poison message carries a payload or release hook")
		}
	default:
		t.Fatal("stale-epoch receive was not poisoned by the drain")
	}
	select {
	case m := <-ft.ready:
		t.Fatalf("ft-plane receive was poisoned: %v", m.fail)
	default:
	}
}

// TestMsgDropRetransmitDelivers: a dropped message is invisible to the
// sender (buffered-send semantics) and simply absent at the receiver, so a
// retransmission matches the receive; the drop is counted.
func TestMsgDropRetransmitDelivers(t *testing.T) {
	reg := metrics.NewRegistry(2)
	err := Run(Config{
		Procs:   2,
		Timeout: 20 * time.Second,
		Metrics: reg,
		Faults:  &FaultPlan{Drops: []MsgDrop{{From: 0, To: 1, Nth: 1}}},
	}, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			if err := SendSlice(c, []int{111}, 1, 5); err != nil {
				return fmt.Errorf("dropped send surfaced an error: %w", err)
			}
			return SendSlice(c, []int{222}, 1, 5)
		case 1:
			got := make([]int, 1)
			if _, err := RecvSlice(c, got, 0, 5); err != nil {
				return err
			}
			if got[0] != 222 {
				return fmt.Errorf("received %d, want 222 (the retransmission)", got[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := reg.Merged().Value("mpi.msg.dropped"); n != 1 {
		t.Errorf("mpi.msg.dropped = %d, want 1", n)
	}
}

// TestMsgDropDependedOnDeadlocks: without a retransmission layer, a receive
// that depends on a dropped message can never complete — the watchdog must
// surface a typed deadlock, never a silent hang.
func TestMsgDropDependedOnDeadlocks(t *testing.T) {
	err := Run(Config{
		Procs:   2,
		Timeout: 30 * time.Second,
		Faults:  &FaultPlan{Drops: []MsgDrop{{From: 0, To: 1, Nth: 1}}},
	}, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			return SendSlice(c, []int{1}, 1, 5)
		case 1:
			got := make([]int, 1)
			_, err := RecvSlice(c, got, 0, 5)
			return err
		}
		return nil
	})
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("run error = %v, want DeadlockError", err)
	}
}

// TestMsgDupSuppressedByDedup: an injected duplicate delivery is dropped by
// the per-sender sequence counter — later receives on the same envelope are
// not satisfied by the stale copy — and both injection and suppression are
// counted.
func TestMsgDupSuppressedByDedup(t *testing.T) {
	reg := metrics.NewRegistry(2)
	err := Run(Config{
		Procs:   2,
		Timeout: 20 * time.Second,
		Metrics: reg,
		Faults:  &FaultPlan{Dups: []MsgDup{{From: 0, To: 1, Nth: 1}}},
	}, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			if err := SendSlice(c, []int{41}, 1, 5); err != nil {
				return err
			}
			return SendSlice(c, []int{43}, 1, 5)
		case 1:
			got := make([]int, 1)
			if _, err := RecvSlice(c, got, 0, 5); err != nil {
				return err
			}
			if got[0] != 41 {
				return fmt.Errorf("first receive got %d, want 41", got[0])
			}
			// The duplicate of the first message must not satisfy this
			// receive; the second (distinct) message must.
			if _, err := RecvSlice(c, got, 0, 5); err != nil {
				return err
			}
			if got[0] != 43 {
				return fmt.Errorf("second receive got %d, want 43 (duplicate leaked)", got[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m := reg.Merged()
	if n := m.Value("mpi.msg.duplicated"); n != 1 {
		t.Errorf("mpi.msg.duplicated = %d, want 1", n)
	}
	if n := m.Value("mpi.msg.dup_dropped"); n != 1 {
		t.Errorf("mpi.msg.dup_dropped = %d, want 1", n)
	}
}

// TestRecoverShrinkAfterCrash is the mpi-level recovery contract: survivors
// of an injected crash revoke, run the consensus, and come back with a
// working communicator on a new epoch that excludes the dead rank — and
// collectives on it produce correct data.
func TestRecoverShrinkAfterCrash(t *testing.T) {
	reg := metrics.NewRegistry(4)
	var infos sync.Map
	err := Run(Config{
		Procs:   4,
		Timeout: 30 * time.Second,
		Metrics: reg,
		Faults:  &FaultPlan{Crashes: []Crash{{Rank: 2, AtOp: 3}}},
	}, func(c *Comm) error {
		p := c.Size()
		next, prev := (c.Rank()+1)%p, (c.Rank()-1+p)%p
		var ringErr error
		for i := 0; i < 10; i++ {
			out, in := []int{c.Rank()}, make([]int, 1)
			if _, err := Sendrecv(c, out, contiguousN(1), next, 0, in, contiguousN(1), prev, 0); err != nil {
				ringErr = err
				break
			}
		}
		if ringErr == nil {
			return fmt.Errorf("rank %d never observed the crash", c.Rank())
		}
		c.Revoke()
		nc, info, err := c.RecoverShrink()
		if err != nil {
			return fmt.Errorf("rank %d: RecoverShrink: %w", c.Rank(), err)
		}
		infos.Store(c.Rank(), info)
		if nc.Size() != 3 {
			return fmt.Errorf("shrunk size = %d, want 3", nc.Size())
		}
		sum := []int{c.Rank()}
		if err := Allreduce(nc, sum, sum, SumOp[int]); err != nil {
			return fmt.Errorf("allreduce on shrunk comm: %w", err)
		}
		if sum[0] != 0+1+3 {
			return fmt.Errorf("allreduce on shrunk comm = %d, want 4", sum[0])
		}
		return nil
	})
	// The injected crash is the run's only primary error.
	if !IsRankFailed(err) {
		t.Fatalf("run error = %v, want RankFailedError", err)
	}
	for _, r := range []int{0, 1, 3} {
		v, ok := infos.Load(r)
		if !ok {
			t.Fatalf("rank %d did not complete recovery", r)
		}
		info := v.(RecoveryInfo)
		if info.Epoch < 1 {
			t.Errorf("rank %d recovered into epoch %d, want >= 1", r, info.Epoch)
		}
		if len(info.Dead) != 1 || info.Dead[0] != 2 {
			t.Errorf("rank %d agreed dead set = %v, want [2]", r, info.Dead)
		}
	}
	if n := reg.Merged().Value("mpi.recovery.shrinks"); n < 3 {
		t.Errorf("mpi.recovery.shrinks = %d, want >= 3 (one per survivor)", n)
	}
}
