package mpi

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// Regression: an Ineighbor_* aggregate that is never waited on used to pin
// its unmatched pending receives in the mailbox forever — Cancel was a
// no-op on aggregates — so a later send with the same (source, tag) would
// scatter into the abandoned buffers. Cancel must now reach into the
// aggregate, and Free must drain the remainder deterministically.
func TestAbandonedNeighborCollectiveDoesNotLeak(t *testing.T) {
	const (
		syncGo   = 6 // rank 0 -> 1: phase 1 done, send your block
		syncSent = 7 // rank 1 -> 0: block is on the wire
	)
	run(t, 2, func(c *Comm) error {
		// Directed edge 1 -> 0: rank 0 has a source that never sends in
		// phase 1 (rank 1 does not enter the collective).
		var sources, targets []int
		if c.Rank() == 0 {
			sources = []int{1}
		} else {
			targets = []int{0}
		}
		g, err := DistGraphCreateAdjacent(c, sources, Unweighted, targets, Unweighted, false)
		if err != nil {
			return err
		}
		if c.Rank() == 1 {
			if _, err := RecvSlice(c, make([]int, 1), 0, syncGo); err != nil {
				return err
			}
			r, err := IneighborAllgather(g, []int{10, 11, 12}, []int{})
			if err != nil {
				return err
			}
			if _, err := r.Wait(); err != nil {
				return err
			}
			return SendSlice(c, []int{1}, 0, syncSent)
		}

		// Phase 1: the peer never sends; abandon the collective via Cancel.
		recv := []int{-1, -1, -1}
		r, err := IneighborAllgather(g, []int{0, 0, 0}, recv)
		if err != nil {
			return err
		}
		if !r.Cancel() {
			return fmt.Errorf("Cancel of a fully-unmatched aggregate reported false")
		}
		if _, err := r.Wait(); !errors.Is(err, ErrCancelled) {
			return fmt.Errorf("cancelled aggregate Wait returned %v, want ErrCancelled", err)
		}
		if recvs, _ := c.rs.box.pendingPosted(); recvs != 0 {
			return fmt.Errorf("phase 1: %d pending receive(s) leaked after Cancel", recvs)
		}
		if err := SendSlice(c, []int{1}, 1, syncGo); err != nil {
			return err
		}

		// Phase 2: the block has already arrived (per-sender delivery order
		// puts it in the mailbox before the sync message), so the new
		// aggregate's receive matches at post time. Cancel must refuse —
		// the scatter already ran — and Free must drain without leaking.
		if _, err := RecvSlice(c, make([]int, 1), 1, syncSent); err != nil {
			return err
		}
		recv2 := []int{-1, -1, -1}
		r2, err := IneighborAllgather(g, []int{0, 0, 0}, recv2)
		if err != nil {
			return err
		}
		if r2.Cancel() {
			return fmt.Errorf("Cancel of an aggregate with a matched message reported true")
		}
		r2.Free()
		if want := []int{10, 11, 12}; !reflect.DeepEqual(recv2, want) {
			return fmt.Errorf("freed aggregate's matched block: got %v want %v", recv2, want)
		}
		recvs, unexpected := c.rs.box.pendingPosted()
		if recvs != 0 || unexpected != 0 {
			return fmt.Errorf("phase 2: %d pending receive(s), %d unexpected message(s) leaked after Free", recvs, unexpected)
		}
		// A freed request is finished: Free and Wait after Free are no-ops.
		r2.Free()
		if _, err := r2.Wait(); err != nil {
			return fmt.Errorf("Wait after successful Free returned %v", err)
		}
		return nil
	})
}
