package mpi

import (
	"fmt"
	"time"

	"cartcc/internal/trace"
)

// Status describes a completed receive, mirroring MPI_Status.
type Status struct {
	// Source is the communicator rank the message came from.
	Source int
	// Tag is the message tag.
	Tag int
	// Count is the number of elements received.
	Count int
}

type reqKind uint8

const (
	reqSend reqKind = iota
	reqRecv
	reqAggregate
)

// Request is a handle for a nonblocking operation. Send requests complete
// at posting time (the runtime buffers eagerly); receive requests complete
// when a matching message has arrived — the scatter into the user buffer
// runs at match time (mailbox.finish) and Wait surfaces its result;
// aggregate requests complete when all children have.
type Request struct {
	kind     reqKind
	c        *Comm
	pending  *pendingRecv
	children []*Request
	finished bool
	status   Status
	err      error
}

// Wait blocks until the operation completes and returns its status. Waiting
// twice on the same request returns the recorded result. If the run was
// aborted by another rank's failure, or the deadlock watchdog fires, Wait
// returns an error.
func (r *Request) Wait() (Status, error) {
	if r == nil {
		return Status{}, fmt.Errorf("mpi: Wait on nil request")
	}
	if r.finished {
		return r.status, r.err
	}
	switch r.kind {
	case reqSend:
		// Sends are buffered: complete at post time.
	case reqRecv:
		m, err := r.awaitMessage()
		if err != nil {
			r.err = err
			break
		}
		rs := r.c.rs
		if met := rs.met; met != nil {
			met.recvsDone.Inc()
			met.recvBytes.Add(int64(m.bytes))
		}
		if fl := r.c.w.flight; fl != nil {
			fl.Record(rs.rank, trace.FlightRecvDone, r.c.worldRank(m.src), int64(m.tag), int64(m.bytes), fl.Now()-r.pending.postNs)
		}
		if model := r.c.w.model; model != nil {
			start := rs.clock
			if m.arrive > rs.clock {
				rs.clock = m.arrive
			}
			rs.clock += model.RecvOverhead
			if rec := r.c.w.rec; rec != nil {
				rec.Add(trace.Event{
					Rank: rs.rank, Kind: trace.KindRecv, Peer: r.c.worldRank(m.src),
					Bytes: m.bytes, Tag: m.tag, Start: start, End: rs.clock,
				})
			}
		}
		r.status = Status{Source: m.src, Tag: m.tag, Count: m.elems}
		if r.pending.deferConsume {
			// Deferred scatter: unpack here in the receiver's goroutine,
			// then return the pooled wire; finish already detached any
			// zero-copy payload.
			if r.pending.consume != nil {
				r.err = r.pending.consume(m)
			}
			if rel := m.release; rel != nil {
				m.release = nil
				rel(r.c.w, m)
			}
			m.payload = nil
		} else {
			r.err = m.consumeErr
		}
	case reqAggregate:
		for _, ch := range r.children {
			if _, err := ch.Wait(); err != nil && r.err == nil {
				r.err = err
			}
		}
	}
	r.finished = true
	return r.status, r.err
}

// awaitMessage blocks on the pending receive with abort and fallback-timer
// handling. The wait is registered with the deadlock monitor (watchdog.go)
// so a run that can no longer progress is diagnosed in milliseconds.
func (r *Request) awaitMessage() (*message, error) {
	w := r.c.w
	rs := r.c.rs
	// Fast path: the message (or poison) is already handed over — no
	// watchdog registration, no timer.
	select {
	case m := <-r.pending.ready:
		if m.fail != nil {
			return nil, m.fail
		}
		return m, nil
	default:
	}
	if r.pending.delivered.Load() {
		// A matcher has claimed this receive and is between setting
		// delivered and the ready handoff: the handoff is imminent
		// (straight-line code in the matcher), so block on it without
		// watchdog registration or the rank's shared fallback timer. This
		// is the path a progress engine takes after a completion
		// notification — the notification is posted before the ready send —
		// and it must not touch rank-goroutine-owned wait state, which may
		// be in use concurrently. (A successful explicit Cancel also sets
		// delivered, but it finishes the request first, so Wait never
		// reaches here for it.)
		m := <-r.pending.ready
		if m.fail != nil {
			return nil, m.fail
		}
		return m, nil
	}
	if met := rs.met; met != nil {
		// Past the fast path: this wait will block. The closure allocates,
		// but only on the instrumented slow path — the metrics-off and
		// already-completed paths stay allocation-free.
		met.waitBlocks.Inc()
		t0 := time.Now()
		defer func() { met.waitBlockedNs.Add(time.Since(t0).Nanoseconds()) }()
	}
	if w.monitoring {
		w.setBlocked(rs.rank, &blockedOp{
			kind:      "recv",
			src:       r.pending.src,
			tag:       r.pending.tag,
			ctx:       r.pending.ctx,
			since:     time.Now(),
			pendings:  []*pendingRecv{r.pending},
			srcWorlds: []int{r.pending.srcWorld},
		})
		defer w.clearBlocked(rs.rank)
	}
	timeoutCh := rs.armTimeout()
	defer rs.disarmTimeout()
	select {
	case m := <-r.pending.ready:
		if m.fail != nil {
			return nil, m.fail
		}
		return m, nil
	case <-w.abort:
		// Withdraw the receive before giving up: if cancel fails, a match
		// is complete or in flight — a sender may be scattering into our
		// buffer and a pooled wire is bound to this receive — so drain the
		// imminent handoff instead of abandoning it. This also prefers a
		// message (or typed poison) that raced with the abort over the
		// generic cascade error.
		removed, n, idx := rs.box.cancel(r.pending)
		if !removed {
			m := <-r.pending.ready
			if m.fail != nil {
				return nil, m.fail
			}
			return m, nil
		}
		if n != nil {
			n.post(idx)
		}
		if cause := w.abortCause(); cause != nil {
			// Carry the primary failure: a receive released by the abort
			// reports why the run died (e.g. a RankFailedError a peer can
			// type-switch on), still marked ErrAborted so error aggregation
			// files it as cascade, never masking the primary.
			return nil, fmt.Errorf("mpi: rank %d: %w while receiving (src=%d tag=%d): %w", r.c.rank, ErrAborted, r.pending.src, r.pending.tag, cause)
		}
		return nil, fmt.Errorf("mpi: rank %d: %w while receiving (src=%d tag=%d)", r.c.rank, ErrAborted, r.pending.src, r.pending.tag)
	case <-timeoutCh:
		removed, n, idx := rs.box.cancel(r.pending)
		if !removed {
			// The message arrived as the timer fired: deliver it rather
			// than declaring a false deadlock.
			m := <-r.pending.ready
			if m.fail != nil {
				return nil, m.fail
			}
			return m, nil
		}
		if n != nil {
			n.post(idx)
		}
		err := fmt.Errorf("mpi: rank %d: deadlock suspected: receive (src=%d tag=%d ctx=%d) blocked for %v",
			r.c.rank, r.pending.src, r.pending.tag, r.pending.ctx, w.timeout)
		w.fail(err)
		return nil, err
	}
}

// UndeferConsume re-enables the match-time scatter on a deferred receive
// request and reports whether it took effect: true means a future match
// will consume the payload in the matcher's goroutine (the single-copy
// fast path); false means a message has already been matched and the
// scatter stays at Wait time. No-op (false) for non-receive requests.
// Schedule executors call this when the buffer hazards that forced the
// deferral have cleared while the receive is still in flight.
func (r *Request) UndeferConsume() bool {
	if r == nil || r.finished || r.kind != reqRecv || !r.pending.deferConsume {
		return false
	}
	return r.c.rs.box.undefer(r.pending)
}

// Cancel removes a still-unmatched receive request from its rank's
// mailbox, completing it with ErrCancelled, and reports whether it was
// cancelled. A receive whose message has already been handed over is not
// cancellable — complete it with Wait (or Free, which drains it). An
// aggregate (the handle the Ineighbor_* collectives return) cancels every
// unfinished child: sends complete trivially, receives are cancelled, and
// the aggregate reports cancelled only if every child ended finished — a
// child whose message already arrived keeps the aggregate alive and must
// still be waited or freed. Mirrors MPI_Cancel; schedule executors use it
// to abandon a failed phase without leaking matchable receives.
func (r *Request) Cancel() bool {
	if r == nil || r.finished {
		return false
	}
	switch r.kind {
	case reqRecv:
		removed, n, idx := r.c.rs.box.cancel(r.pending)
		if !removed {
			return false
		}
		r.finished = true
		r.err = fmt.Errorf("mpi: %w (src=%d tag=%d)", ErrCancelled, r.pending.src, r.pending.tag)
		// Post to any attached WaitSet only now: the sink post publishes the
		// finished/err writes above to the set's owner, so a Cancel from a
		// helper goroutine cannot race the owner's Wait after Waitsome wakes.
		if n != nil {
			n.post(idx)
		}
		return true
	case reqAggregate:
		all := true
		for _, ch := range r.children {
			if ch == nil || ch.finished {
				continue
			}
			if ch.kind == reqSend {
				_, _ = ch.Wait() // buffered: completes at post time
				continue
			}
			if !ch.Cancel() {
				all = false
			}
		}
		if !all {
			return false
		}
		r.finished = true
		r.err = fmt.Errorf("mpi: %w (aggregate)", ErrCancelled)
		return true
	}
	return false
}

// Free releases a nonblocking operation without requiring its completion —
// MPI_Request_free semantics, but deterministic (no finalizer): each
// reachable receive is cancelled if still unmatched, or drained if its
// message has already been handed over (the drain runs the scatter, so the
// caller must not reuse the receive buffers until Free returns). Errors
// are recorded on the request and discarded here; Free never blocks on the
// network — a drain only completes an already-matched handoff.
//
// Free is the leak-free way to abandon an Ineighbor_* aggregate that will
// never be waited on: an abandoned aggregate would otherwise pin its
// unmatched pending receives in the mailbox forever, and a later send with
// the same (source, tag) would match a stale receive and scatter into a
// buffer the application has moved on from.
func (r *Request) Free() {
	if r == nil || r.finished {
		return
	}
	switch r.kind {
	case reqAggregate:
		// Record the first child outcome, as Wait would: a freed aggregate
		// whose messages had all arrived completed successfully; one that
		// was still unmatched carries its children's ErrCancelled.
		for _, ch := range r.children {
			ch.Free()
			if ch != nil && ch.err != nil && r.err == nil {
				r.err = ch.err
			}
		}
		r.finished = true
	case reqRecv:
		if r.Cancel() {
			return
		}
		_, _ = r.Wait()
	default:
		_, _ = r.Wait()
	}
}

// Test reports whether the operation has completed, without blocking; when
// it has, the status and error are as Wait would return them. Mirrors
// MPI_Test for receive requests.
func (r *Request) Test() (done bool, st Status, err error) {
	if r.finished {
		return true, r.status, r.err
	}
	switch r.kind {
	case reqSend:
		st, err = r.Wait()
		return true, st, err
	case reqRecv:
		select {
		case m := <-r.pending.ready:
			// Hand the message back through the buffered channel and let
			// Wait perform clock accounting and the scatter.
			r.pending.ready <- m
			st, err = r.Wait()
			return true, st, err
		default:
			return false, Status{}, nil
		}
	case reqAggregate:
		for _, ch := range r.children {
			if done, _, _ := ch.Test(); !done {
				return false, Status{}, nil
			}
		}
		st, err = r.Wait()
		return true, st, err
	}
	return false, Status{}, nil
}

// Waitany blocks until at least one of the requests completes and returns
// its index and status, like MPI_Waitany. Completed (or nil) requests that
// were already waited on are skipped; if every request is nil or finished,
// it returns index -1. Built on the completion-channel WaitSet: the wait
// blocks on a single channel that matchers signal, so there is no poll
// sweep and no backoff. The wait is registered with the deadlock monitor,
// and an aborted run completes the first live request with the abort error
// instead of blocking forever.
func Waitany(reqs ...*Request) (int, Status, error) {
	live := 0
	var c *Comm
	for _, r := range reqs {
		if r != nil && !r.finished {
			live++
			if c == nil {
				c = r.c
			}
		}
	}
	if live == 0 {
		return -1, Status{}, nil
	}
	// Capacity bound: one notification per reachable pending receive.
	pends, _ := pendingRecvs(reqs)
	s := NewWaitSet(c, len(pends)+1)
	for i, r := range reqs {
		if r == nil || r.finished {
			continue
		}
		s.Add(r, i)
	}
	for {
		ready, err := s.Waitsome()
		if err != nil {
			// The run is being torn down (abort or suspected deadlock):
			// complete the first live request so the caller observes the
			// informative error rather than a bare channel failure.
			for i, r := range reqs {
				if r != nil && !r.finished {
					st, werr := r.Wait()
					return i, st, werr
				}
			}
			return -1, Status{}, err
		}
		for _, i := range ready {
			r := reqs[i]
			if r == nil {
				continue
			}
			// An aggregate owner is reported on every child completion;
			// Test reports done only once the whole aggregate is.
			if done, st, terr := r.Test(); done {
				return i, st, terr
			}
		}
	}
}

// pendingRecvs collects the posted receives (and exact source world ranks)
// of every unfinished receive reachable from the requests, descending into
// aggregates.
func pendingRecvs(reqs []*Request) ([]*pendingRecv, []int) {
	var pends []*pendingRecv
	var srcs []int
	var walk func(r *Request)
	walk = func(r *Request) {
		if r == nil || r.finished {
			return
		}
		switch r.kind {
		case reqRecv:
			pends = append(pends, r.pending)
			srcs = append(srcs, r.pending.srcWorld)
		case reqAggregate:
			for _, ch := range r.children {
				walk(ch)
			}
		}
	}
	for _, r := range reqs {
		walk(r)
	}
	return pends, srcs
}

// Waitall waits for every request and returns the first error encountered.
func Waitall(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// aggregate bundles several requests into one, the handle returned by the
// nonblocking (Ineighbor_*) collectives.
func aggregate(c *Comm, reqs []*Request) *Request {
	return &Request{kind: reqAggregate, c: c, children: reqs}
}
