package mpi

import (
	"fmt"
	"time"

	"cartcc/internal/trace"
)

// Status describes a completed receive, mirroring MPI_Status.
type Status struct {
	// Source is the communicator rank the message came from.
	Source int
	// Tag is the message tag.
	Tag int
	// Count is the number of elements received.
	Count int
}

type reqKind uint8

const (
	reqSend reqKind = iota
	reqRecv
	reqAggregate
)

// Request is a handle for a nonblocking operation. Send requests complete
// at posting time (the runtime buffers eagerly); receive requests complete
// when a matching message has arrived and been scattered into the user
// buffer; aggregate requests complete when all children have.
type Request struct {
	kind     reqKind
	c        *Comm
	pending  *pendingRecv
	complete func(m *message) error
	children []*Request
	finished bool
	status   Status
	err      error
}

// Wait blocks until the operation completes and returns its status. Waiting
// twice on the same request returns the recorded result. If the run was
// aborted by another rank's failure, or the deadlock watchdog fires, Wait
// returns an error.
func (r *Request) Wait() (Status, error) {
	if r == nil {
		return Status{}, fmt.Errorf("mpi: Wait on nil request")
	}
	if r.finished {
		return r.status, r.err
	}
	switch r.kind {
	case reqSend:
		// Sends are buffered: complete at post time.
	case reqRecv:
		m, err := r.awaitMessage()
		if err != nil {
			r.err = err
			break
		}
		rs := r.c.rs
		if model := r.c.w.model; model != nil {
			start := rs.clock
			if m.arrive > rs.clock {
				rs.clock = m.arrive
			}
			rs.clock += model.RecvOverhead
			if rec := r.c.w.rec; rec != nil {
				rec.Add(trace.Event{
					Rank: rs.rank, Kind: trace.KindRecv, Peer: r.c.worldRank(m.src),
					Bytes: m.bytes, Tag: m.tag, Start: start, End: rs.clock,
				})
			}
		}
		r.status = Status{Source: m.src, Tag: m.tag, Count: m.elems}
		if r.complete != nil {
			r.err = r.complete(m)
		}
	case reqAggregate:
		for _, ch := range r.children {
			if _, err := ch.Wait(); err != nil && r.err == nil {
				r.err = err
			}
		}
	}
	r.finished = true
	return r.status, r.err
}

// awaitMessage blocks on the pending receive with abort and watchdog
// handling.
func (r *Request) awaitMessage() (*message, error) {
	w := r.c.w
	var timeoutCh <-chan time.Time
	if w.timeout > 0 {
		t := time.NewTimer(w.timeout)
		defer t.Stop()
		timeoutCh = t.C
	}
	select {
	case m := <-r.pending.ready:
		return m, nil
	case <-w.abort:
		return nil, fmt.Errorf("mpi: rank %d: run aborted while receiving (src=%d tag=%d)", r.c.rank, r.pending.src, r.pending.tag)
	case <-timeoutCh:
		err := fmt.Errorf("mpi: rank %d: deadlock suspected: receive (src=%d tag=%d ctx=%d) blocked for %v",
			r.c.rank, r.pending.src, r.pending.tag, r.pending.ctx, w.timeout)
		w.fail(err)
		return nil, err
	}
}

// Test reports whether the operation has completed, without blocking; when
// it has, the status and error are as Wait would return them. Mirrors
// MPI_Test for receive requests.
func (r *Request) Test() (done bool, st Status, err error) {
	if r.finished {
		return true, r.status, r.err
	}
	switch r.kind {
	case reqSend:
		st, err = r.Wait()
		return true, st, err
	case reqRecv:
		select {
		case m := <-r.pending.ready:
			// Hand the message back through the buffered channel and let
			// Wait perform clock accounting and the scatter.
			r.pending.ready <- m
			st, err = r.Wait()
			return true, st, err
		default:
			return false, Status{}, nil
		}
	case reqAggregate:
		for _, ch := range r.children {
			if done, _, _ := ch.Test(); !done {
				return false, Status{}, nil
			}
		}
		st, err = r.Wait()
		return true, st, err
	}
	return false, Status{}, nil
}

// Waitany blocks until at least one of the requests completes and returns
// its index and status, like MPI_Waitany. Completed (or nil) requests that
// were already waited on are skipped; if every request is nil or finished,
// it returns index -1. The poll loop yields between sweeps, so it is
// intended for small request counts (as in schedule executors).
func Waitany(reqs ...*Request) (int, Status, error) {
	live := 0
	for _, r := range reqs {
		if r != nil && !r.finished {
			live++
		}
	}
	if live == 0 {
		return -1, Status{}, nil
	}
	for {
		for i, r := range reqs {
			if r == nil || r.finished {
				continue
			}
			done, st, err := r.Test()
			if done {
				return i, st, err
			}
		}
		// Block on the first live request's channel briefly rather than
		// spinning: fairness is preserved by the sweep above.
		for _, r := range reqs {
			if r == nil || r.finished {
				continue
			}
			if r.kind != reqRecv {
				continue
			}
			select {
			case m := <-r.pending.ready:
				r.pending.ready <- m
			case <-time.After(50 * time.Microsecond):
			}
			break
		}
	}
}

// Waitall waits for every request and returns the first error encountered.
func Waitall(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// aggregate bundles several requests into one, the handle returned by the
// nonblocking (Ineighbor_*) collectives.
func aggregate(c *Comm, reqs []*Request) *Request {
	return &Request{kind: reqAggregate, c: c, children: reqs}
}
