package mpi

import (
	"testing"
	"time"

	"cartcc/internal/datatype"
	"cartcc/internal/metrics"
)

// TestRuntimeMetricsCounts exercises the runtime's instrumentation on a
// two-rank exchange that forces every send path: a contiguous (zero-copy)
// send that arrives before its receive is posted (detach-to-pool), a
// contiguous send into a pre-posted receive (pure zero-copy), and a
// strided (gathered, pooled-wire) send. The merged snapshot must balance:
// posted == completed, send bytes == recv bytes, path counts partition the
// sends.
func TestRuntimeMetricsCounts(t *testing.T) {
	reg := metrics.NewRegistry(2)
	err := Run(Config{Procs: 2, Metrics: reg, Timeout: time.Minute}, func(c *Comm) error {
		buf := make([]int32, 64)
		for i := range buf {
			buf[i] = int32(c.Rank()*100 + i)
		}
		got := make([]int32, 64)
		peer := 1 - c.Rank()
		// Round 1: contiguous exchange; rank 1 sleeps before posting its
		// receive so rank 0's zero-copy payload must detach to the pool.
		if c.Rank() == 1 {
			time.Sleep(20 * time.Millisecond)
		}
		if err := SendSlice(c, buf[:16], peer, 7); err != nil {
			return err
		}
		if _, err := RecvSlice(c, got[:16], peer, 7); err != nil {
			return err
		}
		// Round 2: strided send (gathered into a pooled wire).
		stride := datatype.Vector(8, 2, 4, 0)
		if err := Barrier(c); err != nil {
			return err
		}
		sreq, err := Isend(c, buf, stride, peer, 8)
		if err != nil {
			return err
		}
		if _, err := Recv(c, got, stride, peer, 8); err != nil {
			return err
		}
		_, err = sreq.Wait()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	m := reg.Merged()
	posted := m.Value("mpi.sends.posted")
	if posted < 4 {
		t.Errorf("sends posted = %d, want >= 4 (two exchanges + barrier traffic)", posted)
	}
	if done := m.Value("mpi.recvs.completed"); done != posted {
		t.Errorf("recvs completed = %d, sends posted = %d; every send must complete", done, posted)
	}
	if sb, rb := m.Value("mpi.send.bytes"), m.Value("mpi.recv.bytes"); sb != rb || sb == 0 {
		t.Errorf("send bytes %d vs recv bytes %d; want equal and nonzero", sb, rb)
	}
	zc, ga := m.Value("mpi.sends.zerocopy"), m.Value("mpi.sends.gathered")
	if zc+ga != posted {
		t.Errorf("zerocopy %d + gathered %d != posted %d", zc, ga, posted)
	}
	if ga < 2 {
		t.Errorf("gathered sends = %d, want >= 2 (one strided send per rank)", ga)
	}
	// Detach-to-pool is a loopback mechanism: a forced network transport
	// encodes payloads inside Send instead of detaching at delivery.
	if det := m.Value("mpi.recv.detached"); det < 1 && !TransportEnvActive() {
		t.Errorf("detach-to-pool count = %d, want >= 1 (rank 1's late receive)", det)
	}
	if hwm := m.Value("mpi.unexpected.hwm"); hwm < 1 {
		t.Errorf("unexpected-queue high-water = %d, want >= 1", hwm)
	}
	if blocks, ns := m.Value("mpi.wait.blocks"), m.Value("mpi.wait.blocked_ns"); blocks > 0 && ns == 0 {
		t.Errorf("%d blocking waits recorded but zero blocked nanoseconds", blocks)
	}
}

// TestMetricsRegistryTooSmall: a registry sized below Procs is a
// configuration error, caught before any rank spawns.
func TestMetricsRegistryTooSmall(t *testing.T) {
	err := Run(Config{Procs: 4, Metrics: metrics.NewRegistry(2)}, func(c *Comm) error { return nil })
	if err == nil {
		t.Fatal("undersized metrics registry accepted")
	}
}

// TestMetricsOffNoEffect: without a registry the instrumented paths are
// nil-checked no-ops — the exchange must behave identically.
func TestMetricsOffNoEffect(t *testing.T) {
	err := Run(Config{Procs: 2, Timeout: time.Minute}, func(c *Comm) error {
		buf := []int32{1, 2, 3}
		got := make([]int32, 3)
		peer := 1 - c.Rank()
		if err := SendSlice(c, buf, peer, 3); err != nil {
			return err
		}
		_, err := RecvSlice(c, got, peer, 3)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWirePoolHitMissAccounting: repeated gathered sends between two ranks
// must start recycling wires — pool hits appear after the first exchanges,
// and hits+misses equals the gathered-send count (the only pool consumers
// in this run are gathers; detaches are counted separately).
func TestWirePoolHitMissAccounting(t *testing.T) {
	reg := metrics.NewRegistry(2)
	err := Run(Config{Procs: 2, Metrics: reg, Timeout: time.Minute}, func(c *Comm) error {
		stride := datatype.Vector(16, 2, 4, 0)
		buf := make([]int32, 64)
		got := make([]int32, 64)
		peer := 1 - c.Rank()
		for i := 0; i < 8; i++ {
			rreq, err := Irecv(c, got, stride, peer, i)
			if err != nil {
				return err
			}
			sreq, err := Isend(c, buf, stride, peer, i)
			if err != nil {
				return err
			}
			if err := Waitall(sreq, rreq); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m := reg.Merged()
	hit, miss := m.Value("mpi.wirepool.hit"), m.Value("mpi.wirepool.miss")
	if ga := m.Value("mpi.sends.gathered"); hit+miss != ga {
		t.Errorf("pool hit %d + miss %d != gathered sends %d", hit, miss, ga)
	}
	if hit == 0 {
		t.Error("16 gathered exchanges produced zero pool hits; recycling broken")
	}
}
