package mpi

import (
	"fmt"
	"math"
	"testing"
	"time"

	"cartcc/internal/datatype"
	"cartcc/internal/netmodel"
)

// runModel runs f under the given cost model and returns the final virtual
// clock of every rank.
func runModel(t *testing.T, p int, m *netmodel.Model, seed int64, f func(c *Comm) error) []float64 {
	t.Helper()
	clocks := make([]float64, p)
	err := Run(Config{Procs: p, Model: m, Seed: seed, Timeout: 20 * time.Second}, func(c *Comm) error {
		if err := f(c); err != nil {
			return err
		}
		clocks[c.Rank()] = c.VTime()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return clocks
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-15+1e-9*math.Abs(b) }

func TestVTimeSingleMessage(t *testing.T) {
	m := &netmodel.Model{Alpha: 10e-6, Beta: 1e-9, SendOverhead: 2e-6, RecvOverhead: 3e-6}
	clocks := runModel(t, 2, m, 0, func(c *Comm) error {
		if c.Rank() == 0 {
			return SendSlice(c, make([]int64, 100), 1, 0) // 800 bytes
		}
		buf := make([]int64, 100)
		_, err := RecvSlice(c, buf, 0, 0)
		return err
	})
	// Sender: one send overhead plus the injection time β·800 (LogGP-style
	// serialization at the NIC).
	if !approx(clocks[0], 2e-6+800e-9) {
		t.Errorf("sender clock %g, want %g", clocks[0], 2e-6+800e-9)
	}
	// Receiver: arrival (o + β·800 + α) plus receive overhead.
	want := 2e-6 + 800e-9 + 10e-6 + 3e-6
	if !approx(clocks[1], want) {
		t.Errorf("receiver clock %g, want %g", clocks[1], want)
	}
}

func TestVTimeSendsSerializeOnOverhead(t *testing.T) {
	m := &netmodel.Model{Alpha: 1e-6, SendOverhead: 5e-6}
	const n = 10
	clocks := runModel(t, 2, m, 0, func(c *Comm) error {
		if c.Rank() == 0 {
			reqs := make([]*Request, n)
			for i := range reqs {
				r, err := Isend(c, []int{i}, datatype.Contiguous(0, 1), 1, 0)
				if err != nil {
					return err
				}
				reqs[i] = r
			}
			return Waitall(reqs...)
		}
		for i := 0; i < n; i++ {
			buf := make([]int, 1)
			if _, err := RecvSlice(c, buf, 0, 0); err != nil {
				return err
			}
		}
		return nil
	})
	// n posted sends serialize on the per-message overhead: this is what
	// makes direct delivery of t messages latency-bound for small blocks.
	if !approx(clocks[0], n*5e-6) {
		t.Errorf("sender clock %g, want %g", clocks[0], n*5e-6)
	}
	// Receiver: last message departs at n·o, arrives +α; receive overheads
	// are charged per message but overlap arrival waiting; final clock is
	// at least arrival of last message.
	if clocks[1] < n*5e-6+1e-6 {
		t.Errorf("receiver clock %g too small", clocks[1])
	}
}

func TestVTimeSelfMessageSkipsAlpha(t *testing.T) {
	m := &netmodel.Model{Alpha: 100e-6, Beta: 1e-9, SendOverhead: 1e-6, RecvOverhead: 1e-6}
	clocks := runModel(t, 1, m, 0, func(c *Comm) error {
		if err := SendSlice(c, make([]byte, 1000), 0, 0); err != nil {
			return err
		}
		buf := make([]byte, 1000)
		_, err := RecvSlice(c, buf, 0, 0)
		return err
	})
	// o + β·1000 + recv overhead, but no α.
	want := 1e-6 + 1000e-9 + 1e-6
	if !approx(clocks[0], want) {
		t.Errorf("self message clock %g, want %g", clocks[0], want)
	}
}

func TestVTimeRecvWaitsForArrival(t *testing.T) {
	m := &netmodel.Model{Alpha: 50e-6, SendOverhead: 1e-6, RecvOverhead: 1e-6}
	clocks := runModel(t, 2, m, 0, func(c *Comm) error {
		if c.Rank() == 0 {
			// Compute for 1 ms of virtual time, then receive: arrival is
			// earlier than the local clock, so no extra waiting.
			c.AdvanceVTime(1e-3)
			buf := make([]int, 1)
			_, err := RecvSlice(c, buf, 1, 0)
			return err
		}
		return SendSlice(c, []int{1}, 0, 0)
	})
	if !approx(clocks[0], 1e-3+1e-6) { // own clock + recv overhead only
		t.Errorf("busy receiver clock %g", clocks[0])
	}
	if !approx(clocks[1], 1e-6) {
		t.Errorf("sender clock %g", clocks[1])
	}
}

func TestVTimeBlockingRoundsAccumulateLatency(t *testing.T) {
	// A ring of blocking sendrecv rounds accumulates α per round, while the
	// same exchanges posted nonblockingly pay α once. This is the paper's
	// observation that the trivial blocking loop is slower than direct
	// nonblocking delivery (Section 4.2).
	m := &netmodel.Model{Alpha: 10e-6, SendOverhead: 1e-6, RecvOverhead: 1e-6}
	const rounds = 8
	p := 4
	blocking := runModel(t, p, m, 0, func(c *Comm) error {
		right := (c.Rank() + 1) % p
		left := (c.Rank() - 1 + p) % p
		buf := []int{0}
		in := make([]int, 1)
		for i := 0; i < rounds; i++ {
			if _, err := Sendrecv(c, buf, contig1(), right, 0, in, contig1(), left, 0); err != nil {
				return err
			}
		}
		return nil
	})
	nonblocking := runModel(t, p, m, 0, func(c *Comm) error {
		right := (c.Rank() + 1) % p
		left := (c.Rank() - 1 + p) % p
		var reqs []*Request
		in := make([][]int, rounds)
		for i := 0; i < rounds; i++ {
			in[i] = make([]int, 1)
			r, err := Irecv(c, in[i], contig1(), left, i)
			if err != nil {
				return err
			}
			reqs = append(reqs, r)
		}
		for i := 0; i < rounds; i++ {
			r, err := Isend(c, []int{0}, contig1(), right, i)
			if err != nil {
				return err
			}
			reqs = append(reqs, r)
		}
		return Waitall(reqs...)
	})
	if blocking[0] <= 2*nonblocking[0] {
		t.Errorf("blocking %g not substantially slower than nonblocking %g", blocking[0], nonblocking[0])
	}
}

func TestVTimeDeterministicUnderNoise(t *testing.T) {
	m := netmodel.TitanNoisy()
	f := func(c *Comm) error {
		p := c.Size()
		for i := 0; i < 5; i++ {
			out := []int{i}
			in := make([]int, 1)
			if _, err := Sendrecv(c,
				out, contig1(), (c.Rank()+1)%p, 0,
				in, contig1(), (c.Rank()-1+p)%p, 0); err != nil {
				return err
			}
		}
		return nil
	}
	a := runModel(t, 4, m, 42, f)
	b := runModel(t, 4, m, 42, f)
	for r := range a {
		if a[r] != b[r] {
			t.Fatalf("rank %d clocks differ across identical runs: %g vs %g", r, a[r], b[r])
		}
	}
	cDiff := runModel(t, 4, m, 43, f)
	same := true
	for r := range a {
		if a[r] != cDiff[r] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical noisy clocks")
	}
}

func TestVTimeDisabledWithoutModel(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if err := SendSlice(c, []int{1}, 1-c.Rank(), 0); err != nil {
			return err
		}
		buf := make([]int, 1)
		if _, err := RecvSlice(c, buf, 1-c.Rank(), 0); err != nil {
			return err
		}
		if c.VTime() != 0 {
			return fmt.Errorf("virtual clock advanced without a model: %g", c.VTime())
		}
		return nil
	})
}

func TestVTimeBarrierSynchronizesClocks(t *testing.T) {
	m := netmodel.Hydra()
	clocks := runModel(t, 4, m, 0, func(c *Comm) error {
		// Skew the ranks, then barrier.
		c.AdvanceVTime(float64(c.Rank()) * 1e-3)
		return Barrier(c)
	})
	// After a barrier every clock is at least the maximum pre-barrier skew.
	for r, cl := range clocks {
		if cl < 3e-3 {
			t.Errorf("rank %d clock %g below barrier bound", r, cl)
		}
	}
}
