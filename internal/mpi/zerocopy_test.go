package mpi

import (
	"errors"
	"fmt"
	"time"

	"testing"

	"cartcc/internal/datatype"
)

// TestIprobeExactDeepQueue is the indexed-mailbox regression test: a
// fully-specified Iprobe must be an O(1) index lookup even with a 10k-deep
// unexpected queue, while a wildcard probe (the only scanner left) walks
// the queue. The probeScanned hook counts arrived-list entries examined.
func TestIprobeExactDeepQueue(t *testing.T) {
	const depth = 10_000
	run(t, 2, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			buf := []int{0}
			for i := 0; i < depth; i++ {
				buf[0] = i
				if _, err := Isend(c, buf, datatype.Contiguous(0, 1), 1, 7); err != nil {
					return err
				}
			}
			// Per-sender delivery is sequential, so once this lands the
			// whole queue is in place.
			return SendSlice(c, []int{-1}, 1, 8)
		case 1:
			sync := make([]int, 1)
			if _, err := RecvSlice(c, sync, 0, 8); err != nil {
				return err
			}
			before := probeScanned.Load()
			found, st, err := Iprobe(c, 0, 7)
			if err != nil {
				return err
			}
			if !found || st.Source != 0 || st.Tag != 7 || st.Count != 1 {
				return fmt.Errorf("exact probe: found=%v st=%+v", found, st)
			}
			if scanned := probeScanned.Load() - before; scanned != 0 {
				return fmt.Errorf("exact probe scanned %d entries of a %d-deep queue; want 0", scanned, depth)
			}
			// A wildcard probe for an absent tag is the scanner: it must
			// examine at least the whole live queue, proving the counter
			// observes this code path and the exact path really skipped it.
			before = probeScanned.Load()
			if found, _, _ := Iprobe(c, AnySource, 9999); found {
				return fmt.Errorf("wildcard probe for absent tag found a message")
			}
			if scanned := probeScanned.Load() - before; scanned < depth {
				return fmt.Errorf("wildcard probe scanned %d entries; want >= %d", scanned, depth)
			}
			// Drain in order: non-overtaking must hold across the indexed
			// queue, zero-copy sends, and pooled wires.
			got := make([]int, 1)
			for i := 0; i < depth; i++ {
				if _, err := RecvSlice(c, got, 0, 7); err != nil {
					return err
				}
				if got[0] != i {
					return fmt.Errorf("message %d carries %d: overtaking", i, got[0])
				}
			}
			return nil
		}
		return nil
	})
}

// TestNonOvertakingZeroCopyPooled interleaves contiguous (zero-copy) and
// strided (pooled-wire) sends on one (source, tag) stream and checks the
// receiver sees them in post order with intact contents — including when
// the sender's buffer is clobbered the moment each Isend returns, which is
// exactly what buffered-send semantics permit.
func TestNonOvertakingZeroCopyPooled(t *testing.T) {
	const (
		msgs = 200
		m    = 16
	)
	run(t, 2, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			buf := make([]int, 2*m)
			for i := 0; i < msgs; i++ {
				var l datatype.Layout
				if i%2 == 0 {
					// Zero-copy fast path: one contiguous extent.
					l = datatype.Contiguous(0, m)
					for j := 0; j < m; j++ {
						buf[j] = i*1000 + j
					}
				} else {
					// Strided: gathers into a pooled wire.
					l = datatype.Vector(m, 1, 2, 0)
					for j := 0; j < m; j++ {
						buf[2*j] = i*1000 + j
					}
				}
				req, err := Isend(c, buf, l, 1, 3)
				if err != nil {
					return err
				}
				if _, err := req.Wait(); err != nil {
					return err
				}
				// Buffered semantics: the data must already be out.
				for j := range buf {
					buf[j] = -7
				}
			}
			return nil
		case 1:
			got := make([]int, m)
			for i := 0; i < msgs; i++ {
				if i%16 == 0 {
					// Let the queue build up so both pre-posted and
					// unexpected matches are exercised.
					time.Sleep(200 * time.Microsecond)
				}
				if _, err := RecvSlice(c, got, 0, 3); err != nil {
					return err
				}
				for j := 0; j < m; j++ {
					if got[j] != i*1000+j {
						return fmt.Errorf("message %d element %d = %d, want %d", i, j, got[j], i*1000+j)
					}
				}
			}
			return nil
		}
		return nil
	})
}

// TestWildcardExactArbitration pins the matching order between an exact
// receive and a wildcard receive on the same (ctx, tag): whichever was
// posted first must match the first incoming message, exactly as the old
// single-list scan behaved.
func TestWildcardExactArbitration(t *testing.T) {
	for _, wildFirst := range []bool{true, false} {
		name := "exact-first"
		if wildFirst {
			name = "wild-first"
		}
		t.Run(name, func(t *testing.T) {
			run(t, 2, func(c *Comm) error {
				switch c.Rank() {
				case 0:
					sync := make([]int, 1)
					if _, err := RecvSlice(c, sync, 1, 1); err != nil {
						return err
					}
					if err := SendSlice(c, []int{111}, 1, 5); err != nil {
						return err
					}
					return SendSlice(c, []int{222}, 1, 5)
				case 1:
					a := make([]int, 1)
					b := make([]int, 1)
					var first, second *Request
					var err error
					if wildFirst {
						first, err = Irecv(c, a, datatype.Contiguous(0, 1), AnySource, 5)
					} else {
						first, err = Irecv(c, a, datatype.Contiguous(0, 1), 0, 5)
					}
					if err != nil {
						return err
					}
					if wildFirst {
						second, err = Irecv(c, b, datatype.Contiguous(0, 1), 0, 5)
					} else {
						second, err = Irecv(c, b, datatype.Contiguous(0, 1), AnySource, 5)
					}
					if err != nil {
						return err
					}
					if err := SendSlice(c, []int{0}, 0, 1); err != nil {
						return err
					}
					if _, err := first.Wait(); err != nil {
						return err
					}
					if _, err := second.Wait(); err != nil {
						return err
					}
					if a[0] != 111 || b[0] != 222 {
						return fmt.Errorf("%s: first recv got %d, second got %d; want 111, 222", name, a[0], b[0])
					}
					return nil
				}
				return nil
			})
		})
	}
}

// TestPoisonedReceiveNeverDoubleRelease exercises the fault path of the
// pooled-wire ownership protocol at the mailbox level: a receive that is
// poisoned (its peer died) gets a fresh poison message with no payload and
// no release hook, and the real message that arrives afterwards queues as
// unexpected with its release intact — invoked exactly once when a later
// receive finally consumes it.
func TestPoisonedReceiveNeverDoubleRelease(t *testing.T) {
	box := &mailbox{}
	released := 0
	m := &message{
		ctx: 1, src: 0, tag: 7,
		payload: []int{1, 2, 3}, elems: 3, bytes: 24,
		release: func(*World, *message) { released++ },
	}

	r1 := &pendingRecv{ctx: 1, src: 0, tag: 7, srcWorld: 0, ready: make(chan *message, 1)}
	box.post(r1)
	box.poisonMatching(func(p *pendingRecv) error {
		return errors.New("peer died")
	})
	poison := <-r1.ready
	if poison.fail == nil {
		t.Fatal("poisoned receive did not get a failure message")
	}
	if poison.payload != nil || poison.release != nil {
		t.Fatal("poison message carries a payload or release hook")
	}
	if released != 0 {
		t.Fatalf("release ran %d times before any message was consumed", released)
	}

	// The real message arrives after the poisoning: no pending receive
	// matches (r1 is gone), so it must queue with its release hook intact.
	box.deliver(m)
	if released != 0 {
		t.Fatalf("release ran %d times while the message sat unexpected", released)
	}

	// A later receive consumes it: release runs exactly once.
	r2 := &pendingRecv{ctx: 1, src: 0, tag: 7, srcWorld: 0, ready: make(chan *message, 1)}
	box.post(r2)
	got := <-r2.ready
	if got.fail != nil {
		t.Fatalf("second receive failed: %v", got.fail)
	}
	if released != 1 {
		t.Fatalf("release ran %d times; want exactly 1", released)
	}
	if got.release != nil {
		t.Fatal("release hook not cleared after the match")
	}

	// Waiting paths (request.go) re-release only via m.release, which is
	// nil now: simulate the deferred-consume epilogue and re-check.
	if rel := got.release; rel != nil {
		rel(nil, got)
	}
	if released != 1 {
		t.Fatalf("release ran %d times after epilogue; want exactly 1", released)
	}
}

// TestDetachResolvesZeroCopyAlias checks the other half of the ownership
// protocol: a zero-copy message that queues unexpected is detached — the
// payload stops aliasing the sender's buffer — before deliver returns.
func TestDetachResolvesZeroCopyAlias(t *testing.T) {
	box := &mailbox{}
	user := []int{10, 20, 30}
	detached := 0
	m := &message{
		ctx: 1, src: 0, tag: 9,
		payload: user, elems: 3, bytes: 24,
		detach: func(_ *World, m *message) {
			detached++
			wire := make([]int, len(user))
			copy(wire, m.payload.([]int))
			m.payload = wire
		},
	}
	box.deliver(m)
	if detached != 1 {
		t.Fatalf("detach ran %d times; want 1", detached)
	}
	// Sender reuses its buffer; the queued payload must be unaffected.
	user[0], user[1], user[2] = -1, -1, -1
	r := &pendingRecv{ctx: 1, src: 0, tag: 9, srcWorld: 0, ready: make(chan *message, 1)}
	var got []int
	r.consume = func(m *message) error {
		got = append([]int(nil), m.payload.([]int)...)
		return nil
	}
	box.post(r)
	mm := <-r.ready
	if mm.consumeErr != nil {
		t.Fatal(mm.consumeErr)
	}
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("queued zero-copy payload corrupted by sender reuse: %v", got)
	}
}

// TestWirePoolRecycles checks the size-bucketed pool round trip: a
// released wire of a pool-shaped capacity comes back from getWire.
func TestWirePoolRecycles(t *testing.T) {
	w := &World{}
	wire, pooled := getWire[int32](w, 100)
	if len(wire) != 100 || cap(wire) != 128 {
		t.Fatalf("getWire(100) = len %d cap %d; want 100/128", len(wire), cap(wire))
	}
	if pooled {
		t.Fatal("first getWire from an empty pool reported a pool hit")
	}
	m := &message{payload: wire}
	releaseWire[int32](w, m)
	if m.payload != nil {
		t.Fatal("releaseWire did not clear the payload")
	}
	// Under the race detector sync.Pool drops Puts at random (by design,
	// to shake out reuse races), so a single dropped Put must not strand
	// the loop: re-release the original wire on every attempt and demand
	// a recycle within a bounded number of round trips.
	recycled := false
	for i := 0; i < 100 && !recycled; i++ {
		releaseWire[int32](w, &message{payload: wire})
		again, hit := getWire[int32](w, 70)
		if cap(again) != 128 {
			t.Fatalf("wire cap %d; want 128", cap(again))
		}
		recycled = &again[0] == &wire[0]
		if recycled && !hit {
			t.Fatal("recycled wire not reported as a pool hit")
		}
	}
	if !recycled {
		t.Fatal("pool never recycled the released wire")
	}
	// Oversized and odd-capacity slices are never pooled.
	big := make([]int32, 1<<wireMaxClass+1)
	releaseWire[int32](w, &message{payload: big})
	odd := make([]int32, 100) // cap 100: not a power of two
	releaseWire[int32](w, &message{payload: odd})
}
