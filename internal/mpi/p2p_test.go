package mpi

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cartcc/internal/datatype"
)

// run is a test helper that runs f on p ranks and fails the test on error.
func run(t *testing.T, p int, f func(c *Comm) error) {
	t.Helper()
	if err := Run(Config{Procs: p, Timeout: 20 * time.Second}, f); err != nil {
		t.Fatal(err)
	}
}

func TestRunInvalidProcs(t *testing.T) {
	if err := Run(Config{Procs: 0}, func(c *Comm) error { return nil }); err == nil {
		t.Fatal("Run with 0 procs succeeded")
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	err := Run(Config{Procs: 4}, func(c *Comm) error {
		if c.Rank() == 2 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	err := Run(Config{Procs: 2}, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("kaput")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "kaput") {
		t.Fatalf("err = %v", err)
	}
}

func TestSendRecvBasic(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			return SendSlice(c, []int{1, 2, 3}, 1, 42)
		case 1:
			buf := make([]int, 3)
			st, err := RecvSlice(c, buf, 0, 42)
			if err != nil {
				return err
			}
			if st.Source != 0 || st.Tag != 42 || st.Count != 3 {
				return fmt.Errorf("status = %+v", st)
			}
			if buf[0] != 1 || buf[2] != 3 {
				return fmt.Errorf("buf = %v", buf)
			}
		}
		return nil
	})
}

func TestSendRecvWithLayouts(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			// Send the column {2, 7, 12} of a 3x5 row-major matrix.
			buf := make([]float64, 15)
			for i := range buf {
				buf[i] = float64(i)
			}
			return Send(c, buf, datatype.Vector(3, 1, 5, 2), 1, 0)
		case 1:
			// Receive it scattered into a row.
			buf := make([]float64, 15)
			if _, err := Recv(c, buf, datatype.Contiguous(5, 3), 0, 0); err != nil {
				return err
			}
			if buf[5] != 2 || buf[6] != 7 || buf[7] != 12 {
				return fmt.Errorf("buf = %v", buf)
			}
		}
		return nil
	})
}

func TestSelfSendRecv(t *testing.T) {
	run(t, 1, func(c *Comm) error {
		if err := SendSlice(c, []byte("self"), 0, 3); err != nil {
			return err
		}
		buf := make([]byte, 4)
		if _, err := RecvSlice(c, buf, 0, 3); err != nil {
			return err
		}
		if string(buf) != "self" {
			return fmt.Errorf("got %q", buf)
		}
		return nil
	})
}

func TestNonOvertakingSameSourceTag(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		const n = 50
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := SendSlice(c, []int{i}, 1, 0); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			buf := make([]int, 1)
			if _, err := RecvSlice(c, buf, 0, 0); err != nil {
				return err
			}
			if buf[0] != i {
				return fmt.Errorf("message %d overtaken by %d", i, buf[0])
			}
		}
		return nil
	})
}

func TestTagSelectivity(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := SendSlice(c, []int{10}, 1, 10); err != nil {
				return err
			}
			return SendSlice(c, []int{20}, 1, 20)
		}
		// Receive tag 20 first even though tag 10 arrived earlier.
		buf := make([]int, 1)
		if _, err := RecvSlice(c, buf, 0, 20); err != nil {
			return err
		}
		if buf[0] != 20 {
			return fmt.Errorf("tag-20 recv got %d", buf[0])
		}
		if _, err := RecvSlice(c, buf, 0, 10); err != nil {
			return err
		}
		if buf[0] != 10 {
			return fmt.Errorf("tag-10 recv got %d", buf[0])
		}
		return nil
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	run(t, 3, func(c *Comm) error {
		if c.Rank() != 0 {
			return SendSlice(c, []int{c.Rank()}, 0, c.Rank()+100)
		}
		seen := map[int]bool{}
		for i := 0; i < 2; i++ {
			buf := make([]int, 1)
			st, err := RecvSlice(c, buf, AnySource, AnyTag)
			if err != nil {
				return err
			}
			if st.Source != buf[0] || st.Tag != buf[0]+100 {
				return fmt.Errorf("status %+v payload %d", st, buf[0])
			}
			seen[buf[0]] = true
		}
		if !seen[1] || !seen[2] {
			return fmt.Errorf("seen = %v", seen)
		}
		return nil
	})
}

func TestBufferedSendAllowsReuse(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []int{7}
			if err := SendSlice(c, buf, 1, 0); err != nil {
				return err
			}
			buf[0] = 99 // must not affect the message already sent
			return SendSlice(c, buf, 1, 0)
		}
		a, b := make([]int, 1), make([]int, 1)
		if _, err := RecvSlice(c, a, 0, 0); err != nil {
			return err
		}
		if _, err := RecvSlice(c, b, 0, 0); err != nil {
			return err
		}
		if a[0] != 7 || b[0] != 99 {
			return fmt.Errorf("got %d,%d", a[0], b[0])
		}
		return nil
	})
}

func TestSendrecvExchange(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		p := c.Size()
		right := (c.Rank() + 1) % p
		left := (c.Rank() - 1 + p) % p
		out := []int{c.Rank()}
		in := make([]int, 1)
		if _, err := Sendrecv(c,
			out, datatype.Contiguous(0, 1), right, 0,
			in, datatype.Contiguous(0, 1), left, 0); err != nil {
			return err
		}
		if in[0] != left {
			return fmt.Errorf("rank %d received %d, want %d", c.Rank(), in[0], left)
		}
		return nil
	})
}

func TestTypeMismatchIsError(t *testing.T) {
	err := Run(Config{Procs: 2, Timeout: 10 * time.Second}, func(c *Comm) error {
		if c.Rank() == 0 {
			return SendSlice(c, []int32{1}, 1, 0)
		}
		buf := make([]float64, 1)
		_, err := RecvSlice(c, buf, 0, 0)
		if err == nil {
			return fmt.Errorf("type mismatch accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSizeMismatchIsError(t *testing.T) {
	err := Run(Config{Procs: 2, Timeout: 10 * time.Second}, func(c *Comm) error {
		if c.Rank() == 0 {
			return SendSlice(c, []int{1, 2, 3}, 1, 0)
		}
		buf := make([]int, 2)
		_, err := RecvSlice(c, buf, 0, 0)
		if err == nil {
			return fmt.Errorf("size mismatch accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidArguments(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if err := SendSlice(c, []int{1}, 5, 0); err == nil {
			return fmt.Errorf("send to rank 5 accepted")
		}
		if err := SendSlice(c, []int{1}, 0, -3); err == nil {
			return fmt.Errorf("negative tag accepted")
		}
		if _, err := Irecv(c, []int{1}, datatype.Contiguous(0, 5), 0, 0); err == nil {
			return fmt.Errorf("layout overflowing buffer accepted")
		}
		if _, err := RecvSlice(c, []int{}, -7, 0); err == nil {
			return fmt.Errorf("invalid source accepted")
		}
		return nil
	})
}

func TestDeadlockWatchdog(t *testing.T) {
	start := time.Now()
	err := Run(Config{Procs: 2, Timeout: 200 * time.Millisecond}, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := make([]int, 1)
			_, err := RecvSlice(c, buf, 1, 0) // never sent
			return err
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("watchdog took %v", time.Since(start))
	}
}

func TestAbortReleasesBlockedRanks(t *testing.T) {
	start := time.Now()
	err := Run(Config{Procs: 3, Timeout: time.Minute}, func(c *Comm) error {
		if c.Rank() == 0 {
			return fmt.Errorf("early failure")
		}
		buf := make([]int, 1)
		_, err := RecvSlice(c, buf, 0, 0) // would block forever
		return err
	})
	if err == nil {
		t.Fatal("no error propagated")
	}
	if time.Since(start) > 10*time.Second {
		t.Fatalf("abort took %v", time.Since(start))
	}
}

func TestIprobe(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := SendSlice(c, []int{1, 2}, 1, 17); err != nil {
				return err
			}
			// Synchronize so rank 1 probes after arrival.
			return SendSlice(c, []int{0}, 1, 99)
		}
		sync := make([]int, 1)
		if _, err := RecvSlice(c, sync, 0, 99); err != nil {
			return err
		}
		found, st, err := Iprobe(c, 0, 17)
		if err != nil {
			return err
		}
		if !found || st.Count != 2 || st.Tag != 17 {
			return fmt.Errorf("probe = %v %+v", found, st)
		}
		// The message is still there after probing.
		buf := make([]int, 2)
		if _, err := RecvSlice(c, buf, 0, 17); err != nil {
			return err
		}
		found, _, err = Iprobe(c, 0, 17)
		if err != nil {
			return err
		}
		if found {
			return fmt.Errorf("probe found consumed message")
		}
		return nil
	})
}

func TestRequestTest(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			// Delay so the first Test on rank 1 is likely incomplete.
			time.Sleep(50 * time.Millisecond)
			return SendSlice(c, []int{5}, 1, 0)
		}
		buf := make([]int, 1)
		req, err := Irecv(c, buf, datatype.Contiguous(0, 1), 0, 0)
		if err != nil {
			return err
		}
		var polls atomic.Int64
		for {
			done, st, err := req.Test()
			if err != nil {
				return err
			}
			if done {
				if st.Count != 1 || buf[0] != 5 {
					return fmt.Errorf("test result %+v buf %v", st, buf)
				}
				break
			}
			polls.Add(1)
			time.Sleep(time.Millisecond)
		}
		// Waiting after completion returns the same result.
		st, err := req.Wait()
		if err != nil || st.Count != 1 {
			return fmt.Errorf("re-wait %+v %v", st, err)
		}
		return nil
	})
}

func TestWaitallNilTolerant(t *testing.T) {
	run(t, 1, func(c *Comm) error {
		return Waitall(nil, nil)
	})
}

func TestManyConcurrentPairs(t *testing.T) {
	// Stress: every rank exchanges with every other rank simultaneously.
	run(t, 8, func(c *Comm) error {
		p := c.Size()
		reqs := make([]*Request, 0, 2*p)
		recv := make([][]int, p)
		for r := 0; r < p; r++ {
			recv[r] = make([]int, 1)
			req, err := Irecv(c, recv[r], datatype.Contiguous(0, 1), r, 0)
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
		}
		for r := 0; r < p; r++ {
			req, err := Isend(c, []int{c.Rank()*100 + r}, datatype.Contiguous(0, 1), r, 0)
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
		}
		if err := Waitall(reqs...); err != nil {
			return err
		}
		for r := 0; r < p; r++ {
			if recv[r][0] != r*100+c.Rank() {
				return fmt.Errorf("rank %d from %d: got %d", c.Rank(), r, recv[r][0])
			}
		}
		return nil
	})
}
