package mpi

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// This file is the multi-process launch layer: RunTransport builds one
// world whose ranks span OS processes, connected by a network transport
// (transport_net.go), and the CARTCC_TRANSPORT environment variable lets
// any existing entry point detour its traffic through a real socket
// without code changes.

// EnvTransport is the environment variable selecting a transport backend
// for plain Run calls: "tcp" or "unix" builds the world force-remote over
// that backend (every message crosses a real socket back into the
// process); empty or "loopback" keeps the in-process fast path.
// Virtual-time runs ignore it.
const EnvTransport = "CARTCC_TRANSPORT"

// TransportEnvActive reports whether CARTCC_TRANSPORT selects a network
// backend. Tests asserting loopback-only properties (zero allocations on
// the zero-copy path, exact pool occupancy) skip themselves when it does.
func TransportEnvActive() bool {
	switch os.Getenv(EnvTransport) {
	case "tcp", "unix":
		return true
	}
	return false
}

// KnownTransport reports whether name is a recognized backend selector
// for EnvTransport: "loopback", "tcp", "unix", or empty (= loopback).
// CLIs validate their -transport flag with it before any world runs, so
// a typo is a usage error instead of a failure inside the first world.
func KnownTransport(name string) bool {
	switch name {
	case "", "loopback", "tcp", "unix":
		return true
	}
	return false
}

// RunTransport is Run over a network transport: it spawns a goroutine for
// every world rank hosted by this process (per tc.Procs[tc.Self]), carries
// traffic to the rest over tc's backend, and waits for the local ranks to
// finish. Every process of the world calls RunTransport with the same cfg
// and the same rank/address map, differing only in tc.Self; collective
// context allocation works because world rank 0 allocates and broadcasts.
//
// The wait-for-graph deadlock monitor is local-only, so worlds that span
// processes rely on the fallback timer (Config.Timeout) for remote-peer
// hangs. A peer process dying tears its connection down and marks every
// rank it hosted failed, ULFM-style; a peer whose world aborts propagates
// the original cause.
func RunTransport(cfg Config, tc TransportConfig, f func(c *Comm) error) error {
	if err := validateConfig(&cfg); err != nil {
		return err
	}
	if cfg.Model != nil {
		return fmt.Errorf("mpi: a virtual-time run cannot span processes (the cost model owns delivery timing)")
	}
	t, err := newNetTransport(tc, cfg.Procs)
	if err != nil {
		return err
	}
	defer t.Close()
	var localRank []bool
	if len(tc.Procs) > 1 {
		localRank = make([]bool, cfg.Procs)
		for _, r := range tc.Procs[tc.Self].Ranks {
			localRank[r] = true
		}
	}
	return runWorld(cfg, t, localRank, f)
}

// sockSeq disambiguates unix socket paths of concurrent env-selected
// worlds in one process.
var sockSeq atomic.Int64

// transportFromEnv builds the force-remote single-process transport the
// CARTCC_TRANSPORT variable asks for. ok is false when the variable is
// unset (or "loopback") and the caller should run in-process; err is
// non-nil for an unknown value or a failed socket bind.
func transportFromEnv(procs int) (t Transport, err error, ok bool) {
	val := os.Getenv(EnvTransport)
	switch val {
	case "", "loopback":
		return nil, nil, false
	case "tcp", "unix":
	default:
		return nil, fmt.Errorf("mpi: %s=%q (want tcp, unix or loopback)", EnvTransport, val), true
	}
	addr := "127.0.0.1:0"
	if val == "unix" {
		addr = filepath.Join(os.TempDir(),
			fmt.Sprintf("cartcc-%d-%d.sock", os.Getpid(), sockSeq.Add(1)))
	}
	ranks := make([]int, procs)
	for i := range ranks {
		ranks[i] = i
	}
	nt, err := newNetTransport(TransportConfig{
		Network:     val,
		Procs:       []ProcSpec{{Addr: addr, Ranks: ranks}},
		Self:        0,
		ForceRemote: true,
	}, procs)
	if err != nil {
		return nil, err, true
	}
	return nt, nil, true
}
