package mpi

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestWFGDetectsMismatchedTag is the acceptance scenario for the
// wait-for-graph monitor: a schedule bug (one rank receives on a tag
// nobody sends) must be diagnosed in well under a second — not after a
// 60-second timer — with a report naming every blocked rank's operation
// and the mismatched traffic sitting in the unexpected queues.
func TestWFGDetectsMismatchedTag(t *testing.T) {
	t0 := time.Now()
	err := Run(Config{Procs: 4, Timeout: 30 * time.Second}, func(c *Comm) error {
		// Everyone sends tag 0 to the next rank, then receives from the
		// previous — but rank 0 receives tag 99 by mistake. The sends are
		// buffered, so every rank ends up blocked in a receive: ranks 1-3
		// starve because 0 never progresses; rank 0 waits forever.
		p := c.Size()
		next, prev := (c.Rank()+1)%p, (c.Rank()-1+p)%p
		for i := 0; i < 3; i++ {
			if err := SendSlice(c, []int{c.Rank()}, next, 0); err != nil {
				return err
			}
			tag := 0
			if c.Rank() == 0 && i == 1 {
				tag = 99 // the schedule bug
			}
			buf := make([]int, 1)
			if _, err := RecvSlice(c, buf, prev, tag); err != nil {
				return err
			}
		}
		return nil
	})
	elapsed := time.Since(t0)
	if err == nil {
		t.Fatal("mismatched schedule completed")
	}
	if elapsed > time.Second {
		t.Fatalf("detection took %v, want < 1s", elapsed)
	}
	var dle *DeadlockError
	if !errors.As(err, &dle) {
		t.Fatalf("err = %v, want a DeadlockError", err)
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("report does not say deadlock: %v", err)
	}
	// The report must name every blocked rank's pending operation, and
	// rank 0's entry must expose both the bad tag and the queued messages
	// that explain the mismatch.
	if len(dle.Blocked) == 0 {
		t.Fatalf("report names no blocked ranks: %v", err)
	}
	msg := err.Error()
	for _, br := range dle.Blocked {
		if !strings.Contains(msg, fmt.Sprintf("rank %d:", br.Rank)) {
			t.Fatalf("report misses rank %d: %v", br.Rank, msg)
		}
		if br.Op == "" {
			t.Fatalf("rank %d has no op description", br.Rank)
		}
	}
	if !strings.Contains(msg, "tag=99") {
		t.Fatalf("report does not show the mismatched tag: %v", msg)
	}
	for _, br := range dle.Blocked {
		if br.Rank == 0 && len(br.Queued) == 0 {
			t.Fatalf("rank 0's unexpected queue not reported: %+v", br)
		}
	}
}

// TestWFGDetectsCycle: a wait-for cycle among three ranks is diagnosed as
// such even while a fourth rank is still alive and busy (so the
// all-blocked proof cannot fire).
func TestWFGDetectsCycle(t *testing.T) {
	errCh := make(chan error, 1)
	// Channel-synchronized bystander: rank 3 stays alive (never MPI-blocked)
	// until rank 0 has actually observed the detection, however long it
	// takes — the old fixed 400ms sleep flaked under -race when detection
	// outlived it, letting the all-blocked proof fire instead of the cycle.
	detected := make(chan struct{})
	err := Run(Config{Procs: 4, Timeout: 30 * time.Second}, func(c *Comm) error {
		if c.Rank() == 3 {
			<-detected
			return nil
		}
		// Ranks 0,1,2 each receive from the next before sending: a classic
		// head-to-head cycle 0 <- 1 <- 2 <- 0.
		buf := make([]int, 1)
		start := time.Now()
		_, err := RecvSlice(c, buf, (c.Rank()+1)%3, 4)
		if c.Rank() == 0 {
			select {
			case errCh <- fmt.Errorf("detected after %v: %w", time.Since(start), err):
			default:
			}
			close(detected)
		}
		return err
	})
	var dle *DeadlockError
	if !errors.As(err, &dle) {
		t.Fatalf("err = %v, want a DeadlockError", err)
	}
	if dle.Kind != "cycle" {
		t.Fatalf("proof kind = %q, want cycle (err: %v)", dle.Kind, err)
	}
	if len(dle.Cycle) != 3 {
		t.Fatalf("cycle = %v, want the 3 ring members", dle.Cycle)
	}
	select {
	case got := <-errCh:
		t.Logf("rank 0 observed: %v", got)
	default:
		t.Fatal("rank 0 never unblocked")
	}
}

// TestWFGDetectsOrphan: a receive from a rank that already finished can
// never match; the monitor proves this even though other ranks are alive.
func TestWFGDetectsOrphan(t *testing.T) {
	// Rank 2 is a live bystander held open by a channel until detection has
	// demonstrably happened (rank 0 unblocked), replacing a fixed sleep that
	// raced the monitor's proof construction.
	detected := make(chan struct{})
	err := Run(Config{Procs: 3, Timeout: 30 * time.Second}, func(c *Comm) error {
		switch c.Rank() {
		case 1:
			return nil // finishes immediately, sends nothing
		case 2:
			<-detected
			return nil
		default:
			buf := make([]int, 1)
			_, err := RecvSlice(c, buf, 1, 0)
			close(detected)
			return err
		}
	})
	var dle *DeadlockError
	if !errors.As(err, &dle) {
		t.Fatalf("err = %v, want a DeadlockError", err)
	}
	if dle.Kind != "orphan" {
		t.Fatalf("proof kind = %q, want orphan (err: %v)", dle.Kind, err)
	}
	found := false
	for _, r := range dle.Finished {
		if r == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("report does not list rank 1 as finished: %v", err)
	}
}

// TestWFGNoFalsePositive: slow but progressing runs — ranks alternating
// sleeps and exchanges — must not trip the monitor. The sleep here is the
// stimulus (it manufactures ranks that sit MPI-blocked across monitor
// intervals), not a timing assertion: a slower machine only makes the
// stimulus stronger, so it cannot flake.
func TestWFGNoFalsePositive(t *testing.T) {
	err := Run(Config{Procs: 4, Timeout: 30 * time.Second}, func(c *Comm) error {
		p := c.Size()
		next, prev := (c.Rank()+1)%p, (c.Rank()-1+p)%p
		for i := 0; i < 10; i++ {
			if c.Rank()%2 == 0 {
				// Even ranks dawdle before sending: odd ranks sit blocked in
				// their receives for many monitor intervals.
				time.Sleep(10 * time.Millisecond)
			}
			out, in := []int{i}, make([]int, 1)
			if _, err := Sendrecv(c, out, contiguousN(1), next, 0, in, contiguousN(1), prev, 0); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("monitor fired on a live run: %v", err)
	}
}

// TestWFGDisabled: DeadlockPoll < 0 turns the monitor off; the fallback
// timer (Config.Timeout) still catches the hang.
func TestWFGDisabled(t *testing.T) {
	t0 := time.Now()
	// Rank 1 must outlive rank 0's 150ms fallback timer; waiting on a
	// channel closed when the timer has provably fired removes the old
	// 400ms-vs-150ms sleep race.
	fired := make(chan struct{})
	err := Run(Config{Procs: 2, Timeout: 150 * time.Millisecond, DeadlockPoll: -1}, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := make([]int, 1)
			_, err := RecvSlice(c, buf, 1, 9)
			close(fired)
			return err
		}
		<-fired
		return nil
	})
	if err == nil {
		t.Fatal("hang not detected")
	}
	var dle *DeadlockError
	if errors.As(err, &dle) {
		t.Fatalf("disabled monitor still produced a DeadlockError: %v", err)
	}
	if !strings.Contains(err.Error(), "deadlock suspected") {
		t.Fatalf("fallback timer did not fire: %v", err)
	}
	if time.Since(t0) > 2*time.Second {
		t.Fatalf("fallback took %v", time.Since(t0))
	}
}

// TestTimeoutNegativeDisables: Timeout < 0 disables the fallback timer
// entirely — a receive that is merely slow completes instead of being
// killed by an over-eager timer. The sender's delay is a fixed sleep on
// purpose: with the timer disabled there is nothing for the delay to race,
// so it can only make the test slower, never flaky, and 50ms keeps rank 0
// demonstrably parked across several monitor-less poll intervals.
func TestTimeoutNegativeDisables(t *testing.T) {
	err := Run(Config{Procs: 2, Timeout: -1}, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := make([]int, 1)
			if _, err := RecvSlice(c, buf, 1, 9); err != nil {
				return err
			}
			if buf[0] != 42 {
				return fmt.Errorf("got %d", buf[0])
			}
			return nil
		}
		time.Sleep(50 * time.Millisecond)
		return SendSlice(c, []int{42}, 0, 9)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAbortMidSendrecv: a rank failing while its partner sits inside
// Sendrecv must release the partner with a cascade (ErrAborted) error,
// and the run error must carry only the root cause.
func TestAbortMidSendrecv(t *testing.T) {
	observed := make([]error, 3)
	// Ranks 0 and 1 announce their Sendrecv just before posting it; rank 2
	// fails only after both announcements, so the abort lands while the
	// partners are inside (or entering) the exchange — channel-synchronized
	// instead of the old 30ms sleep. The assertions hold either way (the
	// abort also releases waits posted after it), so this cannot flake.
	posted := make(chan struct{}, 2)
	err := Run(Config{Procs: 3, Timeout: 30 * time.Second}, func(c *Comm) error {
		switch c.Rank() {
		case 2:
			<-posted
			<-posted
			return fmt.Errorf("rank 2 exploded")
		default:
			// 0 and 1 exchange with each other but also wait on rank 2's
			// round, which never comes.
			buf := make([]int, 1)
			posted <- struct{}{}
			_, err := Sendrecv(c, []int{c.Rank()}, contiguousN(1), 1-c.Rank(), 0,
				buf, contiguousN(1), 2, 0)
			observed[c.Rank()] = err
			return err
		}
	})
	if err == nil || !strings.Contains(err.Error(), "rank 2 exploded") {
		t.Fatalf("err = %v", err)
	}
	if strings.Contains(err.Error(), "ranks failed") {
		t.Fatalf("cascade errors promoted to primary: %v", err)
	}
	for _, r := range []int{0, 1} {
		if observed[r] == nil {
			t.Fatalf("rank %d was not released", r)
		}
		if !errors.Is(observed[r], ErrAborted) && !errors.As(observed[r], new(*DeadlockError)) {
			t.Fatalf("rank %d observed %v, want ErrAborted", r, observed[r])
		}
	}
}

// TestDoubleWaitAfterAbort: waiting twice on a request that completed
// with an abort error returns the recorded error both times.
func TestDoubleWaitAfterAbort(t *testing.T) {
	errs := make([]error, 2)
	// Rank 1 fails only after rank 0's receive is posted, so the abort is
	// guaranteed to be what completes the request — synchronized through a
	// channel rather than the old 20ms sleep.
	posted := make(chan struct{})
	_ = Run(Config{Procs: 2, Timeout: 30 * time.Second}, func(c *Comm) error {
		if c.Rank() == 1 {
			<-posted
			return fmt.Errorf("bang")
		}
		buf := make([]int, 1)
		req, err := Irecv(c, buf, contiguousN(1), 1, 0)
		if err != nil {
			return err
		}
		close(posted)
		_, errs[0] = req.Wait()
		_, errs[1] = req.Wait()
		return errs[0]
	})
	if errs[0] == nil {
		t.Fatal("first Wait returned nil")
	}
	if errs[1] == nil || errs[1].Error() != errs[0].Error() {
		t.Fatalf("second Wait = %v, first = %v", errs[1], errs[0])
	}
}

// TestCancelReceive: Cancel removes an unmatched receive (completing it
// with ErrCancelled) and refuses once a message has been handed over.
func TestCancelReceive(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() != 0 {
			return SendSlice(c, []int{5}, 0, 1)
		}
		buf := make([]int, 1)
		// A receive nobody matches: cancellable.
		req, err := Irecv(c, buf, contiguousN(1), 1, 99)
		if err != nil {
			return err
		}
		if !req.Cancel() {
			return fmt.Errorf("unmatched receive not cancelled")
		}
		if _, err := req.Wait(); !errors.Is(err, ErrCancelled) {
			return fmt.Errorf("cancelled Wait = %v, want ErrCancelled", err)
		}
		// A matched receive: not cancellable.
		req2, err := Irecv(c, buf, contiguousN(1), 1, 1)
		if err != nil {
			return err
		}
		if _, err := req2.Wait(); err != nil {
			return err
		}
		if req2.Cancel() {
			return fmt.Errorf("completed receive reported cancelled")
		}
		return nil
	})
}

// TestWaitanyBlocksOnCompletionChannel replaces the old poll-sweep-rate
// regression test (the waitanyIdleSweeps hook is gone with the poll loop):
// a blocked Waitany must park on the WaitSet completion channel — visible
// to the deadlock monitor as a "waitsome" registration — and wake when the
// delayed message is matched.
func TestWaitanyBlocksOnCompletionChannel(t *testing.T) {
	// The message is released only after the watcher has seen Waitany's
	// watchdog registration, so Waitany is provably parked on the
	// completion channel when the send happens. (The old version slept
	// 150ms before sending and failed if the send beat Waitany to the
	// mailbox, in which case no registration ever appeared.)
	sendNow := make(chan struct{})
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 1 {
			<-sendNow
			return SendSlice(c, []int{1}, 0, 0)
		}
		buf := make([]int, 1)
		req, err := Irecv(c, buf, contiguousN(1), 1, 0)
		if err != nil {
			return err
		}
		// Sample the watchdog registry while Waitany blocks: the wait is
		// one atomic registration, not a sweep loop.
		seen := make(chan string, 1)
		go func() {
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				if op := c.w.blocked[0].Load(); op != nil {
					seen <- op.kind
					close(sendNow)
					return
				}
				time.Sleep(time.Millisecond)
			}
			seen <- ""
			close(sendNow)
		}()
		idx, _, err := Waitany(req)
		if err != nil {
			return err
		}
		if idx != 0 || buf[0] != 1 {
			return fmt.Errorf("Waitany index = %d buf = %v", idx, buf)
		}
		if kind := <-seen; kind != "waitsome" {
			return fmt.Errorf("blocked Waitany registered as %q, want waitsome", kind)
		}
		return nil
	})
}
