package mpi

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"cartcc/internal/wire"
)

// This file implements the network transport: TCP and unix-domain-socket
// backends over the varint frame format of internal/wire. One world spans
// OS processes, each hosting a contiguous-or-not subset of the world's
// ranks; every process listens on one address and opens at most one
// outbound connection per peer process, so all frames from process A to
// process B travel one ordered byte stream — a superset of the per-sender
// order the mailbox requires.
//
// Data path. A posted message is encoded inside Send, in the sender's
// call: the payload bytes are copied out of whatever the payload aliases
// (user buffer on the zero-copy path, pooled wire on the gathered path)
// into a pooled frame buffer, the pooled wire is released immediately,
// and the frame is queued to the destination's writer goroutine. The
// writer coalesces: it drains every queued frame into one buffered
// writer and flushes only when the queue goes momentarily empty, so a
// burst of schedule-round messages becomes a handful of syscalls. On the
// receiving process a per-connection reader decodes frames back into
// typed messages — payloads land in wires drawn from the same
// size-bucketed pools the local path uses — and hands them to
// mailbox.deliver, where matching, completion signaling, epoch-floor
// draining and duplicate suppression run exactly as for local messages.
//
// Failure path. A connection that dies outside a clean shutdown marks
// every rank of the peer process failed (markDead), poisoning pending
// receives ULFM-style; a process whose world aborts broadcasts a KindFail
// frame so its peers fail with the original cause instead of a timeout.
// Clean departure is announced with KindBye before closing.

// ProcSpec names one process of a multi-process world: its listen
// address and the world ranks it hosts.
type ProcSpec struct {
	// Addr is the process's listen address: "host:port" for tcp (port 0
	// picks one — single-process worlds only, peers cannot guess it), a
	// filesystem path for unix.
	Addr string
	// Ranks are the world ranks this process hosts.
	Ranks []int
}

// TransportConfig selects and configures a network transport backend.
type TransportConfig struct {
	// Network is "tcp" or "unix".
	Network string
	// Procs is the rank/address map, identical in every process.
	Procs []ProcSpec
	// Self is this process's index into Procs.
	Self int
	// ForceRemote routes even process-local traffic through the wire: a
	// single-process world exercises the full encode → socket → decode →
	// deliver path for every message. This is the conformance battery's
	// mode — all runtime semantics (faults, recovery, epochs) remain
	// available because every rank is still hosted locally.
	ForceRemote bool
	// DialTimeout bounds connection establishment to a peer, retrying
	// while peers are still starting up. Zero means 10 seconds.
	DialTimeout time.Duration
}

// validate checks the map against the world size.
func (tc *TransportConfig) validate(procs int) error {
	if tc.Network != "tcp" && tc.Network != "unix" {
		return fmt.Errorf("mpi: transport network %q (want tcp or unix)", tc.Network)
	}
	if tc.Self < 0 || tc.Self >= len(tc.Procs) {
		return fmt.Errorf("mpi: transport self %d outside [0,%d)", tc.Self, len(tc.Procs))
	}
	seen := make([]bool, procs)
	n := 0
	for i, p := range tc.Procs {
		if p.Addr == "" {
			return fmt.Errorf("mpi: transport process %d has no address", i)
		}
		for _, r := range p.Ranks {
			if r < 0 || r >= procs {
				return fmt.Errorf("mpi: transport process %d hosts rank %d outside [0,%d)", i, r, procs)
			}
			if seen[r] {
				return fmt.Errorf("mpi: transport rank %d hosted twice", r)
			}
			seen[r] = true
			n++
		}
	}
	if n != procs {
		return fmt.Errorf("mpi: transport map hosts %d of %d ranks", n, procs)
	}
	return nil
}

// maxFrame bounds one length-prefixed frame on a connection: the payload
// cap plus generous header room.
const maxFrame = wire.MaxPayload + 256

// frameBufs pools encode/decode scratch buffers.
var frameBufs = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

func getFrameBuf(n int) *[]byte {
	pb := frameBufs.Get().(*[]byte)
	if cap(*pb) < n {
		b := make([]byte, 0, n)
		*pb = b
	}
	*pb = (*pb)[:0]
	return pb
}

func putFrameBuf(pb *[]byte) {
	frameBufs.Put(pb)
}

// netTransport is the TCP/unix backend.
type netTransport struct {
	cfg TransportConfig
	w   *World

	rankProc []int // world rank -> hosting process index
	ln       net.Listener
	addr     string // resolved listen address (after port 0 binding)

	mu       sync.Mutex
	links    map[int]*peerLink // outbound links by process index
	accepted map[net.Conn]struct{}
	departed map[int]bool // peers that sent KindBye
	closing  atomic.Bool
	failSent atomic.Bool

	// handoffs parks messages whose payload the wire codec cannot encode
	// (named element types): only a KindHandoff token travels the
	// self-link, and the reader delivers the parked message at the token's
	// position in the frame stream — per-sender order holds across the
	// encoded and non-encodable paths (see sendHandoff).
	handoffMu  sync.Mutex
	handoffSeq uint64
	handoffs   map[uint64]handoff

	inflight atomic.Int64
	readers  sync.WaitGroup
}

// peerLink is one outbound connection with its coalescing writer.
type peerLink struct {
	proc int
	conn net.Conn
	q    chan *[]byte
	done chan struct{} // writer exited
	err  atomic.Pointer[error]
}

// newNetTransport validates the config and binds the listen socket; the
// transport is not attached to a world yet. Binding before rank spawn
// (and before RunTransport returns an error) means peers can dial as soon
// as they learn the address.
func newNetTransport(tc TransportConfig, worldSize int) (*netTransport, error) {
	if err := tc.validate(worldSize); err != nil {
		return nil, err
	}
	if tc.DialTimeout == 0 {
		tc.DialTimeout = 10 * time.Second
	}
	rankProc := make([]int, worldSize)
	for i, p := range tc.Procs {
		for _, r := range p.Ranks {
			rankProc[r] = i
		}
	}
	ln, err := net.Listen(tc.Network, tc.Procs[tc.Self].Addr)
	if err != nil {
		return nil, fmt.Errorf("mpi: transport listen %s %s: %w", tc.Network, tc.Procs[tc.Self].Addr, err)
	}
	t := &netTransport{
		cfg:      tc,
		rankProc: rankProc,
		ln:       ln,
		addr:     ln.Addr().String(),
		links:    make(map[int]*peerLink),
		accepted: make(map[net.Conn]struct{}),
		departed: make(map[int]bool),
	}
	return t, nil
}

// Addr returns the resolved listen address (meaningful when the
// configured address had port 0).
func (t *netTransport) Addr() string { return t.addr }

// Attach binds the world and starts the accept loop.
func (t *netTransport) Attach(w *World) {
	t.w = w
	t.readers.Add(1)
	go t.acceptLoop()
}

// Local implements Transport: delivery bypasses the wire only for ranks
// this process hosts, and not even then under ForceRemote.
func (t *netTransport) Local(dst int) bool {
	return !t.cfg.ForceRemote && t.rankProc[dst] == t.cfg.Self
}

// InFlight implements Transport: self-loop frames accepted but not yet
// delivered.
func (t *netTransport) InFlight() int { return int(t.inflight.Load()) }

// Drain implements Transport: wait (bounded — a dying connection may have
// dropped counted frames) for the self-loop pipe to come momentarily
// empty, so fault poisoning never overtakes messages already posted.
func (t *netTransport) Drain() {
	deadline := time.Now().Add(2 * time.Second)
	for t.inflight.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Microsecond)
	}
}

// payloadView returns the raw bytes of a message payload (a slice of a
// wire-encodable element type) without copying, plus its element id. The
// view aliases the payload and must be consumed before the posting call
// returns.
func payloadView(p any) (b []byte, id wire.ElemID, err error) {
	v := reflect.ValueOf(p)
	if v.Kind() != reflect.Slice {
		return nil, 0, fmt.Errorf("%w: payload %T is not a slice", wire.ErrBadElemType, p)
	}
	id, err = wire.ElemIDOf(v.Type().Elem())
	if err != nil {
		return nil, 0, err
	}
	n := v.Len() * int(v.Type().Elem().Size())
	if n == 0 {
		return nil, id, nil
	}
	return unsafe.Slice((*byte)(v.UnsafePointer()), n), id, nil
}

// Send implements Transport. It encodes the message into a pooled frame
// buffer — reading the payload exactly once, inside the posting call, so
// zero-copy aliases die on schedule — releases any pooled wire, and
// queues the frame on the destination process's link.
func (t *netTransport) Send(dst int, m *message) error {
	proc := t.rankProc[dst]
	pb, err := t.encodeData(dst, m)
	if err != nil {
		// Unsupported element type (named types, structs — allowed by the
		// generic Isend[T] API). A rank we host can still be reached
		// without wire-encoding the payload, but not by a direct mailbox
		// call from here: earlier frames to the same mailbox may still sit
		// in the self-link pipe, and delivering around them would advance
		// the receiver's per-sender dedup counter past their sseqs, so
		// they would be dropped as duplicates on arrival. The handoff path
		// parks the message and sends a token through the same pipe
		// instead, preserving order. A genuinely remote destination fails
		// typed — the id registry must agree across processes.
		if t.rankProc[dst] == t.cfg.Self {
			return t.sendHandoff(dst, m)
		}
		return &TransportError{Proc: proc, Err: err}
	}
	// The frame owns a copy of the payload now: return a pooled wire,
	// drop a zero-copy alias.
	m.detach = nil
	if rel := m.release; rel != nil {
		m.release = nil
		rel(t.w, m)
	}
	m.payload = nil
	selfLoop := t.rankProc[dst] == t.cfg.Self
	if selfLoop {
		t.inflight.Add(1)
	}
	if err := t.queueFrame(proc, pb); err != nil {
		if selfLoop {
			t.inflight.Add(-1)
		}
		return err
	}
	return nil
}

// encodeData encodes message m for world rank dst into a pooled buffer.
func (t *netTransport) encodeData(dst int, m *message) (*[]byte, error) {
	payload, elem, err := payloadView(m.payload)
	if err != nil {
		return nil, err
	}
	h := wire.Header{
		Kind:       wire.KindData,
		Proc:       t.cfg.Self,
		Dst:        dst,
		Ctx:        m.ctx,
		Epoch:      m.epoch,
		Src:        m.src,
		Tag:        m.tag,
		SrcWorld:   m.srcWorld,
		Sseq:       m.sseq,
		Elem:       elem,
		Elems:      m.elems,
		PayloadLen: len(payload),
	}
	pb := getFrameBuf(len(payload) + 64)
	b, err := wire.AppendHeader(*pb, h)
	if err != nil {
		putFrameBuf(pb)
		return nil, err
	}
	*pb = append(b, payload...)
	return pb, nil
}

// handoff is one parked message awaiting its KindHandoff token: a payload
// the wire codec cannot encode, delivered to a local mailbox by the
// self-link reader at the token's position in the frame stream.
type handoff struct {
	dst int
	m   *message
}

// sendHandoff routes a non-wire-encodable message to a locally hosted
// rank without breaking per-sender order: the message is parked in the
// handoff table and a token frame is queued on the self-link, behind
// every frame already queued there, so the reader delivers it after the
// messages that were posted before it.
func (t *netTransport) sendHandoff(dst int, m *message) error {
	// The reader delivers the message after this call returns, so a
	// zero-copy alias of the sender's user buffer must die now: detach
	// into a pooled wire, exactly as an unexpected-queue detach would.
	if d := m.detach; d != nil {
		m.detach = nil
		d(t.w, m)
	}
	t.handoffMu.Lock()
	t.handoffSeq++
	tok := t.handoffSeq
	if t.handoffs == nil {
		t.handoffs = make(map[uint64]handoff)
	}
	t.handoffs[tok] = handoff{dst: dst, m: m}
	t.handoffMu.Unlock()

	// On any failure the message has not been delivered: unpark it and
	// return its pooled wire so the caller sees the usual discarded-send
	// state (Send's contract).
	undo := func(err error) error {
		t.handoffMu.Lock()
		delete(t.handoffs, tok)
		t.handoffMu.Unlock()
		if rel := m.release; rel != nil {
			m.release = nil
			rel(t.w, m)
		}
		m.payload = nil
		return err
	}
	var tokbuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tokbuf[:], tok)
	pb := getFrameBuf(n + 16)
	b, err := wire.AppendHeader(*pb, wire.Header{Kind: wire.KindHandoff, Proc: t.cfg.Self, PayloadLen: n})
	if err != nil {
		putFrameBuf(pb)
		return undo(&TransportError{Proc: t.cfg.Self, Err: err})
	}
	*pb = append(b, tokbuf[:n]...)
	t.inflight.Add(1)
	if err := t.queueFrame(t.cfg.Self, pb); err != nil {
		t.inflight.Add(-1)
		return undo(err)
	}
	return nil
}

// deliverHandoff resolves a KindHandoff token read off the self-link and
// delivers the parked message. An unknown token or a handoff arriving on
// any connection other than our own loopback is a protocol violation.
func (t *netTransport) deliverHandoff(h wire.Header, payload []byte) error {
	if h.Proc != t.cfg.Self {
		return fmt.Errorf("%w: handoff frame from process %d", wire.ErrBadField, h.Proc)
	}
	tok, rest, err := wire.ConsumeUvarint(payload)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing handoff bytes", wire.ErrBadField, len(rest))
	}
	t.handoffMu.Lock()
	hd, ok := t.handoffs[tok]
	delete(t.handoffs, tok)
	t.handoffMu.Unlock()
	if !ok {
		return fmt.Errorf("%w: unknown handoff token %d", wire.ErrBadField, tok)
	}
	t.w.ranks[hd.dst].box.deliver(hd.m)
	t.inflight.Add(-1)
	return nil
}

// queueFrame hands an encoded frame to proc's writer, establishing the
// link on first use. The frame buffer is owned by the writer from here.
func (t *netTransport) queueFrame(proc int, pb *[]byte) error {
	l, err := t.link(proc)
	if err != nil {
		putFrameBuf(pb)
		return &TransportError{Proc: proc, Err: err}
	}
	if ep := l.err.Load(); ep != nil {
		putFrameBuf(pb)
		return &TransportError{Proc: proc, Err: *ep}
	}
	select {
	case l.q <- pb:
		return nil
	case <-l.done:
		putFrameBuf(pb)
		err := errors.New("connection closed")
		if ep := l.err.Load(); ep != nil {
			err = *ep
		}
		return &TransportError{Proc: proc, Err: err}
	}
}

// link returns the outbound link to proc, dialing and handshaking on
// first use. Dialing retries until DialTimeout — peer processes of one
// world start at slightly different times.
func (t *netTransport) link(proc int) (*peerLink, error) {
	t.mu.Lock()
	if l, ok := t.links[proc]; ok {
		t.mu.Unlock()
		return l, nil
	}
	t.mu.Unlock()

	addr := t.cfg.Procs[proc].Addr
	if proc == t.cfg.Self {
		addr = t.addr // resolved: the configured address may have port 0
	}
	conn, err := t.dial(addr)
	if err != nil {
		return nil, err
	}

	t.mu.Lock()
	if l, ok := t.links[proc]; ok {
		// Raced with another sender; keep theirs.
		t.mu.Unlock()
		conn.Close()
		return l, nil
	}
	l := &peerLink{
		proc: proc,
		conn: conn,
		q:    make(chan *[]byte, 512),
		done: make(chan struct{}),
	}
	t.links[proc] = l
	t.mu.Unlock()

	// Hello first: the accepting side learns who is talking before any
	// data frame arrives.
	hello := getFrameBuf(16)
	if b, err := wire.AppendHeader(*hello, wire.Header{Kind: wire.KindHello, Proc: t.cfg.Self}); err == nil {
		*hello = b
		l.q <- hello
	} else {
		putFrameBuf(hello)
	}
	go t.writeLoop(l)
	return l, nil
}

// dial connects to a peer address with startup-race retries.
func (t *netTransport) dial(addr string) (net.Conn, error) {
	deadline := time.Now().Add(t.cfg.DialTimeout)
	var lastErr error
	for {
		conn, err := net.DialTimeout(t.cfg.Network, addr, time.Until(deadline))
		if err == nil {
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			return conn, nil
		}
		lastErr = err
		if time.Now().After(deadline) || t.closing.Load() {
			return nil, fmt.Errorf("dial %s %s: %w", t.cfg.Network, addr, lastErr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// writeLoop drains a link's queue into the connection, coalescing every
// burst into one buffered flush. Each frame goes out length-prefixed.
func (t *netTransport) writeLoop(l *peerLink) {
	defer close(l.done)
	bw := bufio.NewWriterSize(l.conn, 64<<10)
	var lenbuf [binary.MaxVarintLen64]byte
	// counted reports whether a frame was counted in inflight by Send: a
	// data or handoff frame on the self link (the frame buffer starts with
	// the header, so the kind byte is at a fixed offset). A frame lost on
	// the failure path must decrement the count it carried, or InFlight
	// never drains and Drain()/the deadlock monitor stall on frames no
	// reader will ever deliver. Frames already flushed into the socket (or
	// sitting in bw when a later flush fails) cannot be accounted here;
	// procDown's self-link world-fail and the monitor's staleness bound
	// (deadlockCheck) backstop those.
	counted := func(pb *[]byte) bool {
		if l.proc != t.cfg.Self || len(*pb) < 3 {
			return false
		}
		k := wire.Kind((*pb)[2])
		return k == wire.KindData || k == wire.KindHandoff
	}
	writeFrame := func(pb *[]byte) error {
		n := binary.PutUvarint(lenbuf[:], uint64(len(*pb)))
		_, err := bw.Write(lenbuf[:n])
		if err == nil {
			_, err = bw.Write(*pb)
		}
		if err != nil && counted(pb) {
			t.inflight.Add(-1)
		}
		putFrameBuf(pb)
		return err
	}
	fail := func(err error) {
		l.err.Store(&err)
		// Drain and drop queued frames so senders blocked on the queue
		// make progress and observe the error.
		for {
			select {
			case pb := <-l.q:
				if pb == nil {
					t.procDown(l.proc, err)
					return
				}
				if counted(pb) {
					t.inflight.Add(-1)
				}
				putFrameBuf(pb)
			default:
				t.procDown(l.proc, err)
				return
			}
		}
	}
	for pb := range l.q {
		if pb == nil {
			break
		}
		if err := writeFrame(pb); err != nil {
			fail(err)
			return
		}
		// Coalesce: keep writing while more frames are queued, flush when
		// the queue goes empty. A nil sentinel anywhere in the burst still
		// means exit — after the flush, so the burst reaches the peer.
		stop := false
	drain:
		for {
			select {
			case pb2 := <-l.q:
				if pb2 == nil {
					stop = true
					break drain
				}
				if err := writeFrame(pb2); err != nil {
					fail(err)
					return
				}
			default:
				break drain
			}
		}
		if err := bw.Flush(); err != nil {
			fail(err)
			return
		}
		if stop {
			return
		}
	}
	bw.Flush()
}

// acceptLoop accepts inbound connections and spawns a reader per
// connection.
func (t *netTransport) acceptLoop() {
	defer t.readers.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		t.mu.Lock()
		if t.closing.Load() {
			t.mu.Unlock()
			conn.Close()
			continue
		}
		t.accepted[conn] = struct{}{}
		t.mu.Unlock()
		t.readers.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop decodes frames from one inbound connection and delivers them.
// The sending process identifies itself with a hello frame before
// anything else; an EOF after its bye (or during our own shutdown) is a
// clean close, anything else marks the peer's ranks failed.
func (t *netTransport) readLoop(conn net.Conn) {
	defer t.readers.Done()
	defer func() {
		t.mu.Lock()
		delete(t.accepted, conn)
		t.mu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	peer := -1
	for {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			t.readerGone(peer, err)
			return
		}
		if n > maxFrame {
			t.readerGone(peer, fmt.Errorf("%w: %d-byte frame", wire.ErrOversize, n))
			return
		}
		pb := getFrameBuf(int(n))
		buf := (*pb)[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			putFrameBuf(pb)
			t.readerGone(peer, err)
			return
		}
		h, payload, rest, err := wire.DecodeFrame(buf)
		if err != nil || len(rest) != 0 {
			putFrameBuf(pb)
			if err == nil {
				err = fmt.Errorf("%w: %d trailing bytes", wire.ErrBadField, len(rest))
			}
			t.readerGone(peer, err)
			return
		}
		// The codec only bounds Proc syntactically (it cannot know the
		// process map); an out-of-range id from a malformed or hostile
		// frame must tear the connection down with a typed error here —
		// never reach a Procs index and panic.
		if h.Proc >= len(t.cfg.Procs) {
			putFrameBuf(pb)
			t.readerGone(peer, fmt.Errorf("%w: process id %d outside [0,%d)",
				wire.ErrBadField, h.Proc, len(t.cfg.Procs)))
			return
		}
		switch h.Kind {
		case wire.KindHello:
			peer = h.Proc
		case wire.KindBye:
			t.mu.Lock()
			t.departed[h.Proc] = true
			t.mu.Unlock()
			peer = h.Proc
		case wire.KindFail:
			t.w.fail(fmt.Errorf("mpi: %w: process %d: %s", ErrRemoteFailed, h.Proc, string(payload)))
		case wire.KindData:
			err = t.deliverFrame(h, payload)
		case wire.KindHandoff:
			err = t.deliverHandoff(h, payload)
		}
		putFrameBuf(pb)
		if err != nil {
			t.readerGone(peer, err)
			return
		}
	}
}

// deliverFrame reconstructs a typed message from a decoded data frame and
// hands it to the destination mailbox. The payload lands in a wire drawn
// from the world's size-bucketed pools, released at the single point the
// message is consumed or discarded — exactly the gathered-send ownership
// discipline, so pool accounting balances across the transport.
func (t *netTransport) deliverFrame(h wire.Header, payload []byte) error {
	if h.Dst < 0 || h.Dst >= t.w.size || t.rankProc[h.Dst] != t.cfg.Self {
		return fmt.Errorf("%w: data frame for rank %d not hosted here", wire.ErrBadField, h.Dst)
	}
	if h.SrcWorld < 0 || h.SrcWorld >= t.w.size {
		return fmt.Errorf("%w: src world rank %d", wire.ErrBadField, h.SrcWorld)
	}
	et, err := wire.ElemTypeOf(h.Elem)
	if err != nil {
		return err
	}
	v, _ := getWireReflect(t.w, et, h.Elems)
	if h.PayloadLen > 0 {
		dst := unsafe.Slice((*byte)(v.UnsafePointer()), h.PayloadLen)
		copy(dst, payload)
	}
	m := &message{
		ctx:      h.Ctx,
		epoch:    h.Epoch,
		src:      h.Src,
		tag:      h.Tag,
		payload:  v.Interface(),
		elems:    h.Elems,
		bytes:    h.PayloadLen,
		srcWorld: h.SrcWorld,
		sseq:     h.Sseq,
		release:  releaseWireAny,
	}
	t.w.ranks[h.Dst].box.deliver(m)
	if t.rankProc[h.SrcWorld] == t.cfg.Self {
		t.inflight.Add(-1) // self-loop frame delivered
	}
	return nil
}

// readerGone handles a reader's exit: quiet when we are shutting down or
// the peer said goodbye, otherwise the peer process is gone and every
// rank it hosts is marked failed, poisoning pending receives ULFM-style.
func (t *netTransport) readerGone(peer int, cause error) {
	if t.closing.Load() {
		return
	}
	if peer >= 0 {
		t.mu.Lock()
		gone := t.departed[peer]
		t.mu.Unlock()
		if gone {
			return
		}
	}
	if peer < 0 {
		return // connection died before identifying itself; nothing to mark
	}
	t.procDown(peer, cause)
}

// procDown marks every rank hosted by a dead peer process failed.
func (t *netTransport) procDown(proc int, cause error) {
	if t.closing.Load() {
		return
	}
	if proc == t.cfg.Self {
		// The self-link carries every frame of a force-remote world;
		// losing it strands in-flight frames (and parked handoffs) that no
		// reader will ever deliver. There is no peer to mark dead — fail
		// the world so the run ends with the cause instead of hanging.
		t.w.fail(fmt.Errorf("mpi: transport self-link failed: %w", cause))
		return
	}
	for _, r := range t.cfg.Procs[proc].Ranks {
		t.w.markDead(r, &RankFailedError{
			Rank: r,
			Op:   fmt.Sprintf("transport: process %d unreachable: %v", proc, cause),
		})
	}
}

// NoteFailure implements Transport: broadcast the primary failure to
// every peer process so their worlds abort with the cause. Failures that
// themselves arrived from a peer are not re-broadcast (no failure
// ping-pong).
func (t *netTransport) NoteFailure(err error) {
	if errors.Is(err, ErrRemoteFailed) || t.closing.Load() {
		return
	}
	if !t.failSent.CompareAndSwap(false, true) {
		return
	}
	detail := err.Error()
	for proc := range t.cfg.Procs {
		if proc == t.cfg.Self {
			continue
		}
		pb := getFrameBuf(len(detail) + 16)
		b, herr := wire.AppendHeader(*pb, wire.Header{
			Kind: wire.KindFail, Proc: t.cfg.Self, PayloadLen: len(detail),
		})
		if herr != nil {
			putFrameBuf(pb)
			continue
		}
		*pb = append(b, detail...)
		_ = t.queueFrame(proc, pb) // best effort
	}
}

// closeDrainTimeout bounds the writer drain during Close: a peer that has
// stopped reading can wedge a writer against a full socket buffer, and
// shutdown must not hang behind it.
const closeDrainTimeout = 5 * time.Second

// Close implements Transport: announce departure, flush writers, release
// sockets. Called after the local ranks have finished, so every frame the
// protocol needed has been queued.
func (t *netTransport) Close() error {
	// Shutdown starts now: connection teardown below must read as clean
	// close everywhere (readerGone, procDown), not as peer failure.
	t.closing.Store(true)
	// Bye to every connected peer, then close the queues; writers drain
	// and flush before exiting. Every wait shares one deadline — on
	// timeout the connection is forced closed, which errors the blocked
	// write and the writer exits through its failure path.
	t.mu.Lock()
	links := make([]*peerLink, 0, len(t.links))
	for _, l := range t.links {
		links = append(links, l)
	}
	t.mu.Unlock()
	deadline := time.Now().Add(closeDrainTimeout)
	for _, l := range links {
		pb := getFrameBuf(16)
		if b, err := wire.AppendHeader(*pb, wire.Header{Kind: wire.KindBye, Proc: t.cfg.Self}); err == nil {
			*pb = b
			select {
			case l.q <- pb:
			case <-l.done:
				putFrameBuf(pb)
			case <-time.After(time.Until(deadline)):
				putFrameBuf(pb)
			}
		} else {
			putFrameBuf(pb)
		}
	}
	for _, l := range links {
		select {
		case l.q <- nil: // sentinel: writer flushes and exits
		case <-l.done:
		case <-time.After(time.Until(deadline)):
		}
	}
	for _, l := range links {
		select {
		case <-l.done:
		case <-time.After(time.Until(deadline)):
			l.conn.Close() // unblock a wedged write; the writer fails out
			<-l.done
		}
	}
	t.ln.Close()
	for _, l := range links {
		l.conn.Close()
	}
	t.mu.Lock()
	for conn := range t.accepted {
		conn.Close()
	}
	t.mu.Unlock()
	t.readers.Wait()
	return nil
}
