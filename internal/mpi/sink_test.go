package mpi

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// TestCompletionSinkDrainAndWake covers the sink's token plumbing: a
// receive added before its message arrives posts its token on match, a
// send and an injected Post are drained immediately, Pending mirrors the
// queue without the lock, and Park consumes the wake the posts left.
func TestCompletionSinkDrainAndWake(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 1 {
			if _, err := RecvSlice(c, make([]int, 1), 0, 1); err != nil {
				return err
			}
			return SendSlice(c, []int{42}, 0, 2)
		}
		s := NewCompletionSink(c, 4)
		buf := make([]int, 1)
		r, err := Irecv(c, buf, contiguousN(1), 1, 2)
		if err != nil {
			return err
		}
		s.Add(r, 7)
		snd, err := Isend(c, []int{9}, contiguousN(1), 1, 1)
		if err != nil {
			return err
		}
		s.Add(snd, 5) // sends complete at post time: queued immediately
		s.Post(3)
		if got := s.Pending(); got < 2 {
			return fmt.Errorf("Pending() = %d before drain, want >= 2", got)
		}
		seen := map[int]bool{}
		for len(seen) < 3 {
			for _, tok := range s.TryDrain(nil) {
				seen[tok] = true
			}
			if len(seen) == 3 {
				break
			}
			if _, err := s.Park(true); err != nil {
				return err
			}
		}
		if s.Pending() != 0 {
			return fmt.Errorf("Pending() = %d after full drain, want 0", s.Pending())
		}
		if !seen[7] || !seen[5] || !seen[3] {
			return fmt.Errorf("drained tokens = %v, want {3,5,7}", seen)
		}
		if _, err := r.Wait(); err != nil {
			return err
		}
		if buf[0] != 42 {
			return fmt.Errorf("payload = %d, want 42", buf[0])
		}
		_, err = snd.Wait()
		return err
	})
}

// TestCompletionSinkGated covers the countdown gate: three receives
// attached under one token post it exactly once, when the last of them
// completes — the caller's bias keeps the gate from firing while the
// group is still being attached.
func TestCompletionSinkGated(t *testing.T) {
	const n = 3
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 1 {
			if _, err := RecvSlice(c, make([]int, 1), 0, 9); err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				if err := SendSlice(c, []int{i}, 0, i); err != nil {
					return err
				}
			}
			return nil
		}
		s := NewCompletionSink(c, 4)
		var gate atomic.Int32
		gate.Store(1) // bias: the gate cannot fire mid-attach
		bufs := make([][]int, n)
		reqs := make([]*Request, n)
		for i := 0; i < n; i++ {
			bufs[i] = make([]int, 1)
			r, err := Irecv(c, bufs[i], contiguousN(1), 1, i)
			if err != nil {
				return err
			}
			reqs[i] = r
			s.AddGated(r, 11, &gate)
		}
		// All receives armed before any message exists: release the sender.
		if err := SendSlice(c, []int{1}, 1, 9); err != nil {
			return err
		}
		if gate.Add(-1) == 0 {
			s.Post(11)
		}
		var toks []int
		for len(toks) == 0 {
			if toks = s.TryDrain(toks); len(toks) > 0 {
				break
			}
			if _, err := s.Park(true); err != nil {
				return err
			}
		}
		if len(toks) != 1 || toks[0] != 11 {
			return fmt.Errorf("gated drain = %v, want exactly [11]", toks)
		}
		for i, r := range reqs {
			if _, err := r.Wait(); err != nil {
				return err
			}
			if bufs[i][0] != i {
				return fmt.Errorf("payload %d = %d", i, bufs[i][0])
			}
		}
		if s.Pending() != 0 {
			return fmt.Errorf("gate posted more than once: %d pending", s.Pending())
		}
		return nil
	})
}
