package mpi

import (
	"fmt"
)

// Fault-tolerance primitives in the style of ULFM (User-Level Failure
// Mitigation, the MPI Forum's fault-tolerance proposal): Revoke poisons a
// communicator whose collective failed so every member learns of the
// failure, Agree reaches agreement among the survivors, and Shrink
// rebuilds a smaller communicator without the failed ranks. The runtime's
// in-process failure detector is perfect (markDead is globally visible
// the instant a rank crashes), which the protocols exploit: they assume
// failures do not occur concurrently with the recovery step itself and
// report — rather than mask — ones that do.

// ftCtxBit separates recovery-protocol traffic from user and collective
// traffic. The shadow context is never revoked, so Agree and Shrink keep
// working on a revoked communicator (as ULFM requires).
const ftCtxBit = int64(1) << 61

// Internal tags of the recovery protocols.
const (
	agreeTag  = 40
	shrinkTag = 41
)

// ft returns the shadow communicator in the recovery context.
func (c *Comm) ft() *Comm {
	cc := *c
	cc.ctx ^= ftCtxBit
	return &cc
}

// FailedRanks returns the sorted world ranks that have failed so far —
// the runtime's (perfect) failure detector.
func (c *Comm) FailedRanks() []int { return c.w.deadRanks() }

// liveMembers returns the communicator ranks whose process is alive, in
// rank order.
func (c *Comm) liveMembers() []int {
	live := make([]int, 0, c.size)
	for r := 0; r < c.size; r++ {
		if !c.w.isDead(c.worldRank(r)) {
			live = append(live, r)
		}
	}
	return live
}

// Revoke marks the communicator revoked world-wide, like ULFM's
// MPI_Comm_revoke: every pending and future point-to-point or collective
// operation on it — on every member — fails with ErrRevoked. A member
// that observed a RankFailedError from a collective calls Revoke so the
// members that did not talk to the failed rank stop waiting too; all
// members can then rebuild with Shrink. Idempotent, non-collective.
func (c *Comm) Revoke() {
	c.w.revokeCtxs(c.ctx, c.ctx^collCtxBit)
}

// Agree reaches agreement on the bitwise AND of flag across the
// communicator's live members, excluding ranks that failed before the
// call — ULFM's MPIX_Comm_agree, the decision primitive applications use
// after a failure ("did everyone finish the checkpoint?"). A failure
// concurrent with the agreement is reported as an error instead of
// hanging; the caller can Shrink and retry.
func (c *Comm) Agree(flag int) (int, error) {
	live := c.liveMembers()
	if len(live) == 0 {
		return 0, fmt.Errorf("mpi: Agree: no live members")
	}
	cc := c.ft()
	coord := live[0]
	if c.rank != coord {
		if err := SendSlice(cc, []int64{int64(flag)}, coord, agreeTag); err != nil {
			return 0, fmt.Errorf("mpi: Agree: coordinator %d unreachable: %w", coord, err)
		}
		buf := make([]int64, 1)
		if _, err := RecvSlice(cc, buf, coord, agreeTag); err != nil {
			return 0, fmt.Errorf("mpi: Agree: lost coordinator %d: %w", coord, err)
		}
		return int(buf[0]), nil
	}
	acc := flag
	for _, r := range live[1:] {
		buf := make([]int64, 1)
		if _, err := RecvSlice(cc, buf, r, agreeTag); err != nil {
			if IsRankFailed(err) {
				// The member died mid-agreement: exclude its contribution.
				continue
			}
			return 0, err
		}
		acc &= int(buf[0])
	}
	for _, r := range live[1:] {
		if err := SendSlice(cc, []int64{int64(acc)}, r, agreeTag); err != nil && !IsRankFailed(err) {
			return 0, err
		}
	}
	return acc, nil
}

// Shrink returns a new communicator containing the surviving members of
// c, renumbered contiguously in old rank order — ULFM's
// MPI_Comm_shrink, the rebuild step after a failure. Collective over the
// live members. The lowest live rank coordinates: it allocates the new
// context and distributes it with the authoritative member list, so all
// survivors agree on the membership even if their failure views raced.
func (c *Comm) Shrink() (*Comm, error) {
	live := c.liveMembers()
	if len(live) == 0 {
		return nil, fmt.Errorf("mpi: Shrink: no live members")
	}
	cc := c.ft()
	coord := live[0]
	msg := make([]int64, 2+c.size)
	if c.rank == coord {
		msg[0] = c.w.nextCtxBase(1)
		msg[1] = int64(len(live))
		for i, r := range live {
			msg[2+i] = int64(c.worldRank(r))
		}
		for _, r := range live[1:] {
			if err := SendSlice(cc, msg, r, shrinkTag); err != nil && !IsRankFailed(err) {
				return nil, err
			}
		}
	} else {
		if _, err := RecvSlice(cc, msg, coord, shrinkTag); err != nil {
			return nil, fmt.Errorf("mpi: Shrink: lost coordinator %d: %w", coord, err)
		}
	}
	n := int(msg[1])
	group := make([]int, n)
	myNew := -1
	myWorld := c.worldRank(c.rank)
	for i := 0; i < n; i++ {
		group[i] = int(msg[2+i])
		if group[i] == myWorld {
			myNew = i
		}
	}
	if myNew < 0 {
		return nil, fmt.Errorf("mpi: Shrink: coordinator %d's member list excludes this rank", coord)
	}
	return &Comm{w: c.w, rs: c.rs, rank: myNew, size: n, ctx: msg[0], group: group}, nil
}
