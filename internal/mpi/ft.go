package mpi

import (
	"errors"
	"fmt"

	"cartcc/internal/trace"
)

// Fault-tolerance primitives in the style of ULFM (User-Level Failure
// Mitigation, the MPI Forum's fault-tolerance proposal): Revoke poisons a
// communicator whose collective failed so every member learns of the
// failure, Agree reaches agreement among the survivors, and Shrink
// rebuilds a smaller communicator without the failed ranks. The runtime's
// in-process failure detector is perfect (markDead is globally visible
// the instant a rank crashes), which the protocols exploit: they assume
// failures do not occur concurrently with the recovery step itself and
// report — rather than mask — ones that do.

// ftCtxBit separates recovery-protocol traffic from user and collective
// traffic. The shadow context is never revoked, so Agree and Shrink keep
// working on a revoked communicator (as ULFM requires).
const ftCtxBit = int64(1) << 61

// Internal tags of the recovery protocols.
const (
	agreeTag  = 40
	shrinkTag = 41
)

// ft returns the shadow communicator in the recovery context.
func (c *Comm) ft() *Comm {
	cc := *c
	cc.ctx ^= ftCtxBit
	return &cc
}

// FailedRanks returns the sorted world ranks that have failed so far —
// the runtime's (perfect) failure detector.
func (c *Comm) FailedRanks() []int { return c.w.deadRanks() }

// liveMembers returns the communicator ranks whose process is alive, in
// rank order.
func (c *Comm) liveMembers() []int {
	live := make([]int, 0, c.size)
	for r := 0; r < c.size; r++ {
		if !c.w.isDead(c.worldRank(r)) {
			live = append(live, r)
		}
	}
	return live
}

// Revoke marks the communicator revoked world-wide, like ULFM's
// MPI_Comm_revoke: every pending and future point-to-point or collective
// operation on it — on every member — fails with ErrRevoked. A member
// that observed a RankFailedError from a collective calls Revoke so the
// members that did not talk to the failed rank stop waiting too; all
// members can then rebuild with Shrink. Idempotent, non-collective.
func (c *Comm) Revoke() {
	c.w.revokeCtxs(c.ctx, c.ctx^collCtxBit)
}

// RevokeFull revokes the communicator including its fault-tolerance
// shadow contexts. Normal Revoke deliberately spares the ft contexts so
// Agree and Shrink keep working on a revoked communicator; RevokeFull is
// for abandoning a *candidate* communicator mid-recovery — peers that are
// still blocked inside its Agree or Shrink must be poisoned out so they
// join the next consensus round instead of waiting forever.
func (c *Comm) RevokeFull() {
	c.w.revokeCtxs(c.ctx, c.ctx^collCtxBit, c.ctx^ftCtxBit, c.ctx^ftCtxBit^collCtxBit)
}

// peerLost reports whether err means "that member's process died" — the
// only failure the consensus primitives may tolerate by excluding the
// member and carrying on. The distinction from a bare IsRankFailed check
// matters once a run is torn down: abort cascades wrap the primary
// RankFailedError, so without the ErrAborted exclusion a coordinator in an
// aborted run would misread every peer's cascade as a member death, skip
// every contribution, and "agree" on its own flag alone.
func peerLost(err error) bool {
	return IsRankFailed(err) && !errors.Is(err, ErrAborted)
}

// Agree reaches agreement on the bitwise AND of flag across the
// communicator's live members, excluding ranks that failed before the
// call — ULFM's MPIX_Comm_agree, the decision primitive applications use
// after a failure ("did everyone finish the checkpoint?"). A failure
// concurrent with the agreement is reported as an error instead of
// hanging; the caller can Shrink and retry.
func (c *Comm) Agree(flag int) (int, error) {
	live := c.liveMembers()
	if len(live) == 0 {
		return 0, fmt.Errorf("mpi: Agree: no live members")
	}
	cc := c.ft()
	coord := live[0]
	if c.rank != coord {
		if err := SendSlice(cc, []int64{int64(flag)}, coord, agreeTag); err != nil {
			return 0, fmt.Errorf("mpi: Agree: coordinator %d unreachable: %w", coord, err)
		}
		buf := make([]int64, 1)
		if _, err := RecvSlice(cc, buf, coord, agreeTag); err != nil {
			return 0, fmt.Errorf("mpi: Agree: lost coordinator %d: %w", coord, err)
		}
		return int(buf[0]), nil
	}
	acc := flag
	for _, r := range live[1:] {
		buf := make([]int64, 1)
		if _, err := RecvSlice(cc, buf, r, agreeTag); err != nil {
			if peerLost(err) {
				// The member died mid-agreement: exclude its contribution.
				continue
			}
			return 0, err
		}
		acc &= int(buf[0])
	}
	for _, r := range live[1:] {
		if err := SendSlice(cc, []int64{int64(acc)}, r, agreeTag); err != nil && !peerLost(err) {
			return 0, err
		}
	}
	return acc, nil
}

// Shrink returns a new communicator containing the surviving members of
// c, renumbered contiguously in old rank order — ULFM's
// MPI_Comm_shrink, the rebuild step after a failure. Collective over the
// live members. The lowest live rank coordinates: it allocates the new
// context and distributes it with the authoritative member list, so all
// survivors agree on the membership even if their failure views raced.
func (c *Comm) Shrink() (*Comm, error) {
	live := c.liveMembers()
	if len(live) == 0 {
		return nil, fmt.Errorf("mpi: Shrink: no live members")
	}
	cc := c.ft()
	coord := live[0]
	// Wire layout: [new ctx, new epoch, member count, members (world ranks)...]
	msg := make([]int64, 3+c.size)
	if c.rank == coord {
		msg[0] = c.w.nextCtxBase(1)
		msg[1] = c.w.epochSeq.Add(1)
		msg[2] = int64(len(live))
		for i, r := range live {
			msg[3+i] = int64(c.worldRank(r))
		}
		for _, r := range live[1:] {
			if err := SendSlice(cc, msg, r, shrinkTag); err != nil && !peerLost(err) {
				return nil, err
			}
		}
	} else {
		if _, err := RecvSlice(cc, msg, coord, shrinkTag); err != nil {
			return nil, fmt.Errorf("mpi: Shrink: lost coordinator %d: %w", coord, err)
		}
	}
	n := int(msg[2])
	group := make([]int, n)
	myNew := -1
	myWorld := c.worldRank(c.rank)
	for i := 0; i < n; i++ {
		group[i] = int(msg[3+i])
		if group[i] == myWorld {
			myNew = i
		}
	}
	if myNew < 0 {
		return nil, fmt.Errorf("mpi: Shrink: coordinator %d's member list excludes this rank", coord)
	}
	c.w.flight.Record(c.rs.rank, trace.FlightEpochBump, coord, 0, 0, msg[1])
	return &Comm{w: c.w, rs: c.rs, rank: myNew, size: n, ctx: msg[0], epoch: msg[1], group: group}, nil
}

// RecoveryInfo reports what a successful RecoverShrink did.
type RecoveryInfo struct {
	// Epoch is the recovered communicator's epoch.
	Epoch int64
	// Dead lists the world ranks of c's members missing from the new
	// communicator — the agreed dead set.
	Dead []int
	// Attempts counts consensus rounds, including the successful one.
	Attempts int
	// Drained counts stale-epoch messages discarded from this rank's
	// mailbox when it advanced to the new epoch.
	Drained int
}

// ErrRecoveryFailed marks a recovery that exhausted its consensus
// attempts without reaching a stable survivor set. Match with errors.Is.
var ErrRecoveryFailed = errors.New("recovery failed")

// RecoverShrink drives Shrink to a *stable* shrunk communicator: one whose
// membership all survivors agree on and which contains no rank that died
// during the consensus itself. Each round shrinks, checks the candidate's
// members against the failure detector, and confirms with Agree; any
// anomaly — a death during the round, a stale candidate, a lost
// coordinator — fully revokes the candidate (so peers still blocked inside
// its protocol are poisoned out too) and retries. Rounds are bounded by
// the membership size: every retry is triggered by a new death or a newly
// revoked candidate, both finite.
//
// On success the calling rank's mailbox is advanced to the new epoch:
// stale messages are drained, their pooled buffers reclaimed, and the
// epoch floor ensures late stragglers from the old epoch are discarded on
// arrival. The caller must not post further receives on old-epoch
// communicators after this returns.
func (c *Comm) RecoverShrink() (*Comm, RecoveryInfo, error) {
	info := RecoveryInfo{}
	maxAttempts := 2*c.size + 4
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		info.Attempts = attempt
		nc, err := c.Shrink()
		if err != nil {
			// A death or revocation mid-round: the next round's liveMembers
			// excludes the new dead. Anything else — including an abort
			// cascade from a torn-down run, which wraps the primary rank
			// failure — is terminal; retrying consensus on a dead run only
			// burns the attempt budget.
			if (IsRankFailed(err) || errors.Is(err, ErrRevoked)) && !errors.Is(err, ErrAborted) {
				lastErr = err
				continue
			}
			return nil, info, err
		}
		stable := 1
		for r := 0; r < nc.size; r++ {
			if nc.w.isDead(nc.worldRank(r)) {
				stable = 0
				break
			}
		}
		flag, aerr := nc.Agree(stable)
		if aerr != nil || flag != 1 {
			// The candidate is stale (contains a dead rank) or the
			// confirmation itself failed. Abandon it loudly: a full revoke
			// poisons peers still blocked in the candidate's Agree so they
			// rejoin the next round.
			nc.RevokeFull()
			if aerr != nil {
				lastErr = aerr
			} else {
				lastErr = fmt.Errorf("mpi: RecoverShrink: candidate membership contained a failed rank")
			}
			continue
		}
		info.Epoch = nc.epoch
		for r := 0; r < c.size; r++ {
			w := c.worldRank(r)
			found := false
			for _, g := range nc.group {
				if g == w {
					found = true
					break
				}
			}
			if !found {
				info.Dead = append(info.Dead, w)
			}
		}
		info.Drained = c.rs.box.drainBelowEpoch(nc.epoch)
		if met := c.rs.met; met != nil {
			met.shrinks.Inc()
			met.epochGauge.SetMax(nc.epoch)
		}
		c.w.flight.Record(c.rs.rank, trace.FlightRecovery, -1, 0, int64(info.Drained), int64(attempt))
		return nc, info, nil
	}
	return nil, info, fmt.Errorf("mpi: RecoverShrink: no stable membership after %d rounds (last: %v): %w",
		maxAttempts, lastErr, ErrRecoveryFailed)
}
