package mpi

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestWaitSetCompletionOrder posts two receives from peers that send at
// staggered delays and checks that Waitsome reports each owner as its
// message lands, without blocking past the first completion.
func TestWaitSetCompletionOrder(t *testing.T) {
	run(t, 3, func(c *Comm) error {
		switch c.Rank() {
		case 1:
			return SendSlice(c, []int{11}, 0, 0)
		case 2:
			time.Sleep(100 * time.Millisecond)
			return SendSlice(c, []int{22}, 0, 0)
		}
		b1 := make([]int, 1)
		b2 := make([]int, 1)
		r1, err := Irecv(c, b1, contiguousN(1), 1, 0)
		if err != nil {
			return err
		}
		r2, err := Irecv(c, b2, contiguousN(1), 2, 0)
		if err != nil {
			return err
		}
		s := NewWaitSet(c, 2)
		s.Add(r1, 100)
		s.Add(r2, 200)
		var order []int
		for s.Outstanding() > 0 || len(order) < 2 {
			ready, err := s.Waitsome()
			if err != nil {
				return err
			}
			if ready == nil {
				break
			}
			order = append(order, ready...)
		}
		if len(order) != 2 || order[0] != 100 || order[1] != 200 {
			return fmt.Errorf("completion order = %v, want [100 200]", order)
		}
		if _, err := r1.Wait(); err != nil {
			return err
		}
		if _, err := r2.Wait(); err != nil {
			return err
		}
		if b1[0] != 11 || b2[0] != 22 {
			return fmt.Errorf("payloads = %d %d", b1[0], b2[0])
		}
		return nil
	})
}

// TestWaitSetImmediateReady covers the no-notification paths: sends, nil,
// and already-finished requests are reported on the first Waitsome without
// any channel traffic.
func TestWaitSetImmediateReady(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 1 {
			_, err := RecvSlice(c, make([]int, 1), 0, 0)
			return err
		}
		sreq, err := Isend(c, []int{1}, contiguousN(1), 1, 0)
		if err != nil {
			return err
		}
		s := NewWaitSet(c, 1)
		s.Add(sreq, 7)
		s.Add(nil, 8)
		ready, err := s.Waitsome()
		if err != nil {
			return err
		}
		if len(ready) != 2 || ready[0] != 7 || ready[1] != 8 {
			return fmt.Errorf("ready = %v, want [7 8]", ready)
		}
		if got, err := s.Waitsome(); err != nil || got != nil {
			return fmt.Errorf("empty set Waitsome = %v, %v", got, err)
		}
		_, err = sreq.Wait()
		return err
	})
}

// TestWaitSetAddAfterMatch adds a receive whose message was already matched
// before Add: attachNotify must refuse (delivered), and the owner must come
// back through the readyNow path instead of a notification.
func TestWaitSetAddAfterMatch(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 1 {
			return SendSlice(c, []int{5}, 0, 0)
		}
		buf := make([]int, 1)
		req, err := Irecv(c, buf, contiguousN(1), 1, 0)
		if err != nil {
			return err
		}
		// Wait until the match has happened (delivered flag set by the
		// matcher) before attaching.
		deadline := time.Now().Add(5 * time.Second)
		for !req.pending.delivered.Load() {
			if time.Now().After(deadline) {
				return fmt.Errorf("message never matched")
			}
			time.Sleep(time.Millisecond)
		}
		s := NewWaitSet(c, 1)
		s.Add(req, 42)
		if s.Outstanding() != 0 {
			return fmt.Errorf("outstanding = %d after late add", s.Outstanding())
		}
		ready, err := s.Waitsome()
		if err != nil {
			return err
		}
		if len(ready) != 1 || ready[0] != 42 {
			return fmt.Errorf("ready = %v, want [42]", ready)
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		if buf[0] != 5 {
			return fmt.Errorf("payload = %d", buf[0])
		}
		return nil
	})
}

// TestWaitSetAggregate attaches an aggregate of two receives under one
// owner: the owner is signaled per child, and the aggregate tests done only
// after both children completed.
func TestWaitSetAggregate(t *testing.T) {
	run(t, 3, func(c *Comm) error {
		if c.Rank() != 0 {
			time.Sleep(time.Duration(c.Rank()) * 30 * time.Millisecond)
			return SendSlice(c, []int{c.Rank()}, 0, 0)
		}
		b1 := make([]int, 1)
		b2 := make([]int, 1)
		r1, err := Irecv(c, b1, contiguousN(1), 1, 0)
		if err != nil {
			return err
		}
		r2, err := Irecv(c, b2, contiguousN(1), 2, 0)
		if err != nil {
			return err
		}
		agg := aggregate(c, []*Request{r1, r2})
		s := NewWaitSet(c, 2)
		s.Add(agg, 9)
		wakes := 0
		for {
			ready, err := s.Waitsome()
			if err != nil {
				return err
			}
			if ready == nil {
				return fmt.Errorf("set drained before aggregate completed")
			}
			for range ready {
				wakes++
			}
			if done, _, err := agg.Test(); done {
				if err != nil {
					return err
				}
				if wakes != 2 {
					return fmt.Errorf("aggregate owner signaled %d times, want 2", wakes)
				}
				if b1[0] != 1 || b2[0] != 2 {
					return fmt.Errorf("payloads = %d %d", b1[0], b2[0])
				}
				return nil
			}
		}
	})
}

// TestWaitSetPoisonOnCrash checks the failure path: a peer that dies while
// we block in Waitsome must poison the pending receive through the same
// notify-then-ready handover, so Waitsome wakes and the request's Wait
// surfaces the typed peer-failure error.
func TestWaitSetPoisonOnCrash(t *testing.T) {
	boom := errors.New("boom")
	err := Run(Config{
		Procs:   2,
		Timeout: 20 * time.Second,
		Faults:  &FaultPlan{Crashes: []Crash{{Rank: 1, AtOp: 2}}},
	}, func(c *Comm) error {
		if c.Rank() == 1 {
			// Burn ops until the injected crash fires.
			for i := 0; i < 100; i++ {
				c.rs.opTick()
			}
			return boom
		}
		buf := make([]int, 1)
		req, err := Irecv(c, buf, contiguousN(1), 1, 0)
		if err != nil {
			return err
		}
		s := NewWaitSet(c, 1)
		s.Add(req, 0)
		if _, werr := s.Waitsome(); werr != nil {
			// Abort raced ahead of the poison: still a detected failure.
			return werr
		}
		_, werr := req.Wait()
		if werr == nil {
			return fmt.Errorf("receive from crashed rank succeeded")
		}
		return werr
	})
	if err == nil {
		t.Fatal("run with crashed rank succeeded")
	}
	if !IsRankFailed(err) && !errors.Is(err, ErrAborted) && !errors.Is(err, boom) {
		t.Fatalf("error = %v, want process-failure or abort", err)
	}
}

// TestWaitSetReset reuses one set across two executions and checks that no
// stale notification from the first leaks into the second.
func TestWaitSetReset(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 1 {
			for i := 0; i < 2; i++ {
				if err := SendSlice(c, []int{i + 1}, 0, 0); err != nil {
					return err
				}
			}
			return nil
		}
		s := NewWaitSet(c, 1)
		buf := make([]int, 1)
		for i := 0; i < 2; i++ {
			s.Reset()
			req, err := Irecv(c, buf, contiguousN(1), 1, 0)
			if err != nil {
				return err
			}
			s.Add(req, i)
			ready, err := s.Waitsome()
			if err != nil {
				return err
			}
			if len(ready) != 1 || ready[0] != i {
				return fmt.Errorf("iteration %d: ready = %v", i, ready)
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
			if buf[0] != i+1 {
				return fmt.Errorf("iteration %d: payload = %d", i, buf[0])
			}
		}
		return nil
	})
}
