package mpi

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestWaitSetCompletionOrder posts two receives from peers that send in a
// forced order and checks that Waitsome reports each owner as its message
// lands, without blocking past the first completion. The stagger is
// channel-synchronized through the runtime itself — rank 2 sends only
// after rank 0 has observed rank 1's completion — so the order assertion
// cannot race the scheduler (the old version slept 100ms and flaked when
// a loaded machine delayed rank 1's send past it).
func TestWaitSetCompletionOrder(t *testing.T) {
	run(t, 3, func(c *Comm) error {
		switch c.Rank() {
		case 1:
			return SendSlice(c, []int{11}, 0, 0)
		case 2:
			if _, err := RecvSlice(c, make([]int, 1), 0, 5); err != nil {
				return err
			}
			return SendSlice(c, []int{22}, 0, 0)
		}
		b1 := make([]int, 1)
		b2 := make([]int, 1)
		r1, err := Irecv(c, b1, contiguousN(1), 1, 0)
		if err != nil {
			return err
		}
		r2, err := Irecv(c, b2, contiguousN(1), 2, 0)
		if err != nil {
			return err
		}
		s := NewWaitSet(c, 2)
		s.Add(r1, 100)
		s.Add(r2, 200)
		var order []int
		for s.Outstanding() > 0 || len(order) < 2 {
			ready, err := s.Waitsome()
			if err != nil {
				return err
			}
			if ready == nil {
				break
			}
			for _, o := range ready {
				order = append(order, o)
				if o == 100 {
					// Rank 1's completion observed: release rank 2's send.
					if err := SendSlice(c, []int{1}, 2, 5); err != nil {
						return err
					}
				}
			}
		}
		if len(order) != 2 || order[0] != 100 || order[1] != 200 {
			return fmt.Errorf("completion order = %v, want [100 200]", order)
		}
		if _, err := r1.Wait(); err != nil {
			return err
		}
		if _, err := r2.Wait(); err != nil {
			return err
		}
		if b1[0] != 11 || b2[0] != 22 {
			return fmt.Errorf("payloads = %d %d", b1[0], b2[0])
		}
		return nil
	})
}

// TestWaitSetImmediateReady covers the no-notification paths: sends, nil,
// and already-finished requests are reported on the first Waitsome without
// any channel traffic.
func TestWaitSetImmediateReady(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 1 {
			_, err := RecvSlice(c, make([]int, 1), 0, 0)
			return err
		}
		sreq, err := Isend(c, []int{1}, contiguousN(1), 1, 0)
		if err != nil {
			return err
		}
		s := NewWaitSet(c, 1)
		s.Add(sreq, 7)
		s.Add(nil, 8)
		ready, err := s.Waitsome()
		if err != nil {
			return err
		}
		if len(ready) != 2 || ready[0] != 7 || ready[1] != 8 {
			return fmt.Errorf("ready = %v, want [7 8]", ready)
		}
		if got, err := s.Waitsome(); err != nil || got != nil {
			return fmt.Errorf("empty set Waitsome = %v, %v", got, err)
		}
		_, err = sreq.Wait()
		return err
	})
}

// TestWaitSetAddAfterMatch adds a receive whose message was already matched
// before Add: attachNotify must refuse (delivered), and the owner must come
// back through the readyNow path instead of a notification.
func TestWaitSetAddAfterMatch(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 1 {
			return SendSlice(c, []int{5}, 0, 0)
		}
		buf := make([]int, 1)
		req, err := Irecv(c, buf, contiguousN(1), 1, 0)
		if err != nil {
			return err
		}
		// Wait until the match has happened (delivered flag set by the
		// matcher) before attaching.
		deadline := time.Now().Add(5 * time.Second)
		for !req.pending.delivered.Load() {
			if time.Now().After(deadline) {
				return fmt.Errorf("message never matched")
			}
			time.Sleep(time.Millisecond)
		}
		s := NewWaitSet(c, 1)
		s.Add(req, 42)
		if s.Outstanding() != 0 {
			return fmt.Errorf("outstanding = %d after late add", s.Outstanding())
		}
		ready, err := s.Waitsome()
		if err != nil {
			return err
		}
		if len(ready) != 1 || ready[0] != 42 {
			return fmt.Errorf("ready = %v, want [42]", ready)
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		if buf[0] != 5 {
			return fmt.Errorf("payload = %d", buf[0])
		}
		return nil
	})
}

// TestWaitSetAggregate attaches an aggregate of two receives under one
// owner: the owner is signaled per child, and the aggregate tests done only
// after both children completed.
func TestWaitSetAggregate(t *testing.T) {
	run(t, 3, func(c *Comm) error {
		if c.Rank() != 0 {
			// No stagger needed: the assertions below hold for any arrival
			// order (each child completion yields exactly one owner wake).
			return SendSlice(c, []int{c.Rank()}, 0, 0)
		}
		b1 := make([]int, 1)
		b2 := make([]int, 1)
		r1, err := Irecv(c, b1, contiguousN(1), 1, 0)
		if err != nil {
			return err
		}
		r2, err := Irecv(c, b2, contiguousN(1), 2, 0)
		if err != nil {
			return err
		}
		agg := aggregate(c, []*Request{r1, r2})
		s := NewWaitSet(c, 2)
		s.Add(agg, 9)
		wakes := 0
		for {
			ready, err := s.Waitsome()
			if err != nil {
				return err
			}
			if ready == nil {
				return fmt.Errorf("set drained before aggregate completed")
			}
			for range ready {
				wakes++
			}
			if done, _, err := agg.Test(); done {
				if err != nil {
					return err
				}
				if wakes != 2 {
					return fmt.Errorf("aggregate owner signaled %d times, want 2", wakes)
				}
				if b1[0] != 1 || b2[0] != 2 {
					return fmt.Errorf("payloads = %d %d", b1[0], b2[0])
				}
				return nil
			}
		}
	})
}

// TestWaitSetPoisonOnCrash checks the failure path: a peer that dies while
// we block in Waitsome must poison the pending receive through the same
// notify-then-ready handover, so Waitsome wakes and the request's Wait
// surfaces the typed peer-failure error.
func TestWaitSetPoisonOnCrash(t *testing.T) {
	boom := errors.New("boom")
	err := Run(Config{
		Procs:   2,
		Timeout: 20 * time.Second,
		Faults:  &FaultPlan{Crashes: []Crash{{Rank: 1, AtOp: 2}}},
	}, func(c *Comm) error {
		if c.Rank() == 1 {
			// Burn ops until the injected crash fires.
			for i := 0; i < 100; i++ {
				c.rs.opTick()
			}
			return boom
		}
		buf := make([]int, 1)
		req, err := Irecv(c, buf, contiguousN(1), 1, 0)
		if err != nil {
			return err
		}
		s := NewWaitSet(c, 1)
		s.Add(req, 0)
		if _, werr := s.Waitsome(); werr != nil {
			// Abort raced ahead of the poison: still a detected failure.
			return werr
		}
		_, werr := req.Wait()
		if werr == nil {
			return fmt.Errorf("receive from crashed rank succeeded")
		}
		return werr
	})
	if err == nil {
		t.Fatal("run with crashed rank succeeded")
	}
	if !IsRankFailed(err) && !errors.Is(err, ErrAborted) && !errors.Is(err, boom) {
		t.Fatalf("error = %v, want process-failure or abort", err)
	}
}

// TestWaitSetEmpty: Waitsome over a set to which nothing was ever added
// must return (nil, nil) immediately — not block, not panic.
func TestWaitSetEmpty(t *testing.T) {
	run(t, 1, func(c *Comm) error {
		s := NewWaitSet(c, 1)
		ready, err := s.Waitsome()
		if err != nil {
			return err
		}
		if ready != nil {
			return fmt.Errorf("empty set Waitsome = %v, want nil", ready)
		}
		if s.Outstanding() != 0 {
			return fmt.Errorf("empty set outstanding = %d", s.Outstanding())
		}
		return nil
	})
}

// TestWaitSetAllCancelled is the regression test for the cancel-completion
// fix: receives that were added to a set and then cancelled must surface
// through Waitsome (cancellation is a completion), with each request's Wait
// returning ErrCancelled — previously the set never learned of the cancel
// and Waitsome blocked until the watchdog killed the run.
func TestWaitSetAllCancelled(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 1 {
			return nil // sends nothing: the receives below can only be cancelled
		}
		b1 := make([]int, 1)
		b2 := make([]int, 1)
		r1, err := Irecv(c, b1, contiguousN(1), 1, 90)
		if err != nil {
			return err
		}
		r2, err := Irecv(c, b2, contiguousN(1), 1, 91)
		if err != nil {
			return err
		}
		s := NewWaitSet(c, 2)
		s.Add(r1, 0)
		s.Add(r2, 1)
		if !r1.Cancel() || !r2.Cancel() {
			return fmt.Errorf("unmatched receives not cancellable")
		}
		seen := map[int]bool{}
		for len(seen) < 2 {
			ready, err := s.Waitsome()
			if err != nil {
				return err
			}
			if ready == nil {
				return fmt.Errorf("set drained with %d/2 cancellations reported", len(seen))
			}
			for _, o := range ready {
				seen[o] = true
			}
		}
		for _, r := range []*Request{r1, r2} {
			if _, err := r.Wait(); !errors.Is(err, ErrCancelled) {
				return fmt.Errorf("cancelled Wait = %v, want ErrCancelled", err)
			}
		}
		if s.Outstanding() != 0 {
			return fmt.Errorf("outstanding = %d after all cancellations", s.Outstanding())
		}
		if ready, err := s.Waitsome(); err != nil || ready != nil {
			return fmt.Errorf("drained set Waitsome = %v, %v", ready, err)
		}
		return nil
	})
}

// TestWaitSetCancelAfterAttachWakesWaitsome cancels from a second goroutine
// while the rank is parked inside Waitsome, covering the notify-signal path
// of mailbox.cancel (not just the drain-before-block path).
func TestWaitSetCancelAfterAttachWakesWaitsome(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 1 {
			return nil
		}
		buf := make([]int, 1)
		req, err := Irecv(c, buf, contiguousN(1), 1, 7)
		if err != nil {
			return err
		}
		s := NewWaitSet(c, 1)
		s.Add(req, 3)
		// Cancel once the rank is registered as blocked in Waitsome: the
		// watchdog registry is the channel-synchronized "it is parked now"
		// signal (no fixed sleep).
		go func() {
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				if op := c.w.blocked[0].Load(); op != nil && op.kind == "waitsome" {
					break
				}
				time.Sleep(time.Millisecond)
			}
			req.Cancel()
		}()
		ready, err := s.Waitsome()
		if err != nil {
			return err
		}
		if len(ready) != 1 || ready[0] != 3 {
			return fmt.Errorf("ready = %v, want [3]", ready)
		}
		if _, err := req.Wait(); !errors.Is(err, ErrCancelled) {
			return fmt.Errorf("Wait = %v, want ErrCancelled", err)
		}
		return nil
	})
}

// TestWaitallZeroRequestsAfterAbort: Waitall over zero (or all-nil)
// requests must return nil even while the run is being torn down by a
// fault abort — executors call it with empty tails after cancelling a
// failed phase, and it must not manufacture an error or block.
func TestWaitallZeroRequestsAfterAbort(t *testing.T) {
	waitallErrs := make(chan error, 2)
	err := Run(Config{
		Procs:   2,
		Timeout: 20 * time.Second,
		Faults:  &FaultPlan{Crashes: []Crash{{Rank: 1, AtOp: 1}}},
	}, func(c *Comm) error {
		if c.Rank() == 1 {
			// First posted operation trips the injected crash.
			return SendSlice(c, []int{1}, 0, 0)
		}
		buf := make([]int, 1)
		_, rerr := RecvSlice(c, buf, 1, 0)
		if rerr == nil {
			return fmt.Errorf("receive from crashed rank succeeded")
		}
		// The abort is in flight: Waitall over nothing must still be a no-op.
		waitallErrs <- Waitall()
		waitallErrs <- Waitall(nil, nil)
		return rerr
	})
	if err == nil {
		t.Fatal("run with crashed rank succeeded")
	}
	if !IsRankFailed(err) {
		t.Fatalf("run error = %v, want RankFailedError", err)
	}
	for i := 0; i < 2; i++ {
		if werr := <-waitallErrs; werr != nil {
			t.Fatalf("Waitall over zero requests = %v, want nil", werr)
		}
	}
}

// TestWaitSetReset reuses one set across two executions and checks that no
// stale notification from the first leaks into the second.
func TestWaitSetReset(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 1 {
			for i := 0; i < 2; i++ {
				if err := SendSlice(c, []int{i + 1}, 0, 0); err != nil {
					return err
				}
			}
			return nil
		}
		s := NewWaitSet(c, 1)
		buf := make([]int, 1)
		for i := 0; i < 2; i++ {
			s.Reset()
			req, err := Irecv(c, buf, contiguousN(1), 1, 0)
			if err != nil {
				return err
			}
			s.Add(req, i)
			ready, err := s.Waitsome()
			if err != nil {
				return err
			}
			if len(ready) != 1 || ready[0] != i {
				return fmt.Errorf("iteration %d: ready = %v", i, ready)
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
			if buf[0] != i+1 {
				return fmt.Errorf("iteration %d: payload = %d", i, buf[0])
			}
		}
		return nil
	})
}
