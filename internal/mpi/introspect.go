package mpi

import (
	"time"

	"cartcc/internal/metrics"
	"cartcc/internal/trace"
)

// This file is the runtime's live-introspection surface: exported,
// read-only probes over a running world that the debug server
// (internal/introspect) serves as /debug/state and the post-mortem dumper
// persists when the run fails. Everything here reads atomics or takes the
// same short-lived locks the runtime itself uses, so a snapshot can be
// taken from an HTTP handler goroutine while all ranks are mid-collective
// — including when they are all deadlocked, which is exactly when the
// snapshot matters most.

// World returns the world the communicator belongs to — the handle the
// introspection plane hangs off (introspect.Serve(comm.World())).
func (c *Comm) World() *World { return c.w }

// Flight returns the world's flight recorder (nil when disabled).
func (w *World) Flight() *trace.FlightRecorder { return w.flight }

// Metrics returns the run's metrics registry (Config.Metrics; nil when
// the run was started without one).
func (w *World) Metrics() *metrics.Registry { return w.metricsReg }

// Size returns the number of ranks the world was created with.
func (w *World) Size() int { return w.size }

// CurrentEpoch returns the highest recovery epoch allocated so far (0
// until a Shrink consensus).
func (w *World) CurrentEpoch() int64 { return w.epochSeq.Load() }

// Aborted reports whether the run has failed and released its ranks.
func (w *World) Aborted() bool { return w.failed.Load() }

// FailedRanks returns the sorted world ranks marked failed.
func (w *World) FailedRanks() []int { return w.deadRanks() }

// RankDebug is one rank's entry in a world debug snapshot.
type RankDebug struct {
	Rank int `json:"rank"`
	// Done reports the rank's goroutine has returned.
	Done bool `json:"done"`
	// Failed reports the rank is marked dead (injected crash or consensus).
	Failed bool `json:"failed,omitempty"`
	// Blocked describes the blocking wait the rank is registered in, empty
	// when it is running. BlockedMs is how long it has waited, WaitsOn the
	// exact source world rank it waits for (-1 for wildcard or none).
	Blocked   string  `json:"blocked,omitempty"`
	BlockedMs float64 `json:"blocked_ms,omitempty"`
	WaitsOn   int     `json:"waits_on"`
	// PendingRecvs and Unexpected are the rank's mailbox depths: receives
	// posted but unmatched, and arrived-but-unclaimed messages.
	PendingRecvs int `json:"pending_recvs"`
	Unexpected   int `json:"unexpected"`
	// Ops is the rank's point-to-point operation count.
	Ops int64 `json:"ops"`
	// FlightTotal is the number of events ever recorded on the rank's
	// flight ring; a healthz probe watches it advance.
	FlightTotal uint64 `json:"flight_total"`
}

// WorldDebug is a coherent-enough snapshot of a running world: each field
// is read atomically, cross-rank skew is bounded by in-flight operations.
type WorldDebug struct {
	Size int `json:"size"`
	// Epoch is the highest recovery epoch allocated.
	Epoch int64 `json:"epoch"`
	// Aborted reports a recorded failure has released the ranks.
	Aborted bool `json:"aborted,omitempty"`
	// FailedRanks lists ranks marked dead.
	FailedRanks []int `json:"failed_ranks,omitempty"`
	// RevokedCtxs counts revoked communicator contexts.
	RevokedCtxs int `json:"revoked_ctxs,omitempty"`
	// WiresOut is the number of pooled wire buffers currently out of the
	// pool (drawn for an in-flight message and not yet released).
	WiresOut int64       `json:"wires_out"`
	Ranks    []RankDebug `json:"ranks"`
}

// DebugSnapshot captures the world's current state. Safe to call from any
// goroutine at any point in the run, including after it has ended.
func (w *World) DebugSnapshot() WorldDebug {
	now := time.Now()
	d := WorldDebug{
		Size:        w.size,
		Epoch:       w.epochSeq.Load(),
		Aborted:     w.failed.Load(),
		FailedRanks: w.deadRanks(),
		RevokedCtxs: int(w.revokedN.Load()),
		WiresOut:    w.wireOut.Load(),
		Ranks:       make([]RankDebug, w.size),
	}
	for r := 0; r < w.size; r++ {
		rd := &d.Ranks[r]
		rd.Rank = r
		rd.WaitsOn = -1
		rd.Done = w.done[r].Load()
		rd.Ops = w.ranks[r].ops.Load()
		rd.PendingRecvs, rd.Unexpected = w.ranks[r].box.pendingPosted()
		rd.FlightTotal = w.flight.Total(r)
		if w.monitoring {
			if op := w.blocked[r].Load(); op != nil {
				rd.Blocked = op.describe()
				rd.BlockedMs = float64(now.Sub(op.since)) / float64(time.Millisecond)
				if op.kind == "recv" {
					rd.WaitsOn = op.srcWorlds[0]
				}
			}
		}
	}
	for _, fr := range d.FailedRanks {
		if fr >= 0 && fr < len(d.Ranks) {
			d.Ranks[fr].Failed = true
		}
	}
	return d
}

// FlightTail returns the newest flight-recorder events of every rank
// (index = world rank), each bounded by max (<=0 for the full retained
// window). Nil when the recorder is disabled.
func (w *World) FlightTail(max int) [][]trace.FlightEvent {
	return w.flight.TailAll(max)
}

// Diagnose runs the wait-for-graph deadlock proofs against the current
// blocked registry and returns the diagnosis, or nil while progress is
// still possible (or when the monitor is disabled). minBlocked is the
// stall threshold: only ranks blocked at least that long count as stuck
// (the watchdog's own sampling uses a multiple of its poll interval; a
// /healthz probe should pass something comfortably above scheduler
// jitter). This is the same check the watchdog runs on its poll tick,
// exposed so a health endpoint can report a provably stalled world
// without waiting for the watchdog's confirmation window.
func (w *World) Diagnose(minBlocked time.Duration) *DeadlockError {
	if !w.monitoring {
		return nil
	}
	return w.deadlockCheck(minBlocked)
}
