package mpi

import (
	"math/bits"
	"reflect"
	"sync"
)

// This file implements the per-world, size-bucketed wire-buffer pools
// behind the non-contiguous send path. A gathered (packed) message draws
// its wire slice from the sending world's pool instead of the heap; the
// matching side returns the slice after the scatter. Contiguous messages
// never touch the pool at all — they travel as subslices of the user
// buffer and are consumed at match time (see p2p.go).
//
// Pools are keyed by element type (a []int32 can never be recycled as a
// []float64) and bucketed by capacity class (powers of two), mirroring the
// eager-buffer pools of real MPI implementations.

// wireMaxClass bounds pooled capacities at 1<<wireMaxClass elements;
// larger wires are plainly allocated and never pooled (at that size the
// copy dominates the allocation anyway).
const wireMaxClass = 24

// wirePool is the per-element-type bucket array. Bucket c holds slices
// with capacity exactly 1<<c.
type wirePool struct {
	buckets [wireMaxClass + 1]sync.Pool
}

// wireClass returns the bucket class for a wire of n elements: the
// smallest c with 1<<c >= n.
func wireClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// wirePoolFor returns the world's pool for element type t, creating it on
// first use.
func (w *World) wirePoolFor(t reflect.Type) *wirePool {
	if v, ok := w.wirePools.Load(t); ok {
		return v.(*wirePool)
	}
	v, _ := w.wirePools.LoadOrStore(t, &wirePool{})
	return v.(*wirePool)
}

// elemType returns the reflect.Type of T without allocating (a nil *T is
// a direct interface value).
func elemType[T any]() reflect.Type {
	return reflect.TypeOf((*T)(nil)).Elem()
}

// getWire returns a wire slice of n elements, recycled from the world's
// pool when a bucket entry is available; pooled reports whether it was (the
// wire-pool hit/miss metric). The contents are unspecified; every caller
// fully overwrites the slice (Gather, copy).
func getWire[T any](w *World, n int) (wire []T, pooled bool) {
	w.wireOut.Add(1)
	cl := wireClass(n)
	if cl > wireMaxClass {
		return make([]T, n), false
	}
	if v := w.wirePoolFor(elemType[T]()).buckets[cl].Get(); v != nil {
		return v.([]T)[:n], true
	}
	return make([]T, n, 1<<cl), false
}

// releaseWire returns a pooled message payload to its world's pool. It is
// installed as message.release by the pooled send path and invoked exactly
// once, at the single point a message is consumed (finishMatch) or
// discarded before delivery; the caller clears m.release afterwards, so a
// payload can never be pooled twice.
func releaseWire[T any](w *World, m *message) {
	s, ok := m.payload.([]T)
	if !ok {
		return
	}
	m.payload = nil
	w.wireOut.Add(-1)
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return // not a pool-shaped capacity; let the GC have it
	}
	cl := wireClass(c)
	if cl > wireMaxClass {
		return
	}
	w.wirePoolFor(elemType[T]()).buckets[cl].Put(s[:c])
}

// getWireReflect is getWire for a runtime-chosen element type: the network
// transport decodes incoming frames into pooled wires of the element type
// named by the frame header, sharing the same per-type bucket pools as the
// generic send path (a wire drawn here and released by a scatter, or drawn
// by a gather and released here, recycles either way). The returned value
// is a slice of n elements with pool-shaped capacity.
func getWireReflect(w *World, t reflect.Type, n int) (reflect.Value, bool) {
	w.wireOut.Add(1)
	cl := wireClass(n)
	st := reflect.SliceOf(t)
	if cl > wireMaxClass {
		return reflect.MakeSlice(st, n, n), false
	}
	if v := w.wirePoolFor(t).buckets[cl].Get(); v != nil {
		return reflect.ValueOf(v).Slice(0, n), true
	}
	return reflect.MakeSlice(st, n, 1<<cl), false
}

// releaseWireAny is releaseWire without the compile-time element type: the
// release hook of messages decoded from the wire, whose payload type is
// known only at runtime. Pool entries are stored exactly as the generic
// path stores them (a full-capacity []T boxed in an any), so wires cycle
// freely between the local and remote paths.
func releaseWireAny(w *World, m *message) {
	v := reflect.ValueOf(m.payload)
	if v.Kind() != reflect.Slice {
		return
	}
	m.payload = nil
	w.wireOut.Add(-1)
	c := v.Cap()
	if c == 0 || c&(c-1) != 0 {
		return // not a pool-shaped capacity; let the GC have it
	}
	cl := wireClass(c)
	if cl > wireMaxClass {
		return
	}
	w.wirePoolFor(v.Type().Elem()).buckets[cl].Put(v.Slice(0, c).Interface())
}

// detachWire detaches a zero-copy message from the sender's user buffer:
// the payload is copied into a pooled wire so the alias dies before the
// send call returns. Installed as message.detach by the contiguous send
// path and invoked by the mailbox when the message must outlive delivery
// (no matching receive was posted yet).
func detachWire[T any](w *World, m *message) {
	src, ok := m.payload.([]T)
	if !ok {
		return
	}
	wire, _ := getWire[T](w, len(src))
	copy(wire, src)
	m.payload = wire
	m.release = releaseWire[T]
}
