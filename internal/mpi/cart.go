package mpi

import (
	"fmt"

	"cartcc/internal/vec"
)

// CartInfo is the Cartesian topology attached to a communicator by
// CartCreate: the grid geometry, exposed through the coordinate helpers.
type CartInfo struct {
	Grid *vec.Grid
}

// CartCreate returns a new communicator with a d-dimensional Cartesian
// topology attached, like MPI_Cart_create. The product of dims must equal
// the communicator size. periods marks the periodic (torus) dimensions; nil
// means fully periodic. reorder is accepted for interface fidelity; like
// the MPI libraries examined in the paper (§1), this implementation keeps
// the identity mapping. Collective.
func CartCreate(c *Comm, dims []int, periods []bool, reorder bool) (*Comm, error) {
	g, err := vec.NewGrid(dims, periods)
	if err != nil {
		return nil, err
	}
	if g.Size() != c.size {
		return nil, fmt.Errorf("mpi: Cartesian grid %v has %d processes, communicator has %d", dims, g.Size(), c.size)
	}
	_ = reorder
	nc, err := c.Dup()
	if err != nil {
		return nil, err
	}
	nc.cart = &CartInfo{Grid: g}
	return nc, nil
}

// Cart returns the Cartesian topology of the communicator, or nil.
func (c *Comm) Cart() *CartInfo { return c.cart }

// CartCoords returns the Cartesian coordinates of the given rank, like
// MPI_Cart_coords.
func (c *Comm) CartCoords(rank int) (vec.Vec, error) {
	if c.cart == nil {
		return nil, fmt.Errorf("mpi: communicator has no Cartesian topology")
	}
	if err := c.checkRank(rank, "cart"); err != nil {
		return nil, err
	}
	return c.cart.Grid.CoordOf(rank), nil
}

// CartRank returns the rank at the given Cartesian coordinates, like
// MPI_Cart_rank. Coordinates along periodic dimensions are wrapped.
func (c *Comm) CartRank(coords vec.Vec) (int, error) {
	if c.cart == nil {
		return -1, fmt.Errorf("mpi: communicator has no Cartesian topology")
	}
	g := c.cart.Grid
	if len(coords) != g.NDims() {
		return -1, fmt.Errorf("mpi: coordinate arity %d, topology has %d dimensions", len(coords), g.NDims())
	}
	// Wrap through Displace from the origin so periodic handling is shared.
	origin := make(vec.Vec, g.NDims())
	dst, ok := g.Displace(origin, coords)
	if !ok {
		return -1, fmt.Errorf("mpi: coordinates %v outside non-periodic grid %v", coords, g.Dims)
	}
	return g.RankOf(dst)
}

// CartShift returns the source and destination ranks for a shift of disp
// steps along dimension dim, like MPI_Cart_shift. ok is false (ProcNull)
// when the shift leaves a non-periodic mesh.
func (c *Comm) CartShift(dim, disp int) (src, dst int, srcOK, dstOK bool, err error) {
	if c.cart == nil {
		return 0, 0, false, false, fmt.Errorf("mpi: communicator has no Cartesian topology")
	}
	g := c.cart.Grid
	if dim < 0 || dim >= g.NDims() {
		return 0, 0, false, false, fmt.Errorf("mpi: shift dimension %d out of range [0,%d)", dim, g.NDims())
	}
	rel := make(vec.Vec, g.NDims())
	rel[dim] = disp
	dst, dstOK = g.RankDisplace(c.rank, rel)
	src, srcOK = g.RankDisplace(c.rank, rel.Neg())
	return src, dst, srcOK, dstOK, nil
}
