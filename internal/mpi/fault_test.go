package mpi

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCrashPropagatesTypedError is the core fault-injection contract: a
// seeded rank crash terminates the whole run with a typed RankFailedError
// and no rank hangs — peers waiting on the dead rank are poisoned.
func TestCrashPropagatesTypedError(t *testing.T) {
	var survivors sync.Map
	err := Run(Config{
		Procs:   4,
		Timeout: 20 * time.Second,
		Faults:  &FaultPlan{Crashes: []Crash{{Rank: 2, AtOp: 3}}},
	}, func(c *Comm) error {
		p := c.Size()
		next, prev := (c.Rank()+1)%p, (c.Rank()-1+p)%p
		for i := 0; i < 10; i++ {
			out, in := []int{c.Rank()}, make([]int, 1)
			if _, err := Sendrecv(c, out, contiguousN(1), next, 0, in, contiguousN(1), prev, 0); err != nil {
				survivors.Store(c.Rank(), err)
				return err
			}
		}
		return nil
	})
	if !IsRankFailed(err) {
		t.Fatalf("run error is not a RankFailedError: %v", err)
	}
	var rfe *RankFailedError
	if !errors.As(err, &rfe) || rfe.Rank != 2 {
		t.Fatalf("failed rank = %v, want 2 (err: %v)", rfe, err)
	}
	// At least the dead rank's neighbors must have observed the typed error.
	for _, r := range []int{1, 3} {
		v, ok := survivors.Load(r)
		if !ok {
			t.Fatalf("rank %d did not observe the failure", r)
		}
		if !IsRankFailed(v.(error)) {
			t.Fatalf("rank %d observed %v, want RankFailedError", r, v)
		}
	}
}

// TestOpsOnDeadRankFailFast: once a rank is marked failed, new sends and
// receives naming it complete immediately with the typed error instead of
// blocking, and the failure-detector oracle reports it.
func TestOpsOnDeadRankFailFast(t *testing.T) {
	err := Run(Config{
		Procs:   3,
		Timeout: 20 * time.Second,
		Faults:  &FaultPlan{Crashes: []Crash{{Rank: 2, AtOp: 1}}},
	}, func(c *Comm) error {
		switch c.Rank() {
		case 2:
			// First op trips the crash.
			return SendSlice(c, []int{1}, 0, 0)
		case 0:
			// Wait until the detector sees the failure, then probe both ops.
			for len(c.FailedRanks()) == 0 {
				time.Sleep(time.Millisecond)
			}
			if got := c.FailedRanks(); len(got) != 1 || got[0] != 2 {
				return fmt.Errorf("FailedRanks = %v, want [2]", got)
			}
			if err := SendSlice(c, []int{1}, 2, 0); !IsRankFailed(err) {
				return fmt.Errorf("send to dead rank: %v, want RankFailedError", err)
			}
			buf := make([]int, 1)
			if _, err := RecvSlice(c, buf, 2, 0); !IsRankFailed(err) {
				return fmt.Errorf("recv from dead rank: %v, want RankFailedError", err)
			}
			return nil
		}
		return nil
	})
	// The injected crash itself is the run's primary error.
	if !IsRankFailed(err) {
		t.Fatalf("run error = %v, want RankFailedError", err)
	}
}

// TestStragglerCompletes: a straggler slows the run down but is not a
// failure — the collective completes with correct data.
func TestStragglerCompletes(t *testing.T) {
	err := Run(Config{
		Procs:   4,
		Timeout: 20 * time.Second,
		Faults:  &FaultPlan{Stragglers: []Straggler{{Rank: 1, PerOp: 500 * time.Microsecond}}},
	}, func(c *Comm) error {
		sum := []int{c.Rank()}
		if err := Allreduce(c, sum, sum, SumOp[int]); err != nil {
			return err
		}
		if sum[0] != 6 {
			return fmt.Errorf("allreduce = %d, want 6", sum[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMsgDelayPreservesOrder: injected per-message delays stall delivery
// but must not break the non-overtaking guarantee or the data.
func TestMsgDelayPreservesOrder(t *testing.T) {
	err := Run(Config{
		Procs:   2,
		Timeout: 20 * time.Second,
		Seed:    3,
		Faults: &FaultPlan{Delays: []MsgDelay{
			{From: 0, To: 1, Every: 2, Delay: 2 * time.Millisecond},
		}},
	}, func(c *Comm) error {
		const n = 8
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := SendSlice(c, []int{i}, 1, 7); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			buf := make([]int, 1)
			if _, err := RecvSlice(c, buf, 0, 7); err != nil {
				return err
			}
			if buf[0] != i {
				return fmt.Errorf("message %d arrived out of order (got %d)", i, buf[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFaultPlanValidation: a plan naming a rank outside the run, or a
// crash with no trigger, is rejected before any goroutine starts.
func TestFaultPlanValidation(t *testing.T) {
	for _, fp := range []*FaultPlan{
		{Crashes: []Crash{{Rank: 9, AtOp: 1}}},
		{Crashes: []Crash{{Rank: 0}}},
		{Stragglers: []Straggler{{Rank: -1}}},
		{Delays: []MsgDelay{{From: -2, To: 0}}},
	} {
		if err := Run(Config{Procs: 2, Faults: fp}, func(c *Comm) error { return nil }); err == nil {
			t.Fatalf("plan %+v accepted", fp)
		}
	}
}

// TestRevoke: revoking a communicator fails its pending and future
// operations on every member with ErrRevoked.
func TestRevoke(t *testing.T) {
	err := Run(Config{Procs: 3, Timeout: 20 * time.Second}, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			// Blocked receive that nobody will ever match.
			buf := make([]int, 1)
			_, err := RecvSlice(c, buf, 1, 5)
			if !errors.Is(err, ErrRevoked) {
				return fmt.Errorf("pending recv after revoke: %v, want ErrRevoked", err)
			}
			return nil
		case 1:
			time.Sleep(20 * time.Millisecond)
			c.Revoke()
			// Future operations fail too, on the revoker itself.
			if err := SendSlice(c, []int{1}, 2, 0); !errors.Is(err, ErrRevoked) {
				return fmt.Errorf("send after revoke: %v, want ErrRevoked", err)
			}
			return nil
		default:
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAgree: with no failures Agree computes the bitwise AND across all
// members.
func TestAgree(t *testing.T) {
	run(t, 5, func(c *Comm) error {
		flag := 0b111
		if c.Rank() == 3 {
			flag = 0b101
		}
		got, err := c.Agree(flag)
		if err != nil {
			return err
		}
		if got != 0b101 {
			return fmt.Errorf("Agree = %b, want 101", got)
		}
		return nil
	})
}

// TestAgreeExcludesDead: Agree tolerates a rank that failed before the
// call, excluding its contribution.
func TestAgreeExcludesDead(t *testing.T) {
	err := Run(Config{
		Procs:   4,
		Timeout: 20 * time.Second,
		Faults:  &FaultPlan{Crashes: []Crash{{Rank: 1, AtOp: 1}}},
	}, func(c *Comm) error {
		if c.Rank() == 1 {
			return SendSlice(c, []int{1}, 0, 0) // trips the crash
		}
		for len(c.FailedRanks()) == 0 {
			time.Sleep(time.Millisecond)
		}
		got, err := c.Agree(1)
		if err != nil {
			return err
		}
		if got != 1 {
			return fmt.Errorf("Agree among survivors = %d, want 1", got)
		}
		return nil
	})
	if !IsRankFailed(err) {
		t.Fatalf("run error = %v, want the injected RankFailedError", err)
	}
}

// TestShrinkRebuildsComm: after a failure the survivors Shrink into a
// dense communicator and can run collectives on it.
func TestShrinkRebuildsComm(t *testing.T) {
	err := Run(Config{
		Procs:   5,
		Timeout: 20 * time.Second,
		Faults:  &FaultPlan{Crashes: []Crash{{Rank: 2, AtOp: 1}}},
	}, func(c *Comm) error {
		if c.Rank() == 2 {
			return SendSlice(c, []int{1}, 0, 0)
		}
		for len(c.FailedRanks()) == 0 {
			time.Sleep(time.Millisecond)
		}
		s, err := c.Shrink()
		if err != nil {
			return err
		}
		if s.Size() != 4 {
			return fmt.Errorf("shrunk size = %d, want 4", s.Size())
		}
		// Old rank 3 must have become new rank 2 (dense renumbering).
		if c.Rank() == 3 && s.Rank() != 2 {
			return fmt.Errorf("old rank 3 got new rank %d, want 2", s.Rank())
		}
		sum := []int{1}
		if err := Allreduce(s, sum, sum, SumOp[int]); err != nil {
			return err
		}
		if sum[0] != 4 {
			return fmt.Errorf("allreduce on shrunk comm = %d, want 4", sum[0])
		}
		return nil
	})
	if !IsRankFailed(err) {
		t.Fatalf("run error = %v, want the injected RankFailedError", err)
	}
}

// TestErrorAggregation: when several ranks fail with their own (primary)
// errors, the run error joins them all and counts the failing ranks, so
// no rank's diagnosis is lost.
func TestErrorAggregation(t *testing.T) {
	err := Run(Config{Procs: 4, Timeout: 20 * time.Second}, func(c *Comm) error {
		switch c.Rank() {
		case 1:
			return fmt.Errorf("first failure")
		case 3:
			return fmt.Errorf("second failure")
		}
		return nil
	})
	if err == nil {
		t.Fatal("run succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, "first failure") || !strings.Contains(msg, "second failure") {
		t.Fatalf("aggregated error lost a rank's failure: %v", msg)
	}
	if !strings.Contains(msg, "2 ranks failed") {
		t.Fatalf("aggregated error does not count failing ranks: %v", msg)
	}
}

// TestCascadeErrorsSuppressed: ranks that fail only because the run was
// aborted (cascade) must not drown out the primary failure.
func TestCascadeErrorsSuppressed(t *testing.T) {
	err := Run(Config{Procs: 3, Timeout: 20 * time.Second}, func(c *Comm) error {
		if c.Rank() == 0 {
			return fmt.Errorf("root cause")
		}
		// The others block on a receive that aborts when rank 0 fails.
		buf := make([]int, 1)
		_, err := RecvSlice(c, buf, 0, 0)
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "root cause") {
		t.Fatalf("err = %v", err)
	}
	if strings.Contains(err.Error(), "ranks failed") {
		t.Fatalf("cascade errors were counted as primary failures: %v", err)
	}
}
