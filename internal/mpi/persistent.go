package mpi

import (
	"fmt"

	"cartcc/internal/datatype"
)

// Persistent point-to-point requests, mirroring MPI_Send_init /
// MPI_Recv_init: the communication parameters (buffer, layout, peer, tag)
// are bound once and the operation is then started any number of times —
// the point-to-point counterpart of the paper's persistent collective
// initialization (Cart_*_init).

// PersistentSend is a reusable send operation.
type PersistentSend struct {
	// start is the element-type-bound starter installed by SendInit.
	start func() (*Request, error)
}

// Start begins one send with the bound parameters; the returned request
// completes as usual (buffered semantics: immediately).
func (p *PersistentSend) Start() (*Request, error) { return p.start() }

// SendInit binds a send operation for repeated starting. The buffer
// contents are read at each Start.
func SendInit[T any](c *Comm, buf []T, l datatype.Layout, dst, tag int) (*PersistentSend, error) {
	if err := l.Validate(len(buf)); err != nil {
		return nil, err
	}
	if err := c.checkRank(dst, "destination"); err != nil {
		return nil, err
	}
	if tag < 0 {
		return nil, fmt.Errorf("mpi: negative tag %d", tag)
	}
	return &PersistentSend{start: func() (*Request, error) {
		return Isend(c, buf, l, dst, tag)
	}}, nil
}

// PersistentRecv is a reusable receive operation.
type PersistentRecv struct {
	start func() (*Request, error)
}

// Start posts one receive with the bound parameters.
func (p *PersistentRecv) Start() (*Request, error) { return p.start() }

// RecvInit binds a receive operation for repeated starting; each Start
// posts a fresh receive into the bound buffer.
func RecvInit[T any](c *Comm, buf []T, l datatype.Layout, src, tag int) (*PersistentRecv, error) {
	if err := l.Validate(len(buf)); err != nil {
		return nil, err
	}
	if src != AnySource {
		if err := c.checkRank(src, "source"); err != nil {
			return nil, err
		}
	}
	if tag < 0 && tag != AnyTag {
		return nil, fmt.Errorf("mpi: negative tag %d", tag)
	}
	return &PersistentRecv{start: func() (*Request, error) {
		return Irecv(c, buf, l, src, tag)
	}}, nil
}

// StartAll starts every persistent operation and returns the requests, in
// order (sends and receives may be mixed via the Starter interface).
func StartAll(ops ...Starter) ([]*Request, error) {
	reqs := make([]*Request, 0, len(ops))
	for _, op := range ops {
		r, err := op.Start()
		if err != nil {
			return reqs, err
		}
		reqs = append(reqs, r)
	}
	return reqs, nil
}

// Starter is anything that can start a bound operation (PersistentSend,
// PersistentRecv).
type Starter interface {
	Start() (*Request, error)
}
