package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// CompletionSink is a thread-safe completion queue over receives: the
// multi-poster sibling of WaitSet for progress engines whose work is
// committed inline on caller goroutines. Where a WaitSet is
// single-goroutine (one owner calls Add/Waitsome), a CompletionSink
// accepts Add from any goroutine that owns the request being added, and
// carries caller-chosen tokens directly — no position indirection, no
// per-receive bookkeeping — so attaching is one mailbox operation and the
// sink itself never grows with the number of collectives driven through
// it.
//
// Tokens must be non-negative. A receive added to the sink posts its token
// the moment a message or poison is matched (before the ready handoff);
// a request that cannot notify (send, finished, already matched) posts
// immediately. Cancellation counts as completion. Consumers drain with
// TryDrain and park with Park/ParkOr; the wake channel is a level trigger
// (capacity 1), so a consumer that drains the queue may see one spurious
// wake afterwards and must re-check.
//
// Deadlock policy belongs to the consumer: Park reports watchdog timeouts
// instead of failing the world, so an engine that made progress since the
// last timeout can re-arm, and only a genuinely stalled one declares
// Deadlock.
type CompletionSink struct {
	c     *Comm
	sink  *notifySink
	timer *time.Timer
}

// parkTimers pools the per-call timers of ParkOr and ParkFor: waiters
// park a few times per operation, and with Go 1.23+ timer semantics a
// stopped timer can be Reset and reused without draining, so a pooled
// timer makes a park allocation-free.
var parkTimers sync.Pool

func getParkTimer(d time.Duration) *time.Timer {
	if t, ok := parkTimers.Get().(*time.Timer); ok {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func putParkTimer(t *time.Timer) {
	t.Stop()
	parkTimers.Put(t)
}

// NewCompletionSink creates a sink; capacity pre-sizes the completion
// queue for the expected number of in-flight receives (a hint — the queue
// grows as needed).
func NewCompletionSink(c *Comm, capacity int) *CompletionSink {
	if capacity < 1 {
		capacity = 1
	}
	return &CompletionSink{c: c, sink: newNotifySink(capacity)}
}

// Post injects a token from any goroutine: the next drain returns it.
// Progress engines use it to wake a parked driver when new work is
// committed or a cancel is requested.
func (s *CompletionSink) Post(token int) {
	if token < 0 {
		panic(fmt.Sprintf("mpi: CompletionSink token %d is negative", token))
	}
	s.sink.post(token)
}

// Wake sets the level-triggered wake slot without queueing a token. A
// parker that consumed a wake but could not drain the queue (the driver
// lock was busy) hands the wake back with this, preserving the invariant
// that a non-empty queue always has a wake pending.
func (s *CompletionSink) Wake() {
	select {
	case s.sink.wake <- struct{}{}:
	default:
	}
}

// Add registers a request's completion under the given token, like
// WaitSet.Add: already-complete requests (nil, finished, sends, receives
// whose match already happened) post the token immediately; aggregates
// attach every unfinished child receive under the same token, so the
// token is posted on each child completion and the consumer re-tests the
// aggregate. Safe to call from the goroutine that posted the request,
// concurrently with matchers and with other goroutines adding their own
// requests.
func (s *CompletionSink) Add(r *Request, token int) {
	if token < 0 {
		panic(fmt.Sprintf("mpi: CompletionSink token %d is negative", token))
	}
	if r == nil || r.finished {
		s.sink.post(token)
		return
	}
	switch r.kind {
	case reqRecv:
		if !r.c.rs.box.attachNotify(r.pending, s.sink, token) {
			s.sink.post(token)
		}
	case reqAggregate:
		attached := false
		var walk func(req *Request)
		walk = func(req *Request) {
			if req == nil || req.finished {
				return
			}
			switch req.kind {
			case reqRecv:
				if req.c.rs.box.attachNotify(req.pending, s.sink, token) {
					attached = true
				}
			case reqAggregate:
				for _, ch := range req.children {
					walk(ch)
				}
			}
		}
		walk(r)
		if !attached {
			s.sink.post(token)
		}
	default:
		// Sends complete at post time.
		s.sink.post(token)
	}
}

// AddGated registers a request's completion under a shared countdown
// gate: every constituent receive completion (cancellation included)
// decrements the gate, and only the completion that brings it to zero
// posts the token — one notification for a whole group of receives whose
// individual completions carry no scheduling information (the progress
// engine's leaf rounds). Constituents that already completed are
// decremented here. The caller seeds the gate with a positive bias before
// the first AddGated and drops the bias after the last, so the gate
// cannot reach zero while the group is still being attached; sends and
// nil/finished requests contribute nothing.
func (s *CompletionSink) AddGated(r *Request, token int, gate *atomic.Int32) {
	if token < 0 {
		panic(fmt.Sprintf("mpi: CompletionSink token %d is negative", token))
	}
	if r == nil || r.finished {
		return
	}
	switch r.kind {
	case reqRecv:
		gate.Add(1)
		if !r.c.rs.box.attachNotifyGated(r.pending, s.sink, token, gate) {
			if gate.Add(-1) == 0 {
				s.sink.post(token)
			}
		}
	case reqAggregate:
		for _, ch := range r.children {
			s.AddGated(ch, token, gate)
		}
	}
}

// TryDrain appends every queued token to buf without blocking and returns
// the extended slice. One consumer at a time (the holder of the engine's
// drive lock).
func (s *CompletionSink) TryDrain(buf []int) []int {
	s.sink.mu.Lock()
	buf = append(buf, s.sink.queue...)
	s.sink.queue = s.sink.queue[:0]
	s.sink.pend.Store(0)
	s.sink.mu.Unlock()
	return buf
}

// Pending peeks the queue length without the lock — a poller's cheap
// emptiness probe between yields. A raced post may be missed for one
// probe; the wake level still guards against losing it across a park.
func (s *CompletionSink) Pending() int {
	return int(s.sink.pend.Load())
}

func (s *CompletionSink) armTimeout() <-chan time.Time {
	d := s.c.w.timeout
	if d <= 0 {
		return nil
	}
	if s.timer == nil {
		s.timer = time.NewTimer(d)
	} else {
		s.timer.Reset(d)
	}
	return s.timer.C
}

func (s *CompletionSink) disarmTimeout() {
	if s.timer != nil {
		s.timer.Stop()
	}
}

// Park blocks until a token is posted, the run aborts, or — when arm is
// set — the fallback watchdog fires. It consumes the wake without
// draining the queue: the caller drives afterwards (or hands the wake
// back with Wake). arm selects the watchdog and the blocked-wait metric:
// pass true when receives are in flight, false for an idle park awaiting
// the next commit (idle is not deadlock). A timedOut return is a report,
// not a failure — the caller decides between re-arming (progress was
// made elsewhere) and declaring Deadlock. May return spuriously; the
// caller's next drain finding nothing is the re-check.
func (s *CompletionSink) Park(arm bool) (timedOut bool, err error) {
	w := s.c.w
	if met := s.c.rs.met; met != nil && arm {
		// As in Waitsome: count and time only parks that wait on receives.
		met.waitBlocks.Inc()
		t0 := time.Now()
		defer func() { met.waitBlockedNs.Add(time.Since(t0).Nanoseconds()) }()
	}
	var timeoutCh <-chan time.Time
	if arm {
		timeoutCh = s.armTimeout()
		defer s.disarmTimeout()
	}
	select {
	case <-s.sink.wake:
		return false, nil
	case <-w.abort:
		if cause := w.abortCause(); cause != nil {
			return false, fmt.Errorf("mpi: rank %d: %w in progress engine: %w", s.c.rank, ErrAborted, cause)
		}
		return false, fmt.Errorf("mpi: rank %d: %w in progress engine", s.c.rank, ErrAborted)
	case <-timeoutCh:
		return true, nil
	}
}

// ParkFor blocks until a token is posted, the run aborts, or d elapses —
// the idle-linger park of a resident driver with nothing in flight,
// staying alive briefly for the next commit before exiting. No watchdog
// semantics and no blocked-wait metric (idle is not a communication
// wait); the fixed-duration timer is the sink's own, so it does not
// disturb an armed watchdog.
func (s *CompletionSink) ParkFor(d time.Duration) (timedOut bool, err error) {
	w := s.c.w
	t := getParkTimer(d)
	defer putParkTimer(t)
	select {
	case <-s.sink.wake:
		return false, nil
	case <-w.abort:
		if cause := w.abortCause(); cause != nil {
			return false, fmt.Errorf("mpi: rank %d: %w in progress engine: %w", s.c.rank, ErrAborted, cause)
		}
		return false, fmt.Errorf("mpi: rank %d: %w in progress engine", s.c.rank, ErrAborted)
	case <-t.C:
		return true, nil
	}
}

// AcquireParkTimer hands a waiter its watchdog timer for a whole sequence
// of ParkOr calls: acquired once per Wait, reused across its parks, so a
// park costs no timer start/stop. Returns nils when the world runs
// without a timeout. The timer runs across parks — a fire after the
// caller's deadlock check found progress is re-armed with
// RearmParkTimer, so "no progress for a full timeout" is still what
// trips the watchdog. Concurrent waiters each acquire their own.
func (s *CompletionSink) AcquireParkTimer() (*time.Timer, <-chan time.Time) {
	if d := s.c.w.timeout; d > 0 {
		t := getParkTimer(d)
		return t, t.C
	}
	return nil, nil
}

// ReleaseParkTimer returns a waiter's watchdog timer to the pool.
func (s *CompletionSink) ReleaseParkTimer(t *time.Timer) {
	if t != nil {
		putParkTimer(t)
	}
}

// RearmParkTimer restarts a fired watchdog timer after the caller
// handled a timedOut park (its channel is drained — Reset is safe).
func (s *CompletionSink) RearmParkTimer(t *time.Timer) {
	if t != nil {
		t.Reset(s.c.w.timeout)
	}
}

// ParkOr is the waiter-side park: block until a token is posted (woke),
// done is closed, the run aborts, or the caller's watchdog timer (from
// AcquireParkTimer; nil for none) fires. A woke return consumed the wake
// — the caller must either drain the queue or hand the wake back with
// Wake. A timedOut return consumed the timer fire — re-arm with
// RearmParkTimer before parking again.
func (s *CompletionSink) ParkOr(done <-chan struct{}, timeoutCh <-chan time.Time) (woke, timedOut bool, err error) {
	w := s.c.w
	if met := s.c.rs.met; met != nil {
		met.waitBlocks.Inc()
		t0 := time.Now()
		defer func() { met.waitBlockedNs.Add(time.Since(t0).Nanoseconds()) }()
	}
	select {
	case <-s.sink.wake:
		return true, false, nil
	case <-done:
		return false, false, nil
	case <-w.abort:
		if cause := w.abortCause(); cause != nil {
			return false, false, fmt.Errorf("mpi: rank %d: %w in progress engine: %w", s.c.rank, ErrAborted, cause)
		}
		return false, false, fmt.Errorf("mpi: rank %d: %w in progress engine", s.c.rank, ErrAborted)
	case <-timeoutCh:
		return false, true, nil
	}
}

// Deadlock records the watchdog failure for an engine that saw no
// progress across a full timeout with n execution(s) in flight, failing
// the run like a blocked Waitsome would, and returns the error.
func (s *CompletionSink) Deadlock(n int) error {
	err := fmt.Errorf("mpi: rank %d: deadlock suspected: progress engine over %d execution(s) blocked for %v",
		s.c.rank, n, s.c.w.timeout)
	s.c.w.fail(err)
	return err
}
