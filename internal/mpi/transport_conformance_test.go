package mpi

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cartcc/internal/netmodel"
)

// This file is the cross-backend transport conformance battery: one
// table of semantic legs — matching order, wildcard arbitration, probe,
// cancel, epoch drain, pool hygiene, large-message framing, fault
// injection — executed identically against the in-process loopback and
// the force-remote TCP and unix backends. The legs assert observable
// runtime semantics, never backend mechanism, so a backend passes
// exactly when it is indistinguishable from loopback.

// conformanceBackends names every backend the battery runs against.
var conformanceBackends = []string{"loopback", "tcp", "unix"}

// runBackend runs f on procs ranks over the named backend. The network
// backends run force-remote in this process: every message crosses a real
// socket, every rank (and therefore every fault and recovery leg) stays
// local.
func runBackend(backend string, procs int, cfg Config, f func(c *Comm) error) error {
	cfg.Procs = procs
	if cfg.Timeout == 0 {
		cfg.Timeout = 30 * time.Second
	}
	if backend == "loopback" {
		return runWorld(cfg, nil, nil, f)
	}
	addr := "127.0.0.1:0"
	if backend == "unix" {
		addr = filepath.Join(os.TempDir(),
			fmt.Sprintf("cartcc-conf-%d-%d.sock", os.Getpid(), sockSeq.Add(1)))
	}
	ranks := make([]int, procs)
	for i := range ranks {
		ranks[i] = i
	}
	return RunTransport(cfg, TransportConfig{
		Network:     backend,
		Procs:       []ProcSpec{{Addr: addr, Ranks: ranks}},
		Self:        0,
		ForceRemote: true,
	}, f)
}

// conformanceLeg is one semantic check of the battery.
type conformanceLeg struct {
	name  string
	procs int
	cfg   Config
	// run executes the leg's rank program; wantErr, when non-nil,
	// validates the expected run error (fault legs) — otherwise the run
	// must succeed.
	run     func(c *Comm) error
	wantErr func(error) bool
}

// conformanceSuite is the battery. Every leg must pass identically on
// every backend.
func conformanceSuite() []conformanceLeg {
	return []conformanceLeg{
		{
			// Messages of one (src, tag) stream must arrive in posting
			// order however deep the burst — the non-overtaking guarantee
			// carried over per-peer connections.
			name: "ordering-per-src-tag", procs: 2,
			run: func(c *Comm) error {
				const n = 300
				if c.Rank() == 0 {
					for i := 0; i < n; i++ {
						if err := SendSlice(c, []int64{int64(i)}, 1, 7); err != nil {
							return err
						}
					}
					return nil
				}
				got := make([]int64, 1)
				for i := 0; i < n; i++ {
					if _, err := RecvSlice(c, got, 0, 7); err != nil {
						return err
					}
					if got[0] != int64(i) {
						return fmt.Errorf("message %d carried %d: overtaking", i, got[0])
					}
				}
				return nil
			},
		},
		{
			// Two tag streams interleaved at the sender, received in the
			// opposite order: tag matching must pull from the unexpected
			// queue without disturbing the other stream's order.
			name: "tag-matching-out-of-order", procs: 2,
			run: func(c *Comm) error {
				const n = 50
				if c.Rank() == 0 {
					for i := 0; i < n; i++ {
						if err := SendSlice(c, []int32{int32(i)}, 1, 1); err != nil {
							return err
						}
						if err := SendSlice(c, []int32{int32(100 + i)}, 1, 2); err != nil {
							return err
						}
					}
					return nil
				}
				got := make([]int32, 1)
				for i := 0; i < n; i++ { // drain tag 2 first
					if _, err := RecvSlice(c, got, 0, 2); err != nil {
						return err
					}
					if got[0] != int32(100+i) {
						return fmt.Errorf("tag 2 message %d carried %d", i, got[0])
					}
				}
				for i := 0; i < n; i++ {
					if _, err := RecvSlice(c, got, 0, 1); err != nil {
						return err
					}
					if got[0] != int32(i) {
						return fmt.Errorf("tag 1 message %d carried %d", i, got[0])
					}
				}
				return nil
			},
		},
		{
			// Wildcard arbitration: AnySource receives must see every
			// sender exactly once per round, and each sender's stream in
			// order.
			name: "wildcard-arbitration", procs: 5,
			run: func(c *Comm) error {
				const rounds = 40
				if c.Rank() != 0 {
					for i := 0; i < rounds; i++ {
						msg := []int64{int64(c.Rank())<<32 | int64(i)}
						if err := SendSlice(c, msg, 0, 3); err != nil {
							return err
						}
					}
					return nil
				}
				lastRound := map[int]int64{1: -1, 2: -1, 3: -1, 4: -1}
				seen := 0
				got := make([]int64, 1)
				for seen < rounds*(c.Size()-1) {
					st, err := RecvSlice(c, got, AnySource, 3)
					if err != nil {
						return err
					}
					src, round := int(got[0]>>32), got[0]&0xffffffff
					if src != st.Source {
						return fmt.Errorf("status source %d but payload says %d", st.Source, src)
					}
					if round <= lastRound[src] {
						return fmt.Errorf("sender %d round %d after %d: overtaking through wildcard", src, round, lastRound[src])
					}
					lastRound[src] = round
					seen++
				}
				return nil
			},
		},
		{
			// Iprobe sees an arrived envelope without consuming it, and a
			// fully-specified probe still finds it after unrelated traffic.
			name: "iprobe", procs: 2,
			run: func(c *Comm) error {
				if c.Rank() == 0 {
					if err := SendSlice(c, []int32{1, 2, 3}, 1, 9); err != nil {
						return err
					}
					return Barrier(c)
				}
				var st Status
				for {
					found, s, err := Iprobe(c, 0, 9)
					if err != nil {
						return err
					}
					if found {
						st = s
						break
					}
					time.Sleep(100 * time.Microsecond)
				}
				if st.Source != 0 || st.Tag != 9 || st.Count != 3 {
					return fmt.Errorf("probe envelope = %+v", st)
				}
				// The probe must not have consumed it.
				got := make([]int32, 3)
				if _, err := RecvSlice(c, got, 0, 9); err != nil {
					return err
				}
				if got[2] != 3 {
					return fmt.Errorf("payload after probe = %v", got)
				}
				return Barrier(c)
			},
		},
		{
			// Cancel of a never-matched receive completes it as cancelled
			// and leaves the mailbox clean for later traffic.
			name: "cancel", procs: 2,
			run: func(c *Comm) error {
				buf := make([]int64, 1)
				req, err := Irecv(c, buf, contiguousN(1), 1-c.Rank(), 77)
				if err != nil {
					return err
				}
				if !req.Cancel() {
					return fmt.Errorf("cancel of unmatched receive failed")
				}
				if _, err := req.Wait(); !errors.Is(err, ErrCancelled) {
					return fmt.Errorf("after cancel: Wait returned %v, want ErrCancelled", err)
				}
				// Both ranks finish cancelling before any real tag-77
				// traffic starts, or the peer's send could match the
				// receive first (legitimately making it uncancellable).
				if err := Barrier(c); err != nil {
					return err
				}
				// Mailbox still clean: a real exchange on the same tag works.
				out := []int64{int64(c.Rank())}
				in := make([]int64, 1)
				if _, err := Sendrecv(c, out, contiguousN(1), 1-c.Rank(), 77,
					in, contiguousN(1), 1-c.Rank(), 77); err != nil {
					return err
				}
				if in[0] != int64(1-c.Rank()) {
					return fmt.Errorf("post-cancel exchange got %d", in[0])
				}
				return nil
			},
		},
		{
			// A burst that lands before its receives are posted must park
			// in the unexpected queue (detached to pooled wires), deliver
			// correctly, and leave zero wires outstanding at the end —
			// identical pool hygiene on every path.
			name: "unexpected-queue-pool-hygiene", procs: 2,
			run: func(c *Comm) error {
				const n = 64
				if c.Rank() == 0 {
					buf := make([]float64, 256)
					for i := 0; i < n; i++ {
						for j := range buf {
							buf[j] = float64(i*1000 + j)
						}
						// Reuse one buffer for every send: buffered-send
						// semantics must hold even with no receive posted.
						if err := SendSlice(c, buf, 1, 4); err != nil {
							return err
						}
					}
					if err := Barrier(c); err != nil {
						return err
					}
				} else {
					if err := Barrier(c); err != nil { // all sends in flight or parked
						return err
					}
					got := make([]float64, 256)
					for i := 0; i < n; i++ {
						if _, err := RecvSlice(c, got, 0, 4); err != nil {
							return err
						}
						if got[0] != float64(i*1000) || got[255] != float64(i*1000+255) {
							return fmt.Errorf("burst message %d corrupted: [%v .. %v]", i, got[0], got[255])
						}
					}
				}
				if err := Barrier(c); err != nil {
					return err
				}
				if c.Rank() == 0 {
					// Settle: remote decode hands wires back asynchronously
					// only between deliver and consume; after the barrier
					// every message is consumed.
					for i := 0; i < 100 && c.w.wireOut.Load() != 0; i++ {
						time.Sleep(time.Millisecond)
					}
					if n := c.w.wireOut.Load(); n != 0 {
						return fmt.Errorf("%d wire buffers leaked", n)
					}
				}
				return nil
			},
		},
		{
			// Large-message framing: a payload far beyond any coalescing
			// buffer must arrive intact.
			name: "large-message", procs: 2,
			run: func(c *Comm) error {
				const n = 1 << 20 // 8 MiB of int64
				if c.Rank() == 0 {
					buf := make([]int64, n)
					for i := range buf {
						buf[i] = int64(i) * 2654435761
					}
					return SendSlice(c, buf, 1, 6)
				}
				got := make([]int64, n)
				if _, err := RecvSlice(c, got, 0, 6); err != nil {
					return err
				}
				for _, i := range []int{0, 1, n/2 - 1, n - 2, n - 1} {
					if got[i] != int64(i)*2654435761 {
						return fmt.Errorf("element %d = %d", i, got[i])
					}
				}
				return nil
			},
		},
		{
			// Named element types are not wire-encodable; the runtime must
			// still carry them (local fallback), not fail or corrupt.
			name: "non-pod-payload", procs: 2,
			run: func(c *Comm) error {
				type pair = time.Duration // named non-registry type
				out := []pair{pair(c.Rank() + 1), pair(c.Rank() + 2)}
				in := make([]pair, 2)
				if _, err := Sendrecv(c, out, contiguousN(2), 1-c.Rank(), 8,
					in, contiguousN(2), 1-c.Rank(), 8); err != nil {
					return err
				}
				if in[0] != pair(2-c.Rank()) {
					return fmt.Errorf("named-type payload got %v", in)
				}
				return nil
			},
		},
		{
			// Interleaved wire-encodable and non-encodable payloads to the
			// same peer on one tag: the non-POD path must not overtake
			// frames still queued in the self-link pipe — per-sender order
			// (and with it the receiver's sseq dedup) has to hold across
			// the two delivery mechanisms, or earlier in-flight messages
			// are dropped as duplicates and the receiver hangs.
			name: "mixed-pod-named-order", procs: 2,
			run: func(c *Comm) error {
				type tick = time.Duration // named non-registry type
				const k = 8
				if c.Rank() == 0 {
					for i := 0; i < k; i++ {
						if i%2 == 0 {
							if err := SendSlice(c, []int64{int64(i)}, 1, 9); err != nil {
								return err
							}
						} else if err := SendSlice(c, []tick{tick(i)}, 1, 9); err != nil {
							return err
						}
					}
					return nil
				}
				for i := 0; i < k; i++ {
					if i%2 == 0 {
						got := make([]int64, 1)
						if _, err := RecvSlice(c, got, 0, 9); err != nil {
							return err
						}
						if got[0] != int64(i) {
							return fmt.Errorf("message %d carried %d", i, got[0])
						}
					} else {
						got := make([]tick, 1)
						if _, err := RecvSlice(c, got, 0, 9); err != nil {
							return err
						}
						if got[0] != tick(i) {
							return fmt.Errorf("message %d carried %v", i, got[0])
						}
					}
				}
				return nil
			},
		},
		{
			// Epoch-floor stale drain: after a crash and RecoverShrink,
			// survivors exchange on the shrunk communicator while any
			// pre-recovery straggler is discarded by the floor — the
			// recovery protocol must converge over every backend.
			name: "epoch-floor-recovery", procs: 4,
			cfg: Config{
				Faults: &FaultPlan{Crashes: []Crash{{Rank: 2, AtOp: 5}}},
			},
			run: func(c *Comm) error {
				p := c.Size()
				next, prev := (c.Rank()+1)%p, (c.Rank()-1+p)%p
				var ringErr error
				for i := 0; i < 12; i++ {
					out, in := []int{c.Rank()}, make([]int, 1)
					if _, err := Sendrecv(c, out, contiguousN(1), next, 0,
						in, contiguousN(1), prev, 0); err != nil {
						ringErr = err
						break
					}
				}
				if ringErr == nil {
					return fmt.Errorf("rank %d never observed the crash", c.Rank())
				}
				c.Revoke()
				nc, info, err := c.RecoverShrink()
				if err != nil {
					return fmt.Errorf("rank %d: RecoverShrink: %w", c.Rank(), err)
				}
				if info.Epoch < 1 || nc.Size() != 3 {
					return fmt.Errorf("rank %d: epoch %d size %d", c.Rank(), info.Epoch, nc.Size())
				}
				sum := []int{c.Rank()}
				if err := Allreduce(nc, sum, sum, SumOp[int]); err != nil {
					return err
				}
				if sum[0] != 0+1+3 {
					return fmt.Errorf("post-recovery allreduce = %d", sum[0])
				}
				return nil
			},
			wantErr: IsRankFailed,
		},
		{
			// Injected duplicates must be suppressed by the per-sender
			// sequence numbers on every backend — over a wire the dup is a
			// second full frame.
			name: "duplicate-suppression", procs: 2,
			cfg: Config{
				// Every rank-0 message is delivered twice; the receiver
				// must see each exactly once.
				Faults: &FaultPlan{Dups: []MsgDup{{From: 0, To: 1}}},
			},
			run: func(c *Comm) error {
				const n = 30
				if c.Rank() == 0 {
					for i := 0; i < n; i++ {
						if err := SendSlice(c, []int64{int64(i)}, 1, 5); err != nil {
							return err
						}
					}
					return nil
				}
				got := make([]int64, 1)
				for i := 0; i < n; i++ {
					if _, err := RecvSlice(c, got, 0, 5); err != nil {
						return err
					}
					if got[0] != int64(i) {
						return fmt.Errorf("message %d carried %d (duplicate leaked)", i, got[0])
					}
				}
				// No extra message may remain.
				time.Sleep(10 * time.Millisecond)
				if found, st, _ := Iprobe(c, 0, 5); found {
					return fmt.Errorf("stray duplicate in mailbox: %+v", st)
				}
				return nil
			},
		},
		{
			// Dropped messages: the send completes (buffered semantics),
			// the payload never arrives, and the receiver can detect the
			// gap — behavior must not depend on where the drop happened.
			name: "message-drop", procs: 2,
			cfg: Config{
				// The 3rd and 6th rank-0→rank-1 messages are lost in
				// transit.
				Faults: &FaultPlan{Drops: []MsgDrop{
					{From: 0, To: 1, Nth: 3}, {From: 0, To: 1, Nth: 6},
				}},
			},
			run: func(c *Comm) error {
				const n = 8
				if c.Rank() == 0 {
					for i := 1; i <= n; i++ {
						if err := SendSlice(c, []int64{int64(i)}, 1, 2); err != nil {
							return err
						}
					}
					return nil
				}
				got := make([]int64, 1)
				want := []int64{1, 2, 4, 5, 7, 8}
				for _, w := range want {
					if _, err := RecvSlice(c, got, 0, 2); err != nil {
						return err
					}
					if got[0] != w {
						return fmt.Errorf("got %d, want %d (drop pattern broken)", got[0], w)
					}
				}
				return nil
			},
		},
		{
			// Concurrent communicators: traffic on split and duplicated
			// contexts must stay isolated while sharing connections.
			name: "context-isolation", procs: 4,
			run: func(c *Comm) error {
				dup, err := c.Dup()
				if err != nil {
					return err
				}
				half, err := c.Split(c.Rank()%2, c.Rank())
				if err != nil {
					return err
				}
				var wg sync.WaitGroup
				errs := make([]error, 2)
				wg.Add(2)
				go func() {
					defer wg.Done()
					sum := []int{c.Rank() + 1}
					if err := Allreduce(dup, sum, sum, SumOp[int]); err != nil {
						errs[0] = err
						return
					}
					if sum[0] != 1+2+3+4 {
						errs[0] = fmt.Errorf("dup allreduce = %d", sum[0])
					}
				}()
				go func() {
					defer wg.Done()
					sum := []int{c.Rank() + 1}
					if err := Allreduce(half, sum, sum, SumOp[int]); err != nil {
						errs[1] = err
						return
					}
					want := 1 + 3 // ranks 0,2
					if c.Rank()%2 == 1 {
						want = 2 + 4
					}
					if sum[0] != want {
						errs[1] = fmt.Errorf("split allreduce = %d, want %d", sum[0], want)
					}
				}()
				wg.Wait()
				return errors.Join(errs[0], errs[1])
			},
		},
	}
}

// TestTransportConformance runs every battery leg against every backend.
func TestTransportConformance(t *testing.T) {
	for _, leg := range conformanceSuite() {
		for _, backend := range conformanceBackends {
			t.Run(leg.name+"/"+backend, func(t *testing.T) {
				err := runBackend(backend, leg.procs, leg.cfg, leg.run)
				if leg.wantErr != nil {
					if !leg.wantErr(err) {
						t.Fatalf("run error = %v, want the leg's expected failure class", err)
					}
					return
				}
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestTransportEnvSelection covers the CARTCC_TRANSPORT entry point end to
// end: a plain Run must detour through the selected backend.
func TestTransportEnvSelection(t *testing.T) {
	for _, backend := range []string{"tcp", "unix", "loopback"} {
		t.Run(backend, func(t *testing.T) {
			t.Setenv(EnvTransport, backend)
			if got, want := TransportEnvActive(), backend != "loopback"; got != want {
				t.Fatalf("TransportEnvActive() = %v, want %v", got, want)
			}
			err := Run(Config{Procs: 3, Timeout: 20 * time.Second}, func(c *Comm) error {
				sum := []int{c.Rank() + 1}
				if err := Allreduce(c, sum, sum, SumOp[int]); err != nil {
					return err
				}
				if sum[0] != 6 {
					return fmt.Errorf("allreduce = %d", sum[0])
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
	t.Run("invalid", func(t *testing.T) {
		t.Setenv(EnvTransport, "carrier-pigeon")
		err := Run(Config{Procs: 2}, func(c *Comm) error { return nil })
		if err == nil {
			t.Fatal("unknown transport accepted")
		}
	})
}

// TestTransportMalformedFrames injects garbage into a live transport
// listener: the hostile connection must be torn down with no effect on the
// world's own traffic, and every malformed frame must map to a typed
// decode error (exercised directly against the codec elsewhere; here the
// world must simply survive).
func TestTransportMalformedFrames(t *testing.T) {
	nt, err := newNetTransport(TransportConfig{
		Network:     "tcp",
		Procs:       []ProcSpec{{Addr: "127.0.0.1:0", Ranks: []int{0, 1}}},
		Self:        0,
		ForceRemote: true,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer nt.Close()
	inject := func(frames ...[]byte) error {
		conn, err := net.Dial("tcp", nt.Addr())
		if err != nil {
			return err
		}
		defer conn.Close()
		for _, f := range frames {
			if _, err := conn.Write(f); err != nil {
				return err
			}
		}
		// Give the reader a moment to chew before the world's own checks.
		time.Sleep(5 * time.Millisecond)
		return nil
	}
	err = runWorld(Config{Procs: 2, Timeout: 20 * time.Second}, nt, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			// Truncated frame, bad magic, oversized length prefix, raw noise.
			if err := inject([]byte{0x05, 0xCC, 0x01}); err != nil {
				return err
			}
			if err := inject([]byte{0x03, 0xAB, 0xCD, 0xEF}); err != nil {
				return err
			}
			if err := inject([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}); err != nil {
				return err
			}
			if err := inject([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
				return err
			}
		}
		if err := Barrier(c); err != nil {
			return err
		}
		// World traffic is unaffected.
		out := []int64{int64(c.Rank() + 40)}
		in := make([]int64, 1)
		if _, err := Sendrecv(c, out, contiguousN(1), 1-c.Rank(), 1,
			in, contiguousN(1), 1-c.Rank(), 1); err != nil {
			return err
		}
		if in[0] != int64(41-c.Rank()) {
			return fmt.Errorf("exchange got %d", in[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTransportConfigValidation covers the rank/address map checks.
func TestTransportConfigValidation(t *testing.T) {
	base := func() TransportConfig {
		return TransportConfig{
			Network: "tcp",
			Procs: []ProcSpec{
				{Addr: "127.0.0.1:0", Ranks: []int{0, 1}},
				{Addr: "127.0.0.1:0", Ranks: []int{2}},
			},
		}
	}
	cases := []struct {
		name string
		mut  func(*TransportConfig)
	}{
		{"bad network", func(tc *TransportConfig) { tc.Network = "smoke-signal" }},
		{"self out of range", func(tc *TransportConfig) { tc.Self = 5 }},
		{"rank hosted twice", func(tc *TransportConfig) { tc.Procs[1].Ranks = []int{1} }},
		{"rank out of range", func(tc *TransportConfig) { tc.Procs[1].Ranks = []int{7} }},
		{"missing rank", func(tc *TransportConfig) { tc.Procs[1].Ranks = nil }},
		{"missing address", func(tc *TransportConfig) { tc.Procs[1].Addr = "" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			err := RunTransport(Config{Procs: 3}, cfg, func(c *Comm) error { return nil })
			if err == nil {
				t.Fatal("invalid transport config accepted")
			}
		})
	}
	t.Run("model rejected", func(t *testing.T) {
		// Virtual time cannot span processes.
		cfg := base()
		err := RunTransport(Config{Procs: 3, Model: netmodel.Hydra()}, cfg, func(c *Comm) error { return nil })
		if err == nil {
			t.Fatal("virtual-time transport run accepted")
		}
	})
}
