package mpi

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"cartcc/internal/netmodel"
	"cartcc/internal/trace"
)

func TestRuntimeTracing(t *testing.T) {
	rec := trace.NewRecorder(2)
	err := Run(Config{Procs: 2, Model: netmodel.Hydra(), Seed: 1, Recorder: rec, Timeout: 10 * time.Second}, func(c *Comm) error {
		if c.Rank() == 0 {
			return SendSlice(c, make([]int32, 100), 1, 3)
		}
		buf := make([]int32, 100)
		_, err := RecvSlice(c, buf, 0, 3)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	if len(events) != 2 {
		t.Fatalf("%d events, want send+recv", len(events))
	}
	var send, recv *trace.Event
	for i := range events {
		switch events[i].Kind {
		case trace.KindSend:
			send = &events[i]
		case trace.KindRecv:
			recv = &events[i]
		}
	}
	if send == nil || recv == nil {
		t.Fatalf("missing kinds: %+v", events)
	}
	if send.Rank != 0 || send.Peer != 1 || send.Bytes != 400 || send.Tag != 3 {
		t.Errorf("send event %+v", send)
	}
	if recv.Rank != 1 || recv.Peer != 0 || recv.Bytes != 400 {
		t.Errorf("recv event %+v", recv)
	}
	if send.End <= send.Start {
		t.Errorf("send has no duration: %+v", send)
	}
	if recv.End <= recv.Start {
		t.Errorf("recv has no duration: %+v", recv)
	}
	if recv.End <= send.End {
		t.Errorf("recv completed before send finished injecting")
	}
}

func TestTracingRequiresModel(t *testing.T) {
	rec := trace.NewRecorder(2)
	err := Run(Config{Procs: 2, Recorder: rec}, func(c *Comm) error { return nil })
	if err == nil {
		t.Fatal("tracing without a model accepted")
	}
}

func TestTracingRecorderTooSmall(t *testing.T) {
	rec := trace.NewRecorder(1)
	err := Run(Config{Procs: 2, Model: netmodel.Hydra(), Recorder: rec}, func(c *Comm) error { return nil })
	if err == nil {
		t.Fatal("undersized recorder accepted")
	}
}

func TestTracingCollective(t *testing.T) {
	const p = 4
	rec := trace.NewRecorder(p)
	err := Run(Config{Procs: p, Model: netmodel.Hydra(), Seed: 1, Recorder: rec, Timeout: 10 * time.Second}, func(c *Comm) error {
		vals := []float64{1}
		if err := Allreduce(c, vals, vals, SumOp[float64]); err != nil {
			return err
		}
		if vals[0] != p {
			return fmt.Errorf("allreduce %v", vals[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Events()) == 0 {
		t.Fatal("collective produced no events")
	}
	out := rec.Render(60)
	for r := 0; r < p; r++ {
		if want := fmt.Sprintf("rank %3d", r); !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}
