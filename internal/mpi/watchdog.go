package mpi

import (
	"fmt"
	"strings"
	"time"
)

// This file implements the wait-for-graph deadlock monitor that replaces
// the old blind per-receive timer as the runtime's first line of defense.
// Every blocking wait registers what it waits for; a monitor goroutine
// samples the registry and fails the run with a full diagnostic the moment
// it can prove no rank will make progress — in milliseconds, instead of a
// 60-second timeout that names one receive.

// DefaultDeadlockPoll is the default sampling interval of the wait-for-graph
// deadlock monitor.
const DefaultDeadlockPoll = time.Millisecond

// blockedOp is one rank's registered blocked state: the operation it is
// waiting in, when the wait started, and the channels whose fill would
// release it (the monitor's liveness check reads only channel lengths, so
// it never races with the rank).
type blockedOp struct {
	kind  string // "recv", "waitany", or "waitsome"
	src   int    // communicator-level source (recv kind; may be AnySource)
	tag   int
	ctx   int64
	since time.Time
	// pendings are the posted receives whose delivery releases the rank;
	// srcWorlds are the corresponding exact source world ranks (-1 for
	// wildcard), aligned by index.
	pendings  []*pendingRecv
	srcWorlds []int
}

// describe renders the blocked operation for the diagnostic report.
func (op *blockedOp) describe() string {
	if op.kind == "waitany" || op.kind == "waitsome" {
		return fmt.Sprintf("%s over %d pending receive(s)", op.kind, len(op.pendings))
	}
	src := fmt.Sprintf("%d", op.src)
	if op.src == AnySource {
		src = "any"
	}
	tag := fmt.Sprintf("%d", op.tag)
	if op.tag == AnyTag {
		tag = "any"
	}
	return fmt.Sprintf("recv(src=%s tag=%s ctx=%d)", src, tag, op.ctx)
}

// satisfiable reports whether any awaited receive has had a message (or
// poison) matched to it: the rank is being released — or was released and
// simply hasn't been scheduled to deregister yet — not deadlocked. The
// delivered flag, not the channel length, is the sound signal: a preempted
// receiver may have drained the channel already.
func (op *blockedOp) satisfiable() bool {
	for _, p := range op.pendings {
		if p.delivered.Load() || len(p.ready) > 0 {
			return true
		}
	}
	return false
}

// setBlocked registers the calling rank's blocked state; clearBlocked
// removes it. Both are cheap atomic pointer stores on the rank's own slot.
func (w *World) setBlocked(rank int, op *blockedOp) { w.blocked[rank].Store(op) }
func (w *World) clearBlocked(rank int)              { w.blocked[rank].Store(nil) }

// BlockedRank is one rank's entry in a deadlock report: its pending
// operation and the unexpected messages queued in its mailbox (the
// mismatched traffic that explains *why* nothing matches).
type BlockedRank struct {
	Rank       int
	Op         string
	BlockedFor time.Duration
	// WaitsOn is the exact source world rank the op waits on, or -1.
	WaitsOn int
	// Queued are the envelopes of the rank's unexpected-message queue.
	Queued []string
}

// DeadlockError is the wait-for-graph monitor's diagnosis: which proof of
// non-progress fired and every blocked rank's pending operation with its
// queued unexpected messages. Match with errors.As.
type DeadlockError struct {
	// Kind is the proof that fired: "all-blocked" (every live rank waits on
	// an unsatisfiable receive), "cycle" (a wait-for cycle among exact-source
	// receives), or "orphan" (a receive from a rank that already finished).
	Kind string
	// Cycle holds the world ranks of the wait-for cycle, in order (cycle
	// kind only).
	Cycle []int
	// Blocked reports every currently blocked rank.
	Blocked []BlockedRank
	// Finished and Failed list ranks that completed or crashed.
	Finished []int
	Failed   []int
}

// Error renders the full multi-line diagnostic report.
func (e *DeadlockError) Error() string {
	var b strings.Builder
	switch e.Kind {
	case "cycle":
		parts := make([]string, 0, len(e.Cycle)+1)
		for _, r := range e.Cycle {
			parts = append(parts, fmt.Sprintf("%d", r))
		}
		parts = append(parts, fmt.Sprintf("%d", e.Cycle[0]))
		fmt.Fprintf(&b, "mpi: deadlock detected: wait-for cycle %s", strings.Join(parts, " -> "))
	case "orphan":
		fmt.Fprintf(&b, "mpi: deadlock detected: blocked receive from a finished rank")
	default:
		fmt.Fprintf(&b, "mpi: deadlock detected: all %d live ranks blocked", len(e.Blocked))
	}
	for _, br := range e.Blocked {
		fmt.Fprintf(&b, "\n  rank %d: %s blocked %v", br.Rank, br.Op, br.BlockedFor.Round(time.Millisecond))
		if len(br.Queued) == 0 {
			b.WriteString("; unexpected queue empty")
		} else {
			fmt.Fprintf(&b, "; unexpected queue: %s", strings.Join(br.Queued, ", "))
		}
	}
	if len(e.Finished) > 0 {
		fmt.Fprintf(&b, "\n  finished ranks: %v", e.Finished)
	}
	if len(e.Failed) > 0 {
		fmt.Fprintf(&b, "\n  failed ranks: %v", e.Failed)
	}
	return b.String()
}

// runMonitor samples the blocked registry every interval and fails the run
// once a deadlock proof holds on two consecutive samples (the confirmation
// absorbs the harmless instant between a message being handed over and the
// receiver waking).
func (w *World) runMonitor(interval time.Duration, stop <-chan struct{}) {
	minBlocked := 4 * interval
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	confirmations := 0
	for {
		select {
		case <-stop:
			return
		case <-w.abort:
			return
		case <-ticker.C:
		}
		if diag := w.deadlockCheck(minBlocked); diag != nil {
			confirmations++
			if confirmations >= 2 {
				w.fail(diag)
				return
			}
		} else {
			confirmations = 0
		}
	}
}

// inFlightStallBound is how long deadlockCheck defers to a transport
// InFlight() count that is positive but not advancing. A healthy pipe
// drains in microseconds; a count frozen for this long means its frames
// were lost (e.g. a failed self-link) and the blocked-rank proofs are
// sound again — without the bound, a wedged pipe would suppress deadlock
// detection forever.
const inFlightStallBound = 2 * time.Second

// deadlockCheck applies the three proofs of non-progress to a snapshot of
// the blocked registry and returns a diagnosis, or nil while progress is
// still possible.
func (w *World) deadlockCheck(minBlocked time.Duration) *DeadlockError {
	// A transport with frames still in its self-loop pipe (accepted by Send,
	// not yet handed to a local mailbox) is progress in motion the blocked
	// registry cannot see; no proof is sound until the pipe drains — unless
	// the count has been frozen past inFlightStallBound.
	if t := w.transport; t != nil {
		if n := t.InFlight(); n > 0 {
			if n != w.dlInFlight || w.dlInFlightSince.IsZero() {
				w.dlInFlight, w.dlInFlightSince = n, time.Now()
			}
			if time.Since(w.dlInFlightSince) < inFlightStallBound {
				return nil
			}
		} else if w.dlInFlight != 0 {
			w.dlInFlight, w.dlInFlightSince = 0, time.Time{}
		}
	}
	n := w.size
	now := time.Now()
	ops := make([]*blockedOp, n)
	stuck := make([]bool, n) // blocked long enough, nothing deliverable
	finished := make([]bool, n)
	active := 0
	allStuck := true
	for r := 0; r < n; r++ {
		if w.done[r].Load() {
			finished[r] = true
			continue
		}
		active++
		op := w.blocked[r].Load()
		ops[r] = op
		if op == nil || now.Sub(op.since) < minBlocked || op.satisfiable() {
			allStuck = false
			continue
		}
		stuck[r] = true
	}
	if active == 0 {
		return nil
	}
	if allStuck {
		return w.buildDiagnosis("all-blocked", nil, ops, finished)
	}
	// Orphan wait: an exact-source receive from a rank that has finished
	// (or died) can never be matched — finished ranks send nothing more.
	for r := 0; r < n; r++ {
		if !stuck[r] || ops[r].kind != "recv" {
			continue
		}
		src := ops[r].srcWorlds[0]
		if src >= 0 && finished[src] {
			return w.buildDiagnosis("orphan", nil, ops, finished)
		}
	}
	// Wait-for cycle among stuck exact-source receives: every member waits
	// on the next, none can send until released.
	edge := make([]int, n)
	for r := 0; r < n; r++ {
		edge[r] = -1
		if stuck[r] && ops[r].kind == "recv" && ops[r].srcWorlds[0] >= 0 {
			edge[r] = ops[r].srcWorlds[0]
		}
	}
	state := make([]int, n) // 0 unvisited, 1 on path, 2 done
	for start := 0; start < n; start++ {
		var path []int
		for r := start; r >= 0 && edge[r] >= 0; r = edge[r] {
			if state[r] == 2 {
				break
			}
			if state[r] == 1 {
				// Found the cycle: trim the path's leading tail.
				for i, pr := range path {
					if pr == r {
						return w.buildDiagnosis("cycle", path[i:], ops, finished)
					}
				}
				break
			}
			state[r] = 1
			path = append(path, r)
		}
		for _, r := range path {
			state[r] = 2
		}
	}
	return nil
}

// buildDiagnosis assembles the report: every blocked rank's pending op and
// unexpected-message queue, plus the finished and failed rank lists.
func (w *World) buildDiagnosis(kind string, cycle []int, ops []*blockedOp, finished []bool) *DeadlockError {
	now := time.Now()
	diag := &DeadlockError{Kind: kind, Cycle: append([]int(nil), cycle...)}
	for r := 0; r < w.size; r++ {
		if finished[r] {
			diag.Finished = append(diag.Finished, r)
			continue
		}
		op := ops[r]
		if op == nil {
			continue
		}
		waitsOn := -1
		if op.kind == "recv" {
			waitsOn = op.srcWorlds[0]
		}
		diag.Blocked = append(diag.Blocked, BlockedRank{
			Rank:       r,
			Op:         op.describe(),
			BlockedFor: now.Sub(op.since),
			WaitsOn:    waitsOn,
			Queued:     w.ranks[r].box.snapshotArrived(),
		})
	}
	diag.Failed = w.deadRanks()
	return diag
}
