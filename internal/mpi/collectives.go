package mpi

import (
	"cmp"
	"fmt"

	"cartcc/internal/datatype"
)

// collCtxBit separates collective traffic from point-to-point traffic on
// the same communicator, playing the role of MPI's hidden collective
// context: a user AnyTag receive can never match a collective message.
const collCtxBit = int64(1) << 62

// coll returns a shadow communicator in the collective context.
func (c *Comm) coll() *Comm {
	cc := *c
	cc.ctx ^= collCtxBit
	return &cc
}

// Barrier blocks until every process in the communicator has entered it.
// Dissemination algorithm: ⌈log2 p⌉ rounds of empty-message exchange.
func Barrier(c *Comm) error {
	cc := c.coll()
	p := cc.size
	for dist := 1; dist < p; dist <<= 1 {
		dst := (cc.rank + dist) % p
		src := (cc.rank - dist%p + p) % p
		if _, err := Sendrecv(cc, []byte{}, datatype.Layout{}, dst, 1,
			[]byte{}, datatype.Layout{}, src, 1); err != nil {
			return err
		}
	}
	return nil
}

// Bcast broadcasts buf from root to every process, binomial tree.
func Bcast[T any](c *Comm, buf []T, root int) error {
	if err := c.checkRank(root, "root"); err != nil {
		return err
	}
	cc := c.coll()
	p := cc.size
	relative := (cc.rank - root + p) % p
	whole := datatype.Contiguous(0, len(buf))
	mask := 1
	for mask < p {
		if relative&mask != 0 {
			src := ((relative - mask) + root) % p
			if _, err := Recv(cc, buf, whole, src, 2); err != nil {
				return err
			}
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if relative+mask < p {
			dst := ((relative + mask) + root) % p
			if err := Send(cc, buf, whole, dst, 2); err != nil {
				return err
			}
		}
		mask >>= 1
	}
	return nil
}

// Reduce combines the send buffers of all processes element-wise with op
// (which must be associative and commutative) and leaves the result in recv
// at root. recv is ignored on non-roots. Binomial tree.
func Reduce[T any](c *Comm, send, recv []T, op func(a, b T) T, root int) error {
	if err := c.checkRank(root, "root"); err != nil {
		return err
	}
	if c.rank == root && len(recv) < len(send) {
		return fmt.Errorf("mpi: Reduce recv length %d < send length %d", len(recv), len(send))
	}
	cc := c.coll()
	p := cc.size
	relative := (cc.rank - root + p) % p
	acc := make([]T, len(send))
	copy(acc, send)
	tmp := make([]T, len(send))
	whole := datatype.Contiguous(0, len(send))
	for mask := 1; mask < p; mask <<= 1 {
		if relative&mask != 0 {
			dst := ((relative &^ mask) + root) % p
			return Send(cc, acc, whole, dst, 3)
		}
		peer := relative | mask
		if peer < p {
			if _, err := Recv(cc, tmp, whole, (peer+root)%p, 3); err != nil {
				return err
			}
			for i := range acc {
				acc[i] = op(acc[i], tmp[i])
			}
		}
	}
	copy(recv, acc)
	return nil
}

// Allreduce is Reduce followed by Bcast; the result lands in recv on every
// process.
func Allreduce[T any](c *Comm, send, recv []T, op func(a, b T) T) error {
	if len(recv) < len(send) {
		return fmt.Errorf("mpi: Allreduce recv length %d < send length %d", len(recv), len(send))
	}
	if err := Reduce(c, send, recv, op, 0); err != nil {
		return err
	}
	return Bcast(c, recv[:len(send)], 0)
}

// Gather collects the equally-sized send blocks of all processes into recv
// at root, in rank order. recv must have p·len(send) elements at root.
func Gather[T any](c *Comm, send, recv []T, root int) error {
	if err := c.checkRank(root, "root"); err != nil {
		return err
	}
	cc := c.coll()
	blk := len(send)
	if cc.rank != root {
		return Send(cc, send, datatype.Contiguous(0, blk), root, 4)
	}
	if len(recv) < cc.size*blk {
		return fmt.Errorf("mpi: Gather recv length %d < %d", len(recv), cc.size*blk)
	}
	reqs := make([]*Request, 0, cc.size)
	for r := 0; r < cc.size; r++ {
		if r == root {
			copy(recv[r*blk:(r+1)*blk], send)
			continue
		}
		req, err := Irecv(cc, recv, datatype.Contiguous(r*blk, blk), r, 4)
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return Waitall(reqs...)
}

// Scatter distributes root's send buffer in equally-sized blocks to all
// processes in rank order; each receives its block in recv.
func Scatter[T any](c *Comm, send, recv []T, root int) error {
	if err := c.checkRank(root, "root"); err != nil {
		return err
	}
	cc := c.coll()
	blk := len(recv)
	if cc.rank == root {
		if len(send) < cc.size*blk {
			return fmt.Errorf("mpi: Scatter send length %d < %d", len(send), cc.size*blk)
		}
		for r := 0; r < cc.size; r++ {
			if r == root {
				copy(recv, send[r*blk:(r+1)*blk])
				continue
			}
			if err := Send(cc, send, datatype.Contiguous(r*blk, blk), r, 5); err != nil {
				return err
			}
		}
		return nil
	}
	_, err := Recv(cc, recv, datatype.Contiguous(0, blk), root, 5)
	return err
}

// Allgather collects the equally-sized send blocks of all processes into
// recv on every process, in rank order. Ring algorithm: p−1 rounds of
// neighbor exchange.
func Allgather[T any](c *Comm, send, recv []T) error {
	cc := c.coll()
	p := cc.size
	blk := len(send)
	if len(recv) < p*blk {
		return fmt.Errorf("mpi: Allgather recv length %d < %d", len(recv), p*blk)
	}
	copy(recv[cc.rank*blk:(cc.rank+1)*blk], send)
	if p == 1 {
		return nil
	}
	right := (cc.rank + 1) % p
	left := (cc.rank - 1 + p) % p
	for i := 0; i < p-1; i++ {
		sendBlk := ((cc.rank-i)%p + p) % p
		recvBlk := ((cc.rank-i-1)%p + p) % p
		if _, err := Sendrecv(cc,
			recv, datatype.Contiguous(sendBlk*blk, blk), right, 6,
			recv, datatype.Contiguous(recvBlk*blk, blk), left, 6); err != nil {
			return err
		}
	}
	return nil
}

// Alltoall sends block r of send to process r and receives block r of recv
// from process r, for all r; direct delivery with nonblocking operations.
// len(send) and len(recv) must both be p·blk for a common block size blk.
func Alltoall[T any](c *Comm, send, recv []T) error {
	cc := c.coll()
	p := cc.size
	if len(send)%p != 0 || len(recv) != len(send) {
		return fmt.Errorf("mpi: Alltoall buffer lengths %d/%d not divisible into %d equal blocks", len(send), len(recv), p)
	}
	blk := len(send) / p
	reqs := make([]*Request, 0, 2*p)
	for r := 0; r < p; r++ {
		req, err := Irecv(cc, recv, datatype.Contiguous(r*blk, blk), r, 7)
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	for r := 0; r < p; r++ {
		req, err := Isend(cc, send, datatype.Contiguous(r*blk, blk), r, 7)
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return Waitall(reqs...)
}

// Gatherv collects blocks of varying size at root: process r contributes
// len(send) elements, placed at recvDispls[r] in recv; recvCounts[r] must
// equal the contribution's length. Only root reads recvCounts/recvDispls
// and recv. Mirrors MPI_Gatherv.
func Gatherv[T any](c *Comm, send, recv []T, recvCounts, recvDispls []int, root int) error {
	if err := c.checkRank(root, "root"); err != nil {
		return err
	}
	cc := c.coll()
	if cc.rank != root {
		return Send(cc, send, datatype.Contiguous(0, len(send)), root, 10)
	}
	if len(recvCounts) != cc.size || len(recvDispls) != cc.size {
		return fmt.Errorf("mpi: Gatherv: %d counts / %d displs for %d ranks", len(recvCounts), len(recvDispls), cc.size)
	}
	reqs := make([]*Request, 0, cc.size)
	for r := 0; r < cc.size; r++ {
		l := datatype.Contiguous(recvDispls[r], recvCounts[r])
		if err := l.Validate(len(recv)); err != nil {
			return err
		}
		if r == root {
			if recvCounts[r] != len(send) {
				return fmt.Errorf("mpi: Gatherv: root count %d != contribution %d", recvCounts[r], len(send))
			}
			copy(recv[recvDispls[r]:recvDispls[r]+recvCounts[r]], send)
			continue
		}
		req, err := Irecv(cc, recv, l, r, 10)
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return Waitall(reqs...)
}

// Scatterv distributes blocks of varying size from root: process r
// receives sendCounts[r] elements from sendDispls[r] of root's send
// buffer into recv (which must hold exactly its count). Mirrors
// MPI_Scatterv.
func Scatterv[T any](c *Comm, send []T, sendCounts, sendDispls []int, recv []T, root int) error {
	if err := c.checkRank(root, "root"); err != nil {
		return err
	}
	cc := c.coll()
	if cc.rank == root {
		if len(sendCounts) != cc.size || len(sendDispls) != cc.size {
			return fmt.Errorf("mpi: Scatterv: %d counts / %d displs for %d ranks", len(sendCounts), len(sendDispls), cc.size)
		}
		for r := 0; r < cc.size; r++ {
			l := datatype.Contiguous(sendDispls[r], sendCounts[r])
			if err := l.Validate(len(send)); err != nil {
				return err
			}
			if r == root {
				copy(recv, send[sendDispls[r]:sendDispls[r]+sendCounts[r]])
				continue
			}
			if err := Send(cc, send, l, r, 11); err != nil {
				return err
			}
		}
		return nil
	}
	_, err := Recv(cc, recv, datatype.Contiguous(0, len(recv)), root, 11)
	return err
}

// Alltoallv performs the dense personalized exchange with per-peer counts
// and displacements, mirroring MPI_Alltoallv.
func Alltoallv[T any](c *Comm, send []T, sendCounts, sendDispls []int, recv []T, recvCounts, recvDispls []int) error {
	cc := c.coll()
	p := cc.size
	if len(sendCounts) != p || len(sendDispls) != p || len(recvCounts) != p || len(recvDispls) != p {
		return fmt.Errorf("mpi: Alltoallv: count/displ arrays must have %d entries", p)
	}
	reqs := make([]*Request, 0, 2*p)
	for r := 0; r < p; r++ {
		req, err := Irecv(cc, recv, datatype.Contiguous(recvDispls[r], recvCounts[r]), r, 12)
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	for r := 0; r < p; r++ {
		req, err := Isend(cc, send, datatype.Contiguous(sendDispls[r], sendCounts[r]), r, 12)
		if err != nil {
			return err
		}
		reqs = append(reqs, req)
	}
	return Waitall(reqs...)
}

// Number is the constraint for the built-in reduction helpers.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// SumOp returns a + b; the usual MPI_SUM.
func SumOp[T Number](a, b T) T { return a + b }

// MaxOp returns the larger of a and b; MPI_MAX.
func MaxOp[T cmp.Ordered](a, b T) T {
	if a > b {
		return a
	}
	return b
}

// MinOp returns the smaller of a and b; MPI_MIN.
func MinOp[T cmp.Ordered](a, b T) T {
	if a < b {
		return a
	}
	return b
}
