package mpi

import (
	"fmt"
	"testing"

	"cartcc/internal/datatype"
	"cartcc/internal/vec"
)

// contig1 is a one-element contiguous layout, shorthand for the tests.
func contig1() datatype.Layout { return datatype.Contiguous(0, 1) }

func TestCartCreateAndCoords(t *testing.T) {
	run(t, 12, func(c *Comm) error {
		cart, err := CartCreate(c, []int{3, 4}, nil, false)
		if err != nil {
			return err
		}
		if cart.Cart() == nil {
			return fmt.Errorf("no topology attached")
		}
		coords, err := cart.CartCoords(cart.Rank())
		if err != nil {
			return err
		}
		back, err := cart.CartRank(coords)
		if err != nil {
			return err
		}
		if back != cart.Rank() {
			return fmt.Errorf("round trip %d -> %v -> %d", cart.Rank(), coords, back)
		}
		// Periodic wrap in CartRank.
		r, err := cart.CartRank(vec.Vec{-1, -1})
		if err != nil {
			return err
		}
		want, _ := cart.Cart().Grid.RankOf(vec.Vec{2, 3})
		if r != want {
			return fmt.Errorf("wrapped rank %d, want %d", r, want)
		}
		return nil
	})
}

func TestCartCreateSizeMismatch(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		if _, err := CartCreate(c, []int{3, 3}, nil, false); err == nil {
			return fmt.Errorf("size mismatch accepted")
		}
		return nil
	})
}

func TestCartShift(t *testing.T) {
	run(t, 9, func(c *Comm) error {
		cart, err := CartCreate(c, []int{3, 3}, nil, false)
		if err != nil {
			return err
		}
		src, dst, srcOK, dstOK, err := cart.CartShift(1, 1)
		if err != nil || !srcOK || !dstOK {
			return fmt.Errorf("shift failed: %v %v %v", err, srcOK, dstOK)
		}
		coords, _ := cart.CartCoords(cart.Rank())
		wantDst, _ := cart.Cart().Grid.RankDisplace(cart.Rank(), vec.Vec{0, 1})
		wantSrc, _ := cart.Cart().Grid.RankDisplace(cart.Rank(), vec.Vec{0, -1})
		if dst != wantDst || src != wantSrc {
			return fmt.Errorf("coords %v: shift = %d,%d want %d,%d", coords, src, dst, wantSrc, wantDst)
		}
		// Shift exchange actually communicates correctly.
		out := []int{cart.Rank()}
		in := make([]int, 1)
		if _, err := Sendrecv(cart,
			out, contig1(), dst, 0,
			in, contig1(), src, 0); err != nil {
			return err
		}
		if in[0] != src {
			return fmt.Errorf("shift exchange got %d, want %d", in[0], src)
		}
		return nil
	})
}

func TestCartShiftMeshBoundary(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		cart, err := CartCreate(c, []int{4}, []bool{false}, false)
		if err != nil {
			return err
		}
		_, _, srcOK, dstOK, err := cart.CartShift(0, 1)
		if err != nil {
			return err
		}
		switch cart.Rank() {
		case 3:
			if dstOK {
				return fmt.Errorf("rank 3 has a right neighbor on a mesh")
			}
		case 0:
			if srcOK {
				return fmt.Errorf("rank 0 has a left source on a mesh")
			}
		default:
			if !srcOK || !dstOK {
				return fmt.Errorf("interior rank missing neighbors")
			}
		}
		return nil
	})
}

func TestCartErrorsWithoutTopology(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if _, err := c.CartCoords(0); err == nil {
			return fmt.Errorf("CartCoords without topology accepted")
		}
		if _, err := c.CartRank(vec.Vec{0}); err == nil {
			return fmt.Errorf("CartRank without topology accepted")
		}
		if _, _, _, _, err := c.CartShift(0, 1); err == nil {
			return fmt.Errorf("CartShift without topology accepted")
		}
		return nil
	})
}

func TestDistGraphCreateAndQuery(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		// Directed ring: each rank sends to rank+1, receives from rank-1.
		p := c.Size()
		targets := []int{(c.Rank() + 1) % p}
		sources := []int{(c.Rank() - 1 + p) % p}
		g, err := DistGraphCreateAdjacent(c, sources, Unweighted, targets, Unweighted, false)
		if err != nil {
			return err
		}
		in, out, err := g.DistGraphNeighborsCount()
		if err != nil || in != 1 || out != 1 {
			return fmt.Errorf("degrees %d/%d, err %v", in, out, err)
		}
		if g.Graph() == nil || g.Graph().Sources[0] != sources[0] {
			return fmt.Errorf("graph info lost")
		}
		return nil
	})
}

func TestDistGraphValidation(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if _, err := DistGraphCreateAdjacent(c, []int{5}, nil, nil, nil, false); err == nil {
			return fmt.Errorf("invalid source accepted")
		}
		if _, err := DistGraphCreateAdjacent(c, []int{0}, []int{1, 2}, nil, nil, false); err == nil {
			return fmt.Errorf("mismatched weights accepted")
		}
		return nil
	})
}

func TestNeighborAlltoallRing(t *testing.T) {
	run(t, 5, func(c *Comm) error {
		p := c.Size()
		targets := []int{(c.Rank() + 1) % p, (c.Rank() + 2) % p}
		sources := []int{(c.Rank() - 1 + p) % p, (c.Rank() - 2 + p) % p}
		g, err := DistGraphCreateAdjacent(c, sources, nil, targets, nil, false)
		if err != nil {
			return err
		}
		send := []int{c.Rank()*10 + 1, c.Rank()*10 + 2}
		recv := make([]int, 2)
		if err := NeighborAlltoall(g, send, recv); err != nil {
			return err
		}
		// Block i of recv comes from sources[i]: the rank at distance i+1
		// behind us sent its block i.
		want0 := sources[0]*10 + 1
		want1 := sources[1]*10 + 2
		if recv[0] != want0 || recv[1] != want1 {
			return fmt.Errorf("rank %d recv %v, want [%d %d]", c.Rank(), recv, want0, want1)
		}
		return nil
	})
}

func TestNeighborAlltoallMultiEdges(t *testing.T) {
	// The same peer appearing twice in the neighbor lists must match blocks
	// in list order (the paper: different targets may map to one process).
	run(t, 2, func(c *Comm) error {
		other := 1 - c.Rank()
		targets := []int{other, other}
		sources := []int{other, other}
		g, err := DistGraphCreateAdjacent(c, sources, nil, targets, nil, false)
		if err != nil {
			return err
		}
		send := []int{c.Rank()*10 + 1, c.Rank()*10 + 2}
		recv := make([]int, 2)
		if err := NeighborAlltoall(g, send, recv); err != nil {
			return err
		}
		if recv[0] != other*10+1 || recv[1] != other*10+2 {
			return fmt.Errorf("rank %d recv %v", c.Rank(), recv)
		}
		return nil
	})
}

func TestNeighborAlltoallSelfLoop(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		targets := []int{c.Rank()}
		sources := []int{c.Rank()}
		g, err := DistGraphCreateAdjacent(c, sources, nil, targets, nil, false)
		if err != nil {
			return err
		}
		send := []int{c.Rank() + 100}
		recv := make([]int, 1)
		if err := NeighborAlltoall(g, send, recv); err != nil {
			return err
		}
		if recv[0] != c.Rank()+100 {
			return fmt.Errorf("self loop recv %v", recv)
		}
		return nil
	})
}

func TestNeighborAlltoallv(t *testing.T) {
	run(t, 3, func(c *Comm) error {
		p := c.Size()
		targets := []int{(c.Rank() + 1) % p}
		sources := []int{(c.Rank() - 1 + p) % p}
		g, err := DistGraphCreateAdjacent(c, sources, nil, targets, nil, false)
		if err != nil {
			return err
		}
		// Each rank sends rank+1 elements; receives sources[0]+1 elements.
		n := c.Rank() + 1
		send := make([]int, n)
		for i := range send {
			send[i] = c.Rank()*100 + i
		}
		rn := sources[0] + 1
		recv := make([]int, rn+2)
		err = NeighborAlltoallv(g, send, []int{n}, []int{0}, recv, []int{rn}, []int{2})
		if err != nil {
			return err
		}
		for i := 0; i < rn; i++ {
			if recv[2+i] != sources[0]*100+i {
				return fmt.Errorf("rank %d recv %v", c.Rank(), recv)
			}
		}
		return nil
	})
}

func TestNeighborAllgather(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		p := c.Size()
		targets := []int{(c.Rank() + 1) % p, (c.Rank() + 3) % p}
		sources := []int{(c.Rank() - 1 + p) % p, (c.Rank() - 3 + p) % p}
		g, err := DistGraphCreateAdjacent(c, sources, nil, targets, nil, false)
		if err != nil {
			return err
		}
		send := []int{c.Rank(), c.Rank() * 7}
		recv := make([]int, 4)
		if err := NeighborAllgather(g, send, recv); err != nil {
			return err
		}
		if recv[0] != sources[0] || recv[1] != sources[0]*7 ||
			recv[2] != sources[1] || recv[3] != sources[1]*7 {
			return fmt.Errorf("rank %d recv %v (sources %v)", c.Rank(), recv, sources)
		}
		return nil
	})
}

func TestNeighborAllgatherv(t *testing.T) {
	run(t, 3, func(c *Comm) error {
		p := c.Size()
		targets := []int{(c.Rank() + 1) % p}
		sources := []int{(c.Rank() - 1 + p) % p}
		g, err := DistGraphCreateAdjacent(c, sources, nil, targets, nil, false)
		if err != nil {
			return err
		}
		n := c.Rank() + 1
		send := make([]int, n)
		for i := range send {
			send[i] = c.Rank()
		}
		rn := sources[0] + 1
		recv := make([]int, rn)
		if err := NeighborAllgatherv(g, send, recv, []int{rn}, []int{0}); err != nil {
			return err
		}
		for _, x := range recv {
			if x != sources[0] {
				return fmt.Errorf("rank %d recv %v", c.Rank(), recv)
			}
		}
		return nil
	})
}

func TestNeighborOnNonGraphComm(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if err := NeighborAlltoall(c, []int{1}, []int{0}); err == nil {
			return fmt.Errorf("neighborhood collective without topology accepted")
		}
		return nil
	})
}

func TestNeighborLengthValidation(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		other := 1 - c.Rank()
		g, err := DistGraphCreateAdjacent(c, []int{other}, nil, []int{other}, nil, false)
		if err != nil {
			return err
		}
		if err := NeighborAllgather(g, []int{1, 2}, []int{0}); err == nil {
			return fmt.Errorf("bad allgather recv length accepted")
		}
		return nil
	})
}

func TestIneighborNonblockingOverlap(t *testing.T) {
	// Two outstanding neighborhood collectives must match in call order.
	run(t, 2, func(c *Comm) error {
		other := 1 - c.Rank()
		g, err := DistGraphCreateAdjacent(c, []int{other}, nil, []int{other}, nil, false)
		if err != nil {
			return err
		}
		send1 := []int{c.Rank()*10 + 1}
		send2 := []int{c.Rank()*10 + 2}
		recv1 := make([]int, 1)
		recv2 := make([]int, 1)
		r1, err := IneighborAlltoall(g, send1, recv1)
		if err != nil {
			return err
		}
		r2, err := IneighborAlltoall(g, send2, recv2)
		if err != nil {
			return err
		}
		if err := Waitall(r2, r1); err != nil {
			return err
		}
		if recv1[0] != other*10+1 || recv2[0] != other*10+2 {
			return fmt.Errorf("rank %d got %v %v", c.Rank(), recv1, recv2)
		}
		return nil
	})
}

func TestNeighborEmptyNeighborhood(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		g, err := DistGraphCreateAdjacent(c, nil, nil, nil, nil, false)
		if err != nil {
			return err
		}
		return NeighborAlltoall(g, []int{}, []int{})
	})
}
