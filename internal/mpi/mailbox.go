package mpi

import (
	"sync"

	"cartcc/internal/netmodel"
)

// message is one in-flight point-to-point message. The payload is the
// gathered wire slice (a typed []T boxed in an any); elems and bytes record
// its extent for matching diagnostics and cost accounting.
type message struct {
	ctx     int64
	src     int // communicator rank of the sender within ctx
	tag     int
	payload any
	elems   int
	bytes   int
	arrive  netmodel.Time
}

// pendingRecv is a posted-but-unmatched receive. The matched message is
// handed over through the ready channel (buffered, capacity 1).
type pendingRecv struct {
	ctx   int64
	src   int // may be AnySource
	tag   int // may be AnyTag
	ready chan *message
}

// matches reports whether message m satisfies receive r. MPI matching:
// contexts must be equal; source and tag match exactly or via wildcard.
func (r *pendingRecv) matches(m *message) bool {
	if r.ctx != m.ctx {
		return false
	}
	if r.src != AnySource && r.src != m.src {
		return false
	}
	if r.tag != AnyTag && r.tag != m.tag {
		return false
	}
	return true
}

// mailbox holds a rank's unexpected-message queue and pending receives.
// Both lists are kept in arrival/post order, which — together with each
// sender delivering its messages sequentially from one goroutine — gives
// MPI's non-overtaking guarantee per (source, tag, context).
type mailbox struct {
	mu      sync.Mutex
	arrived []*message
	recvs   []*pendingRecv
}

// deliver hands a message to the mailbox: the first matching pending
// receive in post order gets it, otherwise it queues as unexpected.
func (b *mailbox) deliver(m *message) {
	b.mu.Lock()
	for i, r := range b.recvs {
		if r.matches(m) {
			b.recvs = append(b.recvs[:i], b.recvs[i+1:]...)
			b.mu.Unlock()
			r.ready <- m
			return
		}
	}
	b.arrived = append(b.arrived, m)
	b.mu.Unlock()
}

// post registers a receive: the first matching unexpected message in
// arrival order satisfies it immediately, otherwise the receive pends.
func (b *mailbox) post(r *pendingRecv) {
	b.mu.Lock()
	for i, m := range b.arrived {
		if r.matches(m) {
			b.arrived = append(b.arrived[:i], b.arrived[i+1:]...)
			b.mu.Unlock()
			r.ready <- m
			return
		}
	}
	b.recvs = append(b.recvs, r)
	b.mu.Unlock()
}

// probe reports whether a matching message has arrived, without removing
// it, returning its envelope. Mirrors MPI_Iprobe.
func (b *mailbox) probe(ctx int64, src, tag int) (found bool, msgSrc, msgTag, elems int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	r := pendingRecv{ctx: ctx, src: src, tag: tag}
	for _, m := range b.arrived {
		if r.matches(m) {
			return true, m.src, m.tag, m.elems
		}
	}
	return false, 0, 0, 0
}
