package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cartcc/internal/netmodel"
)

// message is one in-flight point-to-point message. The payload is the
// gathered wire slice (a typed []T boxed in an any); elems and bytes record
// its extent for matching diagnostics and cost accounting. A message with
// fail set is a poison pill: the fault layer hands it to a pending receive
// that can no longer be satisfied (failed peer, revoked context) and Wait
// surfaces the error instead of a payload.
type message struct {
	ctx     int64
	src     int // communicator rank of the sender within ctx
	tag     int
	payload any
	elems   int
	bytes   int
	arrive  netmodel.Time
	fail    error
}

// pendingRecv is a posted-but-unmatched receive. The matched message is
// handed over through the ready channel (buffered, capacity 1). srcWorld
// is the exact source's world rank (AnySource for wildcard receives); the
// fault layer and the deadlock monitor key on it.
type pendingRecv struct {
	ctx      int64
	src      int // may be AnySource
	tag      int // may be AnyTag
	srcWorld int // world rank of src; AnySource for wildcard
	ready    chan *message
	// delivered is set (inside the mailbox lock) the moment a message or
	// poison is matched to this receive, before the channel handoff. The
	// deadlock monitor reads it to tell "never matched" apart from "matched
	// but the receiver hasn't been scheduled yet" — the channel length
	// alone cannot, because the receiver may have consumed the message and
	// then been preempted before deregistering its blocked state.
	delivered atomic.Bool
}

// matches reports whether message m satisfies receive r. MPI matching:
// contexts must be equal; source and tag match exactly or via wildcard.
func (r *pendingRecv) matches(m *message) bool {
	if r.ctx != m.ctx {
		return false
	}
	if r.src != AnySource && r.src != m.src {
		return false
	}
	if r.tag != AnyTag && r.tag != m.tag {
		return false
	}
	return true
}

// mailbox holds a rank's unexpected-message queue and pending receives.
// Both lists are kept in arrival/post order, which — together with each
// sender delivering its messages sequentially from one goroutine — gives
// MPI's non-overtaking guarantee per (source, tag, context).
type mailbox struct {
	mu      sync.Mutex
	arrived []*message
	recvs   []*pendingRecv
}

// deliver hands a message to the mailbox: the first matching pending
// receive in post order gets it, otherwise it queues as unexpected.
func (b *mailbox) deliver(m *message) {
	b.mu.Lock()
	for i, r := range b.recvs {
		if r.matches(m) {
			b.recvs = append(b.recvs[:i], b.recvs[i+1:]...)
			r.delivered.Store(true)
			b.mu.Unlock()
			r.ready <- m
			return
		}
	}
	b.arrived = append(b.arrived, m)
	b.mu.Unlock()
}

// post registers a receive: the first matching unexpected message in
// arrival order satisfies it immediately, otherwise the receive pends.
func (b *mailbox) post(r *pendingRecv) {
	b.mu.Lock()
	for i, m := range b.arrived {
		if r.matches(m) {
			b.arrived = append(b.arrived[:i], b.arrived[i+1:]...)
			r.delivered.Store(true)
			b.mu.Unlock()
			r.ready <- m
			return
		}
	}
	b.recvs = append(b.recvs, r)
	b.mu.Unlock()
}

// probe reports whether a matching message has arrived, without removing
// it, returning its envelope. Mirrors MPI_Iprobe.
func (b *mailbox) probe(ctx int64, src, tag int) (found bool, msgSrc, msgTag, elems int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	r := pendingRecv{ctx: ctx, src: src, tag: tag}
	for _, m := range b.arrived {
		if r.matches(m) {
			return true, m.src, m.tag, m.elems
		}
	}
	return false, 0, 0, 0
}

// poisonMatching fails every pending receive for which cond returns a
// non-nil error: the receive is removed and handed a poison message, so
// its Wait returns the error instead of blocking forever. Used by the
// fault layer when a rank dies or a context is revoked.
func (b *mailbox) poisonMatching(cond func(*pendingRecv) error) {
	b.mu.Lock()
	var hit []*pendingRecv
	var errs []error
	kept := b.recvs[:0]
	for _, r := range b.recvs {
		if err := cond(r); err != nil {
			r.delivered.Store(true)
			hit = append(hit, r)
			errs = append(errs, err)
			continue
		}
		kept = append(kept, r)
	}
	b.recvs = kept
	b.mu.Unlock()
	for i, r := range hit {
		r.ready <- &message{ctx: r.ctx, src: r.src, tag: r.tag, fail: errs[i]}
	}
}

// cancel removes a still-unmatched pending receive and reports whether it
// was removed; false means a message (or poison) has already been handed
// over and the receive must still be waited on.
func (b *mailbox) cancel(p *pendingRecv) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, r := range b.recvs {
		if r == p {
			b.recvs = append(b.recvs[:i], b.recvs[i+1:]...)
			return true
		}
	}
	return false
}

// snapshotArrived renders the envelopes of the unexpected-message queue
// for diagnostic reports.
func (b *mailbox) snapshotArrived() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.arrived))
	for _, m := range b.arrived {
		out = append(out, fmt.Sprintf("[src=%d tag=%d ctx=%d elems=%d]", m.src, m.tag, m.ctx, m.elems))
	}
	return out
}
