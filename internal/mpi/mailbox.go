package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cartcc/internal/netmodel"
)

// message is one in-flight point-to-point message. The payload is either a
// gathered wire slice (a typed []T boxed in an any) or, on the zero-copy
// fast path, a subslice of the sender's user buffer; elems and bytes record
// its extent for matching diagnostics and cost accounting. A message with
// fail set is a poison pill: the fault layer hands it to a pending receive
// that can no longer be satisfied (failed peer, revoked context) and Wait
// surfaces the error instead of a payload.
type message struct {
	ctx     int64
	epoch   int64 // recovery epoch the sender's communicator belonged to
	src     int   // communicator rank of the sender within ctx
	tag     int
	payload any
	elems   int
	bytes   int
	arrive  netmodel.Time
	fail    error
	// srcWorld and sseq identify the physical send for duplicate
	// suppression: srcWorld is the sender's world rank and sseq its
	// per-sender monotonic send sequence number (0 for messages that
	// bypass the send path, e.g. poisons and hand-built test messages,
	// which are exempt from dedup).
	srcWorld int
	sseq     uint64
	// consumeErr is the result of the receiver's consume callback (the
	// scatter into the user buffer), recorded at match time and surfaced
	// by the receiver's Wait.
	consumeErr error
	// detach, when set, copies a payload aliasing the sender's user buffer
	// into a pooled wire (zero-copy sends). The mailbox invokes it before
	// queueing the message as unexpected, so the alias never outlives the
	// send call; it is cleared after the copy.
	detach func(*World, *message)
	// release, when set, returns a pooled wire payload to the world's pool.
	// It is invoked exactly once, at the single point the message is
	// consumed (mailbox.finish), and cleared before the call, so a payload
	// can never be pooled twice — fault poisons travel as fresh messages
	// and never carry a release.
	release func(*World, *message)
	// taken marks an arrived-list entry already matched through the
	// (ctx, src, tag) index; the ordered list drops it lazily.
	taken bool
}

// pendingRecv is a posted-but-unmatched receive. The matched message is
// handed over through the ready channel (buffered, capacity 1). srcWorld
// is the exact source's world rank (AnySource for wildcard receives); the
// fault layer and the deadlock monitor key on it.
type pendingRecv struct {
	ctx      int64
	epoch    int64
	src      int // may be AnySource
	tag      int // may be AnyTag
	srcWorld int // world rank of src; AnySource for wildcard
	// seq is the mailbox post sequence number, ordering exact receives
	// against wildcard receives for non-overtaking matching.
	seq uint64
	// consume scatters the matched payload into the receiver's buffer. It
	// normally runs at match time — in the sender's goroutine for a
	// pre-posted receive, in the receiver's for an unexpected message —
	// before the ready handoff, so a zero-copy payload is read exactly
	// once, inside the send call that delivered it. With deferConsume set
	// it runs at Wait time instead, in the receiver's goroutine: schedule
	// executors request this for phases whose receive-target extents
	// overlap their send-source extents, where a match-time scatter could
	// race the receiver's own gathers.
	consume      func(*message) error
	deferConsume bool
	ready        chan *message
	// delivered is set (inside the mailbox lock) the moment a message or
	// poison is matched to this receive, before the channel handoff. The
	// deadlock monitor reads it to tell "never matched" apart from "matched
	// but the receiver hasn't been scheduled yet" — the channel length
	// alone cannot, because the receiver may have consumed the message and
	// then been preempted before deregistering its blocked state.
	delivered atomic.Bool
	// postNs is the flight-recorder clock reading at post time (0 when
	// recording is off); the completion hook turns it into the receive's
	// post→completion latency.
	postNs int64
	// notify, when non-nil, is posted notifyIdx exactly once, immediately
	// before the ready handoff — the completion sink of a WaitSet
	// (Waitsome). It is attached under the mailbox lock (attachNotify) and
	// only while the receive is still undelivered, so the handoff's read is
	// ordered after the attach by the lock; the post-before-ready order
	// guarantees the notification is queued by the time any Wait on the
	// receive returns. The sink is unbounded, so the post never blocks.
	notify    *notifySink
	notifyIdx int
	// notifyGate, when non-nil, coalesces a group of completions into one
	// notification: each member's completion decrements the gate and only
	// the one that reaches zero posts notifyIdx. Attached with the sink
	// (attachNotifyGated); cancellation decrements like a completion.
	notifyGate *atomic.Int32
}

// handover posts to the attached WaitSet sink, if any, then hands the
// matched message (or poison) to the receive's ready channel. Every
// delivery path funnels through here so a completion waiter never misses a
// match.
func (r *pendingRecv) handover(m *message) {
	if n := r.notify; n != nil {
		if g := r.notifyGate; g == nil || g.Add(-1) == 0 {
			n.post(r.notifyIdx)
		}
	}
	r.ready <- m
}

// wildcard reports whether the receive needs envelope-order scanning (any
// wildcard in source or tag) rather than exact-key lookup.
func (r *pendingRecv) wildcard() bool { return r.src == AnySource || r.tag == AnyTag }

// matches reports whether message m satisfies receive r. MPI matching:
// context and recovery epoch must be equal; source and tag match exactly
// or via wildcard. Carrying the epoch in the match tuple is what makes a
// resumed collective immune to pre-failure stragglers: a message stamped
// with an old epoch can never satisfy a receive posted after recovery.
func (r *pendingRecv) matches(m *message) bool {
	if r.ctx != m.ctx || r.epoch != m.epoch {
		return false
	}
	if r.src != AnySource && r.src != m.src {
		return false
	}
	if r.tag != AnyTag && r.tag != m.tag {
		return false
	}
	return true
}

// mkey is the exact-match index key: MPI matching is per (context, epoch,
// source, tag).
type mkey struct {
	ctx      int64
	epoch    int64
	src, tag int
}

// mailbox holds a rank's unexpected-message queue and pending receives.
//
// Exact (no-wildcard) receives and unexpected messages are indexed by
// (ctx, src, tag) in per-key FIFO queues for O(1) matching — the hot path
// of every schedule executor. The ordered linear structures are kept only
// for what genuinely needs envelope order: wildcard receives (wild),
// wildcard probes and diagnostics (arrived). Non-overtaking per (source,
// tag, context) is preserved because each per-key queue is FIFO, each
// sender delivers from a single goroutine, and a post sequence number
// arbitrates between an exact receive and an earlier-posted wildcard.
type mailbox struct {
	mu sync.Mutex
	w  *World
	// met is the owning rank's metric bundle (nil when metrics are off):
	// the mailbox attributes detach-to-pool events and the unexpected-queue
	// high-water mark to the receiving rank.
	met *mpiMetrics

	seq uint64 // receive post sequence

	// arrived is every unexpected message in arrival order (wildcard scans
	// and diagnostics); arrivedIdx indexes the same messages per key.
	// Entries matched through the index are flagged taken and compacted
	// out of arrived lazily.
	arrived      []*message
	arrivedTaken int
	arrivedIdx   map[mkey][]*message

	// wild holds wildcard receives in post order; exact holds per-key FIFO
	// queues of fully-specified receives.
	wild  []*pendingRecv
	exact map[mkey][]*pendingRecv

	// epochFloor is the oldest recovery epoch this rank still accepts.
	// drainBelowEpoch raises it after a shrink; deliver discards older
	// messages on arrival, which closes the race with delayed senders that
	// were already past their fault checks when the drain ran. The
	// fault-tolerance shadow plane (ftCtxBit contexts) is exempt: recovery
	// protocols deliberately run on old-epoch communicators (ULFM's Agree
	// and Shrink must work on a broken world), and an abandoned generation
	// retries them on the original communicator after the floor has risen.
	epochFloor int64

	// lastSeq records, per sender world rank, the highest send sequence
	// number delivered so far. Each sender delivers in send-sequence order
	// (its posters serialize on rankState.sendMu), so any message whose
	// sseq does not advance the counter is a duplicate and is dropped (its
	// pooled wire released exactly once).
	lastSeq map[int]uint64
}

// probeScanned counts arrived-list entries examined by wildcard probes and
// wildcard matching (a test hook: the Iprobe regression test asserts the
// exact-match path examines none of a deep unexpected queue).
var probeScanned atomic.Int64

// finish completes a match outside the mailbox lock: the receiver's
// consume callback scatters the payload into the user buffer, a pooled
// wire is released, and the message is handed over. Running consume here —
// before the handoff, in whichever goroutine completed the match — is what
// lets a zero-copy send pass a subslice of the user buffer: by the time
// the posting call returns, the payload has been read exactly once and the
// alias is dead.
func (b *mailbox) finish(r *pendingRecv, m *message) {
	if r.deferConsume && m.fail == nil {
		// The receiver scatters at Wait time. A zero-copy payload must not
		// outlive this send call, so detach it into a pooled wire now (in
		// the sender's goroutine); the wire travels with the message and
		// is released after the deferred scatter.
		if d := m.detach; d != nil {
			m.detach = nil
			d(b.w, m)
			if b.met != nil {
				b.met.recvDetached.Inc()
			}
		}
		r.handover(m)
		return
	}
	if m.fail == nil && r.consume != nil {
		m.consumeErr = r.consume(m)
	}
	if rel := m.release; rel != nil {
		m.release = nil
		rel(b.w, m)
	}
	m.payload = nil
	r.handover(m)
}

// attachNotify attaches a completion sink to a still-undelivered pending
// receive and reports whether it attached: false means a message or poison
// has already been matched (its handoff may still be in flight) and the
// caller must treat the receive as already complete. The delivered check and
// the sink store happen under the mailbox lock, the same lock every
// matcher holds when it sets delivered, so a successful attach is visible to
// whichever goroutine later performs the handover.
func (b *mailbox) attachNotify(p *pendingRecv, sink *notifySink, idx int) bool {
	return b.attachNotifyGated(p, sink, idx, nil)
}

// attachNotifyGated is attachNotify with a completion-coalescing gate:
// the receive's completion (or cancellation) decrements gate and posts
// idx only on reaching zero. A false return means the receive already
// completed — the caller owns the decrement for it.
func (b *mailbox) attachNotifyGated(p *pendingRecv, sink *notifySink, idx int, gate *atomic.Int32) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if p.delivered.Load() {
		return false
	}
	p.notify = sink
	p.notifyIdx = idx
	p.notifyGate = gate
	return true
}

// undefer clears a pending receive's deferConsume flag and reports whether
// it did: false means a message (or poison) has already been matched — its
// finish may be reading the flag right now — and the receive stays
// deferred, to be scattered at Wait. The delivered check and the flag write
// happen under the mailbox lock, the same lock every matcher holds when it
// sets delivered, so a successful undefer is visible to whichever matcher
// later completes the receive. Schedule executors use this to re-enable the
// match-time single-copy scatter on a pre-posted receive whose buffer
// hazards have cleared since it was posted.
func (b *mailbox) undefer(p *pendingRecv) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if p.delivered.Load() {
		return false
	}
	p.deferConsume = false
	return true
}

// takeRecvLocked removes and returns the receive that message m must match
// under MPI ordering: the earliest-posted matching receive, found as the
// head of m's exact-key queue or the first matching wildcard, whichever
// was posted first.
func (b *mailbox) takeRecvLocked(m *message) *pendingRecv {
	k := mkey{m.ctx, m.epoch, m.src, m.tag}
	var exact *pendingRecv
	if q := b.exact[k]; len(q) > 0 {
		exact = q[0]
	}
	var wild *pendingRecv
	wi := -1
	for i, r := range b.wild {
		if r.matches(m) {
			wild, wi = r, i
			break
		}
	}
	switch {
	case exact != nil && (wild == nil || exact.seq < wild.seq):
		if q := b.exact[k][1:]; len(q) == 0 {
			delete(b.exact, k)
		} else {
			b.exact[k] = q
		}
		exact.delivered.Store(true)
		return exact
	case wild != nil:
		b.wild = append(b.wild[:wi], b.wild[wi+1:]...)
		wild.delivered.Store(true)
		return wild
	}
	return nil
}

// discard drops a message without delivering it — a stale-epoch arrival
// or a suppressed duplicate. The release hook, if any, is cleared before
// it runs so the pooled wire goes back exactly once; the detach hook is
// simply dropped (the payload still aliases the sender's buffer and was
// never read).
func (b *mailbox) discard(m *message) {
	m.detach = nil
	if rel := m.release; rel != nil {
		m.release = nil
		rel(b.w, m)
	}
	m.payload = nil
}

// deliver hands a message to the mailbox: the earliest matching pending
// receive gets it, otherwise it queues as unexpected. A zero-copy payload
// that finds no waiting receive is detached — copied into a pooled wire,
// outside the lock — before queueing, so the sender's buffer is free for
// reuse the moment the send call returns either way.
//
// Two guards run first: messages below the epoch floor (pre-recovery
// stragglers racing the drain) and messages whose send sequence number
// does not advance the per-sender counter (injected duplicates) are
// discarded, returning any pooled wire exactly once.
func (b *mailbox) deliver(m *message) {
	b.mu.Lock()
	if m.epoch < b.epochFloor && m.ctx&ftCtxBit == 0 {
		b.mu.Unlock()
		b.discard(m)
		if b.met != nil {
			b.met.staleDrained.Inc()
		}
		return
	}
	if m.sseq > 0 {
		if last, ok := b.lastSeq[m.srcWorld]; ok && m.sseq <= last {
			b.mu.Unlock()
			b.discard(m)
			if b.met != nil {
				b.met.dupDropped.Inc()
			}
			return
		}
		if b.lastSeq == nil {
			b.lastSeq = make(map[int]uint64)
		}
		b.lastSeq[m.srcWorld] = m.sseq
	}
	for {
		if r := b.takeRecvLocked(m); r != nil {
			b.mu.Unlock()
			b.finish(r, m)
			return
		}
		if m.detach == nil {
			break
		}
		d := m.detach
		m.detach = nil
		b.mu.Unlock()
		d(b.w, m)
		if b.met != nil {
			b.met.recvDetached.Inc()
		}
		// Re-check under the lock: a receive posted during the copy found
		// no message in arrived and pended — it must not be missed. Only
		// this sender can append messages with this key, so per-key FIFO
		// order is unaffected by the unlocked window.
		b.mu.Lock()
	}
	k := mkey{m.ctx, m.epoch, m.src, m.tag}
	if b.arrivedIdx == nil {
		b.arrivedIdx = make(map[mkey][]*message)
	}
	b.arrivedIdx[k] = append(b.arrivedIdx[k], m)
	b.arrived = append(b.arrived, m)
	if b.met != nil {
		b.met.unexpectedHWM.SetMax(int64(len(b.arrived) - b.arrivedTaken))
	}
	b.mu.Unlock()
}

// takeArrivedLocked removes and returns the unexpected message receive r
// must match: the FIFO head of r's key queue for exact receives (O(1)),
// the first matching entry in arrival order for wildcards.
func (b *mailbox) takeArrivedLocked(r *pendingRecv) *message {
	if !r.wildcard() {
		k := mkey{r.ctx, r.epoch, r.src, r.tag}
		q := b.arrivedIdx[k]
		if len(q) == 0 {
			return nil
		}
		m := q[0]
		if q = q[1:]; len(q) == 0 {
			delete(b.arrivedIdx, k)
		} else {
			b.arrivedIdx[k] = q
		}
		m.taken = true
		b.arrivedTaken++
		b.compactArrivedLocked()
		return m
	}
	for i, m := range b.arrived {
		probeScanned.Add(1)
		if m.taken || !r.matches(m) {
			continue
		}
		k := mkey{m.ctx, m.epoch, m.src, m.tag}
		q := b.arrivedIdx[k]
		for j := range q {
			if q[j] == m {
				q = append(q[:j], q[j+1:]...)
				break
			}
		}
		if len(q) == 0 {
			delete(b.arrivedIdx, k)
		} else {
			b.arrivedIdx[k] = q
		}
		b.arrived = append(b.arrived[:i], b.arrived[i+1:]...)
		return m
	}
	return nil
}

// compactArrivedLocked drops taken entries from the ordered arrived list
// once they are the majority, keeping wildcard scans and diagnostics
// amortized O(live entries).
func (b *mailbox) compactArrivedLocked() {
	if b.arrivedTaken < 32 || b.arrivedTaken*2 < len(b.arrived) {
		return
	}
	kept := b.arrived[:0]
	for _, m := range b.arrived {
		if !m.taken {
			kept = append(kept, m)
		}
	}
	for i := len(kept); i < len(b.arrived); i++ {
		b.arrived[i] = nil
	}
	b.arrived = kept
	b.arrivedTaken = 0
}

// post registers a receive: the earliest matching unexpected message
// satisfies it immediately, otherwise the receive pends — indexed by key
// when fully specified, in the ordered wildcard list otherwise.
func (b *mailbox) post(r *pendingRecv) {
	b.mu.Lock()
	if m := b.takeArrivedLocked(r); m != nil {
		r.delivered.Store(true)
		b.mu.Unlock()
		b.finish(r, m)
		return
	}
	r.seq = b.seq
	b.seq++
	if r.wildcard() {
		b.wild = append(b.wild, r)
	} else {
		if b.exact == nil {
			b.exact = make(map[mkey][]*pendingRecv)
		}
		k := mkey{r.ctx, r.epoch, r.src, r.tag}
		b.exact[k] = append(b.exact[k], r)
	}
	b.mu.Unlock()
}

// probe reports whether a matching message has arrived, without removing
// it, returning its envelope. Mirrors MPI_Iprobe. A fully-specified probe
// is an O(1) index lookup regardless of the unexpected-queue depth; only
// wildcard probes scan.
func (b *mailbox) probe(ctx, epoch int64, src, tag int) (found bool, msgSrc, msgTag, elems int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if src != AnySource && tag != AnyTag {
		if q := b.arrivedIdx[mkey{ctx, epoch, src, tag}]; len(q) > 0 {
			m := q[0]
			return true, m.src, m.tag, m.elems
		}
		return false, 0, 0, 0
	}
	r := pendingRecv{ctx: ctx, epoch: epoch, src: src, tag: tag}
	for _, m := range b.arrived {
		probeScanned.Add(1)
		if !m.taken && r.matches(m) {
			return true, m.src, m.tag, m.elems
		}
	}
	return false, 0, 0, 0
}

// poisonMatching fails every pending receive for which cond returns a
// non-nil error: the receive is removed and handed a poison message, so
// its Wait returns the error instead of blocking forever. Used by the
// fault layer when a rank dies or a context is revoked. Poisons are fresh
// messages without payload, detach or release — a poisoned receive can
// never return (or double-return) a pooled buffer.
func (b *mailbox) poisonMatching(cond func(*pendingRecv) error) {
	b.mu.Lock()
	var hit []*pendingRecv
	var errs []error
	condemn := func(r *pendingRecv) bool {
		err := cond(r)
		if err == nil {
			return false
		}
		r.delivered.Store(true)
		hit = append(hit, r)
		errs = append(errs, err)
		return true
	}
	kept := b.wild[:0]
	for _, r := range b.wild {
		if !condemn(r) {
			kept = append(kept, r)
		}
	}
	for i := len(kept); i < len(b.wild); i++ {
		b.wild[i] = nil
	}
	b.wild = kept
	for k, q := range b.exact {
		keep := q[:0]
		for _, r := range q {
			if !condemn(r) {
				keep = append(keep, r)
			}
		}
		if len(keep) == 0 {
			delete(b.exact, k)
		} else {
			b.exact[k] = keep
		}
	}
	b.mu.Unlock()
	for i, r := range hit {
		r.handover(&message{ctx: r.ctx, epoch: r.epoch, src: r.src, tag: r.tag, fail: errs[i]})
	}
}

// drainBelowEpoch raises the mailbox's epoch floor and discards every
// unexpected message from an older epoch: pre-failure stragglers that
// arrived before recovery completed. Each discarded message returns its
// pooled wire exactly once through the same release hook a normal
// consume would have used. Pending receives from old epochs are poisoned
// with ErrCancelled so no request blocks on traffic that can no longer
// arrive. Fault-tolerance shadow contexts are exempt from both sweeps —
// consensus retries legitimately reuse the old epoch (see epochFloor).
// Returns the number of messages drained.
func (b *mailbox) drainBelowEpoch(epoch int64) int {
	b.mu.Lock()
	if epoch <= b.epochFloor {
		b.mu.Unlock()
		return 0
	}
	b.epochFloor = epoch
	var stale []*message
	for _, m := range b.arrived {
		if m.taken || m.epoch >= epoch || m.ctx&ftCtxBit != 0 {
			continue
		}
		k := mkey{m.ctx, m.epoch, m.src, m.tag}
		q := b.arrivedIdx[k]
		for j := range q {
			if q[j] == m {
				q = append(q[:j], q[j+1:]...)
				break
			}
		}
		if len(q) == 0 {
			delete(b.arrivedIdx, k)
		} else {
			b.arrivedIdx[k] = q
		}
		m.taken = true
		b.arrivedTaken++
		stale = append(stale, m)
	}
	b.compactArrivedLocked()
	b.mu.Unlock()
	for _, m := range stale {
		b.discard(m)
	}
	if n := len(stale); n > 0 && b.met != nil {
		b.met.staleDrained.Add(int64(n))
	}
	// Defensive: a receive posted under the old epoch can never match
	// again; fail it now instead of waiting for the watchdog.
	b.poisonMatching(func(r *pendingRecv) error {
		if r.epoch < epoch && r.ctx&ftCtxBit == 0 {
			return fmt.Errorf("stale-epoch receive drained during recovery: %w", ErrCancelled)
		}
		return nil
	})
	return len(stale)
}

// cancel removes a still-unmatched pending receive and reports whether it
// was removed; false means a message (or poison) has already been handed
// over and the receive must still be waited on. A successful cancel is a
// completion: the receive is marked delivered — so a later attachNotify
// refuses and treats it as already complete — and notify/idx carry any
// attached WaitSet slot the CALLER must post (n.post(idx)), so a Waitsome
// over a set whose receives were all cancelled returns instead of blocking
// until the watchdog. The post is the caller's job, not cancel's, so the
// caller can finish the request (Request.Cancel records ErrCancelled)
// before the notification can wake a Waitsome in another goroutine — the
// sink post is what publishes those writes to the set's owner.
func (b *mailbox) cancel(p *pendingRecv) (removed bool, notify *notifySink, idx int) {
	b.mu.Lock()
	removed = b.removeLocked(p)
	if removed {
		p.delivered.Store(true)
		notify, idx = p.notify, p.notifyIdx
		if g := p.notifyGate; notify != nil && g != nil && g.Add(-1) != 0 {
			// Gated completion that didn't close the group: no post due.
			notify = nil
		}
	}
	b.mu.Unlock()
	return removed, notify, idx
}

// pendingPosted counts posted-and-unmatched receives still registered in
// the mailbox, and unexpected messages still queued — the state an
// abandoned collective would leak. Test/diagnostic introspection.
func (b *mailbox) pendingPosted() (recvs, unexpected int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	recvs = len(b.wild)
	for _, q := range b.exact {
		recvs += len(q)
	}
	return recvs, len(b.arrived) - b.arrivedTaken
}

// removeLocked unlinks a pending receive from the wildcard list or its
// exact-key queue, reporting whether it was still there.
func (b *mailbox) removeLocked(p *pendingRecv) bool {
	if p.wildcard() {
		for i, r := range b.wild {
			if r == p {
				b.wild = append(b.wild[:i], b.wild[i+1:]...)
				return true
			}
		}
		return false
	}
	k := mkey{p.ctx, p.epoch, p.src, p.tag}
	q := b.exact[k]
	for i, r := range q {
		if r == p {
			if q = append(q[:i], q[i+1:]...); len(q) == 0 {
				delete(b.exact, k)
			} else {
				b.exact[k] = q
			}
			return true
		}
	}
	return false
}

// snapshotArrived renders the envelopes of the unexpected-message queue
// for diagnostic reports.
func (b *mailbox) snapshotArrived() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.arrived)-b.arrivedTaken)
	for _, m := range b.arrived {
		if m.taken {
			continue
		}
		out = append(out, fmt.Sprintf("[src=%d tag=%d ctx=%d elems=%d]", m.src, m.tag, m.ctx, m.elems))
	}
	return out
}
