package mpi

import (
	"errors"
	"fmt"
	"time"

	"cartcc/internal/netmodel"
)

// This file implements the runtime's fault layer: deterministic fault
// injection (rank crashes, stragglers, message delays) and the typed
// errors through which failures propagate ULFM-style — an operation that
// involves a failed rank errors out instead of hanging its peer.

// ErrAborted marks errors caused by the run being torn down after another
// rank's failure (the secondary, cascade errors). Match with errors.Is.
var ErrAborted = errors.New("run aborted")

// ErrRevoked marks errors on a communicator that has been revoked with
// Comm.Revoke. Match with errors.Is.
var ErrRevoked = errors.New("communicator revoked")

// ErrCancelled marks a receive request that was cancelled with
// Request.Cancel before a message matched it.
var ErrCancelled = errors.New("request cancelled")

// RankFailedError reports that an operation involved a rank that has
// failed (crashed by fault injection). It is the runtime's
// MPI_ERR_PROC_FAILED: pending receives from the failed rank, and future
// sends and receives naming it, complete with this error rather than
// blocking forever. Match with errors.As or errors.Is(err, &RankFailedError{}).
type RankFailedError struct {
	// Rank is the world rank that failed.
	Rank int
	// Op describes the operation that observed the failure.
	Op string
}

// Error implements the error interface.
func (e *RankFailedError) Error() string {
	return fmt.Sprintf("rank %d failed (%s)", e.Rank, e.Op)
}

// Is reports a match against any other *RankFailedError, so
// errors.Is(err, &RankFailedError{}) tests for the failure class without
// naming a rank.
func (e *RankFailedError) Is(target error) bool {
	_, ok := target.(*RankFailedError)
	return ok
}

// IsRankFailed reports whether err wraps a RankFailedError.
func IsRankFailed(err error) bool {
	var rfe *RankFailedError
	return errors.As(err, &rfe)
}

// FaultPlan injects deterministic failures into a run. All triggers are
// expressed in operation counts, virtual time, or seeded probabilities, so
// a plan replays identically for a given Config.Seed — a failing schedule
// can be re-run and diagnosed.
type FaultPlan struct {
	// Crashes kills ranks at chosen points.
	Crashes []Crash
	// Stragglers slows ranks down by a fixed delay per operation.
	Stragglers []Straggler
	// Delays holds back individual message deliveries.
	Delays []MsgDelay
	// Drops loses individual messages on the wire (transient faults): the
	// send completes, the receiver never sees the message.
	Drops []MsgDrop
	// Dups delivers individual messages twice; the mailbox's per-sender
	// sequence dedup must suppress the second copy.
	Dups []MsgDup
}

// Crash kills one rank: the rank's goroutine stops at the trigger point
// as if the process had died, and the world marks it failed.
type Crash struct {
	// Rank is the world rank to crash.
	Rank int
	// AtOp crashes the rank when it is about to post its AtOp-th
	// point-to-point operation (1-based; collectives count through their
	// constituent sends and receives). Zero disables the operation trigger.
	AtOp int
	// AtVTime crashes the rank at the first operation at or after this
	// virtual clock value (requires a cost model). Zero disables.
	AtVTime netmodel.Time
}

// Straggler adds a fixed delay to every operation a rank posts, modeling a
// slow or overloaded process.
type Straggler struct {
	// Rank is the world rank to slow down.
	Rank int
	// PerOp is wall-clock delay added before each operation.
	PerOp time.Duration
	// PerOpV is virtual-time delay (seconds) added to the rank's clock
	// before each operation in cost-model runs.
	PerOpV netmodel.Time
}

// MsgDelay holds back matching message deliveries. In virtual-time runs
// the delay is added to the message's arrival time; in wall-clock runs the
// sender stalls before delivering (per-sender delivery stays sequential,
// preserving the non-overtaking guarantee).
type MsgDelay struct {
	// From and To select messages by sender and receiver world rank;
	// -1 matches any rank.
	From, To int
	// Every applies the delay to every Every-th matching message of each
	// sender (0 or 1 = all matching messages).
	Every int
	// Prob, if in (0,1], applies the delay to each matching message with
	// this probability, drawn from the sender's seeded generator
	// (deterministic under Config.Seed). Zero means unconditional.
	Prob float64
	// Delay is the wall-clock hold-back.
	Delay time.Duration
	// DelayV is the virtual-time hold-back in seconds.
	DelayV netmodel.Time
}

// MsgDrop loses matching messages on the wire: the sender's call completes
// with buffered-send semantics (it cannot tell), the payload's pooled wire
// is reclaimed, and the receiver never sees the message. Without an
// end-to-end retransmission layer a dropped message a collective depends on
// surfaces as a typed deadlock from the watchdog — never a silent hang.
type MsgDrop struct {
	// From and To select messages by sender and receiver world rank;
	// -1 matches any rank.
	From, To int
	// Nth drops only the Nth matching message of the sender (1-based).
	// Zero drops every matching message.
	Nth int
	// Prob, if in (0,1), drops each matching message with this probability,
	// drawn from the sender's seeded generator. Zero means unconditional.
	Prob float64
}

// MsgDup delivers matching messages twice, with an independent copy of the
// payload, exercising the receiver's duplicate suppression.
type MsgDup struct {
	// From and To select messages by sender and receiver world rank;
	// -1 matches any rank.
	From, To int
	// Nth duplicates only the Nth matching message of the sender
	// (1-based). Zero duplicates every matching message.
	Nth int
	// Prob, if in (0,1), duplicates each matching message with this
	// probability. Zero means unconditional.
	Prob float64
}

// validate checks the plan's rank references against the run size.
func (fp *FaultPlan) validate(procs int) error {
	for _, c := range fp.Crashes {
		if c.Rank < 0 || c.Rank >= procs {
			return fmt.Errorf("mpi: fault plan crashes rank %d, run has %d", c.Rank, procs)
		}
		if c.AtOp == 0 && c.AtVTime == 0 {
			return fmt.Errorf("mpi: fault plan crash of rank %d has no trigger", c.Rank)
		}
	}
	for _, s := range fp.Stragglers {
		if s.Rank < 0 || s.Rank >= procs {
			return fmt.Errorf("mpi: fault plan delays rank %d, run has %d", s.Rank, procs)
		}
	}
	for _, d := range fp.Delays {
		if d.From < -1 || d.From >= procs || d.To < -1 || d.To >= procs {
			return fmt.Errorf("mpi: fault plan delay names rank outside [-1,%d)", procs)
		}
	}
	for _, d := range fp.Drops {
		if d.From < -1 || d.From >= procs || d.To < -1 || d.To >= procs {
			return fmt.Errorf("mpi: fault plan drop names rank outside [-1,%d)", procs)
		}
		if d.Nth < 0 {
			return fmt.Errorf("mpi: fault plan drop has Nth %d < 0", d.Nth)
		}
	}
	for _, d := range fp.Dups {
		if d.From < -1 || d.From >= procs || d.To < -1 || d.To >= procs {
			return fmt.Errorf("mpi: fault plan dup names rank outside [-1,%d)", procs)
		}
		if d.Nth < 0 {
			return fmt.Errorf("mpi: fault plan dup has Nth %d < 0", d.Nth)
		}
	}
	return nil
}

// crashSignal unwinds a crashed rank's goroutine through panic/recover;
// Run recognizes it and records the failure without a stack trace.
type crashSignal struct{ err error }

// opTick runs the rank's fault-plan actions at a point-to-point operation
// boundary: straggler delay first, then the crash check. Called before each
// posted send or receive — usually from the rank's own goroutine, but a
// progress engine posts on the rank's behalf too, so the counter is atomic.
func (rs *rankState) opTick() {
	ops := rs.ops.Add(1)
	w := rs.world
	fp := w.faults
	if fp == nil {
		return
	}
	for _, s := range fp.Stragglers {
		if s.Rank != rs.rank {
			continue
		}
		if w.model != nil {
			rs.clock += s.PerOpV
		}
		if s.PerOp > 0 {
			time.Sleep(s.PerOp)
		}
	}
	for _, c := range fp.Crashes {
		if c.Rank != rs.rank {
			continue
		}
		if (c.AtOp > 0 && ops >= int64(c.AtOp)) || (c.AtVTime > 0 && w.model != nil && rs.clock >= c.AtVTime) {
			err := &RankFailedError{Rank: rs.rank, Op: fmt.Sprintf("injected crash at op %d", ops)}
			w.markDead(rs.rank, err)
			panic(crashSignal{err})
		}
	}
}

// OpCount returns how many point-to-point operations this rank has posted
// so far — the unit in which Crash.AtOp counts. Chaos harnesses use it to
// calibrate crash points against a fault-free run of the same program.
func (c *Comm) OpCount() int { return int(c.rs.ops.Load()) }

// RecoverCrash converts a recovered panic value from an injected rank
// crash into its typed error; nil when the value is something else (the
// caller must re-panic). Run recognizes the signal on the rank's own
// goroutine; a progress engine that posts operations on the rank's behalf
// recovers with this instead of dying with the simulated process, so it
// can fail its in-flight work with the typed error. The crash is recorded
// with the run exactly as the rank goroutine's recovery would record it —
// the run's error reports the injected crash without aborting the world.
func (c *Comm) RecoverCrash(r any) error {
	cs, ok := r.(crashSignal)
	if !ok {
		return nil
	}
	c.w.record(c.rank, cs.err)
	return cs.err
}

// delayFor returns the injected hold-back for a message from this rank to
// dstWorld, consuming per-spec counters and seeded randomness.
func (rs *rankState) delayFor(dstWorld int) (time.Duration, netmodel.Time) {
	fp := rs.world.faults
	if fp == nil || len(fp.Delays) == 0 {
		return 0, 0
	}
	var wall time.Duration
	var virt netmodel.Time
	if rs.delayCount == nil {
		rs.delayCount = make([]int, len(fp.Delays))
	}
	for i, d := range fp.Delays {
		if (d.From != -1 && d.From != rs.rank) || (d.To != -1 && d.To != dstWorld) {
			continue
		}
		rs.delayCount[i]++
		if d.Every > 1 && rs.delayCount[i]%d.Every != 0 {
			continue
		}
		if d.Prob > 0 && d.Prob < 1 && rs.rng.Float64() >= d.Prob {
			continue
		}
		wall += d.Delay
		virt += d.DelayV
	}
	return wall, virt
}

// dropFor reports whether the message this rank is about to send to
// dstWorld is to be lost, consuming per-spec counters and seeded
// randomness.
func (rs *rankState) dropFor(dstWorld int) bool {
	fp := rs.world.faults
	if fp == nil || len(fp.Drops) == 0 {
		return false
	}
	if rs.dropCount == nil {
		rs.dropCount = make([]int, len(fp.Drops))
	}
	drop := false
	for i, d := range fp.Drops {
		if (d.From != -1 && d.From != rs.rank) || (d.To != -1 && d.To != dstWorld) {
			continue
		}
		rs.dropCount[i]++
		if d.Nth > 0 && rs.dropCount[i] != d.Nth {
			continue
		}
		if d.Prob > 0 && d.Prob < 1 && rs.rng.Float64() >= d.Prob {
			continue
		}
		drop = true
	}
	return drop
}

// dupFor reports whether the message this rank is about to send to
// dstWorld is to be delivered twice.
func (rs *rankState) dupFor(dstWorld int) bool {
	fp := rs.world.faults
	if fp == nil || len(fp.Dups) == 0 {
		return false
	}
	if rs.dupCount == nil {
		rs.dupCount = make([]int, len(fp.Dups))
	}
	dup := false
	for i, d := range fp.Dups {
		if (d.From != -1 && d.From != rs.rank) || (d.To != -1 && d.To != dstWorld) {
			continue
		}
		rs.dupCount[i]++
		if d.Nth > 0 && rs.dupCount[i] != d.Nth {
			continue
		}
		if d.Prob > 0 && d.Prob < 1 && rs.rng.Float64() >= d.Prob {
			continue
		}
		dup = true
	}
	return dup
}

// markDead records a rank's failure and poisons every pending receive
// that the failure leaves unsatisfiable: receives naming the dead rank as
// their exact source, and — ULFM's pending-failure semantics — wildcard
// receives that were blocked when the failure happened (a message from the
// dead rank can no longer be ruled out as their match).
func (w *World) markDead(rank int, cause *RankFailedError) {
	if t := w.transport; t != nil {
		// Let in-flight self-loop frames reach their mailboxes first: on
		// the loopback path everything posted before the crash is already
		// delivered when the poison below runs, and recovery's convergence
		// relies on the poison not overtaking real messages.
		t.Drain()
	}
	w.deadMu.Lock()
	if w.dead == nil {
		w.dead = make(map[int]*RankFailedError)
	}
	if _, already := w.dead[rank]; already {
		w.deadMu.Unlock()
		return
	}
	w.dead[rank] = cause
	w.deadN.Add(1)
	w.deadMu.Unlock()
	for _, rs := range w.ranks {
		rs.box.poisonMatching(func(p *pendingRecv) error {
			if p.srcWorld == rank || p.srcWorld == AnySource {
				return &RankFailedError{Rank: rank, Op: fmt.Sprintf("receive src=%d tag=%d", p.src, p.tag)}
			}
			return nil
		})
	}
}

// isDead reports whether world rank r has been marked failed. The check is
// free until the first failure.
func (w *World) isDead(r int) bool {
	if w.deadN.Load() == 0 {
		return false
	}
	w.deadMu.Lock()
	_, dead := w.dead[r]
	w.deadMu.Unlock()
	return dead
}

// deadRanks returns the sorted world ranks marked failed.
func (w *World) deadRanks() []int {
	if w.deadN.Load() == 0 {
		return nil
	}
	w.deadMu.Lock()
	defer w.deadMu.Unlock()
	out := make([]int, 0, len(w.dead))
	for r := 0; r < w.size; r++ {
		if _, dead := w.dead[r]; dead {
			out = append(out, r)
		}
	}
	return out
}

// revokeCtxs marks contexts revoked and poisons their pending receives.
func (w *World) revokeCtxs(ctxs ...int64) {
	w.deadMu.Lock()
	if w.revoked == nil {
		w.revoked = make(map[int64]bool)
	}
	fresh := false
	for _, ctx := range ctxs {
		if !w.revoked[ctx] {
			w.revoked[ctx] = true
			fresh = true
		}
	}
	if fresh {
		w.revokedN.Add(1)
	}
	w.deadMu.Unlock()
	if !fresh {
		return
	}
	for _, rs := range w.ranks {
		rs.box.poisonMatching(func(p *pendingRecv) error {
			for _, ctx := range ctxs {
				if p.ctx == ctx {
					return fmt.Errorf("mpi: %w (ctx=%d)", ErrRevoked, ctx)
				}
			}
			return nil
		})
	}
}

// isRevoked reports whether a context has been revoked. Free until the
// first revocation.
func (w *World) isRevoked(ctx int64) bool {
	if w.revokedN.Load() == 0 {
		return false
	}
	w.deadMu.Lock()
	revoked := w.revoked[ctx]
	w.deadMu.Unlock()
	return revoked
}

// opError returns the pre-completion error an operation on this
// communicator naming peerWorld must fail with, or nil: a revoked context
// or a failed peer. peerWorld may be AnySource (no dead-peer check — a
// wildcard receive posted after a failure may still be matched by the
// living). The operation description ("send dst"/"recv src" plus peer and
// tag) is formatted only on the failure paths, keeping the per-operation
// fast path allocation-free.
func (c *Comm) opError(peerWorld int, op string, peer int, tag int64) error {
	w := c.w
	if w.revokedN.Load() == 0 && w.deadN.Load() == 0 {
		return nil
	}
	if w.isRevoked(c.ctx) {
		return fmt.Errorf("mpi: rank %d: %s=%d tag=%d: %w (ctx=%d)", c.rank, op, peer, tag, ErrRevoked, c.ctx)
	}
	if peerWorld != AnySource && w.isDead(peerWorld) {
		return &RankFailedError{Rank: peerWorld, Op: fmt.Sprintf("%s=%d tag=%d", op, peer, tag)}
	}
	return nil
}

// failedRequest returns an already-completed request carrying err.
func failedRequest(c *Comm, kind reqKind, err error) *Request {
	return &Request{kind: kind, c: c, finished: true, err: err}
}
