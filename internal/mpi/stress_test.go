package mpi

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"cartcc/internal/datatype"
)

// contiguousN is shorthand for a whole-buffer layout.
func contiguousN(n int) datatype.Layout { return datatype.Contiguous(0, n) }

// TestWaitSetCancelStress interleaves seeded cancellations with live
// deliveries on one WaitSet: every receive whose tag is never sent is
// cancelled while its siblings' messages arrive concurrently, and each
// attached owner must surface through Waitsome exactly once — matched
// receives with their payload, cancelled ones as ErrCancelled. All
// synchronization is by message matching and the completion channel; no
// sleeps, so the test is deterministic under -race at any GOMAXPROCS.
func TestWaitSetCancelStress(t *testing.T) {
	trials := 8
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		k := rng.Intn(24) + 8
		sendMask := make([]bool, k)
		for i := range sendMask {
			sendMask[i] = rng.Intn(2) == 0
		}
		err := Run(Config{Procs: 2, Timeout: 20 * time.Second}, func(c *Comm) error {
			if c.Rank() == 1 {
				for i, send := range sendMask {
					if !send {
						continue
					}
					if err := SendSlice(c, []int{100 + i}, 0, i); err != nil {
						return err
					}
				}
				return nil
			}
			reqs := make([]*Request, k)
			bufs := make([][]int, k)
			s := NewWaitSet(c, k)
			for i := 0; i < k; i++ {
				bufs[i] = make([]int, 1)
				req, err := Irecv(c, bufs[i], contiguousN(1), 1, i)
				if err != nil {
					return err
				}
				reqs[i] = req
				s.Add(req, i)
			}
			for i, send := range sendMask {
				if send {
					continue
				}
				// Nobody ever sends this tag, so the cancel cannot lose a
				// race against a match and must always succeed.
				if !reqs[i].Cancel() {
					return fmt.Errorf("tag %d: cancel of never-sent receive failed", i)
				}
			}
			seen := make([]bool, k)
			got := 0
			for got < k {
				ready, err := s.Waitsome()
				if err != nil {
					return err
				}
				if ready == nil {
					return fmt.Errorf("set drained after %d/%d completions", got, k)
				}
				for _, o := range ready {
					if seen[o] {
						return fmt.Errorf("owner %d reported twice", o)
					}
					seen[o] = true
					got++
				}
			}
			for i, req := range reqs {
				_, err := req.Wait()
				if sendMask[i] {
					if err != nil {
						return err
					}
					if bufs[i][0] != 100+i {
						return fmt.Errorf("tag %d: payload %d, want %d", i, bufs[i][0], 100+i)
					}
				} else if !errors.Is(err, ErrCancelled) {
					return fmt.Errorf("tag %d: Wait = %v, want ErrCancelled", i, err)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("trial %d (k=%d): %v", trial, k, err)
		}
	}
}

// TestRandomP2PTrafficOracle drives the runtime with randomly generated
// global communication scripts and checks every delivered payload against
// the script. Each rank derives its own send and receive sequences from
// the shared seed, receives match by explicit (source, tag), and payload
// contents encode (src, dst, sequence number), so any mis-matching or
// reordering is caught.
func TestRandomP2PTrafficOracle(t *testing.T) {
	type msg struct {
		src, dst, tag, n, id int
	}
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		p := rng.Intn(6) + 2
		count := rng.Intn(120) + 30
		script := make([]msg, count)
		for i := range script {
			script[i] = msg{
				src: rng.Intn(p),
				dst: rng.Intn(p),
				tag: rng.Intn(4),
				n:   rng.Intn(20) + 1,
				id:  i,
			}
		}
		err := Run(Config{Procs: p, Timeout: 20 * time.Second}, func(c *Comm) error {
			// Sends in script order; receives posted in script order too.
			// Posting all receives first avoids deadlock (sends are
			// buffered) and exercises the pending-receive matching path;
			// alternate trials post receives lazily to exercise the
			// unexpected-message path instead.
			lazy := trial%2 == 0
			var reqs []*Request
			recvBufs := map[int][]int{}
			post := func(m msg) error {
				buf := make([]int, m.n)
				recvBufs[m.id] = buf
				req, err := Irecv(c, buf, contiguousN(m.n), m.src, m.tag)
				if err != nil {
					return err
				}
				reqs = append(reqs, req)
				return nil
			}
			if !lazy {
				for _, m := range script {
					if m.dst == c.Rank() {
						if err := post(m); err != nil {
							return err
						}
					}
				}
			}
			for _, m := range script {
				if m.src == c.Rank() {
					buf := make([]int, m.n)
					for e := range buf {
						buf[e] = m.src*1_000_000 + m.dst*10_000 + m.id
					}
					if err := Send(c, buf, contiguousN(m.n), m.dst, m.tag); err != nil {
						return err
					}
				}
			}
			if lazy {
				for _, m := range script {
					if m.dst == c.Rank() {
						if err := post(m); err != nil {
							return err
						}
					}
				}
			}
			if err := Waitall(reqs...); err != nil {
				return err
			}
			// Verify: receives on one (src, tag) channel arrive in send
			// order; our posts were in script order, so buffer id ==
			// earliest unconsumed message of that (src, tag). Since we
			// posted in script order and the sender sends in script
			// order, buffer m.id must hold exactly message m.id's
			// payload.
			for _, m := range script {
				if m.dst != c.Rank() {
					continue
				}
				buf := recvBufs[m.id]
				want := m.src*1_000_000 + m.dst*10_000 + m.id
				for e, v := range buf {
					if v != want {
						return fmt.Errorf("trial %d msg %d elem %d: got %d want %d", trial, m.id, e, v, want)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestInterleavedCommunicators interleaves traffic and collectives across
// duplicated communicators from the same ranks.
func TestInterleavedCommunicators(t *testing.T) {
	run(t, 6, func(c *Comm) error {
		a, err := c.Dup()
		if err != nil {
			return err
		}
		b, err := c.Dup()
		if err != nil {
			return err
		}
		p := c.Size()
		next := (c.Rank() + 1) % p
		prev := (c.Rank() - 1 + p) % p
		for i := 0; i < 20; i++ {
			// Ring exchange on a, allreduce on b, bcast on the parent —
			// same tags everywhere, isolated by contexts.
			out := []int{c.Rank()*100 + i}
			in := make([]int, 1)
			if _, err := Sendrecv(a, out, contiguousN(1), next, 0, in, contiguousN(1), prev, 0); err != nil {
				return err
			}
			if in[0] != prev*100+i {
				return fmt.Errorf("iter %d: ring got %d", i, in[0])
			}
			sum := []int{1}
			if err := Allreduce(b, sum, sum, SumOp[int]); err != nil {
				return err
			}
			if sum[0] != p {
				return fmt.Errorf("iter %d: allreduce got %d", i, sum[0])
			}
			root := i % p
			bc := []int{0}
			if c.Rank() == root {
				bc[0] = i
			}
			if err := Bcast(c, bc, root); err != nil {
				return err
			}
			if bc[0] != i {
				return fmt.Errorf("iter %d: bcast got %d", i, bc[0])
			}
		}
		return nil
	})
}

// TestManyRanksSmoke runs the collectives at a larger scale.
func TestManyRanksSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large rank count")
	}
	run(t, 128, func(c *Comm) error {
		if err := Barrier(c); err != nil {
			return err
		}
		sum := []int64{int64(c.Rank())}
		if err := Allreduce(c, sum, sum, SumOp[int64]); err != nil {
			return err
		}
		if sum[0] != 128*127/2 {
			return fmt.Errorf("allreduce = %d", sum[0])
		}
		blk := []int64{int64(c.Rank())}
		all := make([]int64, 128)
		if err := Allgather(c, blk, all); err != nil {
			return err
		}
		for r, v := range all {
			if v != int64(r) {
				return fmt.Errorf("allgather[%d] = %d", r, v)
			}
		}
		return nil
	})
}

// TestSplitRecursive splits repeatedly and checks each level still
// communicates correctly.
func TestSplitRecursive(t *testing.T) {
	run(t, 16, func(c *Comm) error {
		cur := c
		for level := 0; level < 3; level++ {
			half, err := cur.Split(cur.Rank()%2, cur.Rank())
			if err != nil {
				return err
			}
			sum := []int{1}
			if err := Allreduce(half, sum, sum, SumOp[int]); err != nil {
				return err
			}
			if sum[0] != half.Size() {
				return fmt.Errorf("level %d: size %d sum %d", level, half.Size(), sum[0])
			}
			cur = half
			if cur.Size() == 1 {
				break
			}
		}
		return nil
	})
}
