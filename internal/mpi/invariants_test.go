package mpi

import (
	"strings"
	"testing"
	"time"

	"cartcc/internal/datatype"
	"cartcc/internal/metrics"
)

// TestCheckMetricInvariantsCleanRun drives both send paths and verifies a
// clean run's merged snapshot satisfies every conservation law.
func TestCheckMetricInvariantsCleanRun(t *testing.T) {
	reg := metrics.NewRegistry(4)
	err := Run(Config{Procs: 4, Metrics: reg, Timeout: time.Minute}, func(c *Comm) error {
		peer := c.Rank() ^ 1
		buf := make([]int32, 32)
		for i := range buf {
			buf[i] = int32(c.Rank()*100 + i)
		}
		got := make([]int32, 32)
		// Contiguous (zero-copy) exchange, then a strided (gathered)
		// exchange, then a collective for good measure.
		if _, err := Sendrecv(c, buf[:8], contiguousN(8), peer, 1, got[:8], contiguousN(8), peer, 1); err != nil {
			return err
		}
		stride := datatype.Vector(8, 2, 4, 0)
		if _, err := Sendrecv(c, buf, stride, peer, 2, got, stride, peer, 2); err != nil {
			return err
		}
		sum := []int{1}
		return Allreduce(c, sum, sum, SumOp[int])
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckMetricInvariants(reg.Merged()); err != nil {
		t.Fatal(err)
	}
}

// TestCheckMetricInvariantsViolations doctors a balanced snapshot one
// metric at a time and asserts each conservation law trips.
func TestCheckMetricInvariantsViolations(t *testing.T) {
	balanced := func() metrics.Snapshot {
		reg := metrics.NewRegistry(2)
		err := Run(Config{Procs: 2, Metrics: reg, Timeout: time.Minute}, func(c *Comm) error {
			peer := 1 - c.Rank()
			out, in := []int{c.Rank()}, make([]int, 1)
			_, err := Sendrecv(c, out, contiguousN(1), peer, 3, in, contiguousN(1), peer, 3)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return reg.Merged()
	}

	cases := []struct {
		name   string
		metric string
		delta  int64
		want   string
	}{
		{"lost send path", "mpi.sends.posted", 1, "sends.posted"},
		{"pool draw unaccounted", "mpi.wirepool.miss", 1, "wirepool"},
		{"unfinished receive", "mpi.recvs.posted", 1, "recvs.completed"},
		{"bytes invented", "mpi.recv.bytes", 8, "recv.bytes"},
		{"impossible detach", "mpi.recv.detached", 1000, "recv.detached"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := balanced()
			if err := CheckMetricInvariants(s); err != nil {
				t.Fatalf("balanced snapshot: %v", err)
			}
			for i := range s.Metrics {
				if s.Metrics[i].Name == tc.metric {
					s.Metrics[i].Value += tc.delta
				}
			}
			err := CheckMetricInvariants(s)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("doctored %s: err = %v, want mention of %q", tc.metric, err, tc.want)
			}
		})
	}

	t.Run("missing metric", func(t *testing.T) {
		s := balanced()
		kept := s.Metrics[:0]
		for _, m := range s.Metrics {
			if m.Name != "mpi.recv.bytes" {
				kept = append(kept, m)
			}
		}
		s.Metrics = kept
		err := CheckMetricInvariants(s)
		if err == nil || !strings.Contains(err.Error(), "mpi.recv.bytes") {
			t.Fatalf("err = %v, want missing-metric error naming mpi.recv.bytes", err)
		}
	})
}
