package mpi

import (
	"fmt"
	"testing"
)

// procCounts exercises the collectives at awkward sizes: 1, primes,
// powers of two, and a larger composite.
var procCounts = []int{1, 2, 3, 4, 5, 7, 8, 13, 16}

func TestBarrier(t *testing.T) {
	for _, p := range procCounts {
		run(t, p, func(c *Comm) error {
			for i := 0; i < 3; i++ {
				if err := Barrier(c); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

func TestBcast(t *testing.T) {
	for _, p := range procCounts {
		for root := 0; root < p; root += 3 {
			root := root
			run(t, p, func(c *Comm) error {
				buf := make([]int, 4)
				if c.Rank() == root {
					for i := range buf {
						buf[i] = root*10 + i
					}
				}
				if err := Bcast(c, buf, root); err != nil {
					return err
				}
				for i := range buf {
					if buf[i] != root*10+i {
						return fmt.Errorf("p=%d root=%d rank=%d buf=%v", p, root, c.Rank(), buf)
					}
				}
				return nil
			})
		}
	}
}

func TestBcastInvalidRoot(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if err := Bcast(c, []int{0}, 9); err == nil {
			return fmt.Errorf("invalid root accepted")
		}
		return nil
	})
}

func TestReduceSum(t *testing.T) {
	for _, p := range procCounts {
		run(t, p, func(c *Comm) error {
			send := []int{c.Rank(), 1}
			recv := make([]int, 2)
			if err := Reduce(c, send, recv, SumOp[int], 0); err != nil {
				return err
			}
			if c.Rank() == 0 {
				wantSum := p * (p - 1) / 2
				if recv[0] != wantSum || recv[1] != p {
					return fmt.Errorf("p=%d reduce = %v, want [%d %d]", p, recv, wantSum, p)
				}
			}
			return nil
		})
	}
}

func TestReduceNonzeroRoot(t *testing.T) {
	run(t, 6, func(c *Comm) error {
		send := []float64{float64(c.Rank())}
		recv := make([]float64, 1)
		if err := Reduce(c, send, recv, MaxOp[float64], 4); err != nil {
			return err
		}
		if c.Rank() == 4 && recv[0] != 5 {
			return fmt.Errorf("max = %v", recv[0])
		}
		return nil
	})
}

func TestAllreduce(t *testing.T) {
	for _, p := range procCounts {
		run(t, p, func(c *Comm) error {
			send := []int{c.Rank() + 1}
			recv := make([]int, 1)
			if err := Allreduce(c, send, recv, MinOp[int]); err != nil {
				return err
			}
			if recv[0] != 1 {
				return fmt.Errorf("p=%d rank=%d min = %d", p, c.Rank(), recv[0])
			}
			return nil
		})
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	for _, p := range []int{1, 3, 4, 7} {
		run(t, p, func(c *Comm) error {
			send := []int{c.Rank() * 2, c.Rank()*2 + 1}
			var all []int
			if c.Rank() == 0 {
				all = make([]int, 2*p)
			}
			if err := Gather(c, send, all, 0); err != nil {
				return err
			}
			if c.Rank() == 0 {
				for i := 0; i < 2*p; i++ {
					if all[i] != i {
						return fmt.Errorf("gathered %v", all)
					}
				}
			}
			back := make([]int, 2)
			if err := Scatter(c, all, back, 0); err != nil {
				return err
			}
			if back[0] != send[0] || back[1] != send[1] {
				return fmt.Errorf("rank %d scatter-back %v", c.Rank(), back)
			}
			return nil
		})
	}
}

func TestAllgather(t *testing.T) {
	for _, p := range procCounts {
		run(t, p, func(c *Comm) error {
			send := []int{c.Rank(), -c.Rank()}
			recv := make([]int, 2*p)
			if err := Allgather(c, send, recv); err != nil {
				return err
			}
			for r := 0; r < p; r++ {
				if recv[2*r] != r || recv[2*r+1] != -r {
					return fmt.Errorf("p=%d rank=%d recv=%v", p, c.Rank(), recv)
				}
			}
			return nil
		})
	}
}

func TestAlltoall(t *testing.T) {
	for _, p := range procCounts {
		run(t, p, func(c *Comm) error {
			send := make([]int, p)
			for r := range send {
				send[r] = c.Rank()*1000 + r
			}
			recv := make([]int, p)
			if err := Alltoall(c, send, recv); err != nil {
				return err
			}
			for r := 0; r < p; r++ {
				if recv[r] != r*1000+c.Rank() {
					return fmt.Errorf("p=%d rank=%d recv=%v", p, c.Rank(), recv)
				}
			}
			return nil
		})
	}
}

func TestAlltoallBadLengths(t *testing.T) {
	run(t, 3, func(c *Comm) error {
		if err := Alltoall(c, make([]int, 4), make([]int, 4)); err == nil {
			return fmt.Errorf("non-divisible alltoall accepted")
		}
		return nil
	})
}

func TestCommDupIsolatesTraffic(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		dup, err := c.Dup()
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			// Same tag on both communicators; contexts keep them apart.
			if err := SendSlice(dup, []int{2}, 1, 0); err != nil {
				return err
			}
			return SendSlice(c, []int{1}, 1, 0)
		}
		buf := make([]int, 1)
		if _, err := RecvSlice(c, buf, 0, 0); err != nil {
			return err
		}
		if buf[0] != 1 {
			return fmt.Errorf("world recv got dup message: %d", buf[0])
		}
		if _, err := RecvSlice(dup, buf, 0, 0); err != nil {
			return err
		}
		if buf[0] != 2 {
			return fmt.Errorf("dup recv got %d", buf[0])
		}
		return nil
	})
}

func TestCommSplit(t *testing.T) {
	run(t, 8, func(c *Comm) error {
		color := c.Rank() % 2
		// Reverse order within each color via the key.
		sub, err := c.Split(color, -c.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != 4 {
			return fmt.Errorf("split size = %d", sub.Size())
		}
		// Old rank 6 (color 0) has the smallest key among color 0? Keys are
		// 0,-2,-4,-6 for ranks 0,2,4,6 -> order 6,4,2,0.
		wantRank := (6 - c.Rank() + color) / 2
		if sub.Rank() != wantRank {
			return fmt.Errorf("old rank %d: new rank %d, want %d", c.Rank(), sub.Rank(), wantRank)
		}
		// The subcommunicator must actually work.
		buf := []int{c.Rank()}
		if err := Bcast(sub, buf, 0); err != nil {
			return err
		}
		wantRoot := 6 + color // new rank 0 is old rank 6 or 7
		if buf[0] != wantRoot {
			return fmt.Errorf("split bcast got %d, want %d", buf[0], wantRoot)
		}
		return nil
	})
}

func TestCommSplitNegativeColor(t *testing.T) {
	run(t, 4, func(c *Comm) error {
		color := 0
		if c.Rank() == 3 {
			color = -1
		}
		sub, err := c.Split(color, 0)
		if err != nil {
			return err
		}
		if c.Rank() == 3 {
			if sub != nil {
				return fmt.Errorf("negative color produced a communicator")
			}
			return nil
		}
		if sub.Size() != 3 {
			return fmt.Errorf("split size = %d", sub.Size())
		}
		return Barrier(sub)
	})
}

func TestReduceLengthValidation(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := Reduce(c, []int{1, 2}, []int{0}, SumOp[int], 0); err == nil {
				return fmt.Errorf("short recv accepted at root")
			}
		}
		// Non-roots do not need recv, but the collective as a whole cannot
		// proceed after root errored; just return.
		return nil
	})
}

func TestOps(t *testing.T) {
	if SumOp(2, 3) != 5 {
		t.Error("SumOp")
	}
	if MaxOp(2, 3) != 3 || MaxOp(4.5, 1.5) != 4.5 {
		t.Error("MaxOp")
	}
	if MinOp(2, 3) != 2 || MinOp("b", "a") != "a" {
		t.Error("MinOp")
	}
}

func TestGathervScattervRoundTrip(t *testing.T) {
	// Rank r contributes r+1 elements; gathered tightly at root, then
	// scattered back.
	run(t, 4, func(c *Comm) error {
		p := c.Size()
		n := c.Rank() + 1
		send := make([]int, n)
		for i := range send {
			send[i] = c.Rank()*100 + i
		}
		counts := make([]int, p)
		displs := make([]int, p)
		total := 0
		for r := 0; r < p; r++ {
			counts[r] = r + 1
			displs[r] = total
			total += counts[r]
		}
		var all []int
		if c.Rank() == 2 {
			all = make([]int, total)
		}
		if err := Gatherv(c, send, all, counts, displs, 2); err != nil {
			return err
		}
		if c.Rank() == 2 {
			for r := 0; r < p; r++ {
				for i := 0; i < counts[r]; i++ {
					if all[displs[r]+i] != r*100+i {
						return fmt.Errorf("gatherv: %v", all)
					}
				}
			}
		}
		back := make([]int, n)
		if err := Scatterv(c, all, counts, displs, back, 2); err != nil {
			return err
		}
		for i := range back {
			if back[i] != send[i] {
				return fmt.Errorf("scatterv back: %v", back)
			}
		}
		return nil
	})
}

func TestGathervValidation(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := Gatherv(c, []int{1}, make([]int, 1), []int{1}, []int{0}, 0); err == nil {
				return fmt.Errorf("short count arrays accepted")
			}
			if err := Gatherv(c, []int{1, 2}, make([]int, 3), []int{1, 2}, []int{0, 1}, 0); err == nil {
				return fmt.Errorf("root count mismatch accepted")
			}
		}
		return nil
	})
}

func TestDenseAlltoallv(t *testing.T) {
	run(t, 3, func(c *Comm) error {
		p := c.Size()
		// Send r+1 elements to each peer r; symmetric layout so recv
		// counts are my-rank+1 from everyone? No: what peer r receives
		// from me is the block I cut for r, of size r+1. So recvCounts[s]
		// = my rank + 1 for all s.
		sendCounts := make([]int, p)
		sendDispls := make([]int, p)
		total := 0
		for r := 0; r < p; r++ {
			sendCounts[r] = r + 1
			sendDispls[r] = total
			total += r + 1
		}
		send := make([]int, total)
		for r := 0; r < p; r++ {
			for i := 0; i < sendCounts[r]; i++ {
				send[sendDispls[r]+i] = c.Rank()*1000 + r*10 + i
			}
		}
		n := c.Rank() + 1
		recvCounts := make([]int, p)
		recvDispls := make([]int, p)
		for r := 0; r < p; r++ {
			recvCounts[r] = n
			recvDispls[r] = r * n
		}
		recv := make([]int, p*n)
		if err := Alltoallv(c, send, sendCounts, sendDispls, recv, recvCounts, recvDispls); err != nil {
			return err
		}
		for r := 0; r < p; r++ {
			for i := 0; i < n; i++ {
				if recv[r*n+i] != r*1000+c.Rank()*10+i {
					return fmt.Errorf("rank %d recv %v", c.Rank(), recv)
				}
			}
		}
		return nil
	})
}

func TestDenseAlltoallvValidation(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if err := Alltoallv(c, []int{}, []int{0}, []int{0}, []int{}, []int{0}, []int{0}); err == nil {
			return fmt.Errorf("short arrays accepted")
		}
		return nil
	})
}
