package mpi

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"cartcc/internal/datatype"
)

func TestIsendIrecvComposite(t *testing.T) {
	// Send a composite spanning two buffers; receive it scattered across
	// two different buffers — the schedule executor's primitive.
	run(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			bufA := []int{10, 11, 12, 13}
			bufB := []int{20, 21, 22, 23}
			var comp datatype.Composite
			comp.AppendBlock(0, 1, 2) // 11, 12
			comp.AppendBlock(1, 3, 1) // 23
			req, err := IsendComposite(c, [][]int{bufA, bufB}, &comp, 1, 5)
			if err != nil {
				return err
			}
			_, err = req.Wait()
			return err
		}
		dstA := make([]int, 4)
		dstB := make([]int, 4)
		var comp datatype.Composite
		comp.AppendBlock(1, 0, 1) // first wire element into dstB[0]
		comp.AppendBlock(0, 2, 2) // rest into dstA[2:4]
		req, err := IrecvComposite(c, [][]int{dstA, dstB}, &comp, 0, 5, false)
		if err != nil {
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		if dstB[0] != 11 || dstA[2] != 12 || dstA[3] != 23 {
			return fmt.Errorf("scattered %v %v", dstA, dstB)
		}
		return nil
	})
}

func TestCompositeSizeMismatch(t *testing.T) {
	err := Run(Config{Procs: 2}, func(c *Comm) error {
		if c.Rank() == 0 {
			var comp datatype.Composite
			comp.AppendBlock(0, 0, 3)
			req, err := IsendComposite(c, [][]int{{1, 2, 3}}, &comp, 1, 0)
			if err != nil {
				return err
			}
			_, err = req.Wait()
			return err
		}
		var comp datatype.Composite
		comp.AppendBlock(0, 0, 2) // expects 2, gets 3
		dst := make([]int, 2)
		req, err := IrecvComposite(c, [][]int{dst}, &comp, 0, 0, false)
		if err != nil {
			return err
		}
		if _, err := req.Wait(); err == nil {
			return fmt.Errorf("composite size mismatch accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNeighborAlltoallw(t *testing.T) {
	// Two ranks exchange a strided layout in place.
	run(t, 2, func(c *Comm) error {
		other := 1 - c.Rank()
		g, err := DistGraphCreateAdjacent(c, []int{other}, nil, []int{other}, nil, false)
		if err != nil {
			return err
		}
		send := make([]float64, 6)
		for i := range send {
			send[i] = float64(c.Rank()*10 + i)
		}
		recv := make([]float64, 6)
		sendL := []datatype.Layout{datatype.Vector(3, 1, 2, 0)} // 0, 2, 4
		recvL := []datatype.Layout{datatype.Vector(3, 1, 2, 1)} // into 1, 3, 5
		if err := NeighborAlltoallw(g, send, sendL, recv, recvL); err != nil {
			return err
		}
		want := []float64{0, float64(other*10 + 0), 0, float64(other*10 + 2), 0, float64(other*10 + 4)}
		if !reflect.DeepEqual(recv, want) {
			return fmt.Errorf("rank %d recv %v want %v", c.Rank(), recv, want)
		}
		return nil
	})
}

func TestNeighborAlltoallwValidation(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		other := 1 - c.Rank()
		g, err := DistGraphCreateAdjacent(c, []int{other}, nil, []int{other}, nil, false)
		if err != nil {
			return err
		}
		one := []datatype.Layout{datatype.Contiguous(0, 1)}
		if _, err := IneighborAlltoallw(g, []int{1}, nil, []int{0}, one); err == nil {
			return fmt.Errorf("missing send layouts accepted")
		}
		if _, err := IneighborAlltoallw(g, []int{1}, one, []int{0}, nil); err == nil {
			return fmt.Errorf("missing recv layouts accepted")
		}
		if err := NeighborAlltoallw(c, []int{1}, one, []int{0}, one); err == nil {
			return fmt.Errorf("alltoallw without graph accepted")
		}
		return nil
	})
}

func TestNeighborBlockEdgeCases(t *testing.T) {
	if _, err := neighborBlock(3, 0, 2, 0, "x"); err == nil {
		t.Error("non-divisible send with indeg 0 accepted")
	}
	if blk, err := neighborBlock(4, 0, 2, 0, "x"); err != nil || blk != 2 {
		t.Errorf("indeg 0: %d %v", blk, err)
	}
	if _, err := neighborBlock(0, 3, 0, 2, "x"); err == nil {
		t.Error("non-divisible recv with outdeg 0 accepted")
	}
	if blk, err := neighborBlock(0, 4, 0, 2, "x"); err != nil || blk != 2 {
		t.Errorf("outdeg 0: %d %v", blk, err)
	}
	if _, err := neighborBlock(1, 0, 0, 0, "x"); err == nil {
		t.Error("non-empty buffers with empty neighborhood accepted")
	}
	if _, err := neighborBlock(4, 3, 2, 2, "x"); err == nil {
		t.Error("mismatched recv length accepted")
	}
}

func TestModelAccessor(t *testing.T) {
	run(t, 1, func(c *Comm) error {
		if c.Model() != nil {
			return fmt.Errorf("wall-clock run has a model")
		}
		return nil
	})
}

func TestAllreduceValidation(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		if err := Allreduce(c, []int{1, 2}, []int{0}, SumOp[int]); err == nil {
			return fmt.Errorf("short recv accepted")
		}
		return nil
	})
}

func TestSendrecvErrorPaths(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		buf := []int{0}
		l := datatype.Contiguous(0, 1)
		if _, err := Sendrecv(c, buf, l, 9, 0, buf, l, 0, 0); err == nil {
			return fmt.Errorf("bad dst accepted")
		}
		if _, err := Sendrecv(c, buf, l, 0, 0, buf, l, 9, 0); err == nil {
			return fmt.Errorf("bad src accepted")
		}
		return nil
	})
}

func TestWaitany(t *testing.T) {
	run(t, 3, func(c *Comm) error {
		if c.Rank() == 0 {
			// Post receives from both peers; rank 2 sends first (rank 1
			// delays), so Waitany should complete index 1 first.
			buf1 := make([]int, 1)
			buf2 := make([]int, 1)
			r1, err := Irecv(c, buf1, contiguousN(1), 1, 0)
			if err != nil {
				return err
			}
			r2, err := Irecv(c, buf2, contiguousN(1), 2, 0)
			if err != nil {
				return err
			}
			idx, st, err := Waitany(r1, r2)
			if err != nil {
				return err
			}
			if idx != 1 || st.Source != 2 || buf2[0] != 2 {
				return fmt.Errorf("first completion idx=%d st=%+v buf2=%v", idx, st, buf2)
			}
			idx, _, err = Waitany(r1, r2)
			if err != nil {
				return err
			}
			if idx != 0 || buf1[0] != 1 {
				return fmt.Errorf("second completion idx=%d buf1=%v", idx, buf1)
			}
			if idx, _, _ := Waitany(r1, r2); idx != -1 {
				return fmt.Errorf("exhausted Waitany returned %d", idx)
			}
			return nil
		}
		if c.Rank() == 1 {
			time.Sleep(30 * time.Millisecond)
		}
		return SendSlice(c, []int{c.Rank()}, 0, 0)
	})
}

func TestWaitanyNilAndEmpty(t *testing.T) {
	if idx, _, _ := Waitany(nil, nil); idx != -1 {
		t.Errorf("Waitany(nil) = %d", idx)
	}
	if idx, _, _ := Waitany(); idx != -1 {
		t.Errorf("Waitany() = %d", idx)
	}
}

func TestPersistentSendRecv(t *testing.T) {
	run(t, 2, func(c *Comm) error {
		buf := make([]int, 3)
		if c.Rank() == 0 {
			ps, err := SendInit(c, buf, contiguousN(3), 1, 4)
			if err != nil {
				return err
			}
			for iter := 0; iter < 5; iter++ {
				for i := range buf {
					buf[i] = iter*10 + i
				}
				r, err := ps.Start()
				if err != nil {
					return err
				}
				if _, err := r.Wait(); err != nil {
					return err
				}
			}
			return nil
		}
		pr, err := RecvInit(c, buf, contiguousN(3), 0, 4)
		if err != nil {
			return err
		}
		for iter := 0; iter < 5; iter++ {
			reqs, err := StartAll(pr)
			if err != nil {
				return err
			}
			if err := Waitall(reqs...); err != nil {
				return err
			}
			for i := range buf {
				if buf[i] != iter*10+i {
					return fmt.Errorf("iter %d buf %v", iter, buf)
				}
			}
		}
		return nil
	})
}

func TestPersistentValidation(t *testing.T) {
	run(t, 1, func(c *Comm) error {
		buf := make([]int, 1)
		if _, err := SendInit(c, buf, contiguousN(5), 0, 0); err == nil {
			return fmt.Errorf("overflowing layout accepted")
		}
		if _, err := SendInit(c, buf, contiguousN(1), 5, 0); err == nil {
			return fmt.Errorf("bad dst accepted")
		}
		if _, err := SendInit(c, buf, contiguousN(1), 0, -2); err == nil {
			return fmt.Errorf("bad tag accepted")
		}
		if _, err := RecvInit(c, buf, contiguousN(5), 0, 0); err == nil {
			return fmt.Errorf("overflowing recv layout accepted")
		}
		if _, err := RecvInit(c, buf, contiguousN(1), 7, 0); err == nil {
			return fmt.Errorf("bad src accepted")
		}
		if _, err := RecvInit(c, buf, contiguousN(1), 0, -2); err == nil {
			return fmt.Errorf("bad recv tag accepted")
		}
		return nil
	})
}
