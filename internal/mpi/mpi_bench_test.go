package mpi

import (
	"fmt"
	"testing"
	"time"

	"cartcc/internal/datatype"
)

// Micro-benchmarks of the runtime substrate (wall-clock): point-to-point
// latency, matching under load, collectives, and the datatype path.

func BenchmarkPingPong(b *testing.B) {
	for _, size := range []int{1, 64, 4096} {
		size := size
		b.Run(fmt.Sprintf("elems_%d", size), func(b *testing.B) {
			err := Run(Config{Procs: 2, Timeout: time.Minute}, func(c *Comm) error {
				buf := make([]int32, size)
				whole := datatype.Contiguous(0, size)
				for i := 0; i < b.N; i++ {
					if c.Rank() == 0 {
						if err := Send(c, buf, whole, 1, 0); err != nil {
							return err
						}
						if _, err := Recv(c, buf, whole, 1, 0); err != nil {
							return err
						}
					} else {
						if _, err := Recv(c, buf, whole, 0, 0); err != nil {
							return err
						}
						if err := Send(c, buf, whole, 0, 0); err != nil {
							return err
						}
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkBarrier(b *testing.B) {
	for _, p := range []int{4, 16} {
		p := p
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			err := Run(Config{Procs: p, Timeout: time.Minute}, func(c *Comm) error {
				for i := 0; i < b.N; i++ {
					if err := Barrier(c); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkAllreduce(b *testing.B) {
	err := Run(Config{Procs: 8, Timeout: time.Minute}, func(c *Comm) error {
		send := []float64{float64(c.Rank())}
		recv := make([]float64, 1)
		for i := 0; i < b.N; i++ {
			if err := Allreduce(c, send, recv, SumOp[float64]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkNeighborAlltoallDirect(b *testing.B) {
	// Direct-delivery baseline cost in this runtime (wall clock), ring of
	// degree 8.
	const p = 16
	err := Run(Config{Procs: p, Timeout: time.Minute}, func(c *Comm) error {
		var sources, targets []int
		for k := 1; k <= 8; k++ {
			targets = append(targets, (c.Rank()+k)%p)
			sources = append(sources, (c.Rank()-k+p)%p)
		}
		g, err := DistGraphCreateAdjacent(c, sources, nil, targets, nil, false)
		if err != nil {
			return err
		}
		send := make([]int32, 8)
		recv := make([]int32, 8)
		for i := 0; i < b.N; i++ {
			if err := NeighborAlltoall(g, send, recv); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
