package mpi

import "fmt"

// GraphInfo is the distributed-graph topology attached to a communicator by
// DistGraphCreateAdjacent: this process's in-neighbors (Sources) and
// out-neighbors (Targets), with optional edge weights.
type GraphInfo struct {
	Sources       []int
	SourceWeights []int
	Targets       []int
	TargetWeights []int
}

// Unweighted marks a neighborhood without weights, like MPI_UNWEIGHTED.
var Unweighted []int = nil

// DistGraphCreateAdjacent returns a new communicator with a distributed
// graph topology, like MPI_Dist_graph_create_adjacent: each process names
// its own in-neighbors (sources) and out-neighbors (targets) by rank.
// Weight slices may be Unweighted. The adjacency must be globally
// consistent (rank s listing t as target implies t lists s as source with
// the same multiplicity); the runtime does not verify this globally, but
// the neighborhood collectives will deadlock-watchdog on violations.
// Collective.
func DistGraphCreateAdjacent(c *Comm, sources, sourceWeights, targets, targetWeights []int, reorder bool) (*Comm, error) {
	for _, r := range sources {
		if err := c.checkRank(r, "graph source"); err != nil {
			return nil, err
		}
	}
	for _, r := range targets {
		if err := c.checkRank(r, "graph target"); err != nil {
			return nil, err
		}
	}
	if sourceWeights != nil && len(sourceWeights) != len(sources) {
		return nil, fmt.Errorf("mpi: %d source weights for %d sources", len(sourceWeights), len(sources))
	}
	if targetWeights != nil && len(targetWeights) != len(targets) {
		return nil, fmt.Errorf("mpi: %d target weights for %d targets", len(targetWeights), len(targets))
	}
	_ = reorder
	nc, err := c.Dup()
	if err != nil {
		return nil, err
	}
	nc.graph = &GraphInfo{
		Sources:       append([]int(nil), sources...),
		SourceWeights: append([]int(nil), sourceWeights...),
		Targets:       append([]int(nil), targets...),
		TargetWeights: append([]int(nil), targetWeights...),
	}
	return nc, nil
}

// Graph returns the distributed-graph topology of the communicator, or nil.
func (c *Comm) Graph() *GraphInfo { return c.graph }

// DistGraphNeighborsCount returns the in- and out-degree of the calling
// process, like MPI_Dist_graph_neighbors_count.
func (c *Comm) DistGraphNeighborsCount() (indegree, outdegree int, err error) {
	if c.graph == nil {
		return 0, 0, fmt.Errorf("mpi: communicator has no graph topology")
	}
	return len(c.graph.Sources), len(c.graph.Targets), nil
}

// graphTopology returns the graph info or an error for the neighborhood
// collectives.
func (c *Comm) graphTopology() (*GraphInfo, error) {
	if c.graph == nil {
		return nil, fmt.Errorf("mpi: neighborhood collective on a communicator without graph topology")
	}
	return c.graph, nil
}
