// Package mpi implements an in-process message-passing runtime with the
// semantics the Cartesian Collective Communication library needs from MPI:
// ranks with private address spaces (one goroutine per rank), tagged
// two-sided point-to-point communication with non-overtaking matching,
// nonblocking operations with requests and Waitall, communicators with
// isolated contexts, standard collectives, Cartesian and distributed-graph
// process topologies, and the MPI neighborhood collectives (the baselines
// of the paper's evaluation).
//
// The runtime supports an optional virtual-time cost model (package
// netmodel): each rank carries a virtual clock, posted sends serialize on a
// per-message overhead, and messages arrive at send time + α + β·bytes.
// This substitutes for the paper's clusters — see DESIGN.md.
package mpi

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"cartcc/internal/metrics"
	"cartcc/internal/netmodel"
	"cartcc/internal/trace"
)

// Wildcards and limits mirroring the MPI constants.
const (
	// AnySource matches a message from any source rank.
	AnySource = -1
	// AnyTag matches a message with any tag.
	AnyTag = -1
)

// DefaultTimeout is the hard fallback limit for a blocked receive before
// the runtime declares a deadlock. Zero disables the fallback timer. The
// wait-for-graph monitor (watchdog.go) normally diagnoses deadlocks long
// before this timer fires.
const DefaultTimeout = 60 * time.Second

// World owns the ranks of one parallel run. All communicators of a run are
// derived from the world communicator passed to each rank's function.
type World struct {
	size    int
	model   *netmodel.Model
	rec     *trace.Recorder
	seed    int64
	timeout time.Duration
	faults  *FaultPlan

	// flight is the always-on flight recorder: a bounded per-rank ring of
	// recent runtime events, nil only when explicitly disabled
	// (Config.FlightCap < 0). Snapshot with FlightTail; the introspection
	// plane serves it live and dumps it on failure.
	flight *trace.FlightRecorder
	// metricsReg is Config.Metrics, kept so the introspection plane can
	// reach the run's registry from the world handle alone (/metrics).
	metricsReg *metrics.Registry

	ranks  []*rankState
	ctxSeq atomic.Int64
	// epochSeq allocates recovery epoch numbers; the world starts in epoch
	// 0 and each successful Shrink consensus advances it (ft.go).
	epochSeq atomic.Int64
	abort    chan struct{}
	failed   atomic.Bool

	// Error aggregation: primary holds every rank's own failure, cascade
	// the secondary errors caused by the abort tearing down the rest.
	failMu  sync.Mutex
	primary []error
	cascade []error
	errRank map[int]bool // ranks that contributed a primary error
	// onFail is Config.OnFailure; set before the ranks spawn, never
	// written again. Invoked outside failMu (a hook snapshotting the
	// world must not self-deadlock).
	onFail func(rank int, err error)

	// Fault layer: failed ranks and revoked contexts, with atomic counters
	// keeping the hot-path checks free until a first fault.
	deadMu   sync.Mutex
	dead     map[int]*RankFailedError
	deadN    atomic.Int32
	revoked  map[int64]bool
	revokedN atomic.Int32

	// Deadlock monitor registry: per-rank blocked state and completion.
	// monitoring is set before the rank goroutines spawn and never written
	// again; when false (DeadlockPoll < 0) no monitor goroutine reads the
	// registry and blocking waits skip registration entirely.
	monitoring bool
	blocked    []atomic.Pointer[blockedOp]
	done       []atomic.Bool
	// dlInFlight/dlInFlightSince remember the monitor's last transport
	// InFlight() observation (monitor goroutine only, no locking): a
	// positive count that stops changing is a stalled pipe, not progress
	// in motion, and must not suppress deadlock detection forever
	// (deadlockCheck).
	dlInFlight      int
	dlInFlightSince time.Time

	// wirePools holds the per-element-type wire-buffer pools behind the
	// non-contiguous send path (wirepool.go), keyed by reflect.Type.
	// wireOut counts wires currently drawn and not yet released — the
	// pool-occupancy probe of the introspection plane.
	wirePools sync.Map
	wireOut   atomic.Int64

	// transport, when non-nil, carries messages whose destination the
	// transport does not answer Local for (transport.go). localRank marks
	// the world ranks hosted by this process; nil means all of them (the
	// in-process default and force-remote single-process worlds). Both are
	// set before the rank goroutines spawn and never written again.
	transport Transport
	localRank []bool
}

// Config controls a parallel run.
type Config struct {
	// Procs is the number of ranks (goroutines) to spawn. Must be >= 1.
	Procs int
	// Model, if non-nil, enables virtual-time accounting under the given
	// cost model.
	Model *netmodel.Model
	// Seed seeds the per-rank noise generators; runs with the same seed,
	// model and program are deterministic in virtual time.
	Seed int64
	// Timeout is the blocked-receive fallback watchdog; 0 means
	// DefaultTimeout, negative disables it. The wait-for-graph monitor
	// (see DeadlockPoll) is the primary deadlock defense.
	Timeout time.Duration
	// Recorder, if non-nil, collects per-rank communication events in
	// virtual time (requires Model; see package trace). It must have been
	// created for at least Procs ranks.
	Recorder *trace.Recorder
	// Faults, if non-nil, injects deterministic failures — rank crashes,
	// stragglers, message delays — into the run; see FaultPlan.
	Faults *FaultPlan
	// Metrics, if non-nil, collects per-rank runtime metrics (sends,
	// receives, bytes, zero-copy vs gathered path, pool hits, queue
	// high-water marks, blocked time). It must have been created for at
	// least Procs ranks; works in wall-clock and virtual-time runs alike.
	Metrics *metrics.Registry
	// DeadlockPoll is the sampling interval of the wait-for-graph deadlock
	// monitor; 0 means DefaultDeadlockPoll, negative disables the monitor.
	DeadlockPoll time.Duration
	// FlightCap sets the per-rank capacity of the always-on flight
	// recorder (see trace.FlightRecorder): 0 selects
	// trace.DefaultFlightCap, negative disables recording entirely.
	// Ignored when Flight is non-nil.
	FlightCap int
	// Flight, if non-nil, is an externally created flight recorder the run
	// records into (it must cover at least Procs ranks). Supplying one lets
	// a harness keep the ring across runs; normally leave it nil and let
	// Run size its own.
	Flight *trace.FlightRecorder
	// OnFailure, if non-nil, is invoked once per primary failure recorded
	// against the run (a rank's own error, an injected crash, a watchdog
	// diagnosis — never the secondary ErrAborted cascade), with the world
	// rank it was attributed to (-1 when unattributed) and the error. It
	// runs on the failing goroutine before blocked peers are released, so
	// a post-mortem hook observes the world in the state that failed.
	OnFailure func(rank int, err error)
}

// rankState is the per-rank runtime state. The clock, rng and delayCount
// fields are owned by the rank's goroutine (virtual-time runs are
// single-poster by construction); the mailbox has its own lock. Wall-clock
// runs may post operations from helper goroutines too — a cart progress
// engine drives committed schedules off the rank's goroutine — so the ops
// counter is atomic and sendMu serializes send-sequence allocation through
// delivery.
type rankState struct {
	world *World
	rank  int
	clock netmodel.Time
	rng   *rand.Rand
	box   mailbox
	ops   atomic.Int64 // point-to-point operations posted (fault triggers)
	// sendMu orders sendSeq allocation and mailbox delivery as one atomic
	// step per sender: the receiver's per-sender dedup drops any message
	// whose sequence number does not advance, so two posters interleaving
	// (rank goroutine + progress engine) must never deliver out of
	// sequence order.
	sendMu     sync.Mutex
	sendSeq    uint64 // per-sender send sequence (duplicate suppression)
	delayCount []int  // per-MsgDelay matching-message counters
	dropCount  []int  // per-MsgDrop matching-message counters
	dupCount   []int  // per-MsgDup matching-message counters
	// blockTimer is the rank's reusable fallback-watchdog timer, armed for
	// each blocking wait (one at a time per goroutine) instead of
	// allocating a fresh timer per block.
	blockTimer *time.Timer
	// met holds the rank's resolved metric pointers; nil when the run was
	// configured without metrics (the instrumentation-off fast path).
	met *mpiMetrics
}

// armTimeout returns the fallback-watchdog timer channel for one blocking
// wait, reusing the rank's timer (nil when the timeout is disabled). The
// rank's goroutine owns the timer; Go 1.23 timer semantics make
// Reset-after-fire safe without draining.
func (rs *rankState) armTimeout() <-chan time.Time {
	d := rs.world.timeout
	if d <= 0 {
		return nil
	}
	if rs.blockTimer == nil {
		rs.blockTimer = time.NewTimer(d)
	} else {
		rs.blockTimer.Reset(d)
	}
	return rs.blockTimer.C
}

// disarmTimeout stops the rank's watchdog timer after a blocking wait.
func (rs *rankState) disarmTimeout() {
	if rs.blockTimer != nil {
		rs.blockTimer.Stop()
	}
}

// Run spawns cfg.Procs ranks, calls f on each with its world communicator,
// and waits for all to finish. The first error or panic aborts the run and
// is returned; remaining blocked ranks are released through the abort
// channel.
//
// When the CARTCC_TRANSPORT environment variable selects a network backend
// and the run is in wall-clock mode, the world is built force-remote over
// that backend: every message detours through a real socket back into this
// process (see TransportFromEnv). Virtual-time runs ignore the variable —
// the cost model owns delivery timing.
func Run(cfg Config, f func(c *Comm) error) error {
	if err := validateConfig(&cfg); err != nil {
		return err
	}
	if cfg.Model == nil {
		if t, err, ok := transportFromEnv(cfg.Procs); ok {
			if err != nil {
				return err
			}
			defer t.Close()
			return runWorld(cfg, t, nil, f)
		}
	}
	return runWorld(cfg, nil, nil, f)
}

// validateConfig checks a Config before a world is built.
func validateConfig(cfg *Config) error {
	if cfg.Procs < 1 {
		return fmt.Errorf("mpi: Procs must be >= 1, got %d", cfg.Procs)
	}
	if cfg.Model != nil {
		if err := cfg.Model.Validate(); err != nil {
			return err
		}
	}
	if cfg.Recorder != nil {
		if cfg.Model == nil {
			return fmt.Errorf("mpi: tracing requires a cost model")
		}
		if cfg.Recorder.Ranks() < cfg.Procs {
			return fmt.Errorf("mpi: recorder sized for %d ranks, run has %d", cfg.Recorder.Ranks(), cfg.Procs)
		}
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.validate(cfg.Procs); err != nil {
			return err
		}
	}
	if cfg.Metrics != nil && cfg.Metrics.Ranks() < cfg.Procs {
		return fmt.Errorf("mpi: metrics registry sized for %d ranks, run has %d", cfg.Metrics.Ranks(), cfg.Procs)
	}
	if cfg.Flight != nil && cfg.Flight.Ranks() < cfg.Procs {
		return fmt.Errorf("mpi: flight recorder sized for %d ranks, run has %d", cfg.Flight.Ranks(), cfg.Procs)
	}
	return nil
}

// runWorld builds the world and runs f on every locally hosted rank.
// localRank nil means all ranks run here (in-process and force-remote
// worlds); otherwise only the marked ranks spawn and the transport carries
// traffic to the rest.
func runWorld(cfg Config, t Transport, localRank []bool, f func(c *Comm) error) error {
	w := &World{
		size:       cfg.Procs,
		model:      cfg.Model,
		rec:        cfg.Recorder,
		seed:       cfg.Seed,
		timeout:    cfg.Timeout,
		faults:     cfg.Faults,
		flight:     cfg.Flight,
		onFail:     cfg.OnFailure,
		metricsReg: cfg.Metrics,
		abort:      make(chan struct{}),
		errRank:    make(map[int]bool),
	}
	if w.flight == nil && cfg.FlightCap >= 0 {
		w.flight = trace.NewFlightRecorder(cfg.Procs, cfg.FlightCap)
	}
	if w.timeout == 0 {
		w.timeout = DefaultTimeout
	}
	w.ranks = make([]*rankState, cfg.Procs)
	w.blocked = make([]atomic.Pointer[blockedOp], cfg.Procs)
	w.done = make([]atomic.Bool, cfg.Procs)
	for r := range w.ranks {
		w.ranks[r] = &rankState{
			world: w,
			rank:  r,
			rng:   rand.New(rand.NewSource(cfg.Seed ^ (int64(r+1) * 0x9e3779b97f4a7c))),
		}
		w.ranks[r].box.w = w
		if cfg.Metrics != nil {
			w.ranks[r].met = newMPIMetrics(cfg.Metrics.Rank(r))
			w.ranks[r].box.met = w.ranks[r].met
		}
	}

	w.transport = t
	w.localRank = localRank
	if t != nil {
		t.Attach(w)
	}

	// The wait-for-graph monitor needs to see every rank's blocked state;
	// when the world spans processes only the fallback timer can watch the
	// remote ranks, so the monitor stays local-only.
	if cfg.DeadlockPoll >= 0 && localRank == nil {
		poll := cfg.DeadlockPoll
		if poll == 0 {
			poll = DefaultDeadlockPoll
		}
		w.monitoring = true
		stop := make(chan struct{})
		defer close(stop)
		go w.runMonitor(poll, stop)
	}

	var wg sync.WaitGroup
	for r := 0; r < cfg.Procs; r++ {
		if !w.hosted(r) {
			w.done[r].Store(true) // remote ranks look finished to the monitor
			continue
		}
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				w.done[r].Store(true)
				w.clearBlocked(r)
				if p := recover(); p != nil {
					if cs, ok := p.(crashSignal); ok {
						// Injected crash: record it without aborting the
						// world — peers observe the failure ULFM-style
						// through RankFailedError and may recover.
						w.record(r, cs.err)
						return
					}
					w.fail(fmt.Errorf("mpi: rank %d panicked: %v\n%s", r, p, debug.Stack()))
				}
			}()
			comm := &Comm{w: w, rs: w.ranks[r], rank: r, size: cfg.Procs, ctx: 0}
			if err := f(comm); err != nil {
				w.failFrom(r, fmt.Errorf("mpi: rank %d: %w", r, err))
			}
		}(r)
	}
	wg.Wait()
	return w.runError()
}

// fail records an error and releases all blocked ranks through the abort
// channel.
func (w *World) fail(err error) { w.failFrom(-1, err) }

// failFrom is fail with rank attribution for the failing-rank count.
func (w *World) failFrom(rank int, err error) {
	w.record(rank, err)
	if w.failed.CompareAndSwap(false, true) {
		close(w.abort)
		if w.transport != nil && !errors.Is(err, ErrAborted) {
			// Tell peer processes why this world died so they abort with
			// the cause instead of a timeout.
			w.transport.NoteFailure(err)
		}
	}
}

// record aggregates an error without aborting the run (injected crashes
// use it directly, so peers can survive ULFM-style). Cascade errors —
// those caused by the abort itself — are kept separately so they never
// mask the primary failures.
func (w *World) record(rank int, err error) {
	w.failMu.Lock()
	if errors.Is(err, ErrAborted) {
		w.cascade = append(w.cascade, err)
		w.failMu.Unlock()
		return
	}
	w.primary = append(w.primary, err)
	if rank >= 0 {
		w.errRank[rank] = true
	}
	w.failMu.Unlock()
	fr := rank
	if fr < 0 {
		fr = 0 // unattributed failures (watchdog diagnoses) land on rank 0's ring
	}
	w.flight.Record(fr, trace.FlightFailure, rank, 0, 0, 0)
	if w.onFail != nil {
		w.onFail(rank, err)
	}
}

// abortCause returns the primary failure that triggered the abort, if one
// is recorded. failFrom records the primary error strictly before closing
// the abort channel, so any waiter released by the abort can ask why the
// run died and report a typed cause instead of only the generic cascade
// error. Returns nil if — against expectation — only cascade errors exist.
func (w *World) abortCause() error {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	if len(w.primary) == 0 {
		return nil
	}
	return w.primary[0]
}

// runError assembles the run's return value: every primary error joined
// (one rank's panic no longer masks concurrent failures on others), with
// the failing-rank count, falling back to the cascade errors if — against
// expectation — only those exist.
func (w *World) runError() error {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	if len(w.primary) == 0 {
		if len(w.cascade) == 0 {
			return nil
		}
		return errors.Join(w.cascade...)
	}
	joined := errors.Join(w.primary...)
	n := len(w.errRank)
	if n > 1 {
		return fmt.Errorf("mpi: %d ranks failed: %w", n, joined)
	}
	return joined
}

// nextCtxBase atomically allocates n fresh context identifiers and returns
// the first. Context agreement across the ranks of a communicator is
// reached by broadcasting the allocated base from rank 0 (see commAllocCtx).
func (w *World) nextCtxBase(n int64) int64 {
	return w.ctxSeq.Add(n) - n + 1
}

// Comm is a communicator: an ordered group of ranks with an isolated
// message context. The zero value is not usable; communicators are obtained
// from Run and the communicator constructors.
type Comm struct {
	w    *World
	rs   *rankState
	rank int
	size int
	ctx  int64
	// epoch is the recovery epoch the communicator belongs to. The world
	// communicator and everything derived from it start in epoch 0; Shrink
	// stamps its survivors' communicator with a fresh epoch, and every
	// message sent on a communicator carries its epoch in the match tuple.
	epoch int64
	// group maps communicator rank to world rank; nil for the world
	// communicator (identity).
	group []int

	cart  *CartInfo
	graph *GraphInfo
}

// Rank returns the calling process's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Epoch returns the communicator's recovery epoch (0 until a Shrink).
func (c *Comm) Epoch() int64 { return c.epoch }

// WorldRank translates a communicator rank to the underlying world rank —
// the identity survivors and failed ranks are named by across recoveries.
func (c *Comm) WorldRank(r int) int { return c.worldRank(r) }

// Size returns the number of processes in the communicator.
func (c *Comm) Size() int { return c.size }

// worldRank translates a communicator rank to a world rank.
func (c *Comm) worldRank(r int) int {
	if c.group == nil {
		return r
	}
	return c.group[r]
}

// VTime returns the rank's current virtual clock in seconds. It is zero
// unless the run was configured with a cost model.
func (c *Comm) VTime() netmodel.Time { return c.rs.clock }

// AdvanceVTime adds dt seconds of local computation to the rank's virtual
// clock, modeling compute phases between communication operations.
func (c *Comm) AdvanceVTime(dt netmodel.Time) { c.rs.clock += dt }

// Model returns the cost model of the run, or nil in wall-clock mode.
func (c *Comm) Model() *netmodel.Model { return c.w.model }

// checkRank validates a peer rank argument.
func (c *Comm) checkRank(r int, what string) error {
	if r < 0 || r >= c.size {
		return fmt.Errorf("mpi: %s rank %d out of range [0,%d)", what, r, c.size)
	}
	return nil
}

// Dup returns a new communicator with the same group but a fresh context.
// Collective over the communicator.
func (c *Comm) Dup() (*Comm, error) {
	ctx, err := c.allocCtx(1)
	if err != nil {
		return nil, err
	}
	dup := *c
	dup.ctx = ctx
	dup.cart, dup.graph = nil, nil
	return &dup, nil
}

// allocCtx collectively agrees on n fresh context ids and returns the
// first: rank 0 allocates from the world counter and broadcasts.
func (c *Comm) allocCtx(n int64) (int64, error) {
	base := make([]int64, 1)
	if c.rank == 0 {
		base[0] = c.w.nextCtxBase(n)
	}
	if err := Bcast(c, base, 0); err != nil {
		return 0, err
	}
	return base[0], nil
}

// Remap returns a communicator with the same members renumbered: new rank
// r is the process that had old rank newToOld[r]. Every process must pass
// the same permutation of 0..size-1. Collective. This is the primitive
// behind topology-aware rank reordering (the reorder flag of the Cartesian
// constructors).
func (c *Comm) Remap(newToOld []int) (*Comm, error) {
	if len(newToOld) != c.size {
		return nil, fmt.Errorf("mpi: Remap permutation has %d entries for %d ranks", len(newToOld), c.size)
	}
	seen := make([]bool, c.size)
	myNew := -1
	group := make([]int, c.size)
	for newRank, old := range newToOld {
		if old < 0 || old >= c.size || seen[old] {
			return nil, fmt.Errorf("mpi: Remap argument is not a permutation at index %d", newRank)
		}
		seen[old] = true
		group[newRank] = c.worldRank(old)
		if old == c.rank {
			myNew = newRank
		}
	}
	ctx, err := c.allocCtx(1)
	if err != nil {
		return nil, err
	}
	return &Comm{
		w:     c.w,
		rs:    c.rs,
		rank:  myNew,
		size:  c.size,
		ctx:   ctx,
		epoch: c.epoch,
		group: group,
	}, nil
}

// SubsetComm returns a communicator over the listed members of c,
// renumbered 0..len(members)-1 in list order. Collective over all of c:
// every rank must pass the same strictly increasing list of c-ranks (the
// context allocation is the one collective step); ranks outside the list
// participate and receive nil. Unlike Split, the membership is taken from
// the caller instead of being gathered — recovery uses this to build the
// survivor communicator from a membership every rank computed locally
// from agreed data, with exactly one collective to fail atomically on.
func (c *Comm) SubsetComm(members []int) (*Comm, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("mpi: SubsetComm: empty member list")
	}
	prev := -1
	for _, r := range members {
		if r < 0 || r >= c.size {
			return nil, fmt.Errorf("mpi: SubsetComm: member %d outside [0,%d)", r, c.size)
		}
		if r <= prev {
			return nil, fmt.Errorf("mpi: SubsetComm: member list not strictly increasing at %d", r)
		}
		prev = r
	}
	ctx, err := c.allocCtx(1)
	if err != nil {
		return nil, err
	}
	group := make([]int, len(members))
	myNew := -1
	for i, r := range members {
		group[i] = c.worldRank(r)
		if r == c.rank {
			myNew = i
		}
	}
	if myNew < 0 {
		return nil, nil
	}
	return &Comm{
		w:     c.w,
		rs:    c.rs,
		rank:  myNew,
		size:  len(members),
		ctx:   ctx,
		epoch: c.epoch,
		group: group,
	}, nil
}

// Split partitions the communicator by color, ordering each part by key
// (ties broken by old rank), like MPI_Comm_split. Processes passing a
// negative color receive a nil communicator. Collective.
func (c *Comm) Split(color, key int) (*Comm, error) {
	type ck struct{ Color, Key, Rank int64 }
	mine := []int64{int64(color), int64(key), int64(c.rank)}
	all := make([]int64, 3*c.size)
	if err := Allgather(c, mine, all); err != nil {
		return nil, err
	}
	var entries []ck
	colors := map[int64]struct{}{}
	var colorOrder []int64
	for r := 0; r < c.size; r++ {
		e := ck{all[3*r], all[3*r+1], all[3*r+2]}
		entries = append(entries, e)
		if e.Color >= 0 {
			if _, ok := colors[e.Color]; !ok {
				colors[e.Color] = struct{}{}
				colorOrder = append(colorOrder, e.Color)
			}
		}
	}
	ctxBase, err := c.allocCtx(int64(len(colorOrder)))
	if err != nil {
		return nil, err
	}
	if color < 0 {
		return nil, nil
	}
	// Stable selection of my color's members sorted by (key, old rank).
	var members []ck
	for _, e := range entries {
		if e.Color == int64(color) {
			members = append(members, e)
		}
	}
	for i := 1; i < len(members); i++ {
		for j := i; j > 0; j-- {
			a, b := members[j-1], members[j]
			if b.Key < a.Key || (b.Key == a.Key && b.Rank < a.Rank) {
				members[j-1], members[j] = b, a
			} else {
				break
			}
		}
	}
	group := make([]int, len(members))
	newRank := -1
	for i, e := range members {
		group[i] = c.worldRank(int(e.Rank))
		if int(e.Rank) == c.rank {
			newRank = i
		}
	}
	ctxOff := int64(0)
	for i, col := range colorOrder {
		if col == int64(color) {
			ctxOff = int64(i)
		}
	}
	return &Comm{
		w:     c.w,
		rs:    c.rs,
		rank:  newRank,
		size:  len(group),
		ctx:   ctxBase + ctxOff,
		epoch: c.epoch,
		group: group,
	}, nil
}
