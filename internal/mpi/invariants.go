package mpi

import (
	"fmt"

	"cartcc/internal/metrics"
)

// CheckMetricInvariants validates the runtime's conservation laws on a
// merged metrics snapshot of a run that completed cleanly (no faults, no
// cancellations, every posted receive waited). The simulation harness runs
// it after every fault-free scenario; a violation means the
// instrumentation and the runtime disagree about what happened — a lost
// message, a double count, or an uninstrumented path.
//
// The invariants, in terms of the names documented in metrics.go:
//
//   - every posted send took exactly one path:
//     sends.posted == sends.zerocopy + sends.gathered
//   - only gathered sends draw wires from the pool, and each draw is
//     either a hit or a miss:
//     wirepool.hit + wirepool.miss == sends.gathered
//   - every posted receive completed:
//     recvs.completed == recvs.posted
//   - no bytes lost or invented in flight:
//     recv.bytes == send.bytes
//   - only zero-copy payloads can be detached at the receiver:
//     recv.detached <= sends.zerocopy
func CheckMetricInvariants(s metrics.Snapshot) error {
	if err := s.Require(
		"mpi.sends.posted", "mpi.sends.zerocopy", "mpi.sends.gathered",
		"mpi.send.bytes", "mpi.recvs.posted", "mpi.recvs.completed",
		"mpi.recv.bytes", "mpi.recv.detached",
		"mpi.wirepool.hit", "mpi.wirepool.miss",
	); err != nil {
		return err
	}
	sends := s.Value("mpi.sends.posted")
	zc := s.Value("mpi.sends.zerocopy")
	gathered := s.Value("mpi.sends.gathered")
	if sends != zc+gathered {
		return fmt.Errorf("mpi: sends.posted %d != zerocopy %d + gathered %d", sends, zc, gathered)
	}
	hit := s.Value("mpi.wirepool.hit")
	miss := s.Value("mpi.wirepool.miss")
	if hit+miss != gathered {
		return fmt.Errorf("mpi: wirepool hit %d + miss %d != sends.gathered %d", hit, miss, gathered)
	}
	posted := s.Value("mpi.recvs.posted")
	completed := s.Value("mpi.recvs.completed")
	if completed != posted {
		return fmt.Errorf("mpi: recvs.completed %d != recvs.posted %d", completed, posted)
	}
	sb := s.Value("mpi.send.bytes")
	rb := s.Value("mpi.recv.bytes")
	if rb != sb {
		return fmt.Errorf("mpi: recv.bytes %d != send.bytes %d", rb, sb)
	}
	if det := s.Value("mpi.recv.detached"); det > zc {
		return fmt.Errorf("mpi: recv.detached %d > sends.zerocopy %d", det, zc)
	}
	return nil
}
