package mpi

import (
	"fmt"
	"reflect"
	"time"

	"cartcc/internal/datatype"
	"cartcc/internal/trace"
)

// elemBytes returns the in-memory size of one element of type T.
func elemBytes[T any]() int {
	var z T
	return int(reflect.TypeOf(&z).Elem().Size())
}

// isendRaw posts a buffered send of an already-gathered wire payload.
// Virtual-time accounting: the sender's clock advances by the per-message
// send overhead; the message arrives at the receiver at
// clock + α + β·bytes (+ noise), with α omitted for self-messages (a local
// memory copy has no wire latency).
func (c *Comm) isendRaw(payload any, elems, nbytes, dst, tag int) (*Request, error) {
	if err := c.checkRank(dst, "destination"); err != nil {
		return nil, err
	}
	if tag < 0 {
		return nil, fmt.Errorf("mpi: negative tag %d", tag)
	}
	return c.isendRawTag(payload, elems, nbytes, dst, int64(tag)), nil
}

// isendRawTag is the unchecked core used both for user tags and for the
// runtime's internal (collective) tags.
//
// Virtual-time semantics follow a LogGP-style postal model: the sender's
// clock serializes on the per-message overhead plus the injection time
// β·bytes (consecutive sends share one NIC), and the message then spends
// the wire latency α in flight. Self-messages skip the wire but still pay
// the copy (injection) cost.
func (c *Comm) isendRawTag(payload any, elems, nbytes, dst int, tag int64) *Request {
	rs := c.rs
	rs.opTick()
	m := &message{ctx: c.ctx, src: c.rank, tag: int(tag), payload: payload, elems: elems, bytes: nbytes}
	dstWorld := c.worldRank(dst)
	if err := c.opError(dstWorld, fmt.Sprintf("send dst=%d tag=%d", dst, tag)); err != nil {
		// The peer has failed or the context is revoked: the send completes
		// with the typed error instead of silently dropping data.
		return failedRequest(c, reqSend, err)
	}
	delayWall, delayV := rs.delayFor(dstWorld)
	if delayWall > 0 && c.w.model == nil {
		// Stalling the sender before delivery keeps per-sender delivery
		// sequential, preserving the non-overtaking guarantee.
		time.Sleep(delayWall)
	}
	if model := c.w.model; model != nil {
		start := rs.clock
		alpha, beta := model.PathParams(rs.rank, dstWorld)
		rs.clock += model.SendOverhead + beta*float64(nbytes)
		cost := alpha + delayV
		if model.Noise != nil {
			cost += model.Noise.Sample(rs.rng, model.Cost(nbytes))
		}
		m.arrive = rs.clock + cost
		if rec := c.w.rec; rec != nil {
			rec.Add(trace.Event{
				Rank: rs.rank, Kind: trace.KindSend, Peer: dstWorld,
				Bytes: nbytes, Tag: int(tag), Start: start, End: rs.clock,
			})
		}
	}
	c.w.ranks[dstWorld].box.deliver(m)
	return &Request{kind: reqSend, c: c}
}

// irecvRaw posts a receive and returns its request; complete is invoked
// with the matched message at Wait time to scatter the payload.
func (c *Comm) irecvRaw(src, tag int, complete func(*message) error) (*Request, error) {
	if src != AnySource {
		if err := c.checkRank(src, "source"); err != nil {
			return nil, err
		}
	}
	if tag < 0 && tag != AnyTag {
		return nil, fmt.Errorf("mpi: negative tag %d", tag)
	}
	return c.irecvRawTag(src, int64(tag), complete), nil
}

func (c *Comm) irecvRawTag(src int, tag int64, complete func(*message) error) *Request {
	c.rs.opTick()
	srcWorld := AnySource
	if src != AnySource {
		srcWorld = c.worldRank(src)
	}
	if err := c.opError(srcWorld, fmt.Sprintf("recv src=%d tag=%d", src, tag)); err != nil {
		return failedRequest(c, reqRecv, err)
	}
	p := &pendingRecv{ctx: c.ctx, src: src, tag: int(tag), srcWorld: srcWorld, ready: make(chan *message, 1)}
	req := &Request{kind: reqRecv, c: c, pending: p, complete: complete}
	c.rs.box.post(p)
	// Close the race with a concurrent failure or revocation: the fault
	// layer poisons pending receives it finds in the mailbox, so re-check
	// after posting and poison our own receive if it slipped past.
	if err := c.opError(srcWorld, fmt.Sprintf("recv src=%d tag=%d", src, tag)); err != nil {
		if c.rs.box.cancel(p) {
			p.delivered.Store(true)
			p.ready <- &message{ctx: p.ctx, src: p.src, tag: p.tag, fail: err}
		}
	}
	return req
}

// scatterInto builds the receive-completion closure that type-checks the
// payload and scatters it through the layout into buf. The message must
// carry exactly l.Size() elements of type T (the runtime is deliberately
// strict: a size or type mismatch is a schedule bug, not data to truncate).
func scatterInto[T any](buf []T, l datatype.Layout) func(*message) error {
	return func(m *message) error {
		wire, ok := m.payload.([]T)
		if !ok {
			return fmt.Errorf("mpi: type mismatch: received %T, receiver expects []%T", m.payload, *new(T))
		}
		if len(wire) != l.Size() {
			return fmt.Errorf("mpi: size mismatch: received %d elements, receive layout describes %d", len(wire), l.Size())
		}
		datatype.Scatter(buf, wire, l)
		return nil
	}
}

// scatterComposite is scatterInto for multi-buffer composites.
func scatterComposite[T any](bufs [][]T, comp *datatype.Composite) func(*message) error {
	return func(m *message) error {
		wire, ok := m.payload.([]T)
		if !ok {
			return fmt.Errorf("mpi: type mismatch: received %T, receiver expects []%T", m.payload, *new(T))
		}
		if len(wire) != comp.Size() {
			return fmt.Errorf("mpi: size mismatch: received %d elements, receive composite describes %d", len(wire), comp.Size())
		}
		datatype.ScatterComposite(bufs, wire, comp)
		return nil
	}
}

// Isend starts a nonblocking send of the elements of buf selected by l to
// dst with the given tag. The data is gathered (copied out) at posting
// time, so buf may be reused immediately — buffered-send semantics.
func Isend[T any](c *Comm, buf []T, l datatype.Layout, dst, tag int) (*Request, error) {
	if err := l.Validate(len(buf)); err != nil {
		return nil, err
	}
	wire := make([]T, l.Size())
	datatype.Gather(wire, buf, l)
	return c.isendRaw(wire, len(wire), len(wire)*elemBytes[T](), dst, tag)
}

// IsendComposite starts a nonblocking send of the elements selected by comp
// across the buffers bufs (indexed by the composite's buffer selectors).
// This is the sender side of one schedule round (Listing 5 of the paper).
func IsendComposite[T any](c *Comm, bufs [][]T, comp *datatype.Composite, dst, tag int) (*Request, error) {
	wire := make([]T, comp.Size())
	datatype.GatherComposite(wire, bufs, comp)
	return c.isendRaw(wire, len(wire), len(wire)*elemBytes[T](), dst, tag)
}

// Irecv starts a nonblocking receive into the elements of buf selected by
// l. src may be AnySource and tag AnyTag.
func Irecv[T any](c *Comm, buf []T, l datatype.Layout, src, tag int) (*Request, error) {
	if err := l.Validate(len(buf)); err != nil {
		return nil, err
	}
	return c.irecvRaw(src, tag, scatterInto(buf, l))
}

// IrecvComposite starts a nonblocking receive scattered through comp across
// the buffers bufs — the receiver side of one schedule round.
func IrecvComposite[T any](c *Comm, bufs [][]T, comp *datatype.Composite, src, tag int) (*Request, error) {
	return c.irecvRaw(src, tag, scatterComposite(bufs, comp))
}

// Send is the blocking form of Isend.
func Send[T any](c *Comm, buf []T, l datatype.Layout, dst, tag int) error {
	req, err := Isend(c, buf, l, dst, tag)
	if err != nil {
		return err
	}
	_, err = req.Wait()
	return err
}

// Recv is the blocking form of Irecv.
func Recv[T any](c *Comm, buf []T, l datatype.Layout, src, tag int) (Status, error) {
	req, err := Irecv(c, buf, l, src, tag)
	if err != nil {
		return Status{}, err
	}
	return req.Wait()
}

// SendSlice sends all of buf contiguously.
func SendSlice[T any](c *Comm, buf []T, dst, tag int) error {
	return Send(c, buf, datatype.Contiguous(0, len(buf)), dst, tag)
}

// RecvSlice receives exactly len(buf) elements contiguously into buf.
func RecvSlice[T any](c *Comm, buf []T, src, tag int) (Status, error) {
	return Recv(c, buf, datatype.Contiguous(0, len(buf)), src, tag)
}

// Sendrecv performs a combined send and receive, the deadlock-free exchange
// primitive of the trivial Cartesian algorithms (Listing 4 of the paper).
// The receive is posted before the send; both complete before return.
func Sendrecv[T any](c *Comm, sendBuf []T, sl datatype.Layout, dst, sendTag int,
	recvBuf []T, rl datatype.Layout, src, recvTag int) (Status, error) {
	rreq, err := Irecv(c, recvBuf, rl, src, recvTag)
	if err != nil {
		return Status{}, err
	}
	sreq, err := Isend(c, sendBuf, sl, dst, sendTag)
	if err != nil {
		return Status{}, err
	}
	if _, err := sreq.Wait(); err != nil {
		return Status{}, err
	}
	return rreq.Wait()
}

// Iprobe checks nonblockingly for a matching incoming message and returns
// its envelope if one has arrived.
func Iprobe(c *Comm, src, tag int) (found bool, st Status, err error) {
	if src != AnySource {
		if err := c.checkRank(src, "source"); err != nil {
			return false, Status{}, err
		}
	}
	found, msgSrc, msgTag, elems := c.rs.box.probe(c.ctx, src, tag)
	if !found {
		return false, Status{}, nil
	}
	return true, Status{Source: msgSrc, Tag: msgTag, Count: elems}, nil
}
