package mpi

import (
	"fmt"
	"reflect"
	"time"
	"unsafe"

	"cartcc/internal/datatype"
	"cartcc/internal/trace"
)

// elemBytes returns the in-memory size of one element of type T without
// allocating (unsafe.Sizeof is a compile-time constant).
func elemBytes[T any]() int {
	var z T
	return int(unsafe.Sizeof(z))
}

// clonePayload deep-copies a message payload (a boxed []T) for duplicate
// injection. Reflection keeps it generic — this runs only on the injected
// fault path, never on the hot path.
func clonePayload(p any) any {
	v := reflect.ValueOf(p)
	if v.Kind() != reflect.Slice {
		return p
	}
	out := reflect.MakeSlice(v.Type(), v.Len(), v.Len())
	reflect.Copy(out, v)
	return out.Interface()
}

// isendRawTag posts a buffered send of an already-packed payload. detach
// and release are the payload's ownership hooks (see mailbox.message):
// detach for zero-copy payloads aliasing the user buffer, release for
// pooled wires; both nil for plainly-allocated wires.
//
// Virtual-time semantics follow a LogGP-style postal model: the sender's
// clock serializes on the per-message overhead plus the injection time
// β·bytes (consecutive sends share one NIC), and the message then spends
// the wire latency α in flight. Self-messages skip the wire but still pay
// the copy (injection) cost.
func (c *Comm) isendRawTag(payload any, elems, nbytes, dst int, tag int64, detach, release func(*World, *message)) *Request {
	rs := c.rs
	rs.opTick()
	if met := rs.met; met != nil {
		met.sendsPosted.Inc()
		met.sendBytes.Add(int64(nbytes))
	}
	c.w.flight.Record(rs.rank, trace.FlightSendPost, c.worldRank(dst), tag, int64(nbytes), 0)
	// One sender, one delivery order: sequence allocation through delivery
	// (injected delays included) happens under the per-sender send lock, so
	// a progress engine posting concurrently with the rank's goroutine
	// cannot deliver out of sequence order — the receiver's dedup would
	// drop the regressing message.
	rs.sendMu.Lock()
	defer rs.sendMu.Unlock()
	rs.sendSeq++
	m := &message{
		ctx: c.ctx, epoch: c.epoch, src: c.rank, tag: int(tag), payload: payload,
		elems: elems, bytes: nbytes, detach: detach, release: release,
		srcWorld: rs.rank, sseq: rs.sendSeq,
	}
	dstWorld := c.worldRank(dst)
	if err := c.opError(dstWorld, "send dst", dst, tag); err != nil {
		// The peer has failed or the context is revoked: the send completes
		// with the typed error instead of silently dropping data. A pooled
		// wire goes back to the pool — it was never delivered.
		if release != nil {
			release(c.w, m)
		}
		return failedRequest(c, reqSend, err)
	}
	if rs.dropFor(dstWorld) {
		// Injected transient fault: the message is lost on the wire. The
		// send completes normally (buffered semantics — the sender cannot
		// tell) and the payload's pooled wire goes straight back.
		c.rs.box.discard(m)
		if met := rs.met; met != nil {
			met.msgDropped.Inc()
		}
		return &Request{kind: reqSend, c: c}
	}
	// An injected duplicate must carry its own copy of the payload: the
	// original may be scattered zero-copy into the receiver's buffer the
	// moment it is delivered, so the copy is taken now, while the payload
	// is still intact. The duplicate keeps the original's send sequence
	// number — that is what makes it a duplicate to the receiver's dedup.
	var dup *message
	if rs.dupFor(dstWorld) {
		d := *m
		d.payload = clonePayload(m.payload)
		d.detach, d.release = nil, nil
		dup = &d
		if met := rs.met; met != nil {
			met.msgDuplicated.Inc()
		}
	}
	delayWall, delayV := rs.delayFor(dstWorld)
	if delayWall > 0 && c.w.model == nil {
		// Stalling the sender before delivery keeps per-sender delivery
		// sequential, preserving the non-overtaking guarantee.
		time.Sleep(delayWall)
	}
	if model := c.w.model; model != nil {
		start := rs.clock
		alpha, beta := model.PathParams(rs.rank, dstWorld)
		rs.clock += model.SendOverhead + beta*float64(nbytes)
		cost := alpha + delayV
		if model.Noise != nil {
			cost += model.Noise.Sample(rs.rng, model.Cost(nbytes))
		}
		m.arrive = rs.clock + cost
		if rec := c.w.rec; rec != nil {
			rec.Add(trace.Event{
				Rank: rs.rank, Kind: trace.KindSend, Peer: dstWorld,
				Bytes: nbytes, Tag: int(tag), Start: start, End: rs.clock,
			})
		}
	}
	if err := c.w.route(dstWorld, m); err != nil {
		// The transport could not carry the message (peer process gone,
		// payload not wire-encodable): complete the send with the typed
		// error — buffers were reclaimed by Send before it failed, or are
		// still owned by the message; discard covers both.
		c.rs.box.discard(m)
		return failedRequest(c, reqSend, err)
	}
	if dup != nil {
		_ = c.w.route(dstWorld, dup) // best effort, like the fault it mimics
	}
	return &Request{kind: reqSend, c: c}
}

// irecvRaw posts a receive and returns its request; consume is invoked
// with the matched message, at match time, to scatter the payload into the
// receiver's buffer (see mailbox.finish).
func (c *Comm) irecvRaw(src, tag int, consume func(*message) error) (*Request, error) {
	if src != AnySource {
		if err := c.checkRank(src, "source"); err != nil {
			return nil, err
		}
	}
	if tag < 0 && tag != AnyTag {
		return nil, fmt.Errorf("mpi: negative tag %d", tag)
	}
	return c.irecvRawTag(src, int64(tag), consume), nil
}

func (c *Comm) irecvRawTag(src int, tag int64, consume func(*message) error) *Request {
	return c.irecvDefer(src, tag, consume, false)
}

func (c *Comm) irecvDefer(src int, tag int64, consume func(*message) error, deferConsume bool) *Request {
	c.rs.opTick()
	if met := c.rs.met; met != nil {
		met.recvsPosted.Inc()
	}
	srcWorld := AnySource
	if src != AnySource {
		srcWorld = c.worldRank(src)
	}
	p := &pendingRecv{ctx: c.ctx, epoch: c.epoch, src: src, tag: int(tag), srcWorld: srcWorld, consume: consume, deferConsume: deferConsume, ready: make(chan *message, 1)}
	if fl := c.w.flight; fl != nil {
		p.postNs = fl.Now()
		fl.Record(c.rs.rank, trace.FlightRecvPost, srcWorld, tag, 0, 0)
	}
	req := &Request{kind: reqRecv, c: c, pending: p}
	// Post first, check faults after: a receive whose message has already
	// arrived completes even if the sender has since failed (ULFM raises
	// an error only for operations the failure makes impossible). The
	// post-then-check order also closes the race with a concurrent failure
	// or revocation — the fault layer poisons pending receives it finds in
	// the mailbox, so a fault that slipped between the two steps is caught
	// by the re-check, which cancels and poisons our own receive.
	c.rs.box.post(p)
	if err := c.opError(srcWorld, "recv src", src, tag); err != nil {
		if removed, n, idx := c.rs.box.cancel(p); removed {
			// Notify-then-ready, as in the matcher: post to any attached
			// set, then hand over the poison. (cancel already marked the
			// receive delivered.)
			if n != nil {
				n.post(idx)
			}
			p.handover(&message{ctx: p.ctx, epoch: p.epoch, src: p.src, tag: p.tag, fail: err})
		}
	}
	return req
}

// scatterInto builds the receive-completion callback that type-checks the
// payload and scatters it through the layout into buf. The message must
// carry exactly l.Size() elements of type T (the runtime is deliberately
// strict: a size or type mismatch is a schedule bug, not data to truncate).
func scatterInto[T any](buf []T, l datatype.Layout) func(*message) error {
	return func(m *message) error {
		wire, ok := m.payload.([]T)
		if !ok {
			return fmt.Errorf("mpi: type mismatch: received %T, receiver expects []%T", m.payload, *new(T))
		}
		if len(wire) != l.Size() {
			return fmt.Errorf("mpi: size mismatch: received %d elements, receive layout describes %d", len(wire), l.Size())
		}
		datatype.Scatter(buf, wire, l)
		return nil
	}
}

// scatterComposite is scatterInto for multi-buffer composites.
func scatterComposite[T any](bufs [][]T, comp *datatype.Composite) func(*message) error {
	return func(m *message) error {
		wire, ok := m.payload.([]T)
		if !ok {
			return fmt.Errorf("mpi: type mismatch: received %T, receiver expects []%T", m.payload, *new(T))
		}
		if len(wire) != comp.Size() {
			return fmt.Errorf("mpi: size mismatch: received %d elements, receive composite describes %d", len(wire), comp.Size())
		}
		datatype.ScatterComposite(bufs, wire, comp)
		return nil
	}
}

// Isend starts a nonblocking send of the elements of buf selected by l to
// dst with the given tag. The data leaves buf before Isend returns, so buf
// may be reused immediately — buffered-send semantics. A contiguous layout
// takes the zero-copy fast path: the payload is a subslice of buf, read
// exactly once inside the posting call — scattered straight into a waiting
// receiver's buffer (one copy end to end), or detached into a pooled wire
// if no receive is posted yet. Non-contiguous layouts gather into a wire
// drawn from the world's size-bucketed pool, returned after the unpack.
func Isend[T any](c *Comm, buf []T, l datatype.Layout, dst, tag int) (*Request, error) {
	if err := l.Validate(len(buf)); err != nil {
		return nil, err
	}
	if err := c.checkRank(dst, "destination"); err != nil {
		return nil, err
	}
	if tag < 0 {
		return nil, fmt.Errorf("mpi: negative tag %d", tag)
	}
	var payload any
	var detach, release func(*World, *message)
	if off, n, ok := l.Contiguous(); ok {
		payload, detach = buf[off:off+n:off+n], detachWire[T]
		c.rs.met.countSendPath(true, false)
	} else {
		wire, pooled := getWire[T](c.w, l.Size())
		datatype.Gather(wire, buf, l)
		payload, release = wire, releaseWire[T]
		c.rs.met.countSendPath(false, pooled)
	}
	return c.isendRawTag(payload, l.Size(), l.Size()*elemBytes[T](), dst, int64(tag), detach, release), nil
}

// IsendComposite starts a nonblocking send of the elements selected by comp
// across the buffers bufs (indexed by the composite's buffer selectors).
// This is the sender side of one schedule round (Listing 5 of the paper).
// Like Isend, a composite that collapses to one contiguous extent goes out
// zero-copy; anything else is gathered into a pooled wire.
func IsendComposite[T any](c *Comm, bufs [][]T, comp *datatype.Composite, dst, tag int) (*Request, error) {
	if err := c.checkRank(dst, "destination"); err != nil {
		return nil, err
	}
	if tag < 0 {
		return nil, fmt.Errorf("mpi: negative tag %d", tag)
	}
	var payload any
	var detach, release func(*World, *message)
	if bi, off, n, ok := comp.Contiguous(); ok && bi < len(bufs) {
		b := bufs[bi]
		payload, detach = b[off:off+n:off+n], detachWire[T]
		c.rs.met.countSendPath(true, false)
	} else {
		wire, pooled := getWire[T](c.w, comp.Size())
		datatype.GatherComposite(wire, bufs, comp)
		payload, release = wire, releaseWire[T]
		c.rs.met.countSendPath(false, pooled)
	}
	return c.isendRawTag(payload, comp.Size(), comp.Size()*elemBytes[T](), dst, int64(tag), detach, release), nil
}

// Irecv starts a nonblocking receive into the elements of buf selected by
// l. src may be AnySource and tag AnyTag.
func Irecv[T any](c *Comm, buf []T, l datatype.Layout, src, tag int) (*Request, error) {
	if err := l.Validate(len(buf)); err != nil {
		return nil, err
	}
	return c.irecvRaw(src, tag, scatterInto(buf, l))
}

// IrecvComposite starts a nonblocking receive scattered through comp across
// the buffers bufs — the receiver side of one schedule round. deferScatter
// selects when the payload lands in the buffers: false scatters at match
// time (single-copy fast path — safe only while nothing else touches the
// target extents between post and Wait, the receiver's own send-side
// gathers included); true defers the scatter to Wait, in the receiver's
// goroutine, which tolerates receive targets overlapping same-phase send
// sources at the price of messages staging through a pooled wire. Schedule
// executors choose per phase from compile-time overlap analysis.
func IrecvComposite[T any](c *Comm, bufs [][]T, comp *datatype.Composite, src, tag int, deferScatter bool) (*Request, error) {
	if src != AnySource {
		if err := c.checkRank(src, "source"); err != nil {
			return nil, err
		}
	}
	if tag < 0 && tag != AnyTag {
		return nil, fmt.Errorf("mpi: negative tag %d", tag)
	}
	return c.irecvDefer(src, int64(tag), scatterComposite(bufs, comp), deferScatter), nil
}

// Send is the blocking form of Isend.
func Send[T any](c *Comm, buf []T, l datatype.Layout, dst, tag int) error {
	req, err := Isend(c, buf, l, dst, tag)
	if err != nil {
		return err
	}
	_, err = req.Wait()
	return err
}

// Recv is the blocking form of Irecv.
func Recv[T any](c *Comm, buf []T, l datatype.Layout, src, tag int) (Status, error) {
	req, err := Irecv(c, buf, l, src, tag)
	if err != nil {
		return Status{}, err
	}
	return req.Wait()
}

// SendSlice sends all of buf contiguously.
func SendSlice[T any](c *Comm, buf []T, dst, tag int) error {
	return Send(c, buf, datatype.Contiguous(0, len(buf)), dst, tag)
}

// RecvSlice receives exactly len(buf) elements contiguously into buf.
func RecvSlice[T any](c *Comm, buf []T, src, tag int) (Status, error) {
	return Recv(c, buf, datatype.Contiguous(0, len(buf)), src, tag)
}

// Sendrecv performs a combined send and receive, the deadlock-free exchange
// primitive of the trivial Cartesian algorithms (Listing 4 of the paper).
// The receive is posted before the send; both complete before return.
func Sendrecv[T any](c *Comm, sendBuf []T, sl datatype.Layout, dst, sendTag int,
	recvBuf []T, rl datatype.Layout, src, recvTag int) (Status, error) {
	rreq, err := Irecv(c, recvBuf, rl, src, recvTag)
	if err != nil {
		return Status{}, err
	}
	sreq, err := Isend(c, sendBuf, sl, dst, sendTag)
	if err != nil {
		return Status{}, err
	}
	if _, err := sreq.Wait(); err != nil {
		return Status{}, err
	}
	return rreq.Wait()
}

// Iprobe checks nonblockingly for a matching incoming message and returns
// its envelope if one has arrived. A fully-specified (src, tag) probe is an
// O(1) index lookup however deep the unexpected queue is.
func Iprobe(c *Comm, src, tag int) (found bool, st Status, err error) {
	if src != AnySource {
		if err := c.checkRank(src, "source"); err != nil {
			return false, Status{}, err
		}
	}
	found, msgSrc, msgTag, elems := c.rs.box.probe(c.ctx, c.epoch, src, tag)
	if !found {
		return false, Status{}, nil
	}
	return true, Status{Source: msgSrc, Tag: msgTag, Count: elems}, nil
}
