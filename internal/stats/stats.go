// Package stats implements the measurement processing of the paper's
// Appendix A: means with 95% confidence intervals, and the robust subset
// selections the authors adopted after observing heavy outliers and
// bimodal distributions — the lower two quartiles on Hydra, the smallest
// third on Titan — plus simple histograms for Figure 7.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for fewer than two
// samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs (0 for empty input).
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile of xs by linear interpolation between
// order statistics, q in [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := sortedCopy(xs)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// MeanCI returns the mean of xs and the half-width of its 95% confidence
// interval under the normal approximation (1.96·s/√n). With fewer than two
// samples the half-width is 0.
func MeanCI(xs []float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	halfWidth = 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
	return mean, halfWidth
}

// LowerQuartiles returns the samples at or below the median — the paper's
// Hydra selection ("data only for both the first and the second
// quartile").
func LowerQuartiles(xs []float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	s := sortedCopy(xs)
	n := (len(s) + 1) / 2
	return s[:n]
}

// SmallestThird returns the smallest third of the samples — the paper's
// Titan selection ("averages only on the smallest third of all
// measurements"). At least one sample is always kept.
func SmallestThird(xs []float64) []float64 {
	if len(xs) == 0 {
		return nil
	}
	s := sortedCopy(xs)
	n := len(s) / 3
	if n == 0 {
		n = 1
	}
	return s[:n]
}

// Filter selects the Appendix A subset for a named system profile:
// "hydra" → lower two quartiles, "titan"/"titan-noisy" → smallest third,
// anything else → all samples.
func Filter(profile string, xs []float64) []float64 {
	switch profile {
	case "hydra":
		return LowerQuartiles(xs)
	case "titan", "titan-noisy":
		return SmallestThird(xs)
	default:
		return append([]float64(nil), xs...)
	}
}

func sortedCopy(xs []float64) []float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s
}

// Histogram is a fixed-width-bin histogram over [Min, Max).
type Histogram struct {
	Min, Max float64
	Counts   []int
	// Overflow counts samples outside [Min, Max).
	Overflow int
}

// NewHistogram bins xs into the given number of equal-width bins spanning
// the data range (expanded slightly so the maximum lands inside).
func NewHistogram(xs []float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: need at least one bin, got %d", bins)
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("stats: empty sample for histogram")
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	hi += (hi - lo) * 1e-9
	h := &Histogram{Min: lo, Max: hi, Counts: make([]int, bins)}
	w := (hi - lo) / float64(bins)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 || i >= bins {
			h.Overflow++
			continue
		}
		h.Counts[i]++
	}
	return h, nil
}

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 {
	return (h.Max - h.Min) / float64(len(h.Counts))
}

// Render draws the histogram as rows of "lo..hi | count ####" text, the
// form used by the Figure 7 reproduction. scale is the count represented
// by one '#' (at least 1).
func (h *Histogram) Render(scale int) string {
	if scale < 1 {
		scale = 1
	}
	var b strings.Builder
	w := h.BinWidth()
	for i, c := range h.Counts {
		lo := h.Min + float64(i)*w
		hi := lo + w
		fmt.Fprintf(&b, "%12.2f ..%12.2f | %5d %s\n", lo, hi, c, strings.Repeat("#", c/scale))
	}
	return b.String()
}
