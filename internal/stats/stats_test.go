package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v", m)
	}
	if v := Variance(xs); math.Abs(v-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v", v)
	}
	if s := StdDev(xs); math.Abs(s-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("StdDev = %v", s)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs")
	}
}

func TestMedianAndQuantiles(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if m := Median(xs); m != 3 {
		t.Errorf("Median = %v", m)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("Q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("Q1 = %v", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Errorf("Q.25 = %v", q)
	}
	even := []float64{1, 2, 3, 4}
	if m := Median(even); m != 2.5 {
		t.Errorf("even Median = %v", m)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile")
	}
}

func TestMeanCI(t *testing.T) {
	xs := []float64{10, 10, 10, 10}
	m, hw := MeanCI(xs)
	if m != 10 || hw != 0 {
		t.Errorf("constant CI = %v ± %v", m, hw)
	}
	m, hw = MeanCI([]float64{9, 11})
	want := 1.96 * math.Sqrt(2) / math.Sqrt(2)
	if m != 10 || math.Abs(hw-want) > 1e-12 {
		t.Errorf("CI = %v ± %v, want ± %v", m, hw, want)
	}
	if _, hw := MeanCI([]float64{3}); hw != 0 {
		t.Error("single-sample CI nonzero")
	}
}

func TestLowerQuartiles(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7, 2, 8, 4}
	lo := LowerQuartiles(xs)
	if len(lo) != 4 {
		t.Fatalf("kept %d of 8", len(lo))
	}
	for _, x := range lo {
		if x > 4 {
			t.Errorf("lower quartiles contain %v", x)
		}
	}
	odd := LowerQuartiles([]float64{3, 1, 2})
	if len(odd) != 2 || odd[1] != 2 {
		t.Errorf("odd input: %v", odd)
	}
	if LowerQuartiles(nil) != nil {
		t.Error("empty input")
	}
}

func TestSmallestThird(t *testing.T) {
	xs := []float64{6, 5, 4, 3, 2, 1}
	s := SmallestThird(xs)
	if len(s) != 2 || s[0] != 1 || s[1] != 2 {
		t.Errorf("SmallestThird = %v", s)
	}
	if got := SmallestThird([]float64{5, 4}); len(got) != 1 || got[0] != 4 {
		t.Errorf("tiny input = %v", got)
	}
}

func TestFilterProfiles(t *testing.T) {
	xs := []float64{4, 1, 2, 3, 6, 5}
	if got := Filter("hydra", xs); len(got) != 3 {
		t.Errorf("hydra filter: %v", got)
	}
	if got := Filter("titan", xs); len(got) != 2 {
		t.Errorf("titan filter: %v", got)
	}
	if got := Filter("titan-noisy", xs); len(got) != 2 {
		t.Errorf("titan-noisy filter: %v", got)
	}
	if got := Filter("", xs); len(got) != len(xs) {
		t.Errorf("default filter: %v", got)
	}
	// Default filter must copy, not alias.
	cp := Filter("", xs)
	cp[0] = -99
	if xs[0] == -99 {
		t.Error("Filter aliases its input")
	}
}

func TestFilterReducesMeanUnderOutliers(t *testing.T) {
	// The motivating property from Appendix A: with occasional huge
	// outliers, the filtered mean stays near the true mode.
	rng := rand.New(rand.NewSource(1))
	var xs []float64
	for i := 0; i < 300; i++ {
		x := 100 + rng.NormFloat64()
		if rng.Float64() < 0.05 {
			x *= 1000 // outlier
		}
		xs = append(xs, x)
	}
	raw := Mean(xs)
	filtered := Mean(Filter("titan", xs))
	if raw < 1000 {
		t.Skip("rng produced no outliers")
	}
	if filtered > 110 || filtered < 90 {
		t.Errorf("filtered mean %v strayed from mode 100", filtered)
	}
}

func TestQuantileMonotonicProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.5, 1, 1.5, 2, 2.5, 3, 3.99}
	h, err := NewHistogram(xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := h.Overflow
	for _, c := range h.Counts {
		total += c
	}
	if total != len(xs) {
		t.Errorf("histogram lost samples: %d of %d", total, len(xs))
	}
	if h.Overflow != 0 {
		t.Errorf("overflow = %d", h.Overflow)
	}
	if h.Counts[0] != 2 {
		t.Errorf("first bin = %d", h.Counts[0])
	}
	if h.BinWidth() <= 0 {
		t.Error("non-positive bin width")
	}
}

func TestHistogramDegenerate(t *testing.T) {
	if _, err := NewHistogram(nil, 4); err == nil {
		t.Error("empty histogram accepted")
	}
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Error("zero bins accepted")
	}
	h, err := NewHistogram([]float64{5, 5, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total+h.Overflow != 3 {
		t.Errorf("constant data histogram: %+v", h)
	}
}

func TestHistogramRender(t *testing.T) {
	h, err := NewHistogram([]float64{1, 1, 1, 2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := h.Render(1)
	if !strings.Contains(out, "#") {
		t.Errorf("render has no bars:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Errorf("render has %d lines", lines)
	}
	// Scale below 1 is clamped.
	_ = h.Render(0)
}

func TestHistogramCountProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.ExpFloat64() * 100
		}
		bins := rng.Intn(20) + 1
		h, err := NewHistogram(xs, bins)
		if err != nil {
			t.Fatal(err)
		}
		total := h.Overflow
		for _, c := range h.Counts {
			total += c
		}
		if total != n {
			t.Fatalf("trial %d: %d samples binned of %d", trial, total, n)
		}
	}
}
