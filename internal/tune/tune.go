// Package tune estimates the machine constants of the runtime's linear
// cost model — per-message latency α, per-byte cost β, and per-message CPU
// overhead o — from a handful of seeded micro-probes over a live world,
// and persists them as a machine profile.
//
// The profile closes the loop the paper leaves to the reader: its analytic
// cut-off m < (α/β)·(t−C)/(V−t) (Section 3.1) tells you which schedule
// family wins *given* the machine constants, and this package measures
// them, so the selection function in internal/cart can pick trivial vs
// combining vs pipelined-combining without the caller hand-tuning
// Algorithm per deployment.
//
// Three profile sources, in the order the selection layer consults them:
//
//   - model: the run carries a virtual-time cost model (tests, simulation,
//     cartbench). FromModel converts it directly — deterministic, no
//     probes, so the simulation harness stays byte-reproducible.
//   - measured: Calibrate ran ping-pong and back-to-back-post probes over
//     a live wall-clock world and the result was installed with SetMachine
//     (or loaded from a previously saved profile file).
//   - default: neither is available; Default returns the Hydra-class
//     constants of netmodel, so selection still has a sane cut-off.
package tune

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"cartcc/internal/datatype"
	"cartcc/internal/mpi"
	"cartcc/internal/netmodel"
)

// Profile is one machine's calibrated cost constants, the inputs of the
// paper's cut-off analysis. All times are in seconds.
type Profile struct {
	// Alpha is the wire latency per message (the α of Section 3.1).
	Alpha float64 `json:"alphaSeconds"`
	// Beta is the transfer cost per byte (the β term).
	Beta float64 `json:"betaSecondsPerByte"`
	// SendOverhead is the sender CPU cost per posted message (the o that
	// serializes a burst of nonblocking sends).
	SendOverhead float64 `json:"sendOverheadSeconds"`
	// RecvOverhead is the receiver CPU cost per completed message.
	RecvOverhead float64 `json:"recvOverheadSeconds"`
	// Source records where the constants came from: "model", "measured" or
	// "default". The selection layer surfaces it in every Decision so a
	// surprising pick can be traced to its inputs.
	Source string `json:"source"`
	// Probes is the number of timed round trips behind a measured profile
	// (0 for model/default profiles).
	Probes int `json:"probes,omitempty"`
}

// Overhead returns the total per-message CPU overhead o used by the
// crossover formula (sender plus receiver side).
func (p Profile) Overhead() float64 { return p.SendOverhead + p.RecvOverhead }

// Model converts the profile back into a netmodel cost model, so the
// analytic helpers (CutoffBytes, CutoffBytesLogGP, PredictRelative) apply
// to measured constants too.
func (p Profile) Model() *netmodel.Model {
	return &netmodel.Model{
		Alpha:        p.Alpha,
		Beta:         p.Beta,
		SendOverhead: p.SendOverhead,
		RecvOverhead: p.RecvOverhead,
	}
}

// Validate checks the profile for usable constants.
func (p Profile) Validate() error {
	if p.Alpha < 0 || p.Beta <= 0 || p.SendOverhead < 0 || p.RecvOverhead < 0 {
		return fmt.Errorf("tune: invalid profile %+v (need α,o ≥ 0 and β > 0)", p)
	}
	return nil
}

// FromModel derives a profile from a virtual-time cost model — the
// deterministic fallback the tests and the simulation harness use instead
// of wall-clock probes.
func FromModel(m *netmodel.Model) Profile {
	return Profile{
		Alpha:        m.Alpha,
		Beta:         m.Beta,
		SendOverhead: m.SendOverhead,
		RecvOverhead: m.RecvOverhead,
		Source:       "model",
	}
}

// Default returns the fallback constants (the Hydra preset of netmodel):
// used when no model is attached and no machine profile has been
// calibrated. Deterministic, so Auto selection in plain tests never
// depends on wall-clock noise.
func Default() Profile {
	p := FromModel(netmodel.Hydra())
	p.Source = "default"
	return p
}

// ---------------------------------------------------------------------
// Live calibration.
// ---------------------------------------------------------------------

// CalibrateConfig tunes the micro-probe sweep.
type CalibrateConfig struct {
	// Probes is the number of timed round trips per estimate (default 32).
	Probes int
	// LargeBytes is the payload of the bandwidth probe (default 1 MiB).
	LargeBytes int
}

func (c CalibrateConfig) withDefaults() CalibrateConfig {
	if c.Probes <= 0 {
		c.Probes = 32
	}
	if c.LargeBytes <= 0 {
		c.LargeBytes = 1 << 20
	}
	return c
}

// calibrateTag keeps probe traffic away from user tag space.
const calibrateTag = 1<<20 - 7

// Calibrate estimates the machine constants over a live world. Collective
// over w: every rank must call it; ranks 0 and 1 run the probes and the
// result is broadcast, so all ranks return the same profile.
//
// Probes (all between ranks 0 and 1):
//
//   - small ping-pong (8 B): the median half round trip estimates the full
//     per-message cost α + o_send + o_recv.
//   - large ping-pong (LargeBytes): the extra time over the small probe,
//     divided by the bytes, estimates β.
//   - back-to-back posts: rank 0 posts a burst of nonblocking sends and
//     the time per post estimates o_send (receiver overhead is assumed
//     symmetric, as in the presets).
//
// When the run carries a virtual-time cost model the probes are skipped
// and the model's own constants are returned (Source "model") — the
// deterministic fallback that keeps tests and simulation reproducible. A
// single-rank world returns Default().
func Calibrate(w *mpi.Comm, cfgs ...CalibrateConfig) (Profile, error) {
	var cfg CalibrateConfig
	if len(cfgs) > 0 {
		cfg = cfgs[0]
	}
	cfg = cfg.withDefaults()
	if m := w.Model(); m != nil {
		return FromModel(m), nil
	}
	if w.Size() < 2 {
		return Default(), nil
	}
	var prof Profile
	var err error
	switch w.Rank() {
	case 0:
		prof, err = probeSide0(w, cfg)
	case 1:
		err = probeSide1(w, cfg)
	}
	if err != nil {
		return Profile{}, err
	}
	// Share the result: pack as nanosecond-scale floats and broadcast.
	packed := []float64{prof.Alpha, prof.Beta, prof.SendOverhead, prof.RecvOverhead, float64(prof.Probes)}
	if err := mpi.Bcast(w, packed, 0); err != nil {
		return Profile{}, err
	}
	prof = Profile{
		Alpha:        packed[0],
		Beta:         packed[1],
		SendOverhead: packed[2],
		RecvOverhead: packed[3],
		Source:       "measured",
		Probes:       int(packed[4]),
	}
	if set := w.MetricsSet(); set != nil {
		set.Counter("cart.tune.calibrations").Inc()
		set.Gauge("cart.tune.alpha.ns").SetMax(int64(prof.Alpha * 1e9))
		set.Gauge("cart.tune.overhead.ns").SetMax(int64(prof.Overhead() * 1e9))
	}
	return prof, prof.Validate()
}

// probeSide0 is rank 0's half of the probes: it drives the timing.
func probeSide0(w *mpi.Comm, cfg CalibrateConfig) (Profile, error) {
	small := make([]int64, 1)
	large := make([]int64, (cfg.LargeBytes+7)/8)
	pingPong := func(buf []int64) (float64, error) {
		if err := mpi.SendSlice(w, buf, 1, calibrateTag); err != nil {
			return 0, err
		}
		if _, err := mpi.RecvSlice(w, buf, 1, calibrateTag); err != nil {
			return 0, err
		}
		return 0, nil
	}
	// Warm the path (mailbox slots, wire pools) before timing.
	for i := 0; i < 4; i++ {
		if _, err := pingPong(small); err != nil {
			return Profile{}, err
		}
	}
	smallRTT := make([]float64, 0, cfg.Probes)
	for i := 0; i < cfg.Probes; i++ {
		t0 := time.Now()
		if _, err := pingPong(small); err != nil {
			return Profile{}, err
		}
		smallRTT = append(smallRTT, time.Since(t0).Seconds())
	}
	largeRTT := make([]float64, 0, cfg.Probes)
	for i := 0; i < cfg.Probes; i++ {
		t0 := time.Now()
		if _, err := pingPong(large); err != nil {
			return Profile{}, err
		}
		largeRTT = append(largeRTT, time.Since(t0).Seconds())
	}
	// Overhead probe: time a burst of back-to-back nonblocking posts.
	burst := cfg.Probes
	reqs := make([]*mpi.Request, 0, burst)
	t0 := time.Now()
	for i := 0; i < burst; i++ {
		req, err := mpi.Isend(w, small, datatype.Contiguous(0, 1), 1, calibrateTag+1)
		if err != nil {
			return Profile{}, err
		}
		reqs = append(reqs, req)
	}
	perPost := time.Since(t0).Seconds() / float64(burst)
	if err := mpi.Waitall(reqs...); err != nil {
		return Profile{}, err
	}

	halfSmall := median(smallRTT) / 2
	halfLarge := median(largeRTT) / 2
	beta := (halfLarge - halfSmall) / float64(cfg.LargeBytes)
	if beta <= 0 {
		// In-process transfers can be faster than timer resolution; fall
		// back to a copy-bandwidth floor (~10 GB/s) so the cut-off stays
		// finite.
		beta = 1e-10
	}
	o := perPost
	if o > halfSmall/2 {
		o = halfSmall / 2 // overheads cannot exceed the round trip they ride in
	}
	alpha := halfSmall - 2*o
	if alpha < 0 {
		alpha = 0
	}
	return Profile{
		Alpha:        alpha,
		Beta:         beta,
		SendOverhead: o,
		RecvOverhead: o,
		Source:       "measured",
		Probes:       cfg.Probes,
	}, nil
}

// probeSide1 is rank 1's half: echo everything rank 0 sends.
func probeSide1(w *mpi.Comm, cfg CalibrateConfig) error {
	small := make([]int64, 1)
	large := make([]int64, (cfg.LargeBytes+7)/8)
	echo := func(buf []int64) error {
		if _, err := mpi.RecvSlice(w, buf, 0, calibrateTag); err != nil {
			return err
		}
		return mpi.SendSlice(w, buf, 0, calibrateTag)
	}
	for i := 0; i < 4+cfg.Probes; i++ {
		if err := echo(small); err != nil {
			return err
		}
	}
	for i := 0; i < cfg.Probes; i++ {
		if err := echo(large); err != nil {
			return err
		}
	}
	for i := 0; i < cfg.Probes; i++ {
		if _, err := mpi.RecvSlice(w, small, 0, calibrateTag+1); err != nil {
			return err
		}
	}
	return nil
}

func median(xs []float64) float64 {
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	n := len(ys)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return ys[n/2]
	}
	return (ys[n/2-1] + ys[n/2]) / 2
}

// ---------------------------------------------------------------------
// The process-global machine profile.
// ---------------------------------------------------------------------

var (
	machineMu sync.RWMutex
	machine   *Profile
)

// SetMachine installs p as the process-global machine profile consulted by
// the selection layer when a run has no cost model. Returns an error when
// the profile is unusable.
func SetMachine(p Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	machineMu.Lock()
	cp := p
	machine = &cp
	machineMu.Unlock()
	return nil
}

// Machine returns the installed machine profile, if any. It never
// triggers calibration — installing a profile is an explicit act, so
// simulation and test runs stay deterministic.
func Machine() (Profile, bool) {
	machineMu.RLock()
	defer machineMu.RUnlock()
	if machine == nil {
		return Profile{}, false
	}
	return *machine, true
}

// ClearMachine removes the installed profile (tests).
func ClearMachine() {
	machineMu.Lock()
	machine = nil
	machineMu.Unlock()
}

// Save persists the profile as JSON at path.
func Save(path string, p Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a profile saved by Save.
func Load(path string) (Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Profile{}, err
	}
	var p Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return Profile{}, fmt.Errorf("tune: %s: %w", path, err)
	}
	if p.Source == "" {
		p.Source = "measured"
	}
	return p, p.Validate()
}
