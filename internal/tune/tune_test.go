package tune

import (
	"math"
	"path/filepath"
	"sync"
	"testing"

	"cartcc/internal/mpi"
	"cartcc/internal/netmodel"
)

func TestFromModelAndDefault(t *testing.T) {
	m := netmodel.Hydra()
	p := FromModel(m)
	if p.Alpha != m.Alpha || p.Beta != m.Beta || p.SendOverhead != m.SendOverhead || p.RecvOverhead != m.RecvOverhead {
		t.Fatalf("FromModel lost constants: %+v vs %+v", p, m)
	}
	if p.Source != "model" {
		t.Fatalf("Source = %q, want model", p.Source)
	}
	d := Default()
	if d.Source != "default" {
		t.Fatalf("Default Source = %q", d.Source)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	back := p.Model()
	if back.Alpha != m.Alpha || back.Beta != m.Beta {
		t.Fatalf("Model() roundtrip lost constants")
	}
}

func TestValidateRejectsGarbage(t *testing.T) {
	bad := []Profile{
		{Alpha: -1, Beta: 1e-10},
		{Alpha: 1e-6, Beta: 0},
		{Alpha: 1e-6, Beta: 1e-10, SendOverhead: -1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("Validate accepted %+v", p)
		}
	}
}

// A world carrying a virtual-time model must calibrate deterministically
// from the model, with no wall-clock probes, on every rank.
func TestCalibrateModelFallback(t *testing.T) {
	model := netmodel.Titan()
	var mu sync.Mutex
	got := map[int]Profile{}
	err := mpi.Run(mpi.Config{Procs: 4, Model: model}, func(c *mpi.Comm) error {
		p, err := Calibrate(c)
		if err != nil {
			return err
		}
		mu.Lock()
		got[c.Rank()] = p
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, p := range got {
		if p.Source != "model" {
			t.Fatalf("rank %d: Source = %q, want model", r, p.Source)
		}
		if p.Alpha != model.Alpha || p.Beta != model.Beta {
			t.Fatalf("rank %d: constants %+v differ from model %+v", r, p, model)
		}
	}
}

func TestCalibrateSingleRankFallsBackToDefault(t *testing.T) {
	err := mpi.Run(mpi.Config{Procs: 1}, func(c *mpi.Comm) error {
		p, err := Calibrate(c)
		if err != nil {
			return err
		}
		if p.Source != "default" {
			t.Errorf("Source = %q, want default", p.Source)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Live wall-clock calibration: every rank must agree on the measured
// profile and the constants must be physically plausible (finite,
// non-negative, β > 0).
func TestCalibrateLiveAgreement(t *testing.T) {
	var mu sync.Mutex
	got := map[int]Profile{}
	err := mpi.Run(mpi.Config{Procs: 3}, func(c *mpi.Comm) error {
		p, err := Calibrate(c, CalibrateConfig{Probes: 8, LargeBytes: 1 << 16})
		if err != nil {
			return err
		}
		mu.Lock()
		got[c.Rank()] = p
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := got[0]
	if ref.Source != "measured" || ref.Probes != 8 {
		t.Fatalf("rank 0 profile %+v: want measured/8-probe", ref)
	}
	if err := ref.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{ref.Alpha, ref.Beta, ref.SendOverhead, ref.RecvOverhead} {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			t.Fatalf("non-finite constant in %+v", ref)
		}
	}
	for r, p := range got {
		if p != ref {
			t.Fatalf("rank %d profile %+v disagrees with rank 0 %+v", r, p, ref)
		}
	}
}

func TestMachineProfileLifecycle(t *testing.T) {
	ClearMachine()
	t.Cleanup(ClearMachine)
	if _, ok := Machine(); ok {
		t.Fatal("Machine() reported a profile before SetMachine")
	}
	p := Default()
	if err := SetMachine(p); err != nil {
		t.Fatal(err)
	}
	got, ok := Machine()
	if !ok || got != p {
		t.Fatalf("Machine() = %+v, %v; want %+v, true", got, ok, p)
	}
	if err := SetMachine(Profile{Beta: -1}); err == nil {
		t.Fatal("SetMachine accepted an invalid profile")
	}
	ClearMachine()
	if _, ok := Machine(); ok {
		t.Fatal("Machine() reported a profile after ClearMachine")
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "profile.json")
	p := Profile{Alpha: 1.5e-6, Beta: 8e-11, SendOverhead: 4e-7, RecvOverhead: 4e-7, Source: "measured", Probes: 32}
	if err := Save(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("roundtrip: %+v != %+v", got, p)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("Load of missing file succeeded")
	}
}
