package sim

import (
	"os"

	"cartcc/internal/introspect"
	"cartcc/internal/mpi"
)

// CI failure forensics: when CARTSIM_DUMP_DIR is set, every simulated
// world runs with the introspection plane's post-mortem dumper attached,
// so a soak or recovery-sweep failure leaves bundles (state snapshot,
// flight tails, deadlock proof) next to the replay artifact. Unset — the
// normal local case — everything here is a no-op.

// pmDumpDir reads the env var once per call; sweeps are long, process
// caching buys nothing.
func pmDumpDir() string { return os.Getenv("CARTSIM_DUMP_DIR") }

// wirePostMortem attaches a fresh inspector's failure hook to cfg and
// returns the bind function the run body must call so the dumper sees
// the live world. Returns a no-op bind when dumping is disabled.
func wirePostMortem(cfg *mpi.Config) func(c *mpi.Comm) {
	dir := pmDumpDir()
	if dir == "" {
		return func(*mpi.Comm) {}
	}
	insp := introspect.New(introspect.Options{DumpDir: dir})
	cfg.OnFailure = insp.FailureHook
	return func(c *mpi.Comm) { insp.Bind(c.World()) }
}
