package sim

import (
	"testing"

	"cartcc/internal/mpi"
)

// TestCheckRecoverySweep pins the self-healing contract over a block of
// generated scenarios: every crash scenario must end verified-recovered or
// typed-terminal — never a Failure — and the classification must be
// deterministic, since CI replays failing seeds by number. The
// determinism half applies only to in-process worlds: under
// CARTCC_TRANSPORT the wall-clock recovery legs cross real sockets,
// whose timing legitimately moves a seed between the two valid
// categories (the recovered-or-typed-terminal contract itself still
// holds, run after run).
func TestCheckRecoverySweep(t *testing.T) {
	n := int64(120)
	if testing.Short() {
		n = 30
	}
	counts := map[RecoveryCategory]int{}
	for seed := int64(0); seed < n; seed++ {
		sc := Generate(seed)
		cat, f := CheckRecovery(sc)
		if f != nil {
			t.Fatalf("seed %d (%s): %s", seed, sc.Fingerprint(), f)
		}
		again, f := CheckRecovery(sc)
		if f != nil {
			t.Fatalf("seed %d: re-run failed the contract: %s (%v)", seed, again, f)
		}
		if again != cat && !mpi.TransportEnvActive() {
			t.Fatalf("seed %d: classification not deterministic: %s then %s", seed, cat, again)
		}
		counts[cat]++
	}
	if counts[RecoveryRecovered] == 0 {
		t.Errorf("%d seeds never produced a verified recovery: %v", n, counts)
	}
	if !testing.Short() && counts[RecoveryTerminal] == 0 {
		t.Errorf("%d seeds never produced a typed-terminal ending: %v", n, counts)
	}
	t.Logf("recovery sweep over %d seeds: %v", n, counts)
}

// TestCheckRecoveryCrashRecovered is the acceptance scenario in miniature:
// one rank of a 2×3 torus crashes mid-collective, and both policy ×
// executor legs must shrink, re-embed, re-execute and verify payloads
// against a fresh world of the recovered shape.
func TestCheckRecoveryCrashRecovered(t *testing.T) {
	sc := Scenario{
		Dims:         []int{2, 3},
		Periods:      []bool{true, true},
		Neighborhood: [][]int{{0, 1}, {1, 0}, {0, -1}},
		Op:           "alltoall",
		BlockSize:    2,
		Preset:       "hydra",
		Faults:       &FaultSpec{Crashes: []CrashSpec{{Rank: 4, AtOp: 30}}},
	}
	cat, f := CheckRecovery(sc)
	if f != nil {
		t.Fatalf("crafted crash scenario failed to recover: %s", f)
	}
	if cat != RecoveryRecovered {
		t.Fatalf("crafted crash scenario classified %s, want %s", cat, RecoveryRecovered)
	}
}

// TestCheckRecoveryFaultFree pins that the recovery leg stays out of the
// way for scenarios with nothing to recover from: no faults at all, and
// transient-only plans (those are the plain fault leg's job).
func TestCheckRecoveryFaultFree(t *testing.T) {
	sc := mutationScenario()
	if cat, f := CheckRecovery(sc); f != nil || cat != RecoveryFaultFree {
		t.Fatalf("clean scenario: got %s, %v", cat, f)
	}
	sc.Faults = &FaultSpec{Drops: []TransientSpec{{From: 0, To: 1, Nth: 1}}}
	if cat, f := CheckRecovery(sc); f != nil || cat != RecoveryFaultFree {
		t.Fatalf("transient-only scenario: got %s, %v", cat, f)
	}
}
