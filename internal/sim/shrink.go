package sim

import "sort"

// Shrink minimizes a failing scenario while the same oracle keeps
// tripping: it greedily tries simplifications — fewer dimensions, smaller
// extents, fewer neighborhood offsets, block size 1, fewer crashes, a
// plain preset model — re-runs CheckScenario on each candidate, and keeps
// any candidate that still fails the *same* check. It loops to a fixpoint,
// so the returned scenario is 1-minimal with respect to the moves below:
// no single simplification can be applied without losing the failure.
//
// Shrinking re-executes the oracles many times; scenarios are small (≤36
// ranks) so a full shrink stays in the low seconds.
func Shrink(sc Scenario, opt Options, orig Failure) Scenario {
	fails := func(cand Scenario) bool {
		if cand.Validate() != nil {
			return false
		}
		f := CheckScenario(cand, opt)
		return f != nil && f.Check == orig.Check
	}
	for {
		cand, ok := shrinkStep(sc, fails)
		if !ok {
			return sc
		}
		sc = cand
	}
}

// shrinkStep tries every single simplification of sc in a fixed order and
// returns the first that still fails; ok is false at the fixpoint.
func shrinkStep(sc Scenario, fails func(Scenario) bool) (Scenario, bool) {
	// Drop a whole dimension (with its coordinate in every offset).
	for k := range sc.Dims {
		if len(sc.Dims) == 1 {
			break
		}
		if cand := dropDim(sc, k); fails(cand) {
			return cand, true
		}
	}
	// Shrink an extent toward 2.
	for k, e := range sc.Dims {
		for _, smaller := range []int{2, e - 1} {
			if smaller >= 2 && smaller < e {
				cand := clone(sc)
				cand.Dims[k] = smaller
				cand = clampCrashRanks(cand)
				if fails(cand) {
					return cand, true
				}
			}
		}
	}
	// Drop a neighborhood offset.
	for i := range sc.Neighborhood {
		if len(sc.Neighborhood) == 1 {
			break
		}
		cand := clone(sc)
		cand.Neighborhood = append(cand.Neighborhood[:i:i], cand.Neighborhood[i+1:]...)
		if fails(cand) {
			return cand, true
		}
	}
	// Shrink an offset coordinate toward zero (collapses multi-wraps).
	for i, off := range sc.Neighborhood {
		for j, v := range off {
			if v == 0 {
				continue
			}
			next := v / 2
			cand := clone(sc)
			cand.Neighborhood[i][j] = next
			if fails(cand) {
				return cand, true
			}
		}
	}
	// Smaller blocks.
	if sc.BlockSize > 1 {
		for _, m := range []int{1, sc.BlockSize / 2} {
			if m >= 1 && m < sc.BlockSize {
				cand := clone(sc)
				cand.BlockSize = m
				if fails(cand) {
					return cand, true
				}
			}
		}
	}
	// Fewer faults, then none.
	if sc.Faults != nil {
		for i := range sc.Faults.Crashes {
			cand := clone(sc)
			cand.Faults.Crashes = append(cand.Faults.Crashes[:i:i], cand.Faults.Crashes[i+1:]...)
			if !cand.Faults.active() {
				cand.Faults = nil
			}
			if fails(cand) {
				return cand, true
			}
		}
		for i := range sc.Faults.Drops {
			cand := clone(sc)
			cand.Faults.Drops = append(cand.Faults.Drops[:i:i], cand.Faults.Drops[i+1:]...)
			if !cand.Faults.active() {
				cand.Faults = nil
			}
			if fails(cand) {
				return cand, true
			}
		}
		for i := range sc.Faults.Dups {
			cand := clone(sc)
			cand.Faults.Dups = append(cand.Faults.Dups[:i:i], cand.Faults.Dups[i+1:]...)
			if !cand.Faults.active() {
				cand.Faults = nil
			}
			if fails(cand) {
				return cand, true
			}
		}
	}
	// A plain preset model instead of a random or noisy one.
	if sc.Preset != "hydra" {
		cand := clone(sc)
		cand.Preset = "hydra"
		cand.ModelSeed = 0
		if fails(cand) {
			return cand, true
		}
	}
	// Full periodicity: a torus is simpler to reason about than a mesh.
	if !sc.Torus() {
		cand := clone(sc)
		for i := range cand.Periods {
			cand.Periods[i] = true
		}
		if fails(cand) {
			return cand, true
		}
	}
	return sc, false
}

// dropDim removes dimension k from the grid and every offset, deduping
// nothing — the oracle tolerates duplicates, and a later step can drop
// collapsed offsets if the failure survives.
func dropDim(sc Scenario, k int) Scenario {
	cand := clone(sc)
	cand.Dims = append(cand.Dims[:k:k], cand.Dims[k+1:]...)
	cand.Periods = append(cand.Periods[:k:k], cand.Periods[k+1:]...)
	for i, off := range cand.Neighborhood {
		cand.Neighborhood[i] = append(off[:k:k], off[k+1:]...)
	}
	return clampCrashRanks(cand)
}

// clampCrashRanks keeps fault targets inside a shrunken world.
func clampCrashRanks(sc Scenario) Scenario {
	if sc.Faults == nil {
		return sc
	}
	p := sc.Procs()
	for i := range sc.Faults.Crashes {
		if sc.Faults.Crashes[i].Rank >= p {
			sc.Faults.Crashes[i].Rank = p - 1
		}
	}
	for _, specs := range [][]TransientSpec{sc.Faults.Drops, sc.Faults.Dups} {
		for i := range specs {
			if specs[i].From >= p {
				specs[i].From = p - 1
			}
			if specs[i].To >= p {
				specs[i].To = p - 1
			}
		}
	}
	// Collapsing ranks can create duplicate crashes; dedup for a tidier
	// artifact (identical (rank, op) crashes are redundant).
	sort.Slice(sc.Faults.Crashes, func(a, b int) bool {
		ca, cb := sc.Faults.Crashes[a], sc.Faults.Crashes[b]
		if ca.Rank != cb.Rank {
			return ca.Rank < cb.Rank
		}
		return ca.AtOp < cb.AtOp
	})
	kept := sc.Faults.Crashes[:0]
	for i, c := range sc.Faults.Crashes {
		if i == 0 || c != sc.Faults.Crashes[i-1] {
			kept = append(kept, c)
		}
	}
	sc.Faults.Crashes = kept
	return sc
}

// clone deep-copies a scenario so candidate edits never alias the parent.
func clone(sc Scenario) Scenario {
	out := sc
	out.Dims = append([]int(nil), sc.Dims...)
	out.Periods = append([]bool(nil), sc.Periods...)
	out.Neighborhood = make([][]int, len(sc.Neighborhood))
	for i, off := range sc.Neighborhood {
		out.Neighborhood[i] = append([]int(nil), off...)
	}
	if sc.Faults != nil {
		out.Faults = &FaultSpec{
			Crashes: append([]CrashSpec(nil), sc.Faults.Crashes...),
			Drops:   append([]TransientSpec(nil), sc.Faults.Drops...),
			Dups:    append([]TransientSpec(nil), sc.Faults.Dups...),
		}
	}
	return out
}
