package sim

import (
	"encoding/json"
	"fmt"
	"os"
)

// ReplayVersion is bumped when the artifact format changes incompatibly.
const ReplayVersion = 1

// Replay is the failing-case artifact cartsim writes when an oracle
// trips: the generating seed, any planted mutation, the (shrunk) scenario
// and the failure it reproduces. `cartsim -replay file.json` re-runs it.
type Replay struct {
	Version  int      `json:"version"`
	Seed     int64    `json:"seed"`
	Mutation string   `json:"mutation,omitempty"`
	Scenario Scenario `json:"scenario"`
	Check    string   `json:"check"`
	Detail   string   `json:"detail"`
}

// WriteReplay writes the artifact as indented JSON, atomically enough for
// CI artifact collection (write then rename).
func WriteReplay(path string, r Replay) error {
	r.Version = ReplayVersion
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadReplay loads and validates an artifact.
func ReadReplay(path string) (Replay, error) {
	var r Replay
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("sim: parsing replay %s: %w", path, err)
	}
	if r.Version != ReplayVersion {
		return r, fmt.Errorf("sim: replay %s has version %d, this binary speaks %d", path, r.Version, ReplayVersion)
	}
	if err := r.Scenario.Validate(); err != nil {
		return r, fmt.Errorf("sim: replay %s: %w", path, err)
	}
	return r, nil
}
