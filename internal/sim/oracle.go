package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"time"

	"cartcc/internal/cart"
	"cartcc/internal/metrics"
	"cartcc/internal/mpi"
	"cartcc/internal/netmodel"
	"cartcc/internal/trace"
)

// Options tunes one oracle run.
type Options struct {
	// Mutate names a schedule mutation to plant before checking: "" runs
	// the scenario as-is; "copy-skew" skews one move's destination slot in
	// the trivial reference schedule. The mutation-smoke CI job uses it to
	// prove the oracles can actually catch a planted schedule bug.
	Mutate string
}

// Failure is a reproducible oracle violation: which check tripped and a
// deterministic description (no timestamps, no durations — the same
// scenario produces the same Failure byte for byte). A nil *Failure means
// every oracle passed.
type Failure struct {
	Check  string `json:"check"`
	Detail string `json:"detail"`
}

func (f *Failure) String() string { return f.Check + ": " + f.Detail }

func fail(check, format string, args ...any) *Failure {
	return &Failure{Check: check, Detail: fmt.Sprintf(format, args...)}
}

// Mutations maps mutation names to schedule transforms. CopySkew is the
// planted off-by-one of the CI mutation smoke: the first move landing in
// the receive buffer is shifted to the next slot (mod t), a classic copy
// indexing bug that must show up as a payload differential.
func mutation(name string, t int) (func(*cart.Schedule), error) {
	switch name {
	case "":
		return nil, nil
	case "copy-skew":
		return func(s *cart.Schedule) {
			for pi := range s.Phases {
				for ri := range s.Phases[pi].Rounds {
					for mi := range s.Phases[pi].Rounds[ri].Moves {
						mv := &s.Phases[pi].Rounds[ri].Moves[mi]
						if mv.To == cart.BufRecv {
							mv.ToSlot = (mv.ToSlot + 1) % t
							return
						}
					}
				}
			}
		}, nil
	default:
		return nil, fmt.Errorf("sim: unknown mutation %q", name)
	}
}

// legOut is what one execution leg reports back: per-rank receive buffers
// (sentinel-initialized to -1, so untouched blocks are visible), per-rank
// plan accounting, the merged runtime metrics, and per-rank final virtual
// clocks when the leg ran under a cost model.
type legOut struct {
	recv   [][]int
	rerun  [][]int
	stats  []cart.ExecStats
	met    metrics.Snapshot
	vtimes []float64
}

// runLeg executes the scenario's collective once through one executor
// configuration and collects everything the oracles need. Fault-free legs
// execute the plan twice (re-execution must be idempotent and is part of
// the accounting contract); faulted legs run once.
func runLeg(sc *Scenario, algo cart.Algorithm, planOpts []cart.PlanOption,
	model *netmodel.Model, rec *trace.Recorder, faults *mpi.FaultPlan) (*legOut, error) {

	p := sc.Procs()
	nbh := sc.nbh()
	m := sc.BlockSize
	t := len(nbh)
	out := &legOut{
		recv:   make([][]int, p),
		rerun:  make([][]int, p),
		stats:  make([]cart.ExecStats, p),
		vtimes: make([]float64, p),
	}
	reg := metrics.NewRegistry(p)
	cfg := mpi.Config{
		Procs:    p,
		Timeout:  30 * time.Second,
		Seed:     sc.ModelSeed,
		Model:    model,
		Recorder: rec,
		Faults:   faults,
		Metrics:  reg,
	}
	bindPM := wirePostMortem(&cfg)
	err := mpi.Run(cfg, func(w *mpi.Comm) error {
		bindPM(w)
		cc, err := cart.NeighborhoodCreate(w, sc.Dims, sc.Periods, nbh, nil)
		if err != nil {
			return err
		}
		var plan *cart.Plan
		if sc.Op == "alltoall" {
			plan, err = cart.AlltoallInit(cc, m, algo, planOpts...)
		} else {
			plan, err = cart.AllgatherInit(cc, m, algo, planOpts...)
		}
		if err != nil {
			return err
		}
		sendLen := t * m
		if sc.Op == "allgather" {
			sendLen = m
		}
		send := make([]int, sendLen)
		for i := range send {
			send[i] = w.Rank()*1_000_000 + i
		}
		sentinel := func() []int {
			b := make([]int, t*m)
			for i := range b {
				b[i] = -1
			}
			return b
		}
		recv := sentinel()
		if err := cart.Run(plan, send, recv); err != nil {
			return err
		}
		out.recv[w.Rank()] = recv
		if faults == nil {
			again := sentinel()
			if err := cart.Run(plan, send, again); err != nil {
				return err
			}
			out.rerun[w.Rank()] = again
		}
		out.stats[w.Rank()] = plan.Stats()
		out.vtimes[w.Rank()] = w.VTime()
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.met = reg.Merged()
	return out, nil
}

// checkLegInternals runs the single-leg oracles: re-execution idempotence,
// predicted-vs-observed accounting, and runtime metric conservation.
func checkLegInternals(sc *Scenario, leg string, algo cart.Algorithm, out *legOut) *Failure {
	for r := range out.recv {
		if !reflect.DeepEqual(out.recv[r], out.rerun[r]) {
			return fail("rerun-payload", "%s: rank %d: first run %v, second run %v", leg, r, out.recv[r], out.rerun[r])
		}
	}
	for r, st := range out.stats {
		if err := st.Check(); err != nil {
			return fail("accounting", "%s: rank %d: %v", leg, r, err)
		}
		if st.Executions != 2 {
			return fail("accounting", "%s: rank %d: %d executions recorded, ran 2", leg, r, st.Executions)
		}
	}
	// On a torus every rank is interior, so the plan must carry exactly
	// the paper's C and V (Proposition 3.2) and the observation must tie
	// back to them. The copy-skew mutation moves data to the wrong slot
	// without changing any count, so these hold even when mutated — the
	// payload differential is what catches it.
	if sc.Torus() {
		op := cart.OpAlltoall
		if sc.Op == "allgather" {
			op = cart.OpAllgather
		}
		wantC, wantV := cart.Predicted(sc.nbh(), op, algo)
		for r, st := range out.stats {
			if !st.Interior() {
				return fail("predicted-accounting", "%s: rank %d not interior on a torus: planned %d rounds / %d blocks, predicted %d / %d",
					leg, r, st.PlannedRounds, st.PlannedBlocks, st.PredictedRounds, st.PredictedVolume)
			}
			if st.PredictedRounds != wantC || st.PredictedVolume != wantV {
				return fail("predicted-accounting", "%s: rank %d predicts C=%d V=%d, analysis says C=%d V=%d",
					leg, r, st.PredictedRounds, st.PredictedVolume, wantC, wantV)
			}
		}
	}
	if err := mpi.CheckMetricInvariants(out.met); err != nil {
		return fail("metric-invariants", "%s: %v", leg, err)
	}
	return nil
}

// CheckScenario runs every oracle over one scenario and returns the first
// violation, or nil when the scenario passes. The legs, in order:
//
//  1. trivial-blocking — the reference executor: sequential blocking
//     rounds, deterministic final buffers. Options.Mutate plants its
//     defect here, so a planted bug must surface in leg 2 or 3.
//  2. combining-barriered — the message-combining schedule under the
//     classic phase-barrier executor; payloads must equal leg 1.
//  3. combining-pipelined — the dependency-DAG pipelined executor;
//     payloads must equal leg 1.
//  4. auto-selected — the same collective with Algorithm Auto: the
//     self-tuning selector resolves to whichever family its cost model
//     picks, and the payloads must equal leg 1 regardless of the pick
//     (selection may only change performance, never results).
//     Re-execution must stay idempotent across the memoized decision.
//  5. async-futures — the same collective committed three deep through
//     the progress engine (cart.Start), with distinct per-future payload
//     offsets and each rank waiting on its futures in an independent
//     seed-shuffled order: every future's buffer must equal the trivial
//     reference shifted by its offset, whatever the completion order.
//     Concurrent in-flight executions must not bleed into each other —
//     a tag-isolation bug shows up here as a cross-future differential.
//  6. virtual time — leg 2 re-run under the scenario's cost model with a
//     trace recorder, twice: both runs must produce identical per-rank
//     clocks and event streams (determinism), the payloads must still
//     match, and the trace must be well-formed (every send slice has a
//     matching receive flow).
//  7. faults — when the scenario carries a fault plan, the reference leg
//     re-runs under it: the run must either fail with a typed rank
//     failure (or its cascade) or complete with correct payloads.
//     Watchdog deadlocks are a legitimate terminal outcome only for
//     plans that drop messages; dup-only plans must complete cleanly
//     (the mailbox dedup suppresses the duplicates); everything else is
//     a harness catch.
//  8. recovery — crash scenarios re-run under the self-healing wrapper
//     (cart.Recoverable), once per re-embedding policy: every run must
//     end verified-recovered (payloads equal a fresh run on the final
//     shrunken shape) or typed-terminal (see CheckRecovery).
//
// Each fault-free leg additionally self-checks: re-execution idempotence,
// predicted-vs-observed accounting (`Plan.Stats`), and runtime metric
// conservation (posted == completed, pool draws == gathered sends, ...).
func CheckScenario(sc Scenario, opt Options) *Failure {
	if err := sc.Validate(); err != nil {
		return fail("invalid-scenario", "%v", err)
	}
	mutate, err := mutation(opt.Mutate, len(sc.Neighborhood))
	if err != nil {
		return fail("invalid-scenario", "%v", err)
	}
	var trivOpts []cart.PlanOption
	if mutate != nil {
		trivOpts = append(trivOpts, cart.WithScheduleTransform(mutate))
	}

	ref, err := runLeg(&sc, cart.Trivial, trivOpts, nil, nil, nil)
	if err != nil {
		return fail("trivial-error", "%v", err)
	}
	if f := checkLegInternals(&sc, "trivial-blocking", cart.Trivial, ref); f != nil {
		return f
	}

	legs := []struct {
		name string
		opts []cart.PlanOption
	}{
		{"combining-barriered", []cart.PlanOption{cart.WithBarrieredPhases()}},
		{"combining-pipelined", nil},
	}
	for _, leg := range legs {
		out, err := runLeg(&sc, cart.Combining, leg.opts, nil, nil, nil)
		if err != nil {
			return fail("combining-error", "%s: %v", leg.name, err)
		}
		if f := checkLegInternals(&sc, leg.name, cart.Combining, out); f != nil {
			return f
		}
		if f := comparePayloads(leg.name, ref.recv, out.recv); f != nil {
			return f
		}
	}

	// Auto leg: the self-tuning selector must be payload-invisible —
	// whichever family it resolves to, the buffers equal the trivial
	// reference, and re-execution across the memoized decision stays
	// idempotent. The per-leg accounting oracle is skipped here by design:
	// stats accrue on the chosen variant, whose identity is the selector's
	// to decide.
	auto, err := runLeg(&sc, cart.Auto, nil, nil, nil, nil)
	if err != nil {
		return fail("auto-error", "%v", err)
	}
	for r := range auto.recv {
		if !reflect.DeepEqual(auto.recv[r], auto.rerun[r]) {
			return fail("rerun-payload", "auto-selected: rank %d: first run %v, second run %v", r, auto.recv[r], auto.rerun[r])
		}
	}
	if f := comparePayloads("auto-selected", ref.recv, auto.recv); f != nil {
		return f
	}
	if err := mpi.CheckMetricInvariants(auto.met); err != nil {
		return fail("metric-invariants", "auto-selected: %v", err)
	}

	// Async leg: concurrent futures through the progress engine must be
	// payload-exact and isolated from each other in any completion order.
	if f := runAsyncLeg(&sc, ref); f != nil {
		return f
	}

	// Virtual-time leg: determinism, payload agreement, trace flows.
	model, err := sc.model()
	if err != nil {
		return fail("invalid-scenario", "%v", err)
	}
	rec1 := trace.NewRecorder(sc.Procs())
	vt1, err := runLeg(&sc, cart.Combining, []cart.PlanOption{cart.WithBarrieredPhases()}, model, rec1, nil)
	if err != nil {
		return fail("vtime-error", "%v", err)
	}
	rec2 := trace.NewRecorder(sc.Procs())
	vt2, err := runLeg(&sc, cart.Combining, []cart.PlanOption{cart.WithBarrieredPhases()}, model, rec2, nil)
	if err != nil {
		return fail("vtime-error", "second run: %v", err)
	}
	for r := 0; r < sc.Procs(); r++ {
		if vt1.vtimes[r] != vt2.vtimes[r] {
			return fail("vtime-determinism", "rank %d finished at %g then %g under the same seed", r, vt1.vtimes[r], vt2.vtimes[r])
		}
		if !reflect.DeepEqual(rec1.RankEvents(r), rec2.RankEvents(r)) {
			return fail("vtime-determinism", "rank %d recorded different event streams across identical runs", r)
		}
	}
	if f := comparePayloads("virtual-time", ref.recv, vt1.recv); f != nil {
		return f
	}
	if err := trace.CheckFlows(rec1); err != nil {
		return fail("trace-flows", "%v", err)
	}

	// Fault leg: the run must fail in a typed, diagnosable way — or
	// survive with correct data. Hangs are caught by the watchdog and
	// classified as deadlocks; a deadlock is a legitimate terminal outcome
	// only when the plan drops messages (a lost message a collective
	// depends on has no other honest ending), and duplicate deliveries
	// must be invisible — the mailbox dedup suppresses them, so a
	// dup-only plan must complete with clean payloads.
	if sc.Faults.active() {
		out, err := runLeg(&sc, cart.Trivial, nil, nil, nil, sc.faultPlan())
		var dl *mpi.DeadlockError
		switch {
		case err == nil:
			if f := comparePayloads("fault-clean", ref.recv, out.recv); f != nil {
				return f
			}
		case errors.As(err, &dl) || strings.Contains(err.Error(), "deadlock suspected"):
			if len(sc.Faults.Drops) == 0 {
				return fail("deadlock", "%v", err)
			}
		case mpi.IsRankFailed(err) || errors.Is(err, mpi.ErrAborted):
			if len(sc.Faults.Crashes) == 0 {
				return fail("fault-unexpected-error", "rank failure without an injected crash: %v", err)
			}
		default:
			return fail("fault-unexpected-error", "%v", err)
		}
	}

	// Recovery leg: scenarios with injected crashes additionally run the
	// collective under the self-healing wrapper; every run must end
	// verified-recovered or typed-terminal, never silently wrong.
	if _, f := CheckRecovery(sc); f != nil {
		return f
	}
	return nil
}

// asyncLegK is how many futures the async leg keeps in flight per rank;
// asyncLegOff separates their payload spaces (the reference encoding is
// rank*1_000_000 + elem, far below one offset step), so a block delivered
// to the wrong future is a visible differential, not a silent overlap.
const (
	asyncLegK   = 3
	asyncLegOff = 100_000_000
)

// runAsyncLeg runs the scenario's collective asyncLegK-deep through the
// per-world progress engine: every rank commits K futures of one plan
// (each with its payload shifted by a distinct offset), then waits on
// them in a rank- and seed-dependent shuffled order, so completion and
// observation orders decouple. Each future's buffer must equal the
// trivial reference shifted by that future's offset — untouched sentinel
// blocks stay untouched — whatever order retirements landed in.
func runAsyncLeg(sc *Scenario, ref *legOut) *Failure {
	p := sc.Procs()
	nbh := sc.nbh()
	m := sc.BlockSize
	t := len(nbh)
	recvs := make([][][]int, p)
	reg := metrics.NewRegistry(p)
	err := mpi.Run(mpi.Config{Procs: p, Timeout: 30 * time.Second, Metrics: reg}, func(w *mpi.Comm) error {
		cc, err := cart.NeighborhoodCreate(w, sc.Dims, sc.Periods, nbh, nil)
		if err != nil {
			return err
		}
		var plan *cart.Plan
		if sc.Op == "alltoall" {
			plan, err = cart.AlltoallInit(cc, m, cart.Combining)
		} else {
			plan, err = cart.AllgatherInit(cc, m, cart.Combining)
		}
		if err != nil {
			return err
		}
		sendLen := t * m
		if sc.Op == "allgather" {
			sendLen = m
		}
		futs := make([]*cart.Future, asyncLegK)
		bufs := make([][]int, asyncLegK)
		for k := 0; k < asyncLegK; k++ {
			send := make([]int, sendLen)
			for i := range send {
				send[i] = w.Rank()*1_000_000 + i + (k+1)*asyncLegOff
			}
			recv := make([]int, t*m)
			for i := range recv {
				recv[i] = -1
			}
			if futs[k], err = cart.Start(plan, send, recv); err != nil {
				return err
			}
			bufs[k] = recv
		}
		rnd := rand.New(rand.NewSource(sc.ModelSeed*1_000_003 + int64(w.Rank())))
		for _, k := range rnd.Perm(asyncLegK) {
			if err := futs[k].Wait(); err != nil {
				return fmt.Errorf("future %d: %w", k, err)
			}
		}
		recvs[w.Rank()] = bufs
		return nil
	})
	if err != nil {
		return fail("async-error", "%v", err)
	}
	for r := 0; r < p; r++ {
		for k := 0; k < asyncLegK; k++ {
			got := recvs[r][k]
			for i, want := range ref.recv[r] {
				if want != -1 {
					want += (k + 1) * asyncLegOff
				}
				if got[i] != want {
					return fail("payload-differential",
						"async-futures: rank %d future %d element %d: reference implies %d, future has %d",
						r, k, i, want, got[i])
				}
			}
		}
	}
	if err := mpi.CheckMetricInvariants(reg.Merged()); err != nil {
		return fail("metric-invariants", "async-futures: %v", err)
	}
	return nil
}

// comparePayloads demands two legs agree on every rank's receive buffer,
// untouched sentinel blocks included.
func comparePayloads(leg string, want, got [][]int) *Failure {
	for r := range want {
		if !reflect.DeepEqual(want[r], got[r]) {
			for i := range want[r] {
				if i < len(got[r]) && want[r][i] != got[r][i] {
					return fail("payload-differential", "%s: rank %d element %d: trivial reference has %d, leg has %d",
						leg, r, i, want[r][i], got[r][i])
				}
			}
			return fail("payload-differential", "%s: rank %d: reference %v, leg %v", leg, r, want[r], got[r])
		}
	}
	return nil
}
