package sim

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"time"

	"cartcc/internal/cart"
	"cartcc/internal/mpi"
)

// RecoveryCategory classifies how one scenario ends under the self-healing
// wrapper. The contract the chaos sweep enforces: every run is either
// verified-recovered or typed-terminal — "failed to recover" (silent data
// corruption, untyped errors, ranks vanishing without cause) is a bug.
type RecoveryCategory string

const (
	// RecoveryFaultFree: the scenario injects nothing, the leg does not run.
	RecoveryFaultFree RecoveryCategory = "fault-free"
	// RecoveryRecovered: every surviving rank finished on a (possibly
	// shrunken) world and its payloads match a fresh fault-free run of the
	// same collective on that world's shape.
	RecoveryRecovered RecoveryCategory = "recovered"
	// RecoveryTerminal: the run ended with a typed, diagnosable error on
	// some rank — unrecoverable survivor sets, recovery budget exhausted,
	// the whole world dead, or a watchdog deadlock caused by a dropped
	// message. Terminal is an acceptable ending; silence is not.
	RecoveryTerminal RecoveryCategory = "terminal"
)

// recoveryLegs are the policy × executor combinations the recovery oracle
// drives; between them they cover both re-embeddings and both schedule
// families (the trivial reference and the combining pipelined executor).
var recoveryLegs = []struct {
	name   string
	policy cart.ReembedPolicy
	algo   cart.Algorithm
}{
	{"dense-trivial", cart.DenseRelabel, cart.Trivial},
	{"collapse-pipelined", cart.CollapseSlab, cart.Combining},
}

// recoveryOutcome is what one rank reports from a recoverable run.
type recoveryOutcome struct {
	done       bool // body returned (crashed ranks never set this)
	err        error
	spare      bool
	recoveries int
	dims       []int // final grid shape; nil for spares and errors
	rank       int   // rank within the final world
	recv       []int64
}

// CheckRecovery runs the scenario's collective under cart.Recoverable —
// once per re-embedding policy — and classifies the ending. A non-nil
// Failure means the self-healing contract broke: a rank finished with
// wrong data, an untyped error, or no explanation at all. When both legs
// run, the pessimistic category wins (any terminal leg makes the scenario
// terminal).
func CheckRecovery(sc Scenario) (RecoveryCategory, *Failure) {
	if err := sc.Validate(); err != nil {
		return RecoveryFaultFree, fail("invalid-scenario", "%v", err)
	}
	// Without a crash there is nothing to recover from; drop/dup-only
	// scenarios are covered by the plain fault leg.
	if sc.Faults == nil || len(sc.Faults.Crashes) == 0 {
		return RecoveryFaultFree, nil
	}
	cat := RecoveryRecovered
	for _, leg := range recoveryLegs {
		c, f := runRecoveryLeg(&sc, leg.name, leg.policy, leg.algo)
		if f != nil {
			return c, f
		}
		if c == RecoveryTerminal {
			cat = RecoveryTerminal
		}
	}
	return cat, nil
}

// runRecoveryLeg executes one policy × executor combination under the
// scenario's fault plan and verifies every completed rank's payloads
// against a fresh fault-free run on the same final shape (shapes differ
// across runs only in which crashes the consensus absorbed together, so
// the oracle is keyed by shape, not assumed globally).
func runRecoveryLeg(sc *Scenario, leg string, policy cart.ReembedPolicy, algo cart.Algorithm) (RecoveryCategory, *Failure) {
	p := sc.Procs()
	nbh := sc.nbh()
	m := sc.BlockSize
	op := cart.OpAlltoall
	if sc.Op == "allgather" {
		op = cart.OpAllgather
	}
	outs := make([]*recoveryOutcome, p)
	crashed := make(map[int]bool)
	for _, c := range sc.Faults.Crashes {
		crashed[c.Rank] = true
	}
	cfg := mpi.Config{
		Procs:   p,
		Timeout: 30 * time.Second,
		Seed:    sc.ModelSeed,
		Faults:  sc.faultPlan(),
	}
	bindPM := wirePostMortem(&cfg)
	runErr := mpi.Run(cfg, func(w *mpi.Comm) error {
		bindPM(w)
		ro := &recoveryOutcome{}
		outs[w.Rank()] = ro
		cc, err := cart.NeighborhoodCreate(w, sc.Dims, sc.Periods, nbh, nil)
		if err != nil {
			// ULFM discipline: a failed collective is not observed
			// uniformly, so revoke before bailing — peers still blocked
			// inside the create are poisoned out with a typed error
			// instead of deadlocking on a member that already left.
			w.Revoke()
			ro.err, ro.done = err, true
			return nil
		}
		out, recv, err := cart.RunRecoverable(cc, cart.RecoverConfig{Policy: policy}, op, m, algo)
		ro.err = err
		if out != nil {
			ro.spare = out.Spare
			ro.recoveries = out.Recoveries
			if err == nil && out.Comm != nil {
				ro.dims = append([]int(nil), out.Comm.Grid().Dims...)
				ro.rank = out.Comm.Rank()
				ro.recv = recv
			}
		}
		ro.done = true
		// Always nil: the injected crash stays the run's only primary
		// error, and classification works off the per-rank outcomes.
		return nil
	})

	// The run's primary error is the injected crash itself (recorded
	// without aborting the run); everything else classification needs is
	// in the per-rank outcomes. The one whole-run check: a watchdog
	// deadlock is only an honest ending when the plan drops messages —
	// crashes alone must always resolve through typed recovery.
	var dl *mpi.DeadlockError
	if errors.As(runErr, &dl) && len(sc.Faults.Drops) == 0 {
		return RecoveryTerminal, fail("recovery", "%s: deadlock without injected message drops: %v", leg, runErr)
	}
	cat := RecoveryRecovered
	oracles := map[string][][]int64{}
	for r, ro := range outs {
		switch {
		case ro == nil || !ro.done:
			if !crashed[r] {
				return cat, fail("recovery", "%s: rank %d vanished without a crash or an error", leg, r)
			}
		case ro.err != nil:
			if !terminalRecoveryErr(ro.err, sc) {
				return cat, fail("recovery", "%s: rank %d failed to recover: %v", leg, r, ro.err)
			}
			cat = RecoveryTerminal
		case ro.spare:
			// Survived, left the grid; nothing to verify.
		case ro.dims == nil:
			return cat, fail("recovery", "%s: rank %d returned no error, no world and no spare flag", leg, r)
		default:
			key := fmt.Sprint(ro.dims)
			want, ok := oracles[key]
			if !ok {
				fresh, f := freshRecovery(sc, leg, ro.dims, op, m, policy, algo)
				if f != nil {
					return cat, f
				}
				oracles[key], want = fresh, fresh
			}
			if !reflect.DeepEqual(ro.recv, want[ro.rank]) {
				return cat, fail("recovery", "%s: world rank %d (rank %d of recovered %v): recovered payloads %v, fresh run has %v",
					leg, r, ro.rank, ro.dims, ro.recv, want[ro.rank])
			}
		}
	}
	return cat, nil
}

// terminalRecoveryErr reports whether a rank's final error is an
// acceptable typed ending for this scenario: the ULFM failure classes,
// recovery giving up for a stated reason, or — only when the plan drops
// messages — a watchdog deadlock diagnosis.
func terminalRecoveryErr(err error, sc *Scenario) bool {
	var dl *mpi.DeadlockError
	if errors.As(err, &dl) ||
		strings.Contains(err.Error(), "deadlock suspected") ||
		strings.Contains(err.Error(), "deadlock detected") {
		return len(sc.Faults.Drops) > 0
	}
	return mpi.IsRankFailed(err) ||
		errors.Is(err, mpi.ErrAborted) ||
		errors.Is(err, mpi.ErrRevoked) ||
		errors.Is(err, mpi.ErrRecoveryFailed) ||
		errors.Is(err, cart.ErrUnrecoverable)
}

// freshRecovery computes the differential oracle for one recovered shape:
// the same collective, block size and executor on a fresh fault-free world
// of exactly that shape. Payload convention matches RunRecoverable
// (send[i] = rank*1_000_000 + i), so a recovered rank's buffers must be
// byte-identical to its counterpart's here.
func freshRecovery(sc *Scenario, leg string, dims []int, op cart.OpKind, m int, policy cart.ReembedPolicy, algo cart.Algorithm) ([][]int64, *Failure) {
	procs := 1
	for _, d := range dims {
		procs *= d
	}
	recvs := make([][]int64, procs)
	err := mpi.Run(mpi.Config{Procs: procs, Timeout: 30 * time.Second}, func(w *mpi.Comm) error {
		cc, err := cart.NeighborhoodCreate(w, dims, sc.Periods, sc.nbh(), nil)
		if err != nil {
			return err
		}
		_, recv, err := cart.RunRecoverable(cc, cart.RecoverConfig{Policy: policy}, op, m, algo)
		if err != nil {
			return err
		}
		recvs[w.Rank()] = recv
		return nil
	})
	if err != nil {
		return nil, fail("recovery", "%s: fresh-world oracle for shape %v failed: %v", leg, dims, err)
	}
	return recvs, nil
}
