package sim

import (
	"math/rand"

	"cartcc/internal/vec"
)

// Generate draws the scenario for one seed. The draw is a pure function
// of the seed — same seed, same scenario, bit for bit — which is what
// makes every soak failure replayable. The distribution deliberately
// covers the paper's whole input space plus the hostile corners: torus
// and mesh topologies, the symmetric stencil families and asymmetric
// one-offs, duplicate offsets, offsets that wrap a small torus more than
// once, every block size the cut-off analysis cares about, preset and
// randomly drawn cost models, and (about a quarter of the time) injected
// faults — rank crashes, transient message drops and duplicate
// deliveries, pure and mixed.
func Generate(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	d := rng.Intn(3) + 1
	dims := make([]int, d)
	procs := 1
	for i := range dims {
		dims[i] = rng.Intn(3) + 2 // extents 2..4
		procs *= dims[i]
	}
	for procs > 36 { // cap world size: halve the largest extent
		max := 0
		for i, e := range dims {
			if e > dims[max] {
				max = i
			}
		}
		procs = procs / dims[max] * 2
		dims[max] = 2
	}
	periods := make([]bool, d)
	if rng.Intn(4) != 0 { // 3/4 torus, else mesh with random periodicity mix
		for i := range periods {
			periods[i] = true
		}
	} else {
		for i := range periods {
			periods[i] = rng.Intn(2) == 0
		}
	}

	nbh := drawNeighborhood(rng, d)

	op := "alltoall"
	if rng.Intn(2) == 0 {
		op = "allgather"
	}

	sc := Scenario{
		Dims:         dims,
		Periods:      periods,
		Neighborhood: nbh,
		Op:           op,
		BlockSize:    rng.Intn(8) + 1,
		ModelSeed:    rng.Int63(),
	}
	switch rng.Intn(4) {
	case 0:
		sc.Preset = "hydra"
	case 1:
		sc.Preset = "titan"
	case 2:
		sc.Preset = "titan-noisy"
		// case 3: Preset stays "", drawing a random model from ModelSeed.
	}
	if rng.Intn(4) == 0 {
		f := &FaultSpec{}
		// kind 0: crashes only; 1: transient wire faults only; 2: both —
		// so recovery, dedup and the drop watchdog each get pure and mixed
		// exposure.
		kind := rng.Intn(3)
		if kind != 1 {
			for n := rng.Intn(2) + 1; n > 0; n-- {
				f.Crashes = append(f.Crashes, CrashSpec{
					Rank: rng.Intn(procs),
					AtOp: rng.Intn(20) + 1,
				})
			}
		}
		if kind != 0 {
			for n := rng.Intn(2) + 1; n > 0; n-- {
				t := TransientSpec{
					From: rng.Intn(procs),
					To:   rng.Intn(procs),
					Nth:  rng.Intn(12) + 1,
				}
				if rng.Intn(2) == 0 {
					f.Drops = append(f.Drops, t)
				} else {
					f.Dups = append(f.Dups, t)
				}
			}
		}
		sc.Faults = f
	}
	return sc
}

// drawNeighborhood picks a neighborhood family: the symmetric stencils of
// the paper, or an adversarial draw with asymmetry, duplicates and
// offsets larger than the grid extents (multi-wrap on a torus).
func drawNeighborhood(rng *rand.Rand, d int) [][]int {
	var n vec.Neighborhood
	switch rng.Intn(5) {
	case 0:
		n, _ = vec.Moore(d, 1)
	case 1:
		n, _ = vec.VonNeumann(d, 1)
	case 2:
		n, _ = vec.Star(d, rng.Intn(2)+1)
	default: // 2-in-5: fully random, the adversarial family
		t := rng.Intn(10) + 1
		n = make(vec.Neighborhood, 0, t)
		for i := 0; i < t; i++ {
			if len(n) > 0 && rng.Intn(5) == 0 {
				n = append(n, n[rng.Intn(len(n))].Clone()) // duplicate offset
				continue
			}
			v := make(vec.Vec, d)
			for j := range v {
				v[j] = rng.Intn(13) - 6 // reaches beyond extent 4: multi-wrap
			}
			n = append(n, v)
		}
	}
	out := make([][]int, len(n))
	for i, v := range n {
		out[i] = append([]int(nil), v...)
	}
	return out
}
