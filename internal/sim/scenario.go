// Package sim is the deterministic simulation harness: FoundationDB-style
// seeded scenario generation, differential oracles that run the same
// Cartesian collective through every executor the repository has, and a
// shrinker that minimizes a failing scenario to a replayable artifact.
//
// Everything downstream of a Seed is a pure function of it: the scenario
// drawn, the cost model, the fault plan and the virtual-time execution all
// replay bit-identically, so a failure found in a soak run is a one-line
// reproduction (`cartsim -replay file.json`), not a flake.
package sim

import (
	"fmt"
	"math/rand"
	"strings"

	"cartcc/internal/mpi"
	"cartcc/internal/netmodel"
	"cartcc/internal/vec"
)

// Scenario is one fully-specified simulation case: a grid, a
// neighborhood, one collective operation, a cost model and an optional
// fault plan. It is plain data (JSON-serializable) so a failing case can
// be written out, shrunk, and replayed.
type Scenario struct {
	Dims         []int      `json:"dims"`
	Periods      []bool     `json:"periods"`
	Neighborhood [][]int    `json:"neighborhood"`
	Op           string     `json:"op"` // "alltoall" or "allgather"
	BlockSize    int        `json:"block_size"`
	Preset       string     `json:"preset,omitempty"` // netmodel preset; "" draws from ModelSeed
	ModelSeed    int64      `json:"model_seed"`
	Faults       *FaultSpec `json:"faults,omitempty"`
}

// FaultSpec is the serializable subset of mpi.FaultPlan the generator
// draws from: deterministic rank crashes at operation counts, plus
// transient wire faults — message drops and duplicate deliveries — pinned
// to the Nth matching message so the injection replays bit-identically
// (no probabilistic triggers in the simulator; determinism is the point).
type FaultSpec struct {
	Crashes []CrashSpec     `json:"crashes,omitempty"`
	Drops   []TransientSpec `json:"drops,omitempty"`
	Dups    []TransientSpec `json:"dups,omitempty"`
}

// CrashSpec kills one rank before its AtOp-th point-to-point operation.
type CrashSpec struct {
	Rank int `json:"rank"`
	AtOp int `json:"at_op"`
}

// TransientSpec selects the Nth message a sender delivers to a receiver
// (1-based, counted at the sender) for a transient fault: lost on the wire
// for a drop, delivered twice for a duplicate.
type TransientSpec struct {
	From int `json:"from"`
	To   int `json:"to"`
	Nth  int `json:"nth"`
}

// active reports whether the spec injects anything at all.
func (f *FaultSpec) active() bool {
	return f != nil && (len(f.Crashes) > 0 || len(f.Drops) > 0 || len(f.Dups) > 0)
}

// Procs returns the scenario's world size.
func (sc *Scenario) Procs() int {
	p := 1
	for _, d := range sc.Dims {
		p *= d
	}
	return p
}

// Torus reports whether every dimension is periodic (the combining
// schedules' torus path; mesh scenarios route through the mesh compilers).
func (sc *Scenario) Torus() bool {
	for _, per := range sc.Periods {
		if !per {
			return false
		}
	}
	return true
}

// nbh converts the serialized offsets into a neighborhood.
func (sc *Scenario) nbh() vec.Neighborhood {
	n := make(vec.Neighborhood, len(sc.Neighborhood))
	for i, off := range sc.Neighborhood {
		n[i] = append(vec.Vec(nil), off...)
	}
	return n
}

// model resolves the scenario's cost model: a named preset, or a model
// drawn deterministically from ModelSeed.
func (sc *Scenario) model() (*netmodel.Model, error) {
	if sc.Preset != "" {
		return netmodel.Preset(sc.Preset)
	}
	return netmodel.Random(rand.New(rand.NewSource(sc.ModelSeed))), nil
}

// faultPlan converts the fault spec; nil when the scenario is fault-free.
func (sc *Scenario) faultPlan() *mpi.FaultPlan {
	if !sc.Faults.active() {
		return nil
	}
	fp := &mpi.FaultPlan{}
	for _, c := range sc.Faults.Crashes {
		fp.Crashes = append(fp.Crashes, mpi.Crash{Rank: c.Rank, AtOp: c.AtOp})
	}
	for _, d := range sc.Faults.Drops {
		fp.Drops = append(fp.Drops, mpi.MsgDrop{From: d.From, To: d.To, Nth: d.Nth})
	}
	for _, d := range sc.Faults.Dups {
		fp.Dups = append(fp.Dups, mpi.MsgDup{From: d.From, To: d.To, Nth: d.Nth})
	}
	return fp
}

// Validate checks the scenario is well-formed before any world is built,
// so a hand-edited replay file fails with a message instead of a panic.
func (sc *Scenario) Validate() error {
	if len(sc.Dims) == 0 {
		return fmt.Errorf("sim: scenario has no dimensions")
	}
	for _, d := range sc.Dims {
		if d < 1 {
			return fmt.Errorf("sim: dimension extent %d < 1", d)
		}
	}
	if len(sc.Periods) != len(sc.Dims) {
		return fmt.Errorf("sim: %d periods for %d dims", len(sc.Periods), len(sc.Dims))
	}
	if len(sc.Neighborhood) == 0 {
		return fmt.Errorf("sim: empty neighborhood")
	}
	for _, off := range sc.Neighborhood {
		if len(off) != len(sc.Dims) {
			return fmt.Errorf("sim: offset %v has %d coords for %d dims", off, len(off), len(sc.Dims))
		}
	}
	if sc.Op != "alltoall" && sc.Op != "allgather" {
		return fmt.Errorf("sim: unknown op %q", sc.Op)
	}
	if sc.BlockSize < 1 {
		return fmt.Errorf("sim: block size %d < 1", sc.BlockSize)
	}
	if _, err := sc.model(); err != nil {
		return err
	}
	p := sc.Procs()
	if sc.Faults != nil {
		for _, c := range sc.Faults.Crashes {
			if c.Rank < 0 || c.Rank >= p {
				return fmt.Errorf("sim: crash rank %d outside world of %d", c.Rank, p)
			}
			if c.AtOp < 1 {
				return fmt.Errorf("sim: crash at op %d < 1", c.AtOp)
			}
		}
		for _, kind := range []struct {
			name  string
			specs []TransientSpec
		}{{"drop", sc.Faults.Drops}, {"dup", sc.Faults.Dups}} {
			for _, t := range kind.specs {
				if t.From < 0 || t.From >= p || t.To < 0 || t.To >= p {
					return fmt.Errorf("sim: %s names rank outside world of %d", kind.name, p)
				}
				if t.Nth < 1 {
					return fmt.Errorf("sim: %s with Nth %d < 1 would not replay deterministically", kind.name, t.Nth)
				}
			}
		}
	}
	return nil
}

// Fingerprint renders the scenario as one deterministic line for logs:
// grid, topology, neighborhood size, operation, block size, model, faults.
func (sc *Scenario) Fingerprint() string {
	dims := make([]string, len(sc.Dims))
	for i, d := range sc.Dims {
		dims[i] = fmt.Sprint(d)
	}
	topo := "torus"
	if !sc.Torus() {
		topo = "mesh"
	}
	model := sc.Preset
	if model == "" {
		model = fmt.Sprintf("random(%d)", sc.ModelSeed)
	}
	s := fmt.Sprintf("%s[%s] t=%d %s m=%d %s", topo, strings.Join(dims, "x"),
		len(sc.Neighborhood), sc.Op, sc.BlockSize, model)
	if sc.Faults != nil && len(sc.Faults.Crashes) > 0 {
		s += fmt.Sprintf(" crashes=%d", len(sc.Faults.Crashes))
	}
	if sc.Faults != nil && len(sc.Faults.Drops) > 0 {
		s += fmt.Sprintf(" drops=%d", len(sc.Faults.Drops))
	}
	if sc.Faults != nil && len(sc.Faults.Dups) > 0 {
		s += fmt.Sprintf(" dups=%d", len(sc.Faults.Dups))
	}
	return s
}
