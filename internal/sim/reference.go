package sim

import "cartcc/internal/cart"

// ReferencePayloads executes the scenario's collective in-process, in
// wall-clock time, with the trivial executor, and returns every rank's
// receive buffer. This is the oracle the cross-process transport tests
// compare a real multi-process TCP world against byte for byte: send
// payloads follow the harness convention send[i] = rank*1_000_000 + i, so
// any misrouted, reordered or corrupted block is visible in the values
// themselves. Fault specs are ignored — a reference is fault-free by
// definition.
func ReferencePayloads(sc *Scenario) ([][]int, error) {
	clean := *sc
	clean.Faults = nil
	out, err := runLeg(&clean, cart.Trivial, nil, nil, nil, nil)
	if err != nil {
		return nil, err
	}
	return out.recv, nil
}
