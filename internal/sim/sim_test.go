package sim

import (
	"path/filepath"
	"reflect"
	"testing"
)

// TestGenerateDeterministic pins the harness's foundation: a seed maps to
// exactly one scenario, and every generated scenario is valid.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: %+v then %+v", seed, a, b)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid scenario: %v (%+v)", seed, err, a)
		}
		if a.Procs() > 36 {
			t.Fatalf("seed %d: %d procs exceeds the cap", seed, a.Procs())
		}
	}
}

// TestGenerateCoversFamilies checks the generator actually explores the
// corners the oracles exist for.
func TestGenerateCoversFamilies(t *testing.T) {
	var mesh, torus, faulted, randomModel, duplicates, multiwrap bool
	for seed := int64(0); seed < 300; seed++ {
		sc := Generate(seed)
		if sc.Torus() {
			torus = true
		} else {
			mesh = true
		}
		if sc.Faults != nil {
			faulted = true
		}
		if sc.Preset == "" {
			randomModel = true
		}
		seen := map[string]bool{}
		for _, off := range sc.Neighborhood {
			key := ""
			for _, v := range off {
				key += string(rune(v+100)) + ","
				if v >= 5 || v <= -5 {
					multiwrap = true
				}
			}
			if seen[key] {
				duplicates = true
			}
			seen[key] = true
		}
	}
	for name, ok := range map[string]bool{
		"mesh": mesh, "torus": torus, "faults": faulted,
		"random model": randomModel, "duplicate offsets": duplicates,
		"multi-wrap offsets": multiwrap,
	} {
		if !ok {
			t.Errorf("300 seeds never drew %s", name)
		}
	}
}

// TestCheckScenarioCleanSeeds runs the full oracle stack over a block of
// generated scenarios; the current implementation must pass all of them.
func TestCheckScenarioCleanSeeds(t *testing.T) {
	n := int64(12)
	if testing.Short() {
		n = 4
	}
	for seed := int64(1); seed <= n; seed++ {
		sc := Generate(seed)
		if f := CheckScenario(sc, Options{}); f != nil {
			t.Fatalf("seed %d (%s): %s", seed, sc.Fingerprint(), f)
		}
	}
}

// mutationScenario is a small communicating torus scenario on which the
// copy-skew mutation is guaranteed to move a delivered block.
func mutationScenario() Scenario {
	return Scenario{
		Dims:         []int{2, 3},
		Periods:      []bool{true, true},
		Neighborhood: [][]int{{0, 0}, {0, 1}, {1, 0}, {0, -1}},
		Op:           "alltoall",
		BlockSize:    2,
		Preset:       "hydra",
	}
}

// TestMutationCaughtAndShrunk is the in-tree version of CI's mutation
// smoke: a planted schedule off-by-one must be caught by the payload
// differential, and shrinking must keep the failure while simplifying the
// scenario to the floor.
func TestMutationCaughtAndShrunk(t *testing.T) {
	sc := mutationScenario()
	opt := Options{Mutate: "copy-skew"}
	f := CheckScenario(sc, opt)
	if f == nil {
		t.Fatal("planted copy-skew mutation not detected")
	}
	if f.Check != "payload-differential" {
		t.Fatalf("mutation caught by %q, want payload-differential (%s)", f.Check, f.Detail)
	}
	if CheckScenario(sc, Options{}) != nil {
		t.Fatal("scenario fails even without the mutation")
	}

	shrunk := Shrink(sc, opt, *f)
	g := CheckScenario(shrunk, opt)
	if g == nil || g.Check != f.Check {
		t.Fatalf("shrunk scenario lost the failure: %v", g)
	}
	if shrunk.Procs() > sc.Procs() || len(shrunk.Neighborhood) > len(sc.Neighborhood) || shrunk.BlockSize > sc.BlockSize {
		t.Fatalf("shrink grew the scenario: %+v", shrunk)
	}
	if shrunk.BlockSize != 1 {
		t.Errorf("block size %d survived shrinking, want 1", shrunk.BlockSize)
	}
	if len(shrunk.Neighborhood) > 2 {
		t.Errorf("%d offsets survived shrinking, want ≤ 2 (zero may drop)", len(shrunk.Neighborhood))
	}
	t.Logf("shrunk to %s", shrunk.Fingerprint())
}

// TestCheckScenarioDeterministicFailure pins that a failing scenario
// reports the identical Failure on every run — the property replay files
// and the shrinker's same-check predicate rely on.
func TestCheckScenarioDeterministicFailure(t *testing.T) {
	sc := mutationScenario()
	opt := Options{Mutate: "copy-skew"}
	a, b := CheckScenario(sc, opt), CheckScenario(sc, opt)
	if a == nil || b == nil || *a != *b {
		t.Fatalf("failure not deterministic: %v vs %v", a, b)
	}
}

// TestReplayRoundTrip writes and reloads a failing-case artifact.
func TestReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "replay.json")
	in := Replay{
		Seed:     42,
		Mutation: "copy-skew",
		Scenario: mutationScenario(),
		Check:    "payload-differential",
		Detail:   "rank 0 element 0",
	}
	if err := WriteReplay(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadReplay(path)
	if err != nil {
		t.Fatal(err)
	}
	in.Version = ReplayVersion
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: wrote %+v, read %+v", in, out)
	}
	if _, err := ReadReplay(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("reading a missing replay succeeded")
	}
}

// TestFaultScenarios runs generated scenarios that carry crash plans; the
// fault leg must classify the outcome (typed failure or clean survival),
// never deadlock.
func TestFaultScenarios(t *testing.T) {
	checked := 0
	for seed := int64(0); seed < 400 && checked < 4; seed++ {
		sc := Generate(seed)
		if sc.Faults == nil {
			continue
		}
		checked++
		if f := CheckScenario(sc, Options{}); f != nil {
			t.Fatalf("seed %d (%s): %s", seed, sc.Fingerprint(), f)
		}
	}
	if checked == 0 {
		t.Fatal("no faulted scenarios in 400 seeds")
	}
}
