package datatype

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func intsUpTo(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

func TestContiguous(t *testing.T) {
	l := Contiguous(3, 4)
	if l.Size() != 4 {
		t.Fatalf("Size = %d", l.Size())
	}
	buf := intsUpTo(10)
	wire := make([]int, 4)
	if n := Gather(wire, buf, l); n != 4 {
		t.Fatalf("Gather returned %d", n)
	}
	if !reflect.DeepEqual(wire, []int{3, 4, 5, 6}) {
		t.Fatalf("wire = %v", wire)
	}
}

func TestContiguousZeroAndNegativeCount(t *testing.T) {
	l := Contiguous(0, 0)
	if l.Size() != 0 || len(l.Blocks()) != 0 {
		t.Errorf("zero-count layout not empty: %+v", l)
	}
	l = Contiguous(5, -3)
	if l.Size() != 0 {
		t.Errorf("negative count produced elements")
	}
}

func TestVectorDescribesMatrixColumn(t *testing.T) {
	// 4x5 row-major matrix; column 2 is elements 2, 7, 12, 17.
	l := Vector(4, 1, 5, 2)
	buf := intsUpTo(20)
	wire := make([]int, l.Size())
	Gather(wire, buf, l)
	if !reflect.DeepEqual(wire, []int{2, 7, 12, 17}) {
		t.Fatalf("column gather = %v", wire)
	}
}

func TestVectorCoalescesContiguous(t *testing.T) {
	// stride == blocklen means the blocks are contiguous and must merge.
	l := Vector(3, 4, 4, 0)
	if got := len(l.Blocks()); got != 1 {
		t.Errorf("contiguous vector has %d blocks, want 1", got)
	}
	if l.Size() != 12 {
		t.Errorf("Size = %d", l.Size())
	}
}

func TestIndexed(t *testing.T) {
	l, err := Indexed([]int{0, 10, 5}, []int{2, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	buf := intsUpTo(16)
	wire := make([]int, l.Size())
	Gather(wire, buf, l)
	if !reflect.DeepEqual(wire, []int{0, 1, 10, 5, 6, 7}) {
		t.Fatalf("indexed gather = %v", wire)
	}
	if _, err := Indexed([]int{0}, []int{1, 2}); err == nil {
		t.Error("mismatched Indexed succeeded")
	}
}

func TestSubarrayHaloRegions(t *testing.T) {
	// 5x5 matrix with a 3x3 interior at (1,1): the paper's Listing 3 shapes.
	rowLen := 5
	upperRow := Subarray(rowLen, 1, 1, 1, 3) // row out
	leftCol := Subarray(rowLen, 1, 1, 3, 1)  // column out
	corner := Subarray(rowLen, 1, 1, 1, 1)   // corner out
	interior := Subarray(rowLen, 1, 1, 3, 3) // whole interior
	buf := intsUpTo(25)

	check := func(l Layout, want []int, name string) {
		t.Helper()
		wire := make([]int, l.Size())
		Gather(wire, buf, l)
		if !reflect.DeepEqual(wire, want) {
			t.Errorf("%s gather = %v, want %v", name, wire, want)
		}
	}
	check(upperRow, []int{6, 7, 8}, "upperRow")
	check(leftCol, []int{6, 11, 16}, "leftCol")
	check(corner, []int{6}, "corner")
	check(interior, []int{6, 7, 8, 11, 12, 13, 16, 17, 18}, "interior")
}

func TestBounds(t *testing.T) {
	var l Layout
	if lo, hi := l.Bounds(); lo != 0 || hi != 0 {
		t.Errorf("empty Bounds = %d,%d", lo, hi)
	}
	l.Append(7, 2)
	l.Append(1, 3)
	if lo, hi := l.Bounds(); lo != 1 || hi != 9 {
		t.Errorf("Bounds = %d,%d, want 1,9", lo, hi)
	}
}

func TestValidate(t *testing.T) {
	l := Contiguous(8, 4)
	if err := l.Validate(12); err != nil {
		t.Errorf("Validate(12): %v", err)
	}
	if err := l.Validate(11); err == nil {
		t.Error("Validate(11) succeeded for block [8,12)")
	}
	var neg Layout
	neg.blocks = append(neg.blocks, Block{Off: -1, Count: 1})
	if err := neg.Validate(10); err == nil {
		t.Error("negative offset validated")
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	l, _ := Indexed([]int{2, 9, 5}, []int{3, 1, 2})
	src := intsUpTo(12)
	wire := make([]int, l.Size())
	Gather(wire, src, l)
	dst := make([]int, 12)
	for i := range dst {
		dst[i] = -1
	}
	if n := Scatter(dst, wire, l); n != l.Size() {
		t.Fatalf("Scatter returned %d", n)
	}
	for _, b := range l.Blocks() {
		for i := b.Off; i < b.Off+b.Count; i++ {
			if dst[i] != src[i] {
				t.Fatalf("dst[%d] = %d, want %d", i, dst[i], src[i])
			}
		}
	}
	// Untouched positions remain -1.
	if dst[0] != -1 || dst[11] != -1 {
		t.Error("scatter touched unselected elements")
	}
}

func TestGatherScatterPropertyRandomLayouts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		buflen := rng.Intn(100) + 10
		var l Layout
		// Random non-overlapping blocks in increasing offset order.
		off := 0
		for off < buflen {
			gap := rng.Intn(4)
			cnt := rng.Intn(5)
			off += gap
			if off+cnt > buflen {
				break
			}
			l.Append(off, cnt)
			off += cnt
		}
		src := make([]float64, buflen)
		for i := range src {
			src[i] = rng.Float64()
		}
		wire := make([]float64, l.Size())
		if n := Gather(wire, src, l); n != l.Size() {
			t.Fatalf("gather count %d != %d", n, l.Size())
		}
		dst := make([]float64, buflen)
		Scatter(dst, wire, l)
		for _, b := range l.Blocks() {
			for i := b.Off; i < b.Off+b.Count; i++ {
				if dst[i] != src[i] {
					t.Fatalf("round trip mismatch at %d", i)
				}
			}
		}
	}
}

func TestLayoutAppendLayoutWithBase(t *testing.T) {
	inner := Vector(2, 1, 3, 0) // blocks at 0 and 3
	var outer Layout
	outer.AppendLayout(inner, 10)
	blocks := outer.Blocks()
	if len(blocks) != 2 || blocks[0].Off != 10 || blocks[1].Off != 13 {
		t.Fatalf("AppendLayout blocks = %v", blocks)
	}
}

func TestCompositeGatherScatter(t *testing.T) {
	bufA := intsUpTo(10)    // buffer 0
	bufB := make([]int, 10) // buffer 1
	for i := range bufB {
		bufB[i] = 100 + i
	}
	var c Composite
	c.AppendBlock(0, 2, 2) // 2,3
	c.AppendBlock(1, 5, 3) // 105,106,107
	c.AppendBlock(0, 8, 1) // 8
	if c.Size() != 6 {
		t.Fatalf("Size = %d", c.Size())
	}
	wire := make([]int, c.Size())
	GatherComposite(wire, [][]int{bufA, bufB}, &c)
	want := []int{2, 3, 105, 106, 107, 8}
	if !reflect.DeepEqual(wire, want) {
		t.Fatalf("composite gather = %v, want %v", wire, want)
	}

	dstA := make([]int, 10)
	dstB := make([]int, 10)
	ScatterComposite([][]int{dstA, dstB}, wire, &c)
	if dstA[2] != 2 || dstA[3] != 3 || dstA[8] != 8 {
		t.Errorf("dstA = %v", dstA)
	}
	if dstB[5] != 105 || dstB[7] != 107 {
		t.Errorf("dstB = %v", dstB)
	}
}

func TestCompositeMergesSameBufferParts(t *testing.T) {
	var c Composite
	c.AppendBlock(1, 0, 2)
	c.AppendBlock(1, 5, 2)
	c.AppendBlock(0, 0, 1)
	if got := len(c.Parts()); got != 2 {
		t.Errorf("parts = %d, want 2 (same-buffer merge)", got)
	}
	// Empty layout appends are dropped entirely.
	c.Append(0, Layout{})
	if got := len(c.Parts()); got != 2 {
		t.Errorf("empty append changed parts to %d", got)
	}
}

func TestCompositeValidate(t *testing.T) {
	var c Composite
	c.AppendBlock(0, 0, 4)
	c.AppendBlock(1, 8, 4)
	if err := c.Validate([]int{4, 12}); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := c.Validate([]int{4, 10}); err == nil {
		t.Error("Validate accepted overflowing part")
	}
	if err := c.Validate([]int{4}); err == nil {
		t.Error("Validate accepted missing buffer")
	}
}

func TestGatherPreservesOrderProperty(t *testing.T) {
	// Gathered wire data equals the naive element-by-element walk.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		buflen := rng.Intn(60) + 5
		var l Layout
		for i := 0; i < rng.Intn(8); i++ {
			off := rng.Intn(buflen)
			cnt := rng.Intn(buflen - off)
			l.Append(off, cnt)
		}
		buf := make([]int, buflen)
		for i := range buf {
			buf[i] = rng.Int()
		}
		wire := make([]int, l.Size())
		Gather(wire, buf, l)
		var naive []int
		for _, b := range l.Blocks() {
			naive = append(naive, buf[b.Off:b.Off+b.Count]...)
		}
		if len(naive) == 0 {
			return len(wire) == 0
		}
		return reflect.DeepEqual(wire, naive)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestCompositeDoesNotCorruptCallerLayouts(t *testing.T) {
	// Regression: merging same-buffer parts used to coalesce blocks in
	// place on storage shared with the caller's Layout values, silently
	// growing them (found by the facade integration test).
	a := Contiguous(0, 1)
	b := Contiguous(1, 1)
	var c Composite
	c.Append(0, a)
	c.Append(0, b) // merges and coalesces [0,1)+[1,2) -> [0,2)
	if got := len(c.Parts()); got != 1 {
		t.Fatalf("parts = %d", got)
	}
	if a.Size() != 1 || len(a.Blocks()) != 1 || a.Blocks()[0].Count != 1 {
		t.Fatalf("caller layout mutated: %+v", a.Blocks())
	}
	wire := make([]int, 1)
	if n := Gather(wire, []int{42, 43}, a); n != 1 || wire[0] != 42 {
		t.Fatalf("gather through original layout broken: %d %v", n, wire)
	}
}

func TestLayoutClone(t *testing.T) {
	l := Contiguous(2, 3)
	cp := l.Clone()
	cp.Append(5, 1) // coalesces into the clone only
	if len(l.Blocks()) != 1 || l.Blocks()[0].Count != 3 {
		t.Fatalf("clone mutation leaked: %+v", l.Blocks())
	}
	if cp.Size() != 4 {
		t.Fatalf("clone size %d", cp.Size())
	}
}
