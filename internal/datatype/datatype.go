// Package datatype implements a derived-datatype engine in the spirit of
// MPI datatypes, specialized to typed Go slices.
//
// A Layout describes a non-contiguous selection of elements of a buffer as
// an ordered list of (offset, count) blocks — the information MPI encodes in
// vector, indexed and struct datatypes. A Composite places several layouts
// into several distinct buffers; it is the representation of the per-round
// send and receive "datatypes" built by the message-combining schedule
// computations (the TypeApp calls of Algorithm 1 in the paper).
//
// Gather and Scatter move elements between a layout and a contiguous wire
// buffer in a single pass. Communication through these functions is
// zero-copy in the paper's sense: data blocks move directly between user
// buffers and the transport with no intermediate per-block packing by the
// application.
package datatype

import "fmt"

// Block is a run of Count consecutive elements starting at element offset
// Off within some buffer.
type Block struct {
	Off   int
	Count int
}

// Layout is an ordered list of blocks within a single buffer. The zero
// value is an empty layout describing no elements.
type Layout struct {
	blocks []Block
	size   int
}

// Contiguous returns a layout of count elements starting at off.
func Contiguous(off, count int) Layout {
	var l Layout
	l.Append(off, count)
	return l
}

// Vector returns a layout of count blocks of blocklen elements each, with
// the starts of consecutive blocks stride elements apart, the whole pattern
// starting at element offset off. It mirrors MPI_Type_vector and describes,
// e.g., a column of a row-major matrix (blocklen 1, stride = row length).
func Vector(count, blocklen, stride, off int) Layout {
	var l Layout
	for i := 0; i < count; i++ {
		l.Append(off+i*stride, blocklen)
	}
	return l
}

// Indexed returns a layout with blocks of the given lengths at the given
// element displacements, mirroring MPI_Type_indexed. The two slices must
// have equal length.
func Indexed(displs, lengths []int) (Layout, error) {
	if len(displs) != len(lengths) {
		return Layout{}, fmt.Errorf("datatype: %d displacements but %d lengths", len(displs), len(lengths))
	}
	var l Layout
	for i := range displs {
		l.Append(displs[i], lengths[i])
	}
	return l, nil
}

// Subarray returns a layout describing a rectangular sub-block of a
// row-major 2-D array: rows×cols elements at (row0, col0) of an array with
// rowLen elements per row. It mirrors MPI_Type_create_subarray for the 2-D
// case and describes halo regions of stencil grids.
func Subarray(rowLen, row0, col0, rows, cols int) Layout {
	return Vector(rows, cols, rowLen, row0*rowLen+col0)
}

// Append adds a block of count elements at offset off (the TypeApp
// operation of Algorithm 1). Appending a non-positive count is a no-op so
// that empty blocks of the irregular operations vanish from the wire.
// Adjacent appends that form one contiguous run are coalesced.
func (l *Layout) Append(off, count int) {
	if count <= 0 {
		return
	}
	if n := len(l.blocks); n > 0 {
		last := &l.blocks[n-1]
		if last.Off+last.Count == off {
			last.Count += count
			l.size += count
			return
		}
	}
	l.blocks = append(l.blocks, Block{Off: off, Count: count})
	l.size += count
}

// AppendLayout appends every block of m, shifted by base elements.
func (l *Layout) AppendLayout(m Layout, base int) {
	for _, b := range m.blocks {
		l.Append(base+b.Off, b.Count)
	}
}

// Size returns the total number of elements the layout describes.
func (l Layout) Size() int { return l.size }

// Contiguous reports whether the layout describes a single contiguous run
// of elements, returning its extent. Because Append coalesces adjacent
// blocks, any layout built from touching appends collapses to one block
// and is recognized here. The empty layout is contiguous with count 0.
// Callers use this to detect that Gather/Scatter would be a pure copy and
// take a zero-copy fast path instead.
func (l Layout) Contiguous() (off, count int, ok bool) {
	switch len(l.blocks) {
	case 0:
		return 0, 0, true
	case 1:
		return l.blocks[0].Off, l.blocks[0].Count, true
	}
	return 0, 0, false
}

// Clone returns a layout with its own block storage. Layout values share
// their block slice when copied by assignment; Clone is required before
// mutating a layout whose origin you do not own (Composite.Append uses it
// so that in-place coalescing can never corrupt a caller's layout).
func (l Layout) Clone() Layout {
	return Layout{blocks: append([]Block(nil), l.blocks...), size: l.size}
}

// Blocks returns the block list. The returned slice must not be modified.
func (l Layout) Blocks() []Block { return l.blocks }

// Bounds returns the smallest element offset touched and one past the
// largest (lo, hi). An empty layout returns (0, 0).
func (l Layout) Bounds() (lo, hi int) {
	if len(l.blocks) == 0 {
		return 0, 0
	}
	lo, hi = l.blocks[0].Off, l.blocks[0].Off+l.blocks[0].Count
	for _, b := range l.blocks[1:] {
		if b.Off < lo {
			lo = b.Off
		}
		if b.Off+b.Count > hi {
			hi = b.Off + b.Count
		}
	}
	return lo, hi
}

// Validate checks that every block lies within a buffer of buflen elements.
func (l Layout) Validate(buflen int) error {
	for _, b := range l.blocks {
		if b.Off < 0 || b.Off+b.Count > buflen {
			return fmt.Errorf("datatype: block [%d,%d) outside buffer of length %d", b.Off, b.Off+b.Count, buflen)
		}
	}
	return nil
}

// Gather copies the elements selected by l from buf into wire in block
// order and returns the number of elements copied. wire must have at least
// l.Size() elements.
func Gather[T any](wire []T, buf []T, l Layout) int {
	n := 0
	for _, b := range l.blocks {
		n += copy(wire[n:n+b.Count], buf[b.Off:b.Off+b.Count])
	}
	return n
}

// Scatter copies len(wire) elements from wire into the positions of buf
// selected by l, in block order, and returns the number copied. l.Size()
// must equal len(wire).
func Scatter[T any](buf []T, wire []T, l Layout) int {
	n := 0
	for _, b := range l.blocks {
		n += copy(buf[b.Off:b.Off+b.Count], wire[n:n+b.Count])
	}
	return n
}

// Copy moves the elements selected by sl in src directly into the
// positions selected by dl in dst, without staging through a wire buffer,
// and returns the number of elements moved. The layouts must describe the
// same number of elements. It is the fused Gather+Scatter used by the
// schedule executors' local copies; src and dst may be distinct slices or
// the same slice with non-overlapping selections (overlapping selections
// of one slice need the staged two-step instead).
func Copy[T any](dst []T, dl Layout, src []T, sl Layout) int {
	n := 0
	si, so := 0, 0 // source block index, offset consumed within it
	for _, db := range dl.blocks {
		need := db.Count
		at := db.Off
		for need > 0 && si < len(sl.blocks) {
			sb := sl.blocks[si]
			run := sb.Count - so
			if run > need {
				run = need
			}
			n += copy(dst[at:at+run], src[sb.Off+so:sb.Off+so+run])
			at += run
			need -= run
			so += run
			if so == sb.Count {
				si++
				so = 0
			}
		}
	}
	return n
}

// Placed is a layout bound to one of several buffers, identified by an
// integer buffer selector (the schedule executor uses 0 = send buffer,
// 1 = receive buffer, 2 = temporary buffer).
type Placed struct {
	Buf int
	L   Layout
}

// Composite is an ordered sequence of placed layouts across multiple
// buffers: the full description of everything a process sends (or receives)
// in one communication round of a schedule.
type Composite struct {
	parts []Placed
	size  int
}

// Append adds the elements described by l within buffer buf to the
// composite. The composite takes a private copy of the block list, so
// subsequent merging can never mutate storage shared with the caller.
func (c *Composite) Append(buf int, l Layout) {
	if l.Size() == 0 {
		return
	}
	if n := len(c.parts); n > 0 && c.parts[n-1].Buf == buf {
		// Merge consecutive parts addressing the same buffer. The stored
		// layout owns its storage (cloned below on first store), so the
		// in-place coalescing inside AppendLayout is safe.
		c.parts[n-1].L.AppendLayout(l, 0)
		c.size += l.Size()
		return
	}
	c.parts = append(c.parts, Placed{Buf: buf, L: l.Clone()})
	c.size += l.Size()
}

// AppendBlock adds a single (off, count) block in buffer buf.
func (c *Composite) AppendBlock(buf, off, count int) {
	c.Append(buf, Contiguous(off, count))
}

// Size returns the total number of elements described by the composite.
func (c *Composite) Size() int { return c.size }

// Contiguous reports whether the composite describes a single contiguous
// run within a single buffer, returning the buffer selector and extent.
// Composite.Append merges consecutive parts over one buffer, so a
// composite built from touching blocks of the same buffer is recognized.
// The empty composite is contiguous in buffer 0 with count 0.
func (c *Composite) Contiguous() (buf, off, count int, ok bool) {
	switch len(c.parts) {
	case 0:
		return 0, 0, 0, true
	case 1:
		if off, count, ok = c.parts[0].L.Contiguous(); ok {
			return c.parts[0].Buf, off, count, true
		}
	}
	return 0, 0, 0, false
}

// Parts returns the placed layouts. The returned slice must not be
// modified.
func (c *Composite) Parts() []Placed { return c.parts }

// Validate checks every part against the corresponding buffer length in
// buflens, indexed by the part's buffer selector.
func (c *Composite) Validate(buflens []int) error {
	for _, p := range c.parts {
		if p.Buf < 0 || p.Buf >= len(buflens) {
			return fmt.Errorf("datatype: composite references buffer %d of %d", p.Buf, len(buflens))
		}
		if err := p.L.Validate(buflens[p.Buf]); err != nil {
			return fmt.Errorf("datatype: buffer %d: %w", p.Buf, err)
		}
	}
	return nil
}

// GatherComposite copies every element selected by c, in order, from the
// buffers bufs (indexed by buffer selector) into wire and returns the
// number of elements copied.
func GatherComposite[T any](wire []T, bufs [][]T, c *Composite) int {
	n := 0
	for _, p := range c.parts {
		n += Gather(wire[n:], bufs[p.Buf], p.L)
	}
	return n
}

// ScatterComposite copies len(wire) elements from wire into the buffers
// bufs at the positions selected by c, in order, and returns the number
// copied.
func ScatterComposite[T any](bufs [][]T, wire []T, c *Composite) int {
	n := 0
	for _, p := range c.parts {
		n += Scatter(bufs[p.Buf], wire[n:n+p.L.Size()], p.L)
	}
	return n
}
