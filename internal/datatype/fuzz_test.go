package datatype

import "testing"

// FuzzGatherScatterRoundTrip builds a layout of non-overlapping blocks
// from fuzzed (gap, count) pairs and checks the gather/scatter round trip
// and size bookkeeping.
func FuzzGatherScatterRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 0, 3, 2, 1})
	f.Add([]byte{0, 0})
	f.Add([]byte{5, 5, 5, 5})
	f.Fuzz(func(t *testing.T, raw []byte) {
		var l Layout
		off := 0
		for i := 0; i+1 < len(raw) && off < 4096; i += 2 {
			gap := int(raw[i]) % 7
			cnt := int(raw[i+1]) % 9
			off += gap
			l.Append(off, cnt)
			off += cnt
		}
		buflen := off + 1
		src := make([]int32, buflen)
		for i := range src {
			src[i] = int32(i * 3)
		}
		wire := make([]int32, l.Size())
		if n := Gather(wire, src, l); n != l.Size() {
			t.Fatalf("gather %d != %d", n, l.Size())
		}
		dst := make([]int32, buflen)
		if n := Scatter(dst, wire, l); n != l.Size() {
			t.Fatalf("scatter %d != %d", n, l.Size())
		}
		total := 0
		for _, b := range l.Blocks() {
			total += b.Count
			for i := b.Off; i < b.Off+b.Count; i++ {
				if dst[i] != src[i] {
					t.Fatalf("round trip mismatch at %d", i)
				}
			}
		}
		if total != l.Size() {
			t.Fatalf("size %d != block sum %d", l.Size(), total)
		}
		if err := l.Validate(buflen); err != nil {
			t.Fatalf("validate: %v", err)
		}
	})
}

// FuzzCompositeIsolation checks that composite construction never mutates
// the source layouts (the aliasing regression found by the integration
// tests).
func FuzzCompositeIsolation(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 1, 3})
	f.Fuzz(func(t *testing.T, raw []byte) {
		var layouts []Layout
		var bufs []int
		for i := 0; i+1 < len(raw) && len(layouts) < 16; i += 2 {
			buf := int(raw[i]) % 2
			off := int(raw[i+1]) % 32
			layouts = append(layouts, Contiguous(off, 2))
			bufs = append(bufs, buf)
		}
		snapshot := make([][]Block, len(layouts))
		for i, l := range layouts {
			snapshot[i] = append([]Block(nil), l.Blocks()...)
		}
		var c Composite
		for i, l := range layouts {
			c.Append(bufs[i], l)
		}
		for i, l := range layouts {
			blocks := l.Blocks()
			if len(blocks) != len(snapshot[i]) {
				t.Fatalf("layout %d block count changed", i)
			}
			for j := range blocks {
				if blocks[j] != snapshot[i][j] {
					t.Fatalf("layout %d block %d mutated: %+v -> %+v", i, j, snapshot[i][j], blocks[j])
				}
			}
		}
		want := 0
		for _, l := range layouts {
			want += l.Size()
		}
		if c.Size() != want {
			t.Fatalf("composite size %d != %d", c.Size(), want)
		}
	})
}
