package datatype

import "testing"

// FuzzGatherScatterRoundTrip builds a layout of non-overlapping blocks
// from fuzzed (gap, count) pairs and checks the gather/scatter round trip
// and size bookkeeping.
func FuzzGatherScatterRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 0, 3, 2, 1})
	f.Add([]byte{0, 0})
	f.Add([]byte{5, 5, 5, 5})
	f.Fuzz(func(t *testing.T, raw []byte) {
		var l Layout
		off := 0
		for i := 0; i+1 < len(raw) && off < 4096; i += 2 {
			gap := int(raw[i]) % 7
			cnt := int(raw[i+1]) % 9
			off += gap
			l.Append(off, cnt)
			off += cnt
		}
		buflen := off + 1
		src := make([]int32, buflen)
		for i := range src {
			src[i] = int32(i * 3)
		}
		wire := make([]int32, l.Size())
		if n := Gather(wire, src, l); n != l.Size() {
			t.Fatalf("gather %d != %d", n, l.Size())
		}
		dst := make([]int32, buflen)
		if n := Scatter(dst, wire, l); n != l.Size() {
			t.Fatalf("scatter %d != %d", n, l.Size())
		}
		total := 0
		for _, b := range l.Blocks() {
			total += b.Count
			for i := b.Off; i < b.Off+b.Count; i++ {
				if dst[i] != src[i] {
					t.Fatalf("round trip mismatch at %d", i)
				}
			}
		}
		if total != l.Size() {
			t.Fatalf("size %d != block sum %d", l.Size(), total)
		}
		if err := l.Validate(buflen); err != nil {
			t.Fatalf("validate: %v", err)
		}
	})
}

// TestContiguousAnalysis pins the contiguity analysis cases the zero-copy
// send path keys on.
func TestContiguousAnalysis(t *testing.T) {
	if off, n, ok := (Layout{}).Contiguous(); !ok || off != 0 || n != 0 {
		t.Fatalf("empty layout: (%d,%d,%v); want (0,0,true)", off, n, ok)
	}
	if off, n, ok := Contiguous(3, 4).Contiguous(); !ok || off != 3 || n != 4 {
		t.Fatalf("single block: (%d,%d,%v); want (3,4,true)", off, n, ok)
	}
	var two Layout
	two.Append(0, 2)
	two.Append(5, 2)
	if _, _, ok := two.Contiguous(); ok {
		t.Fatal("two separated blocks reported contiguous")
	}
	if _, _, ok := Vector(3, 1, 2, 0).Contiguous(); ok {
		t.Fatal("strided vector reported contiguous")
	}
	if off, n, ok := Vector(3, 2, 2, 4).Contiguous(); !ok || off != 4 || n != 6 {
		// blocklen == stride coalesces into one run.
		t.Fatalf("dense vector: (%d,%d,%v); want (4,6,true)", off, n, ok)
	}

	var c Composite
	c.Append(1, Contiguous(8, 3))
	if buf, off, n, ok := c.Contiguous(); !ok || buf != 1 || off != 8 || n != 3 {
		t.Fatalf("single-part composite: (%d,%d,%d,%v); want (1,8,3,true)", buf, off, n, ok)
	}
	c.Append(0, Contiguous(0, 2))
	if _, _, _, ok := c.Contiguous(); ok {
		t.Fatal("two-buffer composite reported contiguous")
	}
}

// FuzzContiguousFastPath checks the contiguity analysis behind the
// zero-copy send path: whenever Contiguous reports a single extent, the
// subslice it names must be byte-identical to what the slow path (Gather)
// would have put on the wire, and scattering that subslice back must be a
// no-op round trip.
func FuzzContiguousFastPath(f *testing.F) {
	f.Add([]byte{0, 8})
	f.Add([]byte{3, 5})
	f.Add([]byte{1, 2, 0, 3})
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		var l Layout
		off := 0
		for i := 0; i+1 < len(raw) && off < 4096; i += 2 {
			off += int(raw[i]) % 7
			cnt := int(raw[i+1]) % 9
			l.Append(off, cnt)
			off += cnt
		}
		src := make([]int32, off+1)
		for i := range src {
			src[i] = int32(i*7 + 1)
		}
		wire := make([]int32, l.Size())
		Gather(wire, src, l)
		co, cn, ok := l.Contiguous()
		if !ok {
			return
		}
		if cn != l.Size() {
			t.Fatalf("Contiguous count %d != Size %d", cn, l.Size())
		}
		fast := src[co : co+cn]
		for i := range wire {
			if wire[i] != fast[i] {
				t.Fatalf("fast path diverges from gathered wire at %d: %d != %d", i, fast[i], wire[i])
			}
		}
		dst := make([]int32, len(src))
		Scatter(dst, fast, l)
		for i := co; i < co+cn; i++ {
			if dst[i] != src[i] {
				t.Fatalf("scatter of fast-path wire mismatch at %d", i)
			}
		}
	})
}

// FuzzCopyEquivalence checks the fused local copy (Copy) against the
// staged wire path (Gather then Scatter) it replaced in the schedule
// executor: identical destination contents for any matching layout pair.
func FuzzCopyEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 0, 3}, []byte{0, 2, 5, 1})
	f.Add([]byte{0, 4}, []byte{2, 4})
	f.Fuzz(func(t *testing.T, rawS, rawD []byte) {
		build := func(raw []byte) Layout {
			var l Layout
			off := 0
			for i := 0; i+1 < len(raw) && off < 2048; i += 2 {
				off += int(raw[i]) % 5
				cnt := int(raw[i+1]) % 7
				l.Append(off, cnt)
				off += cnt
			}
			return l
		}
		sl, dl := build(rawS), build(rawD)
		if sl.Size() != dl.Size() {
			// Copy requires matching signatures; trim the larger layout's
			// input instead of discarding the case.
			return
		}
		_, shi := sl.Bounds()
		_, dhi := dl.Bounds()
		src := make([]int32, shi+1)
		for i := range src {
			src[i] = int32(i*3 + 11)
		}
		base := make([]int32, dhi+1)
		for i := range base {
			base[i] = -int32(i)
		}
		fused := append([]int32(nil), base...)
		if n := Copy(fused, dl, src, sl); n != sl.Size() {
			t.Fatalf("Copy moved %d elements; want %d", n, sl.Size())
		}
		staged := append([]int32(nil), base...)
		wire := make([]int32, sl.Size())
		Gather(wire, src, sl)
		Scatter(staged, wire, dl)
		for i := range staged {
			if fused[i] != staged[i] {
				t.Fatalf("Copy diverges from Gather+Scatter at %d: %d != %d", i, fused[i], staged[i])
			}
		}
	})
}

// FuzzCompositeIsolation checks that composite construction never mutates
// the source layouts (the aliasing regression found by the integration
// tests).
func FuzzCompositeIsolation(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2, 1, 3})
	f.Fuzz(func(t *testing.T, raw []byte) {
		var layouts []Layout
		var bufs []int
		for i := 0; i+1 < len(raw) && len(layouts) < 16; i += 2 {
			buf := int(raw[i]) % 2
			off := int(raw[i+1]) % 32
			layouts = append(layouts, Contiguous(off, 2))
			bufs = append(bufs, buf)
		}
		snapshot := make([][]Block, len(layouts))
		for i, l := range layouts {
			snapshot[i] = append([]Block(nil), l.Blocks()...)
		}
		var c Composite
		for i, l := range layouts {
			c.Append(bufs[i], l)
		}
		for i, l := range layouts {
			blocks := l.Blocks()
			if len(blocks) != len(snapshot[i]) {
				t.Fatalf("layout %d block count changed", i)
			}
			for j := range blocks {
				if blocks[j] != snapshot[i][j] {
					t.Fatalf("layout %d block %d mutated: %+v -> %+v", i, j, snapshot[i][j], blocks[j])
				}
			}
		}
		want := 0
		for _, l := range layouts {
			want += l.Size()
		}
		if c.Size() != want {
			t.Fatalf("composite size %d != %d", c.Size(), want)
		}
	})
}
