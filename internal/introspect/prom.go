package introspect

import (
	"fmt"
	"io"
	"math"
	"strings"

	"cartcc/internal/metrics"
)

// Prometheus text exposition (format version 0.0.4) of a metrics
// snapshot. The registry's dotted names mangle to underscore names
// (mpi.sends.posted → mpi_sends_posted); log2 histograms render as
// cumulative _bucket series with `le` labels taken from the registry's
// own bucket boundaries (metrics.BucketUpper), so a scrape reconstructs
// exactly the distribution the runtime recorded. Output is deterministic
// — snapshots are name-sorted and buckets ordered — which is what the
// golden test pins down.

// promName mangles a registry metric name into a Prometheus-legal one:
// dots and dashes become underscores, any other illegal rune too, and a
// leading digit gets an underscore prefix.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		legal := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if legal {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLe renders a bucket upper bound as an `le` label value; the
// catch-all bucket (MaxInt64) renders as +Inf.
func promLe(bound int64) string {
	if bound == math.MaxInt64 {
		return "+Inf"
	}
	return fmt.Sprintf("%d", bound)
}

// WriteProm writes the snapshot in Prometheus text exposition format.
// Counters render with a _total suffix per convention; histograms emit
// cumulative _bucket{le=...} series up to the last occupied bucket, then
// the +Inf catch-all, _sum and _count.
func WriteProm(w io.Writer, s metrics.Snapshot) {
	for _, m := range s.Metrics {
		name := promName(m.Name)
		switch m.Kind {
		case metrics.KindCounter:
			fmt.Fprintf(w, "# TYPE %s_total counter\n", name)
			fmt.Fprintf(w, "%s_total %d\n", name, m.Value)
		case metrics.KindGauge:
			fmt.Fprintf(w, "# TYPE %s gauge\n", name)
			fmt.Fprintf(w, "%s %d\n", name, m.Value)
		case metrics.KindHistogram:
			fmt.Fprintf(w, "# TYPE %s histogram\n", name)
			// Last occupied bucket bounds the emitted series; everything
			// above it is zero and folds into +Inf.
			last := -1
			for i, c := range m.Buckets {
				if c > 0 {
					last = i
				}
			}
			var cum int64
			for i := 0; i <= last && i < len(m.Buckets)-1; i++ {
				cum += m.Buckets[i]
				fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, promLe(m.BucketBound(i)), cum)
			}
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, m.Count)
			fmt.Fprintf(w, "%s_sum %d\n", name, m.Value)
			fmt.Fprintf(w, "%s_count %d\n", name, m.Count)
		}
	}
}
