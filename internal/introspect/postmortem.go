package introspect

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cartcc/internal/mpi"
	"cartcc/internal/trace"
)

// Automatic post-mortems: when a run fails — a typed failure from a
// rank, or the watchdog's wait-for-graph diagnosis — the inspector
// persists a bundle capturing what the introspection endpoints would
// have served at that instant: the cross-layer state snapshot, every
// rank's flight-recorder tail, and (when the failure is a deadlock) the
// full wait-for proof. The bundle is plain indented JSON so it is
// greppable raw; carttrace -postmortem pretty-prints it.

// BundleVersion stamps the bundle schema.
const BundleVersion = 1

// Bundle is a persisted post-mortem.
type Bundle struct {
	Version   int       `json:"version"`
	WrittenAt time.Time `json:"written_at"`
	// Rank is the world rank whose failure triggered the dump (-1 when
	// the failure is not attributable to one rank, e.g. a watchdog
	// diagnosis).
	Rank  int    `json:"rank"`
	Error string `json:"error"`
	// Deadlock carries the wait-for-graph proof when the failure is the
	// watchdog's diagnosis.
	Deadlock *mpi.DeadlockError    `json:"deadlock,omitempty"`
	State    StateSnapshot         `json:"state"`
	Flight   [][]trace.FlightEvent `json:"flight,omitempty"`
}

// FailureHook is the mpi.Config.OnFailure adapter: wire it in before the
// run starts —
//
//	cfg.OnFailure = insp.FailureHook
//
// and bind the world from inside the run body. The runtime invokes the
// hook on the failing goroutine for primary failures only (never for
// abort cascades), outside its failure lock, before peers are released —
// so the state snapshot taken here still shows the world mid-failure.
// Only the first failure dumps; later primaries (concurrent crashes)
// are recorded in the first bundle's world snapshot anyway.
func (in *Inspector) FailureHook(rank int, err error) {
	if in.opts.DumpDir == "" {
		return
	}
	if !in.dumped.CompareAndSwap(false, true) {
		return
	}
	in.writeBundle(rank, err)
}

// Dump writes a post-mortem bundle now, regardless of failure state —
// the manual variant for "the run looks wrong, snapshot it".
func (in *Inspector) Dump(rank int, failure error) (string, error) {
	if in.opts.DumpDir == "" {
		return "", fmt.Errorf("introspect: no dump directory configured")
	}
	return in.writeBundle(rank, failure)
}

// LastDump returns the path of the most recent bundle written by this
// inspector, "" if none.
func (in *Inspector) LastDump() string {
	if p := in.lastDump.Load(); p != nil {
		return *p
	}
	return ""
}

func (in *Inspector) writeBundle(rank int, failure error) (string, error) {
	b := Bundle{
		Version:   BundleVersion,
		WrittenAt: time.Now(),
		Rank:      rank,
		State:     in.State(),
	}
	if failure != nil {
		b.Error = failure.Error()
		var de *mpi.DeadlockError
		if errors.As(failure, &de) {
			b.Deadlock = de
		}
	}
	if w := in.world.Load(); w != nil {
		b.Flight = w.FlightTail(0)
	}
	seq := in.dumpSeq.Add(1)
	name := fmt.Sprintf("postmortem-%s-%d.json", b.WrittenAt.UTC().Format("20060102T150405.000000000"), seq)
	path := filepath.Join(in.opts.DumpDir, name)
	if err := os.MkdirAll(in.opts.DumpDir, 0o755); err != nil {
		return "", fmt.Errorf("introspect: post-mortem dir: %w", err)
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return "", fmt.Errorf("introspect: post-mortem encode: %w", err)
	}
	// Write-then-rename so a reader never sees a torn bundle.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("introspect: post-mortem write: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", fmt.Errorf("introspect: post-mortem rename: %w", err)
	}
	in.lastDump.Store(&path)
	return path, nil
}

// ReadBundle loads a post-mortem bundle from disk.
func ReadBundle(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("introspect: read bundle: %w", err)
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("introspect: parse bundle %s: %w", path, err)
	}
	if b.Version != BundleVersion {
		return nil, fmt.Errorf("introspect: bundle %s has version %d, want %d", path, b.Version, BundleVersion)
	}
	return &b, nil
}

// Format renders the bundle as a human-readable report — what carttrace
// -postmortem prints.
func (b *Bundle) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "post-mortem v%d written %s\n", b.Version, b.WrittenAt.Format(time.RFC3339))
	if b.Rank >= 0 {
		fmt.Fprintf(&sb, "failing rank: %d\n", b.Rank)
	} else {
		fmt.Fprintf(&sb, "failing rank: (run-wide)\n")
	}
	fmt.Fprintf(&sb, "error: %s\n", b.Error)
	if b.Deadlock != nil {
		fmt.Fprintf(&sb, "\nwait-for proof (%s):\n", b.Deadlock.Kind)
		if len(b.Deadlock.Cycle) > 0 {
			fmt.Fprintf(&sb, "  cycle: %v\n", b.Deadlock.Cycle)
		}
		for _, br := range b.Deadlock.Blocked {
			fmt.Fprintf(&sb, "  rank %d blocked %.1fms in %s (waits on %d)\n",
				br.Rank, float64(br.BlockedFor)/float64(time.Millisecond), br.Op, br.WaitsOn)
		}
	}
	if w := b.State.World; w != nil {
		fmt.Fprintf(&sb, "\nworld: size=%d epoch=%d aborted=%v failed=%v wires_out=%d\n",
			w.Size, w.Epoch, w.Aborted, w.FailedRanks, w.WiresOut)
		for _, r := range w.Ranks {
			if r.Blocked == "" && !r.Failed {
				continue
			}
			fmt.Fprintf(&sb, "  rank %d: blocked=%q %.1fms failed=%v pending_recvs=%d unexpected=%d\n",
				r.Rank, r.Blocked, r.BlockedMs, r.Failed, r.PendingRecvs, r.Unexpected)
		}
	}
	for name, e := range b.State.Engines {
		fmt.Fprintf(&sb, "engine %s: inflight=%d next_seq=%d\n", name, e.Inflight, e.NextSeq)
	}
	total := 0
	for _, tail := range b.Flight {
		total += len(tail)
	}
	fmt.Fprintf(&sb, "\nflight: %d events across %d ranks (newest last per rank)\n", total, len(b.Flight))
	for rank, tail := range b.Flight {
		n := len(tail)
		show := tail
		if n > 8 {
			show = tail[n-8:]
		}
		for _, ev := range show {
			fmt.Fprintf(&sb, "  r%d +%.3fms %-13s peer=%d tag=%d bytes=%d arg=%d\n",
				rank, float64(ev.AtNs)/float64(time.Millisecond), ev.Kind, ev.Peer, ev.Tag, ev.Bytes, ev.Arg)
		}
	}
	return sb.String()
}
