// Package introspect is the runtime's live introspection plane: an
// opt-in HTTP debug server over a running (or hung, or crashed) world,
// plus the automatic post-mortem dumper that persists the same state to
// disk when a run fails.
//
// The package composes the read-only probes the runtime layers already
// export — mpi.World.DebugSnapshot, the flight recorder's bounded event
// tails, cart.Comm.EngineDebug, the plan-cache counters, and the metrics
// registry — into six endpoints:
//
//	/metrics            Prometheus text exposition of the merged registry
//	/metrics.json       the same snapshot as JSON
//	/healthz            200 while the world makes progress, 503 with the
//	                    wait-for-graph diagnosis once it provably stalls
//	/debug/state        coherent JSON world+engine+plan-cache snapshot
//	/debug/flight       per-rank flight-recorder tails
//	/debug/stragglers   per-peer completion-latency EWMAs and per-round
//	                    critical-path attribution against plan predictions
//
// Every handler is safe to hit while all ranks are mid-collective or
// deadlocked: the underlying probes read atomics or take the same
// short-lived locks the runtime itself uses.
package introspect

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cartcc/internal/cart"
	"cartcc/internal/metrics"
	"cartcc/internal/mpi"
	"cartcc/internal/trace"
)

// Options configures an Inspector.
type Options struct {
	// Metrics overrides the metrics registry to serve. When nil the
	// inspector uses the bound world's own registry (mpi.Config.Metrics).
	Metrics *metrics.Registry
	// DumpDir, when non-empty, enables automatic post-mortems: the first
	// primary failure of the bound world writes a bundle there (wire the
	// inspector in with mpi.Config.OnFailure = insp.FailureHook).
	DumpDir string
	// StallAfter is the /healthz stall threshold: a rank blocked at least
	// this long counts as stuck for the wait-for-graph proofs. Zero means
	// DefaultStallAfter. Keep it comfortably above scheduler jitter.
	StallAfter time.Duration
}

// DefaultStallAfter is the /healthz stall threshold when Options leaves
// it zero.
const DefaultStallAfter = 2 * time.Second

// engineSrc is one attached communicator whose progress engine shows up
// in /debug/state.
type engineSrc struct {
	name string
	comm *cart.Comm
}

// planSrc is one attached plan whose predicted rounds anchor the
// straggler report.
type planSrc struct {
	name string
	plan *cart.Plan
}

// Inspector is the introspection plane for one world: it owns the HTTP
// handlers and the post-mortem dumper. Create with New, point it at a
// world with Bind (or use Serve, which does both), and optionally attach
// Cartesian communicators and plans so the engine and schedule layers
// show up in /debug/state and /debug/stragglers.
//
// All methods are safe for concurrent use; Bind may race with handlers
// (a request before Bind reports "no world bound").
type Inspector struct {
	opts  Options
	world atomic.Pointer[mpi.World]

	mu      sync.Mutex
	engines []engineSrc
	plans   []planSrc

	// dumped makes the automatic post-mortem once-per-run: only the first
	// primary failure writes a bundle (cascade errors never reach the
	// hook, but concurrent primaries can).
	dumped  atomic.Bool
	dumpSeq atomic.Int64
	// lastDump is the most recent bundle path, for tests and logs.
	lastDump atomic.Pointer[string]
}

// New creates an Inspector. Bind a world before serving, or let Serve do
// it.
func New(opts Options) *Inspector {
	if opts.StallAfter <= 0 {
		opts.StallAfter = DefaultStallAfter
	}
	return &Inspector{opts: opts}
}

// Bind points the inspector at a world. Idempotent; callable from inside
// the run body (rank 0 typically binds and starts the server). Binding a
// second world replaces the first.
func (in *Inspector) Bind(w *mpi.World) { in.world.Store(w) }

// World returns the bound world, nil before Bind.
func (in *Inspector) World() *mpi.World { return in.world.Load() }

// AttachEngine registers a Cartesian communicator so its progress-engine
// snapshot appears under the given name in /debug/state. Typically one
// rank (the one serving) attaches its own communicator.
func (in *Inspector) AttachEngine(name string, c *cart.Comm) {
	if c == nil {
		return
	}
	in.mu.Lock()
	in.engines = append(in.engines, engineSrc{name: name, comm: c})
	in.mu.Unlock()
}

// AttachPlan registers a compiled plan so /debug/stragglers can compare
// observed rounds against the plan's predicted rounds (the paper's C).
func (in *Inspector) AttachPlan(name string, p *cart.Plan) {
	if p == nil {
		return
	}
	in.mu.Lock()
	in.plans = append(in.plans, planSrc{name: name, plan: p})
	in.mu.Unlock()
}

// registry resolves the metrics registry to serve: the explicit option,
// else the bound world's.
func (in *Inspector) registry() *metrics.Registry {
	if in.opts.Metrics != nil {
		return in.opts.Metrics
	}
	if w := in.world.Load(); w != nil {
		return w.Metrics()
	}
	return nil
}

// snapshot merges the registry's cross-rank snapshot with a handful of
// synthesized world-level gauges so /metrics is useful even on runs
// started without a registry.
func (in *Inspector) snapshot() metrics.Snapshot {
	var snaps []metrics.Snapshot
	if reg := in.registry(); reg != nil {
		snaps = append(snaps, reg.Merged())
	}
	if w := in.world.Load(); w != nil {
		var flightTotal int64
		if fl := w.Flight(); fl != nil {
			for r := 0; r < fl.Ranks(); r++ {
				flightTotal += int64(fl.Total(r))
			}
		}
		var aborted int64
		if w.Aborted() {
			aborted = 1
		}
		snaps = append(snaps, metrics.Snapshot{Metrics: []metrics.Metric{
			{Name: "world.size", Kind: metrics.KindGauge, Value: int64(w.Size())},
			{Name: "world.epoch", Kind: metrics.KindGauge, Value: w.CurrentEpoch()},
			{Name: "world.aborted", Kind: metrics.KindGauge, Value: aborted},
			{Name: "world.failed.ranks", Kind: metrics.KindGauge, Value: int64(len(w.FailedRanks()))},
			{Name: "world.wires.out", Kind: metrics.KindGauge, Value: w.DebugSnapshot().WiresOut},
			{Name: "world.flight.events", Kind: metrics.KindCounter, Value: flightTotal},
		}})
	}
	return metrics.Merge(snaps...)
}

// StateSnapshot is the /debug/state document: the world snapshot, every
// attached engine's snapshot, and the plan-cache counters, taken
// back-to-back (cross-layer skew is bounded by in-flight operations).
type StateSnapshot struct {
	TakenAt   time.Time                   `json:"taken_at"`
	World     *mpi.WorldDebug             `json:"world,omitempty"`
	Engines   map[string]cart.EngineDebug `json:"engines,omitempty"`
	PlanCache cart.PlanCacheStats         `json:"plan_cache"`
}

// State captures the current cross-layer state snapshot.
func (in *Inspector) State() StateSnapshot {
	s := StateSnapshot{TakenAt: time.Now(), PlanCache: cart.PlanCacheDebug()}
	if w := in.world.Load(); w != nil {
		wd := w.DebugSnapshot()
		s.World = &wd
	}
	in.mu.Lock()
	engines := append([]engineSrc(nil), in.engines...)
	in.mu.Unlock()
	if len(engines) > 0 {
		s.Engines = make(map[string]cart.EngineDebug, len(engines))
		for _, e := range engines {
			s.Engines[e.name] = e.comm.EngineDebug()
		}
	}
	return s
}

// Handler returns the endpoint mux. Use it directly with httptest or a
// custom server; ListenAndServe and Serve wrap it.
func (in *Inspector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", in.handleMetrics)
	mux.HandleFunc("/metrics.json", in.handleMetricsJSON)
	mux.HandleFunc("/healthz", in.handleHealthz)
	mux.HandleFunc("/debug/state", in.handleState)
	mux.HandleFunc("/debug/flight", in.handleFlight)
	mux.HandleFunc("/debug/stragglers", in.handleStragglers)
	return mux
}

func (in *Inspector) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteProm(w, in.snapshot())
}

func (in *Inspector) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, in.snapshot())
}

// healthzReply is the /healthz body. Status is "ok", "stalled", "failed"
// or "unbound".
type healthzReply struct {
	Status string `json:"status"`
	Epoch  int64  `json:"epoch,omitempty"`
	// FlightEvents is the total event count across rings — two probes a
	// few seconds apart seeing the same value on a non-idle workload is
	// itself a stall signal, independent of the wait-for-graph proofs.
	FlightEvents int64              `json:"flight_events"`
	FailedRanks  []int              `json:"failed_ranks,omitempty"`
	Deadlock     *mpi.DeadlockError `json:"deadlock,omitempty"`
}

func (in *Inspector) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	wd := in.world.Load()
	if wd == nil {
		writeJSON(w, http.StatusServiceUnavailable, healthzReply{Status: "unbound"})
		return
	}
	reply := healthzReply{Status: "ok", Epoch: wd.CurrentEpoch(), FailedRanks: wd.FailedRanks()}
	if fl := wd.Flight(); fl != nil {
		for r := 0; r < fl.Ranks(); r++ {
			reply.FlightEvents += int64(fl.Total(r))
		}
	}
	if wd.Aborted() {
		reply.Status = "failed"
		writeJSON(w, http.StatusServiceUnavailable, reply)
		return
	}
	if diag := wd.Diagnose(in.opts.StallAfter); diag != nil {
		reply.Status = "stalled"
		reply.Deadlock = diag
		writeJSON(w, http.StatusServiceUnavailable, reply)
		return
	}
	writeJSON(w, http.StatusOK, reply)
}

func (in *Inspector) handleState(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, in.State())
}

// flightReply is the /debug/flight body: per-world-rank event tails,
// oldest first.
type flightReply struct {
	Cap   int                   `json:"cap"`
	Ranks [][]trace.FlightEvent `json:"ranks"`
}

func (in *Inspector) handleFlight(w http.ResponseWriter, r *http.Request) {
	wd := in.world.Load()
	if wd == nil || wd.Flight() == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no flight recorder"})
		return
	}
	max := 0
	if s := r.URL.Query().Get("n"); s != "" {
		fmt.Sscanf(s, "%d", &max)
	}
	writeJSON(w, http.StatusOK, flightReply{Cap: wd.Flight().Cap(), Ranks: wd.FlightTail(max)})
}

func (in *Inspector) handleStragglers(w http.ResponseWriter, _ *http.Request) {
	wd := in.world.Load()
	if wd == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no world bound"})
		return
	}
	in.mu.Lock()
	plans := append([]planSrc(nil), in.plans...)
	in.mu.Unlock()
	writeJSON(w, http.StatusOK, stragglerReport(wd, plans))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Server is a live debug server: an Inspector plus the listener serving
// its handler.
type Server struct {
	*Inspector
	// Addr is the bound listen address (useful with ":0").
	Addr string

	ln  net.Listener
	srv *http.Server
}

// Serve binds the inspector plane to a world and serves it on addr
// (empty means an ephemeral localhost port). The server runs in a
// background goroutine until Close. This is the one-line opt-in:
//
//	srv, _ := introspect.Serve(comm.World(), "127.0.0.1:6060")
//	defer srv.Close()
func Serve(w *mpi.World, addr string) (*Server, error) {
	return ServeWith(w, addr, Options{})
}

// ServeWith is Serve with explicit options.
func ServeWith(w *mpi.World, addr string, opts Options) (*Server, error) {
	in := New(opts)
	in.Bind(w)
	return in.ListenAndServe(addr)
}

// ListenAndServe starts serving the inspector's handler on addr (empty
// means an ephemeral localhost port) in a background goroutine.
func (in *Inspector) ListenAndServe(addr string) (*Server, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("introspect: listen %s: %w", addr, err)
	}
	s := &Server{Inspector: in, Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: in.Handler()}}
	go s.srv.Serve(ln)
	return s, nil
}

// Close stops the server and its listener.
func (s *Server) Close() error { return s.srv.Close() }

// sortPeerStats orders a peer list worst-first (used by the straggler
// report; kept here so the report file stays pure computation).
func sortPeerStats(ps []PeerStat) {
	sort.Slice(ps, func(a, b int) bool { return ps[a].EwmaNs > ps[b].EwmaNs })
}
