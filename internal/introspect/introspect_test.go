package introspect

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cartcc/internal/cart"
	"cartcc/internal/metrics"
	"cartcc/internal/mpi"
	"cartcc/internal/vec"
)

// get hits one endpoint of the inspector's handler and returns status
// and body.
func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

// checkExposition is a minimal Prometheus text-format validator: every
// non-comment line is `name value` or `name{label="v"} value`, every
// series is preceded by a # TYPE comment, histogram bucket series are
// cumulative and end in +Inf.
func checkExposition(t *testing.T, body string) {
	t.Helper()
	typed := map[string]string{}
	seen := 0
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typed[f[2]] = f[3]
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		seen++
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		series, val := line[:sp], line[sp+1:]
		var dummy float64
		if _, err := fmt.Sscanf(val, "%g", &dummy); err != nil {
			t.Fatalf("non-numeric sample value in %q", line)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
			if !strings.HasSuffix(series, "\"}") {
				t.Fatalf("malformed label set in %q", line)
			}
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) && typed[strings.TrimSuffix(name, suf)] == "histogram" {
				base = strings.TrimSuffix(name, suf)
			}
		}
		if _, ok := typed[base]; !ok {
			t.Fatalf("series %q has no preceding # TYPE", name)
		}
		for _, r := range name {
			ok := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
			if !ok {
				t.Fatalf("illegal metric name rune %q in %q", r, name)
			}
		}
	}
	if seen == 0 {
		t.Fatal("exposition holds no samples")
	}
}

// runIntrospected runs a 2-d Moore torus workload with the introspection
// plane attached and calls probe from a foreign goroutine while the
// collectives are in flight.
func runIntrospected(t *testing.T, procs int, iters int, probe func(in *Inspector)) {
	t.Helper()
	nbh, err := vec.Moore(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry(procs)
	insp := New(Options{Metrics: reg})
	var probeWg sync.WaitGroup
	err = mpi.Run(mpi.Config{Procs: procs, Metrics: reg}, func(w *mpi.Comm) error {
		c, err := cart.NeighborhoodCreate(w, []int{4, 4}, nil, nbh, nil)
		if err != nil {
			return err
		}
		const m = 16
		plan, err := cart.AlltoallInit(c, m, cart.Combining)
		if err != nil {
			return err
		}
		if w.Rank() == 0 {
			insp.Bind(w.World())
			insp.AttachEngine("rank0", c)
			insp.AttachPlan("test-plan", plan)
			probeWg.Add(1)
			go func() { defer probeWg.Done(); probe(insp) }()
		}
		send := make([]int32, len(nbh)*m)
		recv := make([]int32, len(nbh)*m)
		for i := 0; i < iters; i++ {
			f, err := cart.Start(plan, send, recv)
			if err != nil {
				return err
			}
			if err := f.Wait(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("workload failed: %v", err)
	}
	probeWg.Wait()
}

func TestEndpointsServeLiveWorld(t *testing.T) {
	runIntrospected(t, 16, 50, func(in *Inspector) {
		h := in.Handler()

		code, body := get(t, h, "/metrics")
		if code != http.StatusOK {
			t.Errorf("/metrics = %d", code)
		}
		checkExposition(t, body)
		for _, want := range []string{"mpi_sends_posted_total", "world_size", "cart_async_future_ns_bucket{le=\"+Inf\"}"} {
			if !strings.Contains(body, want) {
				t.Errorf("/metrics missing %s", want)
			}
		}

		code, body = get(t, h, "/metrics.json")
		if code != http.StatusOK {
			t.Errorf("/metrics.json = %d", code)
		}
		var snap metrics.Snapshot
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Errorf("/metrics.json does not parse: %v", err)
		} else if _, ok := snap.Get("mpi.sends.posted"); !ok {
			t.Error("/metrics.json missing mpi.sends.posted")
		}

		code, body = get(t, h, "/healthz")
		if code != http.StatusOK {
			t.Errorf("/healthz = %d (%s)", code, body)
		}
		var hz struct {
			Status       string `json:"status"`
			FlightEvents int64  `json:"flight_events"`
		}
		if err := json.Unmarshal([]byte(body), &hz); err != nil || hz.Status != "ok" {
			t.Errorf("/healthz = %q err=%v, want ok", hz.Status, err)
		}

		code, body = get(t, h, "/debug/state")
		if code != http.StatusOK {
			t.Errorf("/debug/state = %d", code)
		}
		var st StateSnapshot
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatalf("/debug/state does not parse: %v", err)
		}
		if st.World == nil || st.World.Size != 16 {
			t.Errorf("/debug/state world = %+v, want size 16", st.World)
		}
		if _, ok := st.Engines["rank0"]; !ok {
			t.Error("/debug/state missing attached engine")
		}

		code, body = get(t, h, "/debug/flight?n=8")
		if code != http.StatusOK {
			t.Errorf("/debug/flight = %d", code)
		}
		var fl flightReply
		if err := json.Unmarshal([]byte(body), &fl); err != nil {
			t.Fatalf("/debug/flight does not parse: %v", err)
		}
		if len(fl.Ranks) != 16 {
			t.Errorf("/debug/flight ranks = %d, want 16", len(fl.Ranks))
		}
		for _, tail := range fl.Ranks {
			if len(tail) > 8 {
				t.Errorf("/debug/flight?n=8 returned %d events for one rank", len(tail))
			}
		}

		code, body = get(t, h, "/debug/stragglers")
		if code != http.StatusOK {
			t.Errorf("/debug/stragglers = %d", code)
		}
		var sr StragglerReport
		if err := json.Unmarshal([]byte(body), &sr); err != nil {
			t.Fatalf("/debug/stragglers does not parse: %v", err)
		}
		if len(sr.Plans) != 1 || sr.Plans[0].PredictedRounds <= 0 {
			t.Errorf("straggler plans = %+v, want the attached plan with predicted rounds", sr.Plans)
		}
	})
}

// TestStragglersMatchPlanRounds pins the round-attribution invariant: on
// a torus every rank runs the same combining schedule, so the distinct
// normalized round tags observed must equal the plan's predicted C.
func TestStragglersMatchPlanRounds(t *testing.T) {
	runIntrospected(t, 16, 80, func(in *Inspector) {
		// Probe at the end of the workload: keep polling until traffic has
		// accumulated, then compare.
		deadline := time.Now().Add(10 * time.Second)
		for {
			_, body := get(t, in.Handler(), "/debug/stragglers")
			var sr StragglerReport
			if err := json.Unmarshal([]byte(body), &sr); err != nil {
				t.Fatalf("stragglers parse: %v", err)
			}
			if len(sr.Plans) == 1 && sr.ObservedRounds == sr.Plans[0].PredictedRounds {
				if len(sr.Rounds) != sr.ObservedRounds {
					t.Fatalf("rounds list %d != observed %d", len(sr.Rounds), sr.ObservedRounds)
				}
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("observed %d rounds, want predicted %d (window events %d)",
					sr.ObservedRounds, sr.Plans[0].PredictedRounds, sr.WindowEvents)
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// TestEndpointStormUnderStartWaitStorm is the race-stress test: every
// rank storms Start/Wait while foreign goroutines hammer every endpoint.
// Run under -race (the repo's test tiers do) this pins the claim that
// snapshots take only runtime-coherent locks.
func TestEndpointStormUnderStartWaitStorm(t *testing.T) {
	paths := []string{"/metrics", "/metrics.json", "/healthz", "/debug/state", "/debug/flight?n=32", "/debug/stragglers"}
	var hits atomic.Int64
	runIntrospected(t, 16, 150, func(in *Inspector) {
		h := in.Handler()
		var wg sync.WaitGroup
		stop := make(chan struct{})
		time.AfterFunc(2*time.Second, func() { close(stop) })
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					req := httptest.NewRequest("GET", paths[(g+i)%len(paths)], nil)
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						t.Errorf("%s = %d during storm", paths[(g+i)%len(paths)], rec.Code)
						return
					}
					hits.Add(1)
				}
			}(g)
		}
		wg.Wait()
	})
	if hits.Load() == 0 {
		t.Fatal("storm made no requests")
	}
}

func TestUnboundInspector(t *testing.T) {
	in := New(Options{})
	h := in.Handler()
	if code, _ := get(t, h, "/healthz"); code != http.StatusServiceUnavailable {
		t.Errorf("/healthz unbound = %d, want 503", code)
	}
	if code, _ := get(t, h, "/debug/flight"); code != http.StatusNotFound {
		t.Errorf("/debug/flight unbound = %d, want 404", code)
	}
	if code, _ := get(t, h, "/metrics"); code != http.StatusOK {
		t.Errorf("/metrics unbound = %d, want 200 (empty exposition)", code)
	}
	// /debug/state still serves: plan-cache stats exist without a world.
	if code, _ := get(t, h, "/debug/state"); code != http.StatusOK {
		t.Errorf("/debug/state unbound = %d, want 200", code)
	}
}

func TestServeListensAndCloses(t *testing.T) {
	nbh, err := vec.Moore(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	err = mpi.Run(mpi.Config{Procs: 4}, func(w *mpi.Comm) error {
		c, err := cart.NeighborhoodCreate(w, []int{2, 2}, nil, nbh, nil)
		if err != nil {
			return err
		}
		_ = c
		if w.Rank() != 0 {
			return nil
		}
		srv, err := Serve(w.World(), "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer srv.Close()
		resp, err := http.Get("http://" + srv.Addr + "/healthz")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("healthz over TCP = %d", resp.StatusCode)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
