package introspect

import (
	"sort"

	"cartcc/internal/cart"
	"cartcc/internal/mpi"
	"cartcc/internal/trace"
)

// Straggler analysis over the flight recorder's retained window: every
// FlightRecvDone event carries the post→completion latency of one
// receive (Arg) and the source peer (Peer), so the tails reconstruct who
// each rank spends its time waiting for, and — after folding engine-plane
// wire tags back to schedule round tags — which round of the compiled
// schedule carries the critical path. The window is bounded (the ring
// keeps the newest events only), which is the right bias for "who is
// slow *now*".

// ewmaAlpha weights the newest observation in the per-peer latency EWMA.
const ewmaAlpha = 0.25

// maxRoundStats bounds the per-round section of the report to the worst
// offenders.
const maxRoundStats = 32

// PeerStat is one source peer's receive-completion latency profile as
// seen by one observing rank.
type PeerStat struct {
	Peer   int     `json:"peer"`
	Count  int     `json:"count"`
	EwmaNs float64 `json:"ewma_ns"`
	MaxNs  int64   `json:"max_ns"`
}

// RankStragglers is one rank's view: its peers ordered worst-first by
// latency EWMA — the top entry is who this rank waits for.
type RankStragglers struct {
	Rank  int        `json:"rank"`
	Peers []PeerStat `json:"peers"`
}

// RoundStat attributes latency to one schedule round (identified by its
// normalized round tag): the critical path is the slowest receive
// completion observed for that round in the window.
type RoundStat struct {
	Tag   int64 `json:"tag"`
	Count int   `json:"count"`
	// CritNs is the slowest post→completion latency; CritRank observed
	// it, waiting on CritPeer.
	CritNs   int64 `json:"crit_ns"`
	CritRank int   `json:"crit_rank"`
	CritPeer int   `json:"crit_peer"`
}

// PlanRounds is one attached plan's predicted-vs-planned round counts,
// the baseline the observed rounds are judged against (the paper's C:
// the schedule compiler's promised round count).
type PlanRounds struct {
	Name            string `json:"name"`
	Op              string `json:"op"`
	Algo            string `json:"algo"`
	PredictedRounds int    `json:"predicted_rounds"`
	PlannedRounds   int    `json:"planned_rounds"`
	Executions      int64  `json:"executions"`
}

// StragglerReport is the /debug/stragglers document.
type StragglerReport struct {
	// Ranks holds each rank's worst-first peer latency profile; ranks
	// with no completed receives in the window are omitted.
	Ranks []RankStragglers `json:"ranks"`
	// Rounds holds the slowest schedule rounds in the window, worst
	// first, capped at maxRoundStats.
	Rounds []RoundStat `json:"rounds,omitempty"`
	// ObservedRounds is the number of distinct schedule round tags in the
	// window; Plans carries the attached plans' predicted counts to
	// compare against.
	ObservedRounds int          `json:"observed_rounds"`
	Plans          []PlanRounds `json:"plans,omitempty"`
	// WindowEvents counts the receive completions the report is built
	// from — a small number means the rings have mostly rotated past the
	// interesting interval.
	WindowEvents int `json:"window_events"`
}

// stragglerReport builds the report from the world's flight tails and
// the attached plans.
func stragglerReport(w *mpi.World, plans []planSrc) StragglerReport {
	rep := StragglerReport{}
	for _, p := range plans {
		st := p.plan.Stats()
		rep.Plans = append(rep.Plans, PlanRounds{
			Name:            p.name,
			Op:              st.Op.String(),
			Algo:            st.Algo.String(),
			PredictedRounds: st.PredictedRounds,
			PlannedRounds:   st.PlannedRounds,
			Executions:      st.Executions,
		})
	}
	tails := w.FlightTail(0)
	rounds := make(map[int64]*RoundStat)
	for rank, tail := range tails {
		peers := make(map[int]*PeerStat)
		for _, ev := range tail {
			if ev.Kind != trace.FlightRecvDone {
				continue
			}
			rep.WindowEvents++
			lat := ev.Arg
			ps := peers[int(ev.Peer)]
			if ps == nil {
				ps = &PeerStat{Peer: int(ev.Peer), EwmaNs: float64(lat)}
				peers[int(ev.Peer)] = ps
			} else {
				ps.EwmaNs = ewmaAlpha*float64(lat) + (1-ewmaAlpha)*ps.EwmaNs
			}
			ps.Count++
			if lat > ps.MaxNs {
				ps.MaxNs = lat
			}
			if !cart.IsRoundTag(ev.Tag) {
				continue
			}
			tag := cart.NormalizeRoundTag(ev.Tag)
			rs := rounds[tag]
			if rs == nil {
				rs = &RoundStat{Tag: tag, CritRank: rank, CritPeer: int(ev.Peer), CritNs: lat}
				rounds[tag] = rs
			}
			rs.Count++
			if lat > rs.CritNs {
				rs.CritNs, rs.CritRank, rs.CritPeer = lat, rank, int(ev.Peer)
			}
		}
		if len(peers) == 0 {
			continue
		}
		rs := RankStragglers{Rank: rank, Peers: make([]PeerStat, 0, len(peers))}
		for _, ps := range peers {
			rs.Peers = append(rs.Peers, *ps)
		}
		sortPeerStats(rs.Peers)
		rep.Ranks = append(rep.Ranks, rs)
	}
	rep.ObservedRounds = len(rounds)
	rep.Rounds = make([]RoundStat, 0, len(rounds))
	for _, rs := range rounds {
		rep.Rounds = append(rep.Rounds, *rs)
	}
	sort.Slice(rep.Rounds, func(a, b int) bool {
		if rep.Rounds[a].CritNs != rep.Rounds[b].CritNs {
			return rep.Rounds[a].CritNs > rep.Rounds[b].CritNs
		}
		return rep.Rounds[a].Tag < rep.Rounds[b].Tag
	})
	if len(rep.Rounds) > maxRoundStats {
		rep.Rounds = rep.Rounds[:maxRoundStats]
	}
	return rep
}
