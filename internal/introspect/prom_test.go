package introspect

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cartcc/internal/metrics"
)

// goldenSnapshot builds a deterministic snapshot exercising every metric
// kind: a counter, a gauge, a histogram with observations spread over
// several log2 buckets (including the catch-all), and a name needing
// mangling.
func goldenSnapshot() metrics.Snapshot {
	s := metrics.NewSet()
	s.Counter("mpi.sends.posted").Add(42)
	s.Gauge("mpi.unexpected.hwm").Set(7)
	h := s.Histogram("cart.round.ns")
	for _, v := range []int64{1, 3, 3, 100, 1000, 1 << 20} {
		h.Observe(v)
	}
	s.Counter("weird-name.1total").Inc()
	return s.Snapshot()
}

func TestWritePromGolden(t *testing.T) {
	var buf bytes.Buffer
	WriteProm(&buf, goldenSnapshot())
	golden := filepath.Join("testdata", "prom.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with -run TestWritePromGolden -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestUpdatePromGolden regenerates the golden file when run with
// UPDATE_GOLDEN=1 — kept as a test so the update path compiles and stays
// next to the comparison.
func TestUpdatePromGolden(t *testing.T) {
	if os.Getenv("UPDATE_GOLDEN") == "" {
		t.Skip("set UPDATE_GOLDEN=1 to regenerate testdata/prom.golden")
	}
	var buf bytes.Buffer
	WriteProm(&buf, goldenSnapshot())
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join("testdata", "prom.golden"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestPromBucketsRoundTrip(t *testing.T) {
	// The cumulative _bucket series must reconstruct the snapshot's own
	// buckets: successive differences equal per-bucket counts, +Inf equals
	// the total count.
	snap := goldenSnapshot()
	m, ok := snap.Get("cart.round.ns")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	var buf bytes.Buffer
	WriteProm(&buf, snap)
	var prev int64
	total := int64(0)
	reconstructed := map[string]int64{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "cart_round_ns_bucket{le=\"") {
			continue
		}
		rest := strings.TrimPrefix(line, "cart_round_ns_bucket{le=\"")
		i := strings.Index(rest, "\"} ")
		le, valStr := rest[:i], rest[i+3:]
		var cum int64
		fmt.Sscanf(valStr, "%d", &cum)
		if cum < prev {
			t.Fatalf("bucket series not cumulative at le=%s: %d < %d", le, cum, prev)
		}
		reconstructed[le] = cum - prev
		prev = cum
		total = cum
	}
	if total != m.Count {
		t.Fatalf("+Inf cumulative = %d, want count %d", total, m.Count)
	}
	// Each emitted le bound's per-bucket count matches the snapshot.
	for i, c := range m.Buckets {
		if c == 0 {
			continue
		}
		le := promLe(m.BucketBound(i))
		if reconstructed[le] != c {
			t.Fatalf("bucket le=%s reconstructed %d, want %d", le, reconstructed[le], c)
		}
	}
}

func TestPromNameMangling(t *testing.T) {
	cases := map[string]string{
		"mpi.sends.posted": "mpi_sends_posted",
		"weird-name.1st":   "weird_name_1st",
		"1leading":         "_1leading",
		"ok_name:sub":      "ok_name:sub",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
