package introspect

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cartcc/internal/mpi"
	"cartcc/internal/trace"
)

// TestHungWorldWritesPostMortem is the end-to-end post-mortem path: a
// deliberately deadlocked world (a two-rank wait-for cycle), the
// wait-for-graph watchdog diagnosing it, the failure hook persisting a
// bundle, and the bundle parsing back with the proof intact — exactly
// what an operator gets from a production hang.
func TestHungWorldWritesPostMortem(t *testing.T) {
	dir := t.TempDir()
	insp := New(Options{DumpDir: dir})
	err := mpi.Run(mpi.Config{
		Procs:        2,
		DeadlockPoll: 10 * time.Millisecond,
		OnFailure:    insp.FailureHook,
	}, func(w *mpi.Comm) error {
		insp.Bind(w.World())
		// Each rank does one send the peer receives (so the flight tail is
		// non-empty), then blocks on a receive nobody will ever post.
		if err := mpi.SendSlice(w, []int64{1}, 1-w.Rank(), 7); err != nil {
			return err
		}
		buf := make([]int64, 1)
		if _, err := mpi.RecvSlice(w, buf, 1-w.Rank(), 7); err != nil {
			return err
		}
		_, err := mpi.RecvSlice(w, buf, 1-w.Rank(), 99)
		return err
	})
	if err == nil {
		t.Fatal("deadlocked run reported success")
	}
	var de *mpi.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("run error is %v, want a DeadlockError", err)
	}

	path := insp.LastDump()
	if path == "" {
		t.Fatal("failure hook wrote no bundle")
	}
	if filepath.Dir(path) != dir {
		t.Fatalf("bundle %s outside dump dir %s", path, dir)
	}
	b, err := ReadBundle(path)
	if err != nil {
		t.Fatalf("bundle does not parse: %v", err)
	}
	if b.Version != BundleVersion {
		t.Fatalf("bundle version %d", b.Version)
	}
	if b.Deadlock == nil {
		t.Fatal("bundle carries no wait-for proof")
	}
	if len(b.Deadlock.Blocked) == 0 {
		t.Fatal("wait-for proof lists no blocked ranks")
	}
	if b.Error == "" || !strings.Contains(b.Error, "deadlock") {
		t.Fatalf("bundle error %q does not describe the deadlock", b.Error)
	}
	if b.State.World == nil || b.State.World.Size != 2 {
		t.Fatalf("bundle state world = %+v", b.State.World)
	}
	events := 0
	sawRecvDone := false
	for _, tail := range b.Flight {
		events += len(tail)
		for _, ev := range tail {
			if ev.Kind == trace.FlightRecvDone {
				sawRecvDone = true
			}
		}
	}
	if events == 0 {
		t.Fatal("bundle carries no flight events")
	}
	if !sawRecvDone {
		t.Fatal("flight tail missing the completed receives from before the hang")
	}
	out := b.Format()
	for _, want := range []string{"wait-for proof", "blocked", "flight:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted bundle missing %q:\n%s", want, out)
		}
	}

	// Only one bundle per run: the hook is once-only even though both
	// ranks' failures cascade.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("dump dir holds %d files, want exactly 1", len(entries))
	}
}

// TestRankFailureWritesPostMortem covers the typed-failure trigger: a
// rank returning an error (not a watchdog diagnosis) also dumps.
func TestRankFailureWritesPostMortem(t *testing.T) {
	dir := t.TempDir()
	insp := New(Options{DumpDir: dir})
	boom := errors.New("boom: simulated application failure")
	err := mpi.Run(mpi.Config{Procs: 2, OnFailure: insp.FailureHook}, func(w *mpi.Comm) error {
		insp.Bind(w.World())
		if err := mpi.Barrier(w); err != nil {
			return err
		}
		if w.Rank() == 1 {
			return boom
		}
		buf := make([]int64, 1)
		_, err := mpi.RecvSlice(w, buf, 1, 5) // released by the abort
		return err
	})
	if err == nil {
		t.Fatal("failed run reported success")
	}
	b, err := ReadBundle(insp.LastDump())
	if err != nil {
		t.Fatalf("bundle: %v", err)
	}
	if b.Rank != 1 {
		t.Fatalf("bundle rank = %d, want 1", b.Rank)
	}
	if !strings.Contains(b.Error, "boom") {
		t.Fatalf("bundle error %q", b.Error)
	}
	if b.Deadlock != nil {
		t.Fatal("non-deadlock failure must not carry a wait-for proof")
	}
}

func TestManualDumpAndNoDir(t *testing.T) {
	in := New(Options{})
	if _, err := in.Dump(0, nil); err == nil {
		t.Fatal("Dump without a dump dir must fail")
	}
	in.FailureHook(0, errors.New("x")) // no dir: silently skipped
	if in.LastDump() != "" {
		t.Fatal("hook without a dump dir must not record a bundle")
	}

	dir := t.TempDir()
	in2 := New(Options{DumpDir: dir})
	path, err := in2.Dump(-1, errors.New("manual snapshot"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rank != -1 || !strings.Contains(b.Error, "manual") {
		t.Fatalf("manual bundle = rank %d error %q", b.Rank, b.Error)
	}
	if !strings.Contains(b.Format(), "run-wide") {
		t.Fatal("unattributed rank must format as run-wide")
	}
}
