package cart

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"cartcc/internal/mpi"
	"cartcc/internal/vec"
)

// startAlltoallFuture fills a fresh send buffer for iteration it and
// commits one future of the plan.
func startAlltoallFuture(w *mpi.Comm, p *Plan, t, m, it int) (*Future, []int, error) {
	send := make([]int, t*m)
	for i := 0; i < t; i++ {
		for e := 0; e < m; e++ {
			send[i*m+e] = encode(w.Rank(), i, e) + it
		}
	}
	recv := make([]int, t*m)
	f, err := Start(p, send, recv)
	return f, recv, err
}

// Several futures of one plan in flight at once on every rank: each owns a
// private tag block, so completions interleave without cross-matching,
// and waits in reverse commit order must not deadlock (completion happens
// on the engine, not in Wait). Also pins the scratch-pool bound: the pool
// never outgrows the peak in-flight depth, so steady-state batches reuse
// scratch instead of allocating.
func TestFuturesManyInFlightInterleave(t *testing.T) {
	const K, m, iters = 4, 2, 3
	nbh := mustStencil(t, 2, 3, -1)
	runWorld(t, 9, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
		if err != nil {
			return err
		}
		plan, err := AlltoallInit(c, m, Combining)
		if err != nil {
			return err
		}
		tn := len(nbh)
		for it := 0; it < iters; it++ {
			futs := make([]*Future, K)
			recvs := make([][]int, K)
			for k := 0; k < K; k++ {
				futs[k], recvs[k], err = startAlltoallFuture(w, plan, tn, m, it*K+k)
				if err != nil {
					return err
				}
			}
			for k := K - 1; k >= 0; k-- {
				if err := futs[k].Wait(); err != nil {
					return fmt.Errorf("rank %d future %d: %w", w.Rank(), k, err)
				}
				if done, werr := futs[k].Test(); !done || werr != nil {
					return fmt.Errorf("rank %d future %d: Test after Wait = (%v, %v)", w.Rank(), k, done, werr)
				}
			}
			base := refAlltoall(c.Grid(), nbh, w.Rank(), m)
			for k := 0; k < K; k++ {
				want := make([]int, len(base))
				for i := range base {
					want[i] = base[i] + it*K + k
				}
				if !reflect.DeepEqual(recvs[k], want) {
					return fmt.Errorf("rank %d iter %d future %d: %v != %v", w.Rank(), it, k, recvs[k], want)
				}
			}
		}
		plan.asyncMu.Lock()
		pool := len(plan.asyncFree)
		plan.asyncMu.Unlock()
		if pool > K {
			return fmt.Errorf("rank %d: scratch pool grew to %d for %d in-flight futures", w.Rank(), pool, K)
		}
		return nil
	})
}

// Regression for the commit/driver publication race: register() must
// publish the pending entry before it bumps the committedTo watermark
// (mirrored by admit()'s fast path loading ctA before pendingN) — the old
// order let a driver mid-batch pair a fresh watermark with a
// not-yet-visible registration and drop that execution's completion
// tokens as stale, hanging the future until the fallback watchdog failed
// the run. A sliding-window Start storm keeps the resident continuously
// driving while the committer registers, maximizing the window; a dropped
// token surfaces as a Wait error (suspected deadlock) here.
func TestStartStormCommitRace(t *testing.T) {
	const K, m = 5, 1
	iters := 60
	if testing.Short() {
		iters = 15
	}
	nbh := mustStencil(t, 2, 3, -1)
	runWorld(t, 9, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
		if err != nil {
			return err
		}
		plan, err := AlltoallInit(c, m, Combining)
		if err != nil {
			return err
		}
		tn := len(nbh)
		base := refAlltoall(c.Grid(), nbh, w.Rank(), m)
		type inflight struct {
			f    *Future
			recv []int
			it   int
		}
		window := make([]inflight, 0, K)
		retire := func(fl inflight) error {
			if err := fl.f.Wait(); err != nil {
				return fmt.Errorf("rank %d future it=%d: %w", w.Rank(), fl.it, err)
			}
			for i := range base {
				if fl.recv[i] != base[i]+fl.it {
					return fmt.Errorf("rank %d future it=%d: recv[%d] = %d, want %d", w.Rank(), fl.it, i, fl.recv[i], base[i]+fl.it)
				}
			}
			return nil
		}
		for it := 0; it < iters; it++ {
			f, recv, err := startAlltoallFuture(w, plan, tn, m, it)
			if err != nil {
				return err
			}
			window = append(window, inflight{f, recv, it})
			if len(window) == K {
				// Retire only the oldest: the rest stay in flight, so the
				// next Start always races an actively driving engine.
				if err := retire(window[0]); err != nil {
					return err
				}
				window = append(window[:0], window[1:]...)
			}
		}
		for _, fl := range window {
			if err := retire(fl); err != nil {
				return err
			}
		}
		return nil
	})
}

// Futures of two different plans (alltoall and allgather) interleave on
// one communicator; waits complete in a shuffled order.
func TestFuturesInterleaveTwoPlans(t *testing.T) {
	const m = 3
	nbh := mustStencil(t, 2, 3, -1)
	runWorld(t, 9, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
		if err != nil {
			return err
		}
		a2a, err := AlltoallInit(c, m, Combining)
		if err != nil {
			return err
		}
		ag, err := AllgatherInit(c, m, Combining)
		if err != nil {
			return err
		}
		tn := len(nbh)
		fa, recvA, err := startAlltoallFuture(w, a2a, tn, m, 0)
		if err != nil {
			return err
		}
		sendG := make([]int, m)
		for e := 0; e < m; e++ {
			sendG[e] = encode(w.Rank(), 0, e)
		}
		recvG := make([]int, tn*m)
		fg, err := Start(ag, sendG, recvG)
		if err != nil {
			return err
		}
		fa2, recvA2, err := startAlltoallFuture(w, a2a, tn, m, 7)
		if err != nil {
			return err
		}
		order := []*Future{fg, fa2, fa}
		rnd := rand.New(rand.NewSource(int64(w.Rank())))
		rnd.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, f := range order {
			if err := f.Wait(); err != nil {
				return err
			}
		}
		wantA := refAlltoall(c.Grid(), nbh, w.Rank(), m)
		if !reflect.DeepEqual(recvA, wantA) {
			return fmt.Errorf("rank %d alltoall#0: %v != %v", w.Rank(), recvA, wantA)
		}
		wantA2 := make([]int, len(wantA))
		for i := range wantA {
			wantA2[i] = wantA[i] + 7
		}
		if !reflect.DeepEqual(recvA2, wantA2) {
			return fmt.Errorf("rank %d alltoall#1: %v != %v", w.Rank(), recvA2, wantA2)
		}
		wantG := refAllgather(c.Grid(), nbh, w.Rank(), m)
		if !reflect.DeepEqual(recvG, wantG) {
			return fmt.Errorf("rank %d allgather: %v != %v", w.Rank(), recvG, wantG)
		}
		return nil
	})
}

// The Icart facade: plan from the communicator cache, commit, wait.
func TestIcartCollectives(t *testing.T) {
	const m = 2
	nbh := mustStencil(t, 1, 4, -1)
	runWorld(t, 4, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{4}, nil, nbh, nil)
		if err != nil {
			return err
		}
		tn := len(nbh)
		for it := 0; it < 3; it++ {
			send := make([]int, tn*m)
			for i := 0; i < tn; i++ {
				for e := 0; e < m; e++ {
					send[i*m+e] = encode(w.Rank(), i, e)
				}
			}
			recv := make([]int, tn*m)
			f, err := IcartAlltoall(c, send, recv)
			if err != nil {
				return err
			}
			sendG := make([]int, m)
			for e := 0; e < m; e++ {
				sendG[e] = encode(w.Rank(), 0, e)
			}
			recvG := make([]int, tn*m)
			fg, err := IcartAllgather(c, sendG, recvG)
			if err != nil {
				return err
			}
			if err := f.Wait(); err != nil {
				return err
			}
			if err := fg.Wait(); err != nil {
				return err
			}
			if want := refAlltoall(c.Grid(), nbh, w.Rank(), m); !reflect.DeepEqual(recv, want) {
				return fmt.Errorf("rank %d alltoall: %v != %v", w.Rank(), recv, want)
			}
			if want := refAllgather(c.Grid(), nbh, w.Rank(), m); !reflect.DeepEqual(recvG, want) {
				return fmt.Errorf("rank %d allgather: %v != %v", w.Rank(), recvG, want)
			}
		}
		return nil
	})
}

// Cancelling a future whose peers never entered the collective completes
// it with the typed cancellation error (matching both ErrFutureCancelled
// and mpi.ErrCancelled) instead of deadlocking, and leaves no posted
// receive behind in the mailbox.
func TestFutureCancelTyped(t *testing.T) {
	const syncDone = 9
	nbh := mustStencil(t, 1, 4, -1)
	runWorld(t, 4, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{4}, nil, nbh, nil)
		if err != nil {
			return err
		}
		if w.Rank() != 0 {
			_, err := mpi.RecvSlice(w, make([]int, 1), 0, syncDone)
			return err
		}
		plan, err := AlltoallInit(c, 2, Trivial)
		if err != nil {
			return err
		}
		tn := len(nbh)
		send := make([]int, tn*2)
		recv := make([]int, tn*2)
		f, err := Start(plan, send, recv)
		if err != nil {
			return err
		}
		f.Cancel()
		f.Cancel() // idempotent
		werr := f.Wait()
		if !errors.Is(werr, ErrFutureCancelled) || !errors.Is(werr, mpi.ErrCancelled) {
			return fmt.Errorf("cancelled future Wait returned %v, want ErrFutureCancelled wrapping mpi.ErrCancelled", werr)
		}
		// The engine must have drained every posted receive before
		// completing the future; give the worker's retire a moment is not
		// needed — completion happens after the drain.
		for i := 1; i < 4; i++ {
			if err := mpi.SendSlice(w, []int{1}, i, syncDone); err != nil {
				return err
			}
		}
		return nil
	})
}

// A peer crash mid-storm fails in-flight futures with typed errors (rank
// failure or cancellation poison) instead of deadlocking the engine. The
// crash point is calibrated by a fault-free first run: rank 2's op count
// after setup plus a small delta lands the crash inside the concurrent
// collectives.
func TestFutureCrashFailsTyped(t *testing.T) {
	nbh := mustStencil(t, 1, 4, -1)
	const K, m = 3, 2

	// Calibration pass: count rank 2's point-to-point ops through setup.
	setupOps := make([]int, 4)
	runWorld(t, 4, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{4}, nil, nbh, nil)
		if err != nil {
			return err
		}
		if _, err := AlltoallInit(c, m, Trivial); err != nil {
			return err
		}
		setupOps[w.Rank()] = w.OpCount()
		return nil
	})

	err := mpi.Run(mpi.Config{
		Procs:   4,
		Timeout: 10 * time.Second,
		Faults:  &mpi.FaultPlan{Crashes: []mpi.Crash{{Rank: 2, AtOp: setupOps[2] + 3}}},
	}, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{4}, nil, nbh, nil)
		if err != nil {
			return err
		}
		plan, err := AlltoallInit(c, m, Trivial)
		if err != nil {
			return err
		}
		tn := len(nbh)
		futs := make([]*Future, K)
		for k := 0; k < K; k++ {
			futs[k], _, err = startAlltoallFuture(w, plan, tn, m, k)
			if err != nil {
				// The crashing rank can fail at commit-time posting.
				break
			}
		}
		for _, f := range futs {
			if f == nil {
				continue
			}
			if werr := f.Wait(); werr != nil {
				if !mpi.IsRankFailed(werr) && !errors.Is(werr, mpi.ErrCancelled) && !errors.Is(werr, mpi.ErrAborted) {
					return fmt.Errorf("rank %d: future failed with untyped error %v", w.Rank(), werr)
				}
			}
		}
		return nil
	})
	// The run reports rank 2's injected crash; what matters above is that
	// every future completed with a typed error rather than hanging.
	if err == nil {
		t.Fatal("fault run returned nil error, crash was not injected")
	}
	if !strings.Contains(err.Error(), "injected crash") && !mpi.IsRankFailed(err) && !errors.Is(err, mpi.ErrAborted) {
		t.Fatalf("fault run returned unexpected error class: %v", err)
	}
}

// Satellite: many goroutines hammer the shared plan cache with *Init
// while their worlds run concurrent futures, under an eviction-heavy
// capacity, so verify-on-hit, detach/bind and eviction race real Start
// traffic (run under -race in CI).
func TestPlanCacheConcurrentStartEviction(t *testing.T) {
	old := SetPlanCacheCapacity(2)
	defer SetPlanCacheCapacity(old)

	const worlds = 6
	var wg sync.WaitGroup
	errs := make(chan error, worlds)
	for g := 0; g < worlds; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			nbh, err := vec.Stencil(1, 4, -1)
			if err != nil {
				errs <- err
				return
			}
			errs <- mpi.Run(mpi.Config{Procs: 4, Timeout: 30 * time.Second}, func(w *mpi.Comm) error {
				c, err := NeighborhoodCreate(w, []int{4}, nil, nbh, nil)
				if err != nil {
					return err
				}
				tn := len(nbh)
				for it := 0; it < 8; it++ {
					// Rotate block sizes so cache keys churn and evict.
					m := 1 + (g+it)%3
					plan, err := AlltoallInit(c, m, Combining)
					if err != nil {
						return err
					}
					f, recv, err := startAlltoallFuture(w, plan, tn, m, it)
					if err != nil {
						return err
					}
					if err := f.Wait(); err != nil {
						return err
					}
					base := refAlltoall(c.Grid(), nbh, w.Rank(), m)
					for i := range base {
						base[i] += it
					}
					if !reflect.DeepEqual(recv, base) {
						return fmt.Errorf("world %d rank %d iter %d: %v != %v", g, w.Rank(), it, recv, base)
					}
				}
				return nil
			})
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// Bounded multi-tenant stress: independent worlds each keep several
// futures in flight; engines share nothing, so worlds neither serialize
// nor interfere. CI runs this under -race at GOMAXPROCS 2 and 8.
func TestManyWorldsConcurrentFutures(t *testing.T) {
	worlds, iters := 12, 6
	if testing.Short() {
		worlds, iters = 4, 3
	}
	const K, m = 3, 2
	var wg sync.WaitGroup
	errs := make(chan error, worlds)
	for g := 0; g < worlds; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			nbh, err := vec.Stencil(1, 4, -1)
			if err != nil {
				errs <- err
				return
			}
			errs <- mpi.Run(mpi.Config{Procs: 4, Timeout: 60 * time.Second}, func(w *mpi.Comm) error {
				c, err := NeighborhoodCreate(w, []int{4}, nil, nbh, nil)
				if err != nil {
					return err
				}
				plan, err := AlltoallInit(c, m, Combining)
				if err != nil {
					return err
				}
				tn := len(nbh)
				for it := 0; it < iters; it++ {
					futs := make([]*Future, K)
					recvs := make([][]int, K)
					for k := 0; k < K; k++ {
						futs[k], recvs[k], err = startAlltoallFuture(w, plan, tn, m, it*K+k)
						if err != nil {
							return err
						}
					}
					for k := 0; k < K; k++ {
						if err := futs[k].Wait(); err != nil {
							return err
						}
					}
					base := refAlltoall(c.Grid(), nbh, w.Rank(), m)
					for k := 0; k < K; k++ {
						want := make([]int, len(base))
						for i := range base {
							want[i] = base[i] + it*K + k
						}
						if !reflect.DeepEqual(recvs[k], want) {
							return fmt.Errorf("world %d rank %d: future %d payload mismatch", g, w.Rank(), k)
						}
					}
				}
				return nil
			})
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
