package cart

import (
	"fmt"
	"testing"

	"cartcc/internal/mpi"
	"cartcc/internal/vec"
)

// decodeNeighborhood turns arbitrary fuzz bytes into a neighborhood of
// dimension d with offsets in [-4, 4]: every byte stream maps to some
// valid input, so the fuzzer explores duplicates, missing zero vectors,
// asymmetric stencils and wrap-around offsets without wasted inputs.
func decodeNeighborhood(raw []byte, d int) vec.Neighborhood {
	t := len(raw) / d
	if t > 16 {
		t = 16
	}
	nbh := make(vec.Neighborhood, t)
	for i := 0; i < t; i++ {
		v := make(vec.Vec, d)
		for j := 0; j < d; j++ {
			v[j] = int(int8(raw[i*d+j])) % 5
		}
		nbh[i] = v
	}
	return nbh
}

// FuzzCompileSchedule checks, for arbitrary encoded neighborhoods, that
// schedule construction and plan compilation never panic and that the
// paper's Proposition 3.2 accounting holds: the alltoall schedule has
// exactly C = Σ_k C_k rounds (C_k counting distinct non-zero k-th offsets,
// so duplicate offsets are combined, never re-sent), the schedules
// validate, and a compiled plan's Stats agree with the symbolic schedule.
// Run with `go test -fuzz FuzzCompileSchedule ./internal/cart/` for a real
// fuzzing session; the seed corpus runs as part of the normal tests
// (mirroring internal/vec/fuzz_test.go).
func FuzzCompileSchedule(f *testing.F) {
	f.Add([]byte{1, 0, 255, 0, 1, 1, 255, 255, 0, 0}, uint8(2), uint8(1))
	f.Add([]byte{3, 3, 3, 3, 252, 1, 2}, uint8(1), uint8(3))
	f.Add([]byte{0, 1, 2, 0, 1, 2, 0, 1, 2, 255, 254, 253}, uint8(3), uint8(2))
	f.Add([]byte{5, 5, 5, 5, 5, 5}, uint8(2), uint8(0)) // duplicates only
	f.Fuzz(func(t *testing.T, raw []byte, dRaw, mRaw uint8) {
		d := int(dRaw)%3 + 1
		if len(raw) < d {
			return
		}
		nbh := decodeNeighborhood(raw, d)
		if len(nbh) == 0 {
			return
		}
		wantC := 0
		for k := 0; k < d; k++ {
			wantC += vec.CountDistinctNonZero(nbh, k)
		}

		// Symbolic level: construction must not panic, the schedules must
		// validate, and rounds must combine duplicates.
		for _, op := range []OpKind{OpAlltoall, OpAllgather} {
			s := scheduleForOp(nbh, op)
			if err := s.Validate(len(nbh)); err != nil {
				t.Fatalf("%v schedule invalid: %v (nbh=%v)", op, err, nbh)
			}
			if s.Rounds != wantC {
				t.Fatalf("%v rounds %d, want ΣC_k = %d (nbh=%v)", op, s.Rounds, wantC, nbh)
			}
			ded := scheduleForOp(nbh.Dedup(), op)
			if ded.Rounds != s.Rounds {
				t.Fatalf("%v: dedup changed rounds %d -> %d (nbh=%v)", op, s.Rounds, ded.Rounds, nbh)
			}
			if op == OpAllgather && ded.Volume != s.Volume {
				// Allgather sends one copy per distinct offset; duplicates
				// ride along as local copies and add no volume.
				t.Fatalf("allgather: duplicate offsets add volume %d -> %d (nbh=%v)", ded.Volume, s.Volume, nbh)
			}
		}

		// Plan level: compile both operations on a small torus and check
		// the plan reports the symbolic accounting. Clamp the world size so
		// a fuzzing session stays fast.
		dims := make([]int, d)
		for i := range dims {
			dims[i] = 2 + (int(mRaw)+i)%2
		}
		p := gridSize(dims)
		if p > 18 {
			return
		}
		m := int(mRaw)%3 + 1
		runWorld(t, p, func(c *mpi.Comm) error {
			cc, err := NeighborhoodCreate(c, dims, nil, nbh, nil)
			if err != nil {
				return err
			}
			for _, op := range []OpKind{OpAlltoall, OpAllgather} {
				var plan *Plan
				if op == OpAlltoall {
					plan, err = AlltoallInit(cc, m, Combining)
				} else {
					plan, err = AllgatherInit(cc, m, Combining)
				}
				if err != nil {
					return err
				}
				if got := plan.Stats().PredictedRounds; got != wantC {
					return fmt.Errorf("%v plan predicts %d rounds, want ΣC_k = %d (nbh=%v)", op, got, wantC, nbh)
				}
			}
			return nil
		})
	})
}

// scheduleForOp builds the symbolic combining schedule for one operation.
func scheduleForOp(nbh vec.Neighborhood, op OpKind) *Schedule {
	if op == OpAlltoall {
		return AlltoallSchedule(nbh)
	}
	return AllgatherSchedule(nbh)
}
