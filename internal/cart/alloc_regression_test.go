package cart

import (
	"fmt"
	"testing"
	"time"

	"cartcc/internal/mpi"
	"cartcc/internal/trace"
	"cartcc/internal/vec"
)

// measureAlltoallAllocs benchmarks repeated alltoall executions of a
// compiled plan on a 3x3 torus with the Moore neighborhood and returns
// the allocation profile. All nine ranks execute b.N collectives, so the
// per-op numbers aggregate the whole world.
func measureAlltoallAllocs(t *testing.T, algo Algorithm, m int) testing.BenchmarkResult {
	t.Helper()
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		err := mpi.Run(mpi.Config{Procs: 9, Timeout: 60 * time.Second}, func(w *mpi.Comm) error {
			nbh, err := vec.Stencil(2, 3, -1)
			if err != nil {
				return err
			}
			c, err := NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil, WithAlgorithm(algo))
			if err != nil {
				return err
			}
			plan, err := AlltoallInit(c, m, algo)
			if err != nil {
				return err
			}
			send := make([]int64, len(nbh)*m)
			recv := make([]int64, len(nbh)*m)
			for i := range send {
				send[i] = int64(w.Rank()*1000 + i)
			}
			for i := 0; i < b.N; i++ {
				if err := Run(plan, send, recv); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	})
}

// TestAlltoallAllocsSizeIndependent is the PR's allocation regression
// gate: with the zero-copy fast path and pooled wire buffers, the number
// of heap allocations per collective must not scale with the block size —
// growing m 32-fold may not even double the allocs/op. Before pooling,
// every message gathered into a fresh wire and every receive staged
// through another, so allocs/op grew with message count x size class and
// B/op grew linearly in m.
func TestAlltoallAllocsSizeIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation benchmark in -short mode")
	}
	for _, algo := range []Algorithm{Trivial, Combining} {
		algo := algo
		t.Run(algoName(algo), func(t *testing.T) {
			small := measureAlltoallAllocs(t, algo, 16)
			large := measureAlltoallAllocs(t, algo, 512)
			sa, la := small.AllocsPerOp(), large.AllocsPerOp()
			t.Logf("m=16: %d allocs/op %d B/op; m=512: %d allocs/op %d B/op",
				sa, small.AllocedBytesPerOp(), la, large.AllocedBytesPerOp())
			if sa == 0 {
				t.Fatal("benchmark measured zero allocations; harness broken")
			}
			if la > sa*2 {
				t.Errorf("allocs/op scaled with block size: m=16 -> %d, m=512 -> %d (> 2x)", sa, la)
			}
			// Payload bytes grow 32x; pooled wires and zero-copy payloads
			// must keep allocated bytes far below proportional growth.
			sb, lb := small.AllocedBytesPerOp(), large.AllocedBytesPerOp()
			if sb > 0 && lb > sb*16 {
				t.Errorf("B/op scaled near-linearly with block size: m=16 -> %d, m=512 -> %d", sb, lb)
			}
		})
	}
}

// measureAllgatherAllocs is measureAlltoallAllocs for the allgather
// family, exercising the routing-tree schedule (and its pipelined
// execution) instead of the per-block alltoall paths.
func measureAllgatherAllocs(t *testing.T, algo Algorithm, m int) testing.BenchmarkResult {
	t.Helper()
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		err := mpi.Run(mpi.Config{Procs: 9, Timeout: 60 * time.Second}, func(w *mpi.Comm) error {
			nbh, err := vec.Stencil(2, 3, -1)
			if err != nil {
				return err
			}
			c, err := NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil, WithAlgorithm(algo))
			if err != nil {
				return err
			}
			plan, err := AllgatherInit(c, m, algo)
			if err != nil {
				return err
			}
			send := make([]int64, m)
			recv := make([]int64, len(nbh)*m)
			for i := range send {
				send[i] = int64(w.Rank()*1000 + i)
			}
			for i := 0; i < b.N; i++ {
				if err := Run(plan, send, recv); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	})
}

// TestAllgatherAllocsSizeIndependent extends the allocation gate to the
// combining allgather: the pipelined executor's plan-owned scratch
// (pipeState, WaitSet) must keep allocs/op flat in the block size, same
// bound as the alltoall gate.
func TestAllgatherAllocsSizeIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation benchmark in -short mode")
	}
	for _, algo := range []Algorithm{Trivial, Combining} {
		algo := algo
		t.Run(algoName(algo), func(t *testing.T) {
			small := measureAllgatherAllocs(t, algo, 16)
			large := measureAllgatherAllocs(t, algo, 512)
			sa, la := small.AllocsPerOp(), large.AllocsPerOp()
			t.Logf("m=16: %d allocs/op %d B/op; m=512: %d allocs/op %d B/op",
				sa, small.AllocedBytesPerOp(), la, large.AllocedBytesPerOp())
			if sa == 0 {
				t.Fatal("benchmark measured zero allocations; harness broken")
			}
			if la > sa*2 {
				t.Errorf("allocs/op scaled with block size: m=16 -> %d, m=512 -> %d (> 2x)", sa, la)
			}
			sb, lb := small.AllocedBytesPerOp(), large.AllocedBytesPerOp()
			if sb > 0 && lb > sb*16 {
				t.Errorf("B/op scaled near-linearly with block size: m=16 -> %d, m=512 -> %d", sb, lb)
			}
		})
	}
}

// measureLoggedAlltoallAllocs is measureAlltoallAllocs with a RoundLog
// attached to the plan: SetRoundLog reserves the full per-execution event
// capacity and Run resets the log in place each epoch, so logging must
// not add per-operation allocations.
func measureLoggedAlltoallAllocs(t *testing.T, m int) testing.BenchmarkResult {
	t.Helper()
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		err := mpi.Run(mpi.Config{Procs: 9, Timeout: 60 * time.Second}, func(w *mpi.Comm) error {
			nbh, err := vec.Stencil(2, 3, -1)
			if err != nil {
				return err
			}
			c, err := NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil, WithAlgorithm(Combining))
			if err != nil {
				return err
			}
			plan, err := AlltoallInit(c, m, Combining)
			if err != nil {
				return err
			}
			log := trace.NewRoundLog()
			plan.SetRoundLog(log)
			send := make([]int64, len(nbh)*m)
			recv := make([]int64, len(nbh)*m)
			for i := 0; i < b.N; i++ {
				if err := Run(plan, send, recv); err != nil {
					return err
				}
				if len(log.Events()) == 0 {
					return fmt.Errorf("logged run recorded no round events")
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	})
}

// TestLoggedRunStaysAllocationFree is the RoundLog-reuse regression gate:
// before the Reserve/Reset-per-epoch fix, an attached log grew without
// bound across executions (every Run appended a fresh epoch of events)
// and each growth step reallocated the backing array. With the fix, a
// logged re-execution allocates no more than an unlogged one.
func TestLoggedRunStaysAllocationFree(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation benchmark in -short mode")
	}
	const m = 16
	plain := measureAlltoallAllocs(t, Combining, m)
	logged := measureLoggedAlltoallAllocs(t, m)
	pa, la := plain.AllocsPerOp(), logged.AllocsPerOp()
	t.Logf("plain: %d allocs/op %d B/op; logged: %d allocs/op %d B/op",
		pa, plain.AllocedBytesPerOp(), la, logged.AllocedBytesPerOp())
	// Identical budget modulo benchmark jitter: the reserved log adds no
	// steady-state allocations.
	slack := pa / 4
	if slack < 4 {
		slack = 4
	}
	if la > pa+slack {
		t.Errorf("round logging allocates per operation: %d allocs/op logged vs %d plain", la, pa)
	}
}

// TestRepeatInitIsCacheHit is the plan-cache allocation gate: after one
// warm-up *Init, every further identical *Init must bind from the shared
// plan cache — no schedule recompilation, no DAG rebuild. The hit path is
// a key probe plus one Plan bind plus the geometry closures: a fixed
// handful of small allocations, orders of magnitude below a compile
// (thousands of allocs on this stencil, per BENCH_P2). Only rank 0
// measures, bracketed by barriers; the peers sit blocked and the world is
// created with the watchdog and deadlock monitor off so no background
// goroutine allocates into the measurement.
func TestRepeatInitIsCacheHit(t *testing.T) {
	ResetPlanCache()
	t.Cleanup(ResetPlanCache)
	err := mpi.Run(mpi.Config{
		Procs:        9,
		Timeout:      -1,
		DeadlockPoll: -1,
	}, func(w *mpi.Comm) error {
		nbh, err := vec.Stencil(2, 3, -1)
		if err != nil {
			return err
		}
		c, err := NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
		if err != nil {
			return err
		}
		// Warm-up: compile and publish both Auto legs for this rank.
		if _, err := AlltoallInit(c, 32, Auto); err != nil {
			return err
		}
		if err := mpi.Barrier(w); err != nil {
			return err
		}
		if w.Rank() == 0 {
			before := SnapshotPlanCache()
			var initErr error
			var last *Plan
			allocs := testing.AllocsPerRun(100, func() {
				p, err := AlltoallInit(c, 32, Auto)
				if err != nil {
					initErr = err
					return
				}
				last = p
			})
			if initErr != nil {
				return initErr
			}
			if last == nil || !last.FromCache() || !last.alt.FromCache() {
				return fmt.Errorf("measured Inits did not bind from cache")
			}
			after := SnapshotPlanCache()
			if after.Hits <= before.Hits {
				return fmt.Errorf("cart.plancache hits did not increment: %d -> %d", before.Hits, after.Hits)
			}
			if after.Misses != before.Misses {
				return fmt.Errorf("measured Inits recompiled: misses %d -> %d", before.Misses, after.Misses)
			}
			t.Logf("cache-hit *Init (Auto, both legs): %.1f allocs/op; %d hits recorded", allocs, after.Hits-before.Hits)
			// Compiling this plan costs thousands of allocations; the hit
			// path is two binds plus the geometry closures. The bound is
			// deliberately loose against Go-version drift while still
			// catching any reintroduced compile work.
			if allocs > 24 {
				return fmt.Errorf("cache-hit Init allocates like a compile: %.1f allocs/op (want <= 24)", allocs)
			}
		}
		return mpi.Barrier(w)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// algoName renders the algorithm for subtest names.
func algoName(a Algorithm) string {
	switch a {
	case Trivial:
		return "trivial"
	case Combining:
		return "combining"
	default:
		return "unknown"
	}
}
