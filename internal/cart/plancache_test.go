package cart

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cartcc/internal/datatype"
	"cartcc/internal/mpi"
	"cartcc/internal/vec"
)

// withFreshPlanCache isolates a test from cache state left by other tests
// and restores the default configuration afterwards.
func withFreshPlanCache(t *testing.T, capacity int) {
	t.Helper()
	ResetPlanCache()
	prev := SetPlanCacheCapacity(capacity)
	t.Cleanup(func() {
		SetPlanCacheCapacity(prev)
		ResetPlanCache()
	})
}

// runStencilWorld runs a 3-rank 1D periodic world with the ±1 stencil —
// the smallest topology where trivial and combining both do real
// communication — and hands the body a ready communicator.
func runStencilWorld(body func(c *Comm) error) error {
	return mpi.Run(mpi.Config{Procs: 3, Timeout: 30 * time.Second}, func(w *mpi.Comm) error {
		nbh := vec.Neighborhood{{1}, {-1}}
		c, err := NeighborhoodCreate(w, []int{3}, nil, nbh, nil)
		if err != nil {
			return err
		}
		return body(c)
	})
}

// checkAlltoall runs the plan and verifies every received block against
// the known pattern sent by its source rank — payload proof that a cached
// (possibly cross-world-shared) plan routes blocks exactly like a fresh
// compile.
func checkAlltoall(c *Comm, p *Plan, m int) error {
	t := len(c.Neighborhood())
	send := make([]int64, t*m)
	recv := make([]int64, t*m)
	for i := 0; i < t; i++ {
		for j := 0; j < m; j++ {
			send[i*m+j] = int64(c.Rank()*1_000_000 + i*1000 + j)
		}
	}
	if err := Run(p, send, recv); err != nil {
		return err
	}
	for i, src := range c.Sources() {
		if src == ProcNull {
			continue
		}
		for j := 0; j < m; j++ {
			want := int64(src*1_000_000 + i*1000 + j)
			if recv[i*m+j] != want {
				return fmt.Errorf("rank %d block %d elem %d: got %d, want %d (from rank %d)",
					c.Rank(), i, j, recv[i*m+j], want, src)
			}
		}
	}
	return nil
}

// TestRepeatInitBindsFromCache: the tentpole behavior — a second *Init on
// an identical (shape, neighborhood, op, geometry, algorithm) key binds
// the cached master instead of recompiling, for both legs of an Auto
// plan, and the cached plan produces byte-identical collective results.
func TestRepeatInitBindsFromCache(t *testing.T) {
	withFreshPlanCache(t, DefaultPlanCacheCapacity)
	err := runStencilWorld(func(c *Comm) error {
		first, err := AlltoallInit(c, 5, Auto)
		if err != nil {
			return err
		}
		if first.FromCache() || first.alt.FromCache() {
			return fmt.Errorf("first Init reported a cache hit on an empty cache")
		}
		second, err := AlltoallInit(c, 5, Auto)
		if err != nil {
			return err
		}
		if !second.FromCache() || !second.alt.FromCache() {
			return fmt.Errorf("second identical Init did not bind from cache (main=%v alt=%v)",
				second.FromCache(), second.alt.FromCache())
		}
		if second.rounds != first.rounds || second.volume != first.volume || second.tempLen != first.tempLen {
			return fmt.Errorf("cached plan shape differs from fresh compile")
		}
		// Different m is a different geometry fingerprint: must miss.
		other, err := AlltoallInit(c, 6, Auto)
		if err != nil {
			return err
		}
		if other.FromCache() {
			return fmt.Errorf("Init with a different block size bound a cached plan")
		}
		// Both the fresh and the cached plan must move real payloads
		// correctly.
		if err := checkAlltoall(c, first, 5); err != nil {
			return fmt.Errorf("fresh plan: %w", err)
		}
		return checkAlltoall(c, second, 5)
	})
	if err != nil {
		t.Fatal(err)
	}
	st := SnapshotPlanCache()
	// 3 ranks × 2 legs hit on the second Init.
	if st.Hits < 6 {
		t.Errorf("cache hits = %d, want >= 6", st.Hits)
	}
	if st.Entries == 0 || st.Bytes <= 0 {
		t.Errorf("cache empty after compiles: %+v", st)
	}
}

// TestPlanCacheSharedAcrossWorlds: two sequential worlds with the same
// topology share entries — the second world's very first Init is a hit
// (plans are pure functions of the fingerprint, not of the world that
// compiled them) and still delivers correct payloads.
func TestPlanCacheSharedAcrossWorlds(t *testing.T) {
	withFreshPlanCache(t, DefaultPlanCacheCapacity)
	seed := func(c *Comm) error {
		_, err := AlltoallInit(c, 9, Trivial)
		return err
	}
	if err := runStencilWorld(seed); err != nil {
		t.Fatal(err)
	}
	err := runStencilWorld(func(c *Comm) error {
		p, err := AlltoallInit(c, 9, Trivial)
		if err != nil {
			return err
		}
		if !p.FromCache() {
			return fmt.Errorf("fresh world with identical topology missed the cache")
		}
		return checkAlltoall(c, p, 9)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPlanCacheOrderSensitive: the neighborhood hash is order-preserving
// — block i travels to offset i, so a permuted offset list is a different
// collective and must not share plans.
func TestPlanCacheOrderSensitive(t *testing.T) {
	withFreshPlanCache(t, DefaultPlanCacheCapacity)
	build := func(nbh vec.Neighborhood, wantHit bool) error {
		return mpi.Run(mpi.Config{Procs: 3, Timeout: 30 * time.Second}, func(w *mpi.Comm) error {
			c, err := NeighborhoodCreate(w, []int{3}, nil, nbh, nil)
			if err != nil {
				return err
			}
			p, err := AlltoallInit(c, 4, Trivial)
			if err != nil {
				return err
			}
			if p.FromCache() != wantHit {
				return fmt.Errorf("FromCache = %v, want %v", p.FromCache(), wantHit)
			}
			return nil
		})
	}
	if err := build(vec.Neighborhood{{1}, {-1}}, false); err != nil {
		t.Fatal(err)
	}
	if err := build(vec.Neighborhood{{-1}, {1}}, false); err != nil {
		t.Fatalf("permuted neighborhood shared a cache entry: %v", err)
	}
	if err := build(vec.Neighborhood{{1}, {-1}}, true); err != nil {
		t.Fatal(err)
	}
}

// TestPlanCacheStyleOptionsNotInKey: execution-style options select an
// executor, not a compilation, so a barriered Init after a plain one is
// still a hit — and the instance carries the requested style while the
// plain instance does not.
func TestPlanCacheStyleOptionsNotInKey(t *testing.T) {
	withFreshPlanCache(t, DefaultPlanCacheCapacity)
	err := runStencilWorld(func(c *Comm) error {
		plain, err := AlltoallInit(c, 3, Combining)
		if err != nil {
			return err
		}
		if plain.barriered {
			return fmt.Errorf("plain plan compiled barriered")
		}
		barriered, err := AlltoallInit(c, 3, Combining, WithBarrieredPhases())
		if err != nil {
			return err
		}
		if !barriered.FromCache() {
			return fmt.Errorf("barriered Init missed despite identical compile key")
		}
		if !barriered.barriered {
			return fmt.Errorf("style option lost on the cache-hit path")
		}
		windowed, err := AlltoallInit(c, 3, Combining, WithPrepostWindow(2))
		if err != nil {
			return err
		}
		if !windowed.FromCache() || windowed.window != 2 {
			return fmt.Errorf("window option on hit path: fromCache=%v window=%d", windowed.FromCache(), windowed.window)
		}
		return checkAlltoall(c, barriered, 3)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPlanCacheTransformBypasses: WithScheduleTransform changes the
// compile itself (the sim mutation smoke plants bugs through it), so such
// plans never read or write the cache — a planted mutation can neither be
// served from cache nor poison it.
func TestPlanCacheTransformBypasses(t *testing.T) {
	withFreshPlanCache(t, DefaultPlanCacheCapacity)
	err := runStencilWorld(func(c *Comm) error {
		if _, err := AlltoallInit(c, 4, Combining); err != nil {
			return err
		}
		noop := func(*Schedule) {}
		p, err := AlltoallInit(c, 4, Combining, WithScheduleTransform(noop))
		if err != nil {
			return err
		}
		if p.FromCache() {
			return fmt.Errorf("transformed Init bound a cached plan")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	before := SnapshotPlanCache()
	err = runStencilWorld(func(c *Comm) error {
		p, err := AlltoallInit(c, 4, Combining, WithScheduleTransform(func(*Schedule) {}))
		if err != nil {
			return err
		}
		if p.FromCache() {
			return fmt.Errorf("transformed Init bound a cached plan")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	after := SnapshotPlanCache()
	if after.Entries != before.Entries {
		t.Errorf("transformed compile was published to the cache: %d -> %d entries", before.Entries, after.Entries)
	}
}

// TestPlanCacheEvictionAtCapacity: a single-rank world sweeps more
// distinct block sizes than the capacity holds; the LRU must evict the
// oldest entries (deterministically, with one rank) and a re-Init of an
// evicted size must recompile while the newest sizes still hit.
func TestPlanCacheEvictionAtCapacity(t *testing.T) {
	const capacity = 4
	withFreshPlanCache(t, capacity)
	err := mpi.Run(mpi.Config{Procs: 1, Timeout: 30 * time.Second}, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{1}, nil, vec.Neighborhood{{1}}, nil)
		if err != nil {
			return err
		}
		for m := 1; m <= 10; m++ {
			if _, err := AlltoallInit(c, m, Trivial); err != nil {
				return err
			}
		}
		st := SnapshotPlanCache()
		if st.Entries != capacity {
			return fmt.Errorf("entries = %d, want exactly capacity %d", st.Entries, capacity)
		}
		if st.Evictions != 10-capacity {
			return fmt.Errorf("evictions = %d, want %d", st.Evictions, 10-capacity)
		}
		evicted, err := AlltoallInit(c, 1, Trivial)
		if err != nil {
			return err
		}
		if evicted.FromCache() {
			return fmt.Errorf("evicted entry (m=1) served a hit")
		}
		kept, err := AlltoallInit(c, 10, Trivial)
		if err != nil {
			return err
		}
		if !kept.FromCache() {
			return fmt.Errorf("most-recent entry (m=10) missed")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := SnapshotPlanCache()
	if st.Bytes <= 0 {
		t.Errorf("bytes gauge non-positive after evictions: %d", st.Bytes)
	}
}

// TestPlanCacheCapacityZeroDisables: capacity 0 must drop everything and
// stop caching without breaking Init.
func TestPlanCacheCapacityZeroDisables(t *testing.T) {
	withFreshPlanCache(t, 0)
	err := runStencilWorld(func(c *Comm) error {
		for i := 0; i < 2; i++ {
			p, err := AlltoallInit(c, 4, Trivial)
			if err != nil {
				return err
			}
			if p.FromCache() {
				return fmt.Errorf("hit with caching disabled")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := SnapshotPlanCache(); st.Entries != 0 {
		t.Errorf("entries = %d with capacity 0", st.Entries)
	}
}

// TestPlanCacheConcurrentWorldsRace is the -race coverage: many worlds
// run concurrently, half sharing one fingerprint (contending on the same
// entries, binding one shared master from many goroutines) and half on
// distinct fingerprints (churning inserts), every rank doing *Init + Run
// with full payload verification. Any shared mutable state on the hit
// path — in the cache, the masters, or the bound plans — is a detector
// hit or a payload mismatch here.
func TestPlanCacheConcurrentWorldsRace(t *testing.T) {
	withFreshPlanCache(t, DefaultPlanCacheCapacity)
	const worlds = 8
	var wg sync.WaitGroup
	errs := make([]error, worlds)
	for wi := 0; wi < worlds; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			// Even worlds share block size 4 (same key); odd worlds get a
			// world-distinct size (insert churn).
			m := 4
			if wi%2 == 1 {
				m = 16 + wi
			}
			errs[wi] = runStencilWorld(func(c *Comm) error {
				for iter := 0; iter < 3; iter++ {
					p, err := AlltoallInit(c, m, Auto)
					if err != nil {
						return err
					}
					if err := checkAlltoall(c, p, m); err != nil {
						return fmt.Errorf("world %d iter %d: %w", wi, iter, err)
					}
				}
				return nil
			})
		}(wi)
	}
	wg.Wait()
	for wi, err := range errs {
		if err != nil {
			t.Errorf("world %d: %v", wi, err)
		}
	}
	st := SnapshotPlanCache()
	if st.Hits == 0 {
		t.Error("concurrent worlds never hit the shared cache")
	}
}

// TestPlanCacheRecoveryEpochMisses: post-recovery invalidation. A fresh
// 3-rank world seeds entries at epoch 0; a 4-rank world then loses a rank,
// shrinks via consensus recovery, and re-embeds into the *identical*
// 3-rank topology — but at a bumped epoch, so its Init must recompile
// rather than serve the pre-recovery plan, while repeats within the
// recovered generation hit normally.
func TestPlanCacheRecoveryEpochMisses(t *testing.T) {
	withFreshPlanCache(t, DefaultPlanCacheCapacity)
	const m = 7
	nbh := vec.Neighborhood{{1}, {-1}}
	if err := runStencilWorld(func(c *Comm) error {
		p, err := AlltoallInit(c, m, Trivial)
		if err != nil {
			return err
		}
		if p.FromCache() {
			return fmt.Errorf("seed Init hit an empty cache")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	err := mpi.Run(mpi.Config{
		Procs:   4,
		Timeout: 30 * time.Second,
		Faults:  &mpi.FaultPlan{Crashes: []mpi.Crash{{Rank: 3, AtOp: 3}}},
	}, func(w *mpi.Comm) error {
		// Ring traffic until the crash surfaces, then consensus-shrink.
		p := w.Size()
		next, prev := (w.Rank()+1)%p, (w.Rank()-1+p)%p
		var ringErr error
		for i := 0; i < 10; i++ {
			out, in := []int{w.Rank()}, make([]int, 1)
			if _, err := mpi.Sendrecv(w, out, datatype.Contiguous(0, 1), next, 0, in, datatype.Contiguous(0, 1), prev, 0); err != nil {
				ringErr = err
				break
			}
		}
		if ringErr == nil {
			return fmt.Errorf("rank %d never observed the crash", w.Rank())
		}
		w.Revoke()
		nw, info, err := w.RecoverShrink()
		if err != nil {
			return fmt.Errorf("rank %d: RecoverShrink: %w", w.Rank(), err)
		}
		if info.Epoch < 1 {
			return fmt.Errorf("recovered into epoch %d, want >= 1", info.Epoch)
		}
		if nw.Size() != 3 {
			return fmt.Errorf("shrunk size = %d, want 3", nw.Size())
		}
		c, err := NeighborhoodCreate(nw, []int{3}, nil, nbh, nil)
		if err != nil {
			return err
		}
		stale, err := AlltoallInit(c, m, Trivial)
		if err != nil {
			return err
		}
		if stale.FromCache() {
			return fmt.Errorf("post-recovery Init served the pre-recovery (epoch-0) plan")
		}
		repeat, err := AlltoallInit(c, m, Trivial)
		if err != nil {
			return err
		}
		if !repeat.FromCache() {
			return fmt.Errorf("repeat Init within the recovered generation missed")
		}
		return checkAlltoall(c, repeat, m)
	})
	// The injected crash is the run's only acceptable primary error.
	if !mpi.IsRankFailed(err) {
		t.Fatalf("run error = %v, want RankFailedError from the injected crash", err)
	}
}
