package cart

import (
	"fmt"

	"cartcc/internal/vec"
)

// Message-combining allgather on non-periodic meshes, completing the mesh
// extension (mesh.go) for the second collective family.
//
// The torus allgather routes every origin's block along one shared tree.
// On a mesh, subtrees whose origins or targets fall off the grid simply do
// not exist — and, as with the alltoall, every process can decide purely
// locally which subtree blocks it holds, sends, and receives:
//
//   - The staging position of subtree s for origin o is o + P(s), where
//     P(s) is the shared coordinate prefix of s's members over the
//     processed dimensions. Each component of P(s) equals the members'
//     common offset component, so o + P(s) lies in the bounding box of
//     (o, o + N[i]) for every member i: if any member's target exists,
//     every staging hop of the subtree exists.
//   - Process r holds subtree s iff the origin o = r − P(s) is on the
//     mesh and at least one member target o + N[i] is. Sender (parent
//     position) and receiver (child position) evaluate the same
//     predicate, so round pairing is deadlock-free.
//
// Members resting at a node always have their target at the node's own
// staging position, so the torus landing rule (receive buffer for the
// first resting member, unique temp slot otherwise) carries over
// unchanged; only move existence is predicated.

// meshTreeInfo precomputes per-node data shared by sender/receiver logic.
type meshTreeInfo struct {
	tree    *AllgatherTree
	nbh     vec.Neighborhood
	grid    *vec.Grid
	prefix  map[*TreeNode]vec.Vec // P(s)
	lastHop []int                 // per member, last non-zero level
}

func newMeshTreeInfo(g *vec.Grid, nbh vec.Neighborhood) *meshTreeInfo {
	tr := BuildAllgatherTree(nbh, nil)
	info := &meshTreeInfo{tree: tr, nbh: nbh, grid: g, prefix: map[*TreeNode]vec.Vec{}}
	d := nbh.Dims()
	info.lastHop = make([]int, len(nbh))
	for i, rel := range nbh {
		info.lastHop[i] = -1
		for l := 0; l < d; l++ {
			if rel[tr.DimOrder[l]] != 0 {
				info.lastHop[i] = l
			}
		}
	}
	var walk func(n *TreeNode, acc vec.Vec)
	walk = func(n *TreeNode, acc vec.Vec) {
		p := acc.Clone()
		if n.Level >= 0 {
			p[tr.DimOrder[n.Level]] += n.Coord
		}
		info.prefix[n] = p
		for _, ch := range n.Children {
			walk(ch, p)
		}
	}
	walk(tr.Root, make(vec.Vec, d))
	return info
}

// activeAt reports whether process r holds subtree s: the origin exists
// and some member's target does. It also returns the origin's rank.
func (mi *meshTreeInfo) activeAt(r int, s *TreeNode) (origin int, ok bool) {
	o, ok := mi.grid.RankDisplace(r, mi.prefix[s].Neg())
	if !ok {
		return -1, false
	}
	for _, m := range s.Members {
		if _, ok := mi.grid.RankDisplace(o, mi.nbh[m]); ok {
			return o, true
		}
	}
	return -1, false
}

// landing picks the staging location of node s: the receive-buffer slot of
// the first resting member, else a fresh temp slot (allocated by the
// caller).
func (mi *meshTreeInfo) restingMember(s *TreeNode) (int, bool) {
	for _, m := range s.Members {
		if mi.lastHop[m] <= s.Level {
			return m, true
		}
	}
	return -1, false
}

// compileMeshAllgather builds the executable mesh allgather plan for this
// process.
func (c *Comm) compileMeshAllgather(geom BlockGeometry) (*Plan, error) {
	mi := newMeshTreeInfo(c.grid, c.nbh)
	tr := mi.tree
	d := c.nbh.Dims()
	rank := c.comm.Rank()
	p := &Plan{comm: c, op: OpAllgather, algo: Combining, cmet: c.cmet}

	// Per-node landing bookkeeping for THIS process (as receiver/holder).
	type landing struct {
		buf  BufKind
		slot int
	}
	land := map[*TreeNode]landing{tr.Root: {BufSend, 0}}
	tempSeq := 0

	frontier := []*TreeNode{tr.Root}
	for level := 0; level < d; level++ {
		k := tr.DimOrder[level]
		var next []*TreeNode
		var hops []*TreeNode
		for _, parent := range frontier {
			for _, ch := range parent.Children {
				if ch.Coord == 0 {
					// Pass-throughs share the parent's staging; an
					// inactive parent simply has no entry to propagate.
					if pl, ok := land[parent]; ok {
						land[ch] = pl
					}
				} else {
					hops = append(hops, ch)
				}
				next = append(next, ch)
			}
		}
		// Stable-sort hops by coordinate to form rounds. The hop list and
		// its coordinate grouping derive from the shared tree, identical on
		// every rank; slot counts distinct coordinates (rounds of the
		// global phase structure) so tags agree across ranks even when
		// flush drops a round that is empty here but not at a peer.
		sortNodesByCoord(hops)
		var rounds []execRound
		var cur *execRound
		curCoord := 0
		have := false
		slot := -1
		flush := func() {
			if cur != nil && (cur.sendTo != ProcNull && cur.send.Size() > 0 || cur.recvFrom != ProcNull && cur.recv.Size() > 0) {
				// Normalize: drop the send or recv side if it carries
				// nothing.
				if cur.send.Size() == 0 {
					cur.sendTo = ProcNull
				}
				if cur.recv.Size() == 0 {
					cur.recvFrom = ProcNull
				}
				setRoundWhat(cur)
				rounds = append(rounds, *cur)
				p.rounds++
			}
			cur = nil
		}
		for _, s := range hops {
			if !have || s.Coord != curCoord {
				flush()
				slot++
				rel := make(vec.Vec, d)
				rel[k] = s.Coord
				er := execRound{sendTo: ProcNull, recvFrom: ProcNull, tag: roundTag(level, slot, len(c.nbh))}
				if dst, ok := c.grid.RankDisplace(rank, rel); ok {
					er.sendTo = dst
				}
				if src, ok := c.grid.RankDisplace(rank, rel.Neg()); ok {
					er.recvFrom = src
				}
				cur = &er
				curCoord = s.Coord
				have = true
			}
			// Sender side: r is the parent position of s, forwarding from
			// wherever it staged the parent subtree. If s is active at
			// the target, the parent must be active here (same origin,
			// superset members), so the staging exists.
			if cur.sendTo != ProcNull {
				if _, ok := mi.activeAt(cur.sendTo, s); ok {
					pl, ok := land[s.Parent]
					if !ok {
						return nil, errMeshStaging(rank, s)
					}
					cur.send.Append(bufIndex(pl.buf), layoutFor(pl.buf, pl.slot, geom))
					p.volume++
				}
			}
			// Receiver side: r is the position of s itself. When s is
			// active here, the sender position r − c·e_k lies on the path
			// inside the origin–target bounding box, so it is always on
			// the mesh.
			if _, ok := mi.activeAt(rank, s); ok {
				if cur.recvFrom == ProcNull {
					return nil, errMeshStaging(rank, s)
				}
				var l landing
				if rest, ok := mi.restingMember(s); ok {
					l = landing{BufRecv, rest}
				} else {
					l = landing{BufTemp, tempSeq}
					tempSeq++
				}
				land[s] = l
				cur.recv.Append(bufIndex(l.buf), layoutFor(l.buf, l.slot, geom))
				if hi := tempHigh(geom, l.buf, l.slot); hi > p.tempLen {
					p.tempLen = hi
				}
			}
		}
		flush()
		p.phases = append(p.phases, rounds)
		p.deferScatter = append(p.deferScatter, phaseConflicts(rounds))
		frontier = next
	}

	// Local copies: each member whose origin exists rests at the node of
	// its last non-zero level (the root for the zero offset); copy from
	// that node's staging unless it already landed in place.
	for i := range c.nbh {
		if _, ok := c.grid.RankDisplace(rank, c.nbh[i].Neg()); !ok {
			continue // no source: the receive block stays untouched
		}
		target := mi.restingNodeOf(i)
		l, ok := land[target]
		if !ok {
			return nil, errMeshStaging(rank, target)
		}
		if l.buf == BufRecv && l.slot == i {
			continue // already in place
		}
		p.copies = append(p.copies, execCopy{
			fromBuf: bufIndex(l.buf),
			from:    layoutFor(l.buf, l.slot, geom),
			to:      geom.RecvAt(i),
		})
	}
	buildDAG(p)
	return p, nil
}

// errMeshStaging reports a violated mesh-allgather invariant (a bug, not a
// user error).
func errMeshStaging(rank int, s *TreeNode) error {
	return fmt.Errorf("cart: internal: mesh allgather staging missing at rank %d for subtree members %v", rank, s.Members)
}

// tempHigh returns the temp extent needed for a landing.
func tempHigh(geom BlockGeometry, b BufKind, slot int) int {
	if b != BufTemp {
		return 0
	}
	_, hi := geom.TempAt(slot).Bounds()
	return hi
}

// sortNodesByCoord stable-sorts tree nodes by their hop coordinate
// (insertion sort; per-level node counts are small).
func sortNodesByCoord(nodes []*TreeNode) {
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && nodes[j].Coord < nodes[j-1].Coord; j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
}

// restingNodeOf returns the node where member i's block comes to rest:
// the hopping node at its last non-zero level, or the root for the zero
// offset.
func (mi *meshTreeInfo) restingNodeOf(i int) *TreeNode {
	target := mi.tree.Root
	node := mi.tree.Root
	for {
		nxt := childContaining(node, i)
		if nxt == nil {
			break
		}
		node = nxt
		if nxt.Coord != 0 && nxt.Level == mi.lastHop[i] {
			target = nxt
		}
	}
	return target
}

// childContaining returns the child of n whose member set contains i.
func childContaining(n *TreeNode, i int) *TreeNode {
	for _, ch := range n.Children {
		for _, m := range ch.Members {
			if m == i {
				return ch
			}
		}
	}
	return nil
}

// MeshAllgatherInit precomputes the mesh-aware message-combining allgather
// plan for blocks of m elements. On a torus it matches AllgatherInit with
// Combining in rounds and volume.
func MeshAllgatherInit(c *Comm, m int) (*Plan, error) {
	p, err := c.compileMeshAllgather(uniformGeometry(OpAllgather, m))
	if err != nil {
		return nil, err
	}
	t := len(c.nbh)
	p.setLens(m, t*m)
	return p, nil
}
