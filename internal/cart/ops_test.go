package cart

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"cartcc/internal/mpi"
	"cartcc/internal/netmodel"
	"cartcc/internal/vec"
)

// runWorld runs f on p ranks.
func runWorld(t *testing.T, p int, f func(c *mpi.Comm) error) {
	t.Helper()
	if err := mpi.Run(mpi.Config{Procs: p, Timeout: 30 * time.Second}, f); err != nil {
		t.Fatal(err)
	}
}

// gridSize multiplies dims.
func gridSize(dims []int) int {
	p := 1
	for _, d := range dims {
		p *= d
	}
	return p
}

// refAlltoall computes the expected receive buffer of the regular alltoall
// for one rank directly from the definition: block i comes from source
// R − N[i], which filled its send block i with encode(source, i, e).
func refAlltoall(grid *vec.Grid, nbh vec.Neighborhood, rank, m int) []int {
	out := make([]int, len(nbh)*m)
	for i, rel := range nbh {
		src, ok := grid.RankDisplace(rank, rel.Neg())
		if !ok {
			continue
		}
		for e := 0; e < m; e++ {
			out[i*m+e] = encode(src, i, e)
		}
	}
	return out
}

// refAllgather is refAlltoall for the allgather: every source sends the
// same block encode(source, 0, e).
func refAllgather(grid *vec.Grid, nbh vec.Neighborhood, rank, m int) []int {
	out := make([]int, len(nbh)*m)
	for i, rel := range nbh {
		src, ok := grid.RankDisplace(rank, rel.Neg())
		if !ok {
			continue
		}
		for e := 0; e < m; e++ {
			out[i*m+e] = encode(src, 0, e)
		}
	}
	return out
}

// encode builds a distinctive payload value.
func encode(rank, block, elem int) int { return rank*1_000_000 + block*1_000 + elem }

// checkAlltoallOnce creates the neighborhood communicator and verifies one
// alltoall with the given algorithm against the reference.
func checkAlltoallOnce(t *testing.T, dims []int, nbh vec.Neighborhood, m int, algo Algorithm) {
	t.Helper()
	runWorld(t, gridSize(dims), func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, dims, nil, nbh, nil, WithAlgorithm(algo))
		if err != nil {
			return err
		}
		tn := len(nbh)
		send := make([]int, tn*m)
		for i := 0; i < tn; i++ {
			for e := 0; e < m; e++ {
				send[i*m+e] = encode(w.Rank(), i, e)
			}
		}
		recv := make([]int, tn*m)
		if err := Alltoall(c, send, recv); err != nil {
			return err
		}
		want := refAlltoall(c.Grid(), nbh, w.Rank(), m)
		if !reflect.DeepEqual(recv, want) {
			return fmt.Errorf("rank %d (%v, algo %v): recv=%v want=%v", w.Rank(), dims, algo, recv, want)
		}
		return nil
	})
}

// checkAllgatherOnce is checkAlltoallOnce for the allgather.
func checkAllgatherOnce(t *testing.T, dims []int, nbh vec.Neighborhood, m int, algo Algorithm) {
	t.Helper()
	runWorld(t, gridSize(dims), func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, dims, nil, nbh, nil, WithAlgorithm(algo))
		if err != nil {
			return err
		}
		send := make([]int, m)
		for e := 0; e < m; e++ {
			send[e] = encode(w.Rank(), 0, e)
		}
		recv := make([]int, len(nbh)*m)
		if err := Allgather(c, send, recv); err != nil {
			return err
		}
		want := refAllgather(c.Grid(), nbh, w.Rank(), m)
		if !reflect.DeepEqual(recv, want) {
			return fmt.Errorf("rank %d (%v, algo %v): recv=%v want=%v", w.Rank(), dims, algo, recv, want)
		}
		return nil
	})
}

func TestAlltoall9PointStencil(t *testing.T) {
	nbh := mustStencil(t, 2, 3, -1)
	for _, algo := range []Algorithm{Trivial, Combining, Auto} {
		checkAlltoallOnce(t, []int{4, 4}, nbh, 3, algo)
	}
}

func TestAllgather9PointStencil(t *testing.T) {
	nbh := mustStencil(t, 2, 3, -1)
	for _, algo := range []Algorithm{Trivial, Combining, Auto} {
		checkAllgatherOnce(t, []int{4, 4}, nbh, 3, algo)
	}
}

func TestAlltoall27PointStencil(t *testing.T) {
	nbh := mustStencil(t, 3, 3, -1)
	for _, algo := range []Algorithm{Trivial, Combining} {
		checkAlltoallOnce(t, []int{3, 3, 3}, nbh, 2, algo)
	}
}

func TestAllgather27PointStencil(t *testing.T) {
	nbh := mustStencil(t, 3, 3, -1)
	for _, algo := range []Algorithm{Trivial, Combining} {
		checkAllgatherOnce(t, []int{3, 3, 3}, nbh, 2, algo)
	}
}

func TestAlltoallAsymmetricStencil(t *testing.T) {
	// n=4, f=-1: offsets {-1,0,1,2}, asymmetric and wrapping heavily on a
	// 3-extent torus (offset 2 ≡ -1: distinct neighbors map to the same
	// process).
	nbh := mustStencil(t, 2, 4, -1)
	for _, algo := range []Algorithm{Trivial, Combining} {
		checkAlltoallOnce(t, []int{3, 4}, nbh, 2, algo)
	}
}

func TestAllgatherAsymmetricStencil(t *testing.T) {
	nbh := mustStencil(t, 2, 4, -1)
	for _, algo := range []Algorithm{Trivial, Combining} {
		checkAllgatherOnce(t, []int{3, 4}, nbh, 2, algo)
	}
}

func TestAlltoallFigure2Neighborhood(t *testing.T) {
	nbh := vec.Neighborhood{{-2, 1, 1}, {-1, 1, 1}, {1, 1, 1}, {2, 1, 1}}
	for _, algo := range []Algorithm{Trivial, Combining} {
		checkAlltoallOnce(t, []int{5, 3, 3}, nbh, 2, algo)
	}
}

func TestAllgatherFigure2Neighborhood(t *testing.T) {
	nbh := vec.Neighborhood{{-2, 1, 1}, {-1, 1, 1}, {1, 1, 1}, {2, 1, 1}}
	for _, algo := range []Algorithm{Trivial, Combining} {
		checkAllgatherOnce(t, []int{5, 3, 3}, nbh, 2, algo)
	}
}

func TestAlltoallDuplicateNeighbors(t *testing.T) {
	nbh := vec.Neighborhood{{1, 0}, {1, 0}, {0, 1}, {0, 0}, {0, 0}}
	for _, algo := range []Algorithm{Trivial, Combining} {
		checkAlltoallOnce(t, []int{3, 3}, nbh, 2, algo)
	}
}

func TestAllgatherDuplicateNeighbors(t *testing.T) {
	nbh := vec.Neighborhood{{1, 0}, {1, 0}, {0, 1}, {0, 0}, {0, 0}}
	for _, algo := range []Algorithm{Trivial, Combining} {
		checkAllgatherOnce(t, []int{3, 3}, nbh, 2, algo)
	}
}

func TestAlltoallSingleProcessTorus(t *testing.T) {
	// Extent-1 dimensions: every neighbor is the process itself.
	nbh := mustStencil(t, 2, 3, -1)
	for _, algo := range []Algorithm{Trivial, Combining} {
		checkAlltoallOnce(t, []int{1, 1}, nbh, 2, algo)
	}
}

func TestAlltoallEmptyBlocks(t *testing.T) {
	nbh := mustStencil(t, 2, 3, -1)
	checkAlltoallOnce(t, []int{3, 3}, nbh, 0, Combining)
}

func TestRandomNeighborhoodsAgainstReference(t *testing.T) {
	// The central property test: for random neighborhoods, grids and block
	// sizes, both algorithms produce exactly the reference exchange.
	rng := rand.New(rand.NewSource(99))
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		nbh := randomNeighborhood(rng)
		d := nbh.Dims()
		dims := make([]int, d)
		for i := range dims {
			dims[i] = rng.Intn(4) + 2 // extents 2..5
		}
		if gridSize(dims) > 200 {
			continue
		}
		m := rng.Intn(4) + 1
		for _, algo := range []Algorithm{Trivial, Combining} {
			checkAlltoallOnce(t, dims, nbh, m, algo)
			checkAllgatherOnce(t, dims, nbh, m, algo)
		}
	}
}

func TestMeshTrivialSkipsMissingNeighbors(t *testing.T) {
	// Non-periodic mesh: boundary processes have ProcNull neighbors, the
	// trivial algorithm skips them and leaves the receive blocks untouched.
	nbh := mustStencil(t, 1, 3, -1) // offsets -1, 0, 1
	dims := []int{4}
	runWorld(t, 4, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, dims, []bool{false}, nbh, nil, WithAlgorithm(Trivial))
		if err != nil {
			return err
		}
		send := []int{encode(w.Rank(), 0, 0), encode(w.Rank(), 1, 0), encode(w.Rank(), 2, 0)}
		recv := []int{-1, -1, -1}
		if err := Alltoall(c, send, recv); err != nil {
			return err
		}
		// Block 0 (offset -1) comes from rank+1; block 2 (offset +1) from
		// rank-1; block 1 (offset 0) is the local copy.
		if recv[1] != send[1] {
			return fmt.Errorf("rank %d: self block %v", w.Rank(), recv)
		}
		if w.Rank() < 3 {
			if recv[0] != encode(w.Rank()+1, 0, 0) {
				return fmt.Errorf("rank %d: block 0 = %d", w.Rank(), recv[0])
			}
		} else if recv[0] != -1 {
			return fmt.Errorf("rank 3: block 0 written: %d", recv[0])
		}
		if w.Rank() > 0 {
			if recv[2] != encode(w.Rank()-1, 2, 0) {
				return fmt.Errorf("rank %d: block 2 = %d", w.Rank(), recv[2])
			}
		} else if recv[2] != -1 {
			return fmt.Errorf("rank 0: block 2 written: %d", recv[2])
		}
		return nil
	})
}

func TestCombiningOnMeshes(t *testing.T) {
	// Both families have mesh-aware combining schedules (mesh.go,
	// mesh_allgather.go); Auto composes them with the trivial fallback.
	nbh := mustStencil(t, 1, 3, -1)
	runWorld(t, 4, func(w *mpi.Comm) error {
		for _, algo := range []Algorithm{Combining, Auto} {
			c, err := NeighborhoodCreate(w, []int{4}, []bool{false}, nbh, nil, WithAlgorithm(algo))
			if err != nil {
				return err
			}
			send := []int{encode(w.Rank(), 0, 0), encode(w.Rank(), 1, 0), encode(w.Rank(), 2, 0)}
			recv := []int{-1, -1, -1}
			if err := Alltoall(c, send, recv); err != nil {
				return fmt.Errorf("mesh %v alltoall: %w", algo, err)
			}
			want := refAlltoall(c.Grid(), nbh, w.Rank(), 1)
			for i, rel := range nbh {
				if _, ok := c.Grid().RankDisplace(w.Rank(), rel.Neg()); !ok {
					want[i] = -1
				}
			}
			if !reflect.DeepEqual(recv, want) {
				return fmt.Errorf("mesh %v alltoall: %v want %v", algo, recv, want)
			}
			ag := []int{-1, -1, -1}
			if err := Allgather(c, []int{encode(w.Rank(), 0, 0)}, ag); err != nil {
				return fmt.Errorf("mesh %v allgather: %w", algo, err)
			}
			wantAG := refAllgather(c.Grid(), nbh, w.Rank(), 1)
			for i, rel := range nbh {
				if _, ok := c.Grid().RankDisplace(w.Rank(), rel.Neg()); !ok {
					wantAG[i] = -1
				}
			}
			if !reflect.DeepEqual(ag, wantAG) {
				return fmt.Errorf("mesh %v allgather: %v want %v", algo, ag, wantAG)
			}
		}
		return nil
	})
}

func TestNeighborhoodCreateValidation(t *testing.T) {
	runWorld(t, 4, func(w *mpi.Comm) error {
		nbh := vec.Neighborhood{{0, 1}}
		if _, err := NeighborhoodCreate(w, []int{2, 3}, nil, nbh, nil); err == nil {
			return fmt.Errorf("grid/comm size mismatch accepted")
		}
		if _, err := NeighborhoodCreate(w, []int{2, 2}, nil, vec.Neighborhood{{1}}, nil); err == nil {
			return fmt.Errorf("wrong-arity neighborhood accepted")
		}
		if _, err := NeighborhoodCreate(w, []int{2, 2}, nil, nbh, []int{1, 2}); err == nil {
			return fmt.Errorf("wrong-length weights accepted")
		}
		return nil
	})
}

func TestNeighborhoodCreateDetectsNonIsomorphic(t *testing.T) {
	// Rank 2 passes a different offset list: the collective O(t) check of
	// Section 2.2 must reject it on every rank.
	err := mpi.Run(mpi.Config{Procs: 4, Timeout: 10 * time.Second}, func(w *mpi.Comm) error {
		nbh := vec.Neighborhood{{0, 1}, {1, 0}}
		if w.Rank() == 2 {
			nbh = vec.Neighborhood{{0, 1}, {1, 1}}
		}
		_, err := NeighborhoodCreate(w, []int{2, 2}, nil, nbh, nil)
		if err == nil {
			return fmt.Errorf("non-isomorphic neighborhood accepted on rank %d", w.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNeighborhoodCreateDetectsSizeMismatch(t *testing.T) {
	err := mpi.Run(mpi.Config{Procs: 2, Timeout: 10 * time.Second}, func(w *mpi.Comm) error {
		nbh := vec.Neighborhood{{0, 1}}
		if w.Rank() == 1 {
			nbh = vec.Neighborhood{{0, 1}, {1, 0}}
		}
		_, err := NeighborhoodCreate(w, []int{1, 2}, nil, nbh, nil)
		if err == nil {
			return fmt.Errorf("size-mismatched neighborhood accepted on rank %d", w.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNeighborhoodCreateFlat(t *testing.T) {
	runWorld(t, 4, func(w *mpi.Comm) error {
		flat := []int{0, 1, 1, 0, -1, -1}
		c, err := NeighborhoodCreateFlat(w, 2, []int{2, 2}, nil, flat, nil)
		if err != nil {
			return err
		}
		if c.NeighborCount() != 3 {
			return fmt.Errorf("t = %d", c.NeighborCount())
		}
		want := vec.Neighborhood{{0, 1}, {1, 0}, {-1, -1}}
		if !c.Neighborhood().Equal(want) {
			return fmt.Errorf("neighborhood %v", c.Neighborhood())
		}
		return nil
	})
}

func TestHelperFunctions(t *testing.T) {
	runWorld(t, 12, func(w *mpi.Comm) error {
		nbh := vec.Neighborhood{{0, 1}, {1, -1}}
		c, err := NeighborhoodCreate(w, []int{3, 4}, nil, nbh, []int{5, 7})
		if err != nil {
			return err
		}
		// RelativeRank / RelativeShift consistency.
		rel := vec.Vec{1, -1}
		out, ok, err := c.RelativeRank(rel)
		if err != nil || !ok {
			return fmt.Errorf("RelativeRank: %v %v", ok, err)
		}
		in, out2, err := c.RelativeShift(rel)
		if err != nil || out2 != out {
			return fmt.Errorf("RelativeShift out %d vs %d (%v)", out2, out, err)
		}
		// The shift identity: my out-neighbor's in-rank for rel is me.
		coords := c.Coords()
		wantOut, _ := c.Grid().RankDisplace(w.Rank(), rel)
		wantIn, _ := c.Grid().RankDisplace(w.Rank(), rel.Neg())
		if out != wantOut || in != wantIn {
			return fmt.Errorf("coords %v: shift (%d,%d), want (%d,%d)", coords, in, out, wantIn, wantOut)
		}
		// RelativeCoord inverts RelativeRank (canonically).
		back, err := c.RelativeCoord(out)
		if err != nil {
			return err
		}
		r2, ok, err := c.RelativeRank(back)
		if err != nil || !ok || r2 != out {
			return fmt.Errorf("RelativeCoord(%d) = %v, maps back to %d", out, back, r2)
		}
		// NeighborGet format.
		sources, sw, targets, tw := c.NeighborGet()
		if len(sources) != 2 || len(targets) != 2 {
			return fmt.Errorf("NeighborGet lengths %d/%d", len(sources), len(targets))
		}
		if sw[0] != 5 || tw[1] != 7 {
			return fmt.Errorf("weights %v %v", sw, tw)
		}
		if c.NeighborCount() != 2 {
			return fmt.Errorf("NeighborCount = %d", c.NeighborCount())
		}
		// Errors on bad arity.
		if _, _, err := c.RelativeRank(vec.Vec{1}); err == nil {
			return fmt.Errorf("bad arity accepted by RelativeRank")
		}
		if _, _, err := c.RelativeShift(vec.Vec{1, 2, 3}); err == nil {
			return fmt.Errorf("bad arity accepted by RelativeShift")
		}
		if _, err := c.RelativeCoord(99); err == nil {
			return fmt.Errorf("bad rank accepted by RelativeCoord")
		}
		return nil
	})
}

func TestPlanReuse(t *testing.T) {
	// A plan executes correctly many times (persistent-collective usage),
	// and the one-shot entry point reuses the cached plan.
	nbh := mustStencil(t, 2, 3, -1)
	dims := []int{3, 3}
	runWorld(t, 9, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, dims, nil, nbh, nil)
		if err != nil {
			return err
		}
		plan, err := AlltoallInit(c, 2, Combining)
		if err != nil {
			return err
		}
		for iter := 0; iter < 5; iter++ {
			tn := len(nbh)
			send := make([]int, tn*2)
			for i := 0; i < tn; i++ {
				for e := 0; e < 2; e++ {
					send[i*2+e] = encode(w.Rank(), i, e) + iter
				}
			}
			recv := make([]int, tn*2)
			if err := Run(plan, send, recv); err != nil {
				return err
			}
			want := refAlltoall(c.Grid(), nbh, w.Rank(), 2)
			for j := range want {
				want[j] += iter
			}
			if !reflect.DeepEqual(recv, want) {
				return fmt.Errorf("iter %d rank %d: %v != %v", iter, w.Rank(), recv, want)
			}
		}
		return nil
	})
}

func TestPlanAccessors(t *testing.T) {
	nbh := mustStencil(t, 2, 3, -1)
	runWorld(t, 9, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
		if err != nil {
			return err
		}
		p, err := AlltoallInit(c, 1, Combining)
		if err != nil {
			return err
		}
		if p.Rounds() != 4 || p.Volume() != 12 || p.Algorithm() != Combining || p.Op() != OpAlltoall {
			return fmt.Errorf("plan accessors: rounds=%d vol=%d algo=%v op=%v", p.Rounds(), p.Volume(), p.Algorithm(), p.Op())
		}
		tp, err := AllgatherInit(c, 1, Trivial)
		if err != nil {
			return err
		}
		if tp.Rounds() != 8 || tp.Op() != OpAllgather {
			return fmt.Errorf("trivial plan: rounds=%d op=%v", tp.Rounds(), tp.Op())
		}
		return nil
	})
}

func TestPlanBufferLengthValidation(t *testing.T) {
	nbh := mustStencil(t, 2, 3, -1)
	runWorld(t, 9, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
		if err != nil {
			return err
		}
		p, err := AlltoallInit(c, 2, Trivial)
		if err != nil {
			return err
		}
		if err := Run(p, make([]int, 5), make([]int, 18)); err == nil {
			return fmt.Errorf("short send buffer accepted")
		}
		if err := Run(p, make([]int, 18), make([]int, 17)); err == nil {
			return fmt.Errorf("short recv buffer accepted")
		}
		return nil
	})
}

func TestAlltoallArgumentValidation(t *testing.T) {
	nbh := mustStencil(t, 2, 3, -1)
	runWorld(t, 9, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
		if err != nil {
			return err
		}
		if err := Alltoall(c, make([]int, 10), make([]int, 10)); err == nil {
			return fmt.Errorf("non-divisible send length accepted")
		}
		if _, err := AlltoallInit(c, -1, Trivial); err == nil {
			return fmt.Errorf("negative block size accepted")
		}
		return nil
	})
}

func TestDistGraphFromCartComm(t *testing.T) {
	nbh := mustStencil(t, 2, 3, -1)
	runWorld(t, 9, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
		if err != nil {
			return err
		}
		g, err := c.DistGraph()
		if err != nil {
			return err
		}
		in, out, err := g.DistGraphNeighborsCount()
		if err != nil || in != 9 || out != 9 {
			return fmt.Errorf("degrees %d/%d (%v)", in, out, err)
		}
		// The baseline neighborhood alltoall over this graph must agree
		// with the Cartesian alltoall.
		tn := len(nbh)
		send := make([]int, tn)
		for i := range send {
			send[i] = encode(w.Rank(), i, 0)
		}
		recv := make([]int, tn)
		if err := mpi.NeighborAlltoall(g, send, recv); err != nil {
			return err
		}
		want := refAlltoall(c.Grid(), nbh, w.Rank(), 1)
		if !reflect.DeepEqual(recv, want) {
			return fmt.Errorf("baseline recv %v, want %v", recv, want)
		}
		return nil
	})
}

func TestPlanCostIntrospection(t *testing.T) {
	nbh := mustStencil(t, 2, 3, -1)
	runWorld(t, 9, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
		if err != nil {
			return err
		}
		comb, err := AlltoallInit(c, 5, Combining)
		if err != nil {
			return err
		}
		if comb.Messages() != 4 {
			return fmt.Errorf("combining messages = %d, want 4 (=C)", comb.Messages())
		}
		if comb.SendElements() != 12*5 {
			return fmt.Errorf("combining elements = %d, want 60 (=V·m)", comb.SendElements())
		}
		triv, err := AlltoallInit(c, 5, Trivial)
		if err != nil {
			return err
		}
		if triv.Messages() != 8 || triv.SendElements() != 8*5 {
			return fmt.Errorf("trivial cost = %d msgs / %d elems", triv.Messages(), triv.SendElements())
		}
		return nil
	})
}

func TestMeshPlanCostShrinksAtBoundary(t *testing.T) {
	nbh := mustStencil(t, 2, 3, -1)
	dims := []int{4, 4}
	runWorld(t, 16, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, dims, []bool{false, false}, nbh, nil)
		if err != nil {
			return err
		}
		p, err := MeshAlltoallInit(c, 1)
		if err != nil {
			return err
		}
		coords := c.Coords()
		interior := coords[0] > 0 && coords[0] < 3 && coords[1] > 0 && coords[1] < 3
		if interior {
			if p.SendElements() != 12 {
				return fmt.Errorf("interior mesh volume %d, want 12", p.SendElements())
			}
		} else if p.SendElements() >= 12 {
			return fmt.Errorf("boundary mesh volume %d, want < 12", p.SendElements())
		}
		return nil
	})
}

func TestAutoChoosesByCutoffUnderModel(t *testing.T) {
	// Under a cost model, Auto plans resolve per execution: combining for
	// small blocks, trivial past the cut-off. Verify via the executed
	// plan's observable behavior — virtual time close to the explicitly
	// chosen algorithm's.
	nbh := mustStencil(t, 2, 3, -1)
	measure := func(algo Algorithm, m int) float64 {
		var vt float64
		err := mpi.Run(mpi.Config{Procs: 9, Model: netmodel.Hydra(), Seed: 1, Timeout: 30 * time.Second}, func(w *mpi.Comm) error {
			c, err := NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil, WithAlgorithm(algo))
			if err != nil {
				return err
			}
			send := make([]int32, len(nbh)*m)
			recv := make([]int32, len(nbh)*m)
			if err := mpi.Barrier(c.Base()); err != nil {
				return err
			}
			t0 := w.VTime()
			for i := 0; i < 3; i++ {
				if err := Alltoall(c, send, recv); err != nil {
					return err
				}
			}
			el := []float64{w.VTime() - t0}
			if err := mpi.Allreduce(c.Base(), el, el, mpi.MaxOp[float64]); err != nil {
				return err
			}
			if w.Rank() == 0 {
				vt = el[0]
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return vt
	}
	const small, large = 1, 100000 // 4 B vs 400 kB blocks
	if a, c := measure(Auto, small), measure(Combining, small); a != c {
		t.Errorf("Auto at m=%d: %g, combining %g — expected the combining schedule", small, a, c)
	}
	if a, tr := measure(Auto, large), measure(Trivial, large); a != tr {
		t.Errorf("Auto at m=%d: %g, trivial %g — expected the trivial schedule", large, a, tr)
	}
}

func TestAccessorsAndStringers(t *testing.T) {
	if Combining.String() != "combining" || Trivial.String() != "trivial" || Auto.String() != "auto" {
		t.Error("Algorithm names")
	}
	if Algorithm(99).String() == "" {
		t.Error("unknown Algorithm name empty")
	}
	if OpAlltoall.String() != "alltoall" || OpAllgather.String() != "allgather" {
		t.Error("OpKind names")
	}
	if BufSend.String() != "send" || BufRecv.String() != "recv" || BufTemp.String() != "temp" {
		t.Error("BufKind names")
	}
	nbh := mustStencil(t, 2, 3, -1)
	runWorld(t, 9, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil, WithAlgorithm(Trivial))
		if err != nil {
			return err
		}
		if c.Size() != 9 {
			return fmt.Errorf("Size = %d", c.Size())
		}
		if c.DefaultAlgorithm() != Trivial {
			return fmt.Errorf("DefaultAlgorithm = %v", c.DefaultAlgorithm())
		}
		if len(c.Targets()) != 9 || len(c.Sources()) != 9 {
			return fmt.Errorf("Targets/Sources lengths")
		}
		if !c.IsPeriodic() {
			return fmt.Errorf("torus not periodic")
		}
		return nil
	})
}

func TestWithBlockingRoundsOption(t *testing.T) {
	// A combining plan forced to blocking rounds still computes the right
	// answer (the execution-style ablation's correctness side).
	nbh := mustStencil(t, 2, 3, -1)
	runWorld(t, 9, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
		if err != nil {
			return err
		}
		p, err := AlltoallInit(c, 2, Combining, WithBlockingRounds())
		if err != nil {
			return err
		}
		tn := len(nbh)
		send := make([]int, tn*2)
		for i := 0; i < tn; i++ {
			for e := 0; e < 2; e++ {
				send[i*2+e] = encode(w.Rank(), i, e)
			}
		}
		recv := make([]int, tn*2)
		if err := Run(p, send, recv); err != nil {
			return err
		}
		want := refAlltoall(c.Grid(), nbh, w.Rank(), 2)
		if !reflect.DeepEqual(recv, want) {
			return fmt.Errorf("blocking combining: %v != %v", recv, want)
		}
		return nil
	})
}
