package cart

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"cartcc/internal/mpi"
	"cartcc/internal/netmodel"
)

func TestStartNonblockingAlltoall(t *testing.T) {
	nbh := mustStencil(t, 2, 3, -1)
	runWorld(t, 9, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
		if err != nil {
			return err
		}
		plan, err := AlltoallInit(c, 2, Combining)
		if err != nil {
			return err
		}
		tn := len(nbh)
		send := make([]int, tn*2)
		for i := 0; i < tn; i++ {
			for e := 0; e < 2; e++ {
				send[i*2+e] = encode(w.Rank(), i, e)
			}
		}
		recv := make([]int, tn*2)
		h, err := Start(plan, send, recv)
		if err != nil {
			return err
		}
		// Overlap some local "computation".
		sum := 0
		for i := 0; i < 10000; i++ {
			sum += i
		}
		_ = sum
		if err := h.Wait(); err != nil {
			return err
		}
		if err := h.Wait(); err != nil { // second wait returns same result
			return err
		}
		want := refAlltoall(c.Grid(), nbh, w.Rank(), 2)
		if !reflect.DeepEqual(recv, want) {
			return fmt.Errorf("rank %d: %v != %v", w.Rank(), recv, want)
		}
		return nil
	})
}

func TestStartOverlapsManyIterations(t *testing.T) {
	// Repeated start/wait cycles (persistent nonblocking usage).
	nbh := mustStencil(t, 1, 3, -1)
	runWorld(t, 4, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{4}, nil, nbh, nil)
		if err != nil {
			return err
		}
		plan, err := AllgatherInit(c, 1, Trivial)
		if err != nil {
			return err
		}
		for iter := 0; iter < 10; iter++ {
			send := []int{w.Rank()*100 + iter}
			recv := make([]int, 3)
			h, err := Start(plan, send, recv)
			if err != nil {
				return err
			}
			if err := h.Wait(); err != nil {
				return err
			}
			// Block i from source rank s holds s*100+iter.
			for i, rel := range nbh {
				src, _ := c.Grid().RankDisplace(w.Rank(), rel.Neg())
				if recv[i] != src*100+iter {
					return fmt.Errorf("iter %d rank %d block %d: %d", iter, w.Rank(), i, recv[i])
				}
			}
		}
		return nil
	})
}

func TestStartRejectsModelRuns(t *testing.T) {
	nbh := mustStencil(t, 1, 3, -1)
	err := mpi.Run(mpi.Config{Procs: 4, Model: netmodel.Hydra(), Seed: 1, Timeout: 10 * time.Second}, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{4}, nil, nbh, nil)
		if err != nil {
			return err
		}
		plan, err := AlltoallInit(c, 1, Trivial)
		if err != nil {
			return err
		}
		if _, err := Start(plan, make([]int, 3), make([]int, 3)); err == nil {
			return fmt.Errorf("Start accepted a virtual-time run")
		}
		// All ranks must still complete the collective the blocking way so
		// nobody hangs.
		return Run(plan, make([]int, 3), make([]int, 3))
	})
	if err != nil {
		t.Fatal(err)
	}
}
