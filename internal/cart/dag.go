package cart

import (
	"sort"

	"cartcc/internal/datatype"
)

// Block-level dependency DAG over the rounds of a compiled plan — the
// structure behind the pipelined executor (pipeline.go). The barriered
// executor orders rounds by the coarsest possible relation: every round of
// phase k happens-before every round of phase k+1. Most of those orderings
// are incidental; the data only requires that each round's send wait for
// the rounds that *produce* the blocks it forwards, and that each round's
// scatter wait for the operations that still *read* or *write* the extents
// it lands on. buildDAG computes exactly those edges at compile time, so
// execution can overlap rounds of different phases whenever the block flow
// allows it.
//
// Three hazard classes, derived from extent overlap in the shared
// (send, recv, temp) buffer space:
//
//   - RAW (x.recv ∩ y.send, phase(x) < phase(y)): round y forwards a block
//     that round x's receive delivers. y's send must wait for x's receive
//     to complete. This is the producer edge of the ISSUE: rounds whose
//     sends read only the user send buffer have no producers and are
//     barrier-free — they post immediately.
//   - WAR (y.send ∩ x.recv, phase(y) ≤ phase(x), y == x included): round
//     y's send reads extents that round x's receive overwrites. x's
//     scatter must wait until y's send has been posted — posting gathers
//     (or detaches) the payload, after which the source extents are free.
//     Same-phase overlap is WAR, never RAW: the barriered executor's
//     deferred-scatter semantics read the pre-phase state.
//   - WAW (x'.recv ∩ x.recv, x' before x in phase-major order): two
//     receives land on the same extent; the later scatter must follow the
//     earlier, preserving the barriered executor's final contents.
//
// The graph is acyclic by construction: RAW edges point phase-forward,
// WAR and WAW edges gate only the *scatter* event of a round, never its
// send, and a scatter depends only on send posts and phase-earlier (or
// same-phase-earlier) scatters. Within the earliest unfinished phase there
// is always a send with zero producers still pending or a receive whose
// gates have all fired, so the pipelined executor makes progress whenever
// a message can arrive (see pipeline.go for the window argument).

// roundDep is the compiled dependency record of one flat round.
type roundDep struct {
	// phase and idx locate the round in p.phases for error attribution.
	phase, idx int
	// sendDeps is the RAW in-degree of the round's send event: the number
	// of distinct earlier rounds whose receives produce blocks this send
	// forwards. Zero means the send is barrier-free.
	sendDeps int32
	// scatDeps is the WAR+WAW in-degree of the round's scatter event: the
	// number of distinct operations (send posts, earlier scatters) that
	// must happen before the received payload may land in the buffers.
	scatDeps int32
	// rawSucc / wawSucc fire when this round's receive completes: flat
	// indices of sends (rawSucc) and scatters (wawSucc) it unblocks.
	rawSucc []int32
	wawSucc []int32
	// warSucc fires when this round's send is posted: flat indices of
	// scatters it unblocks.
	warSucc []int32
}

// tagBase offsets the per-round Cartesian collective tags away from user
// tag space (the paper's single CARTTAG becomes a tag per (phase, round)
// so out-of-phase messages of the pipelined executor match their own
// receives; the runtime's per-(src,tag) FIFO keeps successive executions
// of one plan apart exactly as it kept successive phases apart before).
const tagBase = 1 << 20

// roundTag returns the tag of round slot `slot` of phase `phase` for a
// neighborhood of t offsets. Slots are positions in the *global* round
// structure of the phase (shared by every rank), assigned before any
// per-rank round dropping, so sender and receiver of a round always agree
// on the tag even when one of them skips other rounds of the phase.
func roundTag(phase, slot, t int) int {
	return tagBase + phase*(t+1) + slot
}

// buildDAG is the shared post-pass of the plan compilers: it flattens the
// phases, computes the hazard edges, and fills p.flat and p.deps. It also
// derives the default receive pre-post window (the largest adjacent-phase
// round sum, so the executor can keep the whole live frontier pre-posted).
// Hazard pairs are found by a bounding-interval sweep (hazardCandidates)
// and confirmed on sorted coalesced extents, so cost scales with the
// candidate count, not the square of the round count — compile-time only,
// like phaseConflicts.
func buildDAG(p *Plan) {
	total := 0
	for _, rounds := range p.phases {
		total += len(rounds)
	}
	p.flat = make([]*execRound, 0, total)
	p.deps = make([]roundDep, 0, total)
	for pi := range p.phases {
		for ri := range p.phases[pi] {
			p.flat = append(p.flat, &p.phases[pi][ri])
			p.deps = append(p.deps, roundDep{phase: pi, idx: ri})
		}
	}
	// Flatten every round's composites into sorted, coalesced extent lists
	// and per-buffer bounding summaries once: candidate discovery works on
	// the summaries, confirmation on the extent lists (d≥5 combining
	// rounds carry thousands of blocks; all-pairs block comparison
	// dominated whole benchmark runs).
	recvExt := make([][]bufExtent, total)
	sendExt := make([][]bufExtent, total)
	recvSum := make([]extSummary, total)
	sendSum := make([]extSummary, total)
	for i, r := range p.flat {
		if r.recvFrom != ProcNull {
			recvExt[i] = flattenExtents(&r.recv, nil)
			recvSum[i] = summarizeExtents(recvExt[i])
		}
		if r.sendTo != ProcNull {
			sendExt[i] = flattenExtents(&r.send, nil)
			sendSum[i] = summarizeExtents(sendExt[i])
		}
	}
	// Candidate hazard pairs come from a bounding-interval sweep per
	// buffer rather than an all-pairs scan: a direct d=5 n=5 plan has
	// thousands of rounds whose receives land on pairwise-disjoint slots
	// and whose sends read only the user send buffer — the sweep emits
	// zero candidates for it, where the quadratic scan burned seconds per
	// compile. Only candidates take the exact extent check.
	sendCands, wawCands := hazardCandidates(recvSum, sendSum)
	for _, c := range sendCands {
		x, y := int(c.x), int(c.y)
		if !extentsOverlap(recvExt[x], sendExt[y]) {
			continue
		}
		if p.deps[x].phase < p.deps[y].phase {
			// RAW: x produces a block y forwards.
			p.deps[y].sendDeps++
			p.deps[x].rawSucc = append(p.deps[x].rawSucc, int32(y))
		} else {
			// WAR (y == x included): y reads what x overwrites.
			p.deps[x].scatDeps++
			p.deps[y].warSucc = append(p.deps[y].warSucc, int32(x))
		}
	}
	for _, c := range wawCands {
		// x is the later receive in flat (phase-major) order, y the
		// earlier: the later scatter must follow the earlier.
		x, y := int(c.x), int(c.y)
		if extentsOverlap(recvExt[x], recvExt[y]) {
			p.deps[x].scatDeps++
			p.deps[y].wawSucc = append(p.deps[y].wawSucc, int32(x))
		}
	}
	if p.window <= 0 {
		p.window = defaultWindow(p)
	}
}

// defaultWindow sizes the receive pre-post window to cover the largest
// sum of two adjacent phases' rounds (minimum 4): deep enough that while
// one phase drains, every receive of the next is already posted and PR 2's
// match-time-consume single-copy path keeps hitting; bounded so a plan
// with thousands of rounds does not pin thousands of posted receives.
func defaultWindow(p *Plan) int {
	w := 4
	for i := range p.phases {
		sum := len(p.phases[i])
		if i+1 < len(p.phases) {
			sum += len(p.phases[i+1])
		}
		if sum > w {
			w = sum
		}
	}
	return w
}

// bufExtent is a flattened, buffer-qualified half-open element interval
// [off, end) — the unit of the compile-time overlap passes.
type bufExtent struct {
	buf, off, end int
}

// extSummary is a per-buffer bounding range of an extent list (the
// schedule executor's buffer selectors are 0 = send, 1 = recv, 2 = temp).
// Ranges are half-open; an untouched buffer has off > end. Pairs whose
// summaries are disjoint — the vast majority in direct schedules, where
// sends read only the send buffer and receives land on distinct recv
// slots — skip the extent sweep entirely.
type extSummary [3]struct{ off, end int }

// summarizeExtents computes the per-buffer bounding ranges of a
// normalized extent list.
func summarizeExtents(exts []bufExtent) extSummary {
	var s extSummary
	for k := range s {
		s[k].off = 1<<63 - 1
	}
	for _, e := range exts {
		if e.off < s[e.buf].off {
			s[e.buf].off = e.off
		}
		if e.end > s[e.buf].end {
			s[e.buf].end = e.end
		}
	}
	return s
}

// hazardCand is a candidate hazard pair of flat round indices.
type hazardCand struct{ x, y int32 }

// hazardCandidates sweeps the per-buffer bounding ranges of every round's
// receive and send extents and returns the pairs whose ranges intersect:
// (receive x, send y) candidates for RAW/WAR classification and (later
// receive x, earlier receive y) candidates for WAW. Bounding disjointness
// proves extent disjointness, so non-candidates need no exact check, and
// the sweep emits nothing at all for a direct schedule (sends read only
// the send buffer, receives land on disjoint slots) — where an all-pairs
// scan over its thousands of rounds burned seconds per plan compile.
// Both lists are deduplicated (a pair can intersect on more than one
// buffer) and sorted by (x, y) so edge appends are deterministic and
// match the order the quadratic scan produced.
func hazardCandidates(recvSum, sendSum []extSummary) (sendCands, wawCands []hazardCand) {
	type item struct {
		off, end int
		idx      int32
		recv     bool
	}
	var perBuf [3][]item
	for i := range recvSum {
		for k := 0; k < 3; k++ {
			if s := recvSum[i][k]; s.off < s.end {
				perBuf[k] = append(perBuf[k], item{s.off, s.end, int32(i), true})
			}
			if s := sendSum[i][k]; s.off < s.end {
				perBuf[k] = append(perBuf[k], item{s.off, s.end, int32(i), false})
			}
		}
	}
	for k := 0; k < 3; k++ {
		items := perBuf[k]
		sort.Slice(items, func(i, j int) bool { return items[i].off < items[j].off })
		var actR, actS []item
		for _, it := range items {
			// Expire actives ending at or before this range's start: with
			// items sorted by off, a surviving active overlaps it.
			nr := actR[:0]
			for _, a := range actR {
				if a.end > it.off {
					nr = append(nr, a)
				}
			}
			actR = nr
			ns := actS[:0]
			for _, a := range actS {
				if a.end > it.off {
					ns = append(ns, a)
				}
			}
			actS = ns
			if it.recv {
				for _, a := range actS {
					sendCands = append(sendCands, hazardCand{it.idx, a.idx})
				}
				for _, a := range actR {
					x, y := it.idx, a.idx
					if x < y {
						x, y = y, x
					}
					wawCands = append(wawCands, hazardCand{x, y})
				}
				actR = append(actR, it)
			} else {
				for _, a := range actR {
					sendCands = append(sendCands, hazardCand{a.idx, it.idx})
				}
				actS = append(actS, it)
			}
		}
	}
	return dedupeCands(sendCands), dedupeCands(wawCands)
}

// dedupeCands sorts candidate pairs by (x, y) and removes duplicates.
func dedupeCands(cs []hazardCand) []hazardCand {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].x != cs[j].x {
			return cs[i].x < cs[j].x
		}
		return cs[i].y < cs[j].y
	})
	out := cs[:0]
	for _, c := range cs {
		if n := len(out); n > 0 && out[n-1] == c {
			continue
		}
		out = append(out, c)
	}
	return out
}

// appendExtents appends every (buffer, block) of the composite to out as
// raw extents. Callers normalize before sweeping.
func appendExtents(out []bufExtent, c *datatype.Composite) []bufExtent {
	for _, p := range c.Parts() {
		for _, b := range p.L.Blocks() {
			out = append(out, bufExtent{buf: p.Buf, off: b.Off, end: b.Off + b.Count})
		}
	}
	return out
}

// normalizeExtents sorts by (buf, off) and coalesces touching or
// overlapping runs in place. Coalescing never changes any overlap answer
// and shrinks combining-schedule lists drastically (packed blocks are
// mostly contiguous).
func normalizeExtents(out []bufExtent) []bufExtent {
	sort.Slice(out, func(i, j int) bool {
		if out[i].buf != out[j].buf {
			return out[i].buf < out[j].buf
		}
		return out[i].off < out[j].off
	})
	merged := out[:0]
	for _, e := range out {
		if n := len(merged); n > 0 && merged[n-1].buf == e.buf && e.off <= merged[n-1].end {
			if e.end > merged[n-1].end {
				merged[n-1].end = e.end
			}
			continue
		}
		merged = append(merged, e)
	}
	return merged
}

// flattenExtents collapses a composite into a sorted, coalesced extent
// list, reusing out's backing storage when it can.
func flattenExtents(c *datatype.Composite, out []bufExtent) []bufExtent {
	return normalizeExtents(appendExtents(out[:0], c))
}

// extentsOverlap reports whether two normalized extent lists share any
// element of any buffer: a linear two-pointer sweep.
func extentsOverlap(a, b []bufExtent) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ea, eb := &a[i], &b[j]
		if ea.buf != eb.buf {
			if ea.buf < eb.buf {
				i++
			} else {
				j++
			}
			continue
		}
		if ea.off < eb.end && eb.off < ea.end {
			return true
		}
		if ea.end <= eb.end {
			i++
		} else {
			j++
		}
	}
	return false
}
