package cart

import (
	"sync"
	"sync/atomic"
	"time"

	"cartcc/internal/mpi"
)

// The per-world progress engine behind Start/IcartAlltoall/IcartAllgather.
// The hot path is inline: Start posts the execution's first receive window
// and its barrier-free sends on the caller's goroutine — the messages are
// on the wire before Start returns, with no scheduler handoff on the
// critical path — and attaches the receives to a thread-safe completion
// sink (mpi.CompletionSink). Progress from there on is driven by whoever
// holds the worker's drive lock:
//
//   - a resident worker goroutine parks on the sink and drives completion
//     batches while the caller computes (the overlap Start exists for);
//   - Future.Wait helps: a waiter that can take the drive lock drives
//     batches itself, so a commit-then-wait cycle completes without ever
//     switching goroutines, and the latency of an async collective tracks
//     the synchronous executor's.
//
// Multiple collectives on one communicator interleave: each committed
// execution gets a disjoint tag block (future sequence × asyncTagSpan), so
// concurrent executions — even of the same plan — never match each
// other's messages, and one drive batch drains completions of all of them.
// Thousands of worlds run engines independently: all engine state hangs
// off the communicator, there is no global lock, and an idle engine has no
// goroutine at all — workers exit when their last future retires and
// respawn on the next commit, so idle tenants cost two empty structs.
//
// Fairness: a drive batch processes completion events in arrival order and
// refills each touched execution's window once per batch, so a large
// collective cannot monopolize a batch; executions of one plan are pinned
// to one worker (plan scratch stays on one drive lock), different plans
// spread round-robin across the pool.
//
// Failure: an abort fails every in-flight future of the worker with the
// executor's typed, attributed error; an epoch bump or peer crash poisons
// the engine's posted receives exactly as it poisons synchronous ones
// (same context, same epoch floor), so in-flight futures fail with the
// same typed errors — they never deadlock. The watchdog is engine-side: a
// parked resident whose timeout fires with no progress since it parked
// declares deadlock; one that merely parked through other goroutines'
// progress re-arms.
const (
	// asyncTagBase offsets engine-execution tags above the synchronous
	// executors' round-tag plane (dag.go's tagBase) and user tag space.
	// The async tag plane needs int to hold values ≥ 2^32 (tags thread
	// through the mailbox as int), so the progress engine requires a
	// 64-bit platform; the typed declaration turns what would be a
	// scatter of untyped-constant overflow errors on GOARCH=386/arm into
	// one named compile-time failure at this line.
	asyncTagBase int = 1 << 32
	// asyncTagSpan is the tag block one committed execution owns: round
	// tags live in [tagBase, tagBase+asyncTagSpan) (guarded at Start), so
	// execution seq maps them to a disjoint block.
	asyncTagSpan = 1 << 22
	// ownerShift packs a worker-local slot id above the flat round index
	// in completion tokens; plans are bounded to 1<<ownerShift rounds at
	// Start.
	ownerShift = 20
	ownerMask  = 1<<ownerShift - 1
	// wakeToken is the token the commit and cancel paths post to unpark a
	// driver; slot ids start at 1 so no completion token collides.
	wakeToken = 0
	// asyncWorkers is the per-engine worker pool size.
	asyncWorkers = 2
)

// asyncIdleLinger is how long an idle resident parks for the next commit
// before exiting: long enough that a steady Start/Wait stream reuses one
// goroutine instead of respawning per operation, short enough that an
// idle tenant sheds its goroutine promptly after its last future retires.
const asyncIdleLinger = time.Millisecond

// committed is one schedule execution the engine owns, from registration
// to retirement. The concrete type is asyncExec[T] (future.go), which has
// already posted its first window inline at Start; the interface erases T
// so a driver can interleave executions of different element types.
type committed interface {
	// slotID returns the worker slot reserved for this execution at
	// commit.
	slotID() int
	// onArrived marks flat round i's receive complete and retires what
	// the DAG allows.
	onArrived(i int) error
	// advance refills the receive window and posts newly-ready sends
	// after a batch of arrivals.
	advance() error
	// done reports whether every receive retired and every send posted.
	done() bool
	// finish runs the local copies and completes the future successfully.
	finish()
	// fail drains posted receives and completes the future with err;
	// fromWaitSet attributes a set-level error to the earliest in-flight
	// round first.
	fail(err error, fromWaitSet bool)
	// fut returns the execution's future.
	fut() *Future
}

// engine is a communicator's progress engine. Created lazily at the first
// Start; commit-side state (nextSeq, nextWkr) is touched only by the
// communicator's owning goroutine, like every other cart operation.
type engine struct {
	c *Comm
	// nextSeq is the next future sequence (also the tag-block index).
	// Commits allocate from one goroutine; it is atomic only so debug
	// snapshots can read it from foreign goroutines without a race.
	nextSeq atomic.Int64
	nextWkr int
	// inflight counts committed, unretired futures across the pool; the
	// peak feeds the cart.async.inflight gauge.
	inflight atomic.Int64
	// crashed holds the typed error of this rank's injected crash once one
	// fires on an engine goroutine: a crashed rank's engine is dead — every
	// worker loop (including ones spawned by later commits) fails its work
	// and exits instead of posting operations on a dead rank's behalf.
	crashed atomic.Value // error
	workers [asyncWorkers]*engineWorker
}

func (e *engine) setCrashed(err error) { e.crashed.Store(err) }

// crashErr returns the rank's injected-crash error, nil while alive.
func (e *engine) crashErr() error {
	if v := e.crashed.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// wakeOthers nudges every other worker after a crash so parked siblings
// observe the engine's death instead of waiting out the watchdog.
func (e *engine) wakeOthers(self *engineWorker) {
	for _, w := range e.workers {
		if w != self {
			w.wake()
		}
	}
}

func newEngine(c *Comm) *engine {
	e := &engine{c: c}
	for i := range e.workers {
		e.workers[i] = &engineWorker{
			eng:      e,
			sink:     mpi.NewCompletionSink(c.comm, 8),
			nextSlot: 1,
		}
	}
	return e
}

// engine returns the communicator's progress engine, creating it on first
// use. Caller-goroutine only.
func (c *Comm) engine() *engine {
	if c.eng == nil {
		c.eng = newEngine(c)
	}
	return c.eng
}

// workerFor pins a plan to a worker: all executions of one plan share its
// scratch pool, so they stay under one drive lock; distinct plans
// round-robin across the pool. The pinning lives on the plan itself
// (commit-side, single-goroutine like nextWkr), so the steady-state Start
// path costs a field read where it used to cost a map lookup — the last
// per-execution map in the drive loop's bookkeeping.
func (e *engine) workerFor(p *Plan) *engineWorker {
	if p.engWkr == 0 {
		p.engWkr = e.nextWkr%asyncWorkers + 1
		e.nextWkr++
	}
	return e.workers[p.engWkr-1]
}

// engineWorker drives the committed executions assigned to it. Commits are
// inline (Start posts on the caller and registers the begun execution
// here); the driver role — admitting registrations, delivering completion
// tokens, advancing executions — is serialized by driveMu and taken by
// whoever can: the resident loop goroutine (at most one runs per worker,
// the running flag under mu) or a Future.Wait helping out. The resident
// exits when its last execution retires with nothing queued, so an idle
// world carries no goroutine.
type engineWorker struct {
	eng  *engine
	sink *mpi.CompletionSink

	// waiters counts Future.Wait calls currently helping on this worker.
	// While any are present the waiters own the sink: the resident stays
	// off it (a linger-granularity doze instead of a sink park), so
	// completion wakes reach the goroutine that will consume the result —
	// no final-handoff context switch, and no per-operation resident
	// scheduling, on the Wait path.
	waiters atomic.Int32

	// mu guards the commit side: the registration queue, the resident
	// liveness flag, slot reservation, and the committedTo watermark.
	mu       sync.Mutex
	pending  []committed // begun inline, not yet admitted by a driver
	running  bool
	nextSlot int // next slot id to reserve (slot order == commit order)
	// pendingN mirrors len(pending) and ctA mirrors committedTo (both
	// written under mu): the drive-side admit reads them lock-free on its
	// empty fast path, so a batch with no fresh commits — every batch of a
	// steady Start/Wait cycle but the first — skips the commit mutex. A
	// stale ctA only widens the orphan-stash window; orphans are
	// re-delivered by the next batch regardless.
	pendingN atomic.Int32
	ctA      atomic.Int64
	// cancelReq is set by Future.Cancel so reapCancels scans the slot
	// table only when a cancellation is actually pending.
	cancelReq atomic.Bool
	// committedTo is the highest slot id whose commit has concluded —
	// registered in pending, or settled inline (begin failed / nothing to
	// do). Completion tokens for slots above it belong to a commit still
	// in the caller's hands (between attach and register) and are stashed
	// as orphans; tokens at or below it for slots missing from the table
	// are stale (the execution already settled) and are dropped.
	committedTo int

	// driveMu serializes the driver role. Everything below it is
	// driver-only state.
	driveMu  sync.Mutex
	slots    []slotEnt // dense, unordered; linear scan beats hashing at in-flight sizes
	orphans  []int     // completion tokens awaiting their slot's registration
	orphScr  []int
	admitScr []committed
	inbox    []int
	touched  []int
	// progress counts admissions, deliveries and retirements; the
	// resident compares it across a watchdog timeout to distinguish a
	// stalled engine (deadlock) from one whose work was driven by helpers
	// while it parked.
	progress uint64
}

// slotEnt is one live execution in a worker's slot table. touched marks
// the slot as already queued for this batch's advance pass, so deliver
// dedups with a flag write instead of scanning the touched list per token
// — with a deep window, one execution's tokens dominate a batch and the
// scan was quadratic in batch size.
type slotEnt struct {
	id      int
	ex      committed
	touched bool
}

// findSlot resolves a slot id, nil when the execution already settled.
func (w *engineWorker) findSlot(id int) committed {
	for _, s := range w.slots {
		if s.id == id {
			return s.ex
		}
	}
	return nil
}

// findSlotIdx resolves a slot id to its table index, -1 when settled.
func (w *engineWorker) findSlotIdx(id int) int {
	for j := range w.slots {
		if w.slots[j].id == id {
			return j
		}
	}
	return -1
}

// dropSlot swap-removes a slot table entry.
func (w *engineWorker) dropSlot(id int) {
	for j := range w.slots {
		if w.slots[j].id == id {
			last := len(w.slots) - 1
			w.slots[j] = w.slots[last]
			w.slots[last] = slotEnt{}
			w.slots = w.slots[:last]
			return
		}
	}
}

// commitSlot reserves the next slot id for an inline commit. The single
// committer (the communicator's owning goroutine) reserves and registers
// in Start order, so slot order equals registration order — the invariant
// behind the orphan-token classification. nextSlot is touched by that one
// goroutine only, so reservation needs no lock.
func (w *engineWorker) commitSlot() int {
	slot := w.nextSlot
	w.nextSlot++
	return slot
}

// register hands a begun execution to the driver side, spawning a
// resident if none is live. A live resident is deliberately NOT woken:
// the execution's first window and barrier-free sends are already on the
// wire (begin ran inline), so nothing is urgent — the pending entry is
// admitted by the next drive batch, which the execution's own completion
// tokens, a waiter, or the resident's linger tick (≤1ms away) trigger.
// Keeping the commit quiet is what keeps the resident unscheduled on the
// Start/Wait hot path.
func (w *engineWorker) register(ex committed) {
	w.mu.Lock()
	// Direct admission: if no driver holds the drive lock right now, the
	// committer installs the execution in the slot table itself — no
	// pending-queue round trip, and the next drive batch keeps its
	// lock-free empty-admit fast path. TryLock under mu is safe (it never
	// blocks, so the mu→driveMu order cannot deadlock with drivers taking
	// mu under driveMu). A freshly-created future has no external
	// reference yet, so no cancelled check is needed here — Cancel can
	// only be called after Start returns.
	direct := w.driveMu.TryLock()
	if !direct {
		// A driver may be mid-batch: publish the pending entry (and
		// pendingN) BEFORE bumping the ctA watermark, mirrored by admit()'s
		// fast path loading ctA before pendingN. A driver that observes
		// pendingN == 0 is then guaranteed a ctA snapshot predating this
		// registration, so this execution's completion tokens classify as
		// orphans (stashed, redelivered next batch) — never as stale
		// (dropped), which would lose the completion for good.
		w.pending = append(w.pending, ex)
		w.pendingN.Store(int32(len(w.pending)))
	}
	w.committedTo = ex.slotID()
	w.ctA.Store(int64(w.committedTo))
	spawn := !w.running
	w.running = true
	w.mu.Unlock()
	if direct {
		w.slots = append(w.slots, slotEnt{id: ex.slotID(), ex: ex})
		w.progress++
		w.driveMu.Unlock()
	}
	if spawn {
		go w.loop()
	}
}

// settleSlot concludes a commit that never registered: the execution
// settled inline (begin failed, or the plan had nothing to do). The
// watermark bump reclassifies any tokens its drained receives posted from
// orphans to stale, and the wake lets a parked resident drop them.
func (w *engineWorker) settleSlot(slot int) {
	w.mu.Lock()
	w.committedTo = slot
	w.ctA.Store(int64(slot))
	w.mu.Unlock()
	w.sink.Post(wakeToken)
}

// wake nudges the resident (cancel requests). A stale token to an exited
// worker is drained and skipped by the next incarnation.
func (w *engineWorker) wake() {
	w.mu.Lock()
	running := w.running
	w.mu.Unlock()
	if running {
		w.sink.Post(wakeToken)
	}
}

// loop is the resident driver: drive a batch, park on the sink, repeat;
// exit when idle. An injected rank crash unwinds whatever posting path
// triggered it as a panic (the simulated process death); when that path is
// the resident's, the recovery converts it into typed failures of the
// worker's in-flight futures — driveMu is released by the deferred unlock
// on the way up, so the recovery can retake it and sees consistent state.
func (w *engineWorker) loop() {
	defer func() {
		if r := recover(); r != nil {
			err := w.eng.c.comm.RecoverCrash(r)
			if err == nil {
				panic(r)
			}
			w.eng.setCrashed(err)
			w.crashExit(err)
			w.eng.wakeOthers(w)
		}
	}()
	stole := false // last sink park may have consumed a wake level
	for {
		if err := w.eng.crashErr(); err != nil {
			w.crashExit(err)
			return
		}
		if w.waiters.Load() > 0 {
			// A waiter is driving; it owns the sink, liveness and failure
			// delivery. If this goroutine's last sink park consumed a
			// completion wake the waiter needs (both were parked when the
			// waiter arrived), hand the level back — exactly once, not per
			// doze tick: a perpetual handback would re-wake the waiter's
			// park every tick and mask its watchdog timeout, disabling
			// deadlock detection. No handback signal exists in the other
			// direction, so leaving waiters cost nothing; the resident
			// re-takes the sink within one doze tick of the last exit.
			if stole {
				w.sink.Wake()
				stole = false
			}
			time.Sleep(asyncIdleLinger)
			continue
		}
		arm, prog := w.residentBatch()
		if !arm {
			// Idle: linger briefly for the next commit, then exit.
			timedOut, err := w.sink.ParkFor(asyncIdleLinger)
			if err != nil {
				w.abortAll(err)
				if w.tryExit() {
					return
				}
				continue
			}
			stole = !timedOut
			if timedOut && w.tryExit() {
				return
			}
			continue
		}
		timedOut, err := w.sink.Park(true)
		if err != nil {
			w.abortAll(err)
			if w.tryExit() {
				return
			}
			continue
		}
		stole = !timedOut
		if timedOut {
			w.watchdog(prog)
		}
	}
}

// residentBatch drives one batch and snapshots the park decision inputs:
// whether work is in flight (arm the watchdog) and the progress counter
// to compare against after a timeout.
func (w *engineWorker) residentBatch() (arm bool, prog uint64) {
	w.driveMu.Lock()
	defer w.driveMu.Unlock()
	w.drive()
	arm = len(w.slots) > 0 || len(w.orphans) > 0
	prog = w.progress
	return arm, prog
}

// abortAll fails the worker's work after an abort-level Park error. One
// more drive first: completions that raced the abort carry typed poisons,
// which beat the generic cascade error.
func (w *engineWorker) abortAll(err error) {
	w.driveMu.Lock()
	defer w.driveMu.Unlock()
	w.drive()
	w.failAll(err)
}

// watchdog handles a Park timeout: progress since the resident parked
// means helpers (or a raced batch) moved the engine — re-arm and park
// again; no progress with work in flight is a deadlock.
func (w *engineWorker) watchdog(parkedAt uint64) {
	w.driveMu.Lock()
	defer w.driveMu.Unlock()
	if w.progress != parkedAt || len(w.slots)+len(w.orphans) == 0 {
		return
	}
	err := w.sink.Deadlock(len(w.slots))
	w.failAll(err)
}

// crashExit fails everything the worker owns after an injected crash of
// its rank and retires the loop. Draining posts no further operations
// (Cancel and Wait are not op boundaries), so the dead rank's fault
// trigger cannot re-fire.
func (w *engineWorker) crashExit(err error) {
	w.driveMu.Lock()
	w.failAll(err)
	w.orphans = w.orphans[:0]
	w.driveMu.Unlock()
	for {
		w.mu.Lock()
		w.admitScr = append(w.admitScr[:0], w.pending...)
		clear(w.pending)
		w.pending = w.pending[:0]
		w.pendingN.Store(0)
		done := len(w.admitScr) == 0
		if done {
			w.running = false
		}
		w.mu.Unlock()
		if done {
			return
		}
		for _, ex := range w.admitScr {
			ex.fail(err, false)
		}
	}
}

// helpDrive is the waiter-side entry: drive one batch under the already
// TryLock-ed drive lock and snapshot the progress counter for the
// waiter's watchdog. Never called on a crashed engine (the caller
// checks); the deferred unlock releases the lock even when an injected
// crash unwinds a posting path.
func (w *engineWorker) helpDrive() (prog uint64) {
	defer w.driveMu.Unlock()
	w.drive()
	return w.progress
}

// drive runs one progress batch under driveMu: admit registrations, reap
// cancellations, deliver stashed orphans plus everything queued on the
// sink, then advance each touched execution once — window refill and
// newly-ready sends — so progress per batch is bounded per execution and
// arrival order decides service order.
func (w *engineWorker) drive() {
	ct := w.admit()
	w.reapCancels()
	w.touched = w.touched[:0]
	if len(w.orphans) > 0 {
		w.orphScr = append(w.orphScr[:0], w.orphans...)
		w.orphans = w.orphans[:0]
		for _, tok := range w.orphScr {
			w.deliver(tok, ct)
		}
	}
	// Drain-deliver-advance until the sink is momentarily dry: tokens
	// posted while a batch advances (peers matching this execution's
	// receives during its own copies) are served in the same batch, like
	// a Waitsome loop that re-drains before it ever parks. Each pass
	// advances a touched execution at most once, so fairness per pass is
	// preserved, and every pass consumes tokens the previous one could
	// not have seen, so the loop terminates with the in-flight work.
	for {
		w.inbox = w.sink.TryDrain(w.inbox[:0])
		if len(w.inbox) == 0 && len(w.touched) == 0 {
			return
		}
		for _, tok := range w.inbox {
			w.deliver(tok, ct)
		}
		for _, slot := range w.touched {
			j := w.findSlotIdx(slot)
			if j < 0 {
				continue
			}
			w.slots[j].touched = false
			ex := w.slots[j].ex
			if err := ex.advance(); err != nil {
				w.retire(slot, ex, err, false)
				continue
			}
			if ex.done() {
				w.retire(slot, ex, nil, false)
			}
		}
		w.touched = w.touched[:0]
	}
}

// admit installs registered executions in the slot table and returns the
// committedTo watermark for this batch's token classification. Their
// first window was posted inline at commit; a future cancelled before
// admission is failed here (its receives are posted and must drain).
func (w *engineWorker) admit() int {
	// Load ctA BEFORE pendingN (register stores them in the opposite
	// order): pendingN == 0 then proves the ctA snapshot predates any
	// registration not yet visible here, so tokens of such a registration
	// stay above the watermark and stash as orphans. The reverse order
	// could pair a fresh watermark with an unadmitted slot and drop its
	// tokens as stale. A stale ctA is safe — it only widens the orphan
	// window by one batch.
	ct := int(w.ctA.Load())
	if w.pendingN.Load() == 0 {
		// Nothing registered since the last batch: skip the commit mutex.
		return ct
	}
	w.mu.Lock()
	w.admitScr = append(w.admitScr[:0], w.pending...)
	clear(w.pending)
	w.pending = w.pending[:0]
	w.pendingN.Store(0)
	ct = w.committedTo
	w.mu.Unlock()
	for _, ex := range w.admitScr {
		slot := ex.slotID()
		w.slots = append(w.slots, slotEnt{id: slot, ex: ex})
		w.progress++
		if f := ex.fut(); f.cancelled.Load() {
			w.retire(slot, ex, f.cancelErr(), false)
		}
	}
	return ct
}

// reapCancels fails running executions whose future requested
// cancellation.
func (w *engineWorker) reapCancels() {
	if !w.cancelReq.Swap(false) {
		return
	}
	for j := len(w.slots) - 1; j >= 0; j-- {
		s := w.slots[j]
		if s.ex.fut().cancelled.Load() {
			w.retire(s.id, s.ex, s.ex.fut().cancelErr(), false)
		}
	}
}

// deliver routes one completion token: arrivals mark their round and
// retire what the DAG allows; tokens for slots not yet registered are
// stashed as orphans, tokens for settled slots are dropped.
func (w *engineWorker) deliver(tok, committedTo int) {
	if tok == wakeToken {
		return
	}
	slot, i := tok>>ownerShift, tok&ownerMask
	j := w.findSlotIdx(slot)
	if j < 0 {
		if slot > committedTo {
			// Posted between an inline begin and its register; the commit
			// concludes momentarily and the next batch finds the slot.
			w.orphans = append(w.orphans, tok)
		}
		return
	}
	ex := w.slots[j].ex
	w.progress++
	if err := ex.onArrived(i); err != nil {
		w.retire(slot, ex, err, false)
		return
	}
	if !w.slots[j].touched {
		w.slots[j].touched = true
		w.touched = append(w.touched, slot)
	}
}

// tryExit ends the resident when no execution is live and nothing is
// queued. The pending check and the running hand-back share the mutex
// with register, so a commit racing the exit either lands in pending
// (seen by the next drive) or observes running == false and spawns a
// fresh loop. Orphan tokens count as live: their commit is about to
// register.
func (w *engineWorker) tryExit() bool {
	w.driveMu.Lock()
	defer w.driveMu.Unlock()
	if len(w.slots) > 0 || len(w.orphans) > 0 {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.pending) > 0 {
		return false
	}
	w.running = false
	return true
}

// retire removes the execution from the slot table and completes its
// future.
func (w *engineWorker) retire(slot int, ex committed, err error, fromWaitSet bool) {
	w.dropSlot(slot)
	w.progress++
	if err != nil {
		ex.fail(err, fromWaitSet)
	} else {
		ex.finish()
	}
}

// failAll fails every in-flight execution after an engine-level error
// (abort, suspected deadlock, crash): each gets the attributed, typed
// error and its posted receives are drained, so no future is left
// hanging.
func (w *engineWorker) failAll(err error) {
	for len(w.slots) > 0 {
		s := w.slots[len(w.slots)-1]
		w.retire(s.id, s.ex, err, true)
	}
}
