package cart

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"cartcc/internal/datatype"
	"cartcc/internal/mpi"
	"cartcc/internal/trace"
	"cartcc/internal/vec"
)

// planFor compiles one plan per rank for (dims, periods, nbh, op) with the
// combining algorithm and returns them, indexed by rank. The plans are
// only inspected/simulated after mpi.Run joins, which provides the
// happens-before edge.
func plansFor(t *testing.T, dims []int, periods []bool, nbh vec.Neighborhood, op OpKind, m int) []*Plan {
	t.Helper()
	plans := make([]*Plan, gridSize(dims))
	err := mpi.Run(mpi.Config{Procs: len(plans), Timeout: 30 * time.Second}, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, dims, periods, nbh, nil, WithAlgorithm(Combining))
		if err != nil {
			return err
		}
		var p *Plan
		if op == OpAlltoall {
			p, err = AlltoallInit(c, m, Combining)
		} else {
			p, err = AllgatherInit(c, m, Combining)
		}
		if err != nil {
			return err
		}
		plans[w.Rank()] = p
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return plans
}

// TestDAGInDegrees pins the compiled dependency structure of the torus
// combining alltoall against hand-computed expectations: per phase, the
// RAW in-degree (producer count) of every round's send, and the resulting
// barrier-free round set. On a torus every rank compiles the same
// schedule, so rank 0 stands for all.
func TestDAGInDegrees(t *testing.T) {
	cases := []struct {
		name string
		dims []int
		d, r int
		m    int
		// sendDeps[k][i] is the expected RAW in-degree of round i of
		// phase k. A phase-k round forwards blocks with any combination
		// of earlier-dimension coordinates, so its producers are exactly
		// the rounds of every earlier phase: 2r per phase for a full
		// Moore stencil.
		sendDeps [][]int32
	}{
		{name: "1d-3pt", dims: []int{4}, d: 1, r: 1, m: 2,
			sendDeps: [][]int32{{0, 0}}},
		{name: "2d-9pt", dims: []int{4, 4}, d: 2, r: 1, m: 2,
			sendDeps: [][]int32{{0, 0}, {2, 2}}},
		{name: "3d-27pt", dims: []int{3, 3, 3}, d: 3, r: 1, m: 1,
			sendDeps: [][]int32{{0, 0}, {2, 2}, {4, 4}}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			nbh, err := vec.Moore(tc.d, tc.r)
			if err != nil {
				t.Fatal(err)
			}
			p := plansFor(t, tc.dims, nil, nbh, OpAlltoall, tc.m)[0]
			got := make([][]int32, len(p.phases))
			var barrierFree, wantFree []int
			for fi, dep := range p.deps {
				for len(got) <= dep.phase {
					got = append(got, nil)
				}
				got[dep.phase] = append(got[dep.phase], dep.sendDeps)
				if p.flat[fi].sendTo != ProcNull && dep.sendDeps == 0 {
					barrierFree = append(barrierFree, fi)
				}
				if tc.sendDeps[dep.phase][dep.idx] == 0 {
					wantFree = append(wantFree, fi)
				}
			}
			if !reflect.DeepEqual(got, tc.sendDeps) {
				t.Errorf("send in-degrees = %v, want %v", got, tc.sendDeps)
			}
			if !reflect.DeepEqual(barrierFree, wantFree) {
				t.Errorf("barrier-free rounds = %v, want %v", barrierFree, wantFree)
			}
		})
	}
}

// TestDAGStarStencilAllBarrierFree: every offset of a Star (axis) stencil
// has exactly one non-zero coordinate, so every block travels one hop and
// every send reads only the user send buffer — the whole plan must be
// barrier-free, the configuration with maximal pipelining headroom.
func TestDAGStarStencilAllBarrierFree(t *testing.T) {
	nbh, err := vec.Star(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := plansFor(t, []int{5, 5}, nil, nbh, OpAlltoall, 2)[0]
	for i, dep := range p.deps {
		if p.flat[i].sendTo != ProcNull && dep.sendDeps != 0 {
			t.Errorf("round %d (phase %d idx %d): sendDeps = %d, want 0", i, dep.phase, dep.idx, dep.sendDeps)
		}
	}
}

// TestDAGTagsUniqueAndPaired checks the per-round tag discipline on a
// non-periodic mesh, where ranks drop different rounds: tags are unique
// within a rank's plan, and for every round with a live receive, the
// source rank has a round with the matching send and the same tag.
func TestDAGTagsUniqueAndPaired(t *testing.T) {
	for _, op := range []OpKind{OpAlltoall, OpAllgather} {
		op := op
		t.Run(op.String(), func(t *testing.T) {
			nbh, err := vec.Moore(2, 1)
			if err != nil {
				t.Fatal(err)
			}
			plans := plansFor(t, []int{3, 4}, []bool{false, false}, nbh, op, 2)
			for rank, p := range plans {
				seen := map[int]int{}
				for i, r := range p.flat {
					if prev, dup := seen[r.tag]; dup {
						t.Fatalf("rank %d: rounds %d and %d share tag %d", rank, prev, i, r.tag)
					}
					seen[r.tag] = i
				}
			}
			for rank, p := range plans {
				for _, r := range p.flat {
					if r.recvFrom == ProcNull {
						continue
					}
					src := plans[r.recvFrom]
					found := false
					for _, sr := range src.flat {
						if sr.tag == r.tag && sr.sendTo == rank {
							if sr.send.Size() != r.recv.Size() {
								t.Fatalf("rank %d tag %d: send %d elements, recv %d", rank, r.tag, sr.send.Size(), r.recv.Size())
							}
							found = true
						}
					}
					if !found {
						t.Fatalf("rank %d: no send at rank %d matches recv tag %d", rank, r.recvFrom, r.tag)
					}
				}
			}
		})
	}
}

// simMsg keys one in-flight simulated message.
type simKey struct {
	src, tag int
}

// simRank is one rank's state in the single-threaded DAG simulation.
type simRank struct {
	p        *Plan
	bufs     [][]int
	sendLeft []int32
	scatLeft []int32
	sent     []bool
	retired  []bool
	inbox    map[simKey][]int
}

// simEvent is one enabled execution step: rank r posts round i's send
// (kind 0) or retires round i's receive (kind 1).
type simEvent struct {
	rank, round int
	kind        int
}

// newSim builds per-rank simulation state with encode()-filled send
// buffers and zeroed receive/temp buffers.
func newSim(plans []*Plan, nbh vec.Neighborhood, m int, op OpKind) []*simRank {
	ranks := make([]*simRank, len(plans))
	for r, p := range plans {
		n := len(p.flat)
		sendN := len(nbh) * m
		if op == OpAllgather {
			sendN = m
		}
		send := make([]int, sendN)
		for i := range send {
			send[i] = encode(r, i/m, i%m)
		}
		sr := &simRank{
			p:        p,
			bufs:     [][]int{send, make([]int, len(nbh)*m), make([]int, p.tempLen)},
			sendLeft: make([]int32, n),
			scatLeft: make([]int32, n),
			sent:     make([]bool, n),
			retired:  make([]bool, n),
			inbox:    map[simKey][]int{},
		}
		for i, dep := range p.deps {
			sr.sendLeft[i] = dep.sendDeps
			sr.scatLeft[i] = dep.scatDeps
		}
		ranks[r] = sr
	}
	return ranks
}

// enabled lists every event the DAG permits right now.
func enabled(ranks []*simRank) []simEvent {
	var evs []simEvent
	for r, sr := range ranks {
		for i, round := range sr.p.flat {
			if round.sendTo != ProcNull && !sr.sent[i] && sr.sendLeft[i] == 0 {
				evs = append(evs, simEvent{r, i, 0})
			}
			if round.recvFrom != ProcNull && !sr.retired[i] && sr.scatLeft[i] == 0 {
				if len(sr.inbox[simKey{round.recvFrom, round.tag}]) > 0 {
					evs = append(evs, simEvent{r, i, 1})
				}
			}
		}
	}
	return evs
}

// step executes one event: a send gathers its composite into a wire and
// delivers it (decrementing WAR gates), a retirement scatters the wire and
// decrements RAW and WAW gates — exactly the pipelined executor's cascade,
// in whatever order the caller picked.
func step(ranks []*simRank, ev simEvent) {
	sr := ranks[ev.rank]
	round := sr.p.flat[ev.round]
	dep := &sr.p.deps[ev.round]
	if ev.kind == 0 {
		wire := make([]int, round.send.Size())
		datatype.GatherComposite(wire, sr.bufs, &round.send)
		dst := ranks[round.sendTo]
		key := simKey{ev.rank, round.tag}
		dst.inbox[key] = wire
		sr.sent[ev.round] = true
		for _, s := range dep.warSucc {
			sr.scatLeft[s]--
		}
		return
	}
	key := simKey{round.recvFrom, round.tag}
	wire := sr.inbox[key]
	delete(sr.inbox, key)
	datatype.ScatterComposite(sr.bufs, wire, &round.recv)
	sr.retired[ev.round] = true
	for _, s := range dep.rawSucc {
		sr.sendLeft[s]--
	}
	for _, s := range dep.wawSucc {
		sr.scatLeft[s]--
	}
}

// finish applies the plan's local copies and returns the receive buffer.
func (sr *simRank) finish() []int {
	recv := sr.bufs[1]
	for _, cp := range sr.p.copies {
		datatype.Copy(recv, cp.to, sr.bufs[cp.fromBuf], cp.from)
	}
	return recv
}

// runSim drives the simulation to completion with pick choosing among
// enabled events, and fails if the DAG wedges before every round ran.
func runSim(t *testing.T, plans []*Plan, nbh vec.Neighborhood, m int, op OpKind, pick func([]simEvent) simEvent) [][]int {
	t.Helper()
	ranks := newSim(plans, nbh, m, op)
	for {
		evs := enabled(ranks)
		if len(evs) == 0 {
			break
		}
		step(ranks, pick(evs))
	}
	out := make([][]int, len(ranks))
	for r, sr := range ranks {
		for i, round := range sr.p.flat {
			if round.sendTo != ProcNull && !sr.sent[i] {
				t.Fatalf("rank %d: send of flat round %d never enabled (DAG wedged)", r, i)
			}
			if round.recvFrom != ProcNull && !sr.retired[i] {
				t.Fatalf("rank %d: receive of flat round %d never retired (DAG wedged)", r, i)
			}
		}
		out[r] = sr.finish()
	}
	return out
}

// TestDAGTopologicalOrdersByteIdentical is the DAG sufficiency property
// test: executing the rounds of every rank in ANY dependency-respecting
// order — simulated single-threaded, with adversarially random
// interleavings across ranks and phases — must produce receive buffers
// byte-identical to the phase-ordered reference. A missing WAR/WAW/RAW
// edge shows up as a corrupted block under some interleaving; a spurious
// cycle shows up as a wedged simulation.
func TestDAGTopologicalOrdersByteIdentical(t *testing.T) {
	cases := []struct {
		name    string
		dims    []int
		periods []bool
		d, r    int
		op      OpKind
	}{
		{name: "torus-2d-alltoall", dims: []int{4, 4}, d: 2, r: 1, op: OpAlltoall},
		{name: "torus-2d-allgather", dims: []int{4, 4}, d: 2, r: 1, op: OpAllgather},
		{name: "torus-3d-alltoall", dims: []int{3, 3, 3}, d: 3, r: 1, op: OpAlltoall},
		{name: "mesh-2d-alltoall", dims: []int{3, 4}, periods: []bool{false, false}, d: 2, r: 1, op: OpAlltoall},
		{name: "mesh-2d-allgather", dims: []int{3, 3}, periods: []bool{false, false}, d: 2, r: 1, op: OpAllgather},
		{name: "mesh-mixed-alltoall", dims: []int{4, 3}, periods: []bool{true, false}, d: 2, r: 1, op: OpAlltoall},
	}
	const m = 2
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			nbh, err := vec.Moore(tc.d, tc.r)
			if err != nil {
				t.Fatal(err)
			}
			plans := plansFor(t, tc.dims, tc.periods, nbh, tc.op, m)
			// Reference: phase-major, rank-major — the barriered order.
			ref := runSim(t, plans, nbh, m, tc.op, func(evs []simEvent) simEvent {
				best := 0
				for i := 1; i < len(evs); i++ {
					a, b := evs[i], evs[best]
					da, db := plans[a.rank].deps[a.round], plans[b.rank].deps[b.round]
					// Earlier phase first; within a phase all sends before
					// any retirement; then by rank and round.
					ka := [4]int{da.phase, a.kind, a.rank, a.round}
					kb := [4]int{db.phase, b.kind, b.rank, b.round}
					for j := 0; j < 4; j++ {
						if ka[j] != kb[j] {
							if ka[j] < kb[j] {
								best = i
							}
							break
						}
					}
				}
				return evs[best]
			})
			for trial := 0; trial < 25; trial++ {
				rng := rand.New(rand.NewSource(int64(1000*trial + 7)))
				got := runSim(t, plans, nbh, m, tc.op, func(evs []simEvent) simEvent {
					return evs[rng.Intn(len(evs))]
				})
				for r := range got {
					if !reflect.DeepEqual(got[r], ref[r]) {
						t.Fatalf("trial %d rank %d: random topological order diverged:\n got %v\nwant %v", trial, r, got[r], ref[r])
					}
				}
			}
		})
	}
}

// TestPipelinedMatchesBarriered runs the real executors both ways on the
// same inputs — pipelined (default) vs WithBarrieredPhases — across torus
// and mesh topologies and both families, repeating each plan three times
// to exercise the plan-owned scratch reuse (WaitSet Reset included).
func TestPipelinedMatchesBarriered(t *testing.T) {
	cases := []struct {
		name    string
		dims    []int
		periods []bool
		d, r    int
		op      OpKind
	}{
		{name: "torus-2d-alltoall", dims: []int{4, 4}, d: 2, r: 1, op: OpAlltoall},
		{name: "torus-2d-allgather", dims: []int{4, 4}, d: 2, r: 1, op: OpAllgather},
		{name: "torus-3d-alltoall", dims: []int{3, 3, 3}, d: 3, r: 1, op: OpAlltoall},
		{name: "mesh-2d-alltoall", dims: []int{3, 4}, periods: []bool{false, false}, d: 2, r: 1, op: OpAlltoall},
		{name: "mesh-2d-allgather", dims: []int{3, 3}, periods: []bool{false, false}, d: 2, r: 1, op: OpAllgather},
	}
	const m = 3
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			nbh, err := vec.Moore(tc.d, tc.r)
			if err != nil {
				t.Fatal(err)
			}
			runWorld(t, gridSize(tc.dims), func(w *mpi.Comm) error {
				c, err := NeighborhoodCreate(w, tc.dims, tc.periods, nbh, nil, WithAlgorithm(Combining))
				if err != nil {
					return err
				}
				mk := func(opts ...PlanOption) (*Plan, error) {
					if tc.op == OpAlltoall {
						return AlltoallInit(c, m, Combining, opts...)
					}
					return AllgatherInit(c, m, Combining, opts...)
				}
				piped, err := mk()
				if err != nil {
					return err
				}
				barr, err := mk(WithBarrieredPhases())
				if err != nil {
					return err
				}
				sendN := len(nbh) * m
				if tc.op == OpAllgather {
					sendN = m
				}
				send := make([]int, sendN)
				for i := range send {
					send[i] = encode(w.Rank(), i/m, i%m)
				}
				for iter := 0; iter < 3; iter++ {
					got := make([]int, len(nbh)*m)
					want := make([]int, len(nbh)*m)
					if err := Run(piped, send, got); err != nil {
						return fmt.Errorf("pipelined: %w", err)
					}
					if err := Run(barr, send, want); err != nil {
						return fmt.Errorf("barriered: %w", err)
					}
					if !reflect.DeepEqual(got, want) {
						return fmt.Errorf("rank %d iter %d: pipelined %v != barriered %v", w.Rank(), iter, got, want)
					}
				}
				return nil
			})
		})
	}
}

// TestStarStencilSendsBeforeFirstRecvDone pins the pipelining behavior
// the DAG exists to unlock: on a Star stencil every send is barrier-free
// (TestDAGStarStencilAllBarrierFree), and the default window covers all
// receives, so the executor must post every send before it retires a
// single receive — deterministically, not just under lucky timing. The
// barriered executor can only do this within one phase; here the round
// log proves it across all phases.
func TestStarStencilSendsBeforeFirstRecvDone(t *testing.T) {
	nbh, err := vec.Star(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	dims := []int{5, 5}
	const m = 2
	runWorld(t, gridSize(dims), func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, dims, nil, nbh, nil, WithAlgorithm(Combining))
		if err != nil {
			return err
		}
		p, err := AlltoallInit(c, m, Combining)
		if err != nil {
			return err
		}
		log := trace.NewRoundLog()
		p.SetRoundLog(log)
		send := make([]int, len(nbh)*m)
		recv := make([]int, len(nbh)*m)
		for i := range send {
			send[i] = encode(w.Rank(), i/m, i%m)
		}
		if err := Run(p, send, recv); err != nil {
			return err
		}
		sends, dones := 0, 0
		for _, ev := range log.Events() {
			switch ev.Kind {
			case trace.RoundSendPost:
				if dones > 0 {
					return fmt.Errorf("rank %d: send post of phase %d round %d after %d receive(s) completed",
						w.Rank(), ev.Phase, ev.Round, dones)
				}
				sends++
			case trace.RoundRecvDone:
				dones++
			}
		}
		if wantS := p.Messages(); sends != wantS {
			return fmt.Errorf("rank %d: logged %d send posts, want %d", w.Rank(), sends, wantS)
		}
		if dones == 0 {
			return fmt.Errorf("rank %d: no receive completions logged", w.Rank())
		}
		return nil
	})
}
