package cart

import (
	"sort"

	"cartcc/internal/vec"
)

// AllgatherTree is the routing tree of Algorithm 2 of the paper: the
// communication pattern along which one process's block reaches all of its
// target neighbors, built by recursive stable bucket sorting over the
// dimensions. All processes use the same tree simultaneously, so the tree
// also describes, symmetrically, everything a process forwards on behalf
// of others.
type AllgatherTree struct {
	// Root is the tree root (the originating process).
	Root *TreeNode
	// DimOrder is the dimension processing order used for construction.
	DimOrder []int
	// Edges is the number of tree edges, the per-process communication
	// volume V of the allgather schedule (Proposition 3.3).
	Edges int
}

// TreeNode is a subtree of an allgather routing tree. Each non-root node
// with Coord != 0 corresponds to one hop: the subtree's block steps Coord
// along dimension DimOrder[Level]; nodes with Coord == 0 are pass-throughs
// and cost no communication. Members are the neighbor indices the subtree
// serves, in stable bucket-sorted order.
type TreeNode struct {
	Members []int
	// Level indexes into DimOrder; the root has level -1.
	Level int
	// Coord is the node's step along dimension DimOrder[Level]; 0 for the
	// root and for pass-through nodes.
	Coord    int
	Children []*TreeNode
	// Parent is nil at the root.
	Parent *TreeNode

	// Staging bookkeeping filled in by the schedule construction: where
	// this subtree's block is read from (the parent's staging) and where it
	// lands after this node's hop.
	fromBuf  BufKind
	fromSlot int
	landBuf  BufKind
	landSlot int
}

// Rep returns the node's representative neighbor index (the first member
// in stable sorted order), the block index attributed to the node's moves.
func (n *TreeNode) Rep() int { return n.Members[0] }

// ckOrder returns the dimensions sorted by increasing C_k (number of
// distinct non-zero k-th coordinates), ties by dimension index — the
// paper's heuristic order that keeps the tree volume small (Figure 2).
func ckOrder(nbh vec.Neighborhood) []int {
	d := nbh.Dims()
	ck := make([]int, d)
	for k := 0; k < d; k++ {
		ck[k] = vec.CountDistinctNonZero(nbh, k)
	}
	order := identityOrder(d)
	sort.SliceStable(order, func(a, b int) bool { return ck[order[a]] < ck[order[b]] })
	return order
}

// BuildAllgatherTree constructs the allgather routing tree for the
// neighborhood in the given dimension order (nil for the paper's
// increasing-C_k order). O(td) time via stable bucket sorts.
func BuildAllgatherTree(nbh vec.Neighborhood, dimOrder []int) *AllgatherTree {
	if dimOrder == nil {
		dimOrder = ckOrder(nbh)
	}
	tr := &AllgatherTree{DimOrder: dimOrder}
	all := make([]int, len(nbh))
	for i := range all {
		all[i] = i
	}
	tr.Root = buildTreeNode(nbh, dimOrder, all, -1, 0, tr)
	return tr
}

// buildTreeNode recursively buckets members by the coordinate of the next
// dimension (Algorithm 2's AllgatherTree function).
func buildTreeNode(nbh vec.Neighborhood, dimOrder []int, members []int, level, coord int, tr *AllgatherTree) *TreeNode {
	n := &TreeNode{Members: members, Level: level, Coord: coord}
	if coord != 0 {
		tr.Edges++
	}
	next := level + 1
	if next >= len(dimOrder) {
		return n
	}
	k := dimOrder[next]
	// Stable bucket sort of members by their k-th coordinate.
	sub := make(vec.Neighborhood, len(members))
	for i, m := range members {
		sub[i] = nbh[m]
	}
	order := vec.BucketSortByCoord(sub, k)
	sorted := make([]int, len(members))
	for i, o := range order {
		sorted[i] = members[o]
	}
	// Split into runs of equal k-th coordinate.
	s := 0
	for i := 0; i < len(sorted); i++ {
		if i == len(sorted)-1 || nbh[sorted[i]][k] != nbh[sorted[i+1]][k] {
			group := sorted[s : i+1]
			child := buildTreeNode(nbh, dimOrder, group, next, nbh[group[0]][k], tr)
			child.Parent = n
			n.Children = append(n.Children, child)
			s = i + 1
		}
	}
	return n
}

// AllgatherSchedule computes the message-combining allgather schedule of
// Algorithm 2 in O(td) time, purely locally: build the routing tree in
// increasing-C_k dimension order, then traverse it breadth-first, emitting
// one round per level and distinct non-zero coordinate. In a round every
// process sends, for each subtree stepping by that coordinate, the block
// staged at the subtree's parent (its own send buffer at the root), and
// symmetrically receives the corresponding blocks into the subtrees'
// staging locations.
//
// Staging discipline: when a subtree contains a member whose remaining
// coordinates are all zero (the hop is that member's final one), the block
// lands directly at that member's position in the receive buffer — it is
// final there and, because deeper subtrees stage elsewhere, is never
// overwritten, so later phases may forward it from that position
// (zero-copy). Otherwise the block lands in a staging slot of the
// temporary buffer unique to the tree node. This is a safe refinement of
// the paper's two-buffer alternation: identical round and volume counts,
// but no transient staging location is ever rewritten while a slower
// sibling subtree still needs to read it.
//
// The schedule has C = Σ_k C_k rounds and volume V = Edges(T)
// (Proposition 3.3). Zero-offset neighbors and duplicated offsets become
// local copies.
func AllgatherSchedule(nbh vec.Neighborhood) *Schedule {
	return allgatherScheduleOrdered(nbh, nil)
}

// allgatherScheduleOrdered is AllgatherSchedule with an explicit dimension
// order, used by the dimension-order ablation benchmarks.
func allgatherScheduleOrdered(nbh vec.Neighborhood, dimOrder []int) *Schedule {
	tr := BuildAllgatherTree(nbh, dimOrder)
	d := nbh.Dims()
	s := &Schedule{Op: OpAllgather, Algo: Combining, DimOrder: tr.DimOrder}

	// lastHopLevel[i] is the last level (in tree dimension order) at which
	// neighbor i has a non-zero coordinate; -1 for the zero offset. A
	// member m "rests" in a subtree formed at level L iff
	// lastHopLevel[m] <= L.
	lastHopLevel := make([]int, len(nbh))
	for i, rel := range nbh {
		lastHopLevel[i] = -1
		for l := 0; l < d; l++ {
			if rel[tr.DimOrder[l]] != 0 {
				lastHopLevel[i] = l
			}
		}
	}

	tr.Root.landBuf, tr.Root.landSlot = BufSend, 0
	frontier := []*TreeNode{tr.Root}
	for level := 0; level < d; level++ {
		k := tr.DimOrder[level]
		var next []*TreeNode
		var hopping []*TreeNode
		for _, parent := range frontier {
			for _, ch := range parent.Children {
				if ch.Coord == 0 {
					// Pass-through: no communication, inherit staging.
					ch.landBuf, ch.landSlot = parent.landBuf, parent.landSlot
					next = append(next, ch)
					continue
				}
				ch.fromBuf, ch.fromSlot = parent.landBuf, parent.landSlot
				resting := -1
				for _, m := range ch.Members {
					if lastHopLevel[m] <= level {
						resting = m
						break
					}
				}
				if resting >= 0 {
					ch.landBuf, ch.landSlot = BufRecv, resting
				} else {
					ch.landBuf, ch.landSlot = BufTemp, s.TempSlots
					s.TempSlots++
					s.NeedTemp = true
				}
				hopping = append(hopping, ch)
				next = append(next, ch)
			}
		}
		rounds := groupRounds(hopping, k, d)
		s.Phases = append(s.Phases, Phase{Dim: k, Rounds: rounds})
		s.Rounds += len(rounds)
		for _, r := range rounds {
			s.Volume += len(r.Moves)
		}
		frontier = next
	}

	// Leaves: every member not already final at its own receive position —
	// duplicated offsets and the zero offset — is served by a local copy
	// from the leaf's staging.
	for _, leaf := range frontier {
		for _, m := range leaf.Members {
			if leaf.landBuf == BufRecv && m == leaf.landSlot {
				continue
			}
			s.Copies = append(s.Copies, LocalCopy{From: leaf.landBuf, FromSlot: leaf.landSlot, ToSlot: m})
		}
	}
	return s
}

// groupRounds buckets the hopping nodes of one level by coordinate and
// emits one round per distinct value, moves in stable node order.
func groupRounds(hopping []*TreeNode, k, d int) []Round {
	if len(hopping) == 0 {
		return nil
	}
	sorted := append([]*TreeNode(nil), hopping...)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].Coord < sorted[b].Coord })
	var rounds []Round
	var cur *Round
	curCoord := 0
	for _, n := range sorted {
		if cur == nil || n.Coord != curCoord {
			rel := make(vec.Vec, d)
			rel[k] = n.Coord
			rounds = append(rounds, Round{Rel: rel})
			cur = &rounds[len(rounds)-1]
			curCoord = n.Coord
		}
		cur.Moves = append(cur.Moves, Move{
			Block:    n.Rep(),
			From:     n.fromBuf,
			FromSlot: n.fromSlot,
			To:       n.landBuf,
			ToSlot:   n.landSlot,
		})
	}
	return rounds
}
