package cart

import (
	"cartcc/internal/vec"
)

// Message-combining alltoall on non-periodic meshes — the case the paper
// leaves open ("details for non-periodic meshes are not discussed further
// here", Section 2).
//
// Two observations make it work:
//
//  1. Every intermediate position of the dimension-wise path expansion
//     lies component-wise between the origin o and the target o + N[i]
//     (each coordinate is either o_j or o_j + n_j), so if both endpoints
//     are on the mesh, so is every hop — no rerouting is ever needed.
//  2. Although boundary processes relay different block sets (the
//     neighborhoods are no longer effectively isomorphic), each process
//     can compute, purely locally and in O(td) time, both the set of
//     blocks it must send in a round and the set its partner will send to
//     it: block i is at position r when phase k starts iff its origin
//     o = r − prefix_k(N[i]) is on the mesh and o's target o + N[i] is
//     too. Sender and receiver evaluate the same predicate, so the
//     per-round pairing — and hence deadlock freedom — is preserved
//     even though schedules now differ between processes.
//
// Rounds at a process can be empty (nothing to relay in that direction);
// both sides skip them consistently. The round count C and the volume V
// become upper bounds attained in the interior.

// prefixBefore returns the relative position of block i's path at the
// start of phase k: the components of rel for dimensions < k, zero after.
func prefixBefore(rel vec.Vec, k int) vec.Vec {
	p := make(vec.Vec, len(rel))
	for j := 0; j < k; j++ {
		p[j] = rel[j]
	}
	return p
}

// meshBlockAt reports whether block i (relative offset rel, origin
// validity included) is held by process r at the start of phase k on the
// given mesh: the origin exists and its target exists.
func meshBlockAt(g *vec.Grid, r int, rel vec.Vec, k int) bool {
	o, ok := g.RankDisplace(r, prefixBefore(rel, k).Neg())
	if !ok {
		return false
	}
	_, ok = g.RankDisplace(o, rel)
	return ok
}

// MeshAlltoallSchedule computes the per-process message-combining alltoall
// schedule on a (possibly partially) non-periodic mesh. Unlike the torus
// schedule, the result depends on the calling process's position, so it is
// parameterized by rank. On a fully periodic grid it degenerates to
// AlltoallSchedule's structure. O(td) per process.
func MeshAlltoallSchedule(g *vec.Grid, rank int, nbh vec.Neighborhood) *Schedule {
	d := nbh.Dims()
	t := len(nbh)
	s := &Schedule{Op: OpAlltoall, Algo: Combining, DimOrder: identityOrder(d), TempSlots: t}

	zi := make([]int, t)
	hops := make([]int, t)
	for i, rel := range nbh {
		zi[i] = rel.NonZeros()
		hops[i] = zi[i]
		if zi[i] == 0 {
			// The self block always exists (the origin is the target).
			s.Copies = append(s.Copies, LocalCopy{From: BufSend, FromSlot: i, ToSlot: i})
		}
	}

	for k := 0; k < d; k++ {
		order := vec.BucketSortByCoord(nbh, k)
		var rounds []Round
		var cur *Round
		curCoord := 0
		flush := func() {
			if cur != nil && len(cur.Moves) > 0 {
				rounds = append(rounds, *cur)
			}
			cur = nil
		}
		for _, i := range order {
			ck := nbh[i][k]
			if ck == 0 {
				continue
			}
			if cur == nil || ck != curCoord {
				flush()
				rel := make(vec.Vec, d)
				rel[k] = ck
				cur = &Round{Rel: rel}
				curCoord = ck
			}
			// The move happens at this process only if it holds the block
			// when phase k starts. Unlike the torus schedule's two-buffer
			// parity, intermediates always stage in the temp buffer: on a
			// mesh a transit block may pass through a process that never
			// receives its own block i, and staging in the receive buffer
			// would leave transit data visible in an untouched slot.
			h := hops[i]
			if meshBlockAt(g, rank, nbh[i], k) {
				mv := meshMove(i, h, zi[i])
				if mv.To == BufTemp {
					s.NeedTemp = true
				}
				// Sender-side only: the receive side is derived in
				// compileMesh from the partner's predicate.
				cur.Moves = append(cur.Moves, mv)
				s.Volume++
			}
			hops[i]--
		}
		flush()
		s.Phases = append(s.Phases, Phase{Dim: k, Rounds: rounds})
		s.Rounds += len(rounds)
	}
	return s
}

// meshRecvMoves computes the moves process r receives from src in a round
// of phase k with step coordinate c: exactly the moves src sends, with
// the landing buffers as r will store them. Both sides compute this from
// the shared grid and neighborhood, preserving pairing.
func meshRecvMoves(g *vec.Grid, src int, nbh vec.Neighborhood, k, c int) []Move {
	var moves []Move
	order := vec.BucketSortByCoord(nbh, k)
	// Recompute src's remaining-hop counters up to phase k.
	t := len(nbh)
	zi := make([]int, t)
	hops := make([]int, t)
	for i, rel := range nbh {
		zi[i] = rel.NonZeros()
		hops[i] = zi[i]
	}
	for kk := 0; kk < k; kk++ {
		for i, rel := range nbh {
			if rel[kk] != 0 {
				hops[i]--
			}
		}
	}
	for _, i := range order {
		if nbh[i][k] != c {
			continue
		}
		if !meshBlockAt(g, src, nbh[i], k) {
			continue
		}
		moves = append(moves, meshMove(i, hops[i], zi[i]))
	}
	return moves
}

// meshMove builds the move of block i at a hop with h remaining hops out
// of zi total: first hop reads the user send buffer, intermediates stage
// in temp slot i, and only the final hop writes the receive buffer.
func meshMove(i, h, zi int) Move {
	mv := Move{Block: i, FromSlot: i, ToSlot: i}
	if h == zi {
		mv.From = BufSend
	} else {
		mv.From = BufTemp
	}
	if h == 1 {
		mv.To = BufRecv
	} else {
		mv.To = BufTemp
	}
	return mv
}

// compileMesh builds the executable plan for the mesh combining alltoall:
// per round, the send composite from this process's schedule and the
// receive composite from the partner's derived move set.
func (c *Comm) compileMesh(geom BlockGeometry) (*Plan, error) {
	rank := c.comm.Rank()
	sched := MeshAlltoallSchedule(c.grid, rank, c.nbh)
	p := &Plan{
		comm:   c,
		op:     sched.Op,
		algo:   Combining,
		rounds: sched.Rounds,
		volume: sched.Volume,
		cmet:   c.cmet,
	}
	d := c.nbh.Dims()
	t := len(c.nbh)
	for k := 0; k < d; k++ {
		// Collect the distinct non-zero coordinates of dimension k in
		// sorted order — the global round structure of the phase; rounds
		// with nothing to send *and* nothing to receive are dropped. Tags
		// are assigned from the position in this global structure, BEFORE
		// dropping, so two ranks that skip different rounds of the phase
		// still agree on every surviving round's tag.
		coords := distinctNonZeroSorted(c.nbh, k)
		var rounds []execRound
		for slot, coord := range coords {
			rel := make(vec.Vec, d)
			rel[k] = coord
			er := execRound{sendTo: ProcNull, recvFrom: ProcNull, tag: roundTag(k, slot, t)}
			if dst, ok := c.grid.RankDisplace(rank, rel); ok {
				// Send only the blocks this process holds.
				var sendMoves []Move
				for _, ph := range sched.Phases {
					if ph.Dim != k {
						continue
					}
					for _, r := range ph.Rounds {
						if r.Rel[k] == coord {
							sendMoves = r.Moves
						}
					}
				}
				if len(sendMoves) > 0 {
					er.sendTo = dst
					for _, mv := range sendMoves {
						l := layoutFor(mv.From, mv.FromSlot, geom)
						er.send.Append(bufIndex(mv.From), l)
						if mv.From == BufTemp || mv.To == BufTemp {
							if hi := geomTempHigh(geom, mv); hi > p.tempLen {
								p.tempLen = hi
							}
						}
					}
				}
			}
			if src, ok := c.grid.RankDisplace(rank, rel.Neg()); ok {
				recvMoves := meshRecvMoves(c.grid, src, c.nbh, k, coord)
				if len(recvMoves) > 0 {
					er.recvFrom = src
					for _, mv := range recvMoves {
						l := layoutFor(mv.To, mv.ToSlot, geom)
						er.recv.Append(bufIndex(mv.To), l)
						if mv.To == BufTemp {
							if hi := geomTempHigh(geom, mv); hi > p.tempLen {
								p.tempLen = hi
							}
						}
					}
				}
			}
			if er.sendTo != ProcNull || er.recvFrom != ProcNull {
				setRoundWhat(&er)
				rounds = append(rounds, er)
			}
		}
		p.phases = append(p.phases, rounds)
		p.deferScatter = append(p.deferScatter, phaseConflicts(rounds))
	}
	for _, cp := range sched.Copies {
		p.copies = append(p.copies, execCopy{
			fromBuf: bufIndex(cp.From),
			from:    layoutFor(cp.From, cp.FromSlot, geom),
			to:      geom.RecvAt(cp.ToSlot),
		})
	}
	buildDAG(p)
	return p, nil
}

// distinctNonZeroSorted returns the distinct non-zero k-th coordinates in
// ascending order.
func distinctNonZeroSorted(nbh vec.Neighborhood, k int) []int {
	var out []int
	order := vec.BucketSortByCoord(nbh, k)
	last := 0
	have := false
	for _, i := range order {
		ck := nbh[i][k]
		if ck == 0 {
			continue
		}
		if !have || ck != last {
			out = append(out, ck)
			last, have = ck, true
		}
	}
	return out
}

// MeshAlltoallInit precomputes the mesh-aware message-combining alltoall
// plan for blocks of m elements. On a fully periodic torus it is
// equivalent to AlltoallInit with Combining.
func MeshAlltoallInit(c *Comm, m int) (*Plan, error) {
	p, err := c.compileMesh(uniformGeometry(OpAlltoall, m))
	if err != nil {
		return nil, err
	}
	t := len(c.nbh)
	p.setLens(t*m, t*m)
	return p, nil
}
