package cart

import (
	"fmt"

	"cartcc/internal/datatype"
)

// PlanOption configures plan construction.
type PlanOption func(*planOptions)

type planOptions struct {
	forceBlocking bool
	barriered     bool
	window        int
	transform     func(*Schedule)
}

// WithBlockingRounds compiles the plan to execute every round as a
// sequential blocking exchange instead of phase-concurrent nonblocking
// rounds. The trivial schedules use this by default (Listing 4 of the
// paper); applying it to a combining schedule is the execution-style
// ablation of DESIGN.md.
func WithBlockingRounds() PlanOption {
	return func(o *planOptions) { o.forceBlocking = true }
}

// WithBarrieredPhases compiles the plan to execute with the classic
// phase-by-phase Waitall barrier instead of the dependency-DAG pipelined
// executor — the executor ablation of DESIGN.md §9 and the baseline of
// the pipelining benchmarks. (Runs under a virtual-time cost model use
// this executor regardless, to keep clock accounting deterministic.)
func WithBarrieredPhases() PlanOption {
	return func(o *planOptions) { o.barriered = true }
}

// WithPrepostWindow bounds how many receives the pipelined executor keeps
// posted ahead of retirement (default: the largest adjacent-phase round
// sum, at least 4). Larger windows let early messages hit the match-time
// single-copy path at the price of more posted receives; the window never
// affects correctness — an unmatched early message waits in the
// unexpected queue.
func WithPrepostWindow(w int) PlanOption {
	return func(o *planOptions) {
		if w > 0 {
			o.window = w
		}
	}
}

// WithScheduleTransform applies f to a deep clone of the symbolic schedule
// before the plan is compiled. It exists for the simulation harness's
// mutation smoke checks: f plants a controlled defect (say, skewing one
// move's destination slot) and the differential oracles must catch it. The
// clone keeps the communicator's cached schedules pristine, so plans built
// without the option are unaffected. The transform covers the torus
// schedules (trivial and combining); the mesh compilers derive their plans
// without a symbolic schedule and ignore it.
func WithScheduleTransform(f func(*Schedule)) PlanOption {
	return func(o *planOptions) { o.transform = f }
}

// apply copies the execution-style options onto a compiled plan.
func (po *planOptions) apply(p *Plan) {
	p.barriered = po.barriered
	if po.window > 0 {
		p.window = po.window
	}
}

// scheduleFor returns the symbolic schedule for (op, algo), cached on the
// communicator since it depends only on the neighborhood (Section 3.3).
func (c *Comm) scheduleFor(op OpKind, algo Algorithm) (*Schedule, error) {
	switch algo {
	case Trivial:
		return TrivialSchedule(c.nbh, op), nil
	case Combining:
		if !c.IsPeriodic() {
			return nil, fmt.Errorf("cart: the message-combining schedules require a fully periodic torus; use the Trivial algorithm on meshes")
		}
		if op == OpAlltoall {
			if c.alltoallSched == nil {
				c.alltoallSched = AlltoallSchedule(c.nbh)
			}
			return c.alltoallSched, nil
		}
		if c.allgatherSched == nil {
			c.allgatherSched = AllgatherSchedule(c.nbh)
		}
		return c.allgatherSched, nil
	default:
		return nil, fmt.Errorf("cart: schedule requires a concrete algorithm, got %v", algo)
	}
}

// newPlan compiles (op, algo, geometry) for this communicator. Auto
// compiles both families and defers the choice to execution time, when the
// element size is known (the executor-consistent cut-off of select.go).
// Fingerprintable geometries go through the shared plan cache
// (plancache.go): a hit binds the cached master instead of recompiling.
func (c *Comm) newPlan(op OpKind, algo Algorithm, geom BlockGeometry, avgBlockElems float64, opts ...PlanOption) (*Plan, error) {
	var po planOptions
	for _, o := range opts {
		o(&po)
	}
	if algo == Auto {
		main, err := c.newPlan(op, Combining, geom, avgBlockElems, opts...)
		if err != nil {
			return nil, err
		}
		alt, err := c.newPlan(op, Trivial, geom, avgBlockElems, opts...)
		if err != nil {
			return nil, err
		}
		main.algo = Auto
		main.alt = alt
		main.avgBlockElems = avgBlockElems
		return main, nil
	}

	// Execution-style plan options are per-instance executor settings,
	// not compile inputs, so they stay out of the cache key; schedule
	// transforms (mutation smoke) change the compile itself and bypass
	// the cache, as do geometries the cache cannot fingerprint.
	blocking := po.forceBlocking
	if algo == Trivial {
		blocking = true
	}
	cacheable := po.transform == nil && geom.sig.kind != geomNone
	var key planCacheKey
	if cacheable {
		key = c.cacheKey(op, algo, geom.sig)
		if master, ok := sharedPlanCache.get(key, c, geom.sig); ok {
			p := master.bind(c, blocking)
			p.avgBlockElems = avgBlockElems
			po.apply(p)
			return p, nil
		}
	}

	var p *Plan
	var err error
	if algo == Combining && !c.IsPeriodic() {
		// The mesh-aware combining schedules (mesh.go,
		// mesh_allgather.go): per-process plans derived locally,
		// deadlock-free by the shared predicate.
		if op == OpAlltoall {
			p, err = c.compileMesh(geom)
		} else {
			p, err = c.compileMeshAllgather(geom)
		}
		if err != nil {
			return nil, err
		}
		p.blocking = po.forceBlocking
	} else {
		var sched *Schedule
		sched, err = c.scheduleFor(op, algo)
		if err != nil {
			return nil, err
		}
		if po.transform != nil {
			sched = sched.Clone()
			po.transform(sched)
		}
		p, err = c.compile(sched, geom, blocking)
		if err != nil {
			return nil, err
		}
	}
	p.avgBlockElems = avgBlockElems
	if cacheable {
		sharedPlanCache.put(key, c, geom.sig, p.detach())
	}
	po.apply(p)
	return p, nil
}

// regularPlan returns the cached plan for a regular operation with block
// size m.
func (c *Comm) regularPlan(op OpKind, algo Algorithm, m int) (*Plan, error) {
	key := planKey{op: op, algo: algo, m: m}
	if p, ok := c.plans[key]; ok {
		return p, nil
	}
	t := len(c.nbh)
	p, err := c.newPlan(op, algo, uniformGeometry(op, m), float64(m))
	if err != nil {
		return nil, err
	}
	if op == OpAllgather {
		p.setLens(m, t*m)
		if p.alt != nil {
			p.alt.setLens(m, t*m)
		}
	} else {
		p.setLens(t*m, t*m)
		if p.alt != nil {
			p.alt.setLens(t*m, t*m)
		}
	}
	c.plans[key] = p
	return p, nil
}

// setLens records required buffer lengths.
func (p *Plan) setLens(sendLen, recvLen int) {
	p.sendLen, p.recvLen = sendLen, recvLen
}

// AlltoallInit precomputes a reusable plan for the regular Cartesian
// alltoall with blocks of m elements (the paper's Cart_alltoall_init).
func AlltoallInit(c *Comm, m int, algo Algorithm, opts ...PlanOption) (*Plan, error) {
	if m < 0 {
		return nil, fmt.Errorf("cart: negative block size %d", m)
	}
	t := len(c.nbh)
	p, err := c.newPlan(OpAlltoall, algo, uniformGeometry(OpAlltoall, m), float64(m), opts...)
	if err != nil {
		return nil, err
	}
	p.setLens(t*m, t*m)
	if p.alt != nil {
		p.alt.setLens(t*m, t*m)
	}
	return p, nil
}

// AllgatherInit precomputes a reusable plan for the regular Cartesian
// allgather with blocks of m elements (Cart_allgather_init).
func AllgatherInit(c *Comm, m int, algo Algorithm, opts ...PlanOption) (*Plan, error) {
	if m < 0 {
		return nil, fmt.Errorf("cart: negative block size %d", m)
	}
	t := len(c.nbh)
	p, err := c.newPlan(OpAllgather, algo, uniformGeometry(OpAllgather, m), float64(m), opts...)
	if err != nil {
		return nil, err
	}
	p.setLens(m, t*m)
	if p.alt != nil {
		p.alt.setLens(m, t*m)
	}
	return p, nil
}

// AlltoallvInit precomputes a plan for the irregular Cartesian alltoall:
// block i of sendCounts[i] elements at sendDispls[i] goes to target i; the
// block from source i lands at recvDispls[i]. The Cartesian (isomorphism)
// requirement forces recvCounts[i] == sendCounts[i]: the block received at
// index i was sent as block i by the source, which passed the same arrays.
func AlltoallvInit(c *Comm, sendCounts, sendDispls, recvCounts, recvDispls []int, algo Algorithm, opts ...PlanOption) (*Plan, error) {
	t := len(c.nbh)
	if err := checkVArgs(t, sendCounts, sendDispls, "send"); err != nil {
		return nil, err
	}
	if err := checkVArgs(t, recvCounts, recvDispls, "recv"); err != nil {
		return nil, err
	}
	total := 0
	for i := range sendCounts {
		if sendCounts[i] != recvCounts[i] {
			return nil, fmt.Errorf("cart: Alltoallv block %d: sendCounts %d != recvCounts %d (isomorphic neighborhoods exchange matching blocks)", i, sendCounts[i], recvCounts[i])
		}
		total += sendCounts[i]
	}
	tempOff := prefixSums(sendCounts)
	geom := BlockGeometry{
		SendAt: func(i int) datatype.Layout { return datatype.Contiguous(sendDispls[i], sendCounts[i]) },
		RecvAt: func(i int) datatype.Layout { return datatype.Contiguous(recvDispls[i], recvCounts[i]) },
		TempAt: func(i int) datatype.Layout { return datatype.Contiguous(tempOff[i], sendCounts[i]) },
		sig:    vectorSig(sendCounts, sendDispls, recvDispls),
	}
	p, err := c.newPlan(OpAlltoall, algo, geom, float64(total)/float64(max(t, 1)), opts...)
	if err != nil {
		return nil, err
	}
	p.setLens(extent(sendCounts, sendDispls), extent(recvCounts, recvDispls))
	if p.alt != nil {
		p.alt.setLens(p.sendLen, p.recvLen)
	}
	return p, nil
}

// AllgathervInit precomputes a plan for the irregular Cartesian allgather:
// every process sends the same sendCount elements; the block from source i
// lands at recvDispls[i]. Isomorphism forces recvCounts[i] == sendCount.
func AllgathervInit(c *Comm, sendCount int, recvCounts, recvDispls []int, algo Algorithm, opts ...PlanOption) (*Plan, error) {
	t := len(c.nbh)
	if err := checkVArgs(t, recvCounts, recvDispls, "recv"); err != nil {
		return nil, err
	}
	for i, rc := range recvCounts {
		if rc != sendCount {
			return nil, fmt.Errorf("cart: Allgatherv block %d: recvCounts %d != sendCount %d (every isomorphic source sends the same block)", i, rc, sendCount)
		}
	}
	geom := BlockGeometry{
		SendAt: func(int) datatype.Layout { return datatype.Contiguous(0, sendCount) },
		RecvAt: func(i int) datatype.Layout { return datatype.Contiguous(recvDispls[i], recvCounts[i]) },
		TempAt: func(i int) datatype.Layout { return datatype.Contiguous(i*sendCount, sendCount) },
		sig:    vectorSig([]int{sendCount}, recvCounts, recvDispls),
	}
	p, err := c.newPlan(OpAllgather, algo, geom, float64(sendCount), opts...)
	if err != nil {
		return nil, err
	}
	p.setLens(sendCount, extent(recvCounts, recvDispls))
	if p.alt != nil {
		p.alt.setLens(p.sendLen, p.recvLen)
	}
	return p, nil
}

// AlltoallwInit precomputes a plan for the fully general Cartesian
// alltoall: an arbitrary element layout per block on both sides (the
// paper's Cart_alltoallw, needed to communicate rows, columns and corners
// of a matrix in place — Listing 3). Layout i's send and receive sizes
// must match.
func AlltoallwInit(c *Comm, sendLayouts, recvLayouts []datatype.Layout, algo Algorithm, opts ...PlanOption) (*Plan, error) {
	t := len(c.nbh)
	if len(sendLayouts) != t || len(recvLayouts) != t {
		return nil, fmt.Errorf("cart: Alltoallw: %d send / %d recv layouts for %d neighbors", len(sendLayouts), len(recvLayouts), t)
	}
	sizes := make([]int, t)
	total := 0
	for i := range sendLayouts {
		if sendLayouts[i].Size() != recvLayouts[i].Size() {
			return nil, fmt.Errorf("cart: Alltoallw block %d: send layout %d elements, recv layout %d", i, sendLayouts[i].Size(), recvLayouts[i].Size())
		}
		sizes[i] = sendLayouts[i].Size()
		total += sizes[i]
	}
	tempOff := prefixSums(sizes)
	geom := BlockGeometry{
		SendAt: func(i int) datatype.Layout { return sendLayouts[i] },
		RecvAt: func(i int) datatype.Layout { return recvLayouts[i] },
		TempAt: func(i int) datatype.Layout { return datatype.Contiguous(tempOff[i], sizes[i]) },
	}
	p, err := c.newPlan(OpAlltoall, algo, geom, float64(total)/float64(max(t, 1)), opts...)
	if err != nil {
		return nil, err
	}
	p.setLens(layoutExtent(sendLayouts), layoutExtent(recvLayouts))
	if p.alt != nil {
		p.alt.setLens(p.sendLen, p.recvLen)
	}
	return p, nil
}

// AllgatherwInit precomputes a plan for the typed Cartesian allgather the
// paper proposes as an addition to MPI: one send layout (the same block to
// everyone) and a distinct receive layout per source block. All receive
// layouts must have the send layout's size.
func AllgatherwInit(c *Comm, sendLayout datatype.Layout, recvLayouts []datatype.Layout, algo Algorithm, opts ...PlanOption) (*Plan, error) {
	t := len(c.nbh)
	if len(recvLayouts) != t {
		return nil, fmt.Errorf("cart: Allgatherw: %d recv layouts for %d neighbors", len(recvLayouts), t)
	}
	m := sendLayout.Size()
	for i := range recvLayouts {
		if recvLayouts[i].Size() != m {
			return nil, fmt.Errorf("cart: Allgatherw block %d: recv layout %d elements, send layout %d", i, recvLayouts[i].Size(), m)
		}
	}
	geom := BlockGeometry{
		SendAt: func(int) datatype.Layout { return sendLayout },
		RecvAt: func(i int) datatype.Layout { return recvLayouts[i] },
		TempAt: func(i int) datatype.Layout { return datatype.Contiguous(i*m, m) },
	}
	p, err := c.newPlan(OpAllgather, algo, geom, float64(m), opts...)
	if err != nil {
		return nil, err
	}
	_, sHi := sendLayout.Bounds()
	p.setLens(sHi, layoutExtent(recvLayouts))
	if p.alt != nil {
		p.alt.setLens(p.sendLen, p.recvLen)
	}
	return p, nil
}

// Alltoall performs the blocking regular Cartesian alltoall: block i of m
// elements of send goes to target neighbor i, block i of recv arrives from
// source neighbor i, with m = len(send)/t. Uses the communicator's default
// algorithm.
func Alltoall[T any](c *Comm, send, recv []T) error {
	t := len(c.nbh)
	if t == 0 || len(send)%t != 0 {
		return fmt.Errorf("cart: Alltoall send length %d not divisible into %d blocks", len(send), t)
	}
	p, err := c.regularPlan(OpAlltoall, c.algo, len(send)/t)
	if err != nil {
		return err
	}
	return Run(p, send, recv)
}

// Allgather performs the blocking regular Cartesian allgather: all of send
// goes to every target neighbor; block i of recv arrives from source
// neighbor i.
func Allgather[T any](c *Comm, send, recv []T) error {
	p, err := c.regularPlan(OpAllgather, c.algo, len(send))
	if err != nil {
		return err
	}
	return Run(p, send, recv)
}

// Alltoallv performs the blocking irregular Cartesian alltoall (see
// AlltoallvInit for the argument conventions).
func Alltoallv[T any](c *Comm, send []T, sendCounts, sendDispls []int, recv []T, recvCounts, recvDispls []int) error {
	p, err := AlltoallvInit(c, sendCounts, sendDispls, recvCounts, recvDispls, c.algo)
	if err != nil {
		return err
	}
	return Run(p, send, recv)
}

// Allgatherv performs the blocking irregular Cartesian allgather (see
// AllgathervInit).
func Allgatherv[T any](c *Comm, send []T, recv []T, recvCounts, recvDispls []int) error {
	p, err := AllgathervInit(c, len(send), recvCounts, recvDispls, c.algo)
	if err != nil {
		return err
	}
	return Run(p, send, recv)
}

// Alltoallw performs the blocking typed Cartesian alltoall (see
// AlltoallwInit).
func Alltoallw[T any](c *Comm, send []T, sendLayouts []datatype.Layout, recv []T, recvLayouts []datatype.Layout) error {
	p, err := AlltoallwInit(c, sendLayouts, recvLayouts, c.algo)
	if err != nil {
		return err
	}
	return Run(p, send, recv)
}

// Allgatherw performs the blocking typed Cartesian allgather (see
// AllgatherwInit).
func Allgatherw[T any](c *Comm, send []T, sendLayout datatype.Layout, recv []T, recvLayouts []datatype.Layout) error {
	p, err := AllgatherwInit(c, sendLayout, recvLayouts, c.algo)
	if err != nil {
		return err
	}
	return Run(p, send, recv)
}

// checkVArgs validates count/displacement arrays of the irregular ops.
func checkVArgs(t int, counts, displs []int, side string) error {
	if len(counts) != t || len(displs) != t {
		return fmt.Errorf("cart: %d %s counts / %d displs for %d neighbors", len(counts), side, len(displs), t)
	}
	for i := range counts {
		if counts[i] < 0 || displs[i] < 0 {
			return fmt.Errorf("cart: negative %s count/displacement at block %d", side, i)
		}
	}
	return nil
}

// prefixSums returns exclusive prefix sums of xs.
func prefixSums(xs []int) []int {
	out := make([]int, len(xs))
	run := 0
	for i, x := range xs {
		out[i] = run
		run += x
	}
	return out
}

// extent returns the buffer length implied by count/displacement arrays.
func extent(counts, displs []int) int {
	hi := 0
	for i := range counts {
		if end := displs[i] + counts[i]; end > hi {
			hi = end
		}
	}
	return hi
}

// layoutExtent returns the buffer length implied by a set of layouts.
func layoutExtent(ls []datatype.Layout) int {
	hi := 0
	for _, l := range ls {
		if _, h := l.Bounds(); h > hi {
			hi = h
		}
	}
	return hi
}
