package cart

import (
	"math"
	"testing"
	"time"

	"cartcc/internal/mpi"
	"cartcc/internal/netmodel"
	"cartcc/internal/tune"
	"cartcc/internal/vec"
)

// mooreStats returns (t, C, V, d) of the radius-1 Moore stencil on a 3×3
// torus — the selection-model fixture: t=8 trivial rounds, C=4 combining
// rounds, V=12 blocks, so the families genuinely cross over.
func mooreStats(t *testing.T) (tt, c, v, d int) {
	t.Helper()
	nbh, err := vec.Stencil(2, 3, -1)
	if err != nil {
		t.Fatal(err)
	}
	c, v = Predicted(nbh, OpAlltoall, Combining)
	tt, _ = Predicted(nbh, OpAlltoall, Trivial)
	return tt, c, v, 2
}

// TestDecideCrossoverMoore: below the analytic crossover combining wins,
// above it trivial wins, and the crossover itself satisfies the defining
// equation (the two modeled costs tie there).
func TestDecideCrossoverMoore(t *testing.T) {
	tt, c, v, d := mooreStats(t)
	prof := tune.FromModel(netmodel.Hydra())
	small := Decide(OpAlltoall, tt, c, v, d, 8, prof)
	if small.Chosen != Combining {
		t.Errorf("8B blocks: chose %v, want combining (%+v)", small.Chosen, small)
	}
	large := Decide(OpAlltoall, tt, c, v, d, 1<<20, prof)
	if large.Chosen != Trivial {
		t.Errorf("1MiB blocks: chose %v, want trivial (%+v)", large.Chosen, large)
	}
	cross := small.CrossoverBytes
	if math.IsInf(cross, 1) || cross <= 0 {
		t.Fatalf("crossover = %v, want finite positive (V=%d > t=%d)", cross, v, tt)
	}
	at := Decide(OpAlltoall, tt, c, v, d, cross, prof)
	if diff := math.Abs(at.CostTrivial - at.CostCombining); diff > 1e-12 {
		t.Errorf("costs at the crossover differ by %g: %+v", diff, at)
	}
	// Selection must be monotone: combining strictly below, trivial
	// strictly above.
	if below := Decide(OpAlltoall, tt, c, v, d, cross*0.9, prof); below.Chosen != Combining {
		t.Errorf("just below crossover: chose %v", below.Chosen)
	}
	if above := Decide(OpAlltoall, tt, c, v, d, cross*1.1, prof); above.Chosen != Trivial {
		t.Errorf("just above crossover: chose %v", above.Chosen)
	}
}

// TestDecideVolumeFreeCombiningAlwaysWins: when V ≤ t the combining
// schedule saves rounds at no volume penalty, so it wins at every block
// size and the crossover is +Inf (the 1D ±1 stencil: t=2, C=2, V=2, d=1).
func TestDecideVolumeFreeCombiningAlwaysWins(t *testing.T) {
	prof := tune.FromModel(netmodel.Hydra())
	for _, mB := range []float64{1, 1 << 10, 1 << 30} {
		dec := Decide(OpAlltoall, 2, 2, 2, 1, mB, prof)
		if dec.Chosen != Combining {
			t.Errorf("mB=%g: chose %v, want combining (V<=t)", mB, dec.Chosen)
		}
		if !math.IsInf(dec.CrossoverBytes, 1) {
			t.Errorf("mB=%g: crossover = %v, want +Inf", mB, dec.CrossoverBytes)
		}
	}
}

// TestAutoPlanDecidesUnderModel: an Auto plan on a virtual-time world
// resolves through Decide at first Run — small blocks execute the
// combining variant, huge blocks the trivial one — and the Decision
// record is exposed with the model as profile source.
func TestAutoPlanDecidesUnderModel(t *testing.T) {
	cases := []struct {
		m    int
		want Algorithm
	}{
		{1, Combining},
		{1 << 16, Trivial}, // 512 KiB int64 blocks, far above the Hydra crossover
	}
	for _, tc := range cases {
		err := mpi.Run(mpi.Config{Procs: 9, Model: netmodel.Hydra(), Timeout: 60 * time.Second}, func(w *mpi.Comm) error {
			nbh, err := vec.Stencil(2, 3, -1)
			if err != nil {
				return err
			}
			c, err := NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
			if err != nil {
				return err
			}
			p, err := AlltoallInit(c, tc.m, Auto)
			if err != nil {
				return err
			}
			if _, ok := p.Decision(); ok {
				t.Errorf("m=%d: Decision available before first Run", tc.m)
			}
			if got := p.Effective(); got != Auto {
				t.Errorf("m=%d: Effective before Run = %v, want Auto", tc.m, got)
			}
			send := make([]int64, len(nbh)*tc.m)
			recv := make([]int64, len(nbh)*tc.m)
			if err := Run(p, send, recv); err != nil {
				return err
			}
			dec, ok := p.Decision()
			if !ok {
				t.Fatalf("m=%d: no Decision after Run", tc.m)
			}
			if dec.Chosen != tc.want || p.Effective() != tc.want {
				t.Errorf("m=%d: chose %v (effective %v), want %v — %s", tc.m, dec.Chosen, p.Effective(), tc.want, dec)
			}
			if dec.ProfileSource != "model" {
				t.Errorf("m=%d: profile source %q, want model", tc.m, dec.ProfileSource)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestAutoUsesInstalledMachineProfile: without a cost model the selection
// falls back to tune.Machine() — install a profile with absurdly cheap
// latency (trivial should win even at m=1) and verify both the pick and
// the reported provenance; clear it and the built-in default picks
// combining at tiny blocks again.
func TestAutoUsesInstalledMachineProfile(t *testing.T) {
	tune.ClearMachine()
	t.Cleanup(tune.ClearMachine)
	cheapLatency := tune.Profile{Alpha: 0, Beta: 1e-9, SendOverhead: 0, RecvOverhead: 0, Source: "measured"}
	if err := tune.SetMachine(cheapLatency); err != nil {
		t.Fatal(err)
	}
	runOnce := func(wantAlgo Algorithm, wantSource string) error {
		return mpi.Run(mpi.Config{Procs: 9, Timeout: 60 * time.Second}, func(w *mpi.Comm) error {
			nbh, err := vec.Stencil(2, 3, -1)
			if err != nil {
				return err
			}
			c, err := NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
			if err != nil {
				return err
			}
			p, err := AlltoallInit(c, 1, Auto)
			if err != nil {
				return err
			}
			send := make([]int64, len(nbh))
			recv := make([]int64, len(nbh))
			if err := Run(p, send, recv); err != nil {
				return err
			}
			dec, ok := p.Decision()
			if !ok {
				t.Error("no Decision after Run")
				return nil
			}
			if dec.Chosen != wantAlgo {
				t.Errorf("chose %v, want %v (%s)", dec.Chosen, wantAlgo, dec)
			}
			if dec.ProfileSource != wantSource {
				t.Errorf("profile source %q, want %q", dec.ProfileSource, wantSource)
			}
			return nil
		})
	}
	// α = o = 0: messages are free, only volume costs — trivial's V=t
	// beats combining's V=12 at any size.
	if err := runOnce(Trivial, "measured"); err != nil {
		t.Fatal(err)
	}
	tune.ClearMachine()
	// Default constants are latency-heavy: combining wins at m=1.
	if err := runOnce(Combining, "default"); err != nil {
		t.Fatal(err)
	}
}

// TestAutoDecisionMemoized: repeated Runs at one element size decide
// once; the memo is per-element-size, so a different element width
// re-decides.
func TestAutoDecisionMemoized(t *testing.T) {
	err := mpi.Run(mpi.Config{Procs: 9, Model: netmodel.Hydra(), Timeout: 60 * time.Second}, func(w *mpi.Comm) error {
		nbh, err := vec.Stencil(2, 3, -1)
		if err != nil {
			return err
		}
		c, err := NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
		if err != nil {
			return err
		}
		// m chosen so int64 blocks sit above the crossover but byte
		// blocks sit below it: the pick must flip with the element size.
		const m = 8192
		p, err := AlltoallInit(c, m, Auto)
		if err != nil {
			return err
		}
		s64 := make([]int64, len(nbh)*m)
		r64 := make([]int64, len(nbh)*m)
		for i := 0; i < 2; i++ {
			if err := Run(p, s64, r64); err != nil {
				return err
			}
		}
		if got := p.Effective(); got != Trivial {
			t.Errorf("int64 blocks (64KiB): effective %v, want trivial", got)
		}
		s8 := make([]byte, len(nbh)*m)
		r8 := make([]byte, len(nbh)*m)
		if err := Run(p, s8, r8); err != nil {
			return err
		}
		if got := p.Effective(); got != Combining {
			t.Errorf("byte blocks (8KiB): effective %v, want combining", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
