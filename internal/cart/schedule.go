package cart

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"

	"cartcc/internal/datatype"
	"cartcc/internal/mpi"
	"cartcc/internal/trace"
	"cartcc/internal/vec"
)

// reflectSize returns the size in bytes of type T.
func reflectSize[T any]() uintptr {
	var z T
	return reflect.TypeOf(&z).Elem().Size()
}

// OpKind distinguishes the two Cartesian collective families.
type OpKind uint8

const (
	// OpAlltoall: a personalized block per target neighbor.
	OpAlltoall OpKind = iota
	// OpAllgather: the same block to every target neighbor.
	OpAllgather
)

// String returns the operation name.
func (k OpKind) String() string {
	if k == OpAllgather {
		return "allgather"
	}
	return "alltoall"
}

// BufKind identifies which buffer a schedule move reads from or writes to.
// The message-combining algorithms alternate blocks between the temporary
// and the receive buffer so that no block ever needs an extra copy
// (Algorithm 1's parity trick).
type BufKind uint8

const (
	// BufSend is the user's send buffer (first hop of a block).
	BufSend BufKind = iota
	// BufRecv is the user's receive buffer.
	BufRecv
	// BufTemp is the library's temporary staging buffer.
	BufTemp
)

// String returns the buffer name.
func (b BufKind) String() string {
	switch b {
	case BufSend:
		return "send"
	case BufRecv:
		return "recv"
	default:
		return "temp"
	}
}

// Move describes one data block's participation in one communication
// round: the sender gathers block FromSlot from buffer From; the receiver
// scatters it to ToSlot in buffer To. Block is the neighbor index the move
// serves (equal to the slots for alltoall; the subtree representative for
// allgather).
type Move struct {
	Block    int
	From     BufKind
	FromSlot int
	To       BufKind
	ToSlot   int
}

// Round is one send-receive exchange: every process sends the gathered
// moves to the process at relative offset Rel and receives the same
// pattern from the process at −Rel.
type Round struct {
	// Rel is the relative coordinate step of this round (c·e_k for the
	// message-combining schedules, N[i] for the trivial schedule).
	Rel   vec.Vec
	Moves []Move
}

// Phase groups the independent rounds executed with concurrent
// nonblocking operations (one dimension of the combining schedules).
type Phase struct {
	// Dim is the dimension this phase routes along (−1 for the trivial
	// schedule's single phase).
	Dim    int
	Rounds []Round
}

// LocalCopy is a block movement that needs no communication: blocks for
// the zero-offset neighbor (the process itself), and duplicated allgather
// neighbors.
type LocalCopy struct {
	From     BufKind
	FromSlot int
	ToSlot   int // always in the receive buffer
}

// Schedule is the block-size-independent structure of a Cartesian
// collective: which blocks travel together in which rounds, and through
// which buffers. Per Section 3.3 of the paper the same schedule drives the
// regular, irregular (v) and typed (w) variants.
type Schedule struct {
	Op     OpKind
	Algo   Algorithm
	Phases []Phase
	Copies []LocalCopy
	// Rounds is the total number of communication rounds C.
	Rounds int
	// Volume is the per-process communication volume V in blocks.
	Volume int
	// DimOrder is the order in which dimensions are routed (identity for
	// alltoall; increasing C_k for allgather).
	DimOrder []int
	// NeedTemp reports whether any move stages through the temporary
	// buffer.
	NeedTemp bool
	// TempSlots is the number of temporary staging slots the schedule
	// uses: block indices for alltoall (slot i holds block i), sequential
	// tree-node slots for allgather.
	TempSlots int
}

// TrivialSchedule builds the t-round direct schedule of Listing 4 of the
// paper: one send-receive round per non-zero neighbor, blocks for the
// zero offset copied locally. Works for alltoall and (with every block
// read from the same send block) allgather.
func TrivialSchedule(nbh vec.Neighborhood, op OpKind) *Schedule {
	s := &Schedule{Op: op, Algo: Trivial}
	var rounds []Round
	for i, rel := range nbh {
		if rel.IsZero() {
			s.Copies = append(s.Copies, LocalCopy{From: BufSend, FromSlot: i, ToSlot: i})
			continue
		}
		rounds = append(rounds, Round{
			Rel:   rel.Clone(),
			Moves: []Move{{Block: i, From: BufSend, FromSlot: i, To: BufRecv, ToSlot: i}},
		})
		s.Volume++
	}
	s.Phases = []Phase{{Dim: -1, Rounds: rounds}}
	s.Rounds = len(rounds)
	s.DimOrder = identityOrder(nbh.Dims())
	return s
}

// Clone returns a deep copy sharing no mutable state with the receiver:
// phases, rounds, moves, copies, relative steps and the dimension order
// are all fresh. WithScheduleTransform mutates a clone so the schedules
// cached on the communicator stay pristine.
func (s *Schedule) Clone() *Schedule {
	c := *s
	c.Phases = make([]Phase, len(s.Phases))
	for i, ph := range s.Phases {
		cp := ph
		cp.Rounds = make([]Round, len(ph.Rounds))
		for j, r := range ph.Rounds {
			cr := r
			cr.Rel = r.Rel.Clone()
			cr.Moves = append([]Move(nil), r.Moves...)
			cp.Rounds[j] = cr
		}
		c.Phases[i] = cp
	}
	c.Copies = append([]LocalCopy(nil), s.Copies...)
	c.DimOrder = append([]int(nil), s.DimOrder...)
	return &c
}

// Validate checks internal schedule invariants; it is used by the property
// tests and when loading externally-constructed schedules.
func (s *Schedule) Validate(t int) error {
	rounds, volume := 0, 0
	for _, ph := range s.Phases {
		rounds += len(ph.Rounds)
		for _, r := range ph.Rounds {
			if len(r.Moves) == 0 {
				return fmt.Errorf("cart: empty round in phase dim %d", ph.Dim)
			}
			if r.Rel.IsZero() {
				return fmt.Errorf("cart: zero relative step in a communication round")
			}
			for _, mv := range r.Moves {
				if mv.Block < 0 || mv.Block >= t {
					return fmt.Errorf("cart: move block out of range: %+v (t=%d)", mv, t)
				}
				if err := s.checkSlot(mv.From, mv.FromSlot, t); err != nil {
					return err
				}
				if err := s.checkSlot(mv.To, mv.ToSlot, t); err != nil {
					return err
				}
				if mv.To == BufSend {
					return fmt.Errorf("cart: move writes into the send buffer: %+v", mv)
				}
			}
			volume += len(r.Moves)
		}
	}
	if rounds != s.Rounds {
		return fmt.Errorf("cart: recorded rounds %d != actual %d", s.Rounds, rounds)
	}
	if volume != s.Volume {
		return fmt.Errorf("cart: recorded volume %d != actual %d", s.Volume, volume)
	}
	return nil
}

// checkSlot validates a slot index against its buffer's slot space: the
// neighborhood size for send/receive slots, TempSlots for temp slots (the
// alltoall schedule also uses block indices as temp slots).
func (s *Schedule) checkSlot(b BufKind, slot, t int) error {
	limit := t
	if b == BufTemp && s.TempSlots > limit {
		limit = s.TempSlots
	}
	if slot < 0 || slot >= limit {
		return fmt.Errorf("cart: %s slot %d out of range [0,%d)", b, slot, limit)
	}
	return nil
}

// BlockGeometry resolves the element layout of every block slot in the
// three buffers for one concrete operation instance: it is the bridge from
// the symbolic schedule to an executable plan. SendAt/RecvAt return the
// layout of slot i in the user send/receive buffers; TempAt returns the
// layout of staging slot i in the temporary buffer (block indices for
// alltoall, tree-node slots for allgather). The plan compiler derives the
// temporary buffer length from the layouts actually referenced.
type BlockGeometry struct {
	SendAt func(i int) datatype.Layout
	RecvAt func(i int) datatype.Layout
	TempAt func(i int) datatype.Layout

	// sig is the geometry's canonical fingerprint for the shared plan
	// cache (plancache.go). The zero value (geomNone) marks a geometry the
	// cache cannot fingerprint — caller-supplied Layout closures of the
	// w-variants — and disables caching for the plan.
	sig geomSig
}

// uniformGeometry is the geometry of the regular operations: block i of m
// elements at offset i·m in each buffer. For allgather the send buffer is
// a single block (slot-independent).
func uniformGeometry(op OpKind, m int) BlockGeometry {
	g := BlockGeometry{
		RecvAt: func(i int) datatype.Layout { return datatype.Contiguous(i*m, m) },
		TempAt: func(i int) datatype.Layout { return datatype.Contiguous(i*m, m) },
		sig:    geomSig{kind: geomUniform, m: m},
	}
	if op == OpAllgather {
		g.SendAt = func(int) datatype.Layout { return datatype.Contiguous(0, m) }
	} else {
		g.SendAt = func(i int) datatype.Layout { return datatype.Contiguous(i*m, m) }
	}
	return g
}

// bufIndex maps BufKind to the executor's buffer array position.
func bufIndex(b BufKind) int {
	switch b {
	case BufSend:
		return 0
	case BufRecv:
		return 1
	default:
		return 2
	}
}

// execRound is one compiled communication round: concrete peer ranks and
// the gathered send/recv composites over (send, recv, temp) buffers.
// sendWhat/recvWhat are the failure-attribution strings, formatted once at
// compile time so Run never calls fmt on the hot path.
type execRound struct {
	sendTo   int
	recvFrom int
	// tag is the round's message tag, shared by sender and receiver (see
	// roundTag): distinct per (phase, global round slot) so the pipelined
	// executor's out-of-phase traffic matches the right receives.
	tag      int
	send     datatype.Composite
	recv     datatype.Composite
	sendWhat string
	recvWhat string
	// blocks and sendElems are the round's forwarded volume in schedule
	// blocks and in elements, counted at compile time (the composites merge
	// adjacent extents, so Parts() cannot recover the block count).
	blocks    int
	sendElems int
}

// setRoundWhat formats the round's failure-attribution strings once at
// compile time, so the executors never call fmt on the hot path.
func setRoundWhat(er *execRound) {
	if er.sendTo != ProcNull {
		er.sendWhat = fmt.Sprintf("send to rank %d", er.sendTo)
	}
	if er.recvFrom != ProcNull {
		er.recvWhat = fmt.Sprintf("recv from rank %d", er.recvFrom)
	}
}

// execCopy is a compiled local copy.
type execCopy struct {
	fromBuf int
	from    datatype.Layout
	to      datatype.Layout
}

// Plan is an executable, reusable communication plan: the result of the
// paper's Cart_*_init operations. A Plan is bound to a communicator and a
// concrete block geometry but not to buffers or an element type; it can be
// executed many times (persistent-collective style).
type Plan struct {
	comm     *Comm
	op       OpKind
	algo     Algorithm
	blocking bool // trivial schedule: sequential blocking rounds
	phases   [][]execRound
	copies   []execCopy
	tempLen  int
	rounds   int
	volume   int
	sendLen  int // required send buffer length in elements (0 = unchecked)
	recvLen  int // required recv buffer length in elements
	temp     any // cached temporary buffer ([]T of the last element type)

	// deferScatter, per phase, requests Wait-time (receiver-side) scatter
	// from the runtime: set when a phase's receive-target extents overlap
	// its send-source extents, where the match-time single-copy fast path
	// could race the sender-side gathers. Computed once at compile.
	deferScatter []bool
	// pends is the in-flight request scratch of Run, hoisted onto the plan
	// so repeated executions post a whole phase without allocating.
	pends []pendReq

	// flat and deps are the block-level dependency DAG over all rounds in
	// phase-major order (dag.go); pipe is the pipelined executor's
	// plan-owned scratch (pipeline.go). barriered forces the per-phase
	// Waitall executor; window bounds the receive pre-post depth.
	flat      []*execRound
	deps      []roundDep
	pipe      *pipeState
	barriered bool
	window    int

	// Progress-engine scratch pool (future.go): detached pipeStates and
	// temp buffers for committed executions, so several futures of one
	// plan can be in flight at once and steady-state Start/Wait cycles
	// stay allocation-free. The mutex also guards asyncMaxTag, the
	// memoized tag-span bound (commits happen on the caller's goroutine,
	// releases on engine workers).
	asyncMu     sync.Mutex
	asyncFree   []*asyncScratch
	asyncMaxTag int
	// tagFit memoizes asyncTagFits lock-free: 0 unknown, 1 fits, 2 not.
	tagFit atomic.Int32
	// engWkr is the 1-based engine-worker index this plan's executions are
	// pinned to (0 = not yet pinned); all executions of one plan share its
	// scratch pool, so they must stay under one drive lock. Commit-side
	// state, touched only by the communicator's owning goroutine — keeping
	// it on the plan spares the engine a per-Start map lookup.
	engWkr int
	// rlog, when set, records wall-clock per-round post/complete events
	// from the executors (trace.RoundLog).
	rlog *trace.RoundLog

	// Observed accounting (accounting.go), accumulated across executions
	// at the executors' post and retire sites. Atomic because an inline
	// async commit (Start posts the first window on the caller) counts
	// concurrently with the engine driver retiring an earlier execution of
	// the same plan. cmet mirrors a subset into the rank's metrics
	// registry when one is attached to the runtime (nil otherwise).
	obsRuns   atomic.Int64
	obsRounds atomic.Int64
	obsMsgs   atomic.Int64
	obsRecvs  atomic.Int64
	obsBlocks atomic.Int64
	obsElems  atomic.Int64
	cmet      *cartMetrics

	// Auto plans carry the trivial alternative and the mean block size in
	// elements; Run applies the executor-consistent cut-off (select.go)
	// once the element size is known, memoized in decided/decidedElem and
	// recorded in decision.
	alt           *Plan
	avgBlockElems float64
	decided       *Plan
	decidedElem   int
	decision      *Decision

	// fromCache marks a plan bound from a shared-plan-cache master
	// (plancache.go) rather than freshly compiled.
	fromCache bool
}

// Rounds returns the number of communication rounds C of the plan.
func (p *Plan) Rounds() int { return p.rounds }

// Volume returns the per-process communication volume V in blocks.
func (p *Plan) Volume() int { return p.volume }

// Algorithm returns the schedule family the plan was compiled from.
func (p *Plan) Algorithm() Algorithm { return p.algo }

// Op returns the collective family of the plan.
func (p *Plan) Op() OpKind { return p.op }

// Messages returns the number of point-to-point messages this process
// posts per execution (its non-skipped send rounds) — on meshes this can
// be below Rounds(), whose count is the interior upper bound.
func (p *Plan) Messages() int {
	n := 0
	for _, rounds := range p.phases {
		for i := range rounds {
			if rounds[i].sendTo != ProcNull {
				n++
			}
		}
	}
	return n
}

// SendElements returns the total number of elements this process sends
// per execution — volume in concrete units rather than blocks, the
// quantity behind the β·V·m term of the paper's analysis.
func (p *Plan) SendElements() int {
	n := 0
	for _, rounds := range p.phases {
		for i := range rounds {
			if rounds[i].sendTo != ProcNull {
				n += rounds[i].send.Size()
			}
		}
	}
	return n
}

// compile turns a symbolic schedule plus block geometry into an executable
// plan for this process: relative round steps resolve to concrete ranks,
// move lists resolve to gather/scatter composites. Purely local, O(td).
func (c *Comm) compile(s *Schedule, geom BlockGeometry, blocking bool) (*Plan, error) {
	p := &Plan{
		comm:     c,
		op:       s.Op,
		algo:     s.Algo,
		blocking: blocking,
		rounds:   s.Rounds,
		volume:   s.Volume,
		cmet:     c.cmet,
	}
	rank := c.comm.Rank()
	t := len(c.nbh)
	for pi, ph := range s.Phases {
		var rounds []execRound
		for ri, r := range ph.Rounds {
			// Shared schedule: every rank holds the same rounds in the same
			// order, so the in-phase index is the global tag slot.
			er := execRound{sendTo: ProcNull, recvFrom: ProcNull, tag: roundTag(pi, ri, t)}
			if dst, ok := c.grid.RankDisplace(rank, r.Rel); ok {
				er.sendTo = dst
			}
			if src, ok := c.grid.RankDisplace(rank, r.Rel.Neg()); ok {
				er.recvFrom = src
			}
			for _, mv := range r.Moves {
				sendL := layoutFor(mv.From, mv.FromSlot, geom)
				recvL := layoutFor(mv.To, mv.ToSlot, geom)
				if sendL.Size() != recvL.Size() {
					return nil, fmt.Errorf("cart: block %d: send layout has %d elements, receive layout %d — the Cartesian collectives require matching block signatures",
						mv.Block, sendL.Size(), recvL.Size())
				}
				er.send.Append(bufIndex(mv.From), sendL)
				er.recv.Append(bufIndex(mv.To), recvL)
				er.blocks++
				if mv.From == BufTemp || mv.To == BufTemp {
					if hi := geomTempHigh(geom, mv); hi > p.tempLen {
						p.tempLen = hi
					}
				}
			}
			er.sendElems = er.send.Size()
			setRoundWhat(&er)
			rounds = append(rounds, er)
		}
		p.phases = append(p.phases, rounds)
		p.deferScatter = append(p.deferScatter, phaseConflicts(rounds))
	}
	for _, cp := range s.Copies {
		ec := execCopy{
			fromBuf: bufIndex(cp.From),
			from:    layoutFor(cp.From, cp.FromSlot, geom),
			to:      geom.RecvAt(cp.ToSlot),
		}
		if ec.from.Size() != ec.to.Size() {
			return nil, fmt.Errorf("cart: local copy slot %d -> %d: %d vs %d elements", cp.FromSlot, cp.ToSlot, ec.from.Size(), ec.to.Size())
		}
		p.copies = append(p.copies, ec)
	}
	buildDAG(p)
	return p, nil
}

// phaseConflicts reports whether any receive-target extent of the phase
// overlaps any send-source extent in the same buffer. A conflict-free
// phase lets the runtime scatter incoming payloads into the user buffers
// at match time — possibly from the sender's goroutine, concurrent with
// this process's own send-side gathers — for single-copy delivery. A
// conflicting phase (mesh boundaries can fold a block's in- and out-slots
// together) must keep the classic semantics: sends read the pre-phase
// state, receives land at Wait. One sorted sweep over the phase's union
// of receive extents against its union of send extents (dag.go's extent
// machinery) — compile-time only.
func phaseConflicts(rounds []execRound) bool {
	var recv, send []bufExtent
	for i := range rounds {
		recv = appendExtents(recv, &rounds[i].recv)
		send = appendExtents(send, &rounds[i].send)
	}
	return extentsOverlap(normalizeExtents(recv), normalizeExtents(send))
}

// layoutFor resolves a (buffer, slot) pair through the geometry.
func layoutFor(b BufKind, slot int, geom BlockGeometry) datatype.Layout {
	switch b {
	case BufSend:
		return geom.SendAt(slot)
	case BufRecv:
		return geom.RecvAt(slot)
	default:
		return geom.TempAt(slot)
	}
}

// geomTempHigh returns the temp-buffer extent a move needs.
func geomTempHigh(geom BlockGeometry, mv Move) int {
	hi := 0
	if mv.From == BufTemp {
		_, h := geom.TempAt(mv.FromSlot).Bounds()
		if h > hi {
			hi = h
		}
	}
	if mv.To == BufTemp {
		_, h := geom.TempAt(mv.ToSlot).Bounds()
		if h > hi {
			hi = h
		}
	}
	return hi
}

// Run executes the plan: the zero-copy schedule execution of Listing 5 of
// the paper. A trivial plan executes its rounds as sequential blocking
// send-receive pairs (Listing 4); a combining plan runs the pipelined
// dependency-DAG executor (pipeline.go), which overlaps rounds across
// phases — or the classic phase-by-phase Waitall executor when the plan
// was compiled WithBarrieredPhases. Under a virtual-time cost model the
// pipelined executor runs in its deterministic dataflow order
// (runPipelinedModel): sends still post the moment their producers retire,
// so the clock prices the DAG's depth rather than the phase count, but
// completions are consumed in flat order so the accounting does not depend
// on goroutine scheduling. The element type binds at execution time; the
// temporary buffer is cached on the plan across executions.
func Run[T any](p *Plan, send, recv []T) error {
	if p.alt != nil {
		p = p.choose(elemBytesOf[T]())
	}
	if err := p.checkBuffers(len(send), len(recv)); err != nil {
		return err
	}
	if p.rlog != nil {
		// One Run is one logging epoch: timestamps restart at zero and the
		// previous execution's events are dropped in place (capacity kept,
		// so logged re-executions stay allocation-free).
		p.rlog.Reset()
	}
	var temp []T
	if p.tempLen > 0 {
		if cached, ok := p.temp.([]T); ok && len(cached) >= p.tempLen {
			temp = cached
		} else {
			temp = make([]T, p.tempLen)
			p.temp = temp
		}
	}
	bufs := [][]T{send, recv, temp}
	comm := p.comm.comm

	if !p.blocking && !p.barriered {
		run := runPipelined[T]
		if comm.Model() != nil {
			run = runPipelinedModel[T]
		}
		if err := run(p, bufs); err != nil {
			return err
		}
		for _, cp := range p.copies {
			datatype.Copy(recv, cp.to, bufs[cp.fromBuf], cp.from)
		}
		p.countRun()
		return nil
	}

	for pi, rounds := range p.phases {
		if p.blocking {
			for ri := range rounds {
				r := &rounds[ri]
				if err := runRoundBlocking(comm, r, bufs, p.deferScatter[pi]); err != nil {
					return p.roundError(pi, ri, r, err)
				}
				if r.recvFrom != ProcNull {
					p.countRecvPost()
					p.countRetire()
				}
				if r.sendTo != ProcNull {
					p.countSend(r)
				}
			}
			continue
		}
		// Post every round of the phase nonblockingly, remembering what each
		// request is so a failure can be attributed to its round and peer.
		pends := p.pends[:0]
		for ri := range rounds {
			r := &rounds[ri]
			if r.recvFrom == ProcNull {
				continue
			}
			req, err := mpi.IrecvComposite(comm, bufs, &r.recv, r.recvFrom, r.tag, p.deferScatter[pi])
			if err != nil {
				return p.phaseError(pi, ri, r.recvWhat, err)
			}
			p.logRound(pi, ri, r.recvFrom, trace.RoundRecvPost)
			p.countRecvPost()
			pends = append(pends, pendReq{req, r.recvWhat, ri, true})
		}
		for ri := range rounds {
			r := &rounds[ri]
			if r.sendTo == ProcNull {
				continue
			}
			req, err := mpi.IsendComposite(comm, bufs, &r.send, r.sendTo, r.tag)
			if err != nil {
				return p.phaseError(pi, ri, r.sendWhat, err)
			}
			p.logRound(pi, ri, r.sendTo, trace.RoundSendPost)
			p.countSend(r)
			pends = append(pends, pendReq{req, r.sendWhat, ri, false})
		}
		// Drain the phase. After the first failure the remaining unmatched
		// receives are cancelled rather than waited on — their messages may
		// never come (a dead peer, a revoked context) and the schedule is
		// abandoned anyway; receives that already hold a message (or poison)
		// are not cancellable and complete immediately.
		var firstErr error
		for _, q := range pends {
			if firstErr != nil && q.req.Cancel() {
				continue
			}
			if _, err := q.req.Wait(); err != nil {
				if firstErr == nil {
					firstErr = p.phaseError(pi, q.round, q.what, err)
				}
			} else if q.recv {
				p.countRetire()
			}
		}
		// Return the scratch with dropped request pointers so a plan kept
		// across executions does not pin the previous run's requests.
		for i := range pends {
			pends[i].req = nil
		}
		p.pends = pends[:0]
		if firstErr != nil {
			return firstErr
		}
	}
	for _, cp := range p.copies {
		datatype.Copy(recv, cp.to, bufs[cp.fromBuf], cp.from)
	}
	p.countRun()
	return nil
}

// pendReq tracks one posted request of a phase with its round and
// attribution string for failure reporting.
type pendReq struct {
	req   *mpi.Request
	what  string
	round int
	recv  bool
}

// phaseError attributes a failed schedule operation to its phase, round,
// and peer, so an injected fault or deadlock report points into the
// schedule rather than at an anonymous request.
func (p *Plan) phaseError(phase, round int, what string, err error) error {
	return fmt.Errorf("cart: %s(%s): phase %d/%d round %d: %s: %w",
		p.op, p.algo, phase+1, len(p.phases), round, what, err)
}

// roundError is phaseError for the trivial blocking executor, where a
// round is one send-receive pair.
func (p *Plan) roundError(phase, round int, r *execRound, err error) error {
	return fmt.Errorf("cart: %s(%s): phase %d/%d round %d (send to %d, recv from %d): %w",
		p.op, p.algo, phase+1, len(p.phases), round, r.sendTo, r.recvFrom, err)
}

// runRoundBlocking performs one round as a blocking exchange, handling
// ProcNull on either side (mesh boundaries).
func runRoundBlocking[T any](comm *mpi.Comm, r *execRound, bufs [][]T, deferScatter bool) error {
	var rreq, sreq *mpi.Request
	var err error
	if r.recvFrom != ProcNull {
		rreq, err = mpi.IrecvComposite(comm, bufs, &r.recv, r.recvFrom, r.tag, deferScatter)
		if err != nil {
			return err
		}
	}
	if r.sendTo != ProcNull {
		sreq, err = mpi.IsendComposite(comm, bufs, &r.send, r.sendTo, r.tag)
		if err != nil {
			return err
		}
	}
	return mpi.Waitall(sreq, rreq)
}

// elemBytesOf returns the in-memory size of one element of type T.
func elemBytesOf[T any]() int {
	return int(reflectSize[T]())
}

// checkBuffers validates user buffer lengths against the plan's geometry
// requirements when known.
func (p *Plan) checkBuffers(sendLen, recvLen int) error {
	if p.sendLen > 0 && sendLen < p.sendLen {
		return fmt.Errorf("cart: send buffer has %d elements, plan requires %d", sendLen, p.sendLen)
	}
	if p.recvLen > 0 && recvLen < p.recvLen {
		return fmt.Errorf("cart: receive buffer has %d elements, plan requires %d", recvLen, p.recvLen)
	}
	return nil
}
