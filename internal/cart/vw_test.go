package cart

import (
	"fmt"
	"reflect"
	"testing"

	"cartcc/internal/datatype"
	"cartcc/internal/mpi"
	"cartcc/internal/vec"
)

// paperVCounts builds the Fig. 6 irregular block sizes of the paper: block
// i has m·(d−z) elements for a neighbor with z non-zero coordinates, and 0
// for the process itself.
func paperVCounts(nbh vec.Neighborhood, m int) []int {
	d := nbh.Dims()
	counts := make([]int, len(nbh))
	for i, rel := range nbh {
		z := rel.NonZeros()
		if z == 0 {
			counts[i] = 0
		} else {
			counts[i] = m * (d - z + 1) // d−z can be 0; keep blocks non-degenerate
		}
	}
	return counts
}

func TestAlltoallvPaperSizing(t *testing.T) {
	nbh := mustStencil(t, 2, 3, -1)
	dims := []int{3, 3}
	counts := paperVCounts(nbh, 2)
	displs := prefixSums(counts)
	for _, algo := range []Algorithm{Trivial, Combining} {
		algo := algo
		runWorld(t, 9, func(w *mpi.Comm) error {
			c, err := NeighborhoodCreate(w, dims, nil, nbh, nil, WithAlgorithm(algo))
			if err != nil {
				return err
			}
			total := 0
			for _, ct := range counts {
				total += ct
			}
			send := make([]int, total)
			for i := range counts {
				for e := 0; e < counts[i]; e++ {
					send[displs[i]+e] = encode(w.Rank(), i, e)
				}
			}
			recv := make([]int, total)
			for j := range recv {
				recv[j] = -1
			}
			if err := Alltoallv(c, send, counts, displs, recv, counts, displs); err != nil {
				return err
			}
			for i, rel := range nbh {
				src, _ := c.Grid().RankDisplace(w.Rank(), rel.Neg())
				for e := 0; e < counts[i]; e++ {
					if got := recv[displs[i]+e]; got != encode(src, i, e) {
						return fmt.Errorf("rank %d algo %v block %d elem %d: %d", w.Rank(), algo, i, e, got)
					}
				}
			}
			return nil
		})
	}
}

func TestAlltoallvValidation(t *testing.T) {
	nbh := mustStencil(t, 2, 3, -1)
	runWorld(t, 9, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
		if err != nil {
			return err
		}
		counts := make([]int, 9)
		displs := make([]int, 9)
		// Mismatched send/recv counts violate isomorphism.
		rc := append([]int(nil), counts...)
		counts[3] = 2
		if _, err := AlltoallvInit(c, counts, displs, rc, displs, Trivial); err == nil {
			return fmt.Errorf("mismatched counts accepted")
		}
		if _, err := AlltoallvInit(c, counts[:5], displs[:5], counts[:5], displs[:5], Trivial); err == nil {
			return fmt.Errorf("short count arrays accepted")
		}
		neg := append([]int(nil), counts...)
		neg[0] = -1
		if _, err := AlltoallvInit(c, neg, displs, neg, displs, Trivial); err == nil {
			return fmt.Errorf("negative count accepted")
		}
		return nil
	})
}

func TestAllgathervPaperSizing(t *testing.T) {
	nbh := mustStencil(t, 2, 3, -1)
	tn := len(nbh)
	sendCount := 3
	counts := make([]int, tn)
	for i := range counts {
		counts[i] = sendCount
	}
	// Non-contiguous receive placement: reverse block order.
	displs := make([]int, tn)
	for i := range displs {
		displs[i] = (tn - 1 - i) * sendCount
	}
	for _, algo := range []Algorithm{Trivial, Combining} {
		algo := algo
		runWorld(t, 9, func(w *mpi.Comm) error {
			c, err := NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil, WithAlgorithm(algo))
			if err != nil {
				return err
			}
			send := make([]int, sendCount)
			for e := range send {
				send[e] = encode(w.Rank(), 0, e)
			}
			recv := make([]int, tn*sendCount)
			if err := Allgatherv(c, send, recv, counts, displs); err != nil {
				return err
			}
			for i, rel := range nbh {
				src, _ := c.Grid().RankDisplace(w.Rank(), rel.Neg())
				for e := 0; e < sendCount; e++ {
					if got := recv[displs[i]+e]; got != encode(src, 0, e) {
						return fmt.Errorf("rank %d algo %v block %d: %d", w.Rank(), algo, i, got)
					}
				}
			}
			return nil
		})
	}
}

func TestAllgathervValidation(t *testing.T) {
	nbh := mustStencil(t, 2, 3, -1)
	runWorld(t, 9, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
		if err != nil {
			return err
		}
		counts := make([]int, 9)
		displs := make([]int, 9)
		counts[0] = 2 // != sendCount 1
		for i := 1; i < 9; i++ {
			counts[i] = 1
		}
		if _, err := AllgathervInit(c, 1, counts, displs, Trivial); err == nil {
			return fmt.Errorf("count != sendCount accepted")
		}
		return nil
	})
}

// TestAlltoallwListing3 exercises the paper's Listing 3 end to end: a
// (n+2)×(n+2) matrix with halo, ROW/COL/COR layouts per neighbor, halo
// exchange in place with Cart_alltoallw.
func TestAlltoallwListing3(t *testing.T) {
	const n = 4          // interior size
	const stride = n + 2 // matrix row length
	// Neighborhood exactly as in Listing 3.
	nbh := vec.Neighborhood{
		{0, 1}, {0, -1}, {-1, 0}, {1, 0},
		{-1, 1}, {1, 1}, {1, -1}, {-1, -1},
	}
	at := func(r, c int) int { return r*stride + c }
	// Send layouts: boundary of the interior facing each neighbor.
	// Neighbor (0,1) is "to the right" (column direction): send right
	// column, receive into left halo... Listing 3 pairs sendtype[i] with
	// recvtype[i] such that the block sent to target i is received by the
	// target as its block i from the opposite side.
	sendL := []datatype.Layout{
		datatype.Subarray(stride, 1, n, n, 1), // right col out to (0,1)
		datatype.Subarray(stride, 1, 1, n, 1), // left col out to (0,-1)
		datatype.Subarray(stride, 1, 1, 1, n), // upper row out to (-1,0)
		datatype.Subarray(stride, n, 1, 1, n), // lower row out to (1,0)
		datatype.Subarray(stride, 1, n, 1, 1), // upper-right corner to (-1,1)
		datatype.Subarray(stride, n, n, 1, 1), // lower-right corner to (1,1)
		datatype.Subarray(stride, n, 1, 1, 1), // lower-left corner to (1,-1)
		datatype.Subarray(stride, 1, 1, 1, 1), // upper-left corner to (-1,-1)
	}
	recvL := []datatype.Layout{
		datatype.Subarray(stride, 1, 0, n, 1),     // from (0,-1) side: left halo
		datatype.Subarray(stride, 1, n+1, n, 1),   // right halo
		datatype.Subarray(stride, n+1, 1, 1, n),   // lower halo
		datatype.Subarray(stride, 0, 1, 1, n),     // upper halo
		datatype.Subarray(stride, n+1, 0, 1, 1),   // lower-left halo corner
		datatype.Subarray(stride, 0, 0, 1, 1),     // upper-left halo corner
		datatype.Subarray(stride, 0, n+1, 1, 1),   // upper-right halo corner
		datatype.Subarray(stride, n+1, n+1, 1, 1), // lower-right halo corner
	}
	dims := []int{3, 3}
	for _, algo := range []Algorithm{Trivial, Combining} {
		algo := algo
		runWorld(t, 9, func(w *mpi.Comm) error {
			c, err := NeighborhoodCreate(w, dims, nil, nbh, nil, WithAlgorithm(algo))
			if err != nil {
				return err
			}
			// Matrix holds owner-rank-tagged global coordinates of cells.
			matrix := make([]float64, stride*stride)
			coords := c.Coords()
			for r := 1; r <= n; r++ {
				for cc := 1; cc <= n; cc++ {
					gr := coords[0]*n + (r - 1)
					gc := coords[1]*n + (cc - 1)
					matrix[at(r, cc)] = float64(gr*1000 + gc)
				}
			}
			if err := Alltoallw(c, matrix, sendL, matrix, recvL); err != nil {
				return err
			}
			// Every halo cell must now hold the global coordinate value of
			// the torus-wrapped cell it mirrors.
			globalRows := dims[0] * n
			globalCols := dims[1] * n
			wrap := func(x, m int) int { return ((x % m) + m) % m }
			for r := 0; r < stride; r++ {
				for cc := 0; cc < stride; cc++ {
					interior := r >= 1 && r <= n && cc >= 1 && cc <= n
					if interior {
						continue
					}
					gr := wrap(coords[0]*n+(r-1), globalRows)
					gc := wrap(coords[1]*n+(cc-1), globalCols)
					want := float64(gr*1000 + gc)
					if matrix[at(r, cc)] != want {
						return fmt.Errorf("rank %d algo %v halo (%d,%d): got %v want %v",
							w.Rank(), algo, r, cc, matrix[at(r, cc)], want)
					}
				}
			}
			return nil
		})
	}
}

func TestAlltoallwValidation(t *testing.T) {
	nbh := vec.Neighborhood{{0, 1}, {1, 0}}
	runWorld(t, 4, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{2, 2}, nil, nbh, nil)
		if err != nil {
			return err
		}
		a := datatype.Contiguous(0, 2)
		b := datatype.Contiguous(0, 3)
		if _, err := AlltoallwInit(c, []datatype.Layout{a, a}, []datatype.Layout{a, b}, Trivial); err == nil {
			return fmt.Errorf("size-mismatched layouts accepted")
		}
		if _, err := AlltoallwInit(c, []datatype.Layout{a}, []datatype.Layout{a}, Trivial); err == nil {
			return fmt.Errorf("short layout arrays accepted")
		}
		return nil
	})
}

func TestAllgatherw(t *testing.T) {
	// Every source block lands through a different layout: block i goes to
	// a strided position pattern (stride t), exercising the paper's
	// proposed Cart_allgatherw / MPI_Neighbor_allgatherw addition.
	nbh := mustStencil(t, 2, 3, -1)
	tn := len(nbh)
	const m = 2
	sendL := datatype.Contiguous(0, m)
	recvL := make([]datatype.Layout, tn)
	for i := range recvL {
		recvL[i] = datatype.Vector(m, 1, tn, i) // element e of block i at e*t + i
	}
	for _, algo := range []Algorithm{Trivial, Combining} {
		algo := algo
		runWorld(t, 9, func(w *mpi.Comm) error {
			c, err := NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil, WithAlgorithm(algo))
			if err != nil {
				return err
			}
			send := []int{encode(w.Rank(), 0, 0), encode(w.Rank(), 0, 1)}
			recv := make([]int, tn*m)
			if err := Allgatherw(c, send, sendL, recv, recvL); err != nil {
				return err
			}
			for i, rel := range nbh {
				src, _ := c.Grid().RankDisplace(w.Rank(), rel.Neg())
				for e := 0; e < m; e++ {
					if got := recv[e*tn+i]; got != encode(src, 0, e) {
						return fmt.Errorf("rank %d algo %v block %d elem %d: %d", w.Rank(), algo, i, e, got)
					}
				}
			}
			return nil
		})
	}
}

func TestAllgatherwValidation(t *testing.T) {
	nbh := vec.Neighborhood{{0, 1}, {1, 0}}
	runWorld(t, 4, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{2, 2}, nil, nbh, nil)
		if err != nil {
			return err
		}
		sendL := datatype.Contiguous(0, 2)
		bad := []datatype.Layout{datatype.Contiguous(0, 2), datatype.Contiguous(0, 1)}
		if _, err := AllgatherwInit(c, sendL, bad, Trivial); err == nil {
			return fmt.Errorf("size-mismatched recv layout accepted")
		}
		if _, err := AllgatherwInit(c, sendL, bad[:1], Trivial); err == nil {
			return fmt.Errorf("short recv layout array accepted")
		}
		return nil
	})
}

func TestDetectCartesianPositive(t *testing.T) {
	// Every process derives its targets from the same offsets: detection
	// must succeed and the resulting communicator must work.
	nbh := vec.Neighborhood{{1, 1}, {0, -1}, {2, 0}}
	dims := []int{3, 4}
	runWorld(t, 12, func(w *mpi.Comm) error {
		grid, _ := vec.NewGrid(dims, nil)
		targets := make([]int, len(nbh))
		for i, rel := range nbh {
			targets[i], _ = grid.RankDisplace(w.Rank(), rel)
		}
		c, detected, err := DetectCartesian(w, dims, nil, targets)
		if err != nil {
			return err
		}
		if !detected {
			return fmt.Errorf("isomorphic adjacency not detected")
		}
		// Canonical form: (2,0) on extent 3 reduces to (-1,0); sorted.
		want := vec.Neighborhood{{-1, 0}, {0, -1}, {1, 1}}
		if !c.Neighborhood().Equal(want) {
			return fmt.Errorf("canonical neighborhood %v, want %v", c.Neighborhood(), want)
		}
		// And it must actually communicate correctly.
		send := make([]int, 3)
		for i := range send {
			send[i] = encode(w.Rank(), i, 0)
		}
		recv := make([]int, 3)
		if err := Alltoall(c, send, recv); err != nil {
			return err
		}
		want2 := refAlltoall(c.Grid(), c.Neighborhood(), w.Rank(), 1)
		if !reflect.DeepEqual(recv, want2) {
			return fmt.Errorf("detected comm alltoall: %v want %v", recv, want2)
		}
		return nil
	})
}

func TestDetectCartesianNegative(t *testing.T) {
	// Rank 0 deviates: no process may report detection.
	runWorld(t, 6, func(w *mpi.Comm) error {
		dims := []int{2, 3}
		grid, _ := vec.NewGrid(dims, nil)
		rel := vec.Vec{0, 1}
		if w.Rank() == 0 {
			rel = vec.Vec{1, 0}
		}
		tgt, _ := grid.RankDisplace(w.Rank(), rel)
		_, detected, err := DetectCartesian(w, dims, nil, []int{tgt})
		if err != nil {
			return err
		}
		if detected {
			return fmt.Errorf("rank %d: detected a non-isomorphic adjacency", w.Rank())
		}
		return nil
	})
}

func TestDetectCartesianDegreeMismatch(t *testing.T) {
	runWorld(t, 4, func(w *mpi.Comm) error {
		dims := []int{2, 2}
		targets := []int{(w.Rank() + 1) % 4}
		if w.Rank() == 3 {
			targets = []int{0, 1}
		}
		_, detected, err := DetectCartesian(w, dims, nil, targets)
		if err != nil {
			return err
		}
		if detected {
			return fmt.Errorf("degree mismatch detected as Cartesian")
		}
		return nil
	})
}

func TestDetectCartesianBadTargets(t *testing.T) {
	runWorld(t, 4, func(w *mpi.Comm) error {
		_, detected, err := DetectCartesian(w, []int{2, 2}, nil, []int{99})
		if err != nil {
			return err
		}
		if detected {
			return fmt.Errorf("out-of-range target detected as Cartesian")
		}
		return nil
	})
}
