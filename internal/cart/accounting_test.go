package cart

import (
	"testing"
	"time"

	"cartcc/internal/mpi"
	"cartcc/internal/vec"
)

// TestPredictedVsObserved is the schedule-accounting invariant of the
// observability layer: on a torus, every rank's observed execution must
// reproduce the paper's analytic quantities exactly — rounds executed ==
// C, blocks forwarded == V — for the combining schedules, and t rounds /
// t blocks for the trivial schedule. Three neighborhood shapes (Moore,
// von Neumann/star, and an asymmetric hand-built stencil), both
// collective families, both algorithms, three executions each so the
// per-execution scaling is checked too.
func TestPredictedVsObserved(t *testing.T) {
	moore, err := vec.Moore(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	von, err := vec.VonNeumann(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	asym := vec.Neighborhood{{1, 0}, {2, 0}, {0, 1}, {-1, -1}, {1, 2}}
	shapes := []struct {
		name string
		nbh  vec.Neighborhood
	}{
		{"moore", moore},
		{"vonneumann", von},
		{"asymmetric", asym},
	}
	const execs = 3
	for _, shape := range shapes {
		for _, op := range []OpKind{OpAlltoall, OpAllgather} {
			for _, algo := range []Algorithm{Trivial, Combining} {
				shape, op, algo := shape, op, algo
				t.Run(shape.name+"/"+op.String()+"/"+algoName(algo), func(t *testing.T) {
					t.Parallel()
					nbh := shape.nbh
					predC, predV := Predicted(nbh, op, algo)
					err := mpi.Run(mpi.Config{Procs: 16, Timeout: time.Minute}, func(w *mpi.Comm) error {
						c, err := NeighborhoodCreate(w, []int{4, 4}, []bool{true, true}, nbh, nil, WithAlgorithm(algo))
						if err != nil {
							return err
						}
						m := 8
						var plan *Plan
						send := make([]int32, len(nbh)*m)
						recv := make([]int32, len(nbh)*m)
						if op == OpAlltoall {
							plan, err = AlltoallInit(c, m, algo)
						} else {
							plan, err = AllgatherInit(c, m, algo)
							send = send[:m]
						}
						if err != nil {
							return err
						}
						for i := 0; i < execs; i++ {
							if err := Run(plan, send, recv); err != nil {
								return err
							}
						}
						s := plan.Stats()
						if err := s.Check(); err != nil {
							return err
						}
						if s.Executions != execs {
							t.Errorf("rank %d: %d executions recorded, want %d", w.Rank(), s.Executions, execs)
						}
						// Torus: every rank is interior, so the per-execution
						// observation must hit the paper's exact C and V.
						if !s.Interior() {
							t.Errorf("rank %d: torus rank not interior: planned rounds %d (C=%d), planned blocks %d (V=%d)",
								w.Rank(), s.PlannedRounds, s.PredictedRounds, s.PlannedBlocks, s.PredictedVolume)
						}
						if s.PredictedRounds != predC || s.PredictedVolume != predV {
							t.Errorf("rank %d: plan predicts C=%d V=%d; analytic Predicted() gives C=%d V=%d",
								w.Rank(), s.PredictedRounds, s.PredictedVolume, predC, predV)
						}
						if s.RoundsActive != execs*int64(predC) {
							t.Errorf("rank %d: observed rounds %d != %d executions × C=%d",
								w.Rank(), s.RoundsActive, execs, predC)
						}
						if s.BlocksForwarded != execs*int64(predV) {
							t.Errorf("rank %d: observed volume %d blocks != %d executions × V=%d",
								w.Rank(), s.BlocksForwarded, execs, predV)
						}
						if s.ElementsSent != execs*int64(predV*m) {
							t.Errorf("rank %d: observed %d elements != %d executions × V·m=%d",
								w.Rank(), s.ElementsSent, execs, predV*m)
						}
						return nil
					})
					if err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestPredictedVsObservedMesh: on a non-periodic mesh, boundary ranks
// plan (and do) strictly less than the interior bounds, but Check's
// planned-vs-observed equality must still hold rank by rank.
func TestPredictedVsObservedMesh(t *testing.T) {
	nbh, err := vec.Moore(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	err = mpi.Run(mpi.Config{Procs: 16, Timeout: time.Minute}, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{4, 4}, []bool{false, false}, nbh, nil, WithAlgorithm(Combining))
		if err != nil {
			return err
		}
		const m = 4
		plan, err := AlltoallInit(c, m, Combining)
		if err != nil {
			return err
		}
		send := make([]int32, len(nbh)*m)
		recv := make([]int32, len(nbh)*m)
		for i := 0; i < 2; i++ {
			if err := Run(plan, send, recv); err != nil {
				return err
			}
		}
		s := plan.Stats()
		if err := s.Check(); err != nil {
			return err
		}
		// Rank 0 sits in the mesh corner: it must have dropped rounds.
		if w.Rank() == 0 && s.Interior() {
			t.Error("corner rank of a non-periodic mesh reports interior bounds")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
