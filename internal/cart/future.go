package cart

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cartcc/internal/datatype"
	"cartcc/internal/mpi"
	"cartcc/internal/trace"
)

// waitSpinBudget bounds how many voluntary yields a waiter tries between
// progress and a real park. Yields are cheap (no timer, no channel, no
// wake handshake) and each one runs every other runnable goroutine once,
// so on a saturated machine the budget is consumed in a handful of
// scheduler rotations; an uncontended idle waiter burns through it in
// microseconds and parks.
const waitSpinBudget = 64

// ErrFutureCancelled is the typed error a future completes with after its
// Cancel was honoured. It wraps mpi.ErrCancelled, so errors.Is matches
// either sentinel.
var ErrFutureCancelled = errors.New("future cancelled")

// Future is one in-flight nonblocking collective started with Start (the
// nonblocking persistent Cartesian collectives the paper anticipates from
// the MPI Forum). It completes on the communicator's progress engine;
// Wait, Test and Err are safe from any goroutine.
type Future struct {
	p   *Plan
	w   *engineWorker
	seq int // commit sequence on the communicator (also the tag block)

	state     atomic.Uint32 // 0 in flight, 1 settled; err is set before
	doneMu    sync.Mutex
	done      chan struct{} // lazily made for parkers; closed at settle
	err       error
	cancelled atomic.Bool

	commitNs  int64         // wall clock at commit (latency histogram)
	commitOff time.Duration // offset on the async trace log's clock
}

// Handle is the historical name of Future, kept for the pre-engine Start
// API.
type Handle = Future

// Wait blocks until the collective completes and returns its error.
// Waiting repeatedly returns the recorded result. A waiter does not just
// park: it takes over driving the progress engine. Registering as a
// waiter sidelines the worker's resident goroutine, so every completion
// wake lands on the goroutine that will consume the result — a
// commit-then-wait cycle finishes without a single scheduler handoff,
// which is what keeps async latency at the synchronous executor's. The
// resident re-takes the sink within a linger tick of the last waiter
// leaving.
func (f *Future) Wait() error {
	w := f.w
	if f.settled() {
		return f.err
	}
	// Registering as a waiter sidelines the resident without waking it: a
	// dozing resident stays unscheduled, and a sink-parked one that steals
	// this waiter's first completion wake observes waiters > 0, hands the
	// wake level back, and dozes off the sink from then on.
	w.waiters.Add(1)
	defer w.waiters.Add(-1)
	// The watchdog timer spans the whole Wait: parks reuse it instead of
	// starting and stopping one each, and a fire only trips the deadlock
	// check — progress since the last check re-arms it.
	wdt, timeoutCh := w.sink.AcquireParkTimer()
	defer w.sink.ReleaseParkTimer(wdt)
	var lastProg uint64
	spins := 0
	for {
		if f.settled() {
			return f.err
		}
		if err := w.eng.crashErr(); err != nil {
			// The engine died to an injected crash: its exit path fails
			// every future. Hand the wake back for other waiters and park
			// on completion alone.
			w.sink.Wake()
			<-f.doneChan()
			return f.err
		}
		if !w.driveMu.TryLock() {
			// Another waiter (or a mid-handoff resident) is driving. Hand
			// back any wake this waiter consumed — the queue may hold
			// tokens the current driver's drain missed — yield, re-check.
			w.sink.Wake()
			runtime.Gosched()
			continue
		}
		prog := w.helpDrive()
		if f.settled() {
			return f.err
		}
		// Yield-poll before parking: a voluntary reschedule lets peers run
		// their sends (whose handovers complete this future's receives) and
		// costs no wake machinery — on a contended CPU the future usually
		// completes within a few yields, without a single park/unpark pair.
		// Between yields the probe is one atomic load; the drive lock is
		// retaken only when tokens actually queued. Progress resets the
		// budget; a dry spell exhausts it and falls through to a real park,
		// so an idle waiter consumes no CPU and the deadlock watchdog still
		// runs.
		if prog != lastProg {
			lastProg = prog
			spins = 0
		}
		for spins < waitSpinBudget && w.sink.Pending() == 0 {
			if f.settled() {
				return f.err
			}
			spins++
			runtime.Gosched()
		}
		if spins < waitSpinBudget {
			continue // tokens queued: drive them
		}
		spins = 0
		woke, timedOut, err := w.sink.ParkOr(f.doneChan(), timeoutCh)
		switch {
		case err != nil:
			// Abort: deliver the failure to every in-flight future (the
			// resident is on standby — this waiter owns failure delivery).
			w.abortAll(err)
		case timedOut:
			w.watchdog(prog)
			w.sink.RearmParkTimer(wdt)
		case !woke:
			return f.err
		}
	}
}

// Test reports without blocking whether the collective has completed, and
// its error if so.
func (f *Future) Test() (bool, error) {
	if f.settled() {
		return true, f.err
	}
	return false, nil
}

// Err returns the completion error, or nil while the collective is still
// in flight (use Test to distinguish in-flight from completed-clean).
func (f *Future) Err() error {
	if f.settled() {
		return f.err
	}
	return nil
}

// Cancel requests local abandonment of the collective: the engine fails
// the execution with ErrFutureCancelled at its next drive batch, and its
// posted receives (the first window posts inline at Start) are cancelled
// or drained. Cancellation is local — peers that entered the collective will fail or
// time out against the missing messages unless they cancel too, so
// cancelling is only clean when it is collective (every rank cancels) or
// the world is being torn down anyway. Idempotent; completion of the
// future races benignly with the request.
func (f *Future) Cancel() {
	if f.cancelled.Swap(true) {
		return
	}
	if m := f.p.cmet; m != nil {
		m.asyncCancels.Inc()
	}
	if !f.settled() {
		f.w.cancelReq.Store(true)
		f.w.wake()
	}
}

// cancelErr builds the future's typed cancellation error.
func (f *Future) cancelErr() error {
	return fmt.Errorf("cart: %s(%s): %w: %w", f.p.op, f.p.algo, ErrFutureCancelled, mpi.ErrCancelled)
}

// settled reports completion; a true return makes f.err readable (the
// atomic store in complete orders the error write before it).
func (f *Future) settled() bool { return f.state.Load() != 0 }

// doneChan returns the future's completion channel, creating it on first
// use. Only parkers need a channel — the fast paths poll the settled
// flag — so an inline-completed Start/Wait cycle never allocates one.
func (f *Future) doneChan() <-chan struct{} {
	f.doneMu.Lock()
	ch := f.done
	if ch == nil {
		ch = make(chan struct{})
		if f.state.Load() != 0 {
			close(ch)
		}
		f.done = ch
	}
	f.doneMu.Unlock()
	return ch
}

// complete records the result and releases the waiters. Engine-side only.
func (f *Future) complete(err error) {
	f.err = err
	f.state.Store(1)
	f.doneMu.Lock()
	if f.done != nil && f.done != closedChan {
		close(f.done)
		f.done = closedChan
	}
	f.doneMu.Unlock()
}

// closedChan is the shared already-closed channel completed futures hand
// to late doneChan callers.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// asyncScratch is one execution's pooled scratch: a detached pipeState
// (completions route through the worker's sink per execution), the cached
// temporary buffer, and the execution shell itself. Pooled per plan so
// steady-state Start/Wait cycles stay allocation-free even with several
// executions in flight.
type asyncScratch struct {
	st   *pipeState
	temp any
	exec any // cached *asyncExec[T] of the last element type
}

// acquireAsyncScratch pops a pooled scratch or allocates one. The pool
// mutex also serializes first-use computation of the plan's tag span
// (callers may commit from the engine-owning goroutine only, but release
// happens on workers).
func (p *Plan) acquireAsyncScratch() *asyncScratch {
	p.asyncMu.Lock()
	defer p.asyncMu.Unlock()
	if n := len(p.asyncFree); n > 0 {
		s := p.asyncFree[n-1]
		p.asyncFree = p.asyncFree[:n-1]
		return s
	}
	return &asyncScratch{st: newPipeState(p, false)}
}

func (p *Plan) releaseAsyncScratch(s *asyncScratch) {
	p.asyncMu.Lock()
	p.asyncFree = append(p.asyncFree, s)
	p.asyncMu.Unlock()
}

// asyncTagFits reports whether every round tag of the plan lands inside
// one engine tag block (memoized). Plans violating it would alias another
// future's tags; no real schedule comes close (the span holds 4M rounds).
func (p *Plan) asyncTagFits() bool {
	if v := p.tagFit.Load(); v != 0 {
		return v == 1
	}
	p.asyncMu.Lock()
	defer p.asyncMu.Unlock()
	if p.asyncMaxTag == 0 {
		p.asyncMaxTag = tagBase // empty plans trivially fit
		for _, r := range p.flat {
			if r.tag > p.asyncMaxTag {
				p.asyncMaxTag = r.tag
			}
		}
	}
	fits := p.asyncMaxTag-tagBase < asyncTagSpan
	if fits {
		p.tagFit.Store(1)
	} else {
		p.tagFit.Store(2)
	}
	return fits
}

// asyncExec is one committed execution: the pipelined executor's state
// machine (pipeline.go), begun inline on the committing caller and driven
// from there on by engine completion events instead of a blocking
// Waitsome loop.
type asyncExec[T any] struct {
	pipeExec[T]
	f    *Future
	scr  *asyncScratch
	recv []T
	slot int
	// Leaf coalescing (the async mirror of the synchronous bulk tail):
	// gate counts unaccounted leaf completions plus a bias held while
	// leaves are still being posted; the completion that zeroes it posts
	// the leafToken sentinel. leavesDone records the sentinel (or that
	// the bias drop itself closed the group); finish() then retires the
	// leaves in bulk, scattering deferred ones in flat order.
	gate        atomic.Int32
	leavesDone  bool
	biasDropped bool
}

// leafToken is the sentinel round index of the coalesced leaf-group
// completion. Plans are bounded to ownerMask rounds at Start, so no real
// round index collides with it.
const leafToken = ownerMask

func (e *asyncExec[T]) fut() *Future { return e.f }

func (e *asyncExec[T]) slotID() int { return e.slot }

// begin posts the execution's first receive window (attached to the
// worker's completion sink) and its barrier-free sends. Runs on the
// committing caller's goroutine, before the execution is registered with
// a driver, so it owns the state exclusively; register's lock handoff
// publishes it.
func (e *asyncExec[T]) begin() error {
	e.st.reset(e.p)
	e.posted, e.nextPost = 0, 0
	e.remRecv, e.remLive, e.remSend = e.st.nRecvs, e.st.nLive, e.st.nSends
	if e.st.nLive == e.st.nRecvs {
		// No leaf rounds: nothing to coalesce.
		e.leafGate, e.leavesDone, e.biasDropped = nil, true, true
	} else {
		e.gate.Store(1) // bias: held until every leaf is posted
		e.leafGate = &e.gate
		e.leavesDone, e.biasDropped = false, false
	}
	if err := e.fillWindow(); err != nil {
		return err
	}
	e.maybeDropBias()
	for i := range e.p.flat {
		if e.p.flat[i].sendTo != ProcNull && e.st.sendLeft[i] == 0 {
			e.st.stack = append(e.st.stack, int32(i))
		}
	}
	return e.drainSends()
}

// maybeDropBias releases the attach-time gate bias once every round has
// been posted. When the drop closes the group (all leaves already
// completed), the driver holds the execution right here — set the flag
// directly instead of routing a token through the sink, which would cost
// the completion path one more wakeup.
func (e *asyncExec[T]) maybeDropBias() {
	if e.biasDropped || e.nextPost < len(e.p.flat) {
		return
	}
	e.biasDropped = true
	if e.gate.Add(-1) == 0 {
		e.leavesDone = true
	}
}

func (e *asyncExec[T]) onArrived(i int) error {
	if i == leafToken {
		e.leavesDone = true
		return nil
	}
	e.st.arrived[i] = true
	return e.tryRetire(int32(i))
}

func (e *asyncExec[T]) advance() error {
	if err := e.fillWindow(); err != nil {
		return err
	}
	e.maybeDropBias()
	return e.drainSends()
}

func (e *asyncExec[T]) done() bool {
	return e.remLive == 0 && e.remSend == 0 && e.leavesDone
}

func (e *asyncExec[T]) finish() {
	if err := e.leafTail(); err != nil {
		e.fail(err, false)
		return
	}
	for _, cp := range e.p.copies {
		datatype.Copy(e.recv, cp.to, e.bufs[cp.fromBuf], cp.from)
	}
	e.p.countRun()
	e.settle(nil)
}

// leafTail retires the coalesced leaf receives in flat (phase-major)
// order, preserving WAW order among deferred leaf scatters — the
// synchronous executor's bulk tail. Every leaf has completed (the gate
// reached zero), so no Wait blocks beyond an in-flight ready handoff.
func (e *asyncExec[T]) leafTail() error {
	p, st := e.p, e.st
	for i := range p.flat {
		if !st.recvPosted[i] || st.retired[i] {
			continue
		}
		if st.scatLeft[i] > 0 {
			return fmt.Errorf("cart: internal: leaf round %d still scatter-gated after DAG drain", i)
		}
		if _, err := st.reqs[i].Wait(); err != nil {
			return p.phaseError(p.deps[i].phase, p.deps[i].idx, p.flat[i].recvWhat, err)
		}
		st.retired[i] = true
		e.remRecv--
		p.countRetire()
	}
	if e.remRecv > 0 {
		return fmt.Errorf("cart: internal: async executor finished with %d receive(s) unposted", e.remRecv)
	}
	return nil
}

func (e *asyncExec[T]) fail(err error, fromWaitSet bool) {
	if fromWaitSet {
		err = e.attributeWaitErr(err)
	}
	// abortDrain is idempotent: receives drained by an earlier internal
	// abort are finished, so Cancel/Wait return immediately.
	e.settle(e.abortDrain(err))
}

// settle returns the scratch (execution shell included) to the plan's
// pool, records the retirement, and completes the future. Locals are
// captured before the release: once the scratch is back in the pool a
// concurrent Start may reacquire and rewrite this very shell.
func (e *asyncExec[T]) settle(err error) {
	f, p := e.f, e.p
	e.f = nil
	e.recv = nil
	e.bufs[0], e.bufs[1], e.bufs[2] = nil, nil, nil
	p.releaseAsyncScratch(e.scr)
	p.countAsyncRetire(f, err)
	f.complete(err)
}

// countAsyncRetire updates the engine accounting and trace at future
// completion.
func (p *Plan) countAsyncRetire(f *Future, err error) {
	eng := p.comm.eng
	eng.inflight.Add(-1)
	lat := time.Now().UnixNano() - f.commitNs
	if m := p.cmet; m != nil {
		m.futureNs.Observe(lat)
	}
	mc := p.comm.comm
	mc.World().Flight().Record(mc.WorldRank(mc.Rank()), trace.FlightFutureRetire, -1, 0, lat, int64(f.seq))
	if l := p.comm.alog.Load(); l != nil {
		l.Add(trace.AsyncSpan{
			Rank:  p.comm.comm.Rank(),
			Seq:   f.seq,
			Op:    fmt.Sprintf("%s(%s)", p.op, p.algo),
			Err:   err != nil,
			Start: f.commitOff,
			End:   l.Now(),
		})
	}
}

// Start commits a nonblocking execution of the plan to the communicator's
// progress engine and returns its future. The caller must not touch send
// or recv until Wait returns. Concurrent executions of one plan are
// allowed (each runs on pooled scratch under a private tag block), but a
// plan with futures in flight must not be Run synchronously, and all
// ranks must start collectives on one communicator in the same order —
// the commit sequence is what keeps their tag blocks aligned (the
// ordering MPI requires of nonblocking collectives).
//
// Start is only available in wall-clock runs: under a virtual-time cost
// model the rank's clock is owned by its goroutine, and overlapping
// communication with the caller's progress has no defined virtual
// semantics (MPI libraries face the same progress-modeling question).
func Start[T any](p *Plan, send, recv []T) (*Future, error) {
	if p.alt != nil {
		p = p.choose(elemBytesOf[T]())
	}
	if p.comm.comm.Model() != nil {
		return nil, fmt.Errorf("cart: Start requires a wall-clock run (no cost model)")
	}
	if err := p.checkBuffers(len(send), len(recv)); err != nil {
		return nil, err
	}
	if len(p.flat) >= 1<<ownerShift {
		return nil, fmt.Errorf("cart: Start: plan has %d rounds, engine supports %d", len(p.flat), 1<<ownerShift)
	}
	if !p.asyncTagFits() {
		return nil, fmt.Errorf("cart: Start: plan tag span exceeds the engine's per-future block")
	}
	eng := p.comm.engine()
	if err := eng.crashErr(); err != nil {
		return nil, err
	}
	w := eng.workerFor(p)
	seq := int(eng.nextSeq.Add(1) - 1)

	scr := p.acquireAsyncScratch()
	var temp []T
	if p.tempLen > 0 {
		if cached, ok := scr.temp.([]T); ok && len(cached) >= p.tempLen {
			temp = cached
		} else {
			temp = make([]T, p.tempLen)
			scr.temp = temp
		}
	}
	f := &Future{p: p, w: w, seq: seq, commitNs: time.Now().UnixNano()}
	if l := p.comm.alog.Load(); l != nil {
		f.commitOff = l.Now()
	}
	ex, _ := scr.exec.(*asyncExec[T])
	if ex == nil {
		ex = &asyncExec[T]{}
		ex.bufs = make([][]T, 3)
		scr.exec = ex
	}
	ex.f, ex.scr, ex.recv = f, scr, recv
	ex.p, ex.st, ex.comm = p, scr.st, p.comm.comm
	ex.bufs[0], ex.bufs[1], ex.bufs[2] = send, recv, temp
	ex.ws = nil
	ex.sink = w.sink
	ex.tagOff = asyncTagBase + seq*asyncTagSpan - tagBase
	ex.quiet = true
	slot := w.commitSlot()
	ex.slot = slot
	ex.ownerBase = slot << ownerShift

	n := eng.inflight.Add(1)
	if m := p.cmet; m != nil {
		m.asyncStarts.Inc()
		m.asyncInflight.SetMax(n)
	}
	mc := p.comm.comm
	mc.World().Flight().Record(mc.WorldRank(mc.Rank()), trace.FlightFutureCommit, -1, 0, 0, int64(seq))
	// Inline commit: the first receive window and every barrier-free send
	// post on this goroutine — the messages are on the wire before Start
	// returns, with no scheduler handoff on the critical path. An injected
	// crash at one of these posts unwinds the caller like a synchronous
	// operation would.
	if err := ex.begin(); err != nil {
		ex.fail(err, false)
		w.settleSlot(slot)
		return nil, err
	}
	if ex.done() {
		// Nothing outstanding (empty neighborhood): complete inline.
		ex.finish()
		w.settleSlot(slot)
		return f, nil
	}
	w.register(ex)
	return f, nil
}

// IcartAlltoall starts the nonblocking regular Cartesian alltoall: block
// i of m = len(send)/t elements goes to target neighbor i, block i of
// recv arrives from source neighbor i. The plan comes from the
// communicator's cache (so repeated calls commit without compiling) and
// runs on the progress engine; complete it with the future's Wait.
func IcartAlltoall[T any](c *Comm, send, recv []T) (*Future, error) {
	t := len(c.nbh)
	if t == 0 || len(send)%t != 0 {
		return nil, fmt.Errorf("cart: IcartAlltoall send length %d not divisible into %d blocks", len(send), t)
	}
	p, err := c.regularPlan(OpAlltoall, c.algo, len(send)/t)
	if err != nil {
		return nil, err
	}
	return Start(p, send, recv)
}

// IcartAllgather starts the nonblocking regular Cartesian allgather: all
// of send goes to every target neighbor, block i of recv arrives from
// source neighbor i.
func IcartAllgather[T any](c *Comm, send, recv []T) (*Future, error) {
	p, err := c.regularPlan(OpAllgather, c.algo, len(send))
	if err != nil {
		return nil, err
	}
	return Start(p, send, recv)
}

// SetAsyncLog attaches a per-future trace log to the communicator's
// engine executions (nil detaches). Safe to set from the communicator's
// goroutine while futures are in flight — spans record under the log's
// own lock.
func (c *Comm) SetAsyncLog(l *trace.AsyncLog) {
	c.alog.Store(l)
}
