package cart

import (
	"fmt"
	"testing"
	"time"

	"cartcc/internal/mpi"
	"cartcc/internal/netmodel"
	"cartcc/internal/vec"
)

// Ablation benchmarks for the design choices called out in DESIGN.md.

// BenchmarkScheduleComputation verifies the O(td) claim of Proposition
// 3.1 in practice: schedule construction cost for growing neighborhoods.
func BenchmarkScheduleComputation(b *testing.B) {
	for _, dn := range [][2]int{{3, 3}, {4, 4}, {5, 5}} {
		nbh, err := vec.Stencil(dn[0], dn[1], -1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("alltoall_d%d_n%d_t%d", dn[0], dn[1], len(nbh)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if s := AlltoallSchedule(nbh); s.Rounds == 0 {
					b.Fatal("empty schedule")
				}
			}
		})
		b.Run(fmt.Sprintf("allgather_d%d_n%d_t%d", dn[0], dn[1], len(nbh)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if s := AllgatherSchedule(nbh); s.Rounds == 0 {
					b.Fatal("empty schedule")
				}
			}
		})
	}
}

// BenchmarkAblationTreeOrder quantifies the allgather dimension-order
// choice (Figure 2): tree volume and construction cost for the paper's
// increasing-C_k order vs. the natural and the worst (decreasing) order,
// on the asymmetric Figure 2 neighborhood scaled up.
func BenchmarkAblationTreeOrder(b *testing.B) {
	// A neighborhood with strongly skewed C_k: many distinct offsets in
	// dimension 0, few in the others.
	var nbh vec.Neighborhood
	for x := -4; x <= 4; x++ {
		if x != 0 {
			nbh = append(nbh, vec.Vec{x, 1, 1})
		}
	}
	orders := map[string][]int{
		"increasingCk": nil, // the paper's heuristic
		"natural":      {0, 1, 2},
		"decreasingCk": {0, 2, 1},
	}
	for name, ord := range orders {
		ord := ord
		b.Run(name, func(b *testing.B) {
			var edges int
			for i := 0; i < b.N; i++ {
				tr := BuildAllgatherTree(nbh, ord)
				edges = tr.Edges
			}
			b.ReportMetric(float64(edges), "edges")
		})
	}
}

// BenchmarkAblationBlockingRounds compares the same message-combining
// schedule executed phase-concurrently (Listing 5) against sequential
// blocking rounds, under the Hydra cost model — the execution-style
// choice the paper's trivial-vs-baseline observation hinges on.
func BenchmarkAblationBlockingRounds(b *testing.B) {
	for _, style := range []string{"phased", "blocking"} {
		style := style
		b.Run(style, func(b *testing.B) {
			vt := benchPlanVTime(b, style == "blocking")
			b.ReportMetric(vt*1e6, "vus/op")
		})
	}
}

func benchPlanVTime(b *testing.B, blocking bool) float64 {
	b.Helper()
	nbh, err := vec.Stencil(3, 3, -1)
	if err != nil {
		b.Fatal(err)
	}
	var vtime float64
	err = mpi.Run(mpi.Config{Procs: 27, Model: netmodel.Hydra(), Seed: 1, Timeout: time.Minute}, func(w *mpi.Comm) error {
		var opts []PlanOption
		if blocking {
			opts = append(opts, WithBlockingRounds())
		}
		c, err := NeighborhoodCreate(w, []int{3, 3, 3}, nil, nbh, nil)
		if err != nil {
			return err
		}
		plan, err := AlltoallInit(c, 10, Combining, opts...)
		if err != nil {
			return err
		}
		send := make([]int32, len(nbh)*10)
		recv := make([]int32, len(nbh)*10)
		if err := mpi.Barrier(w); err != nil {
			return err
		}
		t0 := w.VTime()
		for i := 0; i < b.N; i++ {
			if err := Run(plan, send, recv); err != nil {
				return err
			}
		}
		el := []float64{w.VTime() - t0}
		if err := mpi.Allreduce(w, el, el, mpi.MaxOp[float64]); err != nil {
			return err
		}
		if w.Rank() == 0 {
			vtime = el[0] / float64(b.N)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return vtime
}

// BenchmarkIsomorphismDetection measures the O(t) collective check of
// Section 2.2 at communicator-creation time.
func BenchmarkIsomorphismDetection(b *testing.B) {
	nbh, err := vec.Stencil(3, 5, -1) // t = 125
	if err != nil {
		b.Fatal(err)
	}
	dims := []int{3, 3, 3}
	err = mpi.Run(mpi.Config{Procs: 27, Timeout: time.Minute}, func(w *mpi.Comm) error {
		grid, _ := vec.NewGrid(dims, nil)
		targets := make([]int, len(nbh))
		for i, rel := range nbh {
			targets[i], _ = grid.RankDisplace(w.Rank(), rel)
		}
		for i := 0; i < b.N; i++ {
			_, detected, err := DetectCartesian(w, dims, nil, targets)
			if err != nil {
				return err
			}
			if !detected {
				return fmt.Errorf("detection failed")
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkReorderHierarchical quantifies topology-aware rank reordering
// (the paper's reorder flag) on a two-level machine: the direct sparse
// exchange with 16 kB blocks, identity vs node-blocked mapping.
func BenchmarkReorderHierarchical(b *testing.B) {
	nbh, err := vec.Stencil(2, 3, -1)
	if err != nil {
		b.Fatal(err)
	}
	for _, reorder := range []bool{false, true} {
		reorder := reorder
		name := "identity"
		if reorder {
			name = "blocked"
		}
		b.Run(name, func(b *testing.B) {
			model := netmodel.Hydra()
			model.Hierarchy = &netmodel.Hierarchy{CoresPerNode: 4, IntraAlpha: 0.05e-6, IntraBeta: 8e-13}
			var vt float64
			err := mpi.Run(mpi.Config{Procs: 64, Model: model, Seed: 1, Timeout: time.Minute}, func(w *mpi.Comm) error {
				var opts []Option
				if reorder {
					opts = append(opts, WithReorder())
				}
				c, err := NeighborhoodCreate(w, []int{8, 8}, nil, nbh, nil, opts...)
				if err != nil {
					return err
				}
				g, err := c.DistGraph()
				if err != nil {
					return err
				}
				const m = 4000
				send := make([]int32, len(nbh)*m)
				recv := make([]int32, len(nbh)*m)
				if err := mpi.Barrier(c.Base()); err != nil {
					return err
				}
				t0 := w.VTime()
				for i := 0; i < b.N; i++ {
					if err := mpi.NeighborAlltoall(g, send, recv); err != nil {
						return err
					}
				}
				el := []float64{w.VTime() - t0}
				if err := mpi.Allreduce(c.Base(), el, el, mpi.MaxOp[float64]); err != nil {
					return err
				}
				if w.Rank() == 0 {
					vt = el[0] / float64(b.N)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(vt*1e6, "vus/op")
		})
	}
}

// BenchmarkPlanCompilation measures compiling the symbolic schedule into
// an executable plan (rank resolution + composite construction).
func BenchmarkPlanCompilation(b *testing.B) {
	nbh, err := vec.Stencil(5, 3, -1) // t = 243
	if err != nil {
		b.Fatal(err)
	}
	err = mpi.Run(mpi.Config{Procs: 32, Timeout: time.Minute}, func(w *mpi.Comm) error {
		c, err := NeighborhoodCreate(w, []int{2, 2, 2, 2, 2}, nil, nbh, nil)
		if err != nil {
			return err
		}
		if w.Rank() != 0 {
			return nil
		}
		sched := AlltoallSchedule(nbh)
		geom := uniformGeometry(OpAlltoall, 10)
		for i := 0; i < b.N; i++ {
			if _, err := c.compile(sched, geom, false); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
