package cart

import "cartcc/internal/vec"

// Message-combining neighborhood reduction on non-periodic meshes — the
// reversed mesh allgather. A contribution from process q destined for
// dest = q + N[m] climbs the (pruned) routing tree toward dest, combined
// at intermediates; positions along the climb stay inside the bounding
// box of (q, dest), and the activity of an accumulator is decidable
// locally on both sides of every hop:
//
//	acc(s) at r is live  iff  dest = r + P(s) is on the mesh and some
//	member m of s has its source dest − N[m] on the mesh.
//
// Contributions whose destination falls off the mesh are dropped at the
// source; a process with no sources leaves its result untouched, exactly
// like the trivial algorithm.

// meshCombiningReducePlan builds the per-process reversed-tree reduction
// plan for a (possibly partially) non-periodic mesh.
func meshCombiningReducePlan(c *Comm, m int) *ReducePlan {
	mi := newMeshTreeInfo(c.grid, c.nbh)
	tr := mi.tree
	d := c.nbh.Dims()
	rank := c.comm.Rank()
	p := &ReducePlan{comm: c, algo: Combining, m: m}

	// Accumulator slots: one per tree node; pass-throughs share their
	// parent's slot (set during the forward level walk below).
	slotOf := map[*TreeNode]int{}
	var assign func(n *TreeNode)
	assign = func(n *TreeNode) {
		slotOf[n] = p.accSlots
		p.accSlots++
		for _, ch := range n.Children {
			assign(ch)
		}
	}
	assign(tr.Root)
	p.rootSlot = slotOf[tr.Root]

	// liveAt: the reduction-side activity predicate.
	liveAt := func(s *TreeNode, r int) bool {
		dest, ok := c.grid.RankDisplace(r, mi.prefix[s])
		if !ok {
			return false
		}
		return hasAnySource(c.grid, dest, mi.nbh, s.Members)
	}

	// Seeds: member i's own contribution enters at its resting node iff
	// the destination rank + N[i] exists. Count one seed per occurrence
	// (duplicates).
	seedTimes := map[*TreeNode]int{}
	for i := range c.nbh {
		if _, ok := c.grid.RankDisplace(rank, c.nbh[i]); !ok {
			continue // destination off-mesh: contribution dropped
		}
		seedTimes[mi.restingNodeOf(i)]++
	}

	// Forward walk to collect hopping nodes per level and propagate the
	// pass-through slot sharing.
	frontier := []*TreeNode{tr.Root}
	levels := make([][]*TreeNode, d)
	for level := 0; level < d; level++ {
		var next []*TreeNode
		for _, parent := range frontier {
			for _, ch := range parent.Children {
				if ch.Coord == 0 {
					slotOf[ch] = slotOf[parent]
				} else {
					levels[level] = append(levels[level], ch)
				}
				next = append(next, ch)
			}
		}
		frontier = next
	}
	// Seeds map to slots after sharing is resolved.
	for node, times := range seedTimes {
		p.inits = append(p.inits, accInit{slot: slotOf[node], times: times})
	}

	// Reverse levels: one round per distinct coordinate, moves predicated
	// on liveness at the sender position.
	for level := d - 1; level >= 0; level-- {
		k := tr.DimOrder[level]
		nodes := append([]*TreeNode(nil), levels[level]...)
		sortNodesByCoord(nodes)
		var rounds []reduceRound
		var cur *reduceRound
		curCoord := 0
		have := false
		flush := func() {
			if cur != nil && (len(cur.sendSlots) > 0 || len(cur.recvSlots) > 0) {
				if len(cur.sendSlots) == 0 {
					cur.sendTo = ProcNull
				}
				if len(cur.recvSlots) == 0 {
					cur.recvFrom = ProcNull
				}
				rounds = append(rounds, *cur)
				p.rounds++
			}
			cur = nil
		}
		for _, s := range nodes {
			if !have || s.Coord != curCoord {
				flush()
				rel := make(vec.Vec, d)
				rel[k] = s.Coord
				r := reduceRound{sendTo: ProcNull, recvFrom: ProcNull}
				if dst, ok := c.grid.RankDisplace(rank, rel); ok {
					r.sendTo = dst
				}
				if src, ok := c.grid.RankDisplace(rank, rel.Neg()); ok {
					r.recvFrom = src
				}
				cur = &r
				curCoord = s.Coord
				have = true
			}
			// Sender: this process forwards acc(s) toward the root when
			// live here (the hop target is then on the mesh by the
			// bounding-box argument).
			if cur.sendTo != ProcNull && liveAt(s, rank) {
				cur.sendSlots = append(cur.sendSlots, slotOf[s])
				p.volume++
			}
			// Receiver: the peer at −c·e_k forwards when live THERE.
			if cur.recvFrom != ProcNull && liveAt(s, cur.recvFrom) {
				cur.recvSlots = append(cur.recvSlots, slotOf[s.Parent])
			}
		}
		flush()
		p.phases = append(p.phases, rounds)
	}
	return p
}

// hasAnySource reports whether any member's source exists for dest.
func hasAnySource(g *vec.Grid, dest int, nbh vec.Neighborhood, members []int) bool {
	for _, m := range members {
		if _, ok := g.RankDisplace(dest, nbh[m].Neg()); ok {
			return true
		}
	}
	return false
}
