package cart

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"cartcc/internal/mpi"
	"cartcc/internal/vec"
)

// faultLoopBody builds a rank body that runs iters combining-alltoall
// exchanges on a 3x3 torus with the Moore stencil and reports each rank's
// observation of a failure through obs.
func faultLoopBody(t *testing.T, algo Algorithm, iters int, obs *sync.Map,
	recover func(w *mpi.Comm, c *Comm, cause error) error) func(w *mpi.Comm) error {
	return func(w *mpi.Comm) error {
		nbh, err := vec.Stencil(2, 3, -1)
		if err != nil {
			return err
		}
		c, err := NeighborhoodCreate(w, []int{3, 3}, nil, nbh, nil)
		if err != nil {
			return err
		}
		plan, err := AlltoallInit(c, 2, algo)
		if err != nil {
			return err
		}
		send := make([]int64, len(nbh)*2)
		recv := make([]int64, len(nbh)*2)
		for i := range send {
			send[i] = int64(w.Rank()*100 + i)
		}
		for i := 0; i < iters; i++ {
			if err := Run(plan, send, recv); err != nil {
				obs.Store(w.Rank(), err)
				if recover != nil {
					return recover(w, c, err)
				}
				return err
			}
		}
		return nil
	}
}

// TestCrashDuringCombiningAlltoall is the PR's acceptance scenario: a
// seeded rank crash in the middle of a combining alltoall on a 3x3 torus
// must terminate every rank with a typed RankFailedError — no hang — and
// the survivors' errors must attribute the failure to a schedule phase
// and peer.
func TestCrashDuringCombiningAlltoall(t *testing.T) {
	// Calibrate: count the victim's ops in a clean run so the crash lands
	// inside the exchange loop rather than in communicator creation.
	const victim = 4
	var startOp, endOp int
	var obs sync.Map
	err := mpi.Run(mpi.Config{Procs: 9, Timeout: 20 * time.Second}, func(w *mpi.Comm) error {
		body := faultLoopBody(t, Combining, 20, &obs, nil)
		if err := body(w); err != nil {
			return err
		}
		if w.Rank() == victim {
			endOp = w.OpCount()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("calibration run: %v", err)
	}
	// NeighborhoodCreate's share of the ops: measure with zero iterations.
	err = mpi.Run(mpi.Config{Procs: 9, Timeout: 20 * time.Second}, func(w *mpi.Comm) error {
		body := faultLoopBody(t, Combining, 0, &obs, nil)
		if err := body(w); err != nil {
			return err
		}
		if w.Rank() == victim {
			startOp = w.OpCount()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("calibration run: %v", err)
	}
	if endOp <= startOp {
		t.Fatalf("calibration found no exchange ops (start %d, end %d)", startOp, endOp)
	}
	atOp := startOp + (endOp-startOp)/2

	obs = sync.Map{}
	done := make(chan error, 1)
	go func() {
		done <- mpi.Run(mpi.Config{
			Procs:   9,
			Timeout: 20 * time.Second,
			Faults:  &mpi.FaultPlan{Crashes: []mpi.Crash{{Rank: victim, AtOp: atOp}}},
		}, faultLoopBody(t, Combining, 20, &obs, nil))
	}()
	select {
	case err = <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("run hung after injected crash")
	}
	if !mpi.IsRankFailed(err) {
		t.Fatalf("run error = %v, want a RankFailedError", err)
	}
	var rfe *mpi.RankFailedError
	if !errors.As(err, &rfe) || rfe.Rank != victim {
		t.Fatalf("failed rank = %+v, want %d", rfe, victim)
	}
	// Every survivor observed the failure, wrapped with schedule context.
	sawPhase := false
	for r := 0; r < 9; r++ {
		if r == victim {
			continue
		}
		v, ok := obs.Load(r)
		if !ok {
			t.Fatalf("rank %d never observed the crash", r)
		}
		oerr := v.(error)
		if !mpi.IsRankFailed(oerr) && !errors.Is(oerr, mpi.ErrAborted) {
			t.Fatalf("rank %d observed %v", r, oerr)
		}
		if strings.Contains(oerr.Error(), "phase") && strings.Contains(oerr.Error(), "cart: alltoall(combining)") {
			sawPhase = true
		}
	}
	if !sawPhase {
		t.Fatal("no survivor error carried phase/round/peer context")
	}
}

// TestSurvivorsShrinkAndRerun: after the crash the survivors revoke the
// broken communicator, shrink the world, and run a fresh collective on a
// 4x2 torus built from the 8 survivors — full ULFM-style recovery on top
// of the Cartesian layer.
func TestSurvivorsShrinkAndRerun(t *testing.T) {
	const victim = 4
	var obs sync.Map
	var recovered sync.Map
	err := mpi.Run(mpi.Config{
		Procs:   9,
		Timeout: 20 * time.Second,
		Faults:  &mpi.FaultPlan{Crashes: []mpi.Crash{{Rank: victim, AtOp: 400}}},
	}, faultLoopBody(t, Combining, 50, &obs, func(w *mpi.Comm, c *Comm, cause error) error {
		if !mpi.IsRankFailed(cause) && !errors.Is(cause, mpi.ErrRevoked) {
			return cause
		}
		// Release peers still blocked in the broken exchange, then rebuild.
		c.Base().Revoke()
		shrunk, err := w.Shrink()
		if err != nil {
			return fmt.Errorf("shrink: %w", err)
		}
		if err := mpi.Barrier(shrunk); err != nil {
			return fmt.Errorf("barrier: %w", err)
		}
		nbh, err := vec.Stencil(2, 3, -1)
		if err != nil {
			return err
		}
		c2, err := NeighborhoodCreate(shrunk, []int{4, 2}, nil, nbh, nil)
		if err != nil {
			return fmt.Errorf("recreate: %w", err)
		}
		plan, err := AlltoallInit(c2, 1, Combining)
		if err != nil {
			return err
		}
		send := make([]int32, len(nbh))
		recv := make([]int32, len(nbh))
		if err := Run(plan, send, recv); err != nil {
			return fmt.Errorf("alltoall on shrunk torus: %w", err)
		}
		flag, err := shrunk.Agree(1)
		if err != nil {
			return fmt.Errorf("agree: %w", err)
		}
		recovered.Store(w.Rank(), flag == 1)
		return nil
	}))
	if !mpi.IsRankFailed(err) {
		t.Fatalf("run error = %v, want only the injected RankFailedError", err)
	}
	for r := 0; r < 9; r++ {
		if r == victim {
			continue
		}
		v, ok := recovered.Load(r)
		if !ok || v != true {
			t.Fatalf("rank %d did not recover (recovered=%v, ok=%v)", r, v, ok)
		}
	}
}
