package cart

import (
	"math"
	"math/rand"
	"testing"

	"cartcc/internal/vec"
)

func mustStencil(t *testing.T, d, n, f int) vec.Neighborhood {
	t.Helper()
	nbh, err := vec.Stencil(d, n, f)
	if err != nil {
		t.Fatal(err)
	}
	return nbh
}

// randomNeighborhood draws a random neighborhood: dimension 1..4, size
// 1..20, offsets in [-3, 3], with occasional duplicates and usually the
// zero vector.
func randomNeighborhood(rng *rand.Rand) vec.Neighborhood {
	d := rng.Intn(4) + 1
	t := rng.Intn(20) + 1
	nbh := make(vec.Neighborhood, 0, t)
	for i := 0; i < t; i++ {
		if len(nbh) > 0 && rng.Intn(10) == 0 {
			nbh = append(nbh, nbh[rng.Intn(len(nbh))].Clone()) // duplicate
			continue
		}
		v := make(vec.Vec, d)
		for j := range v {
			v[j] = rng.Intn(7) - 3
		}
		nbh = append(nbh, v)
	}
	return nbh
}

func TestAlltoallScheduleProposition32(t *testing.T) {
	// Proposition 3.2: C = Σ C_k rounds, V = Σ z_i volume.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		nbh := randomNeighborhood(rng)
		s := AlltoallSchedule(nbh)
		if err := s.Validate(len(nbh)); err != nil {
			t.Fatalf("trial %d: %v (nbh=%v)", trial, err, nbh)
		}
		wantC, wantV := 0, 0
		for k := 0; k < nbh.Dims(); k++ {
			wantC += vec.CountDistinctNonZero(nbh, k)
		}
		for _, rel := range nbh {
			wantV += rel.NonZeros()
		}
		if s.Rounds != wantC {
			t.Fatalf("trial %d: rounds %d, want %d (nbh=%v)", trial, s.Rounds, wantC, nbh)
		}
		if s.Volume != wantV {
			t.Fatalf("trial %d: volume %d, want %d (nbh=%v)", trial, s.Volume, wantV, nbh)
		}
		if len(s.Phases) != nbh.Dims() {
			t.Fatalf("trial %d: %d phases for %d dims", trial, len(s.Phases), nbh.Dims())
		}
	}
}

func TestAlltoallScheduleMooreClosedForms(t *testing.T) {
	// Section 3.1's example: the (d, n) stencil family volumes of Table 1.
	want := map[[2]int]int{
		{2, 3}: 12, {2, 4}: 24, {2, 5}: 40,
		{3, 3}: 54, {3, 4}: 144, {3, 5}: 300,
		{4, 3}: 216, {4, 4}: 768, {4, 5}: 2000,
		{5, 3}: 810, {5, 4}: 3840, {5, 5}: 12500,
	}
	for dn, v := range want {
		d, n := dn[0], dn[1]
		nbh := mustStencil(t, d, n, -1)
		s := AlltoallSchedule(nbh)
		if s.Volume != v {
			t.Errorf("d=%d n=%d: volume %d, want %d", d, n, s.Volume, v)
		}
		if got := MooreAlltoallVolume(d, n); got != v {
			t.Errorf("closed form d=%d n=%d: %d, want %d", d, n, got, v)
		}
		if s.Rounds != d*(n-1) {
			t.Errorf("d=%d n=%d: rounds %d, want %d", d, n, s.Rounds, d*(n-1))
		}
	}
}

func TestAlltoallScheduleBufferChain(t *testing.T) {
	// Per block, hops must chain: first hop reads the send buffer, each
	// later hop reads where the previous hop wrote, the last hop writes
	// the receive buffer.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		nbh := randomNeighborhood(rng)
		s := AlltoallSchedule(nbh)
		type state struct {
			seen int
			loc  BufKind
		}
		st := make([]state, len(nbh))
		for i := range st {
			st[i].loc = BufSend
		}
		for _, ph := range s.Phases {
			for _, r := range ph.Rounds {
				for _, mv := range r.Moves {
					if mv.FromSlot != mv.Block || mv.ToSlot != mv.Block {
						t.Fatalf("alltoall move must keep its block slot: %+v", mv)
					}
					if mv.From != st[mv.Block].loc {
						t.Fatalf("block %d: hop %d reads %v, block is in %v (nbh=%v)",
							mv.Block, st[mv.Block].seen, mv.From, st[mv.Block].loc, nbh)
					}
					st[mv.Block].loc = mv.To
					st[mv.Block].seen++
				}
			}
		}
		for i, rel := range nbh {
			if st[i].seen != rel.NonZeros() {
				t.Fatalf("block %d: %d hops, want %d", i, st[i].seen, rel.NonZeros())
			}
			if st[i].seen > 0 && st[i].loc != BufRecv {
				t.Fatalf("block %d ends in %v", i, st[i].loc)
			}
		}
	}
}

func TestTrivialSchedule(t *testing.T) {
	nbh := mustStencil(t, 2, 3, -1)
	s := TrivialSchedule(nbh, OpAlltoall)
	if err := s.Validate(len(nbh)); err != nil {
		t.Fatal(err)
	}
	if s.Rounds != 8 || s.Volume != 8 {
		t.Errorf("trivial rounds/volume = %d/%d, want 8/8", s.Rounds, s.Volume)
	}
	if len(s.Copies) != 1 {
		t.Errorf("copies = %d, want 1 (zero offset)", len(s.Copies))
	}
	if s.NeedTemp {
		t.Error("trivial schedule claims to need a temp buffer")
	}
}

func TestAllgatherTreeFigure2(t *testing.T) {
	// Figure 2: N = [(-2,1,1), (-1,1,1), (1,1,1), (2,1,1)].
	nbh := vec.Neighborhood{{-2, 1, 1}, {-1, 1, 1}, {1, 1, 1}, {2, 1, 1}}
	inc := BuildAllgatherTree(nbh, []int{0, 1, 2})
	if inc.Edges != 12 {
		t.Errorf("increasing-order tree edges = %d, want 12", inc.Edges)
	}
	// Decreasing order 2,1,0: one hop along dim 2, one along dim 1, then 4
	// along dim 0 — 6 edges. (The paper's prose says 7 for this tree; the
	// construction it describes yields 6, see EXPERIMENTS.md.)
	dec := BuildAllgatherTree(nbh, []int{2, 1, 0})
	if dec.Edges != 6 {
		t.Errorf("decreasing-order tree edges = %d, want 6", dec.Edges)
	}
	// The increasing-C_k heuristic must pick the cheap order here:
	// C = (4, 1, 1) so order (1, 2, 0) or (2, 1, 0), both 6 edges.
	auto := BuildAllgatherTree(nbh, nil)
	if auto.Edges != 6 {
		t.Errorf("auto-order tree edges = %d, want 6", auto.Edges)
	}
}

func TestAllgatherScheduleProposition33(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		nbh := randomNeighborhood(rng)
		s := AllgatherSchedule(nbh)
		if err := s.Validate(len(nbh)); err != nil {
			t.Fatalf("trial %d: %v (nbh=%v)", trial, err, nbh)
		}
		wantC := 0
		for k := 0; k < nbh.Dims(); k++ {
			wantC += vec.CountDistinctNonZero(nbh, k)
		}
		if s.Rounds != wantC {
			t.Fatalf("trial %d: rounds %d, want %d (nbh=%v)", trial, s.Rounds, wantC, nbh)
		}
		tree := BuildAllgatherTree(nbh, nil)
		if s.Volume != tree.Edges {
			t.Fatalf("trial %d: volume %d, tree edges %d (nbh=%v)", trial, s.Volume, tree.Edges, nbh)
		}
	}
}

func TestAllgatherScheduleMooreVolumes(t *testing.T) {
	// Section 3.2: for the stencil family the allgather combining volume
	// V = n^d − 1 matches the trivial volume exactly, with exponentially
	// fewer rounds.
	for _, d := range []int{2, 3, 4, 5} {
		for _, n := range []int{3, 4, 5} {
			nbh := mustStencil(t, d, n, -1)
			s := AllgatherSchedule(nbh)
			want := MooreAllgatherVolume(d, n)
			if s.Volume != want {
				t.Errorf("d=%d n=%d: allgather volume %d, want %d", d, n, s.Volume, want)
			}
			if s.Rounds != MooreRounds(d, n) {
				t.Errorf("d=%d n=%d: rounds %d, want %d", d, n, s.Rounds, MooreRounds(d, n))
			}
			triv := TrivialSchedule(nbh, OpAllgather)
			if triv.Volume != want {
				t.Errorf("d=%d n=%d: trivial volume %d != %d", d, n, triv.Volume, want)
			}
		}
	}
}

func TestAllgatherScheduleStagingNeverRewrittenBeforeRead(t *testing.T) {
	// The invariant motivating the staging discipline: no (buffer, slot)
	// location is written twice, and every read of a staging location
	// happens at a phase strictly after its write.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		nbh := randomNeighborhood(rng)
		s := AllgatherSchedule(nbh)
		type loc struct {
			buf  BufKind
			slot int
		}
		writePhase := map[loc]int{}
		for pi, ph := range s.Phases {
			for _, r := range ph.Rounds {
				for _, mv := range r.Moves {
					w := loc{mv.To, mv.ToSlot}
					if _, dup := writePhase[w]; dup {
						t.Fatalf("trial %d: %v written twice (nbh=%v)", trial, w, nbh)
					}
					writePhase[w] = pi
					if mv.From != BufSend {
						src := loc{mv.From, mv.FromSlot}
						wp, ok := writePhase[src]
						if !ok {
							t.Fatalf("trial %d: read of never-written %v (nbh=%v)", trial, src, nbh)
						}
						if wp >= pi {
							t.Fatalf("trial %d: read of %v in phase %d, written in phase %d (nbh=%v)", trial, src, pi, wp, nbh)
						}
					}
				}
			}
		}
	}
}

func TestAllgatherScheduleCoversAllSlots(t *testing.T) {
	// Every receive-buffer slot is either written by a round or filled by
	// a local copy — exactly once as the final action.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		nbh := randomNeighborhood(rng)
		s := AllgatherSchedule(nbh)
		filled := make([]bool, len(nbh))
		for _, ph := range s.Phases {
			for _, r := range ph.Rounds {
				for _, mv := range r.Moves {
					if mv.To == BufRecv {
						filled[mv.ToSlot] = true
					}
				}
			}
		}
		for _, cp := range s.Copies {
			if filled[cp.ToSlot] {
				t.Fatalf("trial %d: slot %d both received and copied (nbh=%v)", trial, cp.ToSlot, nbh)
			}
			filled[cp.ToSlot] = true
		}
		for i, f := range filled {
			if !f {
				t.Fatalf("trial %d: recv slot %d never filled (nbh=%v)", trial, i, nbh)
			}
		}
	}
}

func TestComputeStatsTable1(t *testing.T) {
	// Table 1 of the paper, with the formulas the printed ratios verify:
	// t = n^d (incl. self), C = d(n−1), ratio = (t−C)/(V_aa−t).
	type row struct {
		d, n        int
		c, vag, vaa int
		ratio       float64
	}
	rows := []row{
		{2, 3, 4, 8, 12, 5.0 / 3.0}, // paper prints 1.167, computed 1.667
		{2, 4, 6, 15, 24, 1.250},
		{2, 5, 8, 24, 40, 17.0 / 15.0},
		{3, 3, 6, 26, 54, 21.0 / 27.0},
		{3, 4, 9, 63, 144, 55.0 / 80.0},
		{3, 5, 12, 124, 300, 113.0 / 175.0},
		{4, 3, 8, 80, 216, 73.0 / 135.0},
		{4, 4, 12, 255, 768, 244.0 / 512.0},
		{4, 5, 16, 624, 2000, 609.0 / 1375.0},
		{5, 3, 10, 242, 810, 233.0 / 567.0},
		{5, 4, 15, 1023, 3840, 1009.0 / 2816.0},
		{5, 5, 20, 3124, 12500, 3105.0 / 9375.0},
	}
	for _, r := range rows {
		nbh := mustStencil(t, r.d, r.n, -1)
		s := ComputeStats(nbh)
		tWant := 1
		for i := 0; i < r.d; i++ {
			tWant *= r.n
		}
		if s.T != tWant || s.TComm != tWant-1 {
			t.Errorf("d=%d n=%d: T=%d TComm=%d", r.d, r.n, s.T, s.TComm)
		}
		if s.C != r.c {
			t.Errorf("d=%d n=%d: C=%d, want %d", r.d, r.n, s.C, r.c)
		}
		if s.VolAllgather != r.vag {
			t.Errorf("d=%d n=%d: V_ag=%d, want %d", r.d, r.n, s.VolAllgather, r.vag)
		}
		if s.VolAlltoall != r.vaa {
			t.Errorf("d=%d n=%d: V_aa=%d, want %d", r.d, r.n, s.VolAlltoall, r.vaa)
		}
		if math.Abs(s.CutoffRatio-r.ratio) > 1e-9 {
			t.Errorf("d=%d n=%d: ratio=%.4f, want %.4f", r.d, r.n, s.CutoffRatio, r.ratio)
		}
	}
}

func TestComputeStatsDegenerate(t *testing.T) {
	// Neighborhood of only the zero vector: no communication at all.
	s := ComputeStats(vec.Neighborhood{{0, 0}})
	if s.TComm != 0 || s.C != 0 || s.VolAlltoall != 0 || s.VolAllgather != 0 {
		t.Errorf("zero-only stats: %+v", s)
	}
	if s.CutoffRatio != math.Inf(1) {
		t.Errorf("zero-only ratio = %v", s.CutoffRatio)
	}
	// A von Neumann stencil: one hop per neighbor, V == TComm, combining
	// always wins on rounds (ratio +Inf).
	vn, _ := vec.VonNeumann(3, 1)
	s = ComputeStats(vn)
	if s.VolAlltoall != s.TComm {
		t.Errorf("von Neumann V=%d TComm=%d", s.VolAlltoall, s.TComm)
	}
	if !math.IsInf(s.CutoffRatio, 1) {
		t.Errorf("von Neumann ratio = %v", s.CutoffRatio)
	}
}

func TestBinomial(t *testing.T) {
	cases := [][4]int{{5, 2, 10, 0}, {5, 0, 1, 0}, {5, 5, 1, 0}, {5, 6, 0, 0}, {5, -1, 0, 0}, {10, 3, 120, 0}}
	for _, c := range cases {
		if got := binomial(c[0], c[1]); got != c[2] {
			t.Errorf("binomial(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}
